// Aggregate monitor: beyond the paper's Count/Max/Consensus — the same
// sketch machinery estimates the SUM of non-negative node values (and hence
// the network-wide AVERAGE = sum / count) in the same Õ(d) rounds, still
// with O(log N)-bit messages. Think "total load across an unknown number of
// servers under topology churn".
//
//   ./aggregate_monitor --servers=300 --T=2 --seed=5
#include <iostream>

#include "core/api.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sdn::util::Flags flags(argc, argv);
  const auto servers = static_cast<sdn::graph::NodeId>(
      flags.GetInt("servers", 300, "server count (unknown to the servers)"));
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 5, "seed"));
  if (flags.Has("help")) {
    std::cout << flags.Usage("aggregate_monitor");
    return 0;
  }

  // Per-server load in requests/second.
  sdn::util::Rng rng(seed);
  std::vector<sdn::algo::Value> load(static_cast<std::size_t>(servers));
  double true_sum = 0.0;
  for (auto& v : load) {
    v = rng.UniformInt(0, 2000);
    true_sum += static_cast<double>(v);
  }

  sdn::RunConfig config;
  config.n = servers;
  config.T = T;
  config.seed = seed;
  config.adversary.kind = "spine-gnp";
  config.inputs = load;
  config.hjswy.track_sum = true;
  config.hjswy.sketch_len = 128;  // rel. stddev ≈ 9% per aggregate
  config.hjswy.coords_per_msg = 3;  // two sketches ride in one budget

  const sdn::RunResult r =
      sdn::RunAlgorithm(sdn::Algorithm::kHjswyEstimate, config);

  const double est_count =
      static_cast<double>(servers) *
      (1.0 - r.count_max_rel_error.value_or(0));  // lower bound display only
  (void)est_count;

  std::cout << "True state: " << servers << " servers, total load "
            << sdn::util::HumanCount(true_sum) << " req/s, average "
            << sdn::util::Table::Num(true_sum / servers, 1) << " req/s.\n\n";
  std::cout << "After " << r.stats.rounds << " rounds (d="
            << r.stats.flooding.max_rounds << ", " << "avg "
            << sdn::util::Table::Num(r.stats.AvgBitsPerMessage(), 0)
            << " bits/msg, O(log N) budget " << r.stats.bit_limit
            << " bits) every server knows:\n"
            << "  count estimate error: "
            << sdn::util::Table::Num(r.count_max_rel_error.value_or(0) * 100, 1)
            << "%\n"
            << "  sum estimate error:   "
            << sdn::util::Table::Num(r.sum_max_rel_error.value_or(0) * 100, 1)
            << "%\n"
            << "  (average = sum estimate / count estimate)\n\n";
  std::cout << "No server ever knew N, and no message exceeded the "
               "O(log N)-bit budget.\n";
  return r.Ok() ? 0 : 1;
}
