// Quickstart: run every algorithm once on a T-interval dynamic network and
// print what each one decided, in how many rounds, against which measured
// dynamic flooding time d.
//
//   ./quickstart --n=128 --T=2 --adversary=spine-expander --seed=1
#include <cstdio>
#include <iostream>

#include "core/api.hpp"
#include "core/version.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sdn::util::Flags flags(argc, argv);
  sdn::RunConfig config;
  config.n = static_cast<sdn::graph::NodeId>(
      flags.GetInt("n", 128, "number of nodes"));
  config.T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1, "seed"));
  config.adversary.kind =
      flags.GetString("adversary", "spine-expander",
                      "adversary kind (see adversary/factory.hpp)");
  if (flags.Has("help")) {
    std::cout << flags.Usage("quickstart");
    return 0;
  }

  std::cout << "sdn " << sdn::VersionString() << " quickstart: N=" << config.n
            << " T=" << config.T << " adversary=" << config.adversary.kind
            << "\n\n";

  sdn::util::Table table({"algorithm", "rounds", "d", "count", "max ok",
                          "consensus ok", "avg bits/msg"});
  for (const sdn::Algorithm algorithm : sdn::AllAlgorithms()) {
    if (algorithm == sdn::Algorithm::kKloCensusT && config.T == 1) {
      continue;  // identical to klo-census(T=1)
    }
    const sdn::RunResult r = sdn::RunAlgorithm(algorithm, config);
    std::string count = "-";
    if (r.count_exact.has_value()) {
      count = *r.count_exact ? "exact" : "WRONG";
    } else if (r.count_max_rel_error.has_value()) {
      count = "±" + sdn::util::Table::Num(*r.count_max_rel_error * 100, 1) + "%";
    }
    const auto flag = [](const std::optional<bool>& b) {
      return !b.has_value() ? std::string("-")
                            : (*b ? std::string("yes") : std::string("NO"));
    };
    table.AddRow({r.algorithm, std::to_string(r.stats.rounds),
                  std::to_string(r.stats.flooding.max_rounds), count,
                  flag(r.max_correct), flag(r.consensus_agreement),
                  sdn::util::Table::Num(r.stats.AvgBitsPerMessage(), 0)});
  }
  table.Print(std::cout);
  std::cout << "\n(d = measured dynamic flooding time of this run; the paper's"
               "\n claim is round counts tracking d, not N — compare hjswy"
               "\n rows with the flood/klo baselines as you grow --n.)\n";
  return 0;
}
