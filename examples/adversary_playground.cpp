// Adversary playground: inspect what a T-interval adversary actually emits.
//
// Rolls a chosen adversary for a number of rounds and prints per-window
// statistics — edges, stable-intersection size, validity of the promise —
// plus the exact dynamic flooding time of the recorded sequence. Useful for
// designing new experiments and for understanding why, e.g., fresh random
// spines every era make flooding *fast*.
//
//   ./adversary_playground --adversary=spine-cliques --n=64 --T=4 --rounds=40
#include <iostream>
#include <memory>

#include "adversary/factory.hpp"
#include "graph/algorithms.hpp"
#include "graph/tinterval.hpp"
#include "net/adversary.hpp"
#include "net/flooding.hpp"
#include "net/trace.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

/// Playground view: no algorithm is running, so adaptive adversaries see a
/// flat state.
class NullView final : public sdn::net::AdversaryView {
 public:
  explicit NullView(sdn::graph::NodeId n) : n_(n) {}
  [[nodiscard]] std::int64_t round() const override { return round_; }
  [[nodiscard]] double PublicState(sdn::graph::NodeId) const override {
    return 0.0;
  }
  [[nodiscard]] sdn::graph::NodeId num_nodes() const override { return n_; }
  void set_round(std::int64_t r) { round_ = r; }

 private:
  sdn::graph::NodeId n_;
  std::int64_t round_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  sdn::util::Flags flags(argc, argv);
  sdn::adversary::AdversaryConfig config;
  config.n = static_cast<sdn::graph::NodeId>(flags.GetInt("n", 64, "nodes"));
  config.T = static_cast<int>(flags.GetInt("T", 4, "interval promise"));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1, "seed"));
  config.kind = flags.GetString("adversary", "spine-cliques",
                                "adversary kind (see factory.hpp)");
  config.volatile_edges = flags.GetInt("volatile", -1, "volatile edges/round");
  config.era_length = flags.GetInt("era", 0, "era length (0 = T)");
  config.clique_size = static_cast<sdn::graph::NodeId>(
      flags.GetInt("clique-size", 8, "clique size for spine-cliques"));
  const auto rounds = flags.GetInt("rounds", 40, "rounds to roll");
  const std::string save = flags.GetString("save", "", "write trace file");
  const std::string replay =
      flags.GetString("replay", "", "read a trace file instead of rolling");
  if (flags.Has("help")) {
    std::cout << flags.Usage("adversary_playground");
    std::cout << "\nkinds:";
    for (const auto& kind : sdn::adversary::KnownAdversaryKinds()) {
      std::cout << " " << kind;
    }
    std::cout << "\n";
    return 0;
  }

  std::vector<sdn::graph::Graph> sequence;
  std::string source;
  if (!replay.empty()) {
    sdn::net::Trace trace = sdn::net::LoadTrace(replay);
    config.n = trace.num_nodes();
    config.T = trace.interval;
    sequence = std::move(trace.rounds);
    source = "trace " + replay;
  } else {
    const auto adversary = sdn::adversary::MakeAdversary(config);
    NullView view(config.n);
    for (std::int64_t r = 1; r <= rounds; ++r) {
      view.set_round(r);
      sequence.push_back(adversary->TopologyFor(r, view));
    }
    source = "adversary " + adversary->name();
  }
  if (!save.empty()) {
    sdn::net::SaveTrace(save, sequence, config.T);
    std::cout << "(saved " << sequence.size() << " rounds to " << save
              << ")\n";
  }

  std::cout << source << " on N=" << config.n << ", T=" << config.T << ", "
            << sequence.size() << " rounds\n\n";

  sdn::util::Table table(
      {"window start", "edges", "stable edges", "stable connected", "diam"});
  for (std::size_t start = 0; start + static_cast<std::size_t>(config.T) <=
                              sequence.size();
       start += static_cast<std::size_t>(config.T)) {
    const auto window = std::span<const sdn::graph::Graph>(
        sequence.data() + start, static_cast<std::size_t>(config.T));
    const sdn::graph::Graph stable = sdn::graph::EdgeIntersection(window);
    table.AddRow({std::to_string(start + 1),
                  std::to_string(window.front().num_edges()),
                  std::to_string(stable.num_edges()),
                  sdn::graph::IsConnected(stable) ? "yes" : "NO",
                  std::to_string(sdn::graph::Diameter(stable))});
  }
  table.Print(std::cout);

  const auto report = sdn::graph::ValidateTInterval(sequence, config.T);
  std::cout << "\nT-interval promise over all sliding windows: "
            << (report.ok ? "HELD" : "VIOLATED") << " ("
            << report.windows_checked << " windows checked)\n";
  const std::int64_t d = sdn::net::DynamicFloodingTime(sequence);
  if (d >= 0) {
    std::cout << "exact dynamic flooding time of this sequence: d = " << d
              << " rounds\n";
  } else {
    std::cout << "flooding did not complete in " << sequence.size()
              << " rounds (increase --rounds)\n";
  }
  return report.ok ? 0 : 1;
}
