// Live watch: drive a run one round at a time through the sdn::Simulation
// step API and print a progress strip — decided nodes, the spread of
// published state, and live topology stats. This is the template for
// building monitoring/visualization tools on top of the simulator.
//
//   ./live_watch --n=256 --T=2 --algorithm=hjswy-census --every=25
#include <algorithm>
#include <iostream>
#include <optional>

#include "core/simulation.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

sdn::Algorithm ParseAlgorithm(const std::string& name) {
  for (const sdn::Algorithm a : sdn::AllAlgorithms()) {
    if (name == sdn::ToString(a)) return a;
  }
  std::cerr << "unknown --algorithm '" << name << "'; options:";
  for (const sdn::Algorithm a : sdn::AllAlgorithms()) {
    std::cerr << " " << sdn::ToString(a);
  }
  std::cerr << "\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  sdn::util::Flags flags(argc, argv);
  sdn::RunConfig config;
  config.n = static_cast<sdn::graph::NodeId>(flags.GetInt("n", 256, "nodes"));
  config.T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1, "seed"));
  config.adversary.kind =
      flags.GetString("adversary", "spine-gnp", "adversary kind");
  const auto every = flags.GetInt("every", 25, "print every k rounds");
  const std::string trace_path = flags.GetString(
      "trace", "", "write a Chrome trace (or .jsonl) of the watched run");
  const sdn::Algorithm algorithm = ParseAlgorithm(
      flags.GetString("algorithm", "hjswy-census", "algorithm to watch"));
  if (flags.Has("help")) {
    std::cout << flags.Usage("live_watch");
    return 0;
  }

  std::optional<sdn::obs::FlightRecorder> recorder;
  if (!trace_path.empty()) {
    recorder.emplace();
    config.recorder = &*recorder;
  }
  config.collect_metrics = true;  // live deliveries/algo-work columns

  sdn::Simulation sim(algorithm, config);
  std::cout << "watching " << sdn::ToString(algorithm) << " on N=" << config.n
            << " (" << config.adversary.kind << ", T=" << config.T << ")\n\n";
  sdn::util::Table table({"round", "decided", "min state", "max state",
                          "edges", "msgs so far", "dlv/round p50", "algo work",
                          "anomalies"});

  const auto snapshot = [&] {
    std::int64_t decided = 0;
    double lo = sim.NodePublicState(0);
    double hi = lo;
    for (sdn::graph::NodeId u = 0; u < config.n; ++u) {
      decided += sim.NodeDecided(u) ? 1 : 0;
      const double s = sim.NodePublicState(u);
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    const auto stats = sim.Stats();
    const sdn::obs::MetricSample* dlv = stats.metrics.Find("round_deliveries");
    const sdn::obs::MetricSample* work = stats.metrics.Find("algo_work");
    table.AddRow({std::to_string(sim.Round()),
                  std::to_string(decided) + "/" + std::to_string(config.n),
                  sdn::util::Table::Num(lo, 1), sdn::util::Table::Num(hi, 1),
                  std::to_string(sim.CurrentTopology().num_edges()),
                  std::to_string(stats.messages_sent),
                  dlv != nullptr && dlv->count > 0 ? std::to_string(dlv->p50)
                                                   : "-",
                  work != nullptr ? std::to_string(work->value) : "-",
                  std::to_string(stats.anomalies.size())});
  };

  while (sim.Step()) {
    if (sim.Round() % every == 0) snapshot();
  }
  snapshot();
  table.Print(std::cout);

  const sdn::RunResult result = sim.Finish();
  std::cout << "\nfinished in " << result.stats.rounds << " rounds (d="
            << result.stats.flooding.max_rounds << "), all grades "
            << (result.Ok() ? "passed" : "FAILED") << ".\n";

  if (recorder.has_value()) {
    sdn::obs::RunManifest manifest = sdn::obs::RunManifest::Collect();
    manifest.Set("experiment", "live_watch");
    manifest.Set("algorithm", sdn::ToString(algorithm));
    manifest.Set("n", static_cast<long long>(config.n));
    manifest.Set("T", config.T);
    manifest.Set("seed", static_cast<long long>(config.seed));
    manifest.Set("adversary", config.adversary.kind);
    const bool jsonl =
        trace_path.size() >= 6 &&
        trace_path.compare(trace_path.size() - 6, 6, ".jsonl") == 0;
    const bool ok = jsonl ? recorder->WriteJsonl(trace_path, &manifest)
                          : recorder->WriteChromeTrace(trace_path, &manifest);
    std::cout << (ok ? "(trace: " : "(trace: cannot write ") << trace_path
              << (ok ? ", " + std::to_string(recorder->total_emitted()) +
                           " events)\n"
                     : ")\n");
  }
  return result.Ok() ? 0 : 1;
}
