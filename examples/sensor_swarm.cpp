// Sensor swarm: the paper model's motivating scenario — a swarm of mobile
// radio nodes (drones) must agree on the maximum sensor reading without
// knowing how many drones are up, while their radio topology changes every
// few rounds as they move.
//
// Uses the hjswy Max algorithm against the mobile geometric adversary and
// compares with what the known-N flooding baseline would have cost (it also
// needs the swarm size as a priori knowledge, which a real swarm lacks).
//
//   ./sensor_swarm --drones=200 --T=3 --radius=0.18 --seed=7
#include <iostream>

#include "core/api.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sdn::util::Flags flags(argc, argv);
  const auto drones = static_cast<sdn::graph::NodeId>(
      flags.GetInt("drones", 200, "swarm size (unknown to the drones!)"));
  const int T = static_cast<int>(
      flags.GetInt("T", 3, "rounds of guaranteed link stability"));
  const double radius = flags.GetDouble("radius", 0.18, "radio range");
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 7, "seed"));
  if (flags.Has("help")) {
    std::cout << flags.Usage("sensor_swarm");
    return 0;
  }

  // Sensor readings: a radiation field with one hot spot.
  sdn::util::Rng rng(seed);
  std::vector<sdn::algo::Value> readings(static_cast<std::size_t>(drones));
  for (auto& v : readings) v = rng.UniformInt(100, 700);
  const std::size_t hot = rng.UniformU64(static_cast<std::uint64_t>(drones));
  readings[hot] = 9000 + static_cast<sdn::algo::Value>(rng.UniformU64(999));

  sdn::RunConfig config;
  config.n = drones;
  config.T = T;
  config.seed = seed;
  config.adversary.kind = "mobile";
  config.adversary.mobile_radius = radius;
  config.inputs = readings;

  std::cout << "Swarm of " << drones << " drones, radio range " << radius
            << ", links stable for T=" << T << " rounds at a time.\n"
            << "Hot spot: drone " << hot << " reads " << readings[hot]
            << ".\n\n";

  const sdn::RunResult hjswy =
      sdn::RunAlgorithm(sdn::Algorithm::kHjswyEstimate, config);
  std::cout << "hjswy max-aggregation (" << hjswy.algorithm << "):\n"
            << "  decided after " << hjswy.stats.rounds << " rounds"
            << " (measured flooding time d=" << hjswy.stats.flooding.max_rounds
            << ")\n"
            << "  every drone decided " << (hjswy.max_correct.value_or(false)
                                                ? "the true hot-spot reading"
                                                : "A WRONG VALUE")
            << "\n  swarm size estimate error: "
            << sdn::util::Table::Num(
                   hjswy.count_max_rel_error.value_or(0) * 100, 1)
            << "% (the drones never knew the swarm size)\n\n";

  const sdn::RunResult flood =
      sdn::RunAlgorithm(sdn::Algorithm::kFloodMaxKnownN, config);
  std::cout << "known-N flooding baseline: " << flood.stats.rounds
            << " rounds — and it had to be told the swarm size up front.\n";
  return hjswy.Ok() ? 0 : 1;
}
