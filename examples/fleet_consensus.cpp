// Fleet consensus: vehicles on a convoy must agree on one rendezvous slot
// while an adversarial dispatcher rewires who can hear whom every T rounds —
// including an *adaptive* dispatcher that watches which vehicles know the
// most and pushes them to the network edge.
//
// Demonstrates Consensus under the harshest adversaries in the zoo and the
// honest degradation of round complexity when the adversary forces the
// dynamic flooding time d up to Θ(N).
//
//   ./fleet_consensus --vehicles=128 --T=2 --seed=3
#include <iostream>

#include "core/api.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  sdn::util::Flags flags(argc, argv);
  const auto vehicles = static_cast<sdn::graph::NodeId>(
      flags.GetInt("vehicles", 128, "fleet size"));
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 3, "seed"));
  if (flags.Has("help")) {
    std::cout << flags.Usage("fleet_consensus");
    return 0;
  }

  // Each vehicle proposes a rendezvous slot (minutes after midnight).
  std::vector<sdn::algo::Value> proposals(static_cast<std::size_t>(vehicles));
  for (std::size_t i = 0; i < proposals.size(); ++i) {
    proposals[i] = static_cast<sdn::algo::Value>(360 + (i * 97) % 720);
  }

  std::cout << "Fleet of " << vehicles
            << " vehicles negotiating a rendezvous (T=" << T << ").\n\n";

  sdn::util::Table table({"dispatcher (adversary)", "d", "rounds",
                          "agreed slot", "agreement", "valid"});
  bool all_ok = true;
  for (const std::string kind :
       {"spine-gnp", "spine-rtree", "mobile", "adaptive-desc", "static-path"}) {
    sdn::RunConfig config;
    config.n = vehicles;
    config.T = T;
    config.seed = seed;
    config.adversary.kind = kind;
    if (kind == "adaptive-desc" || kind == "static-path") {
      config.adversary.volatile_edges = 0;  // let the adversary bite
    }
    config.inputs = proposals;
    const sdn::RunResult r =
        sdn::RunAlgorithm(sdn::Algorithm::kHjswyEstimate, config);
    all_ok &= r.Ok();
    table.AddRow({kind, std::to_string(r.stats.flooding.max_rounds),
                  std::to_string(r.stats.rounds),
                  std::to_string(proposals[0]),  // min-id vehicle's proposal
                  r.consensus_agreement.value_or(false) ? "yes" : "NO",
                  r.consensus_valid.value_or(false) ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nNote how rounds track the dispatcher-controlled flooding "
               "time d:\nfast on churny well-connected fleets, honestly "
               "Θ(N) when the adaptive\ndispatcher spools the convoy into a "
               "line.\n";
  return all_ok ? 0 : 1;
}
