// The million-node scaffolding: arena allocation, per-subsystem memory
// accounting, the SoA sketch pool's bit-identicality pin, and streaming
// topology at n=65536 (docs/PERF.md "Scale").
//
// The load-bearing contracts:
//   * pooled_sketches is a pure layout knob — RunStats identical to the
//     per-node layout across algorithms × adversaries × thread counts;
//   * RunStats::memory is deterministic (thread-count invariant) and only
//     charges size-deterministic subsystems;
//   * a streaming (TraceStreamReader-driven) replay of a recorded trace is
//     bit-identical to the fully materialized ReplayAdversary path while
//     holding O(E_round) live graph bytes, not O(rounds·E).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "adversary/factory.hpp"
#include "adversary/replay.hpp"
#include "adversary/streaming_trace.hpp"
#include "algo/hjswy.hpp"
#include "algo/sketch_pool.hpp"
#include "core/api.hpp"
#include "graph/delta.hpp"
#include "net/engine.hpp"
#include "net/trace.hpp"
#include "util/arena.hpp"
#include "util/rng.hpp"

namespace sdn {
namespace {

TEST(Arena, AllocatesAlignedAndZeroInitialized) {
  util::Arena arena(/*chunk_bytes=*/256);
  const std::span<unsigned char> flags = arena.MakeArray<unsigned char>(100);
  ASSERT_EQ(flags.size(), 100u);
  for (const unsigned char f : flags) EXPECT_EQ(f, 0);

  struct alignas(64) Slot {
    std::int64_t payload[8];
  };
  const std::span<Slot> slots = arena.MakeArray<Slot>(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slots.data()) % 64, 0u);
  for (const Slot& s : slots) {
    for (const std::int64_t v : s.payload) EXPECT_EQ(v, 0);
  }
  EXPECT_GE(arena.bytes_allocated(), 100 + 10 * sizeof(Slot));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  util::Arena arena(/*chunk_bytes=*/64);
  const std::span<std::int64_t> big = arena.MakeArray<std::int64_t>(10'000);
  ASSERT_EQ(big.size(), 10'000u);
  big[0] = 1;
  big[9'999] = 2;  // the whole span is addressable
  EXPECT_EQ(big[0] + big[9'999], 3);
  // A following small allocation still works (new chunk, old one full).
  const std::span<int> small = arena.MakeArray<int>(4);
  EXPECT_EQ(small.size(), 4u);
}

TEST(MemoryBudget, GaugesTrackCurrentAndPeak) {
  util::MemoryBudget budget;
  util::MemoryGauge* g = budget.Get("outbox");
  EXPECT_EQ(g, budget.Get("outbox"));  // stable pointer, no duplicate
  g->SetCurrent(100);
  g->Add(50);
  g->SetCurrent(30);
  EXPECT_EQ(g->current(), 30);
  EXPECT_EQ(g->peak(), 150);
  budget.Get("pool")->SetCurrent(1000);
  EXPECT_EQ(budget.PeakBytes("outbox"), 150);
  EXPECT_EQ(budget.PeakBytes("pool"), 1000);
  EXPECT_EQ(budget.PeakBytes("absent"), 0);
  EXPECT_EQ(budget.TotalPeakBytes(), 1150);
  const auto snapshot = budget.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].subsystem, "outbox");
  EXPECT_EQ(snapshot[0].current_bytes, 30);
  EXPECT_EQ(snapshot[0].peak_bytes, 150);
}

TEST(SketchPool, StoresFloat32ColumnMajor) {
  algo::SketchPool pool(/*nodes=*/8, /*columns=*/4);
  EXPECT_EQ(pool.bytes(), 8 * 4 * sizeof(float));
  pool.Store(3, 2, 1.5f);
  EXPECT_EQ(pool.Load(3, 2), 1.5f);
  EXPECT_EQ(pool.LoadBits(3, 2), std::bit_cast<std::uint32_t>(1.5f));
  pool.StoreBits(7, 0, std::bit_cast<std::uint32_t>(0.25f));
  EXPECT_EQ(pool.Load(7, 0), 0.25f);
  // Untouched slots are zero.
  EXPECT_EQ(pool.Load(0, 0), 0.0f);
}

void ExpectIdenticalStats(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.all_decided, b.stats.all_decided);
  EXPECT_EQ(a.stats.hit_max_rounds, b.stats.hit_max_rounds);
  EXPECT_EQ(a.stats.first_decide_round, b.stats.first_decide_round);
  EXPECT_EQ(a.stats.last_decide_round, b.stats.last_decide_round);
  EXPECT_EQ(a.stats.decide_round, b.stats.decide_round);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.sends_per_node, b.stats.sends_per_node);
  EXPECT_EQ(a.stats.total_message_bits, b.stats.total_message_bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.edges_processed, b.stats.edges_processed);
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.count_exact, b.count_exact);
  EXPECT_EQ(a.count_max_rel_error, b.count_max_rel_error);
  EXPECT_EQ(a.max_correct, b.max_correct);
  EXPECT_EQ(a.consensus_agreement, b.consensus_agreement);
  EXPECT_EQ(a.consensus_valid, b.consensus_valid);
}

// The tentpole pin: the SoA float32 pool is a pure layout change. Every
// statistic and every graded answer must be bit-identical to the per-node
// vector layout, for each hjswy variant, on an oblivious and an adaptive
// adversary, serial and parallel.
TEST(SketchPoolPin, PooledLayoutIsBitIdenticalToPerNode) {
  for (const Algorithm algorithm :
       {Algorithm::kHjswyEstimate, Algorithm::kHjswyCensus,
        Algorithm::kHjswyStrict}) {
    for (const std::string adversary : {"spine-gnp", "adaptive-desc"}) {
      for (const int threads : {1, 2}) {
        RunConfig config;
        config.n = 192;
        config.T = 2;
        config.seed = 12345;
        config.adversary.kind = adversary;
        config.max_rounds = 100'000;
        config.threads = threads;

        config.pooled_sketches = false;
        const RunResult per_node = RunAlgorithm(algorithm, config);
        config.pooled_sketches = true;
        const RunResult pooled = RunAlgorithm(algorithm, config);
        SCOPED_TRACE(std::string(ToString(algorithm)) + " on " + adversary +
                     " threads=" + std::to_string(threads));
        ExpectIdenticalStats(per_node, pooled);
      }
    }
  }
}

// track_sum doubles the pool columns (two sketches per node); pin that
// layout too.
TEST(SketchPoolPin, TrackSumPooledLayoutIsBitIdentical) {
  RunConfig config;
  config.n = 96;
  config.T = 2;
  config.seed = 7;
  config.adversary.kind = "spine-expander";
  config.hjswy.track_sum = true;

  config.pooled_sketches = false;
  const RunResult per_node = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  config.pooled_sketches = true;
  const RunResult pooled = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  ExpectIdenticalStats(per_node, pooled);
  EXPECT_EQ(per_node.sum_max_rel_error, pooled.sum_max_rel_error);
}

// RunStats::memory reports the deterministic footprint breakdown: the
// engine-owned subsystems always, the sketch pool when a shared budget is
// wired through RunConfig, and the identical bytes at any thread count.
TEST(MemoryAccounting, RunStatsMemoryIsPopulatedAndThreadInvariant) {
  util::MemoryBudget budget;
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 3;
  config.adversary.kind = "spine-gnp";
  config.threads = 1;
  config.memory_budget = &budget;
  const RunResult serial = RunAlgorithm(Algorithm::kHjswyEstimate, config);

  bool saw_pool = false;
  for (const net::MemoryUse& m : serial.stats.memory) {
    if (m.subsystem == "sketch_pool") {
      saw_pool = true;
      // n rows × (count + sum columns reserved only when track_sum) × f32.
      EXPECT_EQ(m.peak_bytes, 192 * 64 * 4);
    }
  }
  EXPECT_TRUE(saw_pool);
  for (const char* subsystem : {"outbox", "programs", "topology"}) {
    bool found = false;
    for (const net::MemoryUse& m : serial.stats.memory) {
      if (m.subsystem == subsystem) {
        found = true;
        EXPECT_GT(m.peak_bytes, 0) << subsystem;
      }
    }
    EXPECT_TRUE(found) << subsystem;
  }

  util::MemoryBudget budget2;
  config.memory_budget = &budget2;
  config.threads = 2;
  const RunResult parallel = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  ASSERT_EQ(serial.stats.memory.size(), parallel.stats.memory.size());
  for (std::size_t i = 0; i < serial.stats.memory.size(); ++i) {
    EXPECT_EQ(serial.stats.memory[i].subsystem,
              parallel.stats.memory[i].subsystem);
    EXPECT_EQ(serial.stats.memory[i].peak_bytes,
              parallel.stats.memory[i].peak_bytes)
        << serial.stats.memory[i].subsystem;
  }
  // The engine-internal budget (no RunConfig::memory_budget) still reports
  // the engine subsystems.
  config.memory_budget = nullptr;
  config.threads = 1;
  const RunResult internal = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  EXPECT_FALSE(internal.stats.memory.empty());
}

class NullView final : public net::AdversaryView {
 public:
  [[nodiscard]] std::int64_t round() const override { return 1; }
  [[nodiscard]] double PublicState(graph::NodeId) const override { return 0; }
  [[nodiscard]] graph::NodeId num_nodes() const override { return 0; }
};

net::RunStats RunHjswyAgainst(net::Adversary& adversary,
                              util::MemoryBudget* budget) {
  const graph::NodeId n = adversary.num_nodes();
  algo::HjswyOptions options;
  options.T = adversary.interval();
  algo::SketchPool pool(static_cast<std::size_t>(n),
                        algo::HjswyProgram::RequiredPoolColumns(options));
  util::Rng base(99);
  std::vector<algo::HjswyProgram> nodes;
  nodes.reserve(static_cast<std::size_t>(n));
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, u, options, base.Fork(static_cast<std::uint64_t>(u)),
                       &pool);
  }
  net::EngineOptions opts;
  opts.flood_probes = 0;
  opts.threads = 1;
  opts.max_rounds = 40;  // throughput/equality pin, not time-to-decide
  opts.memory_budget = budget;
  net::Engine<algo::HjswyProgram> engine(std::move(nodes), adversary, opts);
  return engine.Run();
}

// Satellite: streaming topology at n=65536. Record a keyframe+delta trace,
// then replay it (a) fully materialized through LoadTrace+ReplayAdversary
// and (b) streamed through TraceStreamReader — identical RunStats, and the
// streaming side's live graph bytes bounded by O(E_round), not O(rounds·E).
TEST(StreamingTopology, LargeTraceStreamsBitIdenticalWithBoundedMemory) {
  const graph::NodeId n = 65536;
  const std::int64_t recorded_rounds = 24;
  adversary::AdversaryConfig config;
  config.kind = "spine-expander";
  config.n = n;
  config.T = 2;
  config.seed = 11;
  const auto source = adversary::MakeAdversary(config);

  const std::string path =
      ::testing::TempDir() + "sdn_scale_stream_trace.txt";
  {
    net::TraceRecorder recorder(path, n, /*interval=*/2, /*keyframe_every=*/8);
    graph::DynGraph dyn(n);
    graph::TopologyDelta delta;
    NullView view;
    for (std::int64_t r = 1; r <= recorded_rounds; ++r) {
      source->DeltaFor(r, view, dyn.View(), delta);
      dyn.Apply(delta);
      recorder.Push(dyn.View(), delta);
    }
    recorder.Close();
  }

  // Arm A: the whole trace materialized (rounds · Graph in memory).
  net::RunStats materialized;
  {
    net::Trace trace = net::LoadTrace(path);
    adversary::ReplayAdversary replay(std::move(trace.rounds), trace.interval);
    materialized = RunHjswyAgainst(replay, nullptr);
  }

  // Arm B: streamed from the file, one record at a time.
  util::MemoryBudget budget;
  adversary::StreamingTraceAdversary streaming(path, &budget);
  const net::RunStats streamed = RunHjswyAgainst(streaming, &budget);

  EXPECT_EQ(materialized.rounds, streamed.rounds);
  EXPECT_EQ(materialized.decide_round, streamed.decide_round);
  EXPECT_EQ(materialized.messages_sent, streamed.messages_sent);
  EXPECT_EQ(materialized.sends_per_node, streamed.sends_per_node);
  EXPECT_EQ(materialized.total_message_bits, streamed.total_message_bits);
  EXPECT_EQ(materialized.edges_processed, streamed.edges_processed);
  EXPECT_EQ(materialized.messages_delivered, streamed.messages_delivered);

  // The O(E_round) bound. E_max is the largest single round; the streaming
  // reader may hold one full keyframe edge list plus the delta window (in
  // reused buffers), and the engine one CSR + delta — each a small constant
  // times E_max bytes, nowhere near the rounds·E a materialized sequence
  // costs.
  const std::int64_t e_max = streaming.max_round_edges();
  ASSERT_GT(e_max, n / 2);  // sanity: the expander rounds are E = Θ(n)
  const auto edge_bytes = static_cast<std::int64_t>(sizeof(graph::Edge));
  const std::int64_t stream_peak = budget.PeakBytes("trace_stream");
  EXPECT_GT(stream_peak, 0);
  EXPECT_LE(stream_peak, 8 * (e_max + 64) * edge_bytes);
  const std::int64_t topology_peak = budget.PeakBytes("topology");
  EXPECT_GT(topology_peak, 0);
  // One CSR (edges + adjacency) + offsets + delta window, with 2x slack.
  EXPECT_LE(topology_peak,
            2 * (e_max * (edge_bytes + 2 * edge_bytes) +
                 static_cast<std::int64_t>(n + 1) * 8));
  // And the whole streaming accounting is a sliver of the materialized
  // alternative (rounds·E edges held at once).
  EXPECT_LT(stream_peak + topology_peak,
            materialized.edges_processed * edge_bytes);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdn
