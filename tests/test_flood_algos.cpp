#include "algo/flood_max.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/factory.hpp"
#include "net/engine.hpp"

namespace sdn::algo {
namespace {

using Param = std::tuple<graph::NodeId, std::string, std::uint64_t>;

class FloodAlgoTest : public ::testing::TestWithParam<Param> {};

TEST_P(FloodAlgoTest, MaxIsExactAndLinearRound) {
  const auto& [n, kind, seed] = GetParam();
  adversary::AdversaryConfig config;
  config.kind = kind;
  config.n = n;
  config.T = 1;
  config.seed = seed;
  const auto adv = adversary::MakeAdversary(config);

  std::vector<FloodMaxKnownN> nodes;
  Value expected = kValueMin;
  for (graph::NodeId u = 0; u < n; ++u) {
    const Value input = (u * 37) % 101 - 50;
    expected = std::max(expected, input);
    nodes.emplace_back(u, n, input);
  }
  net::Engine<FloodMaxKnownN> engine(std::move(nodes), *adv, {});
  const net::RunStats stats = engine.Run();
  ASSERT_TRUE(stats.all_decided);
  EXPECT_TRUE(stats.tinterval_ok);
  EXPECT_EQ(stats.rounds, n - 1);
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(engine.node(u).output(), expected) << "node " << u;
  }
}

TEST_P(FloodAlgoTest, ConsensusAgreesOnMinIdValue) {
  const auto& [n, kind, seed] = GetParam();
  adversary::AdversaryConfig config;
  config.kind = kind;
  config.n = n;
  config.T = 1;
  config.seed = seed + 17;
  const auto adv = adversary::MakeAdversary(config);

  std::vector<ConsensusFloodKnownN> nodes;
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, n, static_cast<Value>(1000 + u));
  }
  net::Engine<ConsensusFloodKnownN> engine(std::move(nodes), *adv, {});
  const net::RunStats stats = engine.Run();
  ASSERT_TRUE(stats.all_decided);
  // Min id is 0, so everyone must decide node 0's input.
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(engine.node(u).output(), 1000) << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FloodAlgoTest,
    ::testing::Combine(::testing::Values<graph::NodeId>(2, 5, 32, 100),
                       ::testing::Values("static-path", "spine-rtree",
                                         "spine-expander", "mobile",
                                         "adaptive-desc"),
                       ::testing::Values<std::uint64_t>(1, 99)),
    [](const ::testing::TestParamInfo<Param>& pi) {
      auto name = "n" + std::to_string(std::get<0>(pi.param)) + "_" +
                  std::get<1>(pi.param) + "_s" +
                  std::to_string(std::get<2>(pi.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(FloodMax, MessageBitsAreLogarithmic) {
  const FloodMaxKnownN::Message small{1};
  const FloodMaxKnownN::Message large{1 << 20};
  EXPECT_LE(FloodMaxKnownN::MessageBits(small), 16u);
  EXPECT_LE(FloodMaxKnownN::MessageBits(large), 40u);
}

TEST(FloodMax, NegativeInputsSupported) {
  adversary::AdversaryConfig config;
  config.kind = "static-path";
  config.n = 4;
  const auto adv = adversary::MakeAdversary(config);
  std::vector<FloodMaxKnownN> nodes;
  for (graph::NodeId u = 0; u < 4; ++u) nodes.emplace_back(u, 4, -100 - u);
  net::Engine<FloodMaxKnownN> engine(std::move(nodes), *adv, {});
  (void)engine.Run();
  for (graph::NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(engine.node(u).output(), -100);
  }
}

}  // namespace
}  // namespace sdn::algo
