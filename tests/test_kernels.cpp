// Per-tier equivalence of the deliver-phase SIMD kernels (src/algo/kernels).
//
// The dispatch contract is that every tier — scalar, SSE2, AVX2 — computes
// bit-identical results on the kernels' declared domains, for every length
// (vector body plus scalar tail). These tests force each tier the CPU
// supports via SetIsa (the same switch the SDN_SIMD env var drives) and pin
// the tiers against an inline reference, including the edge cases the wire
// format actually produces: +inf bit patterns (0x7f800000, weight-zero
// coordinates), ties (strict-less must not fire), values straddling the
// sign bit (unsigned — not signed — min), and lengths that are not a
// multiple of any lane width. The final test closes the loop end to end:
// one full hjswy run per tier, RunStats bit-identical.
#include "algo/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/api.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::algo::kernels {
namespace {

std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas = {Isa::kScalar};
  if (BestSupportedIsa() >= Isa::kSse2) isas.push_back(Isa::kSse2);
  if (BestSupportedIsa() >= Isa::kAvx2) isas.push_back(Isa::kAvx2);
  return isas;
}

/// Restores the startup tier after each test so the forced tier never leaks
/// into the rest of the suite.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = ActiveIsa(); }
  void TearDown() override { SetIsa(saved_); }

 private:
  Isa saved_ = Isa::kScalar;
};

// Lengths chosen to hit empty, sub-lane, exact-lane, lane+tail and
// multi-block shapes for both the 4-lane SSE2 and 8-lane AVX2 paths.
constexpr std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                                    15, 16, 17, 31, 32, 33, 63, 64};

TEST_F(KernelsTest, MinU32MatchesScalarReferenceOnEveryTier) {
  util::Rng rng(20260807);
  constexpr std::uint32_t kInfBits = 0x7f800000u;
  for (const std::size_t len : kLengths) {
    // Mix of float32-bit-domain values (the real wire content), +inf
    // sentinels and raw u32s with the sign bit set (pins *unsigned* min).
    std::vector<std::uint32_t> acc0(len);
    std::vector<std::uint32_t> vals(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint32_t r = static_cast<std::uint32_t>(rng());
      acc0[i] = i % 5 == 0 ? kInfBits : r % kInfBits;
      vals[i] = i % 7 == 0 ? static_cast<std::uint32_t>(rng())
                           : static_cast<std::uint32_t>(rng()) % kInfBits;
    }
    std::vector<std::uint32_t> want = acc0;
    for (std::size_t i = 0; i < len; ++i) {
      want[i] = std::min(want[i], vals[i]);
    }
    for (const Isa isa : SupportedIsas()) {
      SetIsa(isa);
      ASSERT_EQ(ActiveIsa(), isa);
      std::vector<std::uint32_t> acc = acc0;
      MinU32(acc.data(), vals.data(), len);
      EXPECT_EQ(acc, want) << ToString(isa) << " len=" << len;
      // The raw pointer the engine hoists per OnReceive must dispatch to
      // the same tier.
      acc = acc0;
      MinU32Kernel()(acc.data(), vals.data(), len);
      EXPECT_EQ(acc, want) << ToString(isa) << " len=" << len << " (fn ptr)";
    }
  }
}

TEST_F(KernelsTest, MinU32IsUnsignedAcrossTheSignBit) {
  // The SSE2 tier emulates unsigned min via a sign-bit flip; these pairs
  // are exactly where a signed min would answer differently.
  const std::uint32_t acc0[] = {0x7fffffffu, 0x80000000u, 0xffffffffu, 1u};
  const std::uint32_t vals[] = {0x80000000u, 0x7fffffffu, 0u, 0xfffffffeu};
  const std::uint32_t want[] = {0x7fffffffu, 0x7fffffffu, 0u, 1u};
  for (const Isa isa : SupportedIsas()) {
    SetIsa(isa);
    std::uint32_t acc[4] = {acc0[0], acc0[1], acc0[2], acc0[3]};
    MinU32(acc, vals, 4);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(acc[i], want[i]) << ToString(isa) << " lane " << i;
    }
  }
}

TEST_F(KernelsTest, LtMaskF64MatchesScalarReferenceOnEveryTier) {
  util::Rng rng(776);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (const std::size_t len : kLengths) {
    std::vector<double> vals(len);
    std::vector<double> mins(len);
    for (std::size_t i = 0; i < len; ++i) {
      // Nonnegative domain with deliberate ties (strict less must not
      // fire) and +inf on both sides.
      mins[i] = i % 6 == 0 ? kInf : static_cast<double>(rng() % 1000);
      vals[i] = i % 4 == 0 ? mins[i]
                           : (i % 9 == 0 ? kInf
                                         : static_cast<double>(rng() % 1000));
    }
    std::uint64_t want = 0;
    for (std::size_t i = 0; i < len; ++i) {
      if (vals[i] < mins[i]) want |= std::uint64_t{1} << i;
    }
    for (const Isa isa : SupportedIsas()) {
      SetIsa(isa);
      const std::vector<double> vals_before = vals;
      const std::vector<double> mins_before = mins;
      EXPECT_EQ(LtMaskF64(vals.data(), mins.data(), len), want)
          << ToString(isa) << " len=" << len;
      // Pure read: no lane of either input may change.
      EXPECT_EQ(vals, vals_before) << ToString(isa);
      EXPECT_EQ(mins, mins_before) << ToString(isa);
    }
  }
}

TEST_F(KernelsTest, LtMaskF64TiesAndInfinities) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double vals[] = {1.0, 2.0, kInf, kInf, 0.0};
  const double mins[] = {1.0, kInf, kInf, 3.0, 0.5};
  // bit set iff vals < mins: {no (tie), yes, no (tie), no, yes}.
  for (const Isa isa : SupportedIsas()) {
    SetIsa(isa);
    EXPECT_EQ(LtMaskF64(vals, mins, 5), 0b10010u) << ToString(isa);
  }
}

TEST_F(KernelsTest, LtMaskF64RejectsOversizedBlocks) {
  const std::vector<double> zeros(65, 0.0);
  EXPECT_THROW((void)LtMaskF64(zeros.data(), zeros.data(), 65),
               util::CheckError);
}

TEST_F(KernelsTest, SetIsaRejectsUnsupportedTier) {
  if (BestSupportedIsa() == Isa::kAvx2) GTEST_SKIP() << "every tier supported";
  EXPECT_THROW(SetIsa(Isa::kAvx2), util::CheckError);
}

TEST_F(KernelsTest, EngineRunStatsIdenticalAcrossTiers) {
  // End to end: one full hjswy workload per supported tier. The kernels sit
  // on the deliver hot path (inbox reduction + sketch merge), so any
  // cross-tier divergence shows up in the sketches and hence in rounds /
  // messages / outputs. Everything except wall-clock timings must match.
  const auto run = [] {
    RunConfig config;
    config.n = 96;
    config.T = 2;
    config.seed = 41;
    config.adversary.kind = "spine-gnp";
    config.max_rounds = 100'000;
    config.validate_tinterval = false;
    return RunAlgorithm(Algorithm::kHjswyEstimate, config);
  };
  SetIsa(Isa::kScalar);
  const RunResult reference = run();
  for (const Isa isa : SupportedIsas()) {
    if (isa == Isa::kScalar) continue;
    SetIsa(isa);
    const RunResult got = run();
    SCOPED_TRACE(ToString(isa));
    EXPECT_EQ(got.stats.rounds, reference.stats.rounds);
    EXPECT_EQ(got.stats.messages_sent, reference.stats.messages_sent);
    EXPECT_EQ(got.stats.messages_delivered,
              reference.stats.messages_delivered);
    EXPECT_EQ(got.stats.total_message_bits,
              reference.stats.total_message_bits);
    EXPECT_EQ(got.stats.decide_round, reference.stats.decide_round);
    EXPECT_EQ(got.count_max_rel_error, reference.count_max_rel_error);
    EXPECT_EQ(got.max_correct, reference.max_correct);
  }
}

}  // namespace
}  // namespace sdn::algo::kernels
