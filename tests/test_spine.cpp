#include "adversary/spine.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {
namespace {

std::vector<SpineSpec> AllSpecs() {
  std::vector<SpineSpec> specs;
  for (const SpineKind kind :
       {SpineKind::kPath, SpineKind::kStar, SpineKind::kBinaryTree,
        SpineKind::kRandomTree, SpineKind::kGnp, SpineKind::kExpander,
        SpineKind::kPathOfCliques}) {
    SpineSpec spec;
    spec.kind = kind;
    specs.push_back(spec);
  }
  return specs;
}

class SpineTest
    : public ::testing::TestWithParam<std::tuple<int, graph::NodeId>> {};

TEST_P(SpineTest, EverySpineIsConnectedAndSpanning) {
  const auto& [spec_index, n] = GetParam();
  const SpineSpec spec = AllSpecs()[static_cast<std::size_t>(spec_index)];
  util::Rng rng(static_cast<std::uint64_t>(n) * 31 + 1);
  for (int draw = 0; draw < 5; ++draw) {
    const graph::Graph g = MakeSpine(spec, n, rng);
    EXPECT_EQ(g.num_nodes(), n) << spec.Name();
    EXPECT_TRUE(graph::IsConnected(g)) << spec.Name() << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpineTest,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values<graph::NodeId>(1, 2, 3, 7, 33, 64)));

TEST(Spine, RelabeledShapesVaryAcrossDraws) {
  SpineSpec spec;
  spec.kind = SpineKind::kPath;
  util::Rng rng(5);
  const graph::Graph a = MakeSpine(spec, 30, rng);
  const graph::Graph b = MakeSpine(spec, 30, rng);
  EXPECT_NE(a, b);  // relabeling applied
  // Still a path: two endpoints, rest degree 2.
  int endpoints = 0;
  for (graph::NodeId u = 0; u < 30; ++u) {
    endpoints += (a.Degree(u) == 1);
  }
  EXPECT_EQ(endpoints, 2);
}

TEST(Spine, CliquesDiameterTracksCliqueCount) {
  SpineSpec spec;
  spec.kind = SpineKind::kPathOfCliques;
  spec.clique_size = 8;
  util::Rng rng(6);
  const graph::Graph g = MakeSpine(spec, 64, rng);
  EXPECT_TRUE(graph::IsConnected(g));
  EXPECT_GE(graph::Diameter(g), 8);  // 8 cliques chained
}

TEST(Spine, CliquesWithRaggedRemainderCoverAllNodes) {
  SpineSpec spec;
  spec.kind = SpineKind::kPathOfCliques;
  spec.clique_size = 8;
  util::Rng rng(7);
  // 61 = 7 full cliques + 5 leftover nodes.
  const graph::Graph g = MakeSpine(spec, 61, rng);
  EXPECT_EQ(g.num_nodes(), 61);
  EXPECT_TRUE(graph::IsConnected(g));
}

TEST(Spine, GnpDefaultDensityConnects) {
  SpineSpec spec;
  spec.kind = SpineKind::kGnp;
  util::Rng rng(8);
  for (int draw = 0; draw < 10; ++draw) {
    EXPECT_TRUE(graph::IsConnected(MakeSpine(spec, 200, rng)));
  }
}

TEST(Spine, NamesAreDescriptive) {
  SpineSpec gnp;
  gnp.kind = SpineKind::kGnp;
  gnp.gnp_p = 0.25;
  EXPECT_EQ(gnp.Name(), "gnp(p=0.25)");
  SpineSpec expander;
  expander.kind = SpineKind::kExpander;
  EXPECT_EQ(expander.Name(), "expander(c=2)");
  SpineSpec cliques;
  cliques.kind = SpineKind::kPathOfCliques;
  cliques.clique_size = 4;
  EXPECT_EQ(cliques.Name(), "cliques(m=4)");
}

}  // namespace
}  // namespace sdn::adversary
