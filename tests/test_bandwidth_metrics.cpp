#include <gtest/gtest.h>

#include <limits>

#include "core/api.hpp"
#include "net/bandwidth.hpp"
#include "net/metrics.hpp"
#include "util/check.hpp"

namespace sdn::net {
namespace {

TEST(BandwidthPolicy, UnboundedIsUnlimited) {
  const BandwidthPolicy policy = BandwidthPolicy::Unbounded();
  EXPECT_EQ(policy.BitLimit(2), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(policy.BitLimit(1 << 20),
            std::numeric_limits<std::int64_t>::max());
}

TEST(BandwidthPolicy, BoundedScalesWithLogN) {
  const BandwidthPolicy policy = BandwidthPolicy::BoundedLogN(64.0, 1);
  EXPECT_EQ(policy.BitLimit(2), 64);
  EXPECT_EQ(policy.BitLimit(1024), 640);
  EXPECT_EQ(policy.BitLimit(1 << 20), 64 * 20);
}

TEST(BandwidthPolicy, FloorDominatesAtTinyN) {
  const BandwidthPolicy policy = BandwidthPolicy::BoundedLogN(64.0, 256);
  EXPECT_EQ(policy.BitLimit(1), 256);
  EXPECT_EQ(policy.BitLimit(4), 256);
  // log term overtakes the floor at n = 16 (64·log2(16) = 256).
  EXPECT_EQ(policy.BitLimit(16), 256);
  EXPECT_GT(policy.BitLimit(32), 256);
}

TEST(BandwidthPolicy, NonIntegerLogRoundsUp) {
  const BandwidthPolicy policy = BandwidthPolicy::BoundedLogN(10.0, 1);
  // log2(3) ≈ 1.585 -> ceil(15.85) = 16.
  EXPECT_EQ(policy.BitLimit(3), 16);
}

TEST(BandwidthPolicy, InvalidMultiplierRejected) {
  BandwidthPolicy policy;
  policy.multiplier = 0.0;
  EXPECT_THROW((void)policy.BitLimit(8), util::CheckError);
}

TEST(BandwidthPolicy, ModeNames) {
  EXPECT_STREQ(ToString(BandwidthMode::kUnbounded), "unbounded");
  EXPECT_STREQ(ToString(BandwidthMode::kBoundedLogN), "bounded-logN");
}

TEST(RunStats, AverageBits) {
  RunStats stats;
  stats.messages_sent = 4;
  stats.total_message_bits = 100;
  EXPECT_DOUBLE_EQ(stats.AvgBitsPerMessage(), 25.0);
  stats.messages_sent = 0;
  EXPECT_DOUBLE_EQ(stats.AvgBitsPerMessage(), 0.0);
}

TEST(RunStats, BitsPerNodeRound) {
  RunStats stats;
  stats.total_message_bits = 1200;
  stats.rounds = 10;
  EXPECT_DOUBLE_EQ(stats.BitsPerNodeRound(12), 10.0);
  EXPECT_DOUBLE_EQ(stats.BitsPerNodeRound(0), 0.0);
  stats.rounds = 0;
  EXPECT_DOUBLE_EQ(stats.BitsPerNodeRound(12), 0.0);
}

TEST(RunStats, OneLineMentionsKeyFields) {
  RunStats stats;
  stats.rounds = 42;
  stats.all_decided = true;
  stats.tinterval_ok = false;
  stats.tinterval_validated = true;
  const std::string line = stats.OneLine();
  EXPECT_NE(line.find("rounds=42"), std::string::npos);
  EXPECT_NE(line.find("VIOLATED"), std::string::npos);
}

TEST(RunStats, OneLineAttributesBandwidthViolations) {
  RunStats stats;
  stats.bandwidth_violation = BandwidthViolation{17, 42, 4096};
  const std::string line = stats.OneLine();
  EXPECT_NE(line.find("BW-VIOLATION(node=17 round=42 bits=4096)"),
            std::string::npos);
  // No violation -> no mention.
  stats.bandwidth_violation.reset();
  EXPECT_EQ(stats.OneLine().find("BW-VIOLATION"), std::string::npos);
}

TEST(RunStats, OneLineReportsUnvalidatedHonestly) {
  // A run with validation off must not print a confident "ok".
  RunStats stats;
  stats.tinterval_ok = true;
  stats.tinterval_validated = false;
  const std::string line = stats.OneLine();
  EXPECT_NE(line.find("tinterval=unvalidated"), std::string::npos);
}

TEST(EngineTimings, ThroughputMath) {
  EngineTimings t;
  EXPECT_DOUBLE_EQ(t.RoundsPerSec(100), 0.0);  // no time recorded yet
  t.total_ns = 2'000'000'000;                  // 2 s
  EXPECT_DOUBLE_EQ(t.RoundsPerSec(100), 50.0);
  EXPECT_DOUBLE_EQ(t.EdgesPerSec(1'000'000), 500'000.0);
  t.topology_ns = 1;
  const std::string line = t.OneLine(100, 1'000'000);
  EXPECT_NE(line.find("rounds/s=50"), std::string::npos);
  EXPECT_NE(line.find("deliver="), std::string::npos);
  EXPECT_NE(line.find("other="), std::string::npos);
}

// The named phases plus the residual partition total_ns exactly — on a real
// run, not just by construction (the engine debug-asserts the same identity
// per round; this pins it in release builds too).
TEST(EngineTimings, PhasesPartitionTotalExactly) {
  RunConfig config;
  config.n = 64;
  config.T = 2;
  config.seed = 7;
  config.adversary.kind = "spine-gnp";
  const RunResult result = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  const EngineTimings& t = result.stats.timings;
  EXPECT_GT(t.total_ns, 0);
  EXPECT_GE(t.other_ns, 0);
  EXPECT_EQ(t.topology_ns + t.validate_ns + t.probe_ns + t.send_ns +
                t.deliver_ns + t.other_ns,
            t.total_ns);
}

}  // namespace
}  // namespace sdn::net
