#include "util/bitio.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::util {
namespace {

TEST(BitIo, FixedWidthRoundTrip) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xffff, 16);
  w.Write(0, 1);
  w.Write(0x123456789abcdef0ULL, 64);
  EXPECT_EQ(w.bit_count(), 84u);

  BitReader r(w.bytes());
  EXPECT_EQ(r.Read(3), 0b101u);
  EXPECT_EQ(r.Read(16), 0xffffu);
  EXPECT_EQ(r.Read(1), 0u);
  EXPECT_EQ(r.Read(64), 0x123456789abcdef0ULL);
}

TEST(BitIo, VarintRoundTripCorpus) {
  const std::vector<std::uint64_t> corpus = {
      0, 1, 127, 128, 300, 16383, 16384,
      std::numeric_limits<std::uint32_t>::max(),
      std::numeric_limits<std::uint64_t>::max()};
  BitWriter w;
  for (const auto v : corpus) w.WriteVarint(v);
  BitReader r(w.bytes());
  for (const auto v : corpus) EXPECT_EQ(r.ReadVarint(), v);
}

TEST(BitIo, SignedVarintRoundTrip) {
  const std::vector<std::int64_t> corpus = {
      0, -1, 1, -64, 63, -65, 1000000, -1000000,
      std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  BitWriter w;
  for (const auto v : corpus) w.WriteSignedVarint(v);
  BitReader r(w.bytes());
  for (const auto v : corpus) EXPECT_EQ(r.ReadSignedVarint(), v);
}

TEST(BitIo, DoubleRoundTrip) {
  const std::vector<double> corpus = {0.0, -0.0, 1.5, -3.25e300, 1e-300};
  BitWriter w;
  for (const double v : corpus) w.WriteDouble(v);
  BitReader r(w.bytes());
  for (const double v : corpus) EXPECT_EQ(r.ReadDouble(), v);
}

TEST(BitIo, RandomizedMixedRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    BitWriter w;
    std::vector<std::uint64_t> vals;
    std::vector<int> widths;
    for (int i = 0; i < 100; ++i) {
      const int bits = static_cast<int>(rng.UniformU64(64)) + 1;
      const std::uint64_t v =
          rng() & (bits == 64 ? ~0ULL : ((1ULL << bits) - 1));
      vals.push_back(v);
      widths.push_back(bits);
      w.Write(v, bits);
    }
    BitReader r(w.bytes());
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(r.Read(widths[static_cast<std::size_t>(i)]),
                vals[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.Write(1, 4);
  BitReader r(w.bytes());
  (void)r.Read(8);           // within the padded byte
  EXPECT_THROW(r.Read(1), CheckError);
}

TEST(BitIo, VarintBitsMatchesWriter) {
  for (const std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 1ULL << 62}) {
    BitWriter w;
    w.WriteVarint(v);
    EXPECT_EQ(VarintBits(v), w.bit_count());
  }
}

TEST(BitIo, BitWidth) {
  EXPECT_EQ(BitWidth(0), 1);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
}

}  // namespace
}  // namespace sdn::util
