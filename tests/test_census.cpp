#include "algo/census.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/factory.hpp"
#include "net/engine.hpp"

namespace sdn::algo {
namespace {

struct CensusRun {
  net::RunStats stats;
  std::vector<CensusOutput> outputs;
};

CensusRun RunCensus(graph::NodeId n, int T, const std::string& kind,
                    std::uint64_t seed, CensusOptions options) {
  adversary::AdversaryConfig config;
  config.kind = kind;
  config.n = n;
  config.T = T;
  config.seed = seed;
  const auto adv = adversary::MakeAdversary(config);

  std::vector<CensusProgram> nodes;
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, static_cast<Value>((u * 13) % 29 - 11), options);
  }
  net::EngineOptions opts;
  opts.bandwidth = net::BandwidthPolicy::BoundedLogN(64.0);
  opts.max_rounds = 10'000'000;
  net::Engine<CensusProgram> engine(std::move(nodes), *adv, opts);
  CensusRun run;
  run.stats = engine.Run();
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto out = engine.node(u).output();
    if (out.has_value()) run.outputs.push_back(*out);
  }
  return run;
}

using Param = std::tuple<graph::NodeId, int, std::string, std::uint64_t>;

class CensusCorrectnessTest : public ::testing::TestWithParam<Param> {};

TEST_P(CensusCorrectnessTest, CountMaxConsensusAllExact) {
  const auto& [n, T, kind, seed] = GetParam();
  CensusOptions options;
  options.pipeline_T = T;
  const CensusRun run = RunCensus(n, T, kind, seed, options);
  ASSERT_TRUE(run.stats.all_decided);
  EXPECT_TRUE(run.stats.tinterval_ok);
  ASSERT_EQ(run.outputs.size(), static_cast<std::size_t>(n));

  Value expected_max = kValueMin;
  for (graph::NodeId u = 0; u < n; ++u) {
    expected_max = std::max(expected_max, static_cast<Value>((u * 13) % 29 - 11));
  }
  const Value expected_consensus = -11;  // node 0's input
  for (const CensusOutput& out : run.outputs) {
    EXPECT_EQ(out.count, n);
    EXPECT_EQ(out.max_value, expected_max);
    EXPECT_EQ(out.consensus_value, expected_consensus);
    // All-or-none decisions imply a common accepted guess.
    EXPECT_EQ(out.accepted_guess, run.outputs.front().accepted_guess);
    EXPECT_GE(out.accepted_guess, n);  // guess k >= n is needed to complete
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CensusCorrectnessTest,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2, 3, 17, 40),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values("static-path", "spine-rtree",
                                         "spine-expander", "adaptive-desc"),
                       ::testing::Values<std::uint64_t>(3, 77)),
    [](const ::testing::TestParamInfo<Param>& pi) {
      auto name = "n" + std::to_string(std::get<0>(pi.param)) + "_T" +
                  std::to_string(std::get<1>(pi.param)) + "_" +
                  std::get<2>(pi.param) + "_s" +
                  std::to_string(std::get<3>(pi.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Census, LargerPipelineTReducesRounds) {
  // The T-interval speedup: same network, larger T → fewer rounds.
  const graph::NodeId n = 48;
  CensusOptions t1;
  t1.pipeline_T = 1;
  CensusOptions t8;
  t8.pipeline_T = 8;
  const CensusRun slow = RunCensus(n, 8, "spine-rtree", 5, t1);
  const CensusRun fast = RunCensus(n, 8, "spine-rtree", 5, t8);
  ASSERT_TRUE(slow.stats.all_decided);
  ASSERT_TRUE(fast.stats.all_decided);
  EXPECT_LT(fast.stats.rounds, slow.stats.rounds);
  EXPECT_EQ(fast.outputs.front().count, n);
}

TEST(Census, RoundGrowthIsSuperlinear) {
  // The baseline's defining property: rounds grow ~quadratically in N.
  CensusOptions options;
  options.pipeline_T = 1;
  const CensusRun small = RunCensus(12, 1, "spine-expander", 2, options);
  const CensusRun large = RunCensus(48, 1, "spine-expander", 2, options);
  ASSERT_TRUE(small.stats.all_decided);
  ASSERT_TRUE(large.stats.all_decided);
  // 4x nodes should cost clearly more than 4x rounds.
  EXPECT_GT(large.stats.rounds, 6 * small.stats.rounds);
}

TEST(Census, ScheduleLocateIsConsistent) {
  CensusOptions options;
  options.pipeline_T = 3;
  const CensusProgram node(0, 0, options);
  std::int64_t last_guess = 0;
  std::int64_t verify_rounds_seen = 0;
  bool seen_last = false;
  for (net::Round r = 1; r <= 2000; ++r) {
    const auto pos = node.Locate(r);
    EXPECT_GE(pos.guess_k, last_guess);
    if (pos.guess_k > last_guess) {
      // Guesses double.
      if (last_guess > 0) {
        EXPECT_EQ(pos.guess_k, 2 * last_guess);
      }
      last_guess = pos.guess_k;
    }
    if (pos.verifying) ++verify_rounds_seen;
    seen_last |= pos.last_round_of_guess;
    if (!pos.verifying) {
      EXPECT_LT(pos.stage * node.band_size(), pos.guess_k + node.band_size());
    }
  }
  EXPECT_GT(verify_rounds_seen, 0);
  EXPECT_TRUE(seen_last);
}

TEST(Census, LocateFastMatchesLocate) {
  for (const int T : {1, 3, 8}) {
    CensusOptions options;
    options.pipeline_T = T;
    const CensusProgram node(0, 0, options);
    const auto expect_same = [&node, T](net::Round r) {
      const auto slow = node.Locate(r);
      const auto fast = node.LocateFast(r);
      EXPECT_EQ(fast.guess_k, slow.guess_k) << "T=" << T << " r=" << r;
      EXPECT_EQ(fast.verifying, slow.verifying) << "T=" << T << " r=" << r;
      EXPECT_EQ(fast.stage, slow.stage) << "T=" << T << " r=" << r;
      EXPECT_EQ(fast.window, slow.window) << "T=" << T << " r=" << r;
      EXPECT_EQ(fast.verify_round, slow.verify_round)
          << "T=" << T << " r=" << r;
      EXPECT_EQ(fast.last_round_of_guess, slow.last_round_of_guess)
          << "T=" << T << " r=" << r;
    };
    for (net::Round r = 1; r <= 3000; ++r) expect_same(r);
    // Non-monotone probes force the cursor's backward reset.
    for (const net::Round r : {2999, 17, 1, 1500, 2, 3000}) expect_same(r);
  }
}

TEST(Census, StageLengthIsMultipleOfT) {
  CensusOptions options;
  options.pipeline_T = 7;
  const CensusProgram node(0, 0, options);
  for (const std::int64_t k : {1, 2, 8, 64, 1024}) {
    EXPECT_EQ(node.StageLength(k) % 7, 0);
    EXPECT_GE(node.StageLength(k), 2 * k);
  }
}

TEST(Census, ScheduleIsContiguousAndMonotone) {
  // Every round maps to exactly one position; guesses change only at a
  // last_round_of_guess boundary, and segment order is stages->verification.
  for (const int T : {1, 2, 5}) {
    CensusOptions options;
    options.pipeline_T = T;
    const CensusProgram node(0, 0, options);
    auto prev = node.Locate(1);
    for (net::Round r = 2; r <= 3000; ++r) {
      const auto pos = node.Locate(r);
      if (pos.guess_k != prev.guess_k) {
        EXPECT_TRUE(prev.last_round_of_guess) << "T=" << T << " r=" << r;
        EXPECT_FALSE(pos.verifying);
        EXPECT_EQ(pos.stage, 0);
      } else if (prev.verifying) {
        EXPECT_TRUE(pos.verifying);  // verification is the final segment
        EXPECT_EQ(pos.verify_round, prev.verify_round + 1);
      } else if (pos.verifying) {
        EXPECT_EQ(pos.verify_round, 0);
      } else {
        EXPECT_GE(pos.stage, prev.stage);
        EXPECT_GE(pos.window, prev.window);
      }
      prev = pos;
    }
  }
}

TEST(Census, WindowsAlignWithPipelineT) {
  CensusOptions options;
  options.pipeline_T = 4;
  const CensusProgram node(0, 0, options);
  // Within a guess, window index advances exactly every T rounds.
  std::int64_t last_window = -1;
  std::int64_t rounds_in_window = 0;
  for (net::Round r = 1; r <= 500; ++r) {
    const auto pos = node.Locate(r);
    if (pos.verifying) continue;
    if (pos.window != last_window) {
      if (last_window >= 0 && pos.window == last_window + 1) {
        EXPECT_EQ(rounds_in_window, 4);
      }
      last_window = pos.window;
      rounds_in_window = 0;
    }
    ++rounds_in_window;
  }
}

TEST(Census, MessageBitsWithinLogBudget) {
  CensusProgram::Message token;
  token.tag = CensusProgram::Tag::kToken;
  token.token = 4095;
  token.min_id = 4095;
  token.min_id_value = -1000000;
  token.max_value = 1000000;
  EXPECT_LE(CensusProgram::MessageBits(token), 120u);
  CensusProgram::Message verify;
  verify.tag = CensusProgram::Tag::kVerify;
  verify.hash = (1ULL << 48) - 1;
  EXPECT_LE(CensusProgram::MessageBits(verify), 51u);
}

TEST(Census, KnowledgeIsMonotoneAndSaturatesBeforeDeciding) {
  // Dissemination progress property on a worst-case static path: total
  // network knowledge (Σ |census_u|, readable via PublicState) never
  // shrinks, reaches full saturation N², and only then do nodes decide —
  // with the exact count. Uses the engine's step API for mid-run probing.
  const graph::NodeId n = 12;
  const int T = 4;
  adversary::AdversaryConfig config;
  config.kind = "static-path";
  config.n = n;
  config.T = T;
  const auto adv = adversary::MakeAdversary(config);
  CensusOptions options;
  options.pipeline_T = T;
  std::vector<CensusProgram> nodes;
  for (graph::NodeId u = 0; u < n; ++u) nodes.emplace_back(u, 0, options);
  net::EngineOptions opts;
  opts.max_rounds = 100000;
  net::Engine<CensusProgram> engine(std::move(nodes), *adv, opts);

  const auto knowledge = [&] {
    double total = 0;
    for (graph::NodeId u = 0; u < n; ++u) total += engine.node(u).PublicState();
    return total;
  };
  const double saturated = static_cast<double>(n) * n;
  double last = knowledge();
  bool was_saturated_before_decide = false;
  while (engine.Step()) {
    const double now = knowledge();
    EXPECT_GE(now, last) << "round " << engine.current_round();
    last = now;
    if (engine.node(0).HasDecided()) {
      was_saturated_before_decide = (now >= saturated);
      break;
    }
  }
  EXPECT_TRUE(was_saturated_before_decide);
  while (engine.Step()) {
  }
  EXPECT_TRUE(engine.stats().all_decided);
  EXPECT_EQ(engine.node(0).output()->count, n);
}

TEST(Census, SingleNodeDecidesQuickly) {
  CensusOptions options;
  options.pipeline_T = 1;
  const CensusRun run = RunCensus(1, 1, "static-path", 1, options);
  ASSERT_TRUE(run.stats.all_decided);
  EXPECT_EQ(run.outputs.front().count, 1);
  EXPECT_LE(run.stats.rounds, 16);
}

}  // namespace
}  // namespace sdn::algo
