#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace sdn::util {
namespace {

TEST(Check, PassingConditionIsSilent) {
  SDN_CHECK(1 + 1 == 2);
  SDN_CHECK_MSG(true, "never rendered");
}

TEST(Check, FailureThrowsWithExpressionText) {
  try {
    SDN_CHECK(2 + 2 == 5);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, MessageIsStreamedIntoError) {
  const int n = 42;
  try {
    SDN_CHECK_MSG(n < 0, "n was " << n << " (wanted negative)");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n was 42"), std::string::npos);
  }
}

TEST(Check, MessageExpressionNotEvaluatedOnSuccess) {
  int evaluations = 0;
  const auto count = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  SDN_CHECK_MSG(true, count());
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, CheckErrorIsALogicError) {
  EXPECT_THROW(SDN_CHECK(false), std::logic_error);
}

}  // namespace
}  // namespace sdn::util
