#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <vector>

#include <cstdlib>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::graph {
namespace {

TEST(Edge, NormalizesEndpointOrder) {
  const Edge e(5, 2);
  EXPECT_EQ(e.u, 2);
  EXPECT_EQ(e.v, 5);
}

TEST(Edge, SelfLoopRejected) { EXPECT_THROW(Edge(3, 3), util::CheckError); }

TEST(Graph, EmptyGraph) {
  const Graph g(4);
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(Graph, DuplicateEdgesCollapse) {
  const std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 1}, {1, 2}};
  const Graph g(3, edges);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.Degree(1), 2);
}

TEST(Graph, NeighborsSortedAndSymmetric) {
  const std::vector<Edge> edges = {{2, 0}, {0, 1}, {2, 1}};
  const Graph g(3, edges);
  const auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1);
  EXPECT_EQ(n0[1], 2);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
}

TEST(Graph, OutOfRangeEdgeRejected) {
  const std::vector<Edge> edges = {{0, 3}};
  EXPECT_THROW(Graph(3, edges), util::CheckError);
}

TEST(Graph, WithEdgesMerges) {
  const std::vector<Edge> base = {{0, 1}};
  const Graph g(4, base);
  const std::vector<Edge> extra = {{1, 2}, {0, 1}};
  const Graph h = g.WithEdges(extra);
  EXPECT_EQ(h.num_edges(), 2);
  EXPECT_EQ(g.num_edges(), 1);  // original untouched
}

TEST(EdgeIntersection, KeepsOnlyCommonEdges) {
  const std::vector<Edge> e1 = {{0, 1}, {1, 2}, {2, 3}};
  const std::vector<Edge> e2 = {{0, 1}, {2, 3}, {0, 3}};
  const std::vector<Graph> gs = {Graph(4, e1), Graph(4, e2)};
  const Graph common = EdgeIntersection(gs);
  EXPECT_EQ(common.num_edges(), 2);
  EXPECT_TRUE(common.HasEdge(0, 1));
  EXPECT_TRUE(common.HasEdge(2, 3));
  EXPECT_FALSE(common.HasEdge(1, 2));
}

TEST(EdgeIntersection, MismatchedSizesRejected) {
  const std::vector<Graph> gs = {Graph(3), Graph(4)};
  EXPECT_THROW(EdgeIntersection(gs), util::CheckError);
}

TEST(UnionFind, MergesAndCounts) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(4));
}

TEST(Bfs, DistancesOnPath) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const Graph g(4, edges);
  const auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[3], 3);
}

TEST(Bfs, UnreachableIsMinusOne) {
  const std::vector<Edge> edges = {{0, 1}};
  const Graph g(3, edges);
  const auto d = BfsDistances(g, 0);
  EXPECT_EQ(d[2], -1);
  EXPECT_FALSE(IsConnected(g));
}

TEST(Connectivity, SingleNodeIsConnected) { EXPECT_TRUE(IsConnected(Graph(1))); }

TEST(Diameter, KnownValues) {
  const std::vector<Edge> path = {{0, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(Diameter(Graph(4, path)), 3);
  const std::vector<Edge> star = {{0, 1}, {0, 2}, {0, 3}};
  EXPECT_EQ(Diameter(Graph(4, star)), 2);
  EXPECT_EQ(Diameter(Graph(2, std::vector<Edge>{{0, 1}})), 1);
  EXPECT_EQ(Diameter(Graph(1)), 0);
  EXPECT_EQ(Diameter(Graph(2)), -1);  // disconnected
}

TEST(BfsSpanningTree, CoversConnectedGraph) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {2, 3}};
  const auto tree = BfsSpanningTree(Graph(4, edges), 0);
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->size(), 3u);
  // A spanning tree of a connected graph connects everything.
  EXPECT_TRUE(IsConnected(Graph(4, *tree)));
}

TEST(BfsSpanningTree, DisconnectedReturnsNullopt) {
  EXPECT_FALSE(BfsSpanningTree(Graph(3, std::vector<Edge>{{0, 1}}), 0).has_value());
}

TEST(ComponentLabels, GroupsByComponent) {
  const std::vector<Edge> edges = {{0, 1}, {2, 3}};
  const auto labels = ComponentLabels(Graph(5, edges));
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[4], labels[0]);
}

TEST(Bfs, DistancesAreLipschitzAcrossEdges) {
  // Property: |dist(u) - dist(v)| <= 1 for every edge (u,v), on random
  // connected graphs.
  util::Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = ConnectedGnp(60, 0.06, rng);
    const auto src = static_cast<NodeId>(rng.UniformU64(60));
    const auto dist = BfsDistances(g, src);
    for (const Edge& e : g.Edges()) {
      EXPECT_LE(std::abs(dist[static_cast<std::size_t>(e.u)] -
                         dist[static_cast<std::size_t>(e.v)]),
                1);
    }
    // And every non-source node has a neighbor strictly closer.
    for (NodeId u = 0; u < 60; ++u) {
      if (u == src) continue;
      bool has_closer = false;
      for (const NodeId v : g.Neighbors(u)) {
        has_closer |= dist[static_cast<std::size_t>(v)] ==
                      dist[static_cast<std::size_t>(u)] - 1;
      }
      EXPECT_TRUE(has_closer) << "node " << u;
    }
  }
}

TEST(SpanningForestSize, CountsTreeEdges) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}, {3, 4}};
  EXPECT_EQ(SpanningForestSize(Graph(5, edges)), 3);
  EXPECT_EQ(SpanningForestSize(Graph(5)), 0);
}

}  // namespace
}  // namespace sdn::graph
