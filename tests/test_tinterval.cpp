#include "graph/tinterval.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace sdn::graph {
namespace {

std::vector<Graph> Repeat(const Graph& g, int times) {
  return std::vector<Graph>(static_cast<std::size_t>(times), g);
}

TEST(ValidateTInterval, StaticConnectedPassesAnyT) {
  const auto seq = Repeat(Path(6), 10);
  for (const int T : {1, 2, 3, 10}) {
    const auto report = ValidateTInterval(seq, T);
    EXPECT_TRUE(report.ok) << "T=" << T;
    EXPECT_EQ(report.min_stable_forest, 5);
  }
}

TEST(ValidateTInterval, DisconnectedRoundFailsT1) {
  std::vector<Graph> seq = Repeat(Path(4), 3);
  seq[1] = Graph(4, std::vector<Edge>{{0, 1}});  // disconnected round
  const auto report = ValidateTInterval(seq, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.first_bad_window, 1);
}

TEST(ValidateTInterval, SlidingWindowViolationDetected) {
  // Two alternating spanning trees that share no edges: each round is
  // connected (T=1 fine) but no 2-window has a common connected subgraph.
  const Graph a = Path(4);                                      // 0-1-2-3
  const Graph b(4, std::vector<Edge>{{0, 2}, {2, 1}, {1, 3}});  // disjoint path
  const std::vector<Graph> seq = {a, b, a, b};
  EXPECT_TRUE(ValidateTInterval(seq, 1).ok);
  const auto report = ValidateTInterval(seq, 2);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.first_bad_window, 0);
}

TEST(ValidateTInterval, AlignedRewireWithoutOverlapViolatesSlidingPromise) {
  // The naive "new spine every T rounds" adversary: windows straddling the
  // boundary fail. This pins down why adversaries need the overlap trick.
  util::Rng rng(1);
  const Graph s1 = RandomTree(16, rng);
  Graph s2 = RandomTree(16, rng);
  while (EdgeIntersection(std::vector<Graph>{s1, s2}).num_edges() >= 15) {
    s2 = RandomTree(16, rng);  // ensure the spines actually differ
  }
  const std::vector<Graph> seq = {s1, s1, s1, s2, s2, s2};
  const auto report = ValidateTInterval(seq, 3);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.first_bad_window, 1);
}

TEST(ValidateTInterval, OverlapRepairsStraddlingWindows) {
  util::Rng rng(2);
  const Graph s1 = RandomTree(16, rng);
  const Graph s2 = RandomTree(16, rng);
  const Graph both = s1.WithEdges(s2.Edges());
  // Era length 3, T=3: first T-1=2 rounds of era 2 carry both spines.
  const std::vector<Graph> seq = {s1, s1, s1, both, both, s2};
  EXPECT_TRUE(ValidateTInterval(seq, 3).ok);
}

TEST(ValidateTInterval, ShortSequenceUsesAvailableWindows) {
  const auto report = ValidateTInterval(Repeat(Path(4), 2), 5);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.windows_checked, 1);
}

TEST(ValidateTInterval, MinStableForestMeasuresIntersectionRichness) {
  // Static path: every window's intersection is the full spanning tree.
  const auto path_seq = Repeat(Path(5), 6);
  EXPECT_EQ(ValidateTInterval(path_seq, 3).min_stable_forest, 4);
  // Drop to a single shared edge in one window: forest size 1.
  std::vector<Graph> seq = Repeat(Path(4), 4);
  seq[2] = Graph(4, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});  // star
  const auto report = ValidateTInterval(seq, 2);
  EXPECT_FALSE(report.ok);  // path ∩ star = {(0,1)} is not spanning
  EXPECT_EQ(report.min_stable_forest, 1);
}

TEST(TIntervalChecker, StreamingMatchesBatch) {
  const Graph a = Path(4);
  const Graph b(4, std::vector<Edge>{{0, 2}, {2, 1}, {1, 3}});
  const std::vector<Graph> seq = {a, a, b, b, a};
  const auto batch = ValidateTInterval(seq, 2);

  TIntervalChecker checker(4, 2);
  bool ok = true;
  std::int64_t first_bad = -1;
  std::int64_t round = 0;
  for (const Graph& g : seq) {
    const bool now = checker.Push(g);
    if (ok && !now) first_bad = round - 1;
    ok = now;
    ++round;
  }
  EXPECT_EQ(checker.ok(), batch.ok);
  EXPECT_EQ(checker.first_bad_window(), batch.first_bad_window);
  EXPECT_EQ(first_bad, batch.first_bad_window);
}

TEST(TIntervalChecker, PassesStaticSequence) {
  TIntervalChecker checker(5, 3);
  const Graph g = Cycle(5);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(checker.Push(g));
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.rounds_seen(), 20);
}

}  // namespace
}  // namespace sdn::graph
