#include "graph/tinterval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::graph {
namespace {

std::vector<Graph> Repeat(const Graph& g, int times) {
  return std::vector<Graph>(static_cast<std::size_t>(times), g);
}

TEST(ValidateTInterval, StaticConnectedPassesAnyT) {
  const auto seq = Repeat(Path(6), 10);
  for (const int T : {1, 2, 3, 10}) {
    const auto report = ValidateTInterval(seq, T);
    EXPECT_TRUE(report.ok) << "T=" << T;
    EXPECT_EQ(report.min_stable_forest, 5);
  }
}

TEST(ValidateTInterval, DisconnectedRoundFailsT1) {
  std::vector<Graph> seq = Repeat(Path(4), 3);
  seq[1] = Graph(4, std::vector<Edge>{{0, 1}});  // disconnected round
  const auto report = ValidateTInterval(seq, 1);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.first_bad_window, 1);
}

TEST(ValidateTInterval, SlidingWindowViolationDetected) {
  // Two alternating spanning trees that share no edges: each round is
  // connected (T=1 fine) but no 2-window has a common connected subgraph.
  const Graph a = Path(4);                                      // 0-1-2-3
  const Graph b(4, std::vector<Edge>{{0, 2}, {2, 1}, {1, 3}});  // disjoint path
  const std::vector<Graph> seq = {a, b, a, b};
  EXPECT_TRUE(ValidateTInterval(seq, 1).ok);
  const auto report = ValidateTInterval(seq, 2);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.first_bad_window, 0);
}

TEST(ValidateTInterval, AlignedRewireWithoutOverlapViolatesSlidingPromise) {
  // The naive "new spine every T rounds" adversary: windows straddling the
  // boundary fail. This pins down why adversaries need the overlap trick.
  util::Rng rng(1);
  const Graph s1 = RandomTree(16, rng);
  Graph s2 = RandomTree(16, rng);
  while (EdgeIntersection(std::vector<Graph>{s1, s2}).num_edges() >= 15) {
    s2 = RandomTree(16, rng);  // ensure the spines actually differ
  }
  const std::vector<Graph> seq = {s1, s1, s1, s2, s2, s2};
  const auto report = ValidateTInterval(seq, 3);
  EXPECT_FALSE(report.ok);
  EXPECT_GE(report.first_bad_window, 1);
}

TEST(ValidateTInterval, OverlapRepairsStraddlingWindows) {
  util::Rng rng(2);
  const Graph s1 = RandomTree(16, rng);
  const Graph s2 = RandomTree(16, rng);
  const Graph both = s1.WithEdges(s2.Edges());
  // Era length 3, T=3: first T-1=2 rounds of era 2 carry both spines.
  const std::vector<Graph> seq = {s1, s1, s1, both, both, s2};
  EXPECT_TRUE(ValidateTInterval(seq, 3).ok);
}

TEST(ValidateTInterval, ShortSequenceUsesAvailableWindows) {
  const auto report = ValidateTInterval(Repeat(Path(4), 2), 5);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.windows_checked, 1);
}

TEST(ValidateTInterval, MinStableForestMeasuresIntersectionRichness) {
  // Static path: every window's intersection is the full spanning tree.
  const auto path_seq = Repeat(Path(5), 6);
  EXPECT_EQ(ValidateTInterval(path_seq, 3).min_stable_forest, 4);
  // Drop to a single shared edge in one window: forest size 1.
  std::vector<Graph> seq = Repeat(Path(4), 4);
  seq[2] = Graph(4, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});  // star
  const auto report = ValidateTInterval(seq, 2);
  EXPECT_FALSE(report.ok);  // path ∩ star = {(0,1)} is not spanning
  EXPECT_EQ(report.min_stable_forest, 1);
}

TEST(ValidateTInterval, ShortSequenceIsExactlyTheClampedWindows) {
  // Doc pin: a sequence shorter than T has no complete window and there is
  // no separate partial-tail notion — the promise clamps to the
  // len - min(T, len) + 1 = 1 whole-prefix window, whose intersection must
  // itself be connected.
  const Graph a = Path(4);
  const Graph star(4, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}});
  const auto bad = ValidateTInterval(std::vector<Graph>{a, star}, 5);
  EXPECT_FALSE(bad.ok);  // path ∩ star = {(0,1)} disconnects the prefix
  EXPECT_EQ(bad.windows_checked, 1);
  EXPECT_EQ(bad.first_bad_window, 0);
  EXPECT_EQ(bad.min_stable_forest, 1);
  const auto good = ValidateTInterval(std::vector<Graph>{a, a, a}, 7);
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.windows_checked, 1);
  EXPECT_EQ(good.min_stable_forest, 3);
}

TEST(ValidateTInterval, EarlyExitAgreesOnVerdictAndStopsThere) {
  const Graph a = Path(4);
  const Graph b(4, std::vector<Edge>{{0, 2}, {2, 1}, {1, 3}});
  const std::vector<Graph> seq = {a, a, b, b, a, b, a};
  const auto full = ValidateTInterval(seq, 2, ValidateMode::kFull);
  const auto fast = ValidateTInterval(seq, 2, ValidateMode::kEarlyExit);
  ASSERT_FALSE(full.ok);
  EXPECT_FALSE(fast.ok);
  EXPECT_EQ(fast.first_bad_window, full.first_bad_window);
  EXPECT_LT(fast.windows_checked, full.windows_checked);
  // On a clean sequence both modes see every window.
  const std::vector<Graph> clean = {a, a, a, a};
  const auto clean_full = ValidateTInterval(clean, 2, ValidateMode::kFull);
  const auto clean_fast = ValidateTInterval(clean, 2, ValidateMode::kEarlyExit);
  EXPECT_TRUE(clean_fast.ok);
  EXPECT_EQ(clean_fast.windows_checked, clean_full.windows_checked);
  EXPECT_EQ(clean_fast.min_stable_forest, clean_full.min_stable_forest);
}

TEST(IncrementalForest, TracksConnectivityUnderChurn) {
  const auto key = [](NodeId u, NodeId v) {
    return (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
           static_cast<std::uint64_t>(std::max(u, v));
  };
  IncrementalForest f(4);
  f.BeginRebuild();
  f.Insert(0, 1, key(0, 1));
  f.Insert(1, 2, key(1, 2));
  EXPECT_FALSE(f.dirty());
  EXPECT_FALSE(f.connected());
  EXPECT_EQ(f.forest_size(), 2);
  f.Insert(2, 3, key(2, 3));
  EXPECT_TRUE(f.connected());
  EXPECT_EQ(f.forest_size(), 3);
  // A cycle edge is non-tree: inserting and erasing it never dirties.
  f.Insert(0, 3, key(0, 3));
  EXPECT_EQ(f.tree_edges(), 3);
  f.Erase(key(0, 3));
  EXPECT_FALSE(f.dirty());
  EXPECT_TRUE(f.connected());
  // Erasing a tree edge forces the lazy rebuild before queries resolve.
  f.Erase(key(1, 2));
  EXPECT_TRUE(f.dirty());
  f.BeginRebuild();
  f.Insert(0, 1, key(0, 1));
  f.Insert(2, 3, key(2, 3));
  EXPECT_FALSE(f.connected());
  EXPECT_EQ(f.forest_size(), 2);
  // Reset re-targets the node count and drops everything.
  f.Reset(3);
  f.BeginRebuild();
  f.Insert(0, 2, key(0, 2));
  f.Insert(1, 2, key(1, 2));
  EXPECT_TRUE(f.connected());
  EXPECT_EQ(f.forest_size(), 2);
}

TEST(TIntervalChecker, StreamingMatchesBatch) {
  const Graph a = Path(4);
  const Graph b(4, std::vector<Edge>{{0, 2}, {2, 1}, {1, 3}});
  const std::vector<Graph> seq = {a, a, b, b, a};
  const auto batch = ValidateTInterval(seq, 2);

  TIntervalChecker checker(4, 2);
  bool ok = true;
  std::int64_t first_bad = -1;
  std::int64_t round = 0;
  for (const Graph& g : seq) {
    const bool now = checker.Push(g);
    if (ok && !now) first_bad = round - 1;
    ok = now;
    ++round;
  }
  EXPECT_EQ(checker.ok(), batch.ok);
  EXPECT_EQ(checker.first_bad_window(), batch.first_bad_window);
  EXPECT_EQ(first_bad, batch.first_bad_window);
}

TEST(TIntervalChecker, PassesStaticSequence) {
  TIntervalChecker checker(5, 3);
  const Graph g = Cycle(5);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(checker.Push(g));
  EXPECT_TRUE(checker.ok());
  EXPECT_EQ(checker.rounds_seen(), 20);
}

TEST(TIntervalChecker, FeedModesMustNotMix) {
  TIntervalChecker checker(4, 2);
  EXPECT_TRUE(checker.Push(Path(4)));
  const RoundComposition comp;  // never reached: the mode check fires first
  EXPECT_THROW((void)checker.PushComposition(comp, Path(4)),
               util::CheckError);
}

/// Largest T' <= T the batch validator accepts — the quantity the streaming
/// checker's certified_T() claims to equal (window connectivity is downward
/// closed in window length, so the accepted T' form a prefix).
std::int64_t BatchCertifiedT(std::span<const Graph> seq, int T) {
  std::int64_t cert = 0;
  for (int t = 1; t <= T; ++t) {
    if (!ValidateTInterval(seq, t).ok) break;
    cert = t;
  }
  return cert;
}

/// A sorted duplicate-free batch of `k` random edges on n nodes.
std::vector<Edge> RandomEdges(NodeId n, int k, util::Rng& rng) {
  std::vector<Edge> edges;
  for (int i = 0; i < k; ++i) {
    const auto u = static_cast<NodeId>(rng.UniformU64(
        static_cast<std::uint64_t>(n)));
    const auto v = static_cast<NodeId>(rng.UniformU64(
        static_cast<std::uint64_t>(n)));
    if (u != v) edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

TEST(TIntervalChecker, FuzzStreamingFeedsMatchBatch) {
  // Randomized equivalence: Push and PushDelta against the batch validator
  // on churny sequences — persistent tree (redrawn with some probability,
  // planting violations) plus per-round volatile extras. Every reported
  // field must agree, including certified-T and the forest minimum.
  util::Rng rng(424242);
  const NodeId n = 10;
  for (int iter = 0; iter < 60; ++iter) {
    const int T = std::array<int, 3>{1, 2, 5}[static_cast<std::size_t>(iter % 3)];
    const int len = 1 + static_cast<int>(rng.UniformU64(12));
    Graph tree = RandomTree(n, rng);
    std::vector<Graph> seq;
    std::vector<Edge> round_edges;
    for (int r = 0; r < len; ++r) {
      if (rng.Bernoulli(0.3)) tree = RandomTree(n, rng);
      UnionSorted(tree.Edges(), RandomEdges(n, 5, rng), round_edges);
      seq.emplace_back(n, std::span<const Edge>(round_edges));
    }
    const auto batch = ValidateTInterval(seq, T);
    TIntervalChecker push_checker(n, T);
    TIntervalChecker delta_checker(n, T);
    Graph prev(n);
    for (const Graph& g : seq) {
      const bool a = push_checker.Push(g);
      const bool b = delta_checker.PushDelta(Diff(prev, g));
      EXPECT_EQ(a, b);
      prev = g;
    }
    for (const TIntervalChecker* c : {&push_checker, &delta_checker}) {
      EXPECT_EQ(c->ok(), batch.ok) << "iter " << iter << " T=" << T;
      EXPECT_EQ(c->first_bad_window(), batch.first_bad_window)
          << "iter " << iter << " T=" << T;
      EXPECT_EQ(c->min_stable_forest(), batch.min_stable_forest)
          << "iter " << iter << " T=" << T;
      EXPECT_EQ(c->certified_T(), BatchCertifiedT(seq, T))
          << "iter " << iter << " T=" << T;
    }
  }
}

TEST(TIntervalChecker, FuzzCompositionMatchesBatch) {
  // Same equivalence for the certification fast path, over synthetic
  // era-structured streams shaped like the stable-spine adversary: pinned
  // per-era spines (stable id -> stable span), an overlap round carrying
  // both spines, per-round fresh extras. Odd iterations drop the overlap,
  // so era-straddling windows lose their witness and force the exact
  // reconstruction fallback — usually a genuine violation.
  util::Rng rng(2026);
  const NodeId n = 12;
  for (int iter = 0; iter < 36; ++iter) {
    const int T = std::array<int, 3>{1, 2, 5}[static_cast<std::size_t>(iter % 3)];
    const int era_len = std::max(T, 2);
    const bool honest = iter % 2 == 0;
    const int len =
        1 + static_cast<int>(rng.UniformU64(
                static_cast<std::uint64_t>(4 * era_len)));
    // Pinned spans with shared owners, as the composition contract requires.
    std::map<std::uint64_t, std::shared_ptr<const std::vector<Edge>>> spines;
    const auto spine_for = [&](std::uint64_t era)
        -> const std::shared_ptr<const std::vector<Edge>>& {
      auto it = spines.find(era);
      if (it == spines.end()) {
        const Graph t = RandomTree(n, rng);
        it = spines
                 .emplace(era, std::make_shared<const std::vector<Edge>>(
                                   t.Edges().begin(), t.Edges().end()))
                 .first;
      }
      return it->second;
    };
    std::vector<Graph> seq;
    std::vector<RoundComposition> comps;
    std::vector<std::vector<Edge>> fresh_store(
        static_cast<std::size_t>(len));
    std::vector<Edge> scratch;
    for (int r = 1; r <= len; ++r) {
      const auto era = static_cast<std::uint64_t>((r - 1) / era_len);
      const bool overlap = honest && era > 0 && (r - 1) % era_len < T - 1;
      const std::shared_ptr<const std::vector<Edge>>& core = spine_for(era);
      fresh_store[static_cast<std::size_t>(r - 1)] =
          RandomEdges(n, static_cast<int>(rng.UniformU64(4)), rng);
      const std::vector<Edge>& fresh =
          fresh_store[static_cast<std::size_t>(r - 1)];
      RoundComposition comp;
      comp.core = *core;
      comp.core_id = era;
      comp.core_owner = core;
      comp.fresh = fresh;
      std::vector<Edge> all;
      if (overlap) {
        const auto& prev_spine = spine_for(era - 1);
        comp.support = *prev_spine;
        comp.support_id = era - 1;
        comp.support_owner = prev_spine;
        UnionSorted(*core, *prev_spine, scratch);
        UnionSorted(scratch, fresh, all);
      } else {
        UnionSorted(*core, fresh, all);
      }
      seq.emplace_back(n, std::span<const Edge>(all));
      comps.push_back(comp);
    }
    TIntervalChecker comp_checker(n, T);
    TIntervalChecker push_checker(n, T);
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const bool a = comp_checker.PushComposition(comps[i], seq[i]);
      const bool b = push_checker.Push(seq[i]);
      EXPECT_EQ(a, b) << "iter " << iter << " round " << i + 1;
    }
    const auto batch = ValidateTInterval(seq, T);
    EXPECT_EQ(comp_checker.ok(), batch.ok) << "iter " << iter;
    EXPECT_EQ(comp_checker.first_bad_window(), batch.first_bad_window)
        << "iter " << iter;
    EXPECT_EQ(comp_checker.min_stable_forest(), batch.min_stable_forest)
        << "iter " << iter;
    EXPECT_EQ(comp_checker.certified_T(), BatchCertifiedT(seq, T))
        << "iter " << iter;
    EXPECT_EQ(comp_checker.stable_edge_count(), -1);
  }
}

TEST(TIntervalChecker, CompositionLiesAreCaught) {
  // A claim whose union disagrees with the round must throw (first-seen ids
  // are fully verified), never silently certify.
  const auto claimed = std::make_shared<const std::vector<Edge>>(
      std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const Graph actual(6, std::vector<Edge>{{1, 2}, {2, 3}, {3, 4}, {4, 5}});
  RoundComposition comp;
  comp.core = *claimed;  // (0,1) is not in the round
  comp.core_id = 0;
  comp.core_owner = claimed;
  TIntervalChecker checker(6, 2);
  EXPECT_THROW((void)checker.PushComposition(comp, actual),
               util::CheckError);
}

TEST(TIntervalChecker, CompositionWithoutOwnerIsRejected) {
  // The span-lifetime contract: a non-empty core/support span must carry a
  // shared owner, or the checker refuses the claim outright. A bare span
  // could dangle the moment the adversary rotates its era buffers.
  const std::vector<Edge> bare = {{0, 1}, {1, 2}, {2, 3}};
  const Graph actual(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  RoundComposition comp;
  comp.core = bare;
  comp.core_id = 0;  // no core_owner set
  TIntervalChecker checker(4, 2);
  EXPECT_THROW((void)checker.PushComposition(comp, actual),
               util::CheckError);
}

TEST(TIntervalChecker, SpineCachePinsPublishedBuffer) {
  // Span identity across era revisits: the checker's spine cache must hold
  // the *published* buffer via its shared owner, not a copy. After the
  // producer drops its reference, the owner's data pointer (captured at
  // publish time) must still be what the record pins — use_count proves the
  // cache took shared ownership instead of copying.
  auto spine = std::make_shared<const std::vector<Edge>>(
      std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const Edge* const published_data = spine->data();
  const Graph round(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  RoundComposition comp;
  comp.core = *spine;
  comp.core_id = 7;
  comp.core_owner = spine;
  TIntervalChecker checker(5, 2);
  EXPECT_TRUE(checker.PushComposition(comp, round));
  // The checker now co-owns the buffer (producer + cache).
  EXPECT_GE(spine.use_count(), 2);
  // Producer rotates away; the cached record must keep the bytes alive at
  // the same address — feed the same id again from a fresh span over the
  // original owner and the checker must accept without re-verification.
  std::weak_ptr<const std::vector<Edge>> weak = spine;
  spine.reset();
  EXPECT_FALSE(weak.expired()) << "checker must pin the published buffer";
  const auto pinned = weak.lock();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->data(), published_data);
  RoundComposition again;
  again.core = *pinned;
  again.core_id = 7;
  again.core_owner = pinned;
  EXPECT_TRUE(checker.PushComposition(again, round));
}

}  // namespace
}  // namespace sdn::graph
