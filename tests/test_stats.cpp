#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace sdn::util {
namespace {

TEST(Accumulator, MomentsMatchClosedForm) {
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SingleSampleHasZeroVariance) {
  Accumulator acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Summarize, EmptyIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, QuantilesOfArithmeticSequence) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(i);
  const Summary s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.p95, 96.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(QuantileSorted, InterpolatesBetweenPoints) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(xs, 1.0), 10.0);
}

TEST(BootstrapMeanCI, CoversTrueMeanOfTightSample) {
  Rng rng(1);
  std::vector<double> xs(200);
  for (auto& x : xs) x = 10.0 + rng.UniformDouble();
  const Interval ci = BootstrapMeanCI(xs, 0.95, 500, rng);
  EXPECT_LT(ci.lo, 10.55);
  EXPECT_GT(ci.hi, 10.45);
  EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(LogLogSlope, RecoversPowerLaw) {
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 2.0; v <= 1024.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.7));
  }
  EXPECT_NEAR(LogLogSlope(x, y), 1.7, 1e-9);
}

TEST(LogLogSlope, SkipsNonPositivePoints) {
  const std::vector<double> x = {-1.0, 2.0, 4.0, 8.0};
  const std::vector<double> y = {5.0, 4.0, 8.0, 16.0};
  EXPECT_NEAR(LogLogSlope(x, y), 1.0, 1e-9);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(HumanCount, Scales) {
  EXPECT_EQ(HumanCount(12), "12");
  EXPECT_EQ(HumanCount(1234), "1.23k");
  EXPECT_EQ(HumanCount(5.6e6), "5.60M");
  EXPECT_EQ(HumanCount(7.1e9), "7.10G");
}

}  // namespace
}  // namespace sdn::util
