#include "core/simulation.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace sdn {
namespace {

RunConfig SmallConfig() {
  RunConfig config;
  config.n = 24;
  config.T = 2;
  config.seed = 9;
  config.adversary.kind = "spine-rtree";
  return config;
}

TEST(Simulation, StepwiseMatchesOneShotRun) {
  const RunConfig config = SmallConfig();
  Simulation sim(Algorithm::kHjswyCensus, config);
  std::int64_t steps = 0;
  while (sim.Step()) ++steps;
  const RunResult stepped = sim.Finish();
  const RunResult oneshot = RunAlgorithm(Algorithm::kHjswyCensus, config);
  EXPECT_EQ(stepped.stats.rounds, oneshot.stats.rounds);
  EXPECT_EQ(stepped.stats.rounds, steps);
  EXPECT_EQ(stepped.stats.messages_sent, oneshot.stats.messages_sent);
  EXPECT_EQ(stepped.Ok(), oneshot.Ok());
  EXPECT_TRUE(stepped.Ok());
}

TEST(Simulation, MidRunInspection) {
  Simulation sim(Algorithm::kFloodMaxKnownN, SmallConfig());
  EXPECT_EQ(sim.Round(), 0);
  EXPECT_FALSE(sim.Finished());
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(sim.Round(), 1);
  EXPECT_EQ(sim.NumNodes(), 24);
  // Round-1 topology is a real connected graph on all nodes.
  EXPECT_EQ(sim.CurrentTopology().num_nodes(), 24);
  EXPECT_TRUE(graph::IsConnected(sim.CurrentTopology()));
  // Nobody decides before round N-1 in flood-max.
  for (graph::NodeId u = 0; u < 24; ++u) {
    EXPECT_FALSE(sim.NodeDecided(u));
  }
  const net::RunStats mid = sim.Stats();
  EXPECT_EQ(mid.rounds, 1);
  EXPECT_FALSE(mid.all_decided);
  EXPECT_EQ(mid.messages_sent, 24);
}

TEST(Simulation, RunToCompletionDecidesEveryone) {
  Simulation sim(Algorithm::kKloCommittee, SmallConfig());
  sim.RunToCompletion();
  EXPECT_TRUE(sim.Finished());
  for (graph::NodeId u = 0; u < 24; ++u) {
    EXPECT_TRUE(sim.NodeDecided(u));
  }
  EXPECT_TRUE(sim.Finish().Ok());
}

TEST(Simulation, StepAfterFinishIsNoOp) {
  Simulation sim(Algorithm::kFloodMaxKnownN, SmallConfig());
  sim.RunToCompletion();
  const std::int64_t final_round = sim.Round();
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.Round(), final_round);
}

TEST(Simulation, PublicStateEvolves) {
  // flood-max publishes the running max; it must be non-decreasing and end
  // at the global max everywhere.
  RunConfig config = SmallConfig();
  config.inputs.assign(24, 1);
  config.inputs[17] = 500;
  Simulation sim(Algorithm::kFloodMaxKnownN, config);
  double before = sim.NodePublicState(0);
  while (sim.Step()) {
    const double now = sim.NodePublicState(0);
    EXPECT_GE(now, before);
    before = now;
  }
  for (graph::NodeId u = 0; u < 24; ++u) {
    EXPECT_DOUBLE_EQ(sim.NodePublicState(u), 500.0);
  }
}

TEST(Simulation, GradeMidRunReportsPartialState) {
  Simulation sim(Algorithm::kFloodMaxKnownN, SmallConfig());
  (void)sim.Step();
  const RunResult mid = sim.Finish();
  EXPECT_FALSE(mid.stats.all_decided);
  EXPECT_FALSE(mid.Ok());
}

}  // namespace
}  // namespace sdn
