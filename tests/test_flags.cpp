#include "util/flags.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace sdn::util {
namespace {

Flags Make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  Flags f = Make({"--n=128", "--eps=0.25", "--name=hello"});
  EXPECT_EQ(f.GetInt("n", 0), 128);
  EXPECT_DOUBLE_EQ(f.GetDouble("eps", 0.0), 0.25);
  EXPECT_EQ(f.GetString("name", ""), "hello");
}

TEST(Flags, SpaceSyntax) {
  Flags f = Make({"--n", "64", "--name", "x"});
  EXPECT_EQ(f.GetInt("n", 0), 64);
  EXPECT_EQ(f.GetString("name", ""), "x");
}

TEST(Flags, BareFlagIsTrue) {
  Flags f = Make({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("quiet", false));
}

TEST(Flags, BoolSpellings) {
  EXPECT_TRUE(Make({"--a=yes"}).GetBool("a", false));
  EXPECT_TRUE(Make({"--a=1"}).GetBool("a", false));
  EXPECT_FALSE(Make({"--a=no"}).GetBool("a", true));
  EXPECT_FALSE(Make({"--a=0"}).GetBool("a", true));
}

TEST(Flags, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_EQ(f.GetInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 1.5), 1.5);
  EXPECT_EQ(f.GetString("s", "d"), "d");
}

TEST(Flags, IntList) {
  Flags f = Make({"--sizes=16,32,64"});
  const auto v = f.GetIntList("sizes", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 16);
  EXPECT_EQ(v[2], 64);
}

TEST(Flags, IntListDefault) {
  Flags f = Make({});
  const auto v = f.GetIntList("sizes", {1, 2});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Flags, PositionalArgsPreserved) {
  Flags f = Make({"input.txt", "--n=1", "other"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(Flags, MalformedIntThrows) {
  Flags f = Make({"--n=abc"});
  EXPECT_THROW(f.GetInt("n", 0), CheckError);
}

TEST(Flags, UnconsumedDetection) {
  Flags f = Make({"--n=1", "--typo=2"});
  (void)f.GetInt("n", 0);
  const auto unconsumed = f.UnconsumedFlags();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
}

TEST(Flags, UsageListsRegisteredFlags) {
  Flags f = Make({});
  (void)f.GetInt("n", 5, "node count");
  const std::string usage = f.Usage("prog");
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("node count"), std::string::npos);
}

}  // namespace
}  // namespace sdn::util
