#include "net/flooding.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"

namespace sdn::net {
namespace {

using graph::Graph;

TEST(FloodProbe, SingleNodeCompletesInstantly) {
  const FloodProbe p(1, 0, 1);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.completion_rounds(), 0);
}

TEST(FloodProbe, PathFromEndTakesNMinus1Rounds) {
  const Graph g = graph::Path(6);
  FloodProbe p(6, 0, 1);
  std::int64_t round = 1;
  while (!p.complete()) {
    p.Push(round, g);
    ++round;
  }
  EXPECT_EQ(p.completion_rounds(), 5);
}

TEST(FloodProbe, StarFromLeafTakesTwoRounds) {
  const Graph g = graph::Star(8);
  FloodProbe p(8, 3, 1);
  p.Push(1, g);
  EXPECT_FALSE(p.complete());
  p.Push(2, g);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.completion_rounds(), 2);
}

TEST(FloodProbe, IgnoresRoundsBeforeStart) {
  const Graph g = graph::Complete(4);
  FloodProbe p(4, 0, 3);
  p.Push(1, g);
  p.Push(2, g);
  EXPECT_FALSE(p.complete());
  p.Push(3, g);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.completion_rounds(), 1);
}

TEST(FloodProbe, DynamicSequenceUsesEachRoundsTopology) {
  // Round 1: only 0-1 exists. Round 2: only 1-2. Round 3: only 2-3.
  const graph::NodeId n = 4;
  std::vector<Graph> seq;
  seq.emplace_back(n, std::vector<graph::Edge>{{0, 1}, {2, 3}});
  seq.emplace_back(n, std::vector<graph::Edge>{{1, 2}, {0, 1}});
  seq.emplace_back(n, std::vector<graph::Edge>{{2, 3}, {0, 1}});
  FloodProbe p(n, 0, 1);
  for (std::int64_t r = 1; r <= 3; ++r) {
    p.Push(r, seq[static_cast<std::size_t>(r - 1)]);
  }
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.completion_rounds(), 3);
}

TEST(SummarizeProbes, AggregatesCompletions) {
  const Graph g = graph::Complete(5);
  std::vector<FloodProbe> probes;
  probes.emplace_back(5, 0, 1);
  probes.emplace_back(5, 2, 1);
  probes.emplace_back(5, 1, 100);  // never starts
  for (auto& p : probes) p.Push(1, g);
  const FloodingSummary s = SummarizeProbes(probes);
  EXPECT_EQ(s.probes, 3);
  EXPECT_EQ(s.completed, 2);
  EXPECT_EQ(s.max_rounds, 1);
  EXPECT_DOUBLE_EQ(s.mean_rounds, 1.0);
}

TEST(DynamicFloodingTime, StaticGraphEqualsDiameterish) {
  const auto seq = std::vector<Graph>(10, graph::Path(5));
  EXPECT_EQ(DynamicFloodingTime(seq), 4);
  const auto star = std::vector<Graph>(10, graph::Star(5));
  EXPECT_EQ(DynamicFloodingTime(star), 2);
}

TEST(DynamicFloodingTime, TooShortSequenceReturnsMinusOne) {
  const auto seq = std::vector<Graph>(2, graph::Path(5));
  EXPECT_EQ(DynamicFloodingTime(seq), -1);
}

}  // namespace
}  // namespace sdn::net
