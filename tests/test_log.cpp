#include "util/log.hpp"

#include <gtest/gtest.h>

namespace sdn::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelIsSettable) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(Log, FilteredMessagesDoNotCrash) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These are dropped by the filter; the assertions are that the macros are
  // usable as statements and never throw.
  SDN_LOG_DEBUG << "dropped " << 42;
  SDN_LOG_INFO << "dropped too";
  SDN_LOG_WARN << "dropped as well";
}

TEST(Log, EmittingMessagesDoNotCrash) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  SDN_LOG_ERROR << "test error line (expected in test output)";
  SDN_LOG_DEBUG << "test debug line (expected in test output)";
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kDebug));
}

}  // namespace
}  // namespace sdn::util
