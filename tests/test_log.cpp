#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace sdn::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelIsSettable) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(Log, FilteredMessagesDoNotCrash) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  // These are dropped by the filter; the assertions are that the macros are
  // usable as statements and never throw.
  SDN_LOG_DEBUG << "dropped " << 42;
  SDN_LOG_INFO << "dropped too";
  SDN_LOG_WARN << "dropped as well";
}

TEST(Log, EmittingMessagesDoNotCrash) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  SDN_LOG_ERROR << "test error line (expected in test output)";
  SDN_LOG_DEBUG << "test debug line (expected in test output)";
}

TEST(Log, ParseLogLevelAcceptsTheFourNames) {
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
}

TEST(Log, ParseLogLevelRejectsGarbageWithoutCrashing) {
  // An invalid SDN_LOG_LEVEL must fall back to the default, never abort:
  // InitFromEnv only applies the parse when it succeeds.
  EXPECT_EQ(ParseLogLevel(nullptr), std::nullopt);
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("DEBUG"), std::nullopt);  // case-sensitive
  EXPECT_EQ(ParseLogLevel("warn "), std::nullopt);
}

TEST(Log, ConcurrentLogLinesNeverInterleave) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  // The sink runs under the emission mutex, so plain vector pushes are safe
  // — that serialization is exactly what the test pins down.
  std::vector<std::string> lines;
  SetLogSink([&lines](const std::string& line) { lines.push_back(line); });

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        SDN_LOG_INFO << "thread=" << t << " msg=" << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  SetLogSink(nullptr);

  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (const std::string& line : lines) {
    // Every captured line is exactly one whole message: one prefix, one
    // terminator, no fragments of other messages spliced in.
    EXPECT_EQ(line.rfind("[info] thread=", 0), 0u) << line;
    EXPECT_EQ(line.find(" end"), line.size() - 4) << line;
    EXPECT_EQ(line.find("[info]", 1), std::string::npos) << line;
  }
}

TEST(Log, SinkReceivesFormattedLineAndRestores) {
  const LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  std::vector<std::string> lines;
  SetLogSink([&lines](const std::string& line) { lines.push_back(line); });
  SDN_LOG_WARN << "hello " << 7;
  SDN_LOG_DEBUG << "filtered, never reaches the sink";
  SetLogSink(nullptr);
  SDN_LOG_WARN << "back to stderr (expected in test output)";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[warn] hello 7");
}

TEST(Log, OrderingOfLevels) {
  EXPECT_LT(static_cast<int>(LogLevel::kError),
            static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn),
            static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo),
            static_cast<int>(LogLevel::kDebug));
}

}  // namespace
}  // namespace sdn::util
