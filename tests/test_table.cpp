#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace sdn::util {
namespace {

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "rounds"});
  t.AddRow({"alpha", "10"});
  t.AddRow({"b", "12345"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  |"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header + rule + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_EQ(t.data()[0].size(), 3u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(Table, CsvRoundTripWithEscapes) {
  Table t({"k", "v"});
  t.AddRow({"plain", "1"});
  t.AddRow({"with,comma", "with\"quote"});
  const std::string path = "/tmp/sdn_test_table.csv";
  t.WriteCsv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"with\"\"quote\"");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sdn::util
