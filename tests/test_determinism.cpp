// Thread-count invariance of the parallel engine (docs/PERF.md).
//
// EngineOptions::threads is documented as a pure throughput knob: every
// statistic except the wall-clock timings must be bit-identical whether the
// send/deliver phases ran serially, on two lanes, or on every hardware lane
// (with topology prefetch on oblivious adversaries). These tests pin that
// contract for representative algorithms on an oblivious adversary
// (spine-gnp, prefetch exercised) and an adaptive one (adaptive-desc,
// prefetch disabled, parallel phases still on). n = 192 gives 3 shards, so
// threads > 1 genuinely takes the pool path.
#include <gtest/gtest.h>

#include <vector>

#include "core/api.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace sdn {
namespace {

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.all_decided, b.stats.all_decided);
  EXPECT_EQ(a.stats.hit_max_rounds, b.stats.hit_max_rounds);
  EXPECT_EQ(a.stats.first_decide_round, b.stats.first_decide_round);
  EXPECT_EQ(a.stats.last_decide_round, b.stats.last_decide_round);
  EXPECT_EQ(a.stats.decide_round, b.stats.decide_round);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.sends_per_node, b.stats.sends_per_node);
  EXPECT_EQ(a.stats.total_message_bits, b.stats.total_message_bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.bandwidth_violation.has_value(),
            b.stats.bandwidth_violation.has_value());
  EXPECT_EQ(a.stats.edges_processed, b.stats.edges_processed);
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.stats.flooding.probes, b.stats.flooding.probes);
  EXPECT_EQ(a.stats.flooding.completed, b.stats.flooding.completed);
  EXPECT_EQ(a.stats.flooding.max_rounds, b.stats.flooding.max_rounds);
  EXPECT_EQ(a.count_exact, b.count_exact);
  EXPECT_EQ(a.max_correct, b.max_correct);
  EXPECT_EQ(a.consensus_agreement, b.consensus_agreement);
}

void CheckThreadInvariance(Algorithm algorithm, const std::string& adversary,
                           std::int64_t max_rounds) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = adversary;
  config.max_rounds = max_rounds;
  config.validate_tinterval = false;

  // 1 = serial reference, 2 = minimal parallel, 0 = every hardware lane.
  config.threads = 1;
  const RunResult serial = RunAlgorithm(algorithm, config);
  for (const int threads : {2, 0}) {
    config.threads = threads;
    const RunResult parallel = RunAlgorithm(algorithm, config);
    SCOPED_TRACE(std::string(ToString(algorithm)) + " on " + adversary +
                 " threads=" + std::to_string(threads));
    ExpectIdenticalRuns(serial, parallel);
  }
}

TEST(Determinism, HjswyCensusOnObliviousSpine) {
  CheckThreadInvariance(Algorithm::kHjswyCensus, "spine-gnp", 100'000);
}

TEST(Determinism, HjswyCensusOnAdaptiveAdversary) {
  CheckThreadInvariance(Algorithm::kHjswyCensus, "adaptive-desc", 100'000);
}

// Census needs ~N²/T rounds at this N; cap it (like the committee below) so
// the suite stays fast even under sanitizers. hjswy above covers the
// run-to-completion (all_decided) path.
TEST(Determinism, KloCensusOnObliviousSpine) {
  CheckThreadInvariance(Algorithm::kKloCensusT, "spine-gnp", 3'000);
}

TEST(Determinism, KloCensusOnAdaptiveAdversary) {
  CheckThreadInvariance(Algorithm::kKloCensusT, "adaptive-desc", 3'000);
}

// The committee protocol is O(N²) rounds; a tight max_rounds keeps the test
// fast and additionally pins that *truncated* runs are thread-invariant too.
TEST(Determinism, KloCommitteeOnObliviousSpine) {
  CheckThreadInvariance(Algorithm::kKloCommittee, "spine-gnp", 2'000);
}

TEST(Determinism, KloCommitteeOnAdaptiveAdversary) {
  CheckThreadInvariance(Algorithm::kKloCommittee, "adaptive-desc", 2'000);
}

// The flight recorder is pure observation: attaching it (at any thread
// count) must leave every statistic bit-identical to the untraced run, and
// the deterministic subset of the metrics registry must match too.
TEST(Determinism, TracingOnOrOffIsInvisibleToRunStats) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = "spine-gnp";
  config.validate_tinterval = false;
  config.collect_metrics = true;

  config.threads = 1;
  const RunResult untraced = RunAlgorithm(Algorithm::kHjswyCensus, config);

  for (const int threads : {1, 0}) {
    obs::FlightRecorder recorder;
    config.threads = threads;
    config.recorder = &recorder;
    const RunResult traced = RunAlgorithm(Algorithm::kHjswyCensus, config);
    config.recorder = nullptr;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdenticalRuns(untraced, traced);
    EXPECT_GT(recorder.total_emitted(), 0u);
    EXPECT_EQ(untraced.stats.metrics.Deterministic(),
              traced.stats.metrics.Deterministic());
  }
}

}  // namespace
}  // namespace sdn
