// Thread-count and overlap-toggle invariance of the parallel engine
// (docs/PERF.md).
//
// EngineOptions::threads is documented as a pure throughput knob: every
// statistic except the wall-clock timings must be bit-identical whether the
// send/deliver phases ran serially, on two lanes, or on every hardware lane
// (with topology prefetch on oblivious adversaries). These tests pin that
// contract for representative algorithms on an oblivious adversary
// (spine-gnp, prefetch exercised) and an adaptive one (adaptive-desc,
// prefetch disabled, parallel phases still on). n = 192 gives 3 shards, so
// threads > 1 genuinely takes the pool path.
//
// The pipelining overlaps (prefetch_topology, async_certification,
// fused_send_deliver) carry the same contract: each is a pure scheduling
// change, so the overlap matrix below runs every toggle individually and
// all together, across thread counts and across oblivious / adaptive /
// streaming-trace adversaries, against an all-overlaps-off serial
// reference.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/streaming_trace.hpp"
#include "algo/hjswy.hpp"
#include "algo/sketch_pool.hpp"
#include "core/api.hpp"
#include "graph/delta.hpp"
#include "net/engine.hpp"
#include "net/trace.hpp"
#include "obs/anomaly.hpp"
#include "obs/openmetrics.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace sdn {
namespace {

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.all_decided, b.stats.all_decided);
  EXPECT_EQ(a.stats.hit_max_rounds, b.stats.hit_max_rounds);
  EXPECT_EQ(a.stats.first_decide_round, b.stats.first_decide_round);
  EXPECT_EQ(a.stats.last_decide_round, b.stats.last_decide_round);
  EXPECT_EQ(a.stats.decide_round, b.stats.decide_round);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.sends_per_node, b.stats.sends_per_node);
  EXPECT_EQ(a.stats.total_message_bits, b.stats.total_message_bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.bandwidth_violation.has_value(),
            b.stats.bandwidth_violation.has_value());
  EXPECT_EQ(a.stats.edges_processed, b.stats.edges_processed);
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.stats.flooding.probes, b.stats.flooding.probes);
  EXPECT_EQ(a.stats.flooding.completed, b.stats.flooding.completed);
  EXPECT_EQ(a.stats.flooding.max_rounds, b.stats.flooding.max_rounds);
  EXPECT_EQ(a.count_exact, b.count_exact);
  EXPECT_EQ(a.max_correct, b.max_correct);
  EXPECT_EQ(a.consensus_agreement, b.consensus_agreement);
}

void CheckThreadInvariance(Algorithm algorithm, const std::string& adversary,
                           std::int64_t max_rounds) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = adversary;
  config.max_rounds = max_rounds;
  config.validate_tinterval = false;

  // 1 = serial reference, 2 = minimal parallel, 0 = every hardware lane.
  config.threads = 1;
  const RunResult serial = RunAlgorithm(algorithm, config);
  for (const int threads : {2, 0}) {
    config.threads = threads;
    const RunResult parallel = RunAlgorithm(algorithm, config);
    SCOPED_TRACE(std::string(ToString(algorithm)) + " on " + adversary +
                 " threads=" + std::to_string(threads));
    ExpectIdenticalRuns(serial, parallel);
  }
}

// One overlap-matrix sweep: an all-overlaps-off serial run is the
// reference; each pipelining toggle alone, and all three together, must
// reproduce it bit-for-bit at threads 1, 2 and hardware. Certification is
// ON here (unlike the thread-invariance tests above) so the
// async-certification lane is genuinely exercised and its verdict fields
// are compared against the synchronous checker's.
void CheckOverlapInvariance(Algorithm algorithm, const std::string& adversary,
                            std::int64_t max_rounds) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = adversary;
  config.max_rounds = max_rounds;
  config.validate_tinterval = true;

  config.threads = 1;
  config.prefetch_topology = false;
  config.async_certification = false;
  config.fused_send_deliver = false;
  const RunResult reference = RunAlgorithm(algorithm, config);
  EXPECT_TRUE(reference.stats.tinterval_validated);
  EXPECT_TRUE(reference.stats.tinterval_ok);

  // {prefetch_topology, async_certification, fused_send_deliver}.
  constexpr bool kRows[4][3] = {{true, false, false},
                                {false, true, false},
                                {false, false, true},
                                {true, true, true}};
  for (const auto& row : kRows) {
    for (const int threads : {1, 2, 0}) {
      config.prefetch_topology = row[0];
      config.async_certification = row[1];
      config.fused_send_deliver = row[2];
      config.threads = threads;
      SCOPED_TRACE(std::string(ToString(algorithm)) + " on " + adversary +
                   " prefetch=" + std::to_string(row[0]) +
                   " async_cert=" + std::to_string(row[1]) +
                   " fused=" + std::to_string(row[2]) +
                   " threads=" + std::to_string(threads));
      const RunResult run = RunAlgorithm(algorithm, config);
      ExpectIdenticalRuns(reference, run);
      EXPECT_EQ(reference.stats.tinterval_validated,
                run.stats.tinterval_validated);
      EXPECT_EQ(reference.stats.tinterval_ok, run.stats.tinterval_ok);
      EXPECT_EQ(reference.stats.certified_T, run.stats.certified_T);
      EXPECT_EQ(reference.stats.min_stable_forest, run.stats.min_stable_forest);
      EXPECT_EQ(reference.stats.tinterval_first_bad_window,
                run.stats.tinterval_first_bad_window);
    }
  }
}

TEST(Determinism, HjswyCensusOnObliviousSpine) {
  CheckThreadInvariance(Algorithm::kHjswyCensus, "spine-gnp", 100'000);
}

TEST(Determinism, HjswyCensusOnAdaptiveAdversary) {
  CheckThreadInvariance(Algorithm::kHjswyCensus, "adaptive-desc", 100'000);
}

// Census needs ~N²/T rounds at this N; cap it (like the committee below) so
// the suite stays fast even under sanitizers. hjswy above covers the
// run-to-completion (all_decided) path.
TEST(Determinism, KloCensusOnObliviousSpine) {
  CheckThreadInvariance(Algorithm::kKloCensusT, "spine-gnp", 3'000);
}

TEST(Determinism, KloCensusOnAdaptiveAdversary) {
  CheckThreadInvariance(Algorithm::kKloCensusT, "adaptive-desc", 3'000);
}

// The committee protocol is O(N²) rounds; a tight max_rounds keeps the test
// fast and additionally pins that *truncated* runs are thread-invariant too.
TEST(Determinism, KloCommitteeOnObliviousSpine) {
  CheckThreadInvariance(Algorithm::kKloCommittee, "spine-gnp", 2'000);
}

TEST(Determinism, KloCommitteeOnAdaptiveAdversary) {
  CheckThreadInvariance(Algorithm::kKloCommittee, "adaptive-desc", 2'000);
}

// Overlap matrix, oblivious arm: spine-gnp claims compositions, so the
// async-certification rows here push composition claims (+ owned edge
// copies) through the certification lane, and prefetch + fusion both
// engage at threads > 1.
TEST(Determinism, OverlapTogglesOnObliviousSpine) {
  CheckOverlapInvariance(Algorithm::kHjswyCensus, "spine-gnp", 100'000);
}

// Overlap matrix, adaptive arm: prefetch and fusion are gated off by the
// engine (the adversary samples PublicState between rounds), so these rows
// pin that the toggles are safe no-ops there while the async checker still
// consumes per-round deltas off the critical path.
TEST(Determinism, OverlapTogglesOnAdaptiveAdversary) {
  CheckOverlapInvariance(Algorithm::kKloCensusT, "adaptive-desc", 3'000);
}

// Overlap matrix, streaming arm: record a spine trace to disk, then replay
// it through StreamingTraceAdversary — delta-native, strictly sequential
// DeltaFor, not registered in the factory, so this row runs the engine
// directly. The single-slot prefetch lane must preserve the reader's
// in-order contract, and the async checker must certify from the owned
// delta copies while the trace reader's buffers are reused underneath it.
TEST(Determinism, OverlapTogglesOnStreamingTrace) {
  const graph::NodeId n = 192;
  const std::int64_t recorded_rounds = 48;
  adversary::AdversaryConfig source_config;
  source_config.kind = "spine-gnp";
  source_config.n = n;
  source_config.T = 2;
  source_config.seed = 12345;
  const auto source = adversary::MakeAdversary(source_config);

  class NullView final : public net::AdversaryView {
   public:
    [[nodiscard]] std::int64_t round() const override { return 1; }
    [[nodiscard]] double PublicState(graph::NodeId) const override {
      return 0;
    }
    [[nodiscard]] graph::NodeId num_nodes() const override { return 0; }
  };

  const std::string path =
      ::testing::TempDir() + "sdn_determinism_overlap_trace.txt";
  {
    net::TraceRecorder recorder(path, n, /*interval=*/2, /*keyframe_every=*/8);
    graph::DynGraph dyn(n);
    graph::TopologyDelta delta;
    NullView view;
    for (std::int64_t r = 1; r <= recorded_rounds; ++r) {
      source->DeltaFor(r, view, dyn.View(), delta);
      dyn.Apply(delta);
      recorder.Push(dyn.View(), delta);
    }
    recorder.Close();
  }

  const auto run_streamed = [&path](bool overlaps, int threads) {
    adversary::StreamingTraceAdversary streaming(path);
    algo::HjswyOptions options;
    options.T = streaming.interval();
    algo::SketchPool pool(
        static_cast<std::size_t>(streaming.num_nodes()),
        algo::HjswyProgram::RequiredPoolColumns(options));
    util::Rng base(99);
    std::vector<algo::HjswyProgram> nodes;
    nodes.reserve(static_cast<std::size_t>(streaming.num_nodes()));
    for (graph::NodeId u = 0; u < streaming.num_nodes(); ++u) {
      nodes.emplace_back(u, u, options,
                         base.Fork(static_cast<std::uint64_t>(u)), &pool);
    }
    net::EngineOptions opts;
    opts.flood_probes = 0;
    opts.threads = threads;
    opts.max_rounds = 40;  // stays inside the recorded trace
    opts.prefetch_topology = overlaps;
    opts.async_certification = overlaps;
    opts.fused_send_deliver = overlaps;
    net::Engine<algo::HjswyProgram> engine(std::move(nodes), streaming, opts);
    return engine.Run();
  };

  const net::RunStats reference = run_streamed(/*overlaps=*/false,
                                               /*threads=*/1);
  EXPECT_TRUE(reference.tinterval_validated);
  EXPECT_TRUE(reference.tinterval_ok);
  for (const bool overlaps : {false, true}) {
    for (const int threads : {1, 2, 0}) {
      if (!overlaps && threads == 1) continue;  // that is the reference
      SCOPED_TRACE("overlaps=" + std::to_string(overlaps) +
                   " threads=" + std::to_string(threads));
      const net::RunStats run = run_streamed(overlaps, threads);
      EXPECT_EQ(reference.rounds, run.rounds);
      EXPECT_EQ(reference.decide_round, run.decide_round);
      EXPECT_EQ(reference.messages_sent, run.messages_sent);
      EXPECT_EQ(reference.sends_per_node, run.sends_per_node);
      EXPECT_EQ(reference.total_message_bits, run.total_message_bits);
      EXPECT_EQ(reference.edges_processed, run.edges_processed);
      EXPECT_EQ(reference.messages_delivered, run.messages_delivered);
      EXPECT_EQ(reference.tinterval_validated, run.tinterval_validated);
      EXPECT_EQ(reference.tinterval_ok, run.tinterval_ok);
      EXPECT_EQ(reference.certified_T, run.certified_T);
      EXPECT_EQ(reference.min_stable_forest, run.min_stable_forest);
    }
  }

  std::remove(path.c_str());
}

// The flight recorder is pure observation: attaching it (at any thread
// count) must leave every statistic bit-identical to the untraced run, and
// the deterministic subset of the metrics registry must match too.
TEST(Determinism, TracingOnOrOffIsInvisibleToRunStats) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = "spine-gnp";
  config.validate_tinterval = false;
  config.collect_metrics = true;

  config.threads = 1;
  const RunResult untraced = RunAlgorithm(Algorithm::kHjswyCensus, config);

  for (const int threads : {1, 0}) {
    obs::FlightRecorder recorder;
    config.threads = threads;
    config.recorder = &recorder;
    const RunResult traced = RunAlgorithm(Algorithm::kHjswyCensus, config);
    config.recorder = nullptr;
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdenticalRuns(untraced, traced);
    EXPECT_GT(recorder.total_emitted(), 0u);
    EXPECT_EQ(untraced.stats.metrics.Deterministic(),
              traced.stats.metrics.Deterministic());
  }
}

// The anomaly plane is observation too: with metrics collection on, the
// anomaly engine plus the OpenMetrics exposition must be invisible to every
// core statistic at any thread count, and the deterministic subset of the
// registry must match exactly (every anomaly instrument is flagged
// non-deterministic).
TEST(Determinism, AnomalyPlaneOnOrOffIsInvisibleToRunStats) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = "spine-gnp";
  config.validate_tinterval = false;
  config.collect_metrics = true;

  config.threads = 1;
  config.anomaly = false;
  const RunResult plain = RunAlgorithm(Algorithm::kHjswyCensus, config);

  for (const int threads : {1, 2, 0}) {
    config.threads = threads;
    config.anomaly = true;
    const RunResult watched = RunAlgorithm(Algorithm::kHjswyCensus, config);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdenticalRuns(plain, watched);
    EXPECT_EQ(plain.stats.metrics.Deterministic(),
              watched.stats.metrics.Deterministic());
    // Rendering the exposition is pure observation of the snapshot; it must
    // produce a well-terminated document without touching the run.
    const std::string exposition =
        obs::RenderOpenMetrics(watched.stats.metrics, {},
                               watched.stats.anomalies);
    EXPECT_EQ(exposition.substr(exposition.size() - 6), "# EOF\n");
  }
}

// The CI anomaly-smoke contract, pinned as a unit test: a deliver-phase
// fault injected through the env test hook must produce exactly one
// AnomalyRecord (a round-time spike at the faulted round) and, with a
// recorder attached, a flight-recorder dump whose retained window contains
// the faulted round.
TEST(Determinism, InjectedFaultFiresExactlyOneAnomalyWithDump) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("SDN_FAULT_DELIVER_SLEEP_MS", "50", 1), 0);
  ASSERT_EQ(setenv("SDN_FAULT_DELIVER_ROUND", "12", 1), 0);

  obs::FlightRecorder recorder;  // default ring: no wrap at this n
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 12345;
  config.adversary.kind = "spine-gnp";
  config.validate_tinterval = false;
  config.collect_metrics = true;
  config.anomaly = true;
  // Only the injected 50 ms spike may clear the floor; the byte-level rule
  // is neutralized (warmup gauge growth is expected, not anomalous).
  config.anomaly_options.spike_floor_ns = 10'000'000;
  config.anomaly_options.memory_jump_floor_bytes = std::int64_t{1} << 60;
  config.anomaly_options.dump_dir = dir;
  config.recorder = &recorder;
  config.threads = 1;
  const RunResult result = RunAlgorithm(Algorithm::kHjswyCensus, config);

  ASSERT_EQ(unsetenv("SDN_FAULT_DELIVER_SLEEP_MS"), 0);
  ASSERT_EQ(unsetenv("SDN_FAULT_DELIVER_ROUND"), 0);

  ASSERT_GT(result.stats.rounds, 12);  // the run reached the faulted round
  ASSERT_EQ(result.stats.anomalies.size(), 1u);
  const obs::AnomalyRecord& record = result.stats.anomalies.front();
  EXPECT_EQ(record.rule, obs::AnomalyRule::kRoundTimeSpike);
  EXPECT_EQ(record.round, 12);
  EXPECT_GT(record.value, record.threshold);

  const std::string stem = dir + "/anomaly-12-round_time_spike";
  std::ifstream jsonl(stem + ".jsonl");
  ASSERT_TRUE(jsonl.good()) << stem;
  std::stringstream body;
  body << jsonl.rdbuf();
  // The dump's retained window brackets the trigger: events stamped with
  // the faulted round must be inside it.
  EXPECT_NE(body.str().find("\"round\":12"), std::string::npos);
  EXPECT_NE(body.str().find("\"anomaly_rule\":\"round_time_spike\""),
            std::string::npos);
  std::ifstream manifest(stem + ".manifest.json");
  EXPECT_TRUE(manifest.good()) << stem;
  std::remove((stem + ".jsonl").c_str());
  std::remove((stem + ".manifest.json").c_str());
}

}  // namespace
}  // namespace sdn
