#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "adversary/factory.hpp"
#include "adversary/replay.hpp"
#include "graph/generators.hpp"
#include "graph/tinterval.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::net {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/sdn_test_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<graph::Graph> SampleSequence(graph::NodeId n, int rounds,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::Graph> seq;
  for (int r = 0; r < rounds; ++r) {
    seq.push_back(graph::ConnectedGnp(n, 0.1, rng));
  }
  return seq;
}

TEST(Trace, SaveLoadRoundTrip) {
  const TempFile file("roundtrip.trace");
  const auto seq = SampleSequence(20, 12, 1);
  SaveTrace(file.path(), seq, 3);
  const Trace trace = LoadTrace(file.path());
  EXPECT_EQ(trace.interval, 3);
  EXPECT_EQ(trace.num_nodes(), 20);
  ASSERT_EQ(trace.rounds.size(), seq.size());
  for (std::size_t r = 0; r < seq.size(); ++r) {
    EXPECT_EQ(trace.rounds[r], seq[r]) << "round " << r;
  }
}

TEST(Trace, RoundTripPreservesTIntervalValidity) {
  const TempFile file("validity.trace");
  adversary::AdversaryConfig config;
  config.kind = "spine-rtree";
  config.n = 16;
  config.T = 3;
  const auto adv = adversary::MakeAdversary(config);
  class View final : public AdversaryView {
   public:
    [[nodiscard]] std::int64_t round() const override { return 1; }
    [[nodiscard]] double PublicState(graph::NodeId) const override {
      return 0;
    }
    [[nodiscard]] graph::NodeId num_nodes() const override { return 16; }
  } view;
  std::vector<graph::Graph> seq;
  for (std::int64_t r = 1; r <= 20; ++r) {
    seq.push_back(adv->TopologyFor(r, view));
  }
  SaveTrace(file.path(), seq, 3);
  const Trace trace = LoadTrace(file.path());
  EXPECT_TRUE(graph::ValidateTInterval(trace.rounds, trace.interval).ok);
}

TEST(Trace, LoadedTraceDrivesReplayAdversary) {
  const TempFile file("replay.trace");
  const auto seq = SampleSequence(10, 5, 7);
  SaveTrace(file.path(), seq, 2);
  Trace trace = LoadTrace(file.path());
  adversary::ReplayAdversary replay(std::move(trace.rounds), trace.interval);
  EXPECT_EQ(replay.num_nodes(), 10);
  EXPECT_EQ(replay.recorded_rounds(), 5);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  const TempFile file("comments.trace");
  {
    std::ofstream out(file.path());
    out << "# a comment\n\nsdn-trace 1\n# another\nnodes 3 interval 1 rounds 1\n"
        << "round 1 edges 2\n0 1\n\n1 2\n";
  }
  const Trace trace = LoadTrace(file.path());
  EXPECT_EQ(trace.num_nodes(), 3);
  EXPECT_EQ(trace.rounds.front().num_edges(), 2);
}

TEST(Trace, EmptyGraphRoundsAllowed) {
  const TempFile file("empty.trace");
  std::vector<graph::Graph> seq = {graph::Graph(4), graph::Path(4)};
  SaveTrace(file.path(), seq, 1);
  const Trace trace = LoadTrace(file.path());
  EXPECT_EQ(trace.rounds[0].num_edges(), 0);
  EXPECT_EQ(trace.rounds[1].num_edges(), 3);
}

TEST(Trace, MalformedHeaderRejected) {
  const TempFile file("bad_header.trace");
  {
    std::ofstream out(file.path());
    out << "not-a-trace 1\n";
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(Trace, TruncatedFileRejected) {
  const TempFile file("truncated.trace");
  {
    std::ofstream out(file.path());
    out << "sdn-trace 1\nnodes 4 interval 1 rounds 2\nround 1 edges 1\n0 1\n";
    // round 2 missing
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(Trace, WrongRoundNumberingRejected) {
  const TempFile file("numbering.trace");
  {
    std::ofstream out(file.path());
    out << "sdn-trace 1\nnodes 4 interval 1 rounds 1\nround 9 edges 0\n";
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(Trace, MissingFileRejected) {
  EXPECT_THROW(LoadTrace("/tmp/definitely_not_here.trace"), util::CheckError);
}

TEST(Trace, SaveRejectsEmptyOrRagged) {
  const TempFile file("invalid_save.trace");
  const std::vector<graph::Graph> empty;
  EXPECT_THROW(SaveTrace(file.path(), empty, 1), util::CheckError);
  const std::vector<graph::Graph> ragged = {graph::Graph(3), graph::Graph(4)};
  EXPECT_THROW(SaveTrace(file.path(), ragged, 1), util::CheckError);
}

}  // namespace
}  // namespace sdn::net
