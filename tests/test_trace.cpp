#include "net/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "adversary/factory.hpp"
#include "adversary/replay.hpp"
#include "algo/flood_max.hpp"
#include "graph/generators.hpp"
#include "graph/tinterval.hpp"
#include "net/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::net {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_("/tmp/sdn_test_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<graph::Graph> SampleSequence(graph::NodeId n, int rounds,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<graph::Graph> seq;
  for (int r = 0; r < rounds; ++r) {
    seq.push_back(graph::ConnectedGnp(n, 0.1, rng));
  }
  return seq;
}

TEST(Trace, SaveLoadRoundTrip) {
  const TempFile file("roundtrip.trace");
  const auto seq = SampleSequence(20, 12, 1);
  SaveTrace(file.path(), seq, 3);
  const Trace trace = LoadTrace(file.path());
  EXPECT_EQ(trace.interval, 3);
  EXPECT_EQ(trace.num_nodes(), 20);
  ASSERT_EQ(trace.rounds.size(), seq.size());
  for (std::size_t r = 0; r < seq.size(); ++r) {
    EXPECT_EQ(trace.rounds[r], seq[r]) << "round " << r;
  }
}

TEST(Trace, RoundTripPreservesTIntervalValidity) {
  const TempFile file("validity.trace");
  adversary::AdversaryConfig config;
  config.kind = "spine-rtree";
  config.n = 16;
  config.T = 3;
  const auto adv = adversary::MakeAdversary(config);
  class View final : public AdversaryView {
   public:
    [[nodiscard]] std::int64_t round() const override { return 1; }
    [[nodiscard]] double PublicState(graph::NodeId) const override {
      return 0;
    }
    [[nodiscard]] graph::NodeId num_nodes() const override { return 16; }
  } view;
  std::vector<graph::Graph> seq;
  for (std::int64_t r = 1; r <= 20; ++r) {
    seq.push_back(adv->TopologyFor(r, view));
  }
  SaveTrace(file.path(), seq, 3);
  const Trace trace = LoadTrace(file.path());
  EXPECT_TRUE(graph::ValidateTInterval(trace.rounds, trace.interval,
                                       graph::ValidateMode::kEarlyExit)
                  .ok);
}

TEST(Trace, LoadedTraceDrivesReplayAdversary) {
  const TempFile file("replay.trace");
  const auto seq = SampleSequence(10, 5, 7);
  SaveTrace(file.path(), seq, 2);
  Trace trace = LoadTrace(file.path());
  adversary::ReplayAdversary replay(std::move(trace.rounds), trace.interval);
  EXPECT_EQ(replay.num_nodes(), 10);
  EXPECT_EQ(replay.recorded_rounds(), 5);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  const TempFile file("comments.trace");
  {
    std::ofstream out(file.path());
    out << "# a comment\n\nsdn-trace 1\n# another\nnodes 3 interval 1 rounds 1\n"
        << "round 1 edges 2\n0 1\n\n1 2\n";
  }
  const Trace trace = LoadTrace(file.path());
  EXPECT_EQ(trace.num_nodes(), 3);
  EXPECT_EQ(trace.rounds.front().num_edges(), 2);
}

TEST(Trace, EmptyGraphRoundsAllowed) {
  const TempFile file("empty.trace");
  std::vector<graph::Graph> seq = {graph::Graph(4), graph::Path(4)};
  SaveTrace(file.path(), seq, 1);
  const Trace trace = LoadTrace(file.path());
  EXPECT_EQ(trace.rounds[0].num_edges(), 0);
  EXPECT_EQ(trace.rounds[1].num_edges(), 3);
}

TEST(Trace, MalformedHeaderRejected) {
  const TempFile file("bad_header.trace");
  {
    std::ofstream out(file.path());
    out << "not-a-trace 1\n";
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(Trace, TruncatedFileRejected) {
  const TempFile file("truncated.trace");
  {
    std::ofstream out(file.path());
    out << "sdn-trace 1\nnodes 4 interval 1 rounds 2\nround 1 edges 1\n0 1\n";
    // round 2 missing
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(Trace, WrongRoundNumberingRejected) {
  const TempFile file("numbering.trace");
  {
    std::ofstream out(file.path());
    out << "sdn-trace 1\nnodes 4 interval 1 rounds 1\nround 9 edges 0\n";
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(Trace, MissingFileRejected) {
  EXPECT_THROW(LoadTrace("/tmp/definitely_not_here.trace"), util::CheckError);
}

TEST(Trace, SaveRejectsEmptyOrRagged) {
  const TempFile file("invalid_save.trace");
  const std::vector<graph::Graph> empty;
  EXPECT_THROW(SaveTrace(file.path(), empty, 1), util::CheckError);
  const std::vector<graph::Graph> ragged = {graph::Graph(3), graph::Graph(4)};
  EXPECT_THROW(SaveTrace(file.path(), ragged, 1), util::CheckError);
}

std::vector<graph::Graph> AdversarySequence(graph::NodeId n, int T,
                                            std::int64_t rounds,
                                            std::uint64_t seed = 1) {
  adversary::AdversaryConfig config;
  config.kind = "spine-rtree";
  config.n = n;
  config.T = T;
  config.seed = seed;
  const auto adv = adversary::MakeAdversary(config);
  class View final : public AdversaryView {
   public:
    explicit View(graph::NodeId n) : n_(n) {}
    [[nodiscard]] std::int64_t round() const override { return 1; }
    [[nodiscard]] double PublicState(graph::NodeId) const override {
      return 0;
    }
    [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }

   private:
    graph::NodeId n_;
  } view(n);
  std::vector<graph::Graph> seq;
  for (std::int64_t r = 1; r <= rounds; ++r) {
    seq.push_back(adv->TopologyFor(r, view));
  }
  return seq;
}

TEST(TraceV2, RoundTripsIdenticallyToV1AndIsSmaller) {
  const TempFile v1("v1.trace");
  const TempFile v2("v2.trace");
  const auto seq = AdversarySequence(64, 3, 50);
  SaveTrace(v1.path(), seq, 3, {.version = 1});
  SaveTrace(v2.path(), seq, 3, {.version = 2, .keyframe_every = 16});
  const Trace a = LoadTrace(v1.path());
  const Trace b = LoadTrace(v2.path());
  EXPECT_EQ(a.interval, b.interval);
  ASSERT_EQ(a.rounds.size(), seq.size());
  ASSERT_EQ(b.rounds.size(), seq.size());
  for (std::size_t r = 0; r < seq.size(); ++r) {
    EXPECT_EQ(a.rounds[r], seq[r]) << "v1 round " << r;
    EXPECT_EQ(b.rounds[r], seq[r]) << "v2 round " << r;
  }
  // Consecutive T-interval rounds share most edges, so the delta encoding
  // must come out strictly smaller than the full per-round lists.
  EXPECT_LT(std::filesystem::file_size(v2.path()),
            std::filesystem::file_size(v1.path()));
}

TEST(TraceV2, KeyframeRoundsRestartExactly) {
  // keyframe_every=4 over 11 rounds: rounds 1, 5, 9 are full keyframes and
  // the rounds in between are reconstructed from deltas alone.
  const TempFile file("keyframes.trace");
  const auto seq = AdversarySequence(24, 2, 11, 9);
  SaveTrace(file.path(), seq, 2, {.version = 2, .keyframe_every = 4});
  {
    std::ifstream in(file.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("round 1 full"), std::string::npos);
    EXPECT_NE(text.find("round 5 full"), std::string::npos);
    EXPECT_NE(text.find("round 9 full"), std::string::npos);
    EXPECT_NE(text.find("round 2 delta"), std::string::npos);
    EXPECT_EQ(text.find("round 5 delta"), std::string::npos);
  }
  const Trace trace = LoadTrace(file.path());
  ASSERT_EQ(trace.rounds.size(), seq.size());
  for (std::size_t r = 0; r < seq.size(); ++r) {
    EXPECT_EQ(trace.rounds[r], seq[r]) << "round " << r;
  }
}

TEST(TraceV2, RecorderStreamsSameFileAsSaveTrace) {
  const TempFile streamed("streamed.trace");
  const TempFile batch("batch.trace");
  const auto seq = AdversarySequence(16, 2, 9);
  {
    TraceRecorder recorder(streamed.path(), 16, 2, /*keyframe_every=*/4);
    for (const graph::Graph& g : seq) recorder.Push(g);
    EXPECT_EQ(recorder.rounds_written(), 9);
    recorder.Close();
  }
  SaveTrace(batch.path(), seq, 2, {.version = 2, .keyframe_every = 4});
  std::ifstream a(streamed.path());
  std::ifstream b(batch.path());
  const std::string sa((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
  const std::string sb((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(sa, sb);
}

TEST(TraceV2, MalformedDeltaRejected) {
  const TempFile file("bad_delta.trace");
  {
    // Round 2 removes an edge round 1 does not have: the loader's DynGraph
    // replay must reject it instead of desynchronizing.
    std::ofstream out(file.path());
    out << "sdn-trace 2\nnodes 4 interval 1 keyframe 64\n"
        << "round 1 full 1\n0 1\n"
        << "round 2 delta 0 1\n-2 3\n";
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

TEST(TraceV2, TruncatedMidRoundRejected) {
  const TempFile file("truncated_v2.trace");
  {
    std::ofstream out(file.path());
    out << "sdn-trace 2\nnodes 4 interval 1 keyframe 64\n"
        << "round 1 full 2\n0 1\n";  // second edge missing
  }
  EXPECT_THROW(LoadTrace(file.path()), util::CheckError);
}

net::RunStats ReplayRunStats(std::vector<graph::Graph> rounds, int T) {
  const graph::NodeId n = rounds.front().num_nodes();
  adversary::ReplayAdversary replay(std::move(rounds), T);
  std::vector<algo::FloodMaxKnownN> nodes;
  for (graph::NodeId u = 0; u < n; ++u) nodes.emplace_back(u, n, u);
  EngineOptions opts;
  opts.threads = 1;
  Engine<algo::FloodMaxKnownN> engine(std::move(nodes), replay, opts);
  return engine.Run();
}

TEST(TraceV2, EitherVersionReplaysToIdenticalRunStats) {
  const TempFile v1("replay_v1.trace");
  const TempFile v2("replay_v2.trace");
  const auto seq = AdversarySequence(48, 2, 80);
  SaveTrace(v1.path(), seq, 2, {.version = 1});
  SaveTrace(v2.path(), seq, 2, {.version = 2, .keyframe_every = 8});
  const RunStats a = ReplayRunStats(LoadTrace(v1.path()).rounds, 2);
  const RunStats b = ReplayRunStats(LoadTrace(v2.path()).rounds, 2);
  EXPECT_GT(a.rounds, 0);
  EXPECT_TRUE(a.all_decided);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.decide_round, b.decide_round);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.total_message_bits, b.total_message_bits);
  EXPECT_EQ(a.edges_processed, b.edges_processed);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.tinterval_ok, b.tinterval_ok);
}

TEST(TraceV2, EngineRecordTraceMatchesRecordedTopologies) {
  const TempFile file("engine_record.trace");
  const graph::NodeId n = 32;
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = n;
  config.T = 2;
  const auto adv = adversary::MakeAdversary(config);
  std::vector<algo::FloodMaxKnownN> nodes;
  for (graph::NodeId u = 0; u < n; ++u) nodes.emplace_back(u, n, u);
  std::vector<graph::Graph> recorded;
  TraceRecorder recorder(file.path(), n, 2, /*keyframe_every=*/8);
  EngineOptions opts;
  opts.threads = 1;
  opts.record_topologies = &recorded;
  opts.record_trace = &recorder;
  Engine<algo::FloodMaxKnownN> engine(std::move(nodes), *adv, opts);
  const RunStats stats = engine.Run();
  recorder.Close();
  EXPECT_EQ(recorder.rounds_written(), stats.rounds);
  const Trace trace = LoadTrace(file.path());
  ASSERT_EQ(trace.rounds.size(), recorded.size());
  for (std::size_t r = 0; r < recorded.size(); ++r) {
    EXPECT_EQ(trace.rounds[r], recorded[r]) << "round " << r;
  }
}

}  // namespace
}  // namespace sdn::net
