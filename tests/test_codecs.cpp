// Codec/bit-accounting honesty: for every message type, the encoded size in
// bits must equal MessageBits exactly (the number the engine charges), and
// decoding must reproduce the message. Randomized over message contents.
#include "algo/codecs.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sdn::algo {
namespace {

util::Rng& Rng() {
  static util::Rng rng(0xc0dec5);
  return rng;
}

NodeId RandomId() {
  return static_cast<NodeId>(Rng().UniformU64(100000));
}

Value RandomValue() { return Rng().UniformInt(-3000000, 3000000); }

IdSet RandomIdSet(int max_elems) {
  IdSet set;
  const auto n = Rng().UniformU64(static_cast<std::uint64_t>(max_elems) + 1);
  for (std::uint64_t i = 0; i < n; ++i) {
    set.Insert(static_cast<graph::NodeId>(Rng().UniformU64(5000)));
  }
  return set;
}

TEST(Codecs, IdSetRoundTripAndExactBits) {
  for (int trial = 0; trial < 200; ++trial) {
    const IdSet set = RandomIdSet(100);
    util::BitWriter out;
    EncodeIdSet(set, out);
    EXPECT_EQ(out.bit_count(), set.EncodedBits());
    util::BitReader in(out.bytes());
    EXPECT_TRUE(DecodeIdSet(in) == set);
    EXPECT_EQ(in.bit_position(), out.bit_count());
  }
}

TEST(Codecs, CensusTokenMessages) {
  for (int trial = 0; trial < 200; ++trial) {
    CensusProgram::Message m;
    m.tag = CensusProgram::Tag::kToken;
    m.token = Rng().Bernoulli(0.8) ? RandomId() : -1;
    m.min_id = RandomId();
    m.min_id_value = RandomValue();
    m.max_value = RandomValue();

    util::BitWriter out;
    EncodeMessage(m, out);
    EXPECT_EQ(out.bit_count(), CensusProgram::MessageBits(m));
    util::BitReader in(out.bytes());
    const auto back = DecodeCensusMessage(in);
    EXPECT_EQ(back.tag, m.tag);
    EXPECT_EQ(back.token, m.token);
    EXPECT_EQ(back.min_id, m.min_id);
    EXPECT_EQ(back.min_id_value, m.min_id_value);
    EXPECT_EQ(back.max_value, m.max_value);
  }
}

TEST(Codecs, CensusVerifyMessages) {
  for (int trial = 0; trial < 100; ++trial) {
    CensusProgram::Message m;
    m.tag = CensusProgram::Tag::kVerify;
    m.hash = Rng()() & ((1ULL << 48) - 1);
    m.flag = Rng().Bernoulli(0.5);

    util::BitWriter out;
    EncodeMessage(m, out);
    EXPECT_EQ(out.bit_count(), CensusProgram::MessageBits(m));
    util::BitReader in(out.bytes());
    const auto back = DecodeCensusMessage(in);
    EXPECT_EQ(back.hash, m.hash);
    EXPECT_EQ(back.flag, m.flag);
  }
}

TEST(Codecs, CommitteeMessagesAllTags) {
  using Tag = KloCommitteeProgram::Tag;
  for (const Tag tag : {Tag::kPoll, Tag::kInvite, Tag::kVerify, Tag::kSize}) {
    for (int trial = 0; trial < 100; ++trial) {
      KloCommitteeProgram::Message m;
      m.tag = tag;
      m.leader = RandomId();
      m.leader_value = RandomValue();
      m.max_value = RandomValue();
      m.poll = Rng().Bernoulli(0.5) ? RandomId() : -1;
      m.invitee = Rng().Bernoulli(0.5) ? RandomId() : -1;
      m.committee = Rng().Bernoulli(0.5) ? RandomId() : -1;
      m.flag = Rng().Bernoulli(0.5);
      m.size = static_cast<std::int64_t>(Rng().UniformU64(100000));

      util::BitWriter out;
      EncodeMessage(m, out);
      EXPECT_EQ(out.bit_count(), KloCommitteeProgram::MessageBits(m));
      util::BitReader in(out.bytes());
      const auto back = DecodeCommitteeMessage(in);
      EXPECT_EQ(back.tag, m.tag);
      EXPECT_EQ(back.leader, m.leader);
      EXPECT_EQ(back.leader_value, m.leader_value);
      EXPECT_EQ(back.max_value, m.max_value);
      switch (tag) {
        case Tag::kPoll:
          EXPECT_EQ(back.poll, m.poll);
          break;
        case Tag::kInvite:
          EXPECT_EQ(back.invitee, m.invitee);
          break;
        case Tag::kVerify:
          EXPECT_EQ(back.committee, m.committee);
          EXPECT_EQ(back.flag, m.flag);
          break;
        case Tag::kSize:
          EXPECT_EQ(back.size, m.size);
          break;
      }
    }
  }
}

TEST(Codecs, HjswyMessagesWithAndWithoutExtras) {
  for (int trial = 0; trial < 200; ++trial) {
    HjswyProgram::Message m;
    m.num_coords = static_cast<std::int32_t>(Rng().UniformU64(
        static_cast<std::uint64_t>(HjswyProgram::kMaxCoordsPerMsg) + 1));
    m.coord_base = static_cast<std::int32_t>(Rng().UniformU64(256));
    for (std::int32_t i = 0; i < m.num_coords; ++i) {
      m.coords[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(Rng()());
    }
    m.has_sum = Rng().Bernoulli(0.5);
    if (m.has_sum) {
      for (std::int32_t i = 0; i < m.num_coords; ++i) {
        m.sum_coords[static_cast<std::size_t>(i)] =
            static_cast<std::uint32_t>(Rng()());
      }
    }
    m.min_id = RandomId();
    m.min_id_value = RandomValue();
    m.max_value = RandomValue();
    m.fingerprint = Rng()() & ((1ULL << 48) - 1);
    m.alarm = Rng().Bernoulli(0.3);
    const bool has_census = Rng().Bernoulli(0.5);
    if (has_census) {
      m.census = std::make_shared<const IdSet>(RandomIdSet(60));
    }

    util::BitWriter out;
    EncodeMessage(m, out);
    EXPECT_EQ(out.bit_count(), HjswyProgram::MessageBits(m));
    util::BitReader in(out.bytes());
    const auto back = DecodeHjswyMessage(in, m.num_coords, has_census);
    EXPECT_EQ(back.coord_base, m.coord_base);
    EXPECT_EQ(back.num_coords, m.num_coords);
    for (std::int32_t i = 0; i < m.num_coords; ++i) {
      EXPECT_EQ(back.coords[static_cast<std::size_t>(i)],
                m.coords[static_cast<std::size_t>(i)]);
      if (m.has_sum) {
        EXPECT_EQ(back.sum_coords[static_cast<std::size_t>(i)],
                  m.sum_coords[static_cast<std::size_t>(i)]);
      }
    }
    EXPECT_EQ(back.has_sum, m.has_sum);
    EXPECT_EQ(back.min_id, m.min_id);
    EXPECT_EQ(back.min_id_value, m.min_id_value);
    EXPECT_EQ(back.max_value, m.max_value);
    EXPECT_EQ(back.fingerprint, m.fingerprint);
    EXPECT_EQ(back.alarm, m.alarm);
    if (has_census) {
      ASSERT_NE(back.census, nullptr);
      EXPECT_TRUE(*back.census == *m.census);
    }
  }
}

}  // namespace
}  // namespace sdn::algo
