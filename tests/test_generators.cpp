#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace sdn::graph {
namespace {

TEST(Generators, PathShape) {
  const Graph g = Path(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(Diameter(g), 4);
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(2), 2);
}

TEST(Generators, CycleShape) {
  const Graph g = Cycle(6);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(Diameter(g), 3);
  for (NodeId u = 0; u < 6; ++u) EXPECT_EQ(g.Degree(u), 2);
}

TEST(Generators, StarShape) {
  const Graph g = Star(7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.Degree(0), 6);
  EXPECT_EQ(Diameter(g), 2);
}

TEST(Generators, CompleteShape) {
  const Graph g = Complete(5);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(Diameter(g), 1);
}

TEST(Generators, GridShape) {
  const Graph g = GridGraph(3, 4);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_EQ(Diameter(g), 5);
}

TEST(Generators, BinaryTreeShape) {
  const Graph g = BinaryTree(7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(Diameter(g), 4);
}

TEST(Generators, HypercubeShape) {
  const Graph g = Hypercube(4);
  EXPECT_EQ(g.num_nodes(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  EXPECT_EQ(Diameter(g), 4);
}

TEST(Generators, BarbellShape) {
  const Graph g = Barbell(10);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_EQ(Diameter(g), 3);  // across the bridge
}

TEST(Generators, RandomTreeIsSpanningTree) {
  util::Rng rng(1);
  for (const NodeId n : {1, 2, 3, 10, 100}) {
    const Graph g = RandomTree(n, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(IsConnected(g));
  }
}

TEST(Generators, RandomTreeVaries) {
  util::Rng rng(2);
  const Graph a = RandomTree(50, rng);
  const Graph b = RandomTree(50, rng);
  EXPECT_NE(a, b);  // overwhelmingly likely
}

TEST(Generators, GnpEdgeCountNearExpectation) {
  util::Rng rng(3);
  const NodeId n = 200;
  const double p = 0.1;
  double total = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(Gnp(n, p, rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / trials, expected, expected * 0.1);
}

TEST(Generators, GnpExtremes) {
  util::Rng rng(4);
  EXPECT_EQ(Gnp(10, 0.0, rng).num_edges(), 0);
  EXPECT_EQ(Gnp(10, 1.0, rng).num_edges(), 45);
}

TEST(Generators, ConnectedGnpAlwaysConnected) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    EXPECT_TRUE(IsConnected(ConnectedGnp(64, 0.01, rng)));
    EXPECT_TRUE(IsConnected(ConnectedGnp(64, 0.0, rng)));
  }
}

TEST(Generators, RandomExpanderConnectedWithLogDiameter) {
  util::Rng rng(6);
  const Graph g = RandomExpander(256, 2, rng);
  EXPECT_TRUE(IsConnected(g));
  EXPECT_LE(Diameter(g), 20);  // ~log n for a union of 2 random cycles
}

TEST(Generators, PathOfCliquesDiameterScalesWithCliqueCount) {
  const Graph g = PathOfCliques(8, 4);
  EXPECT_EQ(g.num_nodes(), 32);
  EXPECT_TRUE(IsConnected(g));
  // Bridges chain cliques: diameter grows ~2 per clique.
  EXPECT_GE(Diameter(g), 8);
  EXPECT_LE(Diameter(g), 16);
}

TEST(Generators, GeometricGraphRadiusControlsEdges) {
  util::Rng rng(7);
  const auto pts = RandomPoints(50, rng);
  const Graph tight = GeometricGraph(pts, 0.05);
  const Graph loose = GeometricGraph(pts, 0.5);
  EXPECT_LT(tight.num_edges(), loose.num_edges());
  EXPECT_EQ(GeometricGraph(pts, 2.0).num_edges(), 50 * 49 / 2);
}

class TreeFamilyTest : public ::testing::TestWithParam<NodeId> {};

TEST_P(TreeFamilyTest, AllTreesHaveNMinus1EdgesAndConnect) {
  const NodeId n = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n));
  for (const Graph& g :
       {Path(n), Star(n), BinaryTree(n), RandomTree(n, rng)}) {
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(IsConnected(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeFamilyTest,
                         ::testing::Values(2, 3, 5, 17, 64, 257));

}  // namespace
}  // namespace sdn::graph
