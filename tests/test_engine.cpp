#include "net/engine.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "adversary/factory.hpp"
#include "adversary/replay.hpp"
#include "adversary/static_adversary.hpp"
#include "algo/flood_max.hpp"
#include "graph/generators.hpp"
#include "net/backing.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"

namespace sdn::net {
namespace {

using adversary::StaticAdversary;
using algo::FloodMaxKnownN;

/// Minimal test program: counts how many neighbor messages it has ever seen
/// and decides after a fixed number of rounds.
class InboxCounter {
 public:
  struct Message {
    std::int32_t payload = 7;
  };
  using Output = std::int64_t;

  InboxCounter(Round decide_after, bool silent = false)
      : decide_after_(decide_after), silent_(silent) {}

  std::optional<Message> OnSend(Round) {
    if (silent_) return std::nullopt;
    return Message{};
  }
  void OnReceive(Round r, Inbox<Message> inbox) {
    seen_ += static_cast<std::int64_t>(inbox.size());
    if (r >= decide_after_) decided_ = true;
  }
  [[nodiscard]] bool HasDecided() const { return decided_; }
  [[nodiscard]] std::optional<Output> output() const {
    return decided_ ? std::optional<Output>(seen_) : std::nullopt;
  }
  [[nodiscard]] double PublicState() const {
    return static_cast<double>(seen_);
  }
  static std::size_t MessageBits(const Message&) { return 32; }

 private:
  Round decide_after_;
  bool silent_;
  std::int64_t seen_ = 0;
  bool decided_ = false;
};

static_assert(NodeProgram<InboxCounter>);
static_assert(NodeProgram<FloodMaxKnownN>);

TEST(Engine, DeliversToNeighborsOnly) {
  // Path 0-1-2: after 1 round, middle node saw 2 messages, ends saw 1.
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(3, InboxCounter(1));
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.rounds, 1);
  EXPECT_EQ(engine.node(0).output(), 1);
  EXPECT_EQ(engine.node(1).output(), 2);
  EXPECT_EQ(engine.node(2).output(), 1);
}

TEST(Engine, SilentNodesSendNothing) {
  StaticAdversary adv(graph::Complete(4));
  std::vector<InboxCounter> nodes;
  nodes.emplace_back(1, false);
  nodes.emplace_back(1, true);
  nodes.emplace_back(1, true);
  nodes.emplace_back(1, true);
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_EQ(stats.messages_sent, 1);
  ASSERT_EQ(stats.sends_per_node.size(), 4u);
  EXPECT_EQ(stats.sends_per_node[0], 1);
  EXPECT_EQ(stats.sends_per_node[1], 0);
  EXPECT_EQ(engine.node(0).output(), 0);  // others silent
  EXPECT_EQ(engine.node(1).output(), 1);
}

TEST(Engine, CountsBitsAndMessages) {
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(3, InboxCounter(2));
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_EQ(stats.messages_sent, 6);
  EXPECT_EQ(stats.total_message_bits, 6 * 32);
  EXPECT_EQ(stats.max_message_bits, 32);
  EXPECT_DOUBLE_EQ(stats.AvgBitsPerMessage(), 32.0);
  EXPECT_DOUBLE_EQ(stats.BitsPerNodeRound(3), 32.0);
}

TEST(Engine, BandwidthBudgetEnforced) {
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(3, InboxCounter(1));
  EngineOptions opts;
  // 32-bit messages against a ~1.6-bit budget (floor 1) must trip the check.
  opts.bandwidth = BandwidthPolicy::BoundedLogN(1.0, 1);
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  EXPECT_THROW(engine.Run(), util::CheckError);
}

TEST(Engine, BandwidthViolationAttributedInStats) {
  // The thrown CheckError must leave the violation inspectable: the lowest
  // violating node of the violating round, with the offending message size.
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(3, InboxCounter(1));
  EngineOptions opts;
  opts.bandwidth = BandwidthPolicy::BoundedLogN(1.0, 1);
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  EXPECT_THROW(engine.Run(), util::CheckError);
  const RunStats stats = engine.stats();
  ASSERT_TRUE(stats.bandwidth_violation.has_value());
  EXPECT_EQ(stats.bandwidth_violation->node, 0);  // all violate; lowest wins
  EXPECT_EQ(stats.bandwidth_violation->round, 1);
  EXPECT_EQ(stats.bandwidth_violation->bits, 32);
  EXPECT_GT(stats.bandwidth_violation->bits, stats.bit_limit);
  EXPECT_TRUE(engine.finished());
  EXPECT_FALSE(stats.all_decided);
}

TEST(Engine, MaxRoundsStopsUndecidedRun) {
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(3, InboxCounter(1000));
  EngineOptions opts;
  opts.max_rounds = 10;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_FALSE(stats.all_decided);
  EXPECT_TRUE(stats.hit_max_rounds);
  EXPECT_EQ(stats.rounds, 10);
  EXPECT_EQ(stats.decide_round[0], -1);
}

TEST(Engine, CompletedRunIsNotFlaggedTruncated) {
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(3, InboxCounter(2));
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.all_decided);
  EXPECT_FALSE(stats.hit_max_rounds);
}

TEST(Engine, DecideRoundsRecorded) {
  StaticAdversary adv(graph::Path(4));
  std::vector<InboxCounter> nodes;
  for (Round r = 1; r <= 4; ++r) nodes.emplace_back(r);
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.first_decide_round, 1);
  EXPECT_EQ(stats.last_decide_round, 4);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stats.decide_round[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(Engine, RecordsTopologies) {
  StaticAdversary adv(graph::Cycle(5));
  std::vector<InboxCounter> nodes(5, InboxCounter(3));
  EngineOptions opts;
  std::vector<graph::Graph> trace;
  opts.record_topologies = &trace;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  (void)engine.Run();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], graph::Cycle(5));
}

TEST(Engine, RecordedRunReplaysIdentically) {
  // Record the topologies of one run, replay them through ReplayAdversary:
  // a deterministic algorithm must produce the identical execution.
  adversary::AdversaryConfig config;
  config.kind = "spine-rtree";
  config.n = 12;
  config.T = 2;
  config.seed = 31;
  const auto original = adversary::MakeAdversary(config);

  const auto make_nodes = [] {
    std::vector<FloodMaxKnownN> nodes;
    for (graph::NodeId u = 0; u < 12; ++u) {
      nodes.emplace_back(u, 12, static_cast<algo::Value>((u * 5) % 7));
    }
    return nodes;
  };

  std::vector<graph::Graph> trace;
  EngineOptions record_opts;
  record_opts.record_topologies = &trace;
  Engine<FloodMaxKnownN> first(make_nodes(), *original, record_opts);
  const RunStats first_stats = first.Run();

  adversary::ReplayAdversary replay(trace, 2);
  std::vector<graph::Graph> trace2;
  EngineOptions replay_opts;
  replay_opts.record_topologies = &trace2;
  Engine<FloodMaxKnownN> second(make_nodes(), replay, replay_opts);
  const RunStats second_stats = second.Run();

  EXPECT_EQ(first_stats.rounds, second_stats.rounds);
  EXPECT_EQ(first_stats.messages_sent, second_stats.messages_sent);
  EXPECT_EQ(first_stats.total_message_bits, second_stats.total_message_bits);
  for (graph::NodeId u = 0; u < 12; ++u) {
    EXPECT_EQ(first.node(u).output(), second.node(u).output());
  }
  // Recording a replayed run must reproduce the trace exactly (each round
  // makes exactly one explicit copy into the trace — no divergence possible).
  EXPECT_EQ(trace, trace2);
}

TEST(Engine, MeasuresFloodingTime) {
  StaticAdversary adv(graph::Path(8));
  std::vector<InboxCounter> nodes(8, InboxCounter(20));
  EngineOptions opts;
  opts.flood_probes = 3;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  // Completed probe slots respawn at staggered start rounds, so the spawn
  // count grows past the requested 3.
  EXPECT_GE(stats.flooding.probes, 3);
  EXPECT_GE(stats.flooding.completed, 3);
  // Probe from node 0 on a path takes exactly 7 rounds; no source takes more.
  EXPECT_EQ(stats.flooding.max_rounds, 7);
}

/// Fast then slow: complete graph for the first 20 rounds, then a path.
class DegradingAdversary final : public Adversary {
 public:
  explicit DegradingAdversary(graph::NodeId n)
      : fast_(graph::Complete(n)), slow_(graph::Path(n)) {}
  [[nodiscard]] graph::NodeId num_nodes() const override {
    return fast_.num_nodes();
  }
  [[nodiscard]] int interval() const override { return 1; }
  graph::Graph TopologyFor(std::int64_t round, const AdversaryView&) override {
    return round <= 20 ? fast_ : slow_;
  }
  [[nodiscard]] std::string name() const override { return "degrading"; }

 private:
  graph::Graph fast_;
  graph::Graph slow_;
};

TEST(Engine, RespawnedProbeBeyondRunEndIsNotCounted) {
  // Path(8), one probe from node 0: completes at round 7, respawns with
  // start round 14 — past max_rounds 10, so it never runs a round. The
  // summary must not count the never-started respawn as a spawned probe
  // (it would read as a phantom incomplete probe and understate d coverage).
  StaticAdversary adv(graph::Path(8));
  std::vector<InboxCounter> nodes(8, InboxCounter(1000));
  EngineOptions opts;
  opts.flood_probes = 1;
  opts.max_rounds = 10;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_EQ(stats.flooding.completed, 1);
  EXPECT_EQ(stats.flooding.probes, 1);
  EXPECT_EQ(stats.flooding.max_rounds, 7);
}

TEST(Engine, StaggeredProbesSeeDegradedFloodingTime) {
  // Probes that all start in round 1 complete in 1 round on the complete
  // phase and would report d = 1 forever; the respawned probes sample start
  // rounds deep into the path phase, where every source needs >= 8 rounds on
  // Path(16).
  DegradingAdversary adv(16);
  std::vector<InboxCounter> nodes(16, InboxCounter(300));
  EngineOptions opts;
  opts.flood_probes = 1;
  opts.max_rounds = 300;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_GT(stats.flooding.probes, 1);
  EXPECT_GE(stats.flooding.max_rounds, 8);
}

TEST(Engine, FloodMaxDecidesTrueMaxOnStaticPath) {
  const graph::NodeId n = 16;
  StaticAdversary adv(graph::Path(n));
  std::vector<FloodMaxKnownN> nodes;
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, n, static_cast<algo::Value>(u * 10 % 70));
  }
  Engine<FloodMaxKnownN> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.rounds, n - 1);
  for (graph::NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(engine.node(u).output(), 60);
  }
}

TEST(Engine, SingleNodeDecidesAtRoundZero) {
  StaticAdversary adv(graph::Graph(1));
  std::vector<FloodMaxKnownN> nodes;
  nodes.emplace_back(0, 1, 42);
  Engine<FloodMaxKnownN> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.rounds, 0);
  EXPECT_EQ(engine.node(0).output(), 42);
}

/// Program whose Message counts copy operations — the zero-copy delivery
/// contract says a run performs none.
class CopySpy {
 public:
  struct Message {
    std::int64_t payload = 0;
    Message() = default;
    explicit Message(std::int64_t p) : payload(p) {}
    Message(const Message& other) : payload(other.payload) { ++copies; }
    Message& operator=(const Message& other) {
      payload = other.payload;
      ++copies;
      return *this;
    }
    Message(Message&&) = default;
    Message& operator=(Message&&) = default;
    static inline std::int64_t copies = 0;
  };
  using Output = std::int64_t;

  explicit CopySpy(Round decide_after) : decide_after_(decide_after) {}

  std::optional<Message> OnSend(Round r) { return Message(r); }
  void OnReceive(Round r, Inbox<Message> inbox) {
    for (const Message& m : inbox) sum_ += m.payload;
    if (r >= decide_after_) decided_ = true;
  }
  [[nodiscard]] bool HasDecided() const { return decided_; }
  [[nodiscard]] std::optional<Output> output() const {
    return decided_ ? std::optional<Output>(sum_) : std::nullopt;
  }
  [[nodiscard]] double PublicState() const { return 0.0; }
  static std::size_t MessageBits(const Message&) { return 64; }

 private:
  Round decide_after_;
  std::int64_t sum_ = 0;
  bool decided_ = false;
};

static_assert(NodeProgram<CopySpy>);

TEST(Engine, DeliveryMakesZeroMessageCopies) {
  // Every node sends, so dense_delivery=true exercises the CSR path and
  // dense_delivery=false the pointer gather; both are zero-copy.
  for (const bool dense : {true, false}) {
    CopySpy::Message::copies = 0;
    StaticAdversary adv(graph::Complete(6));
    std::vector<CopySpy> nodes(6, CopySpy(4));
    EngineOptions opts;
    opts.delivery = dense ? DeliveryMode::kDense : DeliveryMode::kGather;
    Engine<CopySpy> engine(std::move(nodes), adv, opts);
    const RunStats stats = engine.Run();
    EXPECT_EQ(CopySpy::Message::copies, 0) << "dense=" << dense;
    // 6 nodes x 5 neighbors x 4 rounds delivered, never copied.
    EXPECT_EQ(stats.messages_delivered, 6 * 5 * 4) << "dense=" << dense;
  }
}

/// Records the address and payload of every received message so a test can
/// assert that all receivers of one broadcast alias the same object.
class AliasProbe {
 public:
  struct Message {
    std::int64_t payload = 0;
  };
  using Output = std::int64_t;

  AliasProbe(graph::NodeId id, Round decide_after, bool all_send = false)
      : id_(id), decide_after_(decide_after), all_send_(all_send) {}

  std::optional<Message> OnSend(Round r) {
    if (!all_send_ && id_ != 0) return std::nullopt;
    return Message{id_ == 0 ? r * 100 : id_ * 1000 + r};
  }
  void OnReceive(Round r, Inbox<Message> inbox) {
    if (inbox.dense()) ++dense_rounds_;
    for (const Message& m : inbox) {
      seen_addrs_.push_back(&m);
      seen_payloads_.push_back(m.payload);
    }
    if (r >= decide_after_) decided_ = true;
  }
  [[nodiscard]] bool HasDecided() const { return decided_; }
  [[nodiscard]] std::optional<Output> output() const {
    return decided_ ? std::optional<Output>(0) : std::nullopt;
  }
  [[nodiscard]] double PublicState() const { return 0.0; }
  static std::size_t MessageBits(const Message&) { return 64; }

  [[nodiscard]] const std::vector<const void*>& seen_addrs() const {
    return seen_addrs_;
  }
  [[nodiscard]] const std::vector<std::int64_t>& seen_payloads() const {
    return seen_payloads_;
  }
  [[nodiscard]] std::int64_t dense_rounds() const { return dense_rounds_; }

 private:
  graph::NodeId id_;
  Round decide_after_;
  bool all_send_;
  std::vector<const void*> seen_addrs_;
  std::vector<std::int64_t> seen_payloads_;
  std::int64_t dense_rounds_ = 0;
  bool decided_ = false;
};

static_assert(NodeProgram<AliasProbe>);

TEST(Engine, ReceiversShareOneMessageInstance) {
  // Star: node 0 broadcasts to 5 leaves. Every leaf's inbox entry must be
  // the very same object (zero-copy aliasing), and since OnReceive only gets
  // const access, the payload each leaf reads must be the pristine one.
  std::vector<graph::Edge> edges;
  for (graph::NodeId v = 1; v <= 5; ++v) edges.emplace_back(0, v);
  StaticAdversary adv(graph::Graph(6, edges));
  std::vector<AliasProbe> nodes;
  for (graph::NodeId u = 0; u < 6; ++u) nodes.emplace_back(u, 3);
  Engine<AliasProbe> engine(std::move(nodes), adv, {});
  (void)engine.Run();
  for (Round r = 1; r <= 3; ++r) {
    const auto i = static_cast<std::size_t>(r - 1);
    ASSERT_EQ(engine.node(1).seen_addrs().size(), 3u);
    const void* addr = engine.node(1).seen_addrs()[i];
    for (graph::NodeId u = 1; u <= 5; ++u) {
      ASSERT_EQ(engine.node(u).seen_addrs().size(), 3u);
      EXPECT_EQ(engine.node(u).seen_addrs()[i], addr);
      EXPECT_EQ(engine.node(u).seen_payloads()[i], r * 100);
    }
  }
  // Only node 0 sends, so every round stays on the sparse gather path.
  for (graph::NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(engine.node(u).dense_rounds(), 0);
  }
}

TEST(Engine, DenseDeliveryAliasesOutboxSlots) {
  // Complete(4) with everyone sending and the dense backing forced: each
  // round is an all-sender round, so every round takes the dense CSR path.
  // The aliasing contract is the same as the gather path's: every receiver
  // of sender v's round-r message reads the very same object (the sender's
  // outbox slot), zero copies.
  StaticAdversary adv(graph::Complete(4));
  std::vector<AliasProbe> nodes;
  for (graph::NodeId u = 0; u < 4; ++u) {
    nodes.emplace_back(u, 3, /*all_send=*/true);
  }
  EngineOptions opts;
  opts.delivery = DeliveryMode::kDense;
  Engine<AliasProbe> engine(std::move(nodes), adv, opts);
  (void)engine.Run();
  for (graph::NodeId u = 0; u < 4; ++u) {
    EXPECT_EQ(engine.node(u).dense_rounds(), 3);
    ASSERT_EQ(engine.node(u).seen_addrs().size(), 9u);  // 3 neighbors x 3
  }
  // Group observed addresses by payload (payloads are unique per
  // sender-round); all receivers of a payload must have seen one address.
  for (Round r = 1; r <= 3; ++r) {
    for (graph::NodeId v = 0; v < 4; ++v) {
      const std::int64_t want = v == 0 ? r * 100 : v * 1000 + r;
      const void* addr = nullptr;
      int receivers = 0;
      for (graph::NodeId u = 0; u < 4; ++u) {
        if (u == v) continue;
        const auto& payloads = engine.node(u).seen_payloads();
        for (std::size_t i = 0; i < payloads.size(); ++i) {
          if (payloads[i] != want) continue;
          ++receivers;
          if (addr == nullptr) addr = engine.node(u).seen_addrs()[i];
          EXPECT_EQ(engine.node(u).seen_addrs()[i], addr)
              << "sender " << v << " round " << r;
        }
      }
      EXPECT_EQ(receivers, 3) << "sender " << v << " round " << r;
    }
  }
}

/// Sends from everyone on even rounds but only from even ids on odd rounds,
/// so a run mixes dense (all-sender) and sparse (gather) rounds.
class Alternator {
 public:
  struct Message {
    std::int64_t payload = 0;
  };
  using Output = std::int64_t;

  Alternator(graph::NodeId id, Round decide_after)
      : id_(id), decide_after_(decide_after) {}

  std::optional<Message> OnSend(Round r) {
    if (r % 2 == 1 && id_ % 2 == 1) return std::nullopt;
    return Message{r * 31 + id_};
  }
  void OnReceive(Round r, Inbox<Message> inbox) {
    if (inbox.dense()) ++dense_rounds_;
    for (const Message& m : inbox) sum_ += m.payload;
    if (r >= decide_after_) decided_ = true;
  }
  [[nodiscard]] bool HasDecided() const { return decided_; }
  [[nodiscard]] std::optional<Output> output() const {
    return decided_ ? std::optional<Output>(sum_) : std::nullopt;
  }
  [[nodiscard]] double PublicState() const { return 0.0; }
  static std::size_t MessageBits(const Message&) { return 64; }
  [[nodiscard]] std::int64_t dense_rounds() const { return dense_rounds_; }

 private:
  graph::NodeId id_;
  Round decide_after_;
  std::int64_t sum_ = 0;
  std::int64_t dense_rounds_ = 0;
  bool decided_ = false;
};

static_assert(NodeProgram<Alternator>);

TEST(Engine, DenseAndGatherAgreeAcrossSilentRounds) {
  // Rounds alternate between all-sender (dense eligible) and half-silent
  // (gather only). Forcing the gather path everywhere must not change any
  // stat or any node's payload sum — the two backings are interchangeable.
  const auto run = [](bool dense) {
    StaticAdversary adv(graph::Cycle(12));
    std::vector<Alternator> nodes;
    for (graph::NodeId u = 0; u < 12; ++u) nodes.emplace_back(u, 8);
    EngineOptions opts;
    opts.delivery = dense ? DeliveryMode::kDense : DeliveryMode::kGather;
    Engine<Alternator> engine(std::move(nodes), adv, opts);
    const RunStats stats = engine.Run();
    std::vector<std::int64_t> outputs;
    std::int64_t dense_rounds = 0;
    for (graph::NodeId u = 0; u < 12; ++u) {
      outputs.push_back(*engine.node(u).output());
      dense_rounds += engine.node(u).dense_rounds();
    }
    return std::tuple(stats, outputs, dense_rounds);
  };
  const auto [dense_stats, dense_out, dense_rounds] = run(true);
  const auto [gather_stats, gather_out, gather_rounds] = run(false);
  // 4 of 8 rounds are all-sender; the dense run must actually take the
  // dense path there (12 nodes each), and the forced-gather run never.
  EXPECT_EQ(dense_rounds, 4 * 12);
  EXPECT_EQ(gather_rounds, 0);
  EXPECT_EQ(dense_out, gather_out);
  EXPECT_EQ(dense_stats.rounds, gather_stats.rounds);
  EXPECT_EQ(dense_stats.messages_sent, gather_stats.messages_sent);
  EXPECT_EQ(dense_stats.messages_delivered, gather_stats.messages_delivered);
  EXPECT_EQ(dense_stats.total_message_bits, gather_stats.total_message_bits);
  EXPECT_EQ(dense_stats.decide_round, gather_stats.decide_round);
  EXPECT_EQ(dense_stats.sends_per_node, gather_stats.sends_per_node);
}

/// Promises T=2 but alternates between edge-disjoint connected graphs, so no
/// 2-window has a stable connected subgraph.
class FlickerAdversary final : public Adversary {
 public:
  [[nodiscard]] graph::NodeId num_nodes() const override { return 4; }
  [[nodiscard]] int interval() const override { return 2; }
  graph::Graph TopologyFor(std::int64_t round, const AdversaryView&) override {
    static const std::vector<graph::Edge> odd = {{0, 1}, {1, 2}, {2, 3}};
    static const std::vector<graph::Edge> even = {{0, 2}, {0, 3}, {1, 3}};
    return graph::Graph(
        4, std::span<const graph::Edge>(round % 2 == 1 ? odd : even));
  }
  [[nodiscard]] std::string name() const override { return "flicker"; }
};

TEST(Engine, ValidationOffIsReportedHonestly) {
  // With validation off the engine must not claim the promise held: ok stays
  // vacuously true but tinterval_validated says no check ran.
  FlickerAdversary adv;
  std::vector<InboxCounter> nodes(4, InboxCounter(4));
  EngineOptions opts;
  opts.validate_tinterval = false;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_FALSE(stats.tinterval_validated);
  EXPECT_TRUE(stats.tinterval_ok);
}

TEST(Engine, ValidationOnCatchesBrokenPromise) {
  FlickerAdversary adv;
  std::vector<InboxCounter> nodes(4, InboxCounter(4));
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.tinterval_validated);
  EXPECT_FALSE(stats.tinterval_ok);
}

TEST(Engine, RunTwiceRejected) {
  StaticAdversary adv(graph::Path(2));
  std::vector<InboxCounter> nodes(2, InboxCounter(1));
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  (void)engine.Run();
  EXPECT_THROW(engine.Run(), util::CheckError);
}

TEST(Engine, ParallelStatsMatchSerial) {
  // n = 200 -> 3 shards, so threads = 4 genuinely exercises the pool path;
  // every stat except wall-clock timings must be bit-identical to serial.
  const graph::NodeId n = 200;
  const auto run = [n](int threads) {
    StaticAdversary adv(graph::Cycle(n));
    std::vector<InboxCounter> nodes(
        static_cast<std::size_t>(n), InboxCounter(25));
    EngineOptions opts;
    opts.threads = threads;
    Engine<InboxCounter> engine(std::move(nodes), adv, opts);
    return engine.Run();
  };
  const RunStats serial = run(1);
  const RunStats parallel = run(4);
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.messages_sent, parallel.messages_sent);
  EXPECT_EQ(serial.messages_delivered, parallel.messages_delivered);
  EXPECT_EQ(serial.total_message_bits, parallel.total_message_bits);
  EXPECT_EQ(serial.max_message_bits, parallel.max_message_bits);
  EXPECT_EQ(serial.decide_round, parallel.decide_round);
  EXPECT_EQ(serial.sends_per_node, parallel.sends_per_node);
  EXPECT_EQ(serial.flooding.probes, parallel.flooding.probes);
  EXPECT_EQ(serial.flooding.max_rounds, parallel.flooding.max_rounds);
}

TEST(Engine, WrongSizeAdversaryRejected) {
  StaticAdversary adv(graph::Path(3));
  std::vector<InboxCounter> nodes(2, InboxCounter(1));
  EXPECT_THROW((Engine<InboxCounter>(std::move(nodes), adv, {})),
               util::CheckError);
}

// ---------------------------------------------------------------------------
// ArmSelector: the measured chooser behind DeliveryMode::kAdaptive.

TEST(ArmSelector, WarmupAlternatesUntilBothArmsSampled) {
  ArmSelector sel(/*warmup_per_arm=*/3, /*reprobe_interval=*/10,
                  /*hysteresis=*/0.9);
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(sel.warmed_up());
    const int arm = sel.Choose();
    EXPECT_EQ(arm, i % 2) << "warmup must alternate";
    sel.Observe(arm, 100.0);
  }
  EXPECT_TRUE(sel.warmed_up());
  EXPECT_EQ(sel.observations(0), 3);
  EXPECT_EQ(sel.observations(1), 3);
}

TEST(ArmSelector, NeverPicksTheMeasuredLoser) {
  // The PR 6 satellite contract: outside warmup and the bounded re-probe,
  // Choose() must return the arm the EWMAs say is cheaper. Arm 0 measures
  // 10x cheaper here, so every non-re-probe decision must be arm 0.
  ArmSelector sel(/*warmup_per_arm=*/2, /*reprobe_interval=*/7,
                  /*hysteresis=*/0.9);
  while (!sel.warmed_up()) {
    const int arm = sel.Choose();
    sel.Observe(arm, arm == 0 ? 10.0 : 100.0);
  }
  int reprobes = 0;
  for (int i = 0; i < 200; ++i) {
    const int arm = sel.Choose();
    if (arm == 1) ++reprobes;
    sel.Observe(arm, arm == 0 ? 10.0 : 100.0);
  }
  EXPECT_EQ(sel.preferred(), 0);
  // Exactly one decision in every reprobe_interval refreshes the loser.
  EXPECT_EQ(reprobes, 200 / 7);
}

TEST(ArmSelector, HysteresisBlocksFlipsNearParity) {
  ArmSelector sel(/*warmup_per_arm=*/1, /*reprobe_interval=*/100,
                  /*hysteresis=*/0.9);
  sel.Observe(0, 100.0);
  sel.Observe(1, 95.0);  // 5% cheaper: inside the 10% hysteresis band
  EXPECT_EQ(sel.preferred(), 0);
  // 40% cheaper clears the band (one Observe moves the EWMA a quarter of
  // the way, so feed a few).
  for (int i = 0; i < 10; ++i) sel.Observe(1, 60.0);
  EXPECT_EQ(sel.preferred(), 1);
}

TEST(ArmSelector, ReprobeRecoversFromWorkloadShift) {
  // Arm 0 wins at first; then the workload shifts and arm 0 becomes 10x
  // worse. Only the periodic re-probe ever samples arm 1 again, and it must
  // be enough to flip the preference.
  ArmSelector sel(/*warmup_per_arm=*/1, /*reprobe_interval=*/5,
                  /*hysteresis=*/0.9);
  sel.Observe(0, 10.0);
  sel.Observe(1, 100.0);
  EXPECT_EQ(sel.preferred(), 0);
  for (int i = 0; i < 100 && sel.preferred() == 0; ++i) {
    const int arm = sel.Choose();
    sel.Observe(arm, arm == 0 ? 1000.0 : 100.0);
  }
  EXPECT_EQ(sel.preferred(), 1);
}

// ---------------------------------------------------------------------------
// Direct-send (OnSendInto) programs.

/// Alternator twin that composes its message in place via OnSendInto. The
/// engine must produce the identical run, and silent decisions (return
/// false) must keep the stale slot contents out of every inbox.
class DirectAlternator {
 public:
  using Message = Alternator::Message;
  using Output = std::int64_t;

  DirectAlternator(graph::NodeId id, Round decide_after)
      : id_(id), decide_after_(decide_after) {}

  std::optional<Message> OnSend(Round r) {
    Message m;
    if (!OnSendInto(r, m)) return std::nullopt;
    return m;
  }
  bool OnSendInto(Round r, Message& m) {
    if (r % 2 == 1 && id_ % 2 == 1) {
      m.payload = -1;  // deliberately poison the slot: must never be seen
      return false;
    }
    m.payload = r * 31 + id_;
    return true;
  }
  void OnReceive(Round r, Inbox<Message> inbox) {
    for (const Message& m : inbox) {
      SDN_CHECK(m.payload >= 0);  // a poisoned slot leaked into an inbox
      sum_ += m.payload;
    }
    if (r >= decide_after_) decided_ = true;
  }
  [[nodiscard]] bool HasDecided() const { return decided_; }
  [[nodiscard]] std::optional<Output> output() const {
    return decided_ ? std::optional<Output>(sum_) : std::nullopt;
  }
  [[nodiscard]] double PublicState() const { return 0.0; }
  static std::size_t MessageBits(const Message&) { return 64; }

 private:
  graph::NodeId id_;
  Round decide_after_;
  std::int64_t sum_ = 0;
  bool decided_ = false;
};

static_assert(DirectSendProgram<DirectAlternator>);
// Plain programs must keep taking the optional-returning path.
static_assert(NodeProgram<Alternator> && !DirectSendProgram<Alternator>);

TEST(Engine, DirectSendMatchesOptionalSend) {
  // The same protocol via OnSendInto (composed in place in the outbox slot)
  // and via OnSend (optional returned, moved into the slot) must produce
  // bit-identical runs — and the DirectAlternator's OnReceive SDN_CHECK
  // proves a declined slot's poisoned contents never reach an inbox.
  const auto run = [](auto make_node) {
    StaticAdversary adv(graph::Cycle(10));
    using Node = decltype(make_node(graph::NodeId{0}));
    std::vector<Node> nodes;
    for (graph::NodeId u = 0; u < 10; ++u) nodes.push_back(make_node(u));
    Engine<Node> engine(std::move(nodes), adv, {});
    const RunStats stats = engine.Run();
    std::vector<std::int64_t> outputs;
    for (graph::NodeId u = 0; u < 10; ++u) {
      outputs.push_back(*engine.node(u).output());
    }
    return std::pair(stats, outputs);
  };
  const auto [direct_stats, direct_out] =
      run([](graph::NodeId u) { return DirectAlternator(u, 8); });
  const auto [optional_stats, optional_out] =
      run([](graph::NodeId u) { return Alternator(u, 8); });
  EXPECT_EQ(direct_out, optional_out);
  EXPECT_EQ(direct_stats.rounds, optional_stats.rounds);
  EXPECT_EQ(direct_stats.messages_sent, optional_stats.messages_sent);
  EXPECT_EQ(direct_stats.messages_delivered,
            optional_stats.messages_delivered);
  EXPECT_EQ(direct_stats.sends_per_node, optional_stats.sends_per_node);
  EXPECT_EQ(direct_stats.decide_round, optional_stats.decide_round);
}

// ---------------------------------------------------------------------------
// Incremental-topology delta gating (PR 6 satellite c).

TEST(Engine, ConsumersSeeEveryDeltaOnIncrementalPath) {
  // Regression for the delta-gating audit: the direct topology path skips
  // delta production unless a consumer needs one, and the streaming
  // T-interval checker, the topology trace and the flight recorder are all
  // such consumers. Attach all three at once on the incremental path (the
  // engine asserts internally that every consumer round has a delta) and
  // pin the recorded trace against the legacy from-scratch path's.
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = 32;
  config.T = 2;
  config.seed = 77;
  const auto run = [&config](bool incremental, std::vector<graph::Graph>* trace,
                             obs::FlightRecorder* rec) {
    const auto adv = adversary::MakeAdversary(config);
    std::vector<InboxCounter> nodes(32, InboxCounter(40));
    EngineOptions opts;
    opts.incremental_topology = incremental;
    opts.record_topologies = trace;
    opts.recorder = rec;
    Engine<InboxCounter> engine(std::move(nodes), *adv, opts);
    return engine.Run();
  };
  std::vector<graph::Graph> inc_trace;
  std::vector<graph::Graph> scratch_trace;
  obs::FlightRecorder rec;
  const RunStats inc = run(true, &inc_trace, &rec);
  const RunStats scratch = run(false, &scratch_trace, nullptr);
  EXPECT_TRUE(inc.tinterval_validated);
  EXPECT_TRUE(inc.tinterval_ok);
  EXPECT_EQ(inc.rounds, scratch.rounds);
  EXPECT_EQ(inc.messages_delivered, scratch.messages_delivered);
  EXPECT_EQ(inc_trace, scratch_trace);
  EXPECT_GT(rec.total_emitted(), 0u);
}

// ---------------------------------------------------------------------------
// Always-on certification (PR 7): certified-T reporting, fail-fast, and the
// composition fast path.

TEST(Engine, CertifiedTAndFirstBadWindowRecorded) {
  // FlickerAdversary keeps every round connected (T=1 holds) but adjacent
  // rounds share no edges, so no 2-window certifies: the run must report
  // the observed level, not just a boolean.
  FlickerAdversary adv;
  std::vector<InboxCounter> nodes(4, InboxCounter(4));
  Engine<InboxCounter> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.tinterval_validated);
  EXPECT_FALSE(stats.tinterval_ok);
  EXPECT_EQ(stats.certified_T, 1);
  EXPECT_EQ(stats.tinterval_first_bad_window, 0);
}

TEST(Engine, CertifiedTEqualsTOnHonestRuns) {
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = 32;
  config.T = 3;
  config.seed = 9;
  const auto adv = adversary::MakeAdversary(config);
  std::vector<InboxCounter> nodes(32, InboxCounter(20));
  Engine<InboxCounter> engine(std::move(nodes), *adv, {});
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.tinterval_ok);
  EXPECT_EQ(stats.certified_T, 3);
  EXPECT_EQ(stats.tinterval_first_bad_window, -1);
  EXPECT_EQ(stats.min_stable_forest, 31);
}

TEST(Engine, FailFastOnTIntervalThrowsAndRecordsWindow) {
  FlickerAdversary adv;
  std::vector<InboxCounter> nodes(4, InboxCounter(4));
  EngineOptions opts;
  opts.fail_fast_on_tinterval = true;
  Engine<InboxCounter> engine(std::move(nodes), adv, opts);
  EXPECT_THROW(engine.Run(), util::CheckError);
  // Mirrors the bandwidth-violation shape: the books are closed before the
  // throw, so the violation is attributable from the stats snapshot.
  const RunStats stats = engine.stats();
  EXPECT_EQ(stats.tinterval_first_bad_window, 0);
  EXPECT_FALSE(stats.tinterval_ok);
}

TEST(Engine, FailFastUnderAsyncCertificationMatchesSerialAbort) {
  // fail_fast_on_tinterval pins the checker to the synchronous path even
  // when async_certification is requested (an async verdict would surface
  // at stats() instead of aborting the violating round): the parallel
  // async-requested run must throw at exactly the serial engine's abort
  // round with the same violating window in the books.
  const auto run_fail_fast = [](bool async_cert, int threads) {
    FlickerAdversary adv;
    std::vector<InboxCounter> nodes(4, InboxCounter(4));
    EngineOptions opts;
    opts.fail_fast_on_tinterval = true;
    opts.async_certification = async_cert;
    opts.threads = threads;
    Engine<InboxCounter> engine(std::move(nodes), adv, opts);
    EXPECT_THROW(engine.Run(), util::CheckError);
    return engine.stats();
  };
  const RunStats serial = run_fail_fast(/*async_cert=*/false, /*threads=*/1);
  const RunStats parallel = run_fail_fast(/*async_cert=*/true, /*threads=*/2);
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.tinterval_first_bad_window,
            parallel.tinterval_first_bad_window);
  EXPECT_EQ(parallel.tinterval_first_bad_window, 0);
  EXPECT_FALSE(parallel.tinterval_ok);
  EXPECT_EQ(serial.messages_delivered, parallel.messages_delivered);
}

TEST(Engine, FailFastIsInertOnHonestRuns) {
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = 24;
  config.T = 2;
  config.seed = 3;
  const auto adv = adversary::MakeAdversary(config);
  std::vector<InboxCounter> nodes(24, InboxCounter(20));
  EngineOptions opts;
  opts.fail_fast_on_tinterval = true;
  Engine<InboxCounter> engine(std::move(nodes), *adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_TRUE(stats.tinterval_ok);
  EXPECT_EQ(stats.certified_T, 2);
}

TEST(Engine, CompositionPathMatchesGeneralCheckerPath) {
  // The certification fast path (witness ids) and the delta-driven exact
  // checker must agree on every reported verdict field; only the internal
  // mechanism differs.
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = 48;
  config.T = 2;
  config.seed = 21;
  const auto run = [&config](bool composition) {
    const auto adv = adversary::MakeAdversary(config);
    std::vector<InboxCounter> nodes(48, InboxCounter(40));
    EngineOptions opts;
    opts.tinterval_composition = composition;
    Engine<InboxCounter> engine(std::move(nodes), *adv, opts);
    return engine.Run();
  };
  const RunStats fast = run(true);
  const RunStats general = run(false);
  EXPECT_EQ(fast.tinterval_ok, general.tinterval_ok);
  EXPECT_EQ(fast.certified_T, general.certified_T);
  EXPECT_EQ(fast.tinterval_first_bad_window,
            general.tinterval_first_bad_window);
  EXPECT_EQ(fast.min_stable_forest, general.min_stable_forest);
  EXPECT_EQ(fast.rounds, general.rounds);
  EXPECT_EQ(fast.messages_delivered, general.messages_delivered);
}

TEST(Engine, TopologyAndDeliveryPathCountersPartitionRounds) {
  // Every round takes exactly one topology path (direct or delta) and one
  // delivery backing (dense or gather) — the accessors the bench and PERF
  // docs cite must account for all of them.
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = 24;
  config.T = 2;
  config.seed = 5;
  const auto adv = adversary::MakeAdversary(config);
  std::vector<InboxCounter> nodes(24, InboxCounter(30));
  EngineOptions opts;
  opts.validate_tinterval = false;
  Engine<InboxCounter> engine(std::move(nodes), *adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_EQ(engine.topology_direct_rounds() + engine.topology_delta_rounds(),
            stats.rounds);
  EXPECT_EQ(engine.dense_delivery_rounds() + engine.gather_delivery_rounds(),
            stats.rounds);
}

}  // namespace
}  // namespace sdn::net
