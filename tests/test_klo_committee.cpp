#include "algo/klo_committee.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/factory.hpp"
#include "net/engine.hpp"

namespace sdn::algo {
namespace {

struct CommitteeRun {
  net::RunStats stats;
  std::vector<KloCommitteeProgram::Output> outputs;
};

CommitteeRun RunCommittee(graph::NodeId n, int T, const std::string& kind,
                          std::uint64_t seed) {
  adversary::AdversaryConfig config;
  config.kind = kind;
  config.n = n;
  config.T = T;
  config.seed = seed;
  const auto adv = adversary::MakeAdversary(config);
  std::vector<KloCommitteeProgram> nodes;
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, static_cast<Value>((u * 31) % 17 - 5));
  }
  net::EngineOptions opts;
  opts.bandwidth = net::BandwidthPolicy::BoundedLogN(64.0);
  opts.max_rounds = 10'000'000;
  net::Engine<KloCommitteeProgram> engine(std::move(nodes), *adv, opts);
  CommitteeRun run;
  run.stats = engine.Run();
  for (graph::NodeId u = 0; u < n; ++u) {
    if (const auto out = engine.node(u).output(); out.has_value()) {
      run.outputs.push_back(*out);
    }
  }
  return run;
}

using Param = std::tuple<graph::NodeId, std::string, std::uint64_t>;

class KloCommitteeTest : public ::testing::TestWithParam<Param> {};

TEST_P(KloCommitteeTest, ExactCountMaxConsensus) {
  const auto& [n, kind, seed] = GetParam();
  const CommitteeRun run = RunCommittee(n, 2, kind, seed);
  ASSERT_TRUE(run.stats.all_decided);
  EXPECT_TRUE(run.stats.tinterval_ok);
  ASSERT_EQ(run.outputs.size(), static_cast<std::size_t>(n));

  Value expected_max = kValueMin;
  for (graph::NodeId u = 0; u < n; ++u) {
    expected_max = std::max(expected_max, static_cast<Value>((u * 31) % 17 - 5));
  }
  for (const auto& out : run.outputs) {
    EXPECT_EQ(out.count, n);
    EXPECT_EQ(out.max_value, expected_max);
    EXPECT_EQ(out.consensus_value, -5);  // node 0's input
    EXPECT_EQ(out.accepted_guess, run.outputs.front().accepted_guess);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KloCommitteeTest,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2, 3, 9, 25, 40),
                       ::testing::Values("static-path", "spine-rtree",
                                         "spine-expander", "adaptive-desc",
                                         "mobile"),
                       ::testing::Values<std::uint64_t>(4, 44)),
    [](const ::testing::TestParamInfo<Param>& pi) {
      auto name = "n" + std::to_string(std::get<0>(pi.param)) + "_" +
                  std::get<1>(pi.param) + "_s" +
                  std::to_string(std::get<2>(pi.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(KloCommittee, QuadraticGrowth) {
  const CommitteeRun small = RunCommittee(10, 1, "spine-expander", 1);
  const CommitteeRun large = RunCommittee(40, 1, "spine-expander", 1);
  ASSERT_TRUE(small.stats.all_decided);
  ASSERT_TRUE(large.stats.all_decided);
  EXPECT_GT(large.stats.rounds, 6 * small.stats.rounds);
}

TEST(KloCommittee, ScheduleStructure) {
  using Position = KloCommitteeProgram::Position;
  // Guess 1: 2 cycle rounds + 4 verify + 4 size = 10 rounds.
  EXPECT_EQ(KloCommitteeProgram::Locate(1).guess_k, 1);
  EXPECT_TRUE(KloCommitteeProgram::Locate(1).first_round_of_guess);
  EXPECT_EQ(KloCommitteeProgram::Locate(1).phase, Position::Phase::kPoll);
  EXPECT_EQ(KloCommitteeProgram::Locate(2).phase, Position::Phase::kInvite);
  EXPECT_EQ(KloCommitteeProgram::Locate(3).phase, Position::Phase::kVerify);
  EXPECT_EQ(KloCommitteeProgram::Locate(7).phase, Position::Phase::kSize);
  EXPECT_TRUE(KloCommitteeProgram::Locate(10).last_round_of_guess);
  // Guess 2 starts at round 11: 8 cycle rounds + 6 verify + 6 size = 20.
  EXPECT_EQ(KloCommitteeProgram::Locate(11).guess_k, 2);
  EXPECT_TRUE(KloCommitteeProgram::Locate(30).last_round_of_guess);
  EXPECT_EQ(KloCommitteeProgram::Locate(31).guess_k, 4);
}

TEST(KloCommittee, LocateFastMatchesLocate) {
  const KloCommitteeProgram node(0, 0);
  const auto expect_same = [&node](net::Round r) {
    const auto slow = KloCommitteeProgram::Locate(r);
    const auto fast = node.LocateFast(r);
    EXPECT_EQ(fast.guess_k, slow.guess_k) << "r=" << r;
    EXPECT_EQ(fast.phase, slow.phase) << "r=" << r;
    EXPECT_EQ(fast.cycle, slow.cycle) << "r=" << r;
    EXPECT_EQ(fast.round_in_phase, slow.round_in_phase) << "r=" << r;
    EXPECT_EQ(fast.first_round_of_guess, slow.first_round_of_guess)
        << "r=" << r;
    EXPECT_EQ(fast.last_round_of_guess, slow.last_round_of_guess)
        << "r=" << r;
  };
  for (net::Round r = 1; r <= 4000; ++r) expect_same(r);
  // Non-monotone probes force the cursor's backward reset.
  for (const net::Round r : {3999, 30, 11, 1, 31, 4000}) expect_same(r);
}

TEST(KloCommittee, MessagesFitLogBudget) {
  KloCommitteeProgram::Message m;
  m.tag = KloCommitteeProgram::Tag::kPoll;
  m.leader = 4095;
  m.leader_value = -999999;
  m.max_value = 999999;
  m.poll = 4095;
  EXPECT_LE(KloCommitteeProgram::MessageBits(m), 120u);
}

TEST(KloCommittee, SingleNodeFastPath) {
  const CommitteeRun run = RunCommittee(1, 1, "static-path", 2);
  ASSERT_TRUE(run.stats.all_decided);
  EXPECT_EQ(run.outputs.front().count, 1);
  EXPECT_LE(run.stats.rounds, 10);
}

}  // namespace
}  // namespace sdn::algo
