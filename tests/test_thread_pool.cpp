#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

namespace sdn::util {
namespace {

/// Runs fn over n items and returns per-index visit counts.
std::vector<int> VisitCounts(ThreadPool& pool, std::int64_t n, int shards,
                             int max_lanes) {
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.ParallelFor(n, shards, max_lanes,
                   [&hits](int, std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       hits[static_cast<std::size_t>(i)].fetch_add(1);
                     }
                   });
  std::vector<int> out;
  out.reserve(hits.size());
  for (const auto& h : hits) out.push_back(h.load());
  return out;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::vector<int> hits = VisitCounts(pool, 1000, 16, 4);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, MoreShardsThanLanes) {
  ThreadPool pool(2);
  const std::vector<int> hits = VisitCounts(pool, 337, 32, 2);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, FewerItemsThanShards) {
  ThreadPool pool(2);
  // Empty shards (begin == end) must be skipped, non-empty ones run once.
  const std::vector<int> hits = VisitCounts(pool, 5, 16, 3);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 4, 4, [&calls](int, std::int64_t, std::int64_t) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.ParallelFor(100, 8, 8,
                   [&](int, std::int64_t, std::int64_t) {
                     all_on_caller =
                         all_on_caller && std::this_thread::get_id() == caller;
                   });
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(256, 8, 4,
                       [](int shard, std::int64_t, std::int64_t) {
                         if (shard == 5) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay fully usable after a failed job.
  const std::vector<int> hits = VisitCounts(pool, 256, 8, 4);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ShardBoundariesIndependentOfLaneCount) {
  // Determinism precondition: the (shard, begin, end) partition is a pure
  // function of (n, shards) — the lane count only changes who runs what.
  using Range = std::tuple<int, std::int64_t, std::int64_t>;
  ThreadPool pool(3);
  const auto partition = [&pool](int max_lanes) {
    std::mutex mu;
    std::vector<Range> ranges;
    pool.ParallelFor(777, 16, max_lanes,
                     [&](int shard, std::int64_t begin, std::int64_t end) {
                       const std::lock_guard<std::mutex> lock(mu);
                       ranges.emplace_back(shard, begin, end);
                     });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  const std::vector<Range> serial = partition(1);
  const std::vector<Range> wide = partition(4);
  EXPECT_EQ(serial, wide);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  ThreadPool pool(3);
  std::vector<std::vector<int>> results(4);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < results.size(); ++c) {
    callers.emplace_back([&pool, &results, c] {
      results[c] = VisitCounts(pool, 500, 10, 4);
    });
  }
  for (std::thread& t : callers) t.join();
  for (const std::vector<int>& hits : results) {
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
  }
}

TEST(ThreadPool, SharedPoolIsASingletonWithAtLeastTwoLanes) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().lanes(), 2);
}

TEST(AuxLane, RunsSubmittedTasksInOrder) {
  AuxLane lane(/*capacity=*/2);
  std::vector<int> order;
  std::mutex mu;
  for (int i = 0; i < 8; ++i) {
    lane.Submit(UniqueTask([&order, &mu, i] {
      const std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  lane.Drain();
  EXPECT_TRUE(lane.idle());
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(AuxLane, ThrowAfterBackpressureStillSurfacesOnDrain) {
  // Fill the lane past its capacity so Submit engages backpressure (the
  // producer blocks on the bounded queue) while an early task is armed to
  // throw — the failure path and the backpressure path must compose.
  AuxLane lane(/*capacity=*/1);
  std::atomic<int> ran{0};
  lane.Submit(UniqueTask([&ran] {
    // Give the producer time to reach the blocking Submit below.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ++ran;
    throw std::runtime_error("armed");
  }));
  // Each of these blocks until the lane frees a slot; the tasks behind the
  // throwing one are discarded, never run.
  lane.Submit(UniqueTask([&ran] { ++ran; }));
  lane.Submit(UniqueTask([&ran] { ++ran; }));
  EXPECT_THROW(lane.Drain(), std::runtime_error);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(lane.idle());
}

TEST(AuxLane, DrainRethrowsFirstExceptionOnceAndLaneSurvives) {
  AuxLane lane(/*capacity=*/4);
  lane.Submit(UniqueTask([] { throw std::runtime_error("first"); }));
  lane.Submit(UniqueTask([] { throw std::logic_error("second"); }));
  bool threw_first = false;
  try {
    lane.Drain();
  } catch (const std::runtime_error& e) {
    threw_first = std::string(e.what()) == "first";
  }
  EXPECT_TRUE(threw_first);
  // The error was consumed by the first Drain; the lane is reusable.
  EXPECT_NO_THROW(lane.Drain());
  std::atomic<bool> ran{false};
  lane.Submit(UniqueTask([&ran] { ran = true; }));
  lane.Drain();
  EXPECT_TRUE(ran.load());
}

TEST(AuxLane, DestructorWithNeverStartedLaneIsSafe) {
  // The worker thread starts lazily on the first Submit: a lane that never
  // saw one must destruct without joining a non-existent thread.
  AuxLane lane;
  EXPECT_TRUE(lane.idle());
  EXPECT_NO_THROW(lane.Drain());  // nothing queued, nothing to rethrow
}

TEST(AuxLane, DestructorDiscardsQueuedTasksAfterRunningOneFinishes) {
  std::atomic<int> ran{0};
  std::atomic<bool> started{false};
  {
    AuxLane lane(/*capacity=*/8);
    lane.Submit(UniqueTask([&ran, &started] {
      started = true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++ran;
    }));
    // Queued behind a sleeper; the destructor stops the lane without
    // running them (Drain is the contract for callers who need results).
    lane.Submit(UniqueTask([&ran] { ran += 100; }));
    lane.Submit(UniqueTask([&ran] { ran += 100; }));
    while (!started.load()) std::this_thread::yield();
    // Destructor runs while task 1 executes: it must finish; the queued
    // tasks may be discarded.
  }
  EXPECT_GE(ran.load(), 1);   // the executing task always finishes
  EXPECT_LE(ran.load(), 201); // discarded tasks never resurrect later
}

}  // namespace
}  // namespace sdn::util
