#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

namespace sdn::util {
namespace {

/// Runs fn over n items and returns per-index visit counts.
std::vector<int> VisitCounts(ThreadPool& pool, std::int64_t n, int shards,
                             int max_lanes) {
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  pool.ParallelFor(n, shards, max_lanes,
                   [&hits](int, std::int64_t begin, std::int64_t end) {
                     for (std::int64_t i = begin; i < end; ++i) {
                       hits[static_cast<std::size_t>(i)].fetch_add(1);
                     }
                   });
  std::vector<int> out;
  out.reserve(hits.size());
  for (const auto& h : hits) out.push_back(h.load());
  return out;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  const std::vector<int> hits = VisitCounts(pool, 1000, 16, 4);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, MoreShardsThanLanes) {
  ThreadPool pool(2);
  const std::vector<int> hits = VisitCounts(pool, 337, 32, 2);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, FewerItemsThanShards) {
  ThreadPool pool(2);
  // Empty shards (begin == end) must be skipped, non-empty ones run once.
  const std::vector<int> hits = VisitCounts(pool, 5, 16, 3);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 4, 4, [&calls](int, std::int64_t, std::int64_t) {
    ++calls;
  });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.ParallelFor(100, 8, 8,
                   [&](int, std::int64_t, std::int64_t) {
                     all_on_caller =
                         all_on_caller && std::this_thread::get_id() == caller;
                   });
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(256, 8, 4,
                       [](int shard, std::int64_t, std::int64_t) {
                         if (shard == 5) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay fully usable after a failed job.
  const std::vector<int> hits = VisitCounts(pool, 256, 8, 4);
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ShardBoundariesIndependentOfLaneCount) {
  // Determinism precondition: the (shard, begin, end) partition is a pure
  // function of (n, shards) — the lane count only changes who runs what.
  using Range = std::tuple<int, std::int64_t, std::int64_t>;
  ThreadPool pool(3);
  const auto partition = [&pool](int max_lanes) {
    std::mutex mu;
    std::vector<Range> ranges;
    pool.ParallelFor(777, 16, max_lanes,
                     [&](int shard, std::int64_t begin, std::int64_t end) {
                       const std::lock_guard<std::mutex> lock(mu);
                       ranges.emplace_back(shard, begin, end);
                     });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  const std::vector<Range> serial = partition(1);
  const std::vector<Range> wide = partition(4);
  EXPECT_EQ(serial, wide);
}

TEST(ThreadPool, ConcurrentCallersShareThePool) {
  ThreadPool pool(3);
  std::vector<std::vector<int>> results(4);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < results.size(); ++c) {
    callers.emplace_back([&pool, &results, c] {
      results[c] = VisitCounts(pool, 500, 10, 4);
    });
  }
  for (std::thread& t : callers) t.join();
  for (const std::vector<int>& hits : results) {
    EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                            [](int h) { return h == 1; }));
  }
}

TEST(ThreadPool, SharedPoolIsASingletonWithAtLeastTwoLanes) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().lanes(), 2);
}

}  // namespace
}  // namespace sdn::util
