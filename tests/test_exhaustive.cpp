// Exhaustive adversary-space model checking at small N.
//
// For tiny networks the 1-interval adversary space is fully enumerable:
// every sequence of connected graphs. These tests run the algorithms against
// EVERY such sequence (with the tail repeated once the recorded prefix
// ends, which is what ReplayAdversary does) — not sampled, exhaustive. This
// is the strongest correctness statement the simulation can make without a
// proof: no 3-node (resp. 4-node) adversary whatsoever can break these
// algorithms' grades.
#include <gtest/gtest.h>

#include <vector>

#include "adversary/replay.hpp"
#include "algo/census.hpp"
#include "algo/flood_max.hpp"
#include "algo/hjswy.hpp"
#include "graph/algorithms.hpp"
#include "net/engine.hpp"
#include "util/rng.hpp"

namespace sdn {
namespace {

using graph::Edge;
using graph::Graph;
using graph::NodeId;

/// All connected graphs on n nodes (n small), by edge-subset enumeration.
std::vector<Graph> ConnectedGraphs(NodeId n) {
  std::vector<Edge> all_edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) all_edges.emplace_back(u, v);
  }
  std::vector<Graph> out;
  for (std::uint32_t mask = 0; mask < (1u << all_edges.size()); ++mask) {
    std::vector<Edge> edges;
    for (std::size_t e = 0; e < all_edges.size(); ++e) {
      if ((mask >> e) & 1u) edges.push_back(all_edges[e]);
    }
    Graph g(n, edges);
    if (graph::IsConnected(g)) out.push_back(std::move(g));
  }
  return out;
}

/// Iterates all length-L sequences over `alphabet` (odometer-style).
class SequenceEnumerator {
 public:
  SequenceEnumerator(std::size_t alphabet, int length)
      : alphabet_(alphabet), digits_(static_cast<std::size_t>(length), 0) {}

  [[nodiscard]] const std::vector<std::size_t>& digits() const {
    return digits_;
  }
  bool Next() {
    for (auto& d : digits_) {
      if (++d < alphabet_) return true;
      d = 0;
    }
    return false;
  }

 private:
  std::size_t alphabet_;
  std::vector<std::size_t> digits_;
};

TEST(Exhaustive, FloodMaxCorrectAgainstEveryThreeNodeAdversary) {
  const NodeId n = 3;
  const auto graphs = ConnectedGraphs(n);
  ASSERT_EQ(graphs.size(), 4u);
  SequenceEnumerator seqs(graphs.size(), /*length=*/n - 1);
  std::int64_t checked = 0;
  do {
    std::vector<Graph> sequence;
    for (const std::size_t g : seqs.digits()) sequence.push_back(graphs[g]);
    adversary::ReplayAdversary adv(sequence, 1);
    std::vector<algo::FloodMaxKnownN> nodes;
    for (NodeId u = 0; u < n; ++u) {
      nodes.emplace_back(u, n, static_cast<algo::Value>(10 - u));
    }
    net::Engine<algo::FloodMaxKnownN> engine(std::move(nodes), adv, {});
    const net::RunStats stats = engine.Run();
    ASSERT_TRUE(stats.all_decided);
    ASSERT_LE(stats.rounds, n - 1);
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(engine.node(u).output(), 10) << "sequence #" << checked;
    }
    ++checked;
  } while (seqs.Next());
  EXPECT_EQ(checked, 16);  // 4^2 sequences
}

TEST(Exhaustive, FloodAlgorithmsCorrectAgainstEveryFourNodeAdversary) {
  const NodeId n = 4;
  const auto graphs = ConnectedGraphs(n);
  ASSERT_EQ(graphs.size(), 38u);
  SequenceEnumerator seqs(graphs.size(), /*length=*/n - 1);
  std::int64_t checked = 0;
  do {
    std::vector<Graph> sequence;
    for (const std::size_t g : seqs.digits()) sequence.push_back(graphs[g]);
    adversary::ReplayAdversary adv(sequence, 1);

    std::vector<algo::ConsensusFloodKnownN> nodes;
    for (NodeId u = 0; u < n; ++u) {
      nodes.emplace_back(u, n, static_cast<algo::Value>(100 + u));
    }
    net::EngineOptions opts;
    opts.flood_probes = 0;  // keep the exhaustive sweep cheap
    net::Engine<algo::ConsensusFloodKnownN> engine(std::move(nodes), adv,
                                                   opts);
    const net::RunStats stats = engine.Run();
    ASSERT_TRUE(stats.all_decided);
    for (NodeId u = 0; u < n; ++u) {
      // Agreement on node 0's input (the min id always floods in n-1 rounds).
      ASSERT_EQ(engine.node(u).output(), 100) << "sequence #" << checked;
    }
    ++checked;
  } while (seqs.Next());
  EXPECT_EQ(checked, 38 * 38 * 38);
}

TEST(Exhaustive, CensusExactAgainstEveryThreeNodePrefixAdversary) {
  // Census runs for many guesses; enumerate all 4-round prefixes (the tail
  // repeats the last graph). Soundness must hold for every one: the decided
  // count is exactly 3 at every node.
  const NodeId n = 3;
  const auto graphs = ConnectedGraphs(n);
  SequenceEnumerator seqs(graphs.size(), /*length=*/4);
  do {
    std::vector<Graph> sequence;
    for (const std::size_t g : seqs.digits()) sequence.push_back(graphs[g]);
    adversary::ReplayAdversary adv(sequence, 1);
    algo::CensusOptions options;
    options.pipeline_T = 1;
    std::vector<algo::CensusProgram> nodes;
    for (NodeId u = 0; u < n; ++u) nodes.emplace_back(u, u, options);
    net::EngineOptions opts;
    opts.flood_probes = 0;
    opts.max_rounds = 10000;
    net::Engine<algo::CensusProgram> engine(std::move(nodes), adv, opts);
    const net::RunStats stats = engine.Run();
    ASSERT_TRUE(stats.all_decided);
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(engine.node(u).output()->count, 3);
    }
  } while (seqs.Next());
}

TEST(Exhaustive, HjswyCensusExactAgainstEveryThreeNodePrefixAdversary) {
  const NodeId n = 3;
  const auto graphs = ConnectedGraphs(n);
  SequenceEnumerator seqs(graphs.size(), /*length=*/4);
  util::Rng base(77);
  do {
    std::vector<Graph> sequence;
    for (const std::size_t g : seqs.digits()) sequence.push_back(graphs[g]);
    adversary::ReplayAdversary adv(sequence, 1);
    algo::HjswyOptions options;
    options.T = 1;
    options.exact_census = true;
    std::vector<algo::HjswyProgram> nodes;
    for (NodeId u = 0; u < n; ++u) {
      nodes.emplace_back(u, u, options,
                         base.Fork(static_cast<std::uint64_t>(u)));
    }
    net::EngineOptions opts;
    opts.flood_probes = 0;
    opts.max_rounds = 10000;
    net::Engine<algo::HjswyProgram> engine(std::move(nodes), adv, opts);
    const net::RunStats stats = engine.Run();
    ASSERT_TRUE(stats.all_decided);
    for (NodeId u = 0; u < n; ++u) {
      ASSERT_EQ(engine.node(u).output()->count, 3);
      ASSERT_EQ(engine.node(u).output()->max_value, 2);
      ASSERT_EQ(engine.node(u).output()->consensus_value, 0);
    }
  } while (seqs.Next());
}

}  // namespace
}  // namespace sdn
