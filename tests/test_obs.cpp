// Observability layer: flight-recorder ring semantics, the metrics
// registry's determinism contract and quantile math, and run-manifest
// serialisation (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/anomaly.hpp"
#include "obs/events.hpp"
#include "obs/manifest.hpp"
#include "obs/openmetrics.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/rolling_hist.hpp"
#include "util/check.hpp"

namespace sdn::obs {
namespace {

Event At(std::int64_t t_ns, std::int64_t a = 0) {
  Event e;
  e.kind = EventKind::kCounter;
  e.label = "x";
  e.t_ns = t_ns;
  e.a = a;
  return e;
}

TEST(FlightRecorder, EmitsAndDrainsInTimeOrder) {
  FlightRecorder rec;
  rec.Emit(At(30));
  rec.Emit(At(10));
  rec.Emit(At(20));
  EXPECT_EQ(rec.total_emitted(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_ns, 10);
  EXPECT_EQ(events[1].t_ns, 20);
  EXPECT_EQ(events[2].t_ns, 30);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDrops) {
  FlightRecorder rec(/*lanes=*/1, /*lane_capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) rec.Emit(At(i, i));
  EXPECT_EQ(rec.total_emitted(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 4u);
  // Flight-recorder semantics: the most recent window survives.
  EXPECT_EQ(events.front().a, 6);
  EXPECT_EQ(events.back().a, 9);
}

TEST(FlightRecorder, LanesMergeChronologicallyWithLaneTiebreak) {
  FlightRecorder rec(/*lanes=*/2);
  rec.EmitLane(1, At(5));
  rec.EmitLane(0, At(5));
  rec.EmitLane(1, At(1));
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_ns, 1);
  EXPECT_EQ(events[0].lane, 1);
  EXPECT_EQ(events[1].lane, 0);  // equal t_ns: lane 0 first
  EXPECT_EQ(events[2].lane, 1);
}

TEST(FlightRecorder, OutOfRangeLaneClampsToZero) {
  FlightRecorder rec(/*lanes=*/2);
  rec.EmitLane(7, At(1));
  rec.EmitLane(-3, At(2));
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].lane, 0);
  EXPECT_EQ(events[1].lane, 0);
}

TEST(FlightRecorder, JsonlCarriesManifestMetaAndEvents) {
  FlightRecorder rec;
  Event e = At(100, 7);
  e.kind = EventKind::kSketchMerge;
  e.round = 3;
  e.dur_ns = 50;
  rec.Emit(e);
  RunManifest manifest;
  manifest.Set("experiment", "unit-test");
  std::ostringstream os;
  rec.WriteJsonl(os, &manifest);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"type\":\"manifest\""), std::string::npos);
  EXPECT_NE(out.find("\"experiment\":\"unit-test\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"meta\",\"emitted\":1,\"dropped\":0"),
            std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"sketch_merge\""), std::string::npos);
  EXPECT_NE(out.find("\"round\":3"), std::string::npos);
  EXPECT_NE(out.find("\"dur_ns\":50"), std::string::npos);
  EXPECT_NE(out.find("\"a\":7"), std::string::npos);
}

TEST(FlightRecorder, JsonlEmitsCertifiedTOnlyWhenSet) {
  // kCheckerWindow carries certified-T in `c`; events that never set it
  // must not grow a noise field.
  FlightRecorder rec;
  Event window = At(10, 5);
  window.kind = EventKind::kCheckerWindow;
  window.c = 2;
  rec.Emit(window);
  rec.Emit(At(20, 1));  // c left at 0
  std::ostringstream os;
  rec.WriteJsonl(os, nullptr);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"kind\":\"checker_window\""), std::string::npos);
  EXPECT_NE(out.find("\"c\":2"), std::string::npos);
  EXPECT_EQ(out.find("\"c\":0"), std::string::npos);
}

TEST(FlightRecorder, ChromeTraceHasTracksSpansAndManifest) {
  FlightRecorder rec;
  Event phase;
  phase.kind = EventKind::kPhase;
  phase.label = "deliver";
  phase.t_ns = 1000;
  phase.dur_ns = 500;
  phase.round = 1;
  rec.Emit(phase);
  Event algo;
  algo.kind = EventKind::kAlgoPhase;
  algo.label = "disseminate";
  algo.t_ns = 1100;
  algo.a = 2;
  rec.Emit(algo);
  RunManifest manifest;
  manifest.Set("git_sha", "abc123");
  std::ostringstream os;
  rec.WriteChromeTrace(os, &manifest);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(out.find("\"name\":\"deliver\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"disseminate #2\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"otherData\": {\"git_sha\":\"abc123\"}"),
            std::string::npos);
  // Braces balance — a cheap structural check that the JSON closes.
  std::int64_t depth = 0;
  for (const char c : out) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorder, WriteToUnopenablePathReturnsFalse) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.WriteJsonl("/nonexistent-dir/trace.jsonl"));
  EXPECT_FALSE(rec.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

TEST(Histogram, SummaryStatisticsAreExact) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty
  h.Observe(0);
  h.Observe(5);
  h.Observe(5);
  h.Observe(200);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 210);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 200);
}

TEST(Histogram, SingleValueQuantilesClampExactly) {
  Histogram h;
  h.Observe(5);
  EXPECT_EQ(h.Quantile(0.0), 5);
  EXPECT_EQ(h.Quantile(0.5), 5);
  EXPECT_EQ(h.Quantile(1.0), 5);
}

TEST(Histogram, QuantilesLandInTheRightLog2Bucket) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100; ++v) h.Observe(v);
  const std::int64_t p50 = h.Quantile(0.50);
  const std::int64_t p95 = h.Quantile(0.95);
  // The true p50 is 50 (bucket 32..63); p95 is 95 (bucket 64..127, clamped
  // to max=100). Log-bucketed estimates must stay inside those buckets.
  EXPECT_GE(p50, 32);
  EXPECT_LE(p50, 63);
  EXPECT_GE(p95, 64);
  EXPECT_LE(p95, 100);
  EXPECT_LE(h.Quantile(1.0), 100);
  EXPECT_GE(h.Quantile(0.0), 1);
}

TEST(Registry, InstrumentsAreStableAndSnapshotted) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("msgs");
  c->Add(41);
  c->Increment();
  EXPECT_EQ(registry.GetCounter("msgs"), c);  // same name -> same instrument
  registry.GetGauge("hw_bits")->Set(256);
  Histogram* h = registry.GetHistogram("round_ns", /*deterministic=*/false);
  h->Observe(1000);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "msgs");  // insertion order
  const MetricSample* msgs = snap.Find("msgs");
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->value, 42);
  EXPECT_EQ(snap.Find("hw_bits")->value, 256);
  EXPECT_EQ(snap.Find("round_ns")->count, 1);
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

TEST(Registry, KindMismatchIsRejected) {
  MetricsRegistry registry;
  registry.GetCounter("x");
  EXPECT_THROW((void)registry.GetGauge("x"), util::CheckError);
  EXPECT_THROW((void)registry.GetHistogram("x"), util::CheckError);
}

TEST(Registry, DeterministicSubsetExcludesWallClockMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("merges")->Add(3);
  registry.GetHistogram("send_ns", /*deterministic=*/false)->Observe(123);
  const std::vector<MetricSample> det = registry.Snapshot().Deterministic();
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0].name, "merges");
}

TEST(Registry, OneLineRendersCountersAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("msgs")->Add(7);
  Histogram* h = registry.GetHistogram("lat");
  h->Observe(4);
  h->Observe(4);
  const std::string line = registry.Snapshot().OneLine();
  EXPECT_NE(line.find("msgs=7"), std::string::npos);
  EXPECT_NE(line.find("lat=p50:"), std::string::npos);
}

TEST(Manifest, CollectRecordsProvenanceKeys) {
  const RunManifest manifest = RunManifest::Collect();
  for (const char* key : {"sdn_version", "git_sha", "compiler", "build_type",
                          "hostname", "utc_time"}) {
    ASSERT_NE(manifest.Find(key), nullptr) << key;
    EXPECT_FALSE(manifest.Find(key)->empty()) << key;
  }
  // ISO-8601 UTC: "2026-08-06T...Z".
  const std::string& utc = *manifest.Find("utc_time");
  EXPECT_EQ(utc.size(), 20u);
  EXPECT_EQ(utc.back(), 'Z');
  EXPECT_EQ(utc[4], '-');
  EXPECT_EQ(utc[10], 'T');
}

TEST(Manifest, GitShaOverridePrecedenceAndLocalFallback) {
  // The SDN_GIT_SHA override (CI's pin of the exact commit under test)
  // wins over any local resolution, verbatim.
  ASSERT_EQ(setenv("SDN_GIT_SHA", "feedface0override", 1), 0);
  EXPECT_EQ(*RunManifest::Collect().Find("git_sha"), "feedface0override");
  ASSERT_EQ(unsetenv("SDN_GIT_SHA"), 0);
  // Without the override the sha resolves locally: the .git/HEAD walk,
  // then a cached `git rev-parse HEAD`. Run from anywhere inside this
  // repository that must produce a real 40-hex commit id — the historic
  // git_sha:"unknown" rows in recorded manifests were this fallback
  // missing, not an unknowable sha.
  const std::string sha = *RunManifest::Collect().Find("git_sha");
  EXPECT_EQ(sha.size(), 40u) << "resolved git_sha: " << sha;
  EXPECT_TRUE(std::all_of(sha.begin(), sha.end(), [](unsigned char c) {
    return std::isxdigit(c) != 0;
  })) << "resolved git_sha: " << sha;
}

TEST(Manifest, SetOverwritesAndSerialises) {
  RunManifest manifest;
  manifest.Set("experiment", "t1");
  manifest.Set("trials", 3);
  manifest.Set("experiment", "t1_count_vs_n");  // overwrite, keep position
  EXPECT_EQ(manifest.ToJson(),
            "{\"experiment\":\"t1_count_vs_n\",\"trials\":\"3\"}");
  const std::vector<std::string> lines = manifest.CommentLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "# experiment=t1_count_vs_n");
  EXPECT_EQ(lines[1], "# trials=3");
}

TEST(Manifest, JsonEscapeHandlesQuotesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(FlightRecorder, PerLaneDropCounts) {
  FlightRecorder rec(/*lanes=*/2, /*lane_capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) rec.EmitLane(0, At(i));
  for (std::int64_t i = 0; i < 3; ++i) rec.EmitLane(1, At(i));
  EXPECT_EQ(rec.dropped_lane(0), 6u);
  EXPECT_EQ(rec.dropped_lane(1), 0u);
  EXPECT_EQ(rec.dropped_lane(2), 0u);   // out of range: 0, never a throw
  EXPECT_EQ(rec.dropped_lane(-1), 0u);
  EXPECT_EQ(rec.dropped(), 6u);  // aggregate stays the per-lane sum
}

TEST(RollingHist, WindowEvictsOldestObservations) {
  RollingHist h(/*window=*/4);
  for (int i = 0; i < 4; ++i) h.Observe(1000);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 4000);
  h.Observe(8);  // evicts one 1000
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.total_observed(), 5);
  EXPECT_EQ(h.sum(), 3008);
  for (int i = 0; i < 3; ++i) h.Observe(8);  // window is now all 8s
  EXPECT_EQ(h.sum(), 32);
  // Every 1000 left the window, so even the max quantile sits in the
  // bucket holding 8 ([8, 15]).
  EXPECT_GE(h.Quantile(1.0), 8);
  EXPECT_LE(h.Quantile(1.0), 15);
}

TEST(RollingHist, QuantilesLandInTheRightLog2Bucket) {
  RollingHist h(/*window=*/128);
  for (std::int64_t v = 1; v <= 100; ++v) h.Observe(v);
  const std::int64_t p50 = h.Quantile(0.50);
  // True p50 is 50: the estimate must stay inside its bucket [32, 63].
  EXPECT_GE(p50, 32);
  EXPECT_LE(p50, 63);
  EXPECT_EQ(h.Quantile(0.0), 1);  // clamped to the first bucket's floor
}

TEST(RollingHist, EmptyAndZeroSemantics) {
  RollingHist h(/*window=*/2);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
  h.Observe(0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.Quantile(1.0), 0);  // bucket 0 holds exactly {0}
}

AnomalyOptions TightOptions() {
  AnomalyOptions o;
  o.window = 16;
  o.min_samples = 4;
  o.spike_factor = 2.0;
  o.spike_floor_ns = 100;
  o.aux_stall_ns = 500;
  o.memory_jump_factor = 0.5;
  o.memory_jump_floor_bytes = 100;
  o.cooldown_rounds = 1;
  return o;
}

RoundSignals Signals(std::int64_t round, std::int64_t total_ns = 1000) {
  RoundSignals s;
  s.round = round;
  s.total_ns = total_ns;
  return s;
}

TEST(AnomalyEngine, SpikeArmsOnlyAfterMinSamples) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);
  // Rounds 1-3 seed the window; a spike at round 4 sees count()==3 <
  // min_samples and must not fire — an empty baseline is no baseline.
  for (std::int64_t r = 1; r <= 3; ++r) engine.Observe(Signals(r), {});
  engine.Observe(Signals(4, 100'000), {});
  EXPECT_EQ(engine.total_fired(), 0);
}

TEST(AnomalyEngine, SpikeFiresAgainstRollingP99NotItself) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);
  for (std::int64_t r = 1; r <= 4; ++r) engine.Observe(Signals(r), {});
  engine.Observe(Signals(5, 100'000), {});
  ASSERT_EQ(engine.records().size(), 1u);
  const AnomalyRecord& rec = engine.records().front();
  EXPECT_EQ(rec.rule, AnomalyRule::kRoundTimeSpike);
  EXPECT_EQ(rec.round, 5);
  EXPECT_EQ(rec.value, 100'000);
  EXPECT_STREQ(rec.signal, "round_total_ns");
  // Threshold was armed from the window *before* the spike (p99 of the
  // 1000 ns baseline x factor 2), far below the spike itself.
  EXPECT_LT(rec.threshold, 100'000);
  EXPECT_GE(rec.threshold, 100);
}

TEST(AnomalyEngine, CooldownSuppressesImmediateRefire) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);  // cooldown 1 round
  for (std::int64_t r = 1; r <= 4; ++r) engine.Observe(Signals(r), {});
  engine.Observe(Signals(5, 100'000), {});
  // Round 6 spikes far above even the spiked window's p99, but it is
  // inside the cooldown.
  engine.Observe(Signals(6, 100'000'000), {});
  EXPECT_EQ(engine.total_fired(), 1);
  // Round 7 is past the cooldown. Round 6's suppressed sample still folded
  // into the window, so the rolling p99 now sits near 100 ms — spike well
  // past 2x that and it fires again.
  engine.Observe(Signals(7, 100'000'000'000), {});
  EXPECT_EQ(engine.total_fired(), 2);
}

TEST(AnomalyEngine, AuxLaneStallFiresAboveThreshold) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);
  RoundSignals s = Signals(1);
  s.aux_wait_ns = 400;  // under the 500 ns test threshold
  engine.Observe(s, {});
  EXPECT_EQ(engine.total_fired(), 0);
  s = Signals(2);
  s.aux_wait_ns = 1000;
  engine.Observe(s, {});
  ASSERT_EQ(engine.records().size(), 1u);
  EXPECT_EQ(engine.records().front().rule, AnomalyRule::kAuxLaneStall);
  EXPECT_STREQ(engine.records().front().signal, "aux_lane_wait_ns");
}

TEST(AnomalyEngine, MemoryJumpBaselinesFirstSightThenFiresOnStep) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);
  const MemorySample first[] = {{"outbox", 1000}};
  engine.Observe(Signals(1), first);  // first sight: baseline only
  EXPECT_EQ(engine.total_fired(), 0);
  const MemorySample jump[] = {{"outbox", 5000}};
  engine.Observe(Signals(2), jump);  // step 4000 > max(100, 0.5 x 1000)
  ASSERT_EQ(engine.records().size(), 1u);
  const AnomalyRecord& rec = engine.records().front();
  EXPECT_EQ(rec.rule, AnomalyRule::kMemoryJump);
  EXPECT_EQ(rec.value, 5000);
  EXPECT_STREQ(rec.signal, "outbox");
  const MemorySample settle[] = {{"outbox", 5050}};
  engine.Observe(Signals(4), settle);  // small step, past cooldown: silent
  EXPECT_EQ(engine.total_fired(), 1);
}

TEST(AnomalyEngine, CertRegressionOnDropAndFirstBadWindow) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);
  RoundSignals s = Signals(1);
  s.certified_T = 4;
  engine.Observe(s, {});  // baseline
  s = Signals(2);
  s.certified_T = -1;  // not sampled this round: rule must skip, not fire
  engine.Observe(s, {});
  EXPECT_EQ(engine.total_fired(), 0);
  s = Signals(3);
  s.certified_T = 2;  // drop vs the last sampled value
  engine.Observe(s, {});
  ASSERT_EQ(engine.records().size(), 1u);
  EXPECT_EQ(engine.records().front().rule, AnomalyRule::kCertRegression);
  EXPECT_EQ(engine.records().front().value, 2);
  EXPECT_EQ(engine.records().front().threshold, 4);
  s = Signals(5);
  s.certified_T = 2;
  s.first_bad_window = 7;
  engine.Observe(s, {});  // first bad window: one-shot latch
  EXPECT_EQ(engine.total_fired(), 2);
  EXPECT_STREQ(engine.records().back().signal, "tinterval_first_bad_window");
  s = Signals(7);
  s.certified_T = 2;
  s.first_bad_window = 7;
  engine.Observe(s, {});  // latched: no refire even past cooldown
  EXPECT_EQ(engine.total_fired(), 2);
}

TEST(AnomalyEngine, RecorderDropOnsetFiresOnceAtTransition) {
  AnomalyEngine engine(TightOptions(), nullptr, nullptr);
  RoundSignals s = Signals(1);
  s.recorder_dropped = 0;
  engine.Observe(s, {});
  EXPECT_EQ(engine.total_fired(), 0);
  s = Signals(3);
  s.recorder_dropped = 10;  // onset
  engine.Observe(s, {});
  EXPECT_EQ(engine.total_fired(), 1);
  EXPECT_EQ(engine.records().front().rule, AnomalyRule::kRecorderDropOnset);
  s = Signals(6);
  s.recorder_dropped = 500;  // keeps climbing: gauges carry it, no refire
  engine.Observe(s, {});
  EXPECT_EQ(engine.total_fired(), 1);
}

TEST(AnomalyEngine, RegistryCountersTrackFirings) {
  MetricsRegistry registry;
  AnomalyEngine engine(TightOptions(), &registry, nullptr);
  RoundSignals s = Signals(1);
  s.aux_wait_ns = 1000;
  engine.Observe(s, {});
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.Find("anomalies_total")->value, 1);
  EXPECT_EQ(snap.Find("anomaly_aux_lane_stall")->value, 1);
  EXPECT_EQ(snap.Find("anomaly_round_time_spike")->value, 0);
  // Everything the anomaly plane registers is wall-clock-driven and must
  // stay out of the deterministic subset.
  EXPECT_TRUE(registry.Snapshot().Deterministic().empty());
}

TEST(AnomalyEngine, DumpWritesRecorderWindowAndManifest) {
  const std::string dir = ::testing::TempDir();
  FlightRecorder recorder;
  recorder.Emit(At(10));
  AnomalyOptions options = TightOptions();
  options.dump_dir = dir;
  AnomalyEngine engine(options, nullptr, &recorder);
  RoundSignals s = Signals(9);
  s.aux_wait_ns = 1000;
  engine.Observe(s, {});
  ASSERT_EQ(engine.dumps_written(), 1);
  const std::string stem = dir + "/anomaly-9-aux_lane_stall";
  std::ifstream jsonl(stem + ".jsonl");
  ASSERT_TRUE(jsonl.good()) << stem;
  std::stringstream body;
  body << jsonl.rdbuf();
  EXPECT_NE(body.str().find("\"anomaly_rule\":\"aux_lane_stall\""),
            std::string::npos);
  EXPECT_NE(body.str().find("\"anomaly_round\":\"9\""), std::string::npos);
  std::ifstream manifest(stem + ".manifest.json");
  EXPECT_TRUE(manifest.good()) << stem;
}

TEST(AnomalyEngine, DumpCountIsBounded) {
  const std::string dir = ::testing::TempDir();
  FlightRecorder recorder;
  AnomalyOptions options = TightOptions();
  options.dump_dir = dir;
  options.max_dumps = 1;
  options.cooldown_rounds = 0;
  AnomalyEngine engine(options, nullptr, &recorder);
  for (std::int64_t r = 1; r <= 4; ++r) {
    RoundSignals s = Signals(r * 2);
    s.aux_wait_ns = 1000;
    engine.Observe(s, {});
  }
  EXPECT_EQ(engine.total_fired(), 4);
  EXPECT_EQ(engine.dumps_written(), 1);
}

TEST(OpenMetrics, NameMappingAndPrefix) {
  EXPECT_EQ(OpenMetricsName("round_ns"), "sdn_round_ns");
  EXPECT_EQ(OpenMetricsName("weird-name.x"), "sdn_weird_name_x");
}

TEST(OpenMetrics, RendersCountersGaugesSummariesAndEof) {
  MetricsRegistry registry;
  registry.GetCounter("msgs")->Add(7);
  registry.GetGauge("hw_bits")->Set(256);
  Histogram* h = registry.GetHistogram("round_ns", /*deterministic=*/false);
  h->Observe(100);
  h->Observe(200);
  const std::string out = RenderOpenMetrics(registry.Snapshot());
  EXPECT_NE(out.find("# TYPE sdn_msgs counter\nsdn_msgs_total 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE sdn_hw_bits gauge\nsdn_hw_bits 256\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE sdn_round_ns summary\n"), std::string::npos);
  EXPECT_NE(out.find("sdn_round_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(out.find("sdn_round_ns{quantile=\"0.95\"}"), std::string::npos);
  EXPECT_NE(out.find("sdn_round_ns_sum 300\n"), std::string::npos);
  EXPECT_NE(out.find("sdn_round_ns_count 2\n"), std::string::npos);
  // The format requires the EOF terminator as the final line.
  ASSERT_GE(out.size(), 6u);
  EXPECT_EQ(out.substr(out.size() - 6), "# EOF\n");
}

TEST(OpenMetrics, MemoryAndAnomalySeriesCarryLabels) {
  MetricsRegistry registry;
  const std::vector<MemorySeries> memory = {{"outbox", 100, 200},
                                            {"with\"quote", 1, 2}};
  const std::vector<AnomalyRecord> anomalies = {
      {AnomalyRule::kRoundTimeSpike, 5, 100, 10, "round_total_ns"},
      {AnomalyRule::kRoundTimeSpike, 9, 100, 10, "round_total_ns"},
      {AnomalyRule::kMemoryJump, 7, 100, 10, "outbox"}};
  const std::string out =
      RenderOpenMetrics(registry.Snapshot(), memory, anomalies);
  EXPECT_NE(
      out.find("sdn_memory_bytes{subsystem=\"outbox\",stat=\"current\"} 100"),
      std::string::npos);
  EXPECT_NE(
      out.find("sdn_memory_bytes{subsystem=\"outbox\",stat=\"peak\"} 200"),
      std::string::npos);
  EXPECT_NE(out.find("subsystem=\"with\\\"quote\""), std::string::npos);
  EXPECT_NE(out.find("sdn_anomaly_records{rule=\"round_time_spike\"} 2"),
            std::string::npos);
  EXPECT_NE(out.find("sdn_anomaly_records{rule=\"memory_jump\"} 1"),
            std::string::npos);
  // Rules that never fired do not emit empty series.
  EXPECT_EQ(out.find("rule=\"cert_regression\""), std::string::npos);
}

TEST(OpenMetrics, WriteToUnopenablePathReturnsFalse) {
  MetricsRegistry registry;
  EXPECT_FALSE(
      WriteOpenMetrics("/nonexistent-dir/metrics.txt", registry.Snapshot()));
}

TEST(Manifest, FakeTimeEnvOverridesUtcTimestampAndRoundTrips) {
  ASSERT_EQ(setenv("SDN_FAKE_TIME", "2026-01-02T03:04:05Z", 1), 0);
  const RunManifest faked = RunManifest::Collect();
  EXPECT_EQ(*faked.Find("utc_time"), "2026-01-02T03:04:05Z");
  // Round-trip: the injected stamp survives serialisation verbatim, so
  // manifest-comparing tests are reproducible byte for byte.
  EXPECT_NE(faked.ToJson().find("\"utc_time\":\"2026-01-02T03:04:05Z\""),
            std::string::npos);
  ASSERT_EQ(unsetenv("SDN_FAKE_TIME"), 0);
  const std::string& real = *RunManifest::Collect().Find("utc_time");
  EXPECT_EQ(real.size(), 20u);  // back on the wall clock
  EXPECT_EQ(real.back(), 'Z');
}

TEST(Events, KindNamesAreStable) {
  EXPECT_STREQ(ToString(EventKind::kPhase), "phase");
  EXPECT_STREQ(ToString(EventKind::kAlgoPhase), "algo_phase");
  EXPECT_STREQ(ToString(EventKind::kBandwidthViolation),
               "bandwidth_violation");
}

}  // namespace
}  // namespace sdn::obs
