// Observability layer: flight-recorder ring semantics, the metrics
// registry's determinism contract and quantile math, and run-manifest
// serialisation (docs/OBSERVABILITY.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "util/check.hpp"

namespace sdn::obs {
namespace {

Event At(std::int64_t t_ns, std::int64_t a = 0) {
  Event e;
  e.kind = EventKind::kCounter;
  e.label = "x";
  e.t_ns = t_ns;
  e.a = a;
  return e;
}

TEST(FlightRecorder, EmitsAndDrainsInTimeOrder) {
  FlightRecorder rec;
  rec.Emit(At(30));
  rec.Emit(At(10));
  rec.Emit(At(20));
  EXPECT_EQ(rec.total_emitted(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_ns, 10);
  EXPECT_EQ(events[1].t_ns, 20);
  EXPECT_EQ(events[2].t_ns, 30);
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsDrops) {
  FlightRecorder rec(/*lanes=*/1, /*lane_capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) rec.Emit(At(i, i));
  EXPECT_EQ(rec.total_emitted(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 4u);
  // Flight-recorder semantics: the most recent window survives.
  EXPECT_EQ(events.front().a, 6);
  EXPECT_EQ(events.back().a, 9);
}

TEST(FlightRecorder, LanesMergeChronologicallyWithLaneTiebreak) {
  FlightRecorder rec(/*lanes=*/2);
  rec.EmitLane(1, At(5));
  rec.EmitLane(0, At(5));
  rec.EmitLane(1, At(1));
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].t_ns, 1);
  EXPECT_EQ(events[0].lane, 1);
  EXPECT_EQ(events[1].lane, 0);  // equal t_ns: lane 0 first
  EXPECT_EQ(events[2].lane, 1);
}

TEST(FlightRecorder, OutOfRangeLaneClampsToZero) {
  FlightRecorder rec(/*lanes=*/2);
  rec.EmitLane(7, At(1));
  rec.EmitLane(-3, At(2));
  const std::vector<Event> events = rec.Drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].lane, 0);
  EXPECT_EQ(events[1].lane, 0);
}

TEST(FlightRecorder, JsonlCarriesManifestMetaAndEvents) {
  FlightRecorder rec;
  Event e = At(100, 7);
  e.kind = EventKind::kSketchMerge;
  e.round = 3;
  e.dur_ns = 50;
  rec.Emit(e);
  RunManifest manifest;
  manifest.Set("experiment", "unit-test");
  std::ostringstream os;
  rec.WriteJsonl(os, &manifest);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"type\":\"manifest\""), std::string::npos);
  EXPECT_NE(out.find("\"experiment\":\"unit-test\""), std::string::npos);
  EXPECT_NE(out.find("\"type\":\"meta\",\"emitted\":1,\"dropped\":0"),
            std::string::npos);
  EXPECT_NE(out.find("\"kind\":\"sketch_merge\""), std::string::npos);
  EXPECT_NE(out.find("\"round\":3"), std::string::npos);
  EXPECT_NE(out.find("\"dur_ns\":50"), std::string::npos);
  EXPECT_NE(out.find("\"a\":7"), std::string::npos);
}

TEST(FlightRecorder, JsonlEmitsCertifiedTOnlyWhenSet) {
  // kCheckerWindow carries certified-T in `c`; events that never set it
  // must not grow a noise field.
  FlightRecorder rec;
  Event window = At(10, 5);
  window.kind = EventKind::kCheckerWindow;
  window.c = 2;
  rec.Emit(window);
  rec.Emit(At(20, 1));  // c left at 0
  std::ostringstream os;
  rec.WriteJsonl(os, nullptr);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"kind\":\"checker_window\""), std::string::npos);
  EXPECT_NE(out.find("\"c\":2"), std::string::npos);
  EXPECT_EQ(out.find("\"c\":0"), std::string::npos);
}

TEST(FlightRecorder, ChromeTraceHasTracksSpansAndManifest) {
  FlightRecorder rec;
  Event phase;
  phase.kind = EventKind::kPhase;
  phase.label = "deliver";
  phase.t_ns = 1000;
  phase.dur_ns = 500;
  phase.round = 1;
  rec.Emit(phase);
  Event algo;
  algo.kind = EventKind::kAlgoPhase;
  algo.label = "disseminate";
  algo.t_ns = 1100;
  algo.a = 2;
  rec.Emit(algo);
  RunManifest manifest;
  manifest.Set("git_sha", "abc123");
  std::ostringstream os;
  rec.WriteChromeTrace(os, &manifest);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"traceEvents\": [", 0), 0u);
  EXPECT_NE(out.find("\"name\":\"deliver\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"disseminate #2\""), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(out.find("\"otherData\": {\"git_sha\":\"abc123\"}"),
            std::string::npos);
  // Braces balance — a cheap structural check that the JSON closes.
  std::int64_t depth = 0;
  for (const char c : out) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorder, WriteToUnopenablePathReturnsFalse) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.WriteJsonl("/nonexistent-dir/trace.jsonl"));
  EXPECT_FALSE(rec.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

TEST(Histogram, SummaryStatisticsAreExact) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty
  h.Observe(0);
  h.Observe(5);
  h.Observe(5);
  h.Observe(200);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 210);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 200);
}

TEST(Histogram, SingleValueQuantilesClampExactly) {
  Histogram h;
  h.Observe(5);
  EXPECT_EQ(h.Quantile(0.0), 5);
  EXPECT_EQ(h.Quantile(0.5), 5);
  EXPECT_EQ(h.Quantile(1.0), 5);
}

TEST(Histogram, QuantilesLandInTheRightLog2Bucket) {
  Histogram h;
  for (std::int64_t v = 1; v <= 100; ++v) h.Observe(v);
  const std::int64_t p50 = h.Quantile(0.50);
  const std::int64_t p95 = h.Quantile(0.95);
  // The true p50 is 50 (bucket 32..63); p95 is 95 (bucket 64..127, clamped
  // to max=100). Log-bucketed estimates must stay inside those buckets.
  EXPECT_GE(p50, 32);
  EXPECT_LE(p50, 63);
  EXPECT_GE(p95, 64);
  EXPECT_LE(p95, 100);
  EXPECT_LE(h.Quantile(1.0), 100);
  EXPECT_GE(h.Quantile(0.0), 1);
}

TEST(Registry, InstrumentsAreStableAndSnapshotted) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("msgs");
  c->Add(41);
  c->Increment();
  EXPECT_EQ(registry.GetCounter("msgs"), c);  // same name -> same instrument
  registry.GetGauge("hw_bits")->Set(256);
  Histogram* h = registry.GetHistogram("round_ns", /*deterministic=*/false);
  h->Observe(1000);

  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "msgs");  // insertion order
  const MetricSample* msgs = snap.Find("msgs");
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->value, 42);
  EXPECT_EQ(snap.Find("hw_bits")->value, 256);
  EXPECT_EQ(snap.Find("round_ns")->count, 1);
  EXPECT_EQ(snap.Find("nope"), nullptr);
}

TEST(Registry, KindMismatchIsRejected) {
  MetricsRegistry registry;
  registry.GetCounter("x");
  EXPECT_THROW((void)registry.GetGauge("x"), util::CheckError);
  EXPECT_THROW((void)registry.GetHistogram("x"), util::CheckError);
}

TEST(Registry, DeterministicSubsetExcludesWallClockMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("merges")->Add(3);
  registry.GetHistogram("send_ns", /*deterministic=*/false)->Observe(123);
  const std::vector<MetricSample> det = registry.Snapshot().Deterministic();
  ASSERT_EQ(det.size(), 1u);
  EXPECT_EQ(det[0].name, "merges");
}

TEST(Registry, OneLineRendersCountersAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("msgs")->Add(7);
  Histogram* h = registry.GetHistogram("lat");
  h->Observe(4);
  h->Observe(4);
  const std::string line = registry.Snapshot().OneLine();
  EXPECT_NE(line.find("msgs=7"), std::string::npos);
  EXPECT_NE(line.find("lat=p50:"), std::string::npos);
}

TEST(Manifest, CollectRecordsProvenanceKeys) {
  const RunManifest manifest = RunManifest::Collect();
  for (const char* key : {"sdn_version", "git_sha", "compiler", "build_type",
                          "hostname", "utc_time"}) {
    ASSERT_NE(manifest.Find(key), nullptr) << key;
    EXPECT_FALSE(manifest.Find(key)->empty()) << key;
  }
  // ISO-8601 UTC: "2026-08-06T...Z".
  const std::string& utc = *manifest.Find("utc_time");
  EXPECT_EQ(utc.size(), 20u);
  EXPECT_EQ(utc.back(), 'Z');
  EXPECT_EQ(utc[4], '-');
  EXPECT_EQ(utc[10], 'T');
}

TEST(Manifest, GitShaOverridePrecedenceAndLocalFallback) {
  // The SDN_GIT_SHA override (CI's pin of the exact commit under test)
  // wins over any local resolution, verbatim.
  ASSERT_EQ(setenv("SDN_GIT_SHA", "feedface0override", 1), 0);
  EXPECT_EQ(*RunManifest::Collect().Find("git_sha"), "feedface0override");
  ASSERT_EQ(unsetenv("SDN_GIT_SHA"), 0);
  // Without the override the sha resolves locally: the .git/HEAD walk,
  // then a cached `git rev-parse HEAD`. Run from anywhere inside this
  // repository that must produce a real 40-hex commit id — the historic
  // git_sha:"unknown" rows in recorded manifests were this fallback
  // missing, not an unknowable sha.
  const std::string sha = *RunManifest::Collect().Find("git_sha");
  EXPECT_EQ(sha.size(), 40u) << "resolved git_sha: " << sha;
  EXPECT_TRUE(std::all_of(sha.begin(), sha.end(), [](unsigned char c) {
    return std::isxdigit(c) != 0;
  })) << "resolved git_sha: " << sha;
}

TEST(Manifest, SetOverwritesAndSerialises) {
  RunManifest manifest;
  manifest.Set("experiment", "t1");
  manifest.Set("trials", 3);
  manifest.Set("experiment", "t1_count_vs_n");  // overwrite, keep position
  EXPECT_EQ(manifest.ToJson(),
            "{\"experiment\":\"t1_count_vs_n\",\"trials\":\"3\"}");
  const std::vector<std::string> lines = manifest.CommentLines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "# experiment=t1_count_vs_n");
  EXPECT_EQ(lines[1], "# trials=3");
}

TEST(Manifest, JsonEscapeHandlesQuotesAndControlChars) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Events, KindNamesAreStable) {
  EXPECT_STREQ(ToString(EventKind::kPhase), "phase");
  EXPECT_STREQ(ToString(EventKind::kAlgoPhase), "algo_phase");
  EXPECT_STREQ(ToString(EventKind::kBandwidthViolation),
               "bandwidth_violation");
}

}  // namespace
}  // namespace sdn::obs
