#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "util/check.hpp"

namespace sdn::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  Rng c1_again = Rng(7).Fork(1);
  EXPECT_EQ(c1(), c1_again());
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (c1() == c2());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkChainsDoNotCommute) {
  Rng parent(7);
  EXPECT_NE(parent.Fork(1).Fork(2)(), parent.Fork(2).Fork(1)());
}

TEST(Rng, UniformU64InBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.UniformU64(bound), bound);
  }
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++buckets[rng.UniformU64(10)];
  for (const int b : buckets) {
    EXPECT_NEAR(b, trials / 10, trials / 100);  // within 10% of expectation
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(13);
  double sum = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(rng.Exponential(0.0), CheckError);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GeometricMean) {
  Rng rng(23);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.Geometric(0.25));
  }
  // Failures before first success: mean (1-p)/p = 3.
  EXPECT_NEAR(sum / trials, 3.0, 0.1);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, SampleWithoutReplacementIsDistinctSortedSubset) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = rng.SampleWithoutReplacement(100, 10);
    ASSERT_EQ(s.size(), 10u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<std::uint64_t>(s.begin(), s.end()).size(), 10u);
    for (const auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(37);
  const auto s = rng.SampleWithoutReplacement(5, 5);
  ASSERT_EQ(s.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, LowSerialCorrelation) {
  // Lag-1 autocorrelation of uniform doubles should be ~0.
  Rng rng(41);
  const int n = 100000;
  double prev = rng.UniformDouble();
  double sum_xy = 0.0;
  double sum_x = 0.0;
  double sum_x2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble();
    sum_xy += prev * x;
    sum_x += x;
    sum_x2 += x * x;
    prev = x;
  }
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_LT(std::fabs(cov / var), 0.02);
}

TEST(Rng, BitBalance) {
  // Each of the 64 output bits should be ~50% ones.
  Rng rng(43);
  const int n = 20000;
  int counts[64] = {};
  for (int i = 0; i < n; ++i) {
    const std::uint64_t x = rng();
    for (int b = 0; b < 64; ++b) {
      counts[b] += static_cast<int>((x >> b) & 1);
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(counts[b], n / 2, n / 25) << "bit " << b;
  }
}

TEST(MixSeed, TagSensitivity) {
  EXPECT_NE(MixSeed(1, 0), MixSeed(1, 1));
  EXPECT_NE(MixSeed(0, 5), MixSeed(1, 5));
  EXPECT_EQ(MixSeed(99, 3), MixSeed(99, 3));
}

}  // namespace
}  // namespace sdn::util
