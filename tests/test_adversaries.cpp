#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "adversary/adaptive.hpp"
#include "adversary/factory.hpp"
#include "adversary/mobile.hpp"
#include "adversary/stable_spine.hpp"
#include "graph/algorithms.hpp"
#include "graph/delta.hpp"
#include "graph/tinterval.hpp"
#include "util/check.hpp"

namespace sdn::adversary {
namespace {

/// View stub for exercising adversaries without an engine. PublicState is a
/// fixed per-node vector so adaptive adversaries see deterministic input.
class FakeView final : public net::AdversaryView {
 public:
  explicit FakeView(std::vector<double> state) : state_(std::move(state)) {}
  [[nodiscard]] std::int64_t round() const override { return round_; }
  [[nodiscard]] double PublicState(graph::NodeId u) const override {
    return state_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] graph::NodeId num_nodes() const override {
    return static_cast<graph::NodeId>(state_.size());
  }
  void set_round(std::int64_t r) { round_ = r; }

 private:
  std::vector<double> state_;
  std::int64_t round_ = 1;
};

std::vector<graph::Graph> Roll(net::Adversary& adv, std::int64_t rounds,
                               net::AdversaryView& view) {
  std::vector<graph::Graph> seq;
  for (std::int64_t r = 1; r <= rounds; ++r) {
    seq.push_back(adv.TopologyFor(r, view));
  }
  return seq;
}

// ---- Property sweep: every kind × T × seed keeps the T-interval promise ----

using PromiseParam = std::tuple<std::string, int, std::uint64_t>;

class AdversaryPromiseTest : public ::testing::TestWithParam<PromiseParam> {};

TEST_P(AdversaryPromiseTest, KeepsTIntervalPromise) {
  const auto& [kind, T, seed] = GetParam();
  AdversaryConfig config;
  config.kind = kind;
  config.n = 33;
  config.T = T;
  config.seed = seed;
  const auto adv = MakeAdversary(config);
  ASSERT_EQ(adv->interval(), T);
  ASSERT_EQ(adv->num_nodes(), 33);

  FakeView view(std::vector<double>(33, 0.0));
  const auto seq = Roll(*adv, 6 * T + 7, view);
  const auto report =
      graph::ValidateTInterval(seq, T, graph::ValidateMode::kEarlyExit);
  EXPECT_TRUE(report.ok) << kind << " T=" << T << " seed=" << seed
                         << " bad window " << report.first_bad_window;
}

std::vector<PromiseParam> PromiseGrid() {
  std::vector<PromiseParam> grid;
  for (const std::string& kind : KnownAdversaryKinds()) {
    for (const int T : {1, 2, 3, 5, 8}) {
      for (const std::uint64_t seed : {1ULL, 7ULL, 1234ULL}) {
        grid.emplace_back(kind, T, seed);
      }
    }
  }
  return grid;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdversaryPromiseTest, ::testing::ValuesIn(PromiseGrid()),
    [](const ::testing::TestParamInfo<PromiseParam>& param_info) {
      auto name = std::get<0>(param_info.param) + "_T" +
                  std::to_string(std::get<1>(param_info.param)) + "_s" +
                  std::to_string(std::get<2>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Targeted behaviour tests ----

TEST(StableSpine, TopologyChangesEveryRoundWithVolatileEdges) {
  StableSpineOptions opts;
  opts.spine.kind = SpineKind::kRandomTree;
  opts.volatile_edges = 10;
  StableSpineAdversary adv(20, 2, opts, 5);
  FakeView view(std::vector<double>(20, 0.0));
  const auto seq = Roll(adv, 10, view);
  int distinct_pairs = 0;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    distinct_pairs += (seq[i] == seq[i + 1]) ? 0 : 1;
  }
  EXPECT_GE(distinct_pairs, 8);  // near-every round differs
}

TEST(StableSpine, SpineIsStableWithinEra) {
  StableSpineOptions opts;
  opts.spine.kind = SpineKind::kRandomTree;
  opts.volatile_edges = 5;
  StableSpineAdversary adv(16, 4, opts, 9);
  FakeView view(std::vector<double>(16, 0.0));
  // Rounds 1..4 are era 0: every topology must contain era 0's spine.
  const graph::Graph spine = adv.SpineForRound(1);
  for (std::int64_t r = 1; r <= 4; ++r) {
    const graph::Graph g = adv.TopologyFor(r, view);
    for (const graph::Edge& e : spine.Edges()) {
      EXPECT_TRUE(g.HasEdge(e.u, e.v)) << "round " << r;
    }
  }
}

TEST(StableSpine, SpinesDifferAcrossEras) {
  StableSpineOptions opts;
  opts.spine.kind = SpineKind::kRandomTree;
  StableSpineAdversary adv(32, 3, opts, 11);
  const graph::Graph s0 = adv.SpineForRound(1);
  const graph::Graph s1 = adv.SpineForRound(4);
  EXPECT_NE(s0, s1);
}

TEST(StableSpine, CompositionClaimIsExactlyTheRound) {
  // The published RoundComposition must be the literal structural truth:
  // core ∪ support ∪ fresh == the round's edge set, with stable ids (same
  // id -> same span) — the certification fast path's entire trust basis.
  StableSpineOptions opts;
  opts.spine.kind = SpineKind::kRandomTree;
  opts.volatile_edges = 8;
  StableSpineAdversary adv(24, 3, opts, 13);
  FakeView view(std::vector<double>(24, 0.0));
  ASSERT_TRUE(adv.has_composition());
  std::map<std::uint64_t, const graph::Edge*> id_to_ptr;
  for (std::int64_t r = 1; r <= 12; ++r) {
    const graph::Graph g = adv.TopologyFor(r, view);
    const graph::RoundComposition* comp = adv.Composition(r);
    ASSERT_NE(comp, nullptr) << "round " << r;
    ASSERT_NE(comp->core_id, graph::RoundComposition::kNoId);
    std::vector<graph::Edge> all;
    graph::UnionSorted(comp->core, comp->support, all);
    std::vector<graph::Edge> with_fresh;
    graph::UnionSorted(all, comp->fresh, with_fresh);
    const auto edges = g.Edges();
    ASSERT_EQ(with_fresh.size(), edges.size()) << "round " << r;
    EXPECT_TRUE(std::equal(with_fresh.begin(), with_fresh.end(),
                           edges.begin()))
        << "round " << r;
    // Id stability: a repeated id must present the identical span.
    for (const auto& [id, span, ptr] :
         {std::tuple{comp->core_id, comp->core, comp->core.data()},
          std::tuple{comp->support_id, comp->support,
                     comp->support.data()}}) {
      if (span.empty()) continue;
      const auto [it, inserted] = id_to_ptr.emplace(id, ptr);
      EXPECT_EQ(it->second, ptr) << "id " << id << " round " << r;
    }
  }
}

TEST(StableSpine, RejectsEraShorterThanTMinus1) {
  StableSpineOptions opts;
  opts.era_length = 1;
  EXPECT_THROW(StableSpineAdversary(8, 5, opts, 1), util::CheckError);
}

TEST(StableSpine, RoundsMustBeMonotone) {
  StableSpineOptions opts;
  StableSpineAdversary adv(8, 2, opts, 1);
  FakeView view(std::vector<double>(8, 0.0));
  (void)adv.TopologyFor(10, view);
  EXPECT_THROW(adv.TopologyFor(1, view), util::CheckError);
}

TEST(Adaptive, SortsMostInformedTogether) {
  std::vector<double> state(10, 0.0);
  state[3] = 100.0;
  state[7] = 90.0;
  FakeView view(state);
  AdaptiveSortPathAdversary adv(10, 1, 42, /*descending=*/true);
  const graph::Graph g = adv.TopologyFor(1, view);
  // Path with the two most-informed nodes adjacent at one end.
  EXPECT_TRUE(g.HasEdge(3, 7));
  EXPECT_EQ(g.Degree(3), 1);  // end of the path
}

TEST(Adaptive, PathIsConnectedEachRound) {
  FakeView view(std::vector<double>(12, 1.0));
  AdaptiveSortPathAdversary adv(12, 3, 1);
  for (std::int64_t r = 1; r <= 20; ++r) {
    EXPECT_TRUE(graph::IsConnected(adv.TopologyFor(r, view)));
  }
}

TEST(Mobile, PositionsStayInUnitSquareAndGraphConnected) {
  MobileOptions opts;
  opts.radius = 0.15;
  opts.step = 0.2;
  MobileGeometricAdversary adv(25, 2, opts, 3);
  FakeView view(std::vector<double>(25, 0.0));
  for (std::int64_t r = 1; r <= 30; ++r) {
    EXPECT_TRUE(graph::IsConnected(adv.TopologyFor(r, view)));
    for (const auto& p : adv.positions()) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
    }
  }
}

TEST(Factory, EraLengthOverrideStretchesSpines) {
  AdversaryConfig config;
  config.kind = "spine-rtree";
  config.n = 20;
  config.T = 2;
  config.era_length = 50;
  config.volatile_edges = 0;
  const auto adv = MakeAdversary(config);
  FakeView view(std::vector<double>(20, 0.0));
  const auto seq = Roll(*adv, 50, view);
  // One spine for 50 rounds: all topologies identical.
  for (const auto& g : seq) EXPECT_EQ(g, seq.front());
}

TEST(Factory, VolatileEdgeOverrideRespected) {
  AdversaryConfig config;
  config.kind = "spine-path";
  config.n = 30;
  config.T = 1;
  config.volatile_edges = 0;
  const auto adv = MakeAdversary(config);
  FakeView view(std::vector<double>(30, 0.0));
  const auto g = adv->TopologyFor(1, view);
  EXPECT_EQ(g.num_edges(), 29);  // bare path, nothing extra
}

TEST(Factory, CliqueSizeControlsDiameter) {
  AdversaryConfig small_cliques;
  small_cliques.kind = "spine-cliques";
  small_cliques.n = 64;
  small_cliques.T = 1;
  small_cliques.clique_size = 4;
  small_cliques.volatile_edges = 0;
  AdversaryConfig big_cliques = small_cliques;
  big_cliques.clique_size = 32;
  FakeView view(std::vector<double>(64, 0.0));
  const auto chain = MakeAdversary(small_cliques)->TopologyFor(1, view);
  const auto blob = MakeAdversary(big_cliques)->TopologyFor(1, view);
  EXPECT_GT(graph::Diameter(chain), graph::Diameter(blob));
}

TEST(Factory, UnknownKindRejected) {
  AdversaryConfig config;
  config.kind = "nope";
  config.n = 4;
  EXPECT_THROW(MakeAdversary(config), util::CheckError);
}

TEST(Factory, NamesAreStable) {
  for (const std::string& kind : KnownAdversaryKinds()) {
    AdversaryConfig config;
    config.kind = kind;
    config.n = 9;
    config.T = 2;
    const auto adv = MakeAdversary(config);
    EXPECT_FALSE(adv->name().empty());
  }
}

}  // namespace
}  // namespace sdn::adversary
