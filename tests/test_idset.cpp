#include "algo/idset.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace sdn::algo {
namespace {

TEST(IdSet, InsertAndContains) {
  IdSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(5);
  s.Insert(64);
  s.Insert(5);  // duplicate
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_FALSE(s.Contains(6));
  EXPECT_FALSE(s.Contains(1000));
  EXPECT_EQ(s.max_id(), 64);
}

TEST(IdSet, UnionWithReportsGrowth) {
  IdSet a;
  a.Insert(1);
  a.Insert(2);
  IdSet b;
  b.Insert(2);
  b.Insert(130);
  EXPECT_TRUE(a.UnionWith(b));
  EXPECT_EQ(a.size(), 3);
  EXPECT_FALSE(a.UnionWith(b));  // already a superset
}

TEST(IdSet, UnionWithMinNewReturnsSmallestGain) {
  IdSet a;
  a.Insert(10);
  IdSet b;
  b.Insert(3);
  b.Insert(10);
  b.Insert(700);
  EXPECT_EQ(a.UnionWithMinNew(b), 3);
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(a.UnionWithMinNew(b), -1);
}

TEST(IdSet, MinAndSelect) {
  IdSet s;
  for (const graph::NodeId id : {200, 3, 67, 64, 65}) s.Insert(id);
  EXPECT_EQ(s.Min(), 3);
  EXPECT_EQ(s.SelectKth(0), 3);
  EXPECT_EQ(s.SelectKth(1), 64);
  EXPECT_EQ(s.SelectKth(2), 65);
  EXPECT_EQ(s.SelectKth(3), 67);
  EXPECT_EQ(s.SelectKth(4), 200);
  EXPECT_EQ(s.SelectKth(5), -1);
  EXPECT_EQ(s.SelectKth(-1), -1);
}

TEST(IdSet, NextAtLeast) {
  IdSet s;
  for (const graph::NodeId id : {5, 63, 64, 200}) s.Insert(id);
  EXPECT_EQ(s.NextAtLeast(0), 5);
  EXPECT_EQ(s.NextAtLeast(5), 5);
  EXPECT_EQ(s.NextAtLeast(6), 63);
  EXPECT_EQ(s.NextAtLeast(64), 64);
  EXPECT_EQ(s.NextAtLeast(65), 200);
  EXPECT_EQ(s.NextAtLeast(201), -1);
}

TEST(IdSet, EmptySetBehaviour) {
  const IdSet s;
  EXPECT_EQ(s.Min(), -1);
  EXPECT_EQ(s.SelectKth(0), -1);
  EXPECT_EQ(s.NextAtLeast(0), -1);
  EXPECT_EQ(s.max_id(), -1);
  EXPECT_EQ(s.EncodedBits(), 14u);  // varint(0) + 6-bit width header
}

TEST(IdSet, HashEqualityMatchesSetEquality) {
  IdSet a;
  IdSet b;
  for (const graph::NodeId id : {1, 99, 500}) a.Insert(id);
  for (const graph::NodeId id : {500, 1, 99}) b.Insert(id);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_TRUE(a == b);
  b.Insert(2);
  EXPECT_NE(a.Hash(), b.Hash());
  EXPECT_FALSE(a == b);
}

TEST(IdSet, EqualityIgnoresTrailingZeroWords) {
  IdSet a;
  a.Insert(1);
  IdSet b;
  b.Insert(1);
  b.Insert(1000);
  // Force b to allocate far words, then compare against a set that never did.
  IdSet only_one;
  only_one.Insert(1);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == only_one);
}

TEST(IdSet, ToVectorSorted) {
  IdSet s;
  for (const graph::NodeId id : {77, 3, 128, 127}) s.Insert(id);
  const auto v = s.ToVector();
  const std::vector<graph::NodeId> expected = {3, 77, 127, 128};
  EXPECT_EQ(v, expected);
}

TEST(IdSet, EncodedBitsUsesMaxIdWidth) {
  IdSet s;
  s.Insert(0);
  s.Insert(255);  // width 8
  const std::size_t header = 8u + 6u;  // varint(count<128) + width field
  EXPECT_EQ(s.EncodedBits(), header + 2u * 8u);
  s.Insert(256);  // width 9
  EXPECT_EQ(s.EncodedBits(), header + 3u * 9u);
}

TEST(IdSet, RandomizedAgainstStdSet) {
  util::Rng rng(321);
  IdSet s;
  std::set<graph::NodeId> ref;
  for (int i = 0; i < 2000; ++i) {
    const auto id = static_cast<graph::NodeId>(rng.UniformU64(3000));
    s.Insert(id);
    ref.insert(id);
  }
  EXPECT_EQ(s.size(), static_cast<std::int64_t>(ref.size()));
  const auto v = s.ToVector();
  EXPECT_TRUE(std::equal(v.begin(), v.end(), ref.begin(), ref.end()));
  // Select agrees with sorted order.
  std::int64_t k = 0;
  for (const graph::NodeId id : ref) {
    EXPECT_EQ(s.SelectKth(k), id);
    ++k;
  }
}

}  // namespace
}  // namespace sdn::algo
