// Delivery-backing equivalence of the message path (docs/PERF.md).
//
// RunConfig::delivery is documented as a pure throughput knob: on
// all-sender rounds the engine may deliver straight out of the outbox via
// the topology's CSR neighbor spans instead of gathering per-node pointer
// lists, and kAdaptive picks between the two per round from measured cost —
// but every statistic except the wall-clock timings must be bit-identical
// in all three modes (the adaptive chooser reads only the clock, never the
// payload). These property tests pin that contract across the algorithm
// zoo (flood baseline, committee, census, hjswy), an oblivious and an
// adaptive adversary, and the serial/parallel engine — the full matrix the
// bench's A/B comparison relies on.
#include <gtest/gtest.h>

#include <string>

#include "core/api.hpp"

namespace sdn {
namespace {

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.all_decided, b.stats.all_decided);
  EXPECT_EQ(a.stats.hit_max_rounds, b.stats.hit_max_rounds);
  EXPECT_EQ(a.stats.first_decide_round, b.stats.first_decide_round);
  EXPECT_EQ(a.stats.last_decide_round, b.stats.last_decide_round);
  EXPECT_EQ(a.stats.decide_round, b.stats.decide_round);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.sends_per_node, b.stats.sends_per_node);
  EXPECT_EQ(a.stats.total_message_bits, b.stats.total_message_bits);
  EXPECT_EQ(a.stats.max_message_bits, b.stats.max_message_bits);
  EXPECT_EQ(a.stats.edges_processed, b.stats.edges_processed);
  EXPECT_EQ(a.stats.messages_delivered, b.stats.messages_delivered);
  EXPECT_EQ(a.stats.flooding.probes, b.stats.flooding.probes);
  EXPECT_EQ(a.stats.flooding.completed, b.stats.flooding.completed);
  EXPECT_EQ(a.stats.flooding.max_rounds, b.stats.flooding.max_rounds);
  EXPECT_EQ(a.count_exact, b.count_exact);
  EXPECT_EQ(a.count_max_rel_error, b.count_max_rel_error);
  EXPECT_EQ(a.max_correct, b.max_correct);
  EXPECT_EQ(a.consensus_agreement, b.consensus_agreement);
  EXPECT_EQ(a.consensus_valid, b.consensus_valid);
}

void CheckDensePathInvariance(Algorithm algorithm,
                              const std::string& adversary,
                              std::int64_t max_rounds) {
  RunConfig config;
  config.n = 192;
  config.T = 2;
  config.seed = 977;
  config.adversary.kind = adversary;
  config.max_rounds = max_rounds;
  config.validate_tinterval = false;

  for (const int threads : {1, 2, 0}) {
    config.threads = threads;
    config.delivery = net::DeliveryMode::kGather;
    const RunResult gather = RunAlgorithm(algorithm, config);
    SCOPED_TRACE(std::string(ToString(algorithm)) + " on " + adversary +
                 " threads=" + std::to_string(threads));
    for (const net::DeliveryMode mode :
         {net::DeliveryMode::kDense, net::DeliveryMode::kAdaptive}) {
      config.delivery = mode;
      const RunResult other = RunAlgorithm(algorithm, config);
      SCOPED_TRACE(mode == net::DeliveryMode::kDense ? "dense" : "adaptive");
      ExpectIdenticalRuns(gather, other);
    }
  }
}

// FloodMax sends from every undecided node each round, then everyone stops
// at once: exercises both the pure dense regime and the nobody-sends tail.
TEST(MessagePath, FloodMaxOnObliviousSpine) {
  CheckDensePathInvariance(Algorithm::kFloodMaxKnownN, "spine-gnp", 10'000);
}

TEST(MessagePath, FloodMaxOnAdaptiveAdversary) {
  CheckDensePathInvariance(Algorithm::kFloodMaxKnownN, "adaptive-desc",
                           10'000);
}

// hjswy nodes keep sending after deciding only until the phase ends, so
// runs mix all-sender rounds with partially-silent ones.
TEST(MessagePath, HjswyCensusOnObliviousSpine) {
  CheckDensePathInvariance(Algorithm::kHjswyCensus, "spine-gnp", 100'000);
}

TEST(MessagePath, HjswyCensusOnAdaptiveAdversary) {
  CheckDensePathInvariance(Algorithm::kHjswyCensus, "adaptive-desc", 100'000);
}

TEST(MessagePath, HjswyEstimateOnObliviousSpine) {
  CheckDensePathInvariance(Algorithm::kHjswyEstimate, "spine-gnp", 100'000);
}

// Baselines (truncated like in test_determinism.cpp to stay fast under
// sanitizers; truncated runs must be invariant too).
TEST(MessagePath, KloCensusOnObliviousSpine) {
  CheckDensePathInvariance(Algorithm::kKloCensusT, "spine-gnp", 3'000);
}

TEST(MessagePath, KloCommitteeOnAdaptiveAdversary) {
  CheckDensePathInvariance(Algorithm::kKloCommittee, "adaptive-desc", 2'000);
}

}  // namespace
}  // namespace sdn
