#include "algo/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::algo {
namespace {

/// Simulates full convergence: merge all nodes' sketches into one.
CardinalityEstimator ConvergedSketch(int n, int L, util::Rng& rng,
                                     bool quantize = false) {
  CardinalityEstimator merged(L, rng, quantize);
  for (int i = 1; i < n; ++i) {
    const CardinalityEstimator other(L, rng, quantize);
    merged.Merge(other.mins());
  }
  return merged;
}

TEST(Estimator, RejectsTooFewCoordinates) {
  util::Rng rng(1);
  EXPECT_THROW(CardinalityEstimator(2, rng), util::CheckError);
}

TEST(Estimator, SingleNodeEstimatesNearOne) {
  util::Rng rng(2);
  double total = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    total += CardinalityEstimator(64, rng).Estimate();
  }
  EXPECT_NEAR(total / trials, 1.0, 0.08);
}

TEST(Estimator, ConvergedEstimateTracksN) {
  util::Rng rng(3);
  for (const int n : {10, 100, 1000}) {
    double total = 0.0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      total += ConvergedSketch(n, 128, rng).Estimate();
    }
    const double mean = total / trials;
    // Relative stddev ~ 1/sqrt(126) ≈ 0.09; 30 trials → sem ≈ 1.6%.
    EXPECT_NEAR(mean, n, 0.08 * n) << "n=" << n;
  }
}

TEST(Estimator, ErrorShrinksWithL) {
  util::Rng rng(4);
  const int n = 500;
  const auto spread = [&](int L) {
    double sum_sq = 0.0;
    const int trials = 60;
    for (int t = 0; t < trials; ++t) {
      const double rel = ConvergedSketch(n, L, rng).Estimate() / n - 1.0;
      sum_sq += rel * rel;
    }
    return std::sqrt(sum_sq / trials);
  };
  const double rough = spread(8);
  const double fine = spread(128);
  EXPECT_LT(fine, rough * 0.6);
  EXPECT_NEAR(fine, CardinalityEstimator::RelativeStddev(128), 0.06);
}

TEST(Estimator, MergeIsIdempotentAndCommutative) {
  util::Rng rng(5);
  CardinalityEstimator a(16, rng);
  CardinalityEstimator b(16, rng);
  CardinalityEstimator a2 = a;
  EXPECT_TRUE(a.Merge(b.mins()) || true);  // merge once
  const auto snapshot = std::vector<double>(a.mins().begin(), a.mins().end());
  EXPECT_FALSE(a.Merge(b.mins()));  // idempotent
  // Commutativity: b ∪ a == a ∪ b.
  b.Merge(a2.mins());
  EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), b.mins().begin()));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(Estimator, MergeCoordOnlyTouchesOneCoordinate) {
  util::Rng rng(6);
  CardinalityEstimator a(8, rng);
  const double tiny = 1e-9;
  EXPECT_TRUE(a.MergeCoord(3, tiny));
  EXPECT_DOUBLE_EQ(a.mins()[3], tiny);
  EXPECT_FALSE(a.MergeCoord(3, 1.0));  // not smaller
  // The per-call bounds check is gated (release hot loops run check-free);
  // with the guard on, an out-of-range coordinate must throw.
  const bool old = VerifyEstimatorChecks();
  SetVerifyEstimatorChecks(true);
  EXPECT_THROW(a.MergeCoord(8, 0.5), util::CheckError);
  SetVerifyEstimatorChecks(old);
}

TEST(Estimator, MergeBlockMatchesMergeCoordLoop) {
  util::Rng rng(12);
  CardinalityEstimator block_merged(32, rng);
  util::Rng rng_copy(12);
  CardinalityEstimator coord_merged(32, rng_copy);
  ASSERT_EQ(block_merged.mins()[0], coord_merged.mins()[0]);

  util::Rng vals_rng(13);
  for (int round = 0; round < 50; ++round) {
    const std::size_t base = static_cast<std::size_t>(round) % 28;
    std::vector<double> vals;
    for (int i = 0; i < 4; ++i) vals.push_back(vals_rng.Exponential(1.0));
    bool coord_changed = false;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      coord_changed |= coord_merged.MergeCoord(base + i, vals[i]);
    }
    const bool block_changed = block_merged.MergeBlock(base, vals);
    EXPECT_EQ(block_changed, coord_changed);
  }
  // Bit-identical merged state (same float-compare semantics).
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(block_merged.mins()[static_cast<std::size_t>(i)],
              coord_merged.mins()[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(block_merged.Fingerprint(), coord_merged.Fingerprint());
}

TEST(Estimator, MergeBlockBoundsCheckedAndIdempotent) {
  util::Rng rng(14);
  CardinalityEstimator a(8, rng);
  const std::vector<double> tiny(4, 1e-12);
  EXPECT_TRUE(a.MergeBlock(4, tiny));
  EXPECT_FALSE(a.MergeBlock(4, tiny));  // idempotent: nothing decreases twice
  // The hoisted bounds check is always on: one check per block, not per
  // coordinate, so even release builds reject an overflowing block.
  EXPECT_THROW(a.MergeBlock(5, tiny), util::CheckError);
  EXPECT_THROW(a.MergeBlock(9, {}), util::CheckError);
}

TEST(Estimator, FingerprintDetectsAnyChange) {
  util::Rng rng(7);
  CardinalityEstimator a(32, rng);
  const std::uint64_t before = a.Fingerprint();
  a.MergeCoord(31, a.mins()[31] / 2);
  EXPECT_NE(a.Fingerprint(), before);
}

TEST(Estimator, QuantizedSurvivesFloatRoundTrip) {
  util::Rng rng(8);
  CardinalityEstimator a(64, rng, /*quantize_float32=*/true);
  for (const double m : a.mins()) {
    EXPECT_EQ(m, static_cast<double>(static_cast<float>(m)));
  }
}

TEST(Estimator, WeightedSketchEstimatesSum) {
  util::Rng rng(10);
  const std::vector<std::uint64_t> weights = {5, 0, 120, 7, 0, 368, 1};
  std::uint64_t total = 0;
  for (const auto w : weights) total += w;
  double sum = 0.0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    CardinalityEstimator merged =
        CardinalityEstimator::ForWeight(weights[0], 128, rng);
    for (std::size_t i = 1; i < weights.size(); ++i) {
      merged.Merge(CardinalityEstimator::ForWeight(weights[i], 128, rng).mins());
    }
    sum += merged.Estimate();
  }
  EXPECT_NEAR(sum / trials, static_cast<double>(total),
              0.08 * static_cast<double>(total));
}

TEST(Estimator, AllZeroWeightsEstimateZero) {
  util::Rng rng(11);
  CardinalityEstimator a = CardinalityEstimator::ForWeight(0, 8, rng);
  const CardinalityEstimator b = CardinalityEstimator::ForWeight(0, 8, rng);
  a.Merge(b.mins());
  EXPECT_EQ(a.Estimate(), 0.0);
}

TEST(Estimator, ZeroWeightNeverLowersMinima) {
  util::Rng rng(12);
  CardinalityEstimator weighted = CardinalityEstimator::ForWeight(9, 16, rng);
  const auto before =
      std::vector<double>(weighted.mins().begin(), weighted.mins().end());
  const CardinalityEstimator zero = CardinalityEstimator::ForWeight(0, 16, rng);
  EXPECT_FALSE(weighted.Merge(zero.mins()));
  EXPECT_TRUE(std::equal(before.begin(), before.end(),
                         weighted.mins().begin()));
}

TEST(Estimator, RepetitionsForMatchesStddevTarget) {
  EXPECT_EQ(CardinalityEstimator::RepetitionsFor(1.0), 3);
  const int L = CardinalityEstimator::RepetitionsFor(0.1);
  EXPECT_LE(CardinalityEstimator::RelativeStddev(L), 0.1);
  EXPECT_GT(CardinalityEstimator::RelativeStddev(L - 1), 0.1);
}

}  // namespace
}  // namespace sdn::algo
