// Failure injection: what happens when the adversary breaks its promise or
// the algorithm's safety knobs are dialed to zero. The engine must *detect*
// promise violations (so no experiment silently reports results from an
// invalid adversary), and the hjswy phase machinery must rely on the alarm
// suffix (removing it must make premature decisions observable).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/static_adversary.hpp"
#include "algo/census.hpp"
#include "algo/flood_max.hpp"
#include "algo/hjswy.hpp"
#include "graph/generators.hpp"
#include "net/engine.hpp"
#include "util/rng.hpp"

namespace sdn::net {
namespace {

/// Claims 2-interval connectivity but delivers alternating spanning trees
/// that share only the single edge (0,1) — every round is connected (T=1
/// would be honest) yet no 2-round window has a *spanning* stable subgraph.
class LyingAdversary final : public Adversary {
 public:
  explicit LyingAdversary(graph::NodeId n) : n_(n) {
    a_ = graph::Path(n);
    std::vector<graph::Edge> edges;
    // Even chain 0-2-4-..., odd chain 1-3-5-..., bridged by (0,1).
    for (graph::NodeId u = 2; u < n; ++u) edges.emplace_back(u - 2, u);
    edges.emplace_back(graph::NodeId{0}, graph::NodeId{1});
    b_ = graph::Graph(n, edges);
  }
  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return 2; }  // a lie
  graph::Graph TopologyFor(std::int64_t round, const AdversaryView&) override {
    return (round % 2 == 0) ? a_ : b_;
  }
  [[nodiscard]] std::string name() const override { return "liar"; }

 private:
  graph::NodeId n_;
  graph::Graph a_{0};
  graph::Graph b_{0};
};

/// Splits the network into two halves that never hear each other — violates
/// even 1-interval connectivity.
class PartitionAdversary final : public Adversary {
 public:
  explicit PartitionAdversary(graph::NodeId n) : n_(n) {}
  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return 1; }  // a lie
  graph::Graph TopologyFor(std::int64_t, const AdversaryView&) override {
    std::vector<graph::Edge> edges;
    const graph::NodeId half = n_ / 2;
    for (graph::NodeId u = 0; u + 1 < half; ++u) edges.emplace_back(u, u + 1);
    for (graph::NodeId u = half; u + 1 < n_; ++u) edges.emplace_back(u, u + 1);
    return graph::Graph(n_, edges);
  }
  [[nodiscard]] std::string name() const override { return "partition"; }

 private:
  graph::NodeId n_;
};

TEST(FailureInjection, EngineFlagsSlidingWindowViolation) {
  LyingAdversary adv(8);
  std::vector<algo::FloodMaxKnownN> nodes;
  for (graph::NodeId u = 0; u < 8; ++u) nodes.emplace_back(u, 8, u);
  Engine<algo::FloodMaxKnownN> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_FALSE(stats.tinterval_ok);
}

TEST(FailureInjection, PartitionBreaksFloodMaxAndIsDetected) {
  PartitionAdversary adv(10);
  std::vector<algo::FloodMaxKnownN> nodes;
  for (graph::NodeId u = 0; u < 10; ++u) {
    nodes.emplace_back(u, 10, static_cast<algo::Value>(u));
  }
  Engine<algo::FloodMaxKnownN> engine(std::move(nodes), adv, {});
  const RunStats stats = engine.Run();
  EXPECT_FALSE(stats.tinterval_ok);  // experiment knows the run is invalid
  ASSERT_TRUE(stats.all_decided);
  // The left half never hears the global max 9 — the promise was load-bearing.
  EXPECT_NE(engine.node(0).output(), 9);
  EXPECT_EQ(engine.node(9).output(), 9);
}

TEST(FailureInjection, PartitionMakesHjswyHalvesDisagreeOnCount) {
  PartitionAdversary adv(32);
  algo::HjswyOptions options;
  options.T = 1;
  options.exact_census = true;
  util::Rng base(3);
  std::vector<algo::HjswyProgram> nodes;
  for (graph::NodeId u = 0; u < 32; ++u) {
    nodes.emplace_back(u, u, options, base.Fork(static_cast<std::uint64_t>(u)));
  }
  EngineOptions opts;
  opts.max_rounds = 100000;
  Engine<algo::HjswyProgram> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_FALSE(stats.tinterval_ok);
  ASSERT_TRUE(stats.all_decided);
  // Each half sees a quiet, internally consistent world of 16 nodes: the
  // alarm machinery cannot (and should not) conjure the missing half.
  EXPECT_EQ(engine.node(0).output()->count, 16);
  EXPECT_EQ(engine.node(31).output()->count, 16);
}

TEST(FailureInjection, PartitionMakesCensusCountHalves) {
  // The census verification's soundness theorem (docs/MODEL.md §3) assumes
  // per-round connectivity: under a hard partition each half is a perfectly
  // consistent 16-node world and (correctly, per its assumptions) decides
  // count 16. The run is flagged invalid by the engine's validator.
  PartitionAdversary adv(32);
  algo::CensusOptions options;
  options.pipeline_T = 1;
  std::vector<algo::CensusProgram> nodes;
  for (graph::NodeId u = 0; u < 32; ++u) {
    nodes.emplace_back(u, u, options);
  }
  EngineOptions opts;
  opts.max_rounds = 1000000;
  Engine<algo::CensusProgram> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  EXPECT_FALSE(stats.tinterval_ok);
  ASSERT_TRUE(stats.all_decided);
  EXPECT_EQ(engine.node(0).output()->count, 16);
  EXPECT_EQ(engine.node(31).output()->count, 16);
}

TEST(FailureInjection, AlarmRaisedOnDivergentSuffixNeighbor) {
  // Drive one node by hand to a suffix round and feed it a message whose
  // fingerprint cannot match: the alarm must latch.
  algo::HjswyOptions options;
  options.T = 1;
  util::Rng base(5);
  algo::HjswyProgram node(0, 7, options, base.Fork(0));
  algo::HjswyProgram stranger(1, 12345, options, base.Fork(1));

  // Find the first suffix round of phase 0.
  Round suffix_round = 1;
  while (!node.Locate(suffix_round).in_suffix) ++suffix_round;

  // Quiet pre-suffix rounds: nothing received, no alarm possible.
  for (Round r = 1; r < suffix_round; ++r) {
    (void)node.OnSend(r);
    node.OnReceive(r, {});
    (void)stranger.OnSend(r);
    stranger.OnReceive(r, {});
  }
  EXPECT_FALSE(node.alarm_raised());

  const auto msg = stranger.OnSend(suffix_round);
  ASSERT_TRUE(msg.has_value());
  (void)node.OnSend(suffix_round);
  const algo::HjswyProgram::Message* slots[] = {&*msg};
  node.OnReceive(suffix_round, Inbox<algo::HjswyProgram::Message>(slots));
  EXPECT_TRUE(node.alarm_raised());
}

TEST(FailureInjection, QuietIdenticalSuffixRaisesNoAlarm) {
  algo::HjswyOptions options;
  options.T = 1;
  util::Rng base(5);
  // Two replicas of the same node state (same seed): identical sketches.
  algo::HjswyProgram node(0, 7, options, base.Fork(0));
  algo::HjswyProgram twin(0, 7, options, base.Fork(0));
  Round suffix_round = 1;
  while (!node.Locate(suffix_round).in_suffix) ++suffix_round;
  for (Round r = 1; r <= suffix_round; ++r) {
    const auto msg = twin.OnSend(r);
    ASSERT_TRUE(msg.has_value());
    (void)node.OnSend(r);
    const algo::HjswyProgram::Message* slots[] = {&*msg};
    node.OnReceive(r, Inbox<algo::HjswyProgram::Message>(slots));
  }
  EXPECT_FALSE(node.alarm_raised());
}

TEST(FailureInjection, EarlyPhasesRejectedWhenHorizonBelowFloodingTime) {
  // On a static path (d = N-1) the accepted horizon must have grown to the
  // same order as d; tiny early phases are rejected by the alarm machinery.
  adversary::StaticAdversary adv(graph::Path(64), 1);
  algo::HjswyOptions options;
  options.T = 1;
  options.exact_census = true;
  options.initial_horizon = 1;
  util::Rng base(9);
  std::vector<algo::HjswyProgram> nodes;
  for (graph::NodeId u = 0; u < 64; ++u) {
    nodes.emplace_back(u, u, options, base.Fork(static_cast<std::uint64_t>(u)));
  }
  EngineOptions opts;
  opts.max_rounds = 100000;
  Engine<algo::HjswyProgram> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  ASSERT_TRUE(stats.all_decided);
  for (graph::NodeId u = 0; u < 64; ++u) {
    EXPECT_EQ(engine.node(u).output()->count, 64);
    EXPECT_GE(engine.node(u).output()->accepted_horizon, 16);
  }
}

TEST(FailureInjection, DefaultSuffixSurvivesTheSameScenario) {
  adversary::StaticAdversary adv(graph::Path(64), 1);
  algo::HjswyOptions options;
  options.T = 1;
  options.exact_census = true;
  util::Rng base(9);
  std::vector<algo::HjswyProgram> nodes;
  for (graph::NodeId u = 0; u < 64; ++u) {
    nodes.emplace_back(u, u, options, base.Fork(static_cast<std::uint64_t>(u)));
  }
  EngineOptions opts;
  opts.max_rounds = 100000;
  Engine<algo::HjswyProgram> engine(std::move(nodes), adv, opts);
  const RunStats stats = engine.Run();
  ASSERT_TRUE(stats.all_decided);
  for (graph::NodeId u = 0; u < 64; ++u) {
    EXPECT_EQ(engine.node(u).output()->count, 64);
  }
}

}  // namespace
}  // namespace sdn::net
