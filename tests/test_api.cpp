#include "core/api.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/check.hpp"

namespace sdn {
namespace {

TEST(Api, MakeInputsDeterministicAndSeedSensitive) {
  const auto a = MakeInputs(32, 1);
  const auto b = MakeInputs(32, 1);
  const auto c = MakeInputs(32, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 32u);
}

TEST(Api, ToStringCoversAllAlgorithms) {
  std::set<std::string> names;
  for (const Algorithm a : AllAlgorithms()) {
    names.insert(ToString(a));
  }
  EXPECT_EQ(names.size(), AllAlgorithms().size());
}

TEST(Api, FloodMaxRunGradesCorrect) {
  RunConfig config;
  config.n = 40;
  config.T = 2;
  config.adversary.kind = "spine-rtree";
  const RunResult r = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);
  EXPECT_TRUE(r.Ok());
  ASSERT_TRUE(r.max_correct.has_value());
  EXPECT_TRUE(*r.max_correct);
  EXPECT_FALSE(r.count_exact.has_value());
  EXPECT_EQ(r.stats.rounds, 39);
  EXPECT_EQ(r.n, 40);
}

TEST(Api, KloCensusRunGradesAllProblems) {
  RunConfig config;
  config.n = 20;
  config.T = 2;
  config.adversary.kind = "spine-expander";
  const RunResult r = RunAlgorithm(Algorithm::kKloCensusT, config);
  EXPECT_TRUE(r.Ok());
  EXPECT_TRUE(r.count_exact.value_or(false));
  EXPECT_TRUE(r.max_correct.value_or(false));
  EXPECT_TRUE(r.consensus_agreement.value_or(false));
  EXPECT_TRUE(r.consensus_valid.value_or(false));
}

TEST(Api, HjswyCensusBeatsFloodOnExpanderChurn) {
  RunConfig config;
  config.n = 128;
  config.T = 2;
  config.adversary.kind = "spine-expander";
  const RunResult flood = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);
  const RunResult hjswy = RunAlgorithm(Algorithm::kHjswyCensus, config);
  EXPECT_TRUE(flood.Ok());
  EXPECT_TRUE(hjswy.Ok());
  EXPECT_LT(hjswy.stats.rounds, flood.stats.rounds);
  EXPECT_TRUE(hjswy.count_exact.value_or(false));
}

TEST(Api, HjswyEstimateReportsRelativeError) {
  RunConfig config;
  config.n = 64;
  config.T = 2;
  config.adversary.kind = "spine-gnp";
  const RunResult r = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  EXPECT_TRUE(r.Ok());
  ASSERT_TRUE(r.count_max_rel_error.has_value());
  EXPECT_LT(*r.count_max_rel_error, 0.8);  // 6-sigma-ish for L=64
  EXPECT_FALSE(r.count_exact.has_value());
}

TEST(Api, ExplicitInputsRespected) {
  RunConfig config;
  config.n = 10;
  config.T = 1;
  config.adversary.kind = "static-path";
  config.inputs.assign(10, 5);
  config.inputs[7] = 99;
  const RunResult r = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);
  EXPECT_TRUE(r.Ok());
  EXPECT_EQ(r.expected_max, 99);
}

TEST(Api, InputSizeMismatchRejected) {
  RunConfig config;
  config.n = 10;
  config.inputs.assign(3, 1);
  EXPECT_THROW(RunAlgorithm(Algorithm::kFloodMaxKnownN, config),
               util::CheckError);
}

TEST(Api, RunTrialsIsDeterministicPerSeed) {
  RunConfig config;
  config.n = 32;
  config.T = 2;
  config.adversary.kind = "spine-rtree";
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  const auto first = RunTrials(Algorithm::kHjswyCensus, config, seeds, 1);
  const auto second = RunTrials(Algorithm::kHjswyCensus, config, seeds, 2);
  ASSERT_EQ(first.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(first[i].stats.rounds, second[i].stats.rounds);
    EXPECT_EQ(first[i].seed, seeds[i]);
    EXPECT_TRUE(first[i].Ok());
  }
  // Different seeds genuinely vary the run.
  EXPECT_TRUE(first[0].stats.messages_sent != first[1].stats.messages_sent ||
              first[0].stats.rounds != first[1].stats.rounds ||
              first[0].stats.total_message_bits !=
                  first[1].stats.total_message_bits);
}

TEST(Api, KloCommitteeRunGradesAllProblems) {
  RunConfig config;
  config.n = 18;
  config.T = 2;
  config.adversary.kind = "spine-rtree";
  const RunResult r = RunAlgorithm(Algorithm::kKloCommittee, config);
  EXPECT_TRUE(r.Ok());
  EXPECT_TRUE(r.count_exact.value_or(false));
  EXPECT_TRUE(r.max_correct.value_or(false));
  EXPECT_TRUE(r.consensus_agreement.value_or(false));
}

TEST(Api, TrackSumGradesSumError) {
  RunConfig config;
  config.n = 64;
  config.T = 2;
  config.adversary.kind = "spine-expander";
  config.hjswy.track_sum = true;
  config.hjswy.sketch_len = 128;
  config.hjswy.coords_per_msg = 3;
  const RunResult r = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  EXPECT_TRUE(r.Ok());
  ASSERT_TRUE(r.sum_max_rel_error.has_value());
  EXPECT_LT(*r.sum_max_rel_error, 0.8);
}

TEST(Api, SumNotGradedWhenDisabled) {
  RunConfig config;
  config.n = 16;
  config.T = 2;
  config.adversary.kind = "spine-rtree";
  const RunResult r = RunAlgorithm(Algorithm::kHjswyEstimate, config);
  EXPECT_FALSE(r.sum_max_rel_error.has_value());
}

TEST(Api, ValidationCanBeDisabled) {
  RunConfig config;
  config.n = 16;
  config.T = 2;
  config.adversary.kind = "spine-expander";
  config.validate_tinterval = false;
  const RunResult r = RunAlgorithm(Algorithm::kHjswyCensus, config);
  EXPECT_TRUE(r.Ok());
  EXPECT_TRUE(r.stats.tinterval_ok);  // trivially true when not checked
  EXPECT_FALSE(r.stats.tinterval_validated);  // ...and flagged as unchecked
  EXPECT_TRUE(r.tinterval_waived);  // Ok() passed via the explicit waiver
}

TEST(Api, OkDemandsRealCertificationOrExplicitWaiver) {
  // A vacuous tinterval_ok must not read as success: unvalidated and
  // unwaived fails, unvalidated-but-waived passes, validated-and-held
  // passes, validated-and-broken fails.
  RunResult r;
  r.stats.all_decided = true;
  r.stats.tinterval_validated = false;
  r.stats.tinterval_ok = true;  // vacuous
  r.tinterval_waived = false;
  EXPECT_FALSE(r.Ok());
  r.tinterval_waived = true;
  EXPECT_TRUE(r.Ok());
  r.tinterval_waived = false;
  r.stats.tinterval_validated = true;
  EXPECT_TRUE(r.Ok());
  r.stats.tinterval_ok = false;
  EXPECT_FALSE(r.Ok());
}

TEST(Api, CertifiedTReachesRunResult) {
  RunConfig config;
  config.n = 16;
  config.T = 2;
  config.adversary.kind = "spine-gnp";
  const RunResult r = RunAlgorithm(Algorithm::kHjswyCensus, config);
  EXPECT_TRUE(r.Ok());
  EXPECT_TRUE(r.stats.tinterval_validated);
  EXPECT_EQ(r.stats.certified_T, 2);
  EXPECT_FALSE(r.tinterval_waived);
}

TEST(Api, RunTrialsReportsFailingSeed) {
  // A trial that throws must surface one CheckError naming the seed it died
  // on — not a default-constructed result slot or an anonymous rethrow.
  RunConfig config;
  config.n = 10;
  config.adversary.kind = "static-path";
  config.inputs.assign(3, 1);  // size mismatch: every trial throws
  const std::vector<std::uint64_t> seeds = {11, 22, 33};
  try {
    (void)RunTrials(Algorithm::kFloodMaxKnownN, config, seeds, 1);
    FAIL() << "RunTrials did not propagate the trial failure";
  } catch (const util::CheckError& e) {
    // threads=1 walks seeds in order, so the first failure is seed 11.
    EXPECT_NE(std::string(e.what()).find("seed 11"), std::string::npos)
        << e.what();
  }
  // The multi-threaded path must also join cleanly and throw.
  EXPECT_THROW((void)RunTrials(Algorithm::kFloodMaxKnownN, config, seeds, 2),
               util::CheckError);
}

TEST(Api, FullRunDeterminismPerAlgorithm) {
  // Identical (seed, config) must give bit-identical executions for every
  // algorithm — the property that makes traces and failure reports
  // reproducible.
  RunConfig config;
  config.n = 20;
  config.T = 2;
  config.seed = 77;
  config.adversary.kind = "mobile";
  for (const Algorithm a : AllAlgorithms()) {
    const RunResult r1 = RunAlgorithm(a, config);
    const RunResult r2 = RunAlgorithm(a, config);
    EXPECT_EQ(r1.stats.rounds, r2.stats.rounds) << ToString(a);
    EXPECT_EQ(r1.stats.messages_sent, r2.stats.messages_sent) << ToString(a);
    EXPECT_EQ(r1.stats.total_message_bits, r2.stats.total_message_bits)
        << ToString(a);
    EXPECT_EQ(r1.stats.decide_round, r2.stats.decide_round) << ToString(a);
  }
}

TEST(Api, AllAlgorithmsCompleteOnSmallNetwork) {
  RunConfig config;
  config.n = 16;
  config.T = 2;
  config.adversary.kind = "spine-rtree";
  for (const Algorithm a : AllAlgorithms()) {
    const RunResult r = RunAlgorithm(a, config);
    EXPECT_TRUE(r.Ok()) << ToString(a);
    EXPECT_TRUE(r.stats.all_decided) << ToString(a);
  }
}

}  // namespace
}  // namespace sdn
