#include "algo/hjswy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "adversary/factory.hpp"
#include "net/engine.hpp"
#include "util/rng.hpp"

namespace sdn::algo {
namespace {

struct HjswyRun {
  net::RunStats stats;
  std::vector<HjswyOutput> outputs;
};

HjswyRun RunHjswy(graph::NodeId n, int T, const std::string& kind,
                  std::uint64_t seed, HjswyOptions options,
                  std::int64_t volatile_edges = -1) {
  adversary::AdversaryConfig config;
  config.kind = kind;
  config.n = n;
  config.T = T;
  config.seed = seed;
  config.volatile_edges = volatile_edges;
  const auto adv = adversary::MakeAdversary(config);

  options.T = T;
  util::Rng base(seed * 7919 + 13);
  std::vector<HjswyProgram> nodes;
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, static_cast<Value>((u * 7) % 53 - 20), options,
                       base.Fork(static_cast<std::uint64_t>(u)));
  }
  net::EngineOptions opts;
  opts.bandwidth = options.exact_census
                       ? net::BandwidthPolicy::Unbounded()
                       : net::BandwidthPolicy::BoundedLogN(64.0);
  opts.max_rounds = 1'000'000;
  net::Engine<HjswyProgram> engine(std::move(nodes), *adv, opts);
  HjswyRun run;
  run.stats = engine.Run();
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto out = engine.node(u).output();
    if (out.has_value()) run.outputs.push_back(*out);
  }
  return run;
}

Value ExpectedMax(graph::NodeId n) {
  Value best = kValueMin;
  for (graph::NodeId u = 0; u < n; ++u) {
    best = std::max(best, static_cast<Value>((u * 7) % 53 - 20));
  }
  return best;
}

using Param = std::tuple<graph::NodeId, int, std::string, std::uint64_t>;

class HjswyCorrectnessTest : public ::testing::TestWithParam<Param> {};

TEST_P(HjswyCorrectnessTest, ExactCensusModeSolvesAllThreeProblems) {
  const auto& [n, T, kind, seed] = GetParam();
  HjswyOptions options;
  options.exact_census = true;
  const HjswyRun run = RunHjswy(n, T, kind, seed, options);
  ASSERT_TRUE(run.stats.all_decided);
  EXPECT_TRUE(run.stats.tinterval_ok);
  ASSERT_EQ(run.outputs.size(), static_cast<std::size_t>(n));
  for (const HjswyOutput& out : run.outputs) {
    EXPECT_EQ(out.count, n);
    EXPECT_EQ(out.max_value, ExpectedMax(n));
    EXPECT_EQ(out.consensus_value, -20);  // node 0's input
  }
}

TEST_P(HjswyCorrectnessTest, BoundedModeMaxAndConsensusExactCountApprox) {
  const auto& [n, T, kind, seed] = GetParam();
  HjswyOptions options;
  options.sketch_len = 96;  // rel stddev ≈ 0.10
  const HjswyRun run = RunHjswy(n, T, kind, seed, options);
  ASSERT_TRUE(run.stats.all_decided);
  ASSERT_EQ(run.outputs.size(), static_cast<std::size_t>(n));
  for (const HjswyOutput& out : run.outputs) {
    EXPECT_EQ(out.max_value, ExpectedMax(n));
    EXPECT_EQ(out.consensus_value, -20);
    // 6 sigma: fails with negligible probability over the whole grid.
    EXPECT_NEAR(out.count_estimate, n, 0.65 * n + 0.6);
    // All nodes converged to the same estimate.
    EXPECT_DOUBLE_EQ(out.count_estimate, run.outputs.front().count_estimate);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HjswyCorrectnessTest,
    ::testing::Combine(::testing::Values<graph::NodeId>(1, 2, 16, 64, 150),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values("static-path", "spine-rtree",
                                         "spine-expander", "spine-gnp",
                                         "mobile", "adaptive-desc"),
                       ::testing::Values<std::uint64_t>(11, 23)),
    [](const ::testing::TestParamInfo<Param>& pi) {
      auto name = "n" + std::to_string(std::get<0>(pi.param)) + "_T" +
                  std::to_string(std::get<1>(pi.param)) + "_" +
                  std::get<2>(pi.param) + "_s" +
                  std::to_string(std::get<3>(pi.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Hjswy, RoundsTrackFloodingTimeNotN) {
  // The headline claim: on low-diameter churn, quadrupling N should barely
  // move the decision round (d stays ~log N), far below linear growth.
  HjswyOptions options;
  options.exact_census = true;
  const HjswyRun small = RunHjswy(64, 2, "spine-expander", 3, options);
  const HjswyRun large = RunHjswy(256, 2, "spine-expander", 3, options);
  ASSERT_TRUE(small.stats.all_decided);
  ASSERT_TRUE(large.stats.all_decided);
  EXPECT_LT(large.stats.rounds, 2 * small.stats.rounds + 64);
  EXPECT_LT(large.stats.rounds, 256);  // well below the N-1 flooding baseline
}

TEST(Hjswy, RoundsGrowWithFloodingTimeOnPaths) {
  // d = Θ(N) on a static path (no volatile shortcut edges, no relabeling —
  // fresh random spines every era actually *speed up* flooding): complexity
  // must degrade towards linear.
  HjswyOptions options;
  options.exact_census = true;
  const HjswyRun d_small = RunHjswy(32, 2, "static-path", 9, options, 0);
  const HjswyRun d_large = RunHjswy(128, 2, "static-path", 9, options, 0);
  ASSERT_TRUE(d_small.stats.all_decided);
  ASSERT_TRUE(d_large.stats.all_decided);
  EXPECT_GT(d_large.stats.rounds, d_small.stats.rounds);
  EXPECT_GE(d_large.stats.flooding.max_rounds, 32);
}

TEST(Hjswy, StrictModeWaitsForHorizonCoveringN) {
  HjswyOptions lax;
  HjswyOptions strict;
  strict.strict = true;
  const HjswyRun fast = RunHjswy(96, 2, "spine-expander", 5, lax);
  const HjswyRun safe = RunHjswy(96, 2, "spine-expander", 5, strict);
  ASSERT_TRUE(fast.stats.all_decided);
  ASSERT_TRUE(safe.stats.all_decided);
  EXPECT_GT(safe.stats.rounds, fast.stats.rounds);
  EXPECT_GE(safe.outputs.front().accepted_horizon,
            static_cast<std::int64_t>(0.8 * 96));
}

TEST(Hjswy, PhaseScheduleDoublesHorizons) {
  HjswyOptions options;
  util::Rng rng(1);
  const HjswyProgram node(0, 0, options, rng.Fork(0));
  std::int64_t last_horizon = 0;
  for (net::Round r = 1; r <= 5000; ++r) {
    const auto pos = node.Locate(r);
    if (pos.horizon != last_horizon) {
      if (last_horizon != 0) {
        EXPECT_EQ(pos.horizon, 2 * last_horizon);
      }
      EXPECT_EQ(pos.round_in_phase, 0);
      last_horizon = pos.horizon;
    }
    EXPECT_EQ(pos.in_suffix,
              pos.round_in_phase >= node.DisseminationLength(pos.horizon));
  }
  EXPECT_GT(last_horizon, options.initial_horizon);
}

TEST(Hjswy, LocateFastMatchesLocate) {
  HjswyOptions options;
  util::Rng rng(1);
  const HjswyProgram node(0, 0, options, rng.Fork(0));
  const auto expect_same = [&node](net::Round r) {
    const auto slow = node.Locate(r);
    const auto fast = node.LocateFast(r);
    EXPECT_EQ(fast.phase, slow.phase) << "r=" << r;
    EXPECT_EQ(fast.horizon, slow.horizon) << "r=" << r;
    EXPECT_EQ(fast.round_in_phase, slow.round_in_phase) << "r=" << r;
    EXPECT_EQ(fast.in_suffix, slow.in_suffix) << "r=" << r;
    EXPECT_EQ(fast.last_round_of_phase, slow.last_round_of_phase) << "r=" << r;
  };
  // Forward (the engine's access pattern: O(1) amortized cursor hits)...
  for (net::Round r = 1; r <= 5000; ++r) expect_same(r);
  // ...and arbitrary-order probes (cursor resets on backward queries).
  util::Rng jump(99);
  for (int i = 0; i < 200; ++i) {
    expect_same(1 + static_cast<net::Round>(jump.UniformU64(5000)));
  }
}

TEST(Hjswy, BoundedMessageFitsLogBudget) {
  HjswyOptions options;
  util::Rng rng(2);
  HjswyProgram node(0, 1234, options, rng.Fork(0));
  const auto msg = node.OnSend(1);
  ASSERT_TRUE(msg.has_value());
  // Default knobs must fit 64·log2(16) = 256 bits so N >= 16 benches run.
  EXPECT_LE(HjswyProgram::MessageBits(*msg), 256u);
}

TEST(Hjswy, DecidedNodesKeepBroadcasting) {
  HjswyOptions options;
  const HjswyRun run = RunHjswy(8, 1, "static-star", 4, options);
  ASSERT_TRUE(run.stats.all_decided);
  // Every node sent a message in every executed round (nobody went silent).
  EXPECT_EQ(run.stats.messages_sent, 8 * run.stats.rounds);
}

TEST(Hjswy, TrackSumEstimatesTotalWeight) {
  HjswyOptions options;
  options.track_sum = true;
  options.sketch_len = 128;
  const HjswyRun run = RunHjswy(80, 2, "spine-expander", 21, options);
  ASSERT_TRUE(run.stats.all_decided);
  double expected = 0.0;
  for (graph::NodeId u = 0; u < 80; ++u) {
    const auto v = static_cast<Value>((u * 7) % 53 - 20);
    if (v > 0) expected += static_cast<double>(v);
  }
  for (const HjswyOutput& out : run.outputs) {
    // Converged sketch: same estimate everywhere, within ~6 sigma of truth.
    EXPECT_DOUBLE_EQ(out.sum_estimate, run.outputs.front().sum_estimate);
    EXPECT_NEAR(out.sum_estimate, expected, 0.55 * expected);
  }
}

TEST(Hjswy, CombinedCensusAndSumMode) {
  // All features at once: exact census count + sum sketch + aggregates.
  HjswyOptions options;
  options.exact_census = true;
  options.track_sum = true;
  options.sketch_len = 128;
  const HjswyRun run = RunHjswy(60, 2, "spine-gnp", 31, options);
  ASSERT_TRUE(run.stats.all_decided);
  double expected_sum = 0.0;
  for (graph::NodeId u = 0; u < 60; ++u) {
    const auto v = static_cast<Value>((u * 7) % 53 - 20);
    if (v > 0) expected_sum += static_cast<double>(v);
  }
  for (const HjswyOutput& out : run.outputs) {
    EXPECT_EQ(out.count, 60);  // exact despite the extra payload
    EXPECT_EQ(out.max_value, ExpectedMax(60));
    EXPECT_NEAR(out.sum_estimate, expected_sum, 0.55 * expected_sum);
  }
}

TEST(Hjswy, SumDisabledByDefault) {
  HjswyOptions options;
  const HjswyRun run = RunHjswy(16, 2, "spine-rtree", 5, options);
  ASSERT_TRUE(run.stats.all_decided);
  EXPECT_EQ(run.outputs.front().sum_estimate, 0.0);
}

TEST(Hjswy, EstimateIsSharedByAllNodes) {
  HjswyOptions options;
  const HjswyRun run = RunHjswy(40, 2, "spine-rtree", 6, options);
  ASSERT_TRUE(run.stats.all_decided);
  for (const HjswyOutput& out : run.outputs) {
    EXPECT_DOUBLE_EQ(out.count_estimate, run.outputs.front().count_estimate);
    EXPECT_EQ(out.max_value, run.outputs.front().max_value);
    EXPECT_EQ(out.consensus_value, run.outputs.front().consensus_value);
  }
}

}  // namespace
}  // namespace sdn::algo
