// Tests for the delta-based incremental topology pipeline: TopologyDelta /
// DynGraph semantics, the Adversary::DeltaFor contract across every factory
// kind, the delta-driven streaming T-interval checker, and bit-identical
// RunStats between the incremental and from-scratch engine paths.
#include "graph/delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "adversary/factory.hpp"
#include "core/api.hpp"
#include "graph/generators.hpp"
#include "graph/tinterval.hpp"
#include "net/adversary.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::graph {
namespace {

TEST(DiffSorted, ComputesAddedAndRemoved) {
  const Graph from(5, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  const Graph to(5, std::vector<Edge>{{0, 1}, {2, 3}, {3, 4}, {0, 4}});
  const TopologyDelta delta = Diff(from, to);
  EXPECT_EQ(delta.added, (std::vector<Edge>{{0, 4}, {2, 3}}));
  EXPECT_EQ(delta.removed, (std::vector<Edge>{{1, 2}}));
  EXPECT_EQ(delta.size(), 3);
}

TEST(DiffSorted, IdenticalGraphsGiveEmptyDelta) {
  const Graph g = Path(6);
  EXPECT_TRUE(Diff(g, g).empty());
}

TEST(DiffSorted, FromEmptyIsAllAdded) {
  const Graph g = Star(5);
  const TopologyDelta delta = Diff(Graph(5), g);
  EXPECT_EQ(delta.added.size(), static_cast<std::size_t>(g.num_edges()));
  EXPECT_TRUE(delta.removed.empty());
}

TEST(CheckDeltaWellFormed, RejectsUnsortedOverlapOrOutOfRange) {
  TopologyDelta unsorted;
  unsorted.added = {{2, 3}, {0, 1}};
  EXPECT_THROW(CheckDeltaWellFormed(unsorted, 5), util::CheckError);

  TopologyDelta dup;
  dup.removed = {{0, 1}, {0, 1}};
  EXPECT_THROW(CheckDeltaWellFormed(dup, 5), util::CheckError);

  TopologyDelta overlap;
  overlap.added = {{0, 1}};
  overlap.removed = {{0, 1}};
  EXPECT_THROW(CheckDeltaWellFormed(overlap, 5), util::CheckError);

  TopologyDelta out_of_range;
  out_of_range.added = {{0, 7}};
  EXPECT_THROW(CheckDeltaWellFormed(out_of_range, 5), util::CheckError);

  TopologyDelta ok;
  ok.added = {{0, 1}, {1, 2}};
  ok.removed = {{0, 2}};
  EXPECT_NO_THROW(CheckDeltaWellFormed(ok, 5));
}

TEST(DynGraph, EmptyDeltaIsIdentityInPlace) {
  DynGraph dyn(Path(8));
  const Graph* before = &dyn.View();
  const Graph& after = dyn.Apply(TopologyDelta{});
  EXPECT_EQ(before, &after);
  EXPECT_EQ(after, Path(8));
}

TEST(DynGraph, ApplyRejectsContractViolationsAndLeavesGraphUntouched) {
  DynGraph dyn(Path(5));  // edges (0,1)(1,2)(2,3)(3,4)
  const Graph snapshot = dyn.View();

  TopologyDelta removes_absent;
  removes_absent.removed = {{0, 4}};
  EXPECT_THROW(dyn.Apply(removes_absent), util::CheckError);
  EXPECT_EQ(dyn.View(), snapshot);

  TopologyDelta adds_present;
  adds_present.added = {{1, 2}};
  EXPECT_THROW(dyn.Apply(adds_present), util::CheckError);
  EXPECT_EQ(dyn.View(), snapshot);
}

/// Random edit scripts: DynGraph under deltas == Graph rebuilt from scratch,
/// including the CSR internals (operator== compares edges, adjacency and
/// offsets member-wise) and the Neighbors/Degree views.
TEST(DynGraph, RandomEditScriptsMatchFromScratch) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId n = 24;
    Graph reference = Gnp(n, 0.15, rng);
    DynGraph dyn(reference);
    for (int step = 0; step < 25; ++step) {
      // Random delta: flip a handful of node pairs.
      TopologyDelta delta;
      for (int k = 0; k < 6; ++k) {
        const auto u =
            static_cast<NodeId>(rng.UniformU64(static_cast<std::uint64_t>(n)));
        auto v = static_cast<NodeId>(
            rng.UniformU64(static_cast<std::uint64_t>(n) - 1));
        if (v >= u) ++v;
        const Edge e(u, v);
        if (reference.HasEdge(e.u, e.v)) {
          delta.removed.push_back(e);
        } else {
          delta.added.push_back(e);
        }
      }
      const auto dedup = [](std::vector<Edge>& edges) {
        std::sort(edges.begin(), edges.end());
        edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
      };
      dedup(delta.added);
      dedup(delta.removed);

      std::vector<Edge> next(reference.Edges().begin(),
                             reference.Edges().end());
      for (const Edge& e : delta.removed) {
        next.erase(std::find(next.begin(), next.end(), e));
      }
      next.insert(next.end(), delta.added.begin(), delta.added.end());
      reference = Graph(n, next);

      const Graph& incremental = dyn.Apply(delta);
      ASSERT_EQ(incremental, reference) << "trial " << trial << " step "
                                        << step;
      for (NodeId u = 0; u < n; ++u) {
        ASSERT_EQ(incremental.Degree(u), reference.Degree(u));
      }
    }
  }
}

TEST(VerifySortedEdges, ToggleGatesTheSortednessScan) {
  const bool old = VerifySortedEdges();
  SetVerifySortedEdges(true);
  std::vector<Edge> unsorted{{2, 3}, {0, 1}};
  EXPECT_THROW(Graph(4, std::move(unsorted), Graph::SortedEdges{}),
               util::CheckError);
  // Range checking is not gated: an out-of-range edge throws regardless.
  SetVerifySortedEdges(false);
  std::vector<Edge> out_of_range{{0, 9}};
  EXPECT_THROW(Graph(4, std::move(out_of_range), Graph::SortedEdges{}),
               util::CheckError);
  SetVerifySortedEdges(old);
}

class ZeroView final : public net::AdversaryView {
 public:
  explicit ZeroView(NodeId n) : n_(n) {}
  [[nodiscard]] std::int64_t round() const override { return 1; }
  [[nodiscard]] double PublicState(NodeId) const override { return 0.0; }
  [[nodiscard]] NodeId num_nodes() const override { return n_; }

 private:
  NodeId n_;
};

/// The DeltaFor contract, property-tested across every factory kind × seeds
/// × T ∈ {1, 2, 4}: driving a DynGraph by DeltaFor must reproduce, round by
/// round, exactly the graphs TopologyFor builds from scratch (two instances
/// of the same adversary, identical seeds, so RNG streams must line up too).
TEST(AdversaryDelta, MatchesTopologyForEveryKindSeedAndT) {
  const NodeId n = 32;
  const ZeroView view(n);
  for (const std::string& kind : adversary::KnownAdversaryKinds()) {
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      for (const int T : {1, 2, 4}) {
        adversary::AdversaryConfig config;
        config.kind = kind;
        config.n = n;
        config.T = T;
        config.seed = seed;
        const auto scratch = adversary::MakeAdversary(config);
        const auto incremental = adversary::MakeAdversary(config);
        DynGraph dyn(n);
        TopologyDelta delta;
        for (std::int64_t r = 1; r <= 30; ++r) {
          const Graph expected = scratch->TopologyFor(r, view);
          incremental->DeltaFor(r, view, dyn.View(), delta);
          const Graph& got = dyn.Apply(delta);
          ASSERT_EQ(got, expected)
              << kind << " seed=" << seed << " T=" << T << " round=" << r;
        }
      }
    }
  }
}

/// The RoundEdgesInto contract, property-tested the same way: when an
/// adversary takes the direct-assignment fast path (filling a DynGraph's
/// EditBuffer with the round's full edge list), CommitEdges must reproduce
/// exactly the graphs TopologyFor builds from scratch. Adversaries that
/// decline the fast path (return false) fall back to TopologyFor on the same
/// instance, which keeps their RNG streams aligned for later rounds.
TEST(AdversaryFastPath, RoundEdgesIntoMatchesTopologyForEveryKindSeedAndT) {
  const NodeId n = 32;
  const ZeroView view(n);
  int fast_rounds = 0;
  for (const std::string& kind : adversary::KnownAdversaryKinds()) {
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
      for (const int T : {1, 2, 4}) {
        adversary::AdversaryConfig config;
        config.kind = kind;
        config.n = n;
        config.T = T;
        config.seed = seed;
        const auto scratch = adversary::MakeAdversary(config);
        const auto fast = adversary::MakeAdversary(config);
        DynGraph dyn(n);
        for (std::int64_t r = 1; r <= 30; ++r) {
          const Graph expected = scratch->TopologyFor(r, view);
          if (fast->RoundEdgesInto(r, view, dyn.EditBuffer())) {
            ++fast_rounds;
            const Graph& got = dyn.CommitEdges();
            ASSERT_EQ(got, expected)
                << kind << " seed=" << seed << " T=" << T << " round=" << r;
          } else {
            // Abandoned edit: View() must be untouched, streams stay aligned.
            ASSERT_EQ(fast->TopologyFor(r, view), expected)
                << kind << " seed=" << seed << " T=" << T << " round=" << r;
          }
        }
      }
    }
  }
  // The native implementations (spine/adaptive/static/replay families) must
  // actually exercise the fast path, not silently fall back everywhere.
  EXPECT_GT(fast_rounds, 0);
}

/// Streaming checker (both Push and PushDelta) vs the batch validator, on
/// honest adversary sequences and on corrupted ones.
TEST(TIntervalChecker, AgreesWithBatchValidator) {
  const NodeId n = 20;
  const ZeroView view(n);
  util::Rng corrupt_rng(99);
  for (const std::string& kind :
       {std::string("spine-gnp"), std::string("spine-rtree"),
        std::string("static-path"), std::string("mobile")}) {
    for (const int T : {1, 2, 3}) {
      adversary::AdversaryConfig config;
      config.kind = kind;
      config.n = n;
      config.T = T;
      config.seed = 5;
      const auto adv = adversary::MakeAdversary(config);
      std::vector<Graph> seq;
      for (std::int64_t r = 1; r <= 24; ++r) {
        seq.push_back(adv->TopologyFor(r, view));
      }
      for (const bool corrupt : {false, true}) {
        if (corrupt) {
          // Break one mid-sequence round (drop all edges of a random node).
          const auto at = 8 + corrupt_rng.UniformU64(8);
          std::vector<Edge> pruned;
          for (const Edge& e : seq[at].Edges()) {
            if (e.u != 0 && e.v != 0) pruned.push_back(e);
          }
          seq[at] = Graph(n, pruned);
        }
        // Only ok/first_bad_window are compared: early exit suffices.
        const TIntervalReport batch =
            ValidateTInterval(seq, T, ValidateMode::kEarlyExit);
        TIntervalChecker push_checker(n, T);
        TIntervalChecker delta_checker(n, T);
        Graph prev(n);
        TopologyDelta delta;
        for (const Graph& g : seq) {
          const bool a = push_checker.Push(g);
          DiffSorted(prev.Edges(), g.Edges(), delta);
          const bool b = delta_checker.PushDelta(delta);
          ASSERT_EQ(a, b);
          prev = g;
        }
        ASSERT_EQ(push_checker.ok(), batch.ok)
            << kind << " T=" << T << " corrupt=" << corrupt;
        ASSERT_EQ(push_checker.first_bad_window(), batch.first_bad_window)
            << kind << " T=" << T << " corrupt=" << corrupt;
        ASSERT_EQ(delta_checker.first_bad_window(), batch.first_bad_window);
      }
    }
  }
}

TEST(TIntervalChecker, FlagsFirstBadWindowOfAbruptCut) {
  // Path for 5 rounds, then edgeless: with T=2 the first bad window is the
  // one spanning rounds {5, 6}, i.e. 0-based start 4.
  TIntervalChecker checker(6, 2);
  for (int r = 0; r < 5; ++r) EXPECT_TRUE(checker.Push(Path(6)));
  EXPECT_FALSE(checker.Push(Graph(6)));
  EXPECT_FALSE(checker.ok());
  EXPECT_EQ(checker.first_bad_window(), 4);
}

/// Comparable RunStats fields (timings excluded — wall clock).
void ExpectSameStats(const net::RunStats& a, const net::RunStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.all_decided, b.all_decided) << label;
  EXPECT_EQ(a.hit_max_rounds, b.hit_max_rounds) << label;
  EXPECT_EQ(a.first_decide_round, b.first_decide_round) << label;
  EXPECT_EQ(a.last_decide_round, b.last_decide_round) << label;
  EXPECT_EQ(a.decide_round, b.decide_round) << label;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << label;
  EXPECT_EQ(a.sends_per_node, b.sends_per_node) << label;
  EXPECT_EQ(a.total_message_bits, b.total_message_bits) << label;
  EXPECT_EQ(a.max_message_bits, b.max_message_bits) << label;
  EXPECT_EQ(a.edges_processed, b.edges_processed) << label;
  EXPECT_EQ(a.messages_delivered, b.messages_delivered) << label;
  EXPECT_EQ(a.tinterval_ok, b.tinterval_ok) << label;
  EXPECT_EQ(a.tinterval_validated, b.tinterval_validated) << label;
  EXPECT_EQ(a.flooding.probes, b.flooding.probes) << label;
  EXPECT_EQ(a.flooding.completed, b.flooding.completed) << label;
  EXPECT_EQ(a.flooding.max_rounds, b.flooding.max_rounds) << label;
}

/// End to end: the incremental engine path produces bit-identical RunStats
/// to the from-scratch path, with validation and probes on.
TEST(IncrementalEngine, RunStatsMatchFromScratchPath) {
  for (const std::string& kind :
       {std::string("spine-gnp"), std::string("spine-expander"),
        std::string("static-path"), std::string("adaptive-desc"),
        std::string("mobile")}) {
    RunConfig config;
    config.n = 48;
    config.T = 2;
    config.seed = 11;
    config.adversary.kind = kind;
    config.threads = 1;

    config.incremental_topology = true;
    const RunResult inc = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);
    config.incremental_topology = false;
    const RunResult scratch = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);

    ExpectSameStats(inc.stats, scratch.stats, kind);
    EXPECT_TRUE(inc.Ok()) << kind;
    EXPECT_TRUE(scratch.Ok()) << kind;
  }
}

/// Same end-to-end comparison with validation off: no checker and no trace
/// recorder means the engine takes the RoundEdgesInto direct-assignment fast
/// path instead of DeltaFor/Apply, and it too must be bit-identical to the
/// from-scratch path.
TEST(IncrementalEngine, FastPathStatsMatchScratchWithValidationOff) {
  for (const std::string& kind :
       {std::string("spine-gnp"), std::string("spine-expander"),
        std::string("static-path"), std::string("adaptive-desc"),
        std::string("mobile")}) {
    RunConfig config;
    config.n = 48;
    config.T = 2;
    config.seed = 11;
    config.adversary.kind = kind;
    config.threads = 1;
    config.validate_tinterval = false;

    config.incremental_topology = true;
    const RunResult fast = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);
    config.incremental_topology = false;
    const RunResult scratch = RunAlgorithm(Algorithm::kFloodMaxKnownN, config);

    ExpectSameStats(fast.stats, scratch.stats, kind);
    EXPECT_FALSE(fast.stats.tinterval_validated) << kind;
    EXPECT_TRUE(fast.Ok()) << kind;
    EXPECT_TRUE(scratch.Ok()) << kind;
  }
}

}  // namespace
}  // namespace sdn::graph
