// F7: robustness of the hjswy reconstruction across the adversary zoo,
// including the adaptive sort-path adversary and worst-case (d = Θ(N))
// topologies.
//
// Reports per adversary: measured d, decision rounds, and the correctness
// grade over many seeds. Expected: correctness holds everywhere (the alarm
// verification is what the real paper proves; here we quantify it), and the
// round complexity honestly degrades to Θ̃(N) exactly on the adversaries
// whose d is Θ(N).
#include <iostream>

#include "bench_common.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n =
      static_cast<graph::NodeId>(flags.GetInt("n", 256, "node count"));
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const int trials =
      static_cast<int>(flags.GetInt("trials", 10, "seeds per adversary"));
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_f7_adversaries")) return 0;
  BenchManifest().Set("experiment", "f7_adversaries");
  BenchManifest().Set("trials", trials);

  PrintBanner("F7: hjswy vs the adversary zoo (N=" + std::to_string(n) + ")",
              "failures counts trials where any node decided a wrong "
              "Max/Consensus/Count (exact-census mode) over " +
                  std::to_string(trials) + " seeds.");

  util::Table table({"adversary", "d (median)", "rounds (median)",
                     "rounds (p95)", "failures", "worst est err"});
  for (const std::string& kind : adversary::KnownAdversaryKinds()) {
    RunConfig config;
    config.n = n;
    config.T = T;
    config.adversary.kind = kind;
    // Bare spines for the worst-case rows: volatile edges would shortcut
    // the path and hide the Θ(N) regime.
    if (kind == "static-path" || kind == "adaptive-desc" ||
        kind == "adaptive-asc") {
      config.adversary.volatile_edges = 0;
    }
    config.recorder = tracer.Attach();  // first adversary's census run only
    const Aggregate census =
        Measure(Algorithm::kHjswyCensus, config, trials, threads);
    config.recorder = nullptr;
    const Aggregate est =
        Measure(Algorithm::kHjswyEstimate, config, trials, threads);
    table.AddRow({kind, util::Table::Num(census.flood_d.median, 0),
                  RoundsCell(census),
                  census.truncated > 0
                      ? "(truncated)"
                      : util::Table::Num(census.rounds.p95, 0),
                  std::to_string(census.failures + est.failures) + "/" +
                      std::to_string(2 * trials),
                  util::Table::Num(est.worst_count_rel_error * 100, 1) + "%"});
  }
  Finish(table, "f7_adversaries.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = n;
    config.T = T;
    config.adversary.kind = "spine-gnp";
    ExportRepresentative(metrics, Algorithm::kHjswyCensus, config);
  }
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
