// T4: Max and Consensus round complexity vs N under constant T.
//
// Same no-Ω(N) claim as T1, for the other two problems the abstract names.
// Baselines: flood-max / flood-consensus (O(N), and they even need to know
// N a priori); klo-census answers both exactly in O(N²)-ish rounds; hjswy
// answers both exactly whp in Õ(d).
#include <iostream>

#include "bench_common.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto ns = flags.GetIntList("n", {16, 32, 64, 128, 256, 512, 1024},
                                   "node counts");
  const auto baseline_cap =
      flags.GetInt("baseline-cap", 256, "largest N for the census baseline");
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const int trials = static_cast<int>(flags.GetInt("trials", 3, "seeds"));
  const std::string kind =
      flags.GetString("adversary", "spine-gnp", "adversary kind");
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_t4_max_consensus")) return 0;
  BenchManifest().Set("experiment", "t4_max_consensus");
  BenchManifest().Set("trials", trials);
  BenchManifest().Set("adversary", kind);

  PrintBanner("T4: Max & Consensus rounds vs N (constant T)",
              "hjswy answers both exactly (whp) in rounds tracking d; the "
              "known-N flood baselines are exactly N-1 rounds.");

  util::Table table({"N", "d", "flood-max", "flood-consensus", "klo-census",
                     "hjswy (max+consensus)", "max ok", "consensus ok"});
  std::vector<double> ns_d;
  std::vector<double> hjswy_rounds;
  for (const std::int64_t n : ns) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(n);
    config.T = T;
    config.adversary.kind = kind;

    const Aggregate fmax =
        Measure(Algorithm::kFloodMaxKnownN, config, trials, threads);
    const Aggregate fcon =
        Measure(Algorithm::kFloodConsensusKnownN, config, trials, threads);
    const bool skip_census = n > baseline_cap;
    const Aggregate census =
        skip_census ? Aggregate{}
                    : Measure(Algorithm::kKloCensusT, config, trials, threads);
    config.recorder = tracer.Attach();  // first hjswy cell only
    const Aggregate hjswy =
        Measure(Algorithm::kHjswyEstimate, config, trials, threads);
    config.recorder = nullptr;

    table.AddRow({std::to_string(n),
                  util::Table::Num(hjswy.flood_d.median, 0),
                  RoundsCell(fmax), RoundsCell(fcon),
                  skip_census ? "(skip)" : RoundsCell(census),
                  RoundsCell(hjswy),
                  hjswy.failures == 0 ? "yes" : "NO",
                  hjswy.failures == 0 ? "yes" : "NO"});
    ns_d.push_back(static_cast<double>(n));
    hjswy_rounds.push_back(RoundsPoint(hjswy));
  }
  table.AddRow({"N^b fit", "-", "b=1.00", "b=1.00", "b~2",
                "b=" + util::Table::Num(util::LogLogSlope(ns_d, hjswy_rounds), 2),
                "", ""});
  Finish(table, "t4_max_consensus.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(ns.back());
    config.T = T;
    config.adversary.kind = kind;
    ExportRepresentative(metrics, Algorithm::kHjswyEstimate, config);
  }
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
