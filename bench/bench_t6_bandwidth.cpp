// T6: bandwidth accounting — bits per message, bits per node·round, and the
// enforced budget per algorithm and regime.
//
// Makes the regime split honest: the bounded-regime algorithms must fit the
// O(log N) budget (the engine aborts otherwise), and hjswy-census's exact
// Count visibly pays Θ(N log N)-bit messages — which is why exact counting
// through an O(log N) cut cannot avoid an Ω(N/log N) term and the bounded
// variant reports an estimate instead (DESIGN.md §4.2).
#include <iostream>

#include "bench_common.hpp"
#include "net/bandwidth.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto ns = flags.GetIntList("n", {64, 256, 1024}, "node counts");
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const int trials = static_cast<int>(flags.GetInt("trials", 2, "seeds"));
  const auto baseline_cap =
      flags.GetInt("baseline-cap", 256, "largest N for the census baseline");
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_t6_bandwidth")) return 0;
  BenchManifest().Set("experiment", "t6_bandwidth");
  BenchManifest().Set("trials", trials);

  PrintBanner("T6: bandwidth accounting",
              "avg/max bits per message vs the enforced per-message budget "
              "(bounded regime: 64·log2 N with a 256-bit floor).");

  util::Table table({"N", "algorithm", "regime", "budget", "avg bits/msg",
                     "max bits/msg", "bits/node/round"});
  for (const std::int64_t n : ns) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(n);
    config.T = T;
    config.adversary.kind = "spine-gnp";
    for (const Algorithm algorithm :
         {Algorithm::kFloodMaxKnownN, Algorithm::kKloCensusT,
          Algorithm::kHjswyEstimate, Algorithm::kHjswyCensus}) {
      if (algorithm == Algorithm::kKloCensusT && n > baseline_cap) continue;
      const std::vector<RunResult> runs =
          RunTrials(algorithm, [&] {
            RunConfig c = config;
            c.validate_tinterval = true;  // certification is the shipped config
            c.recorder = tracer.Attach();  // first measured cell only
            return c;
          }(), Seeds(trials), threads);
      double avg = 0.0;
      double maxb = 0.0;
      double per_node_round = 0.0;
      for (const RunResult& r : runs) {
        avg += r.stats.AvgBitsPerMessage() / static_cast<double>(runs.size());
        maxb = std::max(maxb, static_cast<double>(r.stats.max_message_bits));
        per_node_round += r.stats.BitsPerNodeRound(n) /
                          static_cast<double>(runs.size());
      }
      const bool unbounded = algorithm == Algorithm::kHjswyCensus;
      const std::int64_t budget =
          unbounded ? -1
                    : net::BandwidthPolicy::BoundedLogN(64.0).BitLimit(
                          static_cast<graph::NodeId>(n));
      table.AddRow({std::to_string(n), runs.front().algorithm,
                    unbounded ? "unbounded" : "bounded",
                    unbounded ? "-" : std::to_string(budget),
                    util::Table::Num(avg, 0), util::Table::Num(maxb, 0),
                    util::Table::Num(per_node_round, 0)});
    }
  }
  Finish(table, "t6_bandwidth.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(ns.back());
    config.T = T;
    config.adversary.kind = "spine-gnp";
    ExportRepresentative(metrics, Algorithm::kHjswyEstimate, config);
  }
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
