// F2: Count round complexity vs the interval promise T at fixed N.
//
// Prior exact algorithms *use* T to shrink their Ω(N²) term (the census
// baseline's O(N + N²/T) curve should fall as T grows); the hjswy suite is
// already sublinear at T = 1, 2 and stays essentially flat — this is the
// abstract's "previous sublinear algorithms require significantly larger T".
#include <iostream>

#include "bench_common.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n = static_cast<graph::NodeId>(
      flags.GetInt("n", 192, "node count (census baseline runs at every T)"));
  const auto ts = flags.GetIntList("T", {1, 2, 4, 8, 16, 32, 64},
                                   "interval promises to sweep");
  const int trials = static_cast<int>(flags.GetInt("trials", 3, "seeds"));
  const std::string kind =
      flags.GetString("adversary", "spine-gnp", "adversary kind");
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_f2_count_vs_t")) return 0;
  BenchManifest().Set("experiment", "f2_count_vs_t");
  BenchManifest().Set("trials", trials);
  BenchManifest().Set("adversary", kind);

  PrintBanner(
      "F2: Count rounds vs T (fixed N=" + std::to_string(n) + ")",
      "klo-census-T should improve ~1/T toward its O(N) floor; hjswy stays "
      "flat and below it already at constant T.");

  util::Table table({"T", "klo-census-T", "hjswy-est", "hjswy-census",
                     "speedup vs T=1"});
  double census_t1 = 0.0;
  for (const std::int64_t T : ts) {
    RunConfig config;
    config.n = n;
    config.T = static_cast<int>(T);
    config.adversary.kind = kind;

    const Aggregate census =
        Measure(Algorithm::kKloCensusT, config, trials, threads);
    config.recorder = tracer.Attach();  // first hjswy-est cell only
    const Aggregate est =
        Measure(Algorithm::kHjswyEstimate, config, trials, threads);
    config.recorder = nullptr;
    const Aggregate cen =
        Measure(Algorithm::kHjswyCensus, config, trials, threads);
    if (T == ts.front()) census_t1 = RoundsPoint(census);
    table.AddRow(
        {std::to_string(T), RoundsCell(census), RoundsCell(est),
         RoundsCell(cen),
         census.truncated > 0
             ? "-"
             : util::Table::Num(
                   census_t1 / std::max(1.0, census.rounds.median), 2) +
                   "x"});
  }
  Finish(table, "f2_count_vs_t.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = n;
    config.T = static_cast<int>(ts.back());
    config.adversary.kind = kind;
    ExportRepresentative(metrics, Algorithm::kHjswyEstimate, config);
  }
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
