// F5: crossover — how much stability T each exact algorithm needs before its
// round complexity drops to (a) within a constant factor of linear (8·N
// rounds) and (b) below the linear known-N flooding bound (N-1 rounds).
//
// Prior exact counting pays Θ(N²/T): it needs T growing with N just to get
// near-linear, and with this implementation's constants it never beats the
// N-1 line at all. The hjswy suite meets both targets at a *constant* T once
// N is past its fixed phase overhead — the abstract's comparative claim
// ("previous sublinear algorithms require significantly larger T values") in
// one table.
#include <iostream>

#include "bench_common.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

/// One sweep over `ts` per algorithm; stops early once the smaller target
/// is also reached. Returns the smallest T beating each target (-1 = none).
struct Crossovers {
  std::int64_t near_linear = -1;
  std::int64_t linear = -1;
};

Crossovers Sweep(Algorithm algorithm, graph::NodeId n,
                 const std::vector<std::int64_t>& ts, double near_target,
                 double linear_target, const std::string& kind, int trials,
                 int threads) {
  Crossovers x;
  for (const std::int64_t T : ts) {
    RunConfig config;
    config.n = n;
    config.T = static_cast<int>(T);
    config.adversary.kind = kind;
    const Aggregate agg = Measure(algorithm, config, trials, threads);
    if (agg.failures != 0 || agg.truncated != 0) continue;
    if (x.near_linear < 0 && agg.rounds.median < near_target) {
      x.near_linear = T;
    }
    if (x.linear < 0 && agg.rounds.median < linear_target) x.linear = T;
    if (x.near_linear >= 0 && x.linear >= 0) break;
  }
  return x;
}

std::string Cell(std::int64_t T, const std::vector<std::int64_t>& ts) {
  std::string out = T < 0 ? ">" : "T=";
  out += std::to_string(T < 0 ? ts.back() : T);
  return out;
}

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto ns = flags.GetIntList("n", {64, 128, 256}, "node counts");
  const auto ts = flags.GetIntList("T", {1, 2, 4, 8, 16, 32, 64, 128, 256},
                                   "candidate T values");
  const int trials = static_cast<int>(flags.GetInt("trials", 2, "seeds"));
  const std::string kind =
      flags.GetString("adversary", "spine-gnp", "adversary kind");
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_f5_crossover")) return 0;
  BenchManifest().Set("experiment", "f5_crossover");
  BenchManifest().Set("trials", trials);
  BenchManifest().Set("adversary", kind);

  PrintBanner(
      "F5: stability T needed to reach near-linear (8N) and sublinear (N-1) "
      "round complexity",
      "klo-census-T's near-linear crossover T grows with N and it never "
      "reaches the N-1 line; hjswy reaches both at constant T once N "
      "exceeds its fixed phase overhead.");

  util::Table table({"N", "census-T: <8N", "census-T: <N-1", "hjswy: <8N",
                     "hjswy: <N-1", "hjswy rounds @T=2"});
  for (const std::int64_t n : ns) {
    const auto node_count = static_cast<graph::NodeId>(n);
    const double near_linear = 8.0 * static_cast<double>(n);
    const double linear = static_cast<double>(n - 1);

    const Crossovers census = Sweep(Algorithm::kKloCensusT, node_count, ts,
                                    near_linear, linear, kind, trials, threads);
    const Crossovers hjswy = Sweep(Algorithm::kHjswyCensus, node_count, ts,
                                   near_linear, linear, kind, trials, threads);
    RunConfig at2;
    at2.n = node_count;
    at2.T = 2;
    at2.adversary.kind = kind;
    at2.recorder = tracer.Attach();  // first @T=2 cell only
    const Aggregate hjswy2 =
        Measure(Algorithm::kHjswyCensus, at2, trials, threads);

    table.AddRow({std::to_string(n), Cell(census.near_linear, ts),
                  Cell(census.linear, ts), Cell(hjswy.near_linear, ts),
                  Cell(hjswy.linear, ts), RoundsCell(hjswy2)});
  }
  Finish(table, "f5_crossover.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(ns.back());
    config.T = 2;
    config.adversary.kind = kind;
    ExportRepresentative(metrics, Algorithm::kHjswyCensus, config);
  }
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
