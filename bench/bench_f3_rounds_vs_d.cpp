// F3: hjswy round complexity vs the dynamic flooding time d, at several N.
//
// The reconstruction's complexity is parameterized by d, not N: on static
// path-of-cliques topologies (diameter dialed by the clique count, N held
// fixed by the clique size) the decision round should grow ~linearly in the
// measured d and be nearly independent of N. The last rows report the
// rounds-vs-d log-log slope per N.
#include <iostream>
#include <memory>

#include "adversary/static_adversary.hpp"
#include "algo/hjswy.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "net/engine.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace sdn::bench {
namespace {

struct Point {
  double d = 0.0;
  double rounds = 0.0;
  bool truncated = false;
};

Point MeasureCliques(graph::NodeId cliques, graph::NodeId clique_size, int T,
                     int trials, int threads,
                     obs::FlightRecorder* recorder = nullptr) {
  const graph::NodeId n = cliques * clique_size;
  std::vector<double> rounds;
  double d = 0.0;
  bool truncated = false;
  for (int trial = 1; trial <= trials; ++trial) {
    adversary::StaticAdversary adv(graph::PathOfCliques(cliques, clique_size),
                                   T);
    algo::HjswyOptions options;
    options.T = T;
    options.exact_census = true;
    util::Rng base(static_cast<std::uint64_t>(trial) * 977);
    std::vector<algo::HjswyProgram> nodes;
    for (graph::NodeId u = 0; u < n; ++u) {
      nodes.emplace_back(u, static_cast<algo::Value>(u), options,
                         base.Fork(static_cast<std::uint64_t>(u)));
    }
    net::EngineOptions opts;
    opts.validate_tinterval = true;  // certification is the shipped config
    opts.threads = threads;
    if (trial == 1) opts.recorder = recorder;  // single-consumer sink
    net::Engine<algo::HjswyProgram> engine(std::move(nodes), adv, opts);
    const net::RunStats stats = engine.Run();
    rounds.push_back(static_cast<double>(stats.rounds));
    truncated = truncated || stats.hit_max_rounds;
    d = static_cast<double>(stats.flooding.max_rounds);
  }
  return {d, util::Summarize(rounds).median, truncated};
}

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto clique_counts = flags.GetIntList(
      "cliques", {2, 4, 8, 16, 32, 64}, "path-of-cliques lengths (dials d)");
  const auto clique_sizes =
      flags.GetIntList("size", {4, 16, 64}, "clique sizes (dials N at fixed d)");
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const int trials = static_cast<int>(flags.GetInt("trials", 3, "seeds"));
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_f3_rounds_vs_d")) return 0;
  BenchManifest().Set("experiment", "f3_rounds_vs_d");
  BenchManifest().Set("trials", trials);

  PrintBanner("F3: hjswy rounds vs dynamic flooding time d",
              "Rows sweep d (clique-chain length); columns sweep N at fixed "
              "d. Rounds must track d (slope ~1 in d) and move little with "
              "N (columns nearly equal).");

  std::vector<std::string> header = {"cliques"};
  for (const std::int64_t size : clique_sizes) {
    header.push_back("d(m=" + std::to_string(size) + ")");
    header.push_back("rounds(m=" + std::to_string(size) + ")");
  }
  util::Table table(header);

  std::vector<std::vector<double>> ds(clique_sizes.size());
  std::vector<std::vector<double>> rounds(clique_sizes.size());
  for (const std::int64_t cliques : clique_counts) {
    std::vector<std::string> row = {std::to_string(cliques)};
    for (std::size_t i = 0; i < clique_sizes.size(); ++i) {
      const Point p =
          MeasureCliques(static_cast<graph::NodeId>(cliques),
                         static_cast<graph::NodeId>(clique_sizes[i]), T,
                         trials, threads, tracer.Attach());
      row.push_back(util::Table::Num(p.d, 0));
      row.push_back(p.truncated ? "(truncated)"
                                : util::Table::Num(p.rounds, 0));
      ds[i].push_back(p.d);
      rounds[i].push_back(p.truncated ? 0.0 : p.rounds);
    }
    table.AddRow(row);
  }
  std::vector<std::string> slopes = {"d^b fit"};
  for (std::size_t i = 0; i < clique_sizes.size(); ++i) {
    slopes.push_back("");
    slopes.push_back("b=" + util::Table::Num(util::LogLogSlope(ds[i], rounds[i]), 2));
  }
  table.AddRow(slopes);
  Finish(table, "f3_rounds_vs_d.csv");
  tracer.Write();
  if (metrics.active()) {
    // Representative exposition run: the largest swept cell, rerun once
    // with the full observability plane (this bench drives the engine
    // directly, so no RunConfig path exists to reuse).
    const auto cliques = static_cast<graph::NodeId>(clique_counts.back());
    const auto size = static_cast<graph::NodeId>(clique_sizes.back());
    adversary::StaticAdversary adv(graph::PathOfCliques(cliques, size), T);
    algo::HjswyOptions options;
    options.T = T;
    options.exact_census = true;
    util::Rng base(977);
    std::vector<algo::HjswyProgram> nodes;
    for (graph::NodeId u = 0; u < cliques * size; ++u) {
      nodes.emplace_back(u, static_cast<algo::Value>(u), options,
                         base.Fork(static_cast<std::uint64_t>(u)));
    }
    net::EngineOptions opts;
    opts.validate_tinterval = true;
    opts.threads = threads;
    opts.collect_metrics = true;
    net::Engine<algo::HjswyProgram> engine(std::move(nodes), adv, opts);
    metrics.Write(engine.Run());
  }
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
