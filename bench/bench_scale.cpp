// Scale benchmark: million-node rounds (docs/PERF.md "Scale").
//
// Sweeps n from 2^10 to 2^20 on the reference workload shape (hjswy,
// spine-gnp, T=2, probes off) and records, per n: rounds/sec, process peak
// RSS, and the MemoryBudget byte accounting (sketch pool, outbox, programs,
// topology) that makes "bytes/node" an auditable number instead of a
// ballpark. Large-n runs are round-capped — the figure is steady-state
// engine throughput, not time-to-decide (which the T1 sweep owns); capped
// rows are marked `"decided": false` so nobody reads them as convergence.
//
// Output: results/scale.csv (human table mirror), BENCH_scale.json (the
// full record), and the same sweep merged into BENCH_engine.json under
// "scale_sweep" when that file exists (bench_a9_micro writes it first in
// the CI recording recipe). --smoke runs the single n=65536 row the CI
// scale-smoke job gates on (RSS ceiling + rounds/sec floor).
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/check.hpp"

namespace sdn {
namespace {

struct ScaleRow {
  graph::NodeId n = 0;
  net::RunStats stats;
  std::int64_t peak_rss_bytes = 0;
  std::int64_t accounted_peak_bytes = 0;  // MemoryBudget::TotalPeakBytes
  std::vector<net::MemoryUse> memory;
};

/// Kernel-reported peak resident set of this process (monotone within a
/// process, so an ascending-n sweep attributes each reading to the largest
/// n so far — exactly the row it is recorded against).
std::int64_t PeakRssBytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;  // KB on Linux
}

/// Round cap for the throughput measurement: enough rounds for the adaptive
/// delivery arm to settle (warmup 3 + reprobes) at every n, small enough
/// that the 2^20 row finishes in minutes on one core. Small n runs long
/// enough to be timer-stable; decided runs end early on their own.
std::int64_t RoundCap(graph::NodeId n, std::int64_t override_cap) {
  if (override_cap > 0) return override_cap;
  return std::clamp<std::int64_t>((std::int64_t{1} << 21) / n, 16, 256);
}

ScaleRow MeasureOne(graph::NodeId n, std::int64_t rounds_cap, int threads,
                    bool collect_metrics) {
  util::MemoryBudget budget;
  RunConfig config;
  config.n = n;
  config.T = 2;
  config.seed = 42;
  config.adversary.kind = "spine-gnp";
  config.flood_probes = 0;
  config.max_rounds = rounds_cap;
  config.threads = threads;
  config.memory_budget = &budget;
  config.collect_metrics = collect_metrics;  // anomaly plane rides along
  const RunResult result = RunAlgorithm(Algorithm::kHjswyEstimate, config);

  ScaleRow row;
  row.n = n;
  row.stats = result.stats;
  row.peak_rss_bytes = PeakRssBytes();
  row.accounted_peak_bytes = budget.TotalPeakBytes();
  for (const util::MemoryBudget::Entry& e : budget.Snapshot()) {
    row.memory.push_back({e.subsystem, e.current_bytes, e.peak_bytes});
  }
  return row;
}

std::string SweepJson(const std::vector<ScaleRow>& rows) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& row = rows[i];
    const double rps = row.stats.timings.RoundsPerSec(row.stats.rounds);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"n\": %lld, \"rounds\": %lld, \"decided\": %s, "
        "\"rounds_per_sec\": %.2f, \"edges_per_sec\": %.0f, "
        "\"messages_delivered\": %lld,\n     \"peak_rss_bytes\": %lld, "
        "\"accounted_peak_bytes\": %lld, \"bytes_per_node\": %.1f",
        static_cast<long long>(row.n),
        static_cast<long long>(row.stats.rounds),
        row.stats.hit_max_rounds ? "false" : "true", rps,
        row.stats.timings.EdgesPerSec(row.stats.edges_processed),
        static_cast<long long>(row.stats.messages_delivered),
        static_cast<long long>(row.peak_rss_bytes),
        static_cast<long long>(row.accounted_peak_bytes),
        static_cast<double>(row.accounted_peak_bytes) /
            static_cast<double>(row.n));
    out += buf;
    out += ",\n     \"subsystem_peak_bytes\": {";
    for (std::size_t m = 0; m < row.memory.size(); ++m) {
      std::snprintf(buf, sizeof(buf), "%s\"%s\": %lld",
                    m == 0 ? "" : ", ", row.memory[m].subsystem.c_str(),
                    static_cast<long long>(row.memory[m].peak_bytes));
      out += buf;
    }
    out += "}}";
    out += i + 1 < rows.size() ? ",\n" : "\n";
  }
  out += "  ]";
  return out;
}

/// Splices `sweep_json` into an existing BENCH_engine.json as a trailing
/// "scale_sweep" key (replacing a previous one — it is always spliced
/// last, so everything from its leading comma to the closing brace is the
/// old sweep). Returns false when the file is absent or unparseable; the
/// standalone BENCH_scale.json is the authoritative record either way.
bool MergeIntoEngineJson(const std::string& sweep_json) {
  std::ifstream in("BENCH_engine.json");
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  std::size_t cut = text.find(",\n  \"scale_sweep\"");
  if (cut == std::string::npos) {
    cut = text.rfind('}');
    if (cut == std::string::npos) return false;
  }
  text.erase(cut);
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == ' ' || text.back() == '\r')) {
    text.pop_back();
  }
  std::ofstream out("BENCH_engine.json");
  if (!out) return false;
  out << text << ",\n  \"scale_sweep\": " << sweep_json << "\n}\n";
  return static_cast<bool>(out);
}

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const bool smoke = flags.GetBool(
      "smoke", false, "run only the n=65536 row the CI scale-smoke job gates");
  const auto max_exp = flags.GetInt(
      "max-exp", 20, "largest n as a power of two (sweep is 2^10..2^max-exp)");
  const auto rounds_override = flags.GetInt(
      "rounds", 0, "round cap per run; 0 = auto (16..256, shrinking with n)");
  const int threads = static_cast<int>(flags.GetInt(
      "threads", 1, "EngineOptions::threads (1 = the serial reference)"));
  // CI's scale-smoke job asserts the exposition's sdn_memory_bytes series
  // against BENCH_scale.json, so --smoke records one by default.
  const std::string metrics_out = flags.GetString(
      "metrics-out", smoke ? "metrics_scale_smoke.txt" : "",
      "write an OpenMetrics exposition of the last measured row");
  if (bench::HelpRequested(flags, "bench_scale")) return 0;

  bench::PrintBanner(
      "scale",
      "Engine throughput and memory footprint vs n (hjswy spine-gnp T=2): "
      "rounds/sec, peak RSS, and audited bytes/node up to n=2^20.");

  std::vector<graph::NodeId> sizes;
  if (smoke) {
    sizes.push_back(65536);
  } else {
    for (int e = 10; e <= max_exp; e += 2) {
      sizes.push_back(graph::NodeId{1} << e);
    }
  }

  std::vector<ScaleRow> rows;
  util::Table table({"n", "rounds", "rounds/s", "edges/s", "peak RSS MB",
                     "accounted MB", "bytes/node", "decided"});
  for (const graph::NodeId n : sizes) {
    const std::int64_t cap = RoundCap(n, rounds_override);
    std::printf("n=%lld (round cap %lld)...\n", static_cast<long long>(n),
                static_cast<long long>(cap));
    std::fflush(stdout);
    rows.push_back(MeasureOne(n, cap, threads, !metrics_out.empty()));
    const ScaleRow& row = rows.back();
    table.AddRow(
        {std::to_string(n), std::to_string(row.stats.rounds),
         util::Table::Num(row.stats.timings.RoundsPerSec(row.stats.rounds), 1),
         util::Table::Num(
             row.stats.timings.EdgesPerSec(row.stats.edges_processed), 0),
         util::Table::Num(
             static_cast<double>(row.peak_rss_bytes) / (1024.0 * 1024.0), 1),
         util::Table::Num(static_cast<double>(row.accounted_peak_bytes) /
                              (1024.0 * 1024.0),
                          1),
         util::Table::Num(static_cast<double>(row.accounted_peak_bytes) /
                              static_cast<double>(row.n),
                          1),
         row.stats.hit_max_rounds ? "no (capped)" : "yes"});
  }
  bench::Finish(table, "scale.csv");

  obs::RunManifest& manifest = bench::BenchManifest();
  manifest.Set("experiment", "scale");
  manifest.Set("workload", "hjswy spine-gnp T=2 seed=42 probes=0");
  const std::string sweep_json = SweepJson(rows);
  std::FILE* f = std::fopen("BENCH_scale.json", "w");
  SDN_CHECK_MSG(f != nullptr, "BENCH_scale.json: cannot open for writing");
  std::fprintf(f,
               "{\n  \"manifest\": %s,\n"
               "  \"workload\": {\"algorithm\": \"hjswy\", \"adversary\": "
               "\"spine-gnp\", \"T\": 2, \"seed\": 42, \"flood_probes\": 0, "
               "\"threads\": %d,\n               \"selection\": \"single run "
               "per n, round-capped; rounds_per_sec is steady-state engine "
               "throughput, not time-to-decide\"},\n"
               "  \"scale_sweep\": %s\n}\n",
               manifest.ToJson().c_str(), threads, sweep_json.c_str());
  std::fclose(f);
  std::printf("wrote BENCH_scale.json\n");
  if (!metrics_out.empty() && !rows.empty()) {
    const net::RunStats& last = rows.back().stats;
    std::vector<obs::MemorySeries> series;
    series.reserve(last.memory.size());
    for (const net::MemoryUse& m : last.memory) {
      series.push_back({m.subsystem, m.current_bytes, m.peak_bytes});
    }
    if (obs::WriteOpenMetrics(metrics_out, last.metrics, series,
                              last.anomalies)) {
      std::printf("wrote %s\n", metrics_out.c_str());
    } else {
      std::printf("cannot write %s\n", metrics_out.c_str());
    }
  }
  if (MergeIntoEngineJson(sweep_json)) {
    std::printf("merged scale_sweep into BENCH_engine.json\n");
  } else {
    std::printf(
        "BENCH_engine.json absent or unreadable; scale_sweep not merged "
        "(run bench_a9_micro first to create it)\n");
  }
  return 0;
}

}  // namespace
}  // namespace sdn

int main(int argc, char** argv) { return sdn::Main(argc, argv); }
