// A9: microbenchmarks (google-benchmark) — simulator throughput and the
// hot-path data structures. These are engineering numbers (rounds/sec,
// merges/sec), not model results; they bound how large the T1/F7 sweeps can
// go on one machine.
//
// Besides the google-benchmark suite, main() first runs one fixed reference
// workload (hjswy, N=1024, StableSpine gnp, T=2) through the engine timing
// layer, prints the per-phase breakdown, and writes it as machine-readable
// BENCH_engine.json next to the cwd — with the recorded pre-zero-copy
// baseline so the speedup is tracked run over run (docs/PERF.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "adversary/factory.hpp"
#include "algo/estimator.hpp"
#include "algo/flood_max.hpp"
#include "algo/hjswy.hpp"
#include "algo/idset.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "net/engine.hpp"
#include "obs/anomaly.hpp"
#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn {
namespace {

void BM_EngineFloodRound(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  for (auto _ : state) {
    adversary::AdversaryConfig config;
    config.kind = "spine-gnp";
    config.n = n;
    config.T = 2;
    const auto adv = adversary::MakeAdversary(config);
    std::vector<algo::FloodMaxKnownN> nodes;
    for (graph::NodeId u = 0; u < n; ++u) nodes.emplace_back(u, n, u);
    net::EngineOptions opts;
    opts.validate_tinterval = true;  // certification is the shipped config
    opts.flood_probes = 0;
    net::Engine<algo::FloodMaxKnownN> engine(std::move(nodes), *adv, opts);
    const net::RunStats stats = engine.Run();
    state.counters["rounds"] = static_cast<double>(stats.rounds);
  }
  state.SetItemsProcessed(state.iterations() * (n - 1) * n);  // node-rounds
}
BENCHMARK(BM_EngineFloodRound)->Arg(64)->Arg(256)->Arg(1024);

void BM_HjswyFullRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    adversary::AdversaryConfig config;
    config.kind = "spine-gnp";
    config.n = n;
    config.T = 2;
    config.seed = ++seed;
    const auto adv = adversary::MakeAdversary(config);
    algo::HjswyOptions options;
    options.T = 2;
    options.exact_census = true;
    util::Rng base(seed);
    std::vector<algo::HjswyProgram> nodes;
    for (graph::NodeId u = 0; u < n; ++u) {
      nodes.emplace_back(u, u, options, base.Fork(static_cast<std::uint64_t>(u)));
    }
    net::EngineOptions opts;
    opts.validate_tinterval = true;  // certification is the shipped config
    net::Engine<algo::HjswyProgram> engine(std::move(nodes), *adv, opts);
    benchmark::DoNotOptimize(engine.Run().rounds);
  }
}
BENCHMARK(BM_HjswyFullRun)->Arg(64)->Arg(256)->Arg(1024);

void BM_IdSetUnion(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(7);
  algo::IdSet a;
  algo::IdSet b;
  for (graph::NodeId i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) a.Insert(i);
    if (rng.Bernoulli(0.5)) b.Insert(i);
  }
  for (auto _ : state) {
    algo::IdSet c = a;
    benchmark::DoNotOptimize(c.UnionWith(b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IdSetUnion)->Arg(1024)->Arg(16384);

void BM_EstimatorMerge(benchmark::State& state) {
  const auto L = static_cast<int>(state.range(0));
  util::Rng rng(9);
  algo::CardinalityEstimator a(L, rng);
  const algo::CardinalityEstimator b(L, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Merge(b.mins()));
  }
  state.SetItemsProcessed(state.iterations() * L);
}
BENCHMARK(BM_EstimatorMerge)->Arg(16)->Arg(64)->Arg(256);

void BM_SpineGeneration(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  util::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::RandomExpander(n, 2, rng).num_edges());
  }
}
BENCHMARK(BM_SpineGeneration)->Arg(256)->Arg(4096);

void BM_TIntervalValidation(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  adversary::AdversaryConfig config;
  config.kind = "spine-rtree";
  config.n = n;
  config.T = 4;
  const auto adv = adversary::MakeAdversary(config);

  class NullView final : public net::AdversaryView {
   public:
    [[nodiscard]] std::int64_t round() const override { return 1; }
    [[nodiscard]] double PublicState(graph::NodeId) const override {
      return 0;
    }
    [[nodiscard]] graph::NodeId num_nodes() const override { return 0; }
  } view;

  std::vector<graph::Graph> window;
  for (std::int64_t r = 1; r <= 4; ++r) {
    window.push_back(adv->TopologyFor(r, view));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::IsConnected(graph::EdgeIntersection(window)));
  }
}
BENCHMARK(BM_TIntervalValidation)->Arg(256)->Arg(2048);

/// rounds/sec of the identical workload measured on the pre-zero-copy engine
/// (shared_ptr-free but copying delivery, sort-on-construct topologies).
/// Re-measure with docs/PERF.md's recipe when the reference hardware changes.
constexpr double kBaselineRoundsPerSec = 512.3;

/// rounds/sec of the same workload on the zero-copy engine before the
/// parallel round phases landed (single-threaded by construction). The
/// threads sweep below reports its speedup against this figure.
constexpr double kPr1SingleThreadRoundsPerSec = 949.4;

/// Combined send+deliver time of the identical serial workload recorded by
/// PR 3's bench run (BENCH_engine.json history): the message-path overhaul's
/// acceptance bar is >= 1.8x against this sum.
constexpr std::int64_t kPr3SendNs = 13'516'751;
constexpr std::int64_t kPr3DeliverNs = 49'017'393;

/// Combined send+deliver time of the identical serial workload recorded by
/// PR 4's bench runs, after the timing partition narrowed send/deliver to
/// the ForShards barrier windows (merges now land in `other`). Recorded at
/// the noisy end of the observed spread (best-of-3 ranged 22.7-29.9 ms on
/// the loaded reference box) so the CI gate — untraced within 3% of this
/// figure, traced within 2x of untraced — trips on regressions, not jitter.
constexpr std::int64_t kPr4SendPlusDeliverNs = 28'000'000;

/// Combined send+deliver of the identical serial workload recorded by PR 5's
/// bench run (6.25 ms send + 21.86 ms deliver; BENCH_engine.json history).
/// PR 6 (SIMD deliver kernels, direct-send outbox, outbox prefetch,
/// measured adaptive backing) gates >= 1.3x against this sum.
constexpr std::int64_t kPr5SendPlusDeliverNs = 28'112'415;

/// Headline rounds/sec of the identical serial workload recorded by PR 7's
/// bench run (best of 3; BENCH_engine.json history). PR 8 (SoA sketch pool,
/// arena outbox, per-shard delivery arms) gates >= 1.0x against it: the
/// scale work must not regress the reference workload.
constexpr double kPr7RoundsPerSec = 2862.3;

/// The fixed reference workload: one full hjswy run, N=1024, spine-gnp, T=2,
/// probes off; T-interval validation ON by default (the recorded figures
/// are certified runs — the certification A/B below measures what that
/// costs). `threads` is EngineOptions::threads (1 = serial reference;
/// results are bit-identical at every setting), `incremental` toggles the
/// delta-driven topology path and `delivery` the Inbox backing policy
/// (both A/B'd below — results are bit-identical there too). `overlaps`
/// drives all three pipelining toggles (prefetch_topology,
/// async_certification, fused_send_deliver) as one switch for the pipeline
/// A/B; results are bit-identical either way (the determinism suite pins
/// it). `collect_metrics`/`anomaly` drive the observability plane for the
/// anomaly A/B (both arms carry the registry; only the anomaly engine
/// differs) — bit-identical again, same pin.
net::RunStats TimedReferenceRun(
    int threads, bool incremental = true,
    net::DeliveryMode delivery = net::DeliveryMode::kAdaptive,
    obs::FlightRecorder* recorder = nullptr, bool validate = true,
    bool pooled = true, bool overlaps = true, bool collect_metrics = false,
    bool anomaly = false,
    const obs::AnomalyOptions* anomaly_options = nullptr) {
  const graph::NodeId n = 1024;
  adversary::AdversaryConfig config;
  config.kind = "spine-gnp";
  config.n = n;
  config.T = 2;
  config.seed = 42;
  const auto adv = adversary::MakeAdversary(config);
  algo::HjswyOptions options;
  options.T = 2;
  // The pool outlives the engine (declared first): programs hold raw
  // pointers into it. `pooled` false is the per-node A/B arm.
  algo::SketchPool pool(static_cast<std::size_t>(n),
                        algo::HjswyProgram::RequiredPoolColumns(options));
  util::Rng base(42);
  std::vector<algo::HjswyProgram> nodes;
  for (graph::NodeId u = 0; u < n; ++u) {
    nodes.emplace_back(u, u, options, base.Fork(static_cast<std::uint64_t>(u)),
                       pooled ? &pool : nullptr);
  }
  net::EngineOptions opts;
  opts.validate_tinterval = validate;
  opts.flood_probes = 0;
  opts.threads = threads;
  opts.incremental_topology = incremental;
  opts.delivery = delivery;
  opts.recorder = recorder;
  opts.prefetch_topology = overlaps;
  opts.async_certification = overlaps;
  opts.fused_send_deliver = overlaps;
  opts.collect_metrics = collect_metrics;
  opts.anomaly = anomaly;
  if (anomaly_options != nullptr) opts.anomaly_options = *anomaly_options;
  net::Engine<algo::HjswyProgram> engine(std::move(nodes), *adv, opts);
  return engine.Run();
}

/// `reps` timed runs of one configuration: the best rep (by rounds/sec, the
/// figure the trend line tracks) plus the median rounds/sec, reported
/// alongside so a lucky best rep is visible as such.
struct RepSet {
  net::RunStats best;
  double median_rps = 0.0;
};

RepSet MeasuredRuns(int threads, bool incremental = true, int reps = 3) {
  RepSet out;
  double best_rps = -1.0;
  std::vector<double> rps_all;
  for (int rep = 0; rep < reps; ++rep) {
    const net::RunStats stats = TimedReferenceRun(threads, incremental);
    const double rps = stats.timings.RoundsPerSec(stats.rounds);
    rps_all.push_back(rps);
    if (rps > best_rps) {
      best_rps = rps;
      out.best = stats;
    }
  }
  std::sort(rps_all.begin(), rps_all.end());
  const std::size_t mid = rps_all.size() / 2;
  out.median_rps = rps_all.size() % 2 == 1
                       ? rps_all[mid]
                       : 0.5 * (rps_all[mid - 1] + rps_all[mid]);
  return out;
}

/// Best-of-`reps` by rounds/sec at a fixed thread count.
net::RunStats BestRun(int threads, bool incremental = true, int reps = 3) {
  return MeasuredRuns(threads, incremental, reps).best;
}

using StatFn = std::function<std::int64_t(const net::RunStats&)>;

/// Index of the median rep by `stat` (reps is odd in every caller, so this
/// is the true median).
std::size_t MedianIndex(const std::vector<net::RunStats>& runs,
                        const StatFn& stat) {
  std::vector<std::size_t> order(runs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return stat(runs[x]) < stat(runs[y]);
  });
  return order[order.size() / 2];
}

/// Honest A/B: the median rep of each arm, measured over `reps`
/// *interleaved* pairs (A then B back to back, so both arms sample the same
/// machine state across the session). The pre-PR 6 version of this file
/// compared each arm's best rep selected across different moments of a
/// loaded box — one quiet rep on either side could manufacture a speedup or
/// a regression (it recorded topology_speedup 0.90 for a path that measures
/// 1.1x when paired). Medians of paired reps cannot be gamed that way.
struct ABResult {
  net::RunStats a;         // median rep of arm A (the legacy arm)
  net::RunStats b;         // median rep of arm B (the candidate arm)
  double speedup = 0.0;    // stat(a) / stat(b): > 1 means B wins
};

ABResult PairedAB(const std::function<net::RunStats()>& run_a,
                  const std::function<net::RunStats()>& run_b,
                  const StatFn& stat, int reps = 3) {
  std::vector<net::RunStats> a;
  std::vector<net::RunStats> b;
  for (int rep = 0; rep < reps; ++rep) {
    a.push_back(run_a());
    b.push_back(run_b());
  }
  ABResult out;
  out.a = a[MedianIndex(a, stat)];
  out.b = b[MedianIndex(b, stat)];
  out.speedup = static_cast<double>(std::max<std::int64_t>(1, stat(out.a))) /
                static_cast<double>(std::max<std::int64_t>(1, stat(out.b)));
  return out;
}

void ReportEngineTimings() {
  // Single-thread reference: the workload + fields PR 1 recorded, so the
  // serial-engine trend line stays comparable run over run.
  const RepSet reference = MeasuredRuns(/*threads=*/1);
  const net::RunStats& best = reference.best;
  const double best_rps = best.timings.RoundsPerSec(best.rounds);
  const double eps = best.timings.EdgesPerSec(best.edges_processed);
  std::printf("engine reference workload (hjswy n=1024 spine-gnp T=2, best of 3):\n  %s\n",
              best.timings.OneLine(best.rounds, best.edges_processed).c_str());
  std::printf("  baseline=%.1f rounds/s  speedup=%.2fx  median=%.1f rounds/s\n",
              kBaselineRoundsPerSec, best_rps / kBaselineRoundsPerSec,
              reference.median_rps);

  const StatFn topology_ns = [](const net::RunStats& s) {
    return s.timings.topology_ns;
  };
  const StatFn message_path_ns = [](const net::RunStats& s) {
    return std::max<std::int64_t>(1, s.timings.send_ns + s.timings.deliver_ns);
  };

  // Topology A/B: the identical serial workload on the legacy from-scratch
  // path vs the churn-adaptive incremental path (every other phase
  // untouched, so topology_ns is the whole difference; RunStats agree bit
  // for bit). Interleaved pairs, compared by medians — see PairedAB.
  const ABResult topo = PairedAB(
      [] { return TimedReferenceRun(/*threads=*/1, /*incremental=*/false); },
      [] { return TimedReferenceRun(/*threads=*/1, /*incremental=*/true); },
      topology_ns);
  std::printf(
      "topology A/B (serial, paired medians): scratch=%lld ns  "
      "incremental=%lld ns  speedup=%.2fx\n",
      static_cast<long long>(topo.a.timings.topology_ns),
      static_cast<long long>(topo.b.timings.topology_ns), topo.speedup);

  // Message-path A/B: the identical serial workload forced onto the legacy
  // per-receiver pointer gather vs the measured adaptive backing the engine
  // ships with (RunStats agree bit for bit; send+deliver is the whole
  // difference). Interleaved pairs, compared by medians. The vs-PR3 figure
  // tracks the combined send+deliver trend against PR 3's recorded message
  // path (gather delivery, per-coordinate merges, per-call Locate scans).
  const ABResult msg = PairedAB(
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kGather);
      },
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive);
      },
      message_path_ns);
  const double message_path_speedup = msg.speedup;
  const double message_path_speedup_vs_pr3 =
      static_cast<double>(kPr3SendNs + kPr3DeliverNs) /
      static_cast<double>(message_path_ns(msg.b));
  std::printf(
      "message path A/B (serial, paired medians): gather send+deliver=%lld ns"
      "  adaptive send+deliver=%lld ns  speedup=%.2fx  vs PR3 recorded=%.2fx\n",
      static_cast<long long>(message_path_ns(msg.a)),
      static_cast<long long>(message_path_ns(msg.b)), message_path_speedup,
      message_path_speedup_vs_pr3);

  // Tracing overhead A/B: the identical serial workload with and without a
  // flight recorder attached, both sides best-of-3 *by send+deliver* (the
  // gated statistic — `best` above is selected by rounds/sec, which lets a
  // noisy send+deliver slip through). The ratio is CI's overhead gate; the
  // best traced rep's recording is exported as the reference trace
  // artifacts next to BENCH_engine.json.
  std::int64_t untraced_sd_ns = message_path_ns(best);
  for (int rep = 0; rep < 3; ++rep) {
    untraced_sd_ns = std::min(untraced_sd_ns,
                              message_path_ns(TimedReferenceRun(/*threads=*/1)));
  }
  std::unique_ptr<obs::FlightRecorder> traced_rec;
  net::RunStats traced;
  for (int rep = 0; rep < 3; ++rep) {
    auto rec = std::make_unique<obs::FlightRecorder>();
    const net::RunStats s =
        TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                          net::DeliveryMode::kAdaptive, rec.get());
    if (traced_rec == nullptr || message_path_ns(s) < message_path_ns(traced)) {
      traced = s;
      traced_rec = std::move(rec);
    }
  }
  const std::int64_t traced_sd_ns = message_path_ns(traced);
  const double trace_overhead_ratio =
      static_cast<double>(traced_sd_ns) / static_cast<double>(untraced_sd_ns);
  const double message_path_speedup_vs_pr4 =
      static_cast<double>(kPr4SendPlusDeliverNs) /
      static_cast<double>(untraced_sd_ns);
  const double message_path_speedup_vs_pr5 =
      static_cast<double>(kPr5SendPlusDeliverNs) /
      static_cast<double>(untraced_sd_ns);
  std::printf(
      "tracing A/B (serial): untraced send+deliver=%lld ns  "
      "traced=%lld ns  overhead=%.2fx  vs PR4 recorded=%.2fx  "
      "vs PR5 recorded=%.2fx\n",
      static_cast<long long>(untraced_sd_ns),
      static_cast<long long>(traced_sd_ns), trace_overhead_ratio,
      message_path_speedup_vs_pr4, message_path_speedup_vs_pr5);

  // Certification A/B: the identical serial workload with the streaming
  // T-interval checker off vs on (everything else fixed: incremental,
  // adaptive delivery, no recorder). The validated arm rides the
  // adversary's composition claim — spine witnesses certify windows, no
  // per-round delta — so the whole-run overhead is the honest price of
  // always-on certification. Interleaved pairs, compared by medians of
  // total_ns (the checker touches topology and validate phases, so the
  // gated statistic is the whole step). CI gates the ratio.
  const StatFn run_total_ns = [](const net::RunStats& s) {
    return std::max<std::int64_t>(1, s.timings.total_ns);
  };
  const ABResult cert = PairedAB(
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/false);
      },
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true);
      },
      run_total_ns);
  const std::int64_t unvalidated_total_ns = run_total_ns(cert.a);
  const std::int64_t validated_total_ns = run_total_ns(cert.b);
  const double checker_ab_ratio =
      static_cast<double>(validated_total_ns) /
      static_cast<double>(unvalidated_total_ns);
  // The gated figure is the *within-run* marginal: on the composition path
  // the checker's entire cost lands in the validate phase (topology and
  // delivery are untouched — need_delta stays off), so
  // total / (total - validate) of one validated run is the overhead with
  // zero cross-run machine noise. The A/B ratio above is recorded too as
  // the empirical cross-check; on a loaded box it swings ±10% while the
  // marginal holds steady.
  const double checker_overhead_ratio =
      static_cast<double>(run_total_ns(cert.b)) /
      static_cast<double>(std::max<std::int64_t>(
          1, cert.b.timings.total_ns - cert.b.timings.validate_ns));
  SDN_CHECK_MSG(cert.b.tinterval_validated && cert.b.tinterval_ok,
                "reference workload failed certification");
  std::printf(
      "certification A/B (serial, paired medians): unvalidated total=%lld ns"
      "  validated total=%lld ns  ab=%.3fx  marginal overhead=%.3fx"
      "  certified_T=%lld\n",
      static_cast<long long>(unvalidated_total_ns),
      static_cast<long long>(validated_total_ns), checker_ab_ratio,
      checker_overhead_ratio, static_cast<long long>(cert.b.certified_T));

  // Sketch-pool A/B: the identical serial workload on the per-node sketch
  // layout (each estimator owns a std::vector<double>) vs the shared SoA
  // float32 pool the engine ships with (RunStats agree bit for bit — the
  // pin suite enforces it). Interleaved pairs, compared by medians of
  // total_ns: the layout touches send, deliver and program-state locality,
  // so the whole step is the honest statistic. The vs-PR7 figure is the
  // regression gate for the scale work: this process's headline rounds/sec
  // (pooled, best of 3) against PR 7's recorded 2862.3.
  const ABResult pool_ab = PairedAB(
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true, /*pooled=*/false);
      },
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true, /*pooled=*/true);
      },
      run_total_ns);
  const double sketch_pool_speedup = pool_ab.speedup;
  const double speedup_vs_pr7 = best_rps / kPr7RoundsPerSec;
  std::printf(
      "sketch pool A/B (serial, paired medians): per-node total=%lld ns  "
      "pooled total=%lld ns  speedup=%.2fx  headline vs PR7 recorded=%.2fx\n",
      static_cast<long long>(run_total_ns(pool_ab.a)),
      static_cast<long long>(run_total_ns(pool_ab.b)), sketch_pool_speedup,
      speedup_vs_pr7);

  obs::RunManifest manifest = obs::RunManifest::Collect();
  manifest.Set("experiment", "a9_micro");
  manifest.Set("workload", "hjswy n=1024 spine-gnp T=2 seed=42");
  manifest.Set("reps", 3);
  if (traced_rec->WriteChromeTrace("reference_trace.json", &manifest) &&
      traced_rec->WriteJsonl("reference_trace.jsonl", &manifest) &&
      manifest.WriteJson("reference_manifest.json")) {
    std::printf(
        "  wrote reference_trace.json / reference_trace.jsonl / "
        "reference_manifest.json (%llu events, %llu dropped)\n",
        static_cast<unsigned long long>(traced_rec->total_emitted()),
        static_cast<unsigned long long>(traced_rec->dropped()));
  } else {
    std::fprintf(stderr, "reference trace artifacts: cannot write\n");
  }

  // Threads sweep: same workload at growing EngineOptions::threads. The
  // serial row is re-measured (not reused) so every row saw the same
  // machine state; speedups are vs this process's own serial row. Counts
  // above the machine's concurrency are skipped (they would only measure
  // oversubscription noise) — except 2, kept as the minimal parallel
  // datapoint — and recorded as skipped in BENCH_engine.json. A measured
  // row that still exceeds the machine's concurrency (threads=2 on a
  // single-core box) is marked oversubscribed: its speedup figure measures
  // scheduler interleaving, not parallel scaling, and must not be read as
  // a scaling datapoint.
  struct SweepRow {
    int threads = 0;
    net::RunStats stats;
    bool oversubscribed = false;
  };
  std::vector<SweepRow> sweep;
  std::vector<int> skipped;
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("threads sweep (same workload; hardware_concurrency=%d):\n", hw);
  for (const int threads : {1, 2, 4, 8}) {
    if (threads > hw && threads != 2) {
      skipped.push_back(threads);
      std::printf("  threads=%d  skipped (> hardware_concurrency)\n", threads);
      continue;
    }
    sweep.push_back({threads, BestRun(threads), threads > hw});
    const net::RunStats& s = sweep.back().stats;
    const net::RunStats& serial = sweep.front().stats;
    std::printf(
        "  threads=%d  %.1f rounds/s  speedup=%.2fx  send=%.2fx  "
        "deliver=%.2fx%s\n",
        threads, s.timings.RoundsPerSec(s.rounds),
        s.timings.RoundsPerSec(s.rounds) /
            serial.timings.RoundsPerSec(serial.rounds),
        static_cast<double>(serial.timings.send_ns) /
            static_cast<double>(std::max<std::int64_t>(1, s.timings.send_ns)),
        static_cast<double>(serial.timings.deliver_ns) /
            static_cast<double>(
                std::max<std::int64_t>(1, s.timings.deliver_ns)),
        sweep.back().oversubscribed ? "  (oversubscribed)" : "");
  }
  if (std::any_of(sweep.begin(), sweep.end(),
                  [](const SweepRow& row) { return row.oversubscribed; })) {
    std::printf(
        "  caveat: rows marked (oversubscribed) ran more lanes than "
        "hardware_concurrency=%d — they measure scheduler interleaving, "
        "not parallel scaling\n",
        hw);
  }

  // Pipeline A/B: the same workload at threads=2 with every overlap off vs
  // all three on (prefetch_topology + async_certification +
  // fused_send_deliver). threads=2 is the minimal count where prefetch and
  // the async checker can engage; fusion is thread-independent, so the off
  // arm is the barriered phase engine and the on arm is the full pipeline.
  // Interleaved pairs, medians of total_ns — same discipline as the other
  // A/Bs. The aux_*_ns fields of the on arm report how much topology /
  // certification work ran concurrently with deliver (overlap won, not
  // just moved). On a box with hardware_concurrency < 2 the figure is
  // marked oversubscribed and must not be read as a pipelining speedup —
  // the multi-core CI job is where the gate lives.
  const int pipeline_threads = 2;
  const bool pipeline_oversubscribed = pipeline_threads > hw;
  const ABResult pipe = PairedAB(
      [] {
        return TimedReferenceRun(/*threads=*/2, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true, /*pooled=*/true,
                                 /*overlaps=*/false);
      },
      [] {
        return TimedReferenceRun(/*threads=*/2, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true, /*pooled=*/true,
                                 /*overlaps=*/true);
      },
      run_total_ns);
  const std::int64_t pipeline_off_total_ns = run_total_ns(pipe.a);
  const std::int64_t pipeline_on_total_ns = run_total_ns(pipe.b);
  const double pipeline_speedup = pipe.speedup;
  const std::int64_t pipeline_aux_topology_ns = pipe.b.timings.aux_topology_ns;
  const std::int64_t pipeline_aux_validate_ns = pipe.b.timings.aux_validate_ns;
  std::printf(
      "pipeline A/B (threads=2, paired medians): barriers total=%lld ns  "
      "pipelined total=%lld ns  speedup=%.3fx  overlapped topology=%lld ns  "
      "overlapped certification=%lld ns%s\n",
      static_cast<long long>(pipeline_off_total_ns),
      static_cast<long long>(pipeline_on_total_ns), pipeline_speedup,
      static_cast<long long>(pipeline_aux_topology_ns),
      static_cast<long long>(pipeline_aux_validate_ns),
      pipeline_oversubscribed ? "  (oversubscribed — not a scaling figure)"
                              : "");

  // Anomaly-plane A/B: the identical serial workload with metrics
  // collection on in both arms, anomaly engine off vs on (rolling
  // histograms, per-round rule evaluation, signal sampling; no recorder so
  // the dump path stays cold — that's the always-on configuration). The
  // ratio is the marginal price of the anomaly plane over bare metrics
  // collection. Interleaved pairs, medians of total_ns; CI gates the ratio
  // < 1.05 — same pattern as trace_overhead_ratio.
  const ABResult anom = PairedAB(
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true, /*pooled=*/true,
                                 /*overlaps=*/true, /*collect_metrics=*/true,
                                 /*anomaly=*/false);
      },
      [] {
        return TimedReferenceRun(/*threads=*/1, /*incremental=*/true,
                                 net::DeliveryMode::kAdaptive, nullptr,
                                 /*validate=*/true, /*pooled=*/true,
                                 /*overlaps=*/true, /*collect_metrics=*/true,
                                 /*anomaly=*/true);
      },
      run_total_ns);
  const std::int64_t anomaly_off_total_ns = run_total_ns(anom.a);
  const std::int64_t anomaly_on_total_ns = run_total_ns(anom.b);
  const double anomaly_overhead_ratio =
      static_cast<double>(anomaly_on_total_ns) /
      static_cast<double>(anomaly_off_total_ns);
  std::printf(
      "anomaly plane A/B (serial, paired medians, metrics on): plane off "
      "total=%lld ns  plane on total=%lld ns  overhead=%.3fx  fired=%lld\n",
      static_cast<long long>(anomaly_off_total_ns),
      static_cast<long long>(anomaly_on_total_ns), anomaly_overhead_ratio,
      static_cast<long long>(anom.b.anomalies.size()));

  std::FILE* f = std::fopen("BENCH_engine.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_engine.json: cannot open for writing\n");
    return;
  }
  std::fprintf(f, "{\n  \"manifest\": %s,\n", manifest.ToJson().c_str());
  std::fprintf(f,
               "  \"workload\": {\"algorithm\": \"hjswy\", \"n\": 1024, "
               "\"adversary\": \"spine-gnp\", \"T\": 2, \"seed\": 42,\n"
               "               \"validate_tinterval\": true, \"flood_probes\": 0, "
               "\"reps\": 3, \"selection\": "
               "\"headline best-of-reps; A/Bs medians of interleaved paired "
               "reps\"},\n"
               "  \"rounds\": %lld,\n"
               "  \"edges_processed\": %lld,\n"
               "  \"messages_delivered\": %lld,\n"
               "  \"rounds_per_sec\": %.1f,\n"
               "  \"rounds_per_sec_selection\": \"best of 3 reps — the "
               "optimistic trend-line headline, not a gating statistic\",\n"
               "  \"median_rounds_per_sec\": %.1f,\n"
               "  \"median_rounds_per_sec_selection\": \"median of the same "
               "3 reps — the noise-robust figure CI floors gate on\",\n"
               "  \"edges_per_sec\": %.0f,\n"
               "  \"baseline_rounds_per_sec\": %.1f,\n"
               "  \"speedup_vs_baseline\": %.2f,\n"
               "  \"median_speedup_vs_baseline\": %.2f,\n"
               "  \"pr1_single_thread_rounds_per_sec\": %.1f,\n"
               "  \"hardware_concurrency\": %d,\n"
               "  \"timings_ns\": {\"topology\": %lld, \"validate\": %lld, "
               "\"probe\": %lld, \"send\": %lld, \"deliver\": %lld, "
               "\"other\": %lld, \"total\": %lld},\n"
               "  \"topology_scratch_ns\": %lld,\n"
               "  \"topology_incremental_ns\": %lld,\n"
               "  \"topology_speedup\": %.2f,\n"
               "  \"send_gather_ns\": %lld,\n"
               "  \"send_adaptive_ns\": %lld,\n"
               "  \"deliver_gather_ns\": %lld,\n"
               "  \"deliver_adaptive_ns\": %lld,\n"
               "  \"message_path_speedup\": %.2f,\n"
               "  \"pr3_send_plus_deliver_ns\": %lld,\n"
               "  \"message_path_speedup_vs_pr3\": %.2f,\n"
               "  \"pr4_send_plus_deliver_ns\": %lld,\n"
               "  \"message_path_speedup_vs_pr4\": %.2f,\n"
               "  \"pr5_send_plus_deliver_ns\": %lld,\n"
               "  \"message_path_speedup_vs_pr5\": %.2f,\n"
               "  \"untraced_send_plus_deliver_ns\": %lld,\n"
               "  \"traced_send_plus_deliver_ns\": %lld,\n"
               "  \"trace_overhead_ratio\": %.3f,\n"
               "  \"certified_T\": %lld,\n"
               "  \"min_stable_forest\": %lld,\n"
               "  \"unvalidated_total_ns\": %lld,\n"
               "  \"validated_total_ns\": %lld,\n"
               "  \"checker_ab_ratio\": %.3f,\n"
               "  \"checker_overhead_ratio\": %.3f,\n"
               "  \"per_node_sketch_total_ns\": %lld,\n"
               "  \"pooled_sketch_total_ns\": %lld,\n"
               "  \"sketch_pool_speedup\": %.3f,\n"
               "  \"pr7_rounds_per_sec\": %.1f,\n"
               "  \"speedup_vs_pr7\": %.3f,\n"
               "  \"pipeline_threads\": %d,\n"
               "  \"pipeline_oversubscribed\": %s,\n"
               "  \"pipeline_all_off_total_ns\": %lld,\n"
               "  \"pipeline_all_on_total_ns\": %lld,\n"
               "  \"pipeline_speedup\": %.3f,\n"
               "  \"pipeline_aux_topology_ns\": %lld,\n"
               "  \"pipeline_aux_validate_ns\": %lld,\n"
               "  \"anomaly_off_total_ns\": %lld,\n"
               "  \"anomaly_on_total_ns\": %lld,\n"
               "  \"anomaly_overhead_ratio\": %.3f,\n"
               "  \"threads_sweep_skipped\": [",
               static_cast<long long>(best.rounds),
               static_cast<long long>(best.edges_processed),
               static_cast<long long>(best.messages_delivered), best_rps,
               reference.median_rps, eps,
               kBaselineRoundsPerSec, best_rps / kBaselineRoundsPerSec,
               reference.median_rps / kBaselineRoundsPerSec,
               kPr1SingleThreadRoundsPerSec, hw,
               static_cast<long long>(best.timings.topology_ns),
               static_cast<long long>(best.timings.validate_ns),
               static_cast<long long>(best.timings.probe_ns),
               static_cast<long long>(best.timings.send_ns),
               static_cast<long long>(best.timings.deliver_ns),
               static_cast<long long>(best.timings.other_ns),
               static_cast<long long>(best.timings.total_ns),
               static_cast<long long>(topo.a.timings.topology_ns),
               static_cast<long long>(topo.b.timings.topology_ns),
               topo.speedup,
               static_cast<long long>(msg.a.timings.send_ns),
               static_cast<long long>(msg.b.timings.send_ns),
               static_cast<long long>(msg.a.timings.deliver_ns),
               static_cast<long long>(msg.b.timings.deliver_ns),
               message_path_speedup,
               static_cast<long long>(kPr3SendNs + kPr3DeliverNs),
               message_path_speedup_vs_pr3,
               static_cast<long long>(kPr4SendPlusDeliverNs),
               message_path_speedup_vs_pr4,
               static_cast<long long>(kPr5SendPlusDeliverNs),
               message_path_speedup_vs_pr5,
               static_cast<long long>(untraced_sd_ns),
               static_cast<long long>(traced_sd_ns), trace_overhead_ratio,
               static_cast<long long>(cert.b.certified_T),
               static_cast<long long>(cert.b.min_stable_forest),
               static_cast<long long>(unvalidated_total_ns),
               static_cast<long long>(validated_total_ns),
               checker_ab_ratio, checker_overhead_ratio,
               static_cast<long long>(run_total_ns(pool_ab.a)),
               static_cast<long long>(run_total_ns(pool_ab.b)),
               sketch_pool_speedup, kPr7RoundsPerSec, speedup_vs_pr7,
               pipeline_threads, pipeline_oversubscribed ? "true" : "false",
               static_cast<long long>(pipeline_off_total_ns),
               static_cast<long long>(pipeline_on_total_ns), pipeline_speedup,
               static_cast<long long>(pipeline_aux_topology_ns),
               static_cast<long long>(pipeline_aux_validate_ns),
               static_cast<long long>(anomaly_off_total_ns),
               static_cast<long long>(anomaly_on_total_ns),
               anomaly_overhead_ratio);
  for (std::size_t i = 0; i < skipped.size(); ++i) {
    std::fprintf(f, "%s%d", i == 0 ? "" : ", ", skipped[i]);
  }
  std::fprintf(f, "],\n  \"threads_sweep\": [\n");
  const net::RunStats& serial = sweep.front().stats;
  const double serial_rps = serial.timings.RoundsPerSec(serial.rounds);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const net::RunStats& s = sweep[i].stats;
    const double rps = s.timings.RoundsPerSec(s.rounds);
    std::fprintf(
        f,
        "    {\"threads\": %d, \"rounds_per_sec\": %.1f, "
        "\"speedup_vs_single_thread\": %.2f, \"send_speedup\": %.2f, "
        "\"deliver_speedup\": %.2f, \"oversubscribed\": %s,\n"
        "     \"timings_ns\": {\"topology\": %lld, \"send\": %lld, "
        "\"deliver\": %lld, \"total\": %lld}}%s\n",
        sweep[i].threads, rps, rps / serial_rps,
        static_cast<double>(serial.timings.send_ns) /
            static_cast<double>(std::max<std::int64_t>(1, s.timings.send_ns)),
        static_cast<double>(serial.timings.deliver_ns) /
            static_cast<double>(
                std::max<std::int64_t>(1, s.timings.deliver_ns)),
        sweep[i].oversubscribed ? "true" : "false",
        static_cast<long long>(s.timings.topology_ns),
        static_cast<long long>(s.timings.send_ns),
        static_cast<long long>(s.timings.deliver_ns),
        static_cast<long long>(s.timings.total_ns),
        i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("  wrote BENCH_engine.json\n");
}

/// --fault-smoke: the CI anomaly-smoke entry point. Runs the reference
/// workload with the full observability plane attached (metrics registry +
/// anomaly engine + flight recorder) and the deliver-phase fault hook armed
/// (the setenv defaults below inject a 100 ms sleep at round 32 unless the
/// caller already exported the SDN_FAULT_* variables), then asserts the
/// plane noticed: exactly one AnomalyRecord, a round-time spike, with its
/// dump pair on disk in `dump_dir`. Nonzero exit on any miss — the smoke
/// proves detection, not absence.
int FaultSmoke(const std::string& dump_dir) {
  setenv("SDN_FAULT_DELIVER_SLEEP_MS", "100", /*overwrite=*/0);
  setenv("SDN_FAULT_DELIVER_ROUND", "32", /*overwrite=*/0);

  obs::AnomalyOptions aopts;
  // Only the injected ~100 ms spike should clear the floor: 20 ms is far
  // above any honest round of this workload (sub-millisecond) and far
  // below the fault.
  aopts.spike_floor_ns = 20'000'000;
  // Neutralize the byte-level rule: the warmup growth of the outbox and
  // topology gauges is expected here and would break exactly-one.
  aopts.memory_jump_floor_bytes = std::int64_t{1} << 60;
  aopts.dump_dir = dump_dir;

  // Ring large enough that this run never wraps: a wrap would legitimately
  // fire the drop-onset rule and break the exactly-one assertion.
  obs::FlightRecorder recorder(/*lanes=*/1, /*lane_capacity=*/1 << 20);
  const net::RunStats stats = TimedReferenceRun(
      /*threads=*/1, /*incremental=*/true, net::DeliveryMode::kAdaptive,
      &recorder, /*validate=*/true, /*pooled=*/true, /*overlaps=*/true,
      /*collect_metrics=*/true, /*anomaly=*/true, &aopts);

  std::printf("fault smoke: %zu anomaly record(s)\n", stats.anomalies.size());
  for (const obs::AnomalyRecord& r : stats.anomalies) {
    std::printf("  round=%lld rule=%s signal=%s value=%lld threshold=%lld\n",
                static_cast<long long>(r.round), obs::ToString(r.rule),
                r.signal, static_cast<long long>(r.value),
                static_cast<long long>(r.threshold));
  }
  if (stats.anomalies.size() != 1) {
    std::fprintf(stderr,
                 "fault smoke FAILED: expected exactly 1 anomaly, got %zu\n",
                 stats.anomalies.size());
    return 1;
  }
  const obs::AnomalyRecord& r = stats.anomalies.front();
  if (r.rule != obs::AnomalyRule::kRoundTimeSpike) {
    std::fprintf(stderr, "fault smoke FAILED: wrong rule %s\n",
                 obs::ToString(r.rule));
    return 1;
  }
  const std::string stem = dump_dir + "/anomaly-" + std::to_string(r.round) +
                           "-" + obs::ToString(r.rule);
  for (const char* ext : {".jsonl", ".manifest.json"}) {
    if (!std::ifstream(stem + ext)) {
      std::fprintf(stderr, "fault smoke FAILED: missing dump %s%s\n",
                   stem.c_str(), ext);
      return 1;
    }
  }
  std::printf("fault smoke OK: dump pair at %s.{jsonl,manifest.json}\n",
              stem.c_str());
  return 0;
}

}  // namespace
}  // namespace sdn

int main(int argc, char** argv) {
  bool fault_smoke = false;
  std::string dump_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fault-smoke") {
      fault_smoke = true;
    } else if (arg.rfind("--dump-dir=", 0) == 0) {
      dump_dir = arg.substr(sizeof("--dump-dir=") - 1);
    }
  }
  if (fault_smoke) return sdn::FaultSmoke(dump_dir);
  sdn::ReportEngineTimings();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
