// A8: ablations over the hjswy design knobs (DESIGN.md §4.2).
//
//   * sketch length L: count-estimate accuracy vs message size,
//   * suffix multiplier beta: verification safety margin vs rounds,
//   * dissemination multiplier gamma and initial horizon D0: phase sizing,
//   * coords per message: the bounded-bandwidth rotation trade-off.
#include <iostream>

#include "bench_common.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

Aggregate RunKnob(graph::NodeId n, int T, int trials, int threads,
                  const algo::HjswyOptions& knobs,
                  obs::FlightRecorder* recorder = nullptr) {
  RunConfig config;
  config.n = n;
  config.T = T;
  config.adversary.kind = "spine-gnp";
  config.hjswy = knobs;
  config.recorder = recorder;
  return Measure(Algorithm::kHjswyEstimate, config, trials, threads);
}

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto n =
      static_cast<graph::NodeId>(flags.GetInt("n", 256, "node count"));
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const int trials = static_cast<int>(flags.GetInt("trials", 8, "seeds"));
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_a8_ablation")) return 0;
  BenchManifest().Set("experiment", "a8_ablation");
  BenchManifest().Set("trials", trials);

  PrintBanner("A8: hjswy ablations (N=" + std::to_string(n) + ")",
              "each block varies one knob from the defaults "
              "(L=64, c=4, gamma=1.5, beta=3, D0=4).");

  util::Table table({"knob", "value", "rounds (median)", "worst est err",
                     "failures"});
  const auto add = [&](const std::string& knob, const std::string& value,
                       const Aggregate& agg) {
    table.AddRow({knob, value, RoundsCell(agg),
                  util::Table::Num(agg.worst_count_rel_error * 100, 1) + "%",
                  std::to_string(agg.failures) + "/" + std::to_string(trials)});
  };

  for (const int L : {8, 16, 32, 64, 128}) {
    algo::HjswyOptions knobs;
    knobs.sketch_len = L;
    add("sketch L", std::to_string(L),
        RunKnob(n, T, trials, threads, knobs, tracer.Attach()));
  }
  for (const double beta : {0.5, 1.0, 3.0, 6.0}) {
    algo::HjswyOptions knobs;
    knobs.beta = beta;
    add("beta", util::Table::Num(beta, 1), RunKnob(n, T, trials, threads, knobs));
  }
  for (const double gamma : {0.5, 1.0, 1.5, 3.0}) {
    algo::HjswyOptions knobs;
    knobs.gamma = gamma;
    add("gamma", util::Table::Num(gamma, 1), RunKnob(n, T, trials, threads, knobs));
  }
  for (const std::int64_t d0 : {1, 4, 16, 64}) {
    algo::HjswyOptions knobs;
    knobs.initial_horizon = d0;
    add("D0", std::to_string(d0), RunKnob(n, T, trials, threads, knobs));
  }
  for (const int c : {1, 2, 4, 8}) {
    algo::HjswyOptions knobs;
    knobs.coords_per_msg = c;
    add("coords/msg", std::to_string(c), RunKnob(n, T, trials, threads, knobs));
  }
  Finish(table, "a8_ablation.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = n;
    config.T = T;
    config.adversary.kind = "spine-gnp";
    ExportRepresentative(metrics, Algorithm::kHjswyEstimate, config);
  }
  std::cout << "Reading guide: small beta risks premature accepts (failures "
               "column); small L saves bits but hurts the estimate; small c "
               "shrinks messages but slows sketch convergence (more rounds)."
            << "\n";
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
