// Shared harness pieces for the experiment binaries (DESIGN.md §5).
//
// Every bench prints the table/figure rows to stdout and mirrors them to a
// CSV under results/ named after the experiment, so EXPERIMENTS.md numbers
// regenerate with `for b in build/bench/*; do $b; done`.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "obs/manifest.hpp"
#include "obs/openmetrics.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sdn::bench {

/// Process-wide run manifest: environment provenance collected once, plus
/// whatever keys the bench adds (experiment name, trials, flags). Stamped
/// into every results/*.csv as a `# key=value` comment header and into
/// trace exports.
inline obs::RunManifest& BenchManifest() {
  static obs::RunManifest manifest = obs::RunManifest::Collect();
  return manifest;
}

/// The shared --trace flag: one representative run per bench records round
/// events into a flight recorder, exported at exit as a Chrome trace-event
/// JSON (Perfetto/chrome://tracing-loadable) — or JSONL when the path ends
/// in ".jsonl". Attach() hands out the recorder exactly once (the first
/// cell of the sweep), so parallel trials never interleave lanes; RunTrials
/// additionally restricts it to the first seed.
class BenchTracer {
 public:
  explicit BenchTracer(util::Flags& flags)
      : path_(flags.GetString(
            "trace", "",
            "write a Chrome trace (or .jsonl) of one representative run")) {
    if (!path_.empty()) recorder_.emplace();
  }

  /// Recorder for the run to trace; null on every call after the first
  /// (and always when --trace is off).
  obs::FlightRecorder* Attach() {
    if (!recorder_.has_value() || attached_) return nullptr;
    attached_ = true;
    return &*recorder_;
  }

  [[nodiscard]] bool active() const { return recorder_.has_value(); }

  /// Exports the recorded events (no-op when --trace is off or nothing was
  /// attached).
  void Write() const {
    if (!recorder_.has_value() || !attached_) return;
    const obs::RunManifest& manifest = BenchManifest();
    const bool jsonl = path_.size() >= 6 &&
                       path_.compare(path_.size() - 6, 6, ".jsonl") == 0;
    const bool ok = jsonl ? recorder_->WriteJsonl(path_, &manifest)
                          : recorder_->WriteChromeTrace(path_, &manifest);
    if (ok) {
      std::cout << "(trace: " << path_ << ", " << recorder_->total_emitted()
                << " events, " << recorder_->dropped() << " dropped)\n";
    } else {
      std::cout << "(trace: cannot write " << path_ << ")\n";
    }
  }

 private:
  std::string path_;
  std::optional<obs::FlightRecorder> recorder_;
  bool attached_ = false;
};

/// The shared --metrics-out flag: OpenMetrics/Prometheus text exposition of
/// a run's metrics registry (plus memory gauges and anomaly records).
/// Sweep-driven benches write one final snapshot of a representative run
/// (ExportRepresentative below); harnesses that drive Step() themselves call
/// Tick(round, ...) and the file is rewritten every --metrics-interval
/// rounds — a one-pass truncating write, so a concurrent scraper sees at
/// worst a short read, never an interleaved one.
class MetricsExporter {
 public:
  explicit MetricsExporter(util::Flags& flags)
      : path_(flags.GetString(
            "metrics-out", "",
            "write an OpenMetrics text exposition of one representative run")),
        interval_(flags.GetInt(
            "metrics-interval", 64,
            "rounds between exposition rewrites (step-driven harnesses)")) {}

  [[nodiscard]] bool active() const { return !path_.empty(); }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Converts and writes one stats snapshot; announces the file once.
  void Write(const net::RunStats& stats) {
    if (path_.empty()) return;
    std::vector<obs::MemorySeries> memory;
    memory.reserve(stats.memory.size());
    for (const net::MemoryUse& m : stats.memory) {
      memory.push_back({m.subsystem, m.current_bytes, m.peak_bytes});
    }
    if (obs::WriteOpenMetrics(path_, stats.metrics, memory, stats.anomalies)) {
      if (!announced_) {
        std::cout << "(metrics: " << path_ << ")\n";
        announced_ = true;
      }
    } else {
      std::cout << "(metrics: cannot write " << path_ << ")\n";
      path_.clear();  // don't retry every tick
    }
  }

  /// Periodic rewrite for step-driven loops: every interval_ rounds, pull a
  /// fresh snapshot from `stats_fn` and Write it. Quiet between ticks.
  template <typename StatsFn>
  void Tick(std::int64_t round, StatsFn&& stats_fn) {
    if (path_.empty() || interval_ <= 0 || round % interval_ != 0) return;
    Write(stats_fn());
  }

 private:
  std::string path_;
  std::int64_t interval_;
  bool announced_ = false;
};

/// One representative run for the exposition file: the sweep's own trials
/// often run without metrics collection, so rerun the (algorithm, config)
/// cell once with the full observability plane on and export that snapshot.
inline void ExportRepresentative(MetricsExporter& exporter, Algorithm algorithm,
                                 RunConfig config) {
  if (!exporter.active()) return;
  config.seed = 1;
  config.collect_metrics = true;
  config.validate_tinterval = true;
  exporter.Write(RunAlgorithm(algorithm, config).stats);
}

/// Call after all flags were read (so they are registered): prints usage and
/// returns true when --help was passed.
inline bool HelpRequested(util::Flags& flags, const std::string& program) {
  if (!flags.Has("help")) return false;
  std::cout << flags.Usage(program);
  return true;
}

/// The shared --threads flag: total thread budget for RunTrials
/// (outer trials × inner engine lanes); 0 = hardware concurrency.
inline int ThreadsFlag(util::Flags& flags) {
  return static_cast<int>(flags.GetInt(
      "threads", 0,
      "total thread budget (outer trials x engine lanes); 0 = hardware"));
}

/// Seeds 1..trials (deterministic across runs).
inline std::vector<std::uint64_t> Seeds(int trials, std::uint64_t base = 0) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(trials));
  for (int i = 1; i <= trials; ++i) {
    seeds.push_back(base * 1000 + static_cast<std::uint64_t>(i));
  }
  return seeds;
}

struct Aggregate {
  util::Summary rounds;
  util::Summary flood_d;
  util::Summary bits_per_msg;
  /// Log2-bucketed distribution of per-trial rounds (obs registry
  /// instrument): tail quantiles for sweeps where the mean hides stragglers.
  obs::Histogram rounds_hist;
  double worst_count_rel_error = 0.0;
  int failures = 0;   // trials that were not Ok()
  int truncated = 0;  // trials cut off by max_rounds (hit_max_rounds)
  int trials = 0;
};

inline Aggregate AggregateResults(const std::vector<RunResult>& results) {
  Aggregate agg;
  std::vector<double> rounds;
  std::vector<double> flood;
  std::vector<double> bits;
  for (const RunResult& r : results) {
    ++agg.trials;
    rounds.push_back(static_cast<double>(r.stats.rounds));
    agg.rounds_hist.Observe(r.stats.rounds);
    flood.push_back(static_cast<double>(r.stats.flooding.max_rounds));
    bits.push_back(r.stats.AvgBitsPerMessage());
    if (!r.Ok()) ++agg.failures;
    if (r.stats.hit_max_rounds) ++agg.truncated;
    if (r.count_max_rel_error.has_value()) {
      agg.worst_count_rel_error =
          std::max(agg.worst_count_rel_error, *r.count_max_rel_error);
    }
  }
  agg.rounds = util::Summarize(rounds);
  agg.flood_d = util::Summarize(flood);
  agg.bits_per_msg = util::Summarize(bits);
  return agg;
}

/// A round-complexity table cell. A run cut off by max_rounds did not
/// converge — its `rounds` is the cap, not a complexity measurement, and
/// printing it would masquerade as (usually fast-looking) convergence. Any
/// truncated trial therefore poisons the cell.
inline std::string RoundsCell(const Aggregate& agg) {
  if (agg.truncated > 0) return "(truncated)";
  return util::Table::Num(agg.rounds.median, 0) +
         (agg.failures > 0 ? "!" : "");
}

/// Median rounds as a data point for fits; NaN-free sentinel 0.0 (excluded
/// by the log-log slope fit) when any trial was truncated.
inline double RoundsPoint(const Aggregate& agg) {
  return agg.truncated > 0 ? 0.0 : agg.rounds.median;
}

/// Runs `trials` seeded trials of `algorithm` on `config` and aggregates.
/// `threads` is the total budget passed through to RunTrials (0 = hardware).
inline Aggregate Measure(Algorithm algorithm, RunConfig config, int trials,
                         int threads = 0) {
  config.validate_tinterval = true;  // certification rides every recording
  return AggregateResults(RunTrials(algorithm, config, Seeds(trials), threads));
}

inline void PrintBanner(const std::string& experiment,
                        const std::string& claim) {
  std::cout << "==== " << experiment << " ====\n" << claim << "\n\n";
}

/// Prints the table and mirrors it to results/<csv_name> (the directory is
/// created next to the cwd; generated CSVs stay out of the repo root and are
/// gitignored). The CSV opens with the run manifest as `# key=value`
/// comment lines, so every results file records what produced it.
inline void Finish(const util::Table& table, const std::string& csv_name) {
  table.Print(std::cout);
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const std::string path = "results/" + csv_name;
  table.WriteCsv(path, BenchManifest().CommentLines());
  std::cout << "\n(csv: " << path << ")\n\n";
}

}  // namespace sdn::bench
