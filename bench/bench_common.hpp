// Shared harness pieces for the experiment binaries (DESIGN.md §5).
//
// Every bench prints the table/figure rows to stdout and mirrors them to a
// CSV named after the experiment, so EXPERIMENTS.md numbers regenerate with
// `for b in build/bench/*; do $b; done`.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace sdn::bench {

/// Call after all flags were read (so they are registered): prints usage and
/// returns true when --help was passed.
inline bool HelpRequested(util::Flags& flags, const std::string& program) {
  if (!flags.Has("help")) return false;
  std::cout << flags.Usage(program);
  return true;
}

/// Seeds 1..trials (deterministic across runs).
inline std::vector<std::uint64_t> Seeds(int trials, std::uint64_t base = 0) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(trials));
  for (int i = 1; i <= trials; ++i) {
    seeds.push_back(base * 1000 + static_cast<std::uint64_t>(i));
  }
  return seeds;
}

struct Aggregate {
  util::Summary rounds;
  util::Summary flood_d;
  util::Summary bits_per_msg;
  double worst_count_rel_error = 0.0;
  int failures = 0;  // trials that were not Ok()
  int trials = 0;
};

inline Aggregate AggregateResults(const std::vector<RunResult>& results) {
  Aggregate agg;
  std::vector<double> rounds;
  std::vector<double> flood;
  std::vector<double> bits;
  for (const RunResult& r : results) {
    ++agg.trials;
    rounds.push_back(static_cast<double>(r.stats.rounds));
    flood.push_back(static_cast<double>(r.stats.flooding.max_rounds));
    bits.push_back(r.stats.AvgBitsPerMessage());
    if (!r.Ok()) ++agg.failures;
    if (r.count_max_rel_error.has_value()) {
      agg.worst_count_rel_error =
          std::max(agg.worst_count_rel_error, *r.count_max_rel_error);
    }
  }
  agg.rounds = util::Summarize(rounds);
  agg.flood_d = util::Summarize(flood);
  agg.bits_per_msg = util::Summarize(bits);
  return agg;
}

/// Runs `trials` seeded trials of `algorithm` on `config` and aggregates.
inline Aggregate Measure(Algorithm algorithm, RunConfig config, int trials) {
  config.validate_tinterval = false;  // adversaries are property-tested
  return AggregateResults(RunTrials(algorithm, config, Seeds(trials)));
}

inline void PrintBanner(const std::string& experiment,
                        const std::string& claim) {
  std::cout << "==== " << experiment << " ====\n" << claim << "\n\n";
}

inline void Finish(const util::Table& table, const std::string& csv_name) {
  table.Print(std::cout);
  table.WriteCsv(csv_name);
  std::cout << "\n(csv: " << csv_name << ")\n\n";
}

}  // namespace sdn::bench
