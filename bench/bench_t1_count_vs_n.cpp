// T1 (headline table): Count round complexity vs N under constant T = 2.
//
// Claim under reproduction (abstract): the hjswy algorithms' complexity has
// no Ω(N) term under constant T — on low-flooding-time churn (random spine,
// volatile edges) their decision round should grow polylogarithmically with
// N while every baseline grows at least linearly. The last row reports the
// fitted log-log growth exponent per algorithm.
#include <iostream>

#include "bench_common.hpp"
#include "util/flags.hpp"

namespace sdn::bench {
namespace {

int Main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto hjswy_ns =
      flags.GetIntList("n", {16, 32, 64, 128, 256, 512, 1024, 2048},
                       "node counts for sublinear algorithms");
  const auto baseline_cap = flags.GetInt(
      "baseline-cap", 256, "largest N for the quadratic census baselines");
  const auto strict_cap = flags.GetInt(
      "strict-cap", 512, "largest N for the linear strict fallback");
  const int T = static_cast<int>(flags.GetInt("T", 2, "interval promise"));
  const int trials = static_cast<int>(flags.GetInt("trials", 3, "seeds"));
  const std::string kind =
      flags.GetString("adversary", "spine-gnp", "adversary kind");
  const int threads = ThreadsFlag(flags);
  BenchTracer tracer(flags);
  MetricsExporter metrics(flags);

  if (HelpRequested(flags, "bench_t1_count_vs_n")) return 0;
  BenchManifest().Set("experiment", "t1_count_vs_n");
  BenchManifest().Set("trials", trials);
  BenchManifest().Set("adversary", kind);

  PrintBanner("T1: Count rounds vs N (constant T)",
              "hjswy rows must stay near the measured flooding time d "
              "(polylog in N here); flood/census baselines carry the Ω(N) "
              "term. Columns are median rounds over " +
                  std::to_string(trials) + " seeds.");

  const std::vector<Algorithm> algorithms = {
      Algorithm::kFloodMaxKnownN, Algorithm::kKloCensus1,
      Algorithm::kKloCensusT,     Algorithm::kHjswyEstimate,
      Algorithm::kHjswyCensus,    Algorithm::kHjswyStrict};

  util::Table table({"N", "d", "flood", "klo-census", "klo-census-T",
                     "hjswy-est", "hjswy-census", "hjswy-strict"});
  std::vector<std::vector<double>> series(algorithms.size());
  std::vector<double> ns;

  for (const std::int64_t n : hjswy_ns) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(n);
    config.T = T;
    config.adversary.kind = kind;

    std::vector<std::string> row = {std::to_string(n)};
    std::string d_cell = "-";
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const bool is_census_baseline =
          algorithms[a] == Algorithm::kKloCensus1 ||
          algorithms[a] == Algorithm::kKloCensusT;
      const bool is_strict = algorithms[a] == Algorithm::kHjswyStrict;
      if ((is_census_baseline && n > baseline_cap) ||
          (is_strict && n > strict_cap)) {
        row.push_back("(skip)");
        series[a].push_back(0.0);  // filtered out by the slope fit
        continue;
      }
      config.recorder = tracer.Attach();  // first measured cell only
      const Aggregate agg = Measure(algorithms[a], config, trials, threads);
      row.push_back(RoundsCell(agg));
      series[a].push_back(RoundsPoint(agg));
      d_cell = util::Table::Num(agg.flood_d.median, 0);
    }
    row.insert(row.begin() + 1, d_cell);
    table.AddRow(row);
    ns.push_back(static_cast<double>(n));
  }

  // Growth exponents: rounds ~ N^slope.
  std::vector<std::string> slope_row = {"N^b fit", "-"};
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    slope_row.push_back(
        "b=" + util::Table::Num(util::LogLogSlope(ns, series[a]), 2));
  }
  table.AddRow(slope_row);

  Finish(table, "t1_count_vs_n.csv");
  tracer.Write();
  if (metrics.active()) {
    RunConfig config;
    config.n = static_cast<graph::NodeId>(hjswy_ns.back());
    config.T = T;
    config.adversary.kind = kind;
    ExportRepresentative(metrics, Algorithm::kHjswyCensus, config);
  }
  std::cout << "Expected shape: flood b≈1.0, census b≈2.0, census-T b≈2 with"
               "\nsmaller constant, hjswy b≈0 (tracks d, not N); '!' marks"
               "\ntrials with a failed correctness grade.\n";
  return 0;
}

}  // namespace
}  // namespace sdn::bench

int main(int argc, char** argv) { return sdn::bench::Main(argc, argv); }
