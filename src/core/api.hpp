// Public facade: one-call experiment runs.
//
// sdn::RunAlgorithm builds the adversary, instantiates the chosen node
// program at every node, executes the lock-step engine, and grades the
// outputs against ground truth (the harness knows N and the inputs; the
// nodes of course do not). Benches, examples and integration tests all go
// through this API.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adversary/factory.hpp"
#include "algo/census.hpp"
#include "algo/common.hpp"
#include "algo/hjswy.hpp"
#include "net/backing.hpp"
#include "net/bandwidth.hpp"
#include "net/metrics.hpp"
#include "obs/anomaly.hpp"
#include "obs/recorder.hpp"
#include "util/arena.hpp"

namespace sdn {

/// The algorithm zoo (DESIGN.md §4).
enum class Algorithm {
  /// O(N) Max baseline; requires known N.
  kFloodMaxKnownN,
  /// O(N) Consensus baseline; requires known N.
  kFloodConsensusKnownN,
  /// The original KLO k-committee protocol (STOC'10), faithful structure:
  /// exact, deterministic, O(N²).
  kKloCommittee,
  /// KLO-style census, pipeline window 1: the O(N²) classic baseline.
  kKloCensus1,
  /// KLO-style census using the adversary's T: O(N + N²/T) shape.
  kKloCensusT,
  /// hjswy reconstruction, bounded O(log N)-bit messages: Max/Consensus
  /// exact whp, Count (1±ε). Õ(T·d·polylog N) rounds.
  kHjswyEstimate,
  /// hjswy with unbounded census messages: Count exact whp too.
  kHjswyCensus,
  /// hjswy strict fallback: accepts only once the horizon covers the
  /// estimated N (linear-safe envelope).
  kHjswyStrict,
};

const char* ToString(Algorithm algorithm);
std::vector<Algorithm> AllAlgorithms();

struct RunConfig {
  graph::NodeId n = 64;
  int T = 2;
  std::uint64_t seed = 1;
  /// Adversary selection; n/T/seed are overwritten from the fields above.
  adversary::AdversaryConfig adversary{};
  /// Node inputs; empty -> pseudo-random values derived from `seed`.
  std::vector<algo::Value> inputs;
  std::int64_t max_rounds = 5'000'000;
  /// Bounded-regime budget multiplier (bits = multiplier·log2 N).
  double bandwidth_multiplier = 64.0;
  int flood_probes = 4;
  /// Streaming T-interval validation of the adversary. Cheap enough to
  /// stay on everywhere (composition-claiming adversaries are certified by
  /// witness, others by the incremental-forest delta path; docs/PERF.md
  /// "Certification"). Turning it off is an explicit waiver: the result
  /// then reports certification as waived rather than vacuously ok.
  bool validate_tinterval = true;
  /// Stop the run at the first T-interval violation instead of streaming
  /// to the end (EngineOptions::fail_fast_on_tinterval): Step() throws
  /// CheckError with the violating window, same shape as a bandwidth
  /// violation.
  bool fail_fast_on_tinterval = false;
  /// Delta-driven topology (EngineOptions::incremental_topology): the
  /// adversary emits round-over-round deltas into one in-place DynGraph.
  /// Bit-identical results either way; off = legacy from-scratch path.
  bool incremental_topology = true;
  /// Inbox backing policy for all-sender rounds (net::DeliveryMode):
  /// kAdaptive (default) picks dense CSR indexing vs the pointer gather
  /// per round from measured cost with hysteresis; kDense / kGather force
  /// one arm for A/B runs. Bit-identical results in every mode.
  net::DeliveryMode delivery = net::DeliveryMode::kAdaptive;
  /// Engine-internal parallelism (EngineOptions::threads): 0 = hardware,
  /// 1 = strictly serial, k = up to k lanes. Results are bit-identical at
  /// any setting; RunTrials additionally budgets this against its outer
  /// trial workers when left at 0 (auto), so sweeps don't oversubscribe.
  int threads = 0;
  /// Pipeline overlaps (EngineOptions::{prefetch_topology,
  /// async_certification, fused_send_deliver}): compute the next round's
  /// topology / run the T-interval checker / compose the next round's
  /// messages concurrently with the deliver phase. Each engages only where
  /// its preconditions hold (oblivious adversary, threads > 1, ...) and
  /// RunStats is bit-identical on or off — off is a pure A/B knob for the
  /// pipelining benchmarks (docs/PERF.md "Pipelining").
  bool prefetch_topology = true;
  bool async_certification = true;
  bool fused_send_deliver = true;
  /// Knobs for the hjswy suite (T / exact_census / strict are synced from
  /// the algorithm choice and the T above).
  algo::HjswyOptions hjswy{};
  /// Knobs for the census baselines (pipeline_T synced from the choice).
  algo::CensusOptions census{};
  /// Flight recorder handed to the engine (EngineOptions::recorder). Null =
  /// tracing off (the zero-overhead default). Must outlive the run. The
  /// recorder is a single-consumer sink: RunTrials attaches it to the first
  /// seed's trial only, so parallel trials never interleave lanes.
  obs::FlightRecorder* recorder = nullptr;
  /// Collect the per-round metrics registry into RunStats::metrics
  /// (EngineOptions::collect_metrics).
  bool collect_metrics = false;
  /// Anomaly plane (EngineOptions::anomaly): on by default, but it only
  /// engages together with collect_metrics — without the registry there is
  /// nothing to window. Fired records land in RunStats::anomalies.
  bool anomaly = true;
  /// Rule thresholds / windows / dump policy (obs::AnomalyOptions).
  obs::AnomalyOptions anomaly_options{};
  /// Back the hjswy sketches with the shared structure-of-arrays float32
  /// pool (algo::SketchPool) instead of per-node vectors. Bit-identical
  /// results either way (the pin suite enforces RunStats equality); off is
  /// a pure A/B knob for the per-node layout. Ignored by non-sketch
  /// algorithms.
  bool pooled_sketches = true;
  /// Byte-accounting sink shared by the engine and the run's caller-side
  /// subsystems (sketch pool). Null = the engine's internal budget is used
  /// and RunStats::memory still reports the engine subsystems. Must
  /// outlive the run.
  util::MemoryBudget* memory_budget = nullptr;
};

/// Graded result of one run.
struct RunResult {
  std::string algorithm;
  std::string adversary;
  graph::NodeId n = 0;
  int T = 1;
  std::uint64_t seed = 0;
  net::RunStats stats;
  /// The run was configured with validate_tinterval = false: the caller
  /// explicitly waived certification, so Ok() does not demand a verified
  /// promise. Without this waiver an unvalidated run is NOT Ok — a vacuous
  /// tinterval_ok must not read as a certified one.
  bool tinterval_waived = false;

  /// Ground truth.
  std::int64_t expected_count = 0;
  algo::Value expected_max = 0;

  /// Per-problem grading; nullopt = the algorithm does not answer it.
  std::optional<bool> count_exact;       // every node output == N
  std::optional<double> count_max_rel_error;  // estimate algorithms
  std::optional<bool> max_correct;
  /// track_sum extension: worst relative error of the Σ max(0,input)
  /// estimate across nodes.
  std::optional<double> sum_max_rel_error;
  std::optional<bool> consensus_agreement;    // all outputs equal
  std::optional<bool> consensus_valid;        // decided value is some input

  /// True when every node decided and every applicable problem was solved
  /// correctly (estimates don't count against this; see count_max_rel_error).
  [[nodiscard]] bool Ok() const;
};

/// Deterministic pseudo-random inputs for n nodes.
std::vector<algo::Value> MakeInputs(graph::NodeId n, std::uint64_t seed);

/// Executes one run. CheckError on invalid configuration.
RunResult RunAlgorithm(Algorithm algorithm, const RunConfig& config);

/// Runs `seeds.size()` independent trials (config.seed replaced per trial).
/// `threads` is the *total* thread budget (0 = hardware concurrency): up to
/// min(threads, #seeds) trials run concurrently, and when config.threads is
/// 0 (auto) each trial's engine gets the remaining budget/outer lanes, so
/// outer-trials × inner-threads never oversubscribes the machine. A pinned
/// config.threads is respected as-is. A failing trial is attributed to its
/// seed in the thrown CheckError.
std::vector<RunResult> RunTrials(Algorithm algorithm, const RunConfig& config,
                                 const std::vector<std::uint64_t>& seeds,
                                 int threads = 0);

}  // namespace sdn
