// Type-erased step-wise simulation.
//
// sdn::RunAlgorithm runs to completion; Simulation exposes the same runs one
// round at a time, with mid-run inspection — per-node decision state and
// published values, the current topology, live metrics. Useful for
// debugging node programs, animating executions, and writing tools that
// react to the run (the adversary_playground-style binaries).
//
//   sdn::Simulation sim(sdn::Algorithm::kHjswyCensus, config);
//   while (sim.Step()) {
//     if (sim.Round() % 100 == 0) Report(sim.Stats());
//   }
//   const sdn::RunResult result = sim.Finish();
#pragma once

#include <memory>

#include "core/api.hpp"
#include "graph/graph.hpp"
#include "net/metrics.hpp"

namespace sdn {

namespace detail {

/// Internal interface implemented per node-program type (see api.cpp).
class SimBase {
 public:
  virtual ~SimBase() = default;
  virtual bool Step() = 0;
  [[nodiscard]] virtual net::RunStats Stats() const = 0;
  [[nodiscard]] virtual bool Finished() const = 0;
  [[nodiscard]] virtual std::int64_t Round() const = 0;
  [[nodiscard]] virtual graph::NodeId NumNodes() const = 0;
  [[nodiscard]] virtual bool NodeDecided(graph::NodeId u) const = 0;
  [[nodiscard]] virtual double NodePublicState(graph::NodeId u) const = 0;
  [[nodiscard]] virtual const graph::Graph& CurrentTopology() const = 0;
  [[nodiscard]] virtual RunResult Grade() const = 0;
};

std::unique_ptr<SimBase> MakeSim(Algorithm algorithm, const RunConfig& config);

}  // namespace detail

class Simulation {
 public:
  Simulation(Algorithm algorithm, const RunConfig& config)
      : impl_(detail::MakeSim(algorithm, config)) {}

  /// Executes one round; false once the run is over.
  bool Step() { return impl_->Step(); }
  /// Runs the remaining rounds.
  void RunToCompletion() {
    while (Step()) {
    }
  }

  [[nodiscard]] bool Finished() const { return impl_->Finished(); }
  /// Rounds executed so far.
  [[nodiscard]] std::int64_t Round() const { return impl_->Round(); }
  [[nodiscard]] graph::NodeId NumNodes() const { return impl_->NumNodes(); }
  /// Live metrics snapshot.
  [[nodiscard]] net::RunStats Stats() const { return impl_->Stats(); }
  [[nodiscard]] bool NodeDecided(graph::NodeId u) const {
    return impl_->NodeDecided(u);
  }
  /// The node's published scalar (what adaptive adversaries see).
  [[nodiscard]] double NodePublicState(graph::NodeId u) const {
    return impl_->NodePublicState(u);
  }
  /// Topology of the most recently executed round.
  [[nodiscard]] const graph::Graph& CurrentTopology() const {
    return impl_->CurrentTopology();
  }

  /// Grades the run against ground truth (callable any time; correctness
  /// fields reflect the nodes that have decided so far).
  [[nodiscard]] RunResult Finish() const { return impl_->Grade(); }

 private:
  std::unique_ptr<detail::SimBase> impl_;
};

}  // namespace sdn
