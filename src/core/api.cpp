#include "core/api.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <future>
#include <mutex>
#include <sstream>
#include <thread>

#include "algo/flood_max.hpp"
#include "algo/klo_committee.hpp"
#include "core/simulation.hpp"
#include "core/version.hpp"
#include "net/engine.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn {

const char* VersionString() { return "1.0.0"; }

const char* ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kFloodMaxKnownN:
      return "flood-max";
    case Algorithm::kFloodConsensusKnownN:
      return "flood-consensus";
    case Algorithm::kKloCommittee:
      return "klo-committee";
    case Algorithm::kKloCensus1:
      return "klo-census";
    case Algorithm::kKloCensusT:
      return "klo-census-T";
    case Algorithm::kHjswyEstimate:
      return "hjswy-estimate";
    case Algorithm::kHjswyCensus:
      return "hjswy-census";
    case Algorithm::kHjswyStrict:
      return "hjswy-strict";
  }
  return "?";
}

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kFloodMaxKnownN, Algorithm::kFloodConsensusKnownN,
          Algorithm::kKloCommittee,   Algorithm::kKloCensus1,
          Algorithm::kKloCensusT,     Algorithm::kHjswyEstimate,
          Algorithm::kHjswyCensus,    Algorithm::kHjswyStrict};
}

std::vector<algo::Value> MakeInputs(graph::NodeId n, std::uint64_t seed) {
  SDN_CHECK(n >= 1);
  util::Rng rng(util::MixSeed(seed, 0x1fb075ULL));
  std::vector<algo::Value> inputs(static_cast<std::size_t>(n));
  for (auto& v : inputs) {
    v = rng.UniformInt(-1000000, 1000000);
  }
  return inputs;
}

bool RunResult::Ok() const {
  if (!stats.all_decided) return false;
  // Certification must be real: a validated run must have held the promise,
  // and an unvalidated run only passes when the caller explicitly waived
  // validation (vacuous tinterval_ok is not success).
  if (stats.tinterval_validated ? !stats.tinterval_ok : !tinterval_waived) {
    return false;
  }
  if (count_exact.has_value() && !*count_exact) return false;
  if (max_correct.has_value() && !*max_correct) return false;
  if (consensus_agreement.has_value() && !*consensus_agreement) return false;
  if (consensus_valid.has_value() && !*consensus_valid) return false;
  return true;
}

namespace {

/// Per-node graded outputs, extracted uniformly from every program type.
struct NodeAnswers {
  std::optional<std::int64_t> count;
  std::optional<double> count_estimate;
  std::optional<double> sum_estimate;
  std::optional<algo::Value> max;
  std::optional<algo::Value> consensus;
};

void Grade(const RunConfig& config, const std::vector<algo::Value>& inputs,
           const std::vector<NodeAnswers>& answers, RunResult& result) {
  const auto n = static_cast<std::int64_t>(config.n);
  result.expected_count = n;
  result.expected_max = *std::max_element(inputs.begin(), inputs.end());

  bool any_count = false;
  bool any_estimate = false;
  bool any_max = false;
  bool any_consensus = false;
  bool count_ok = true;
  double worst_rel = 0.0;
  bool max_ok = true;
  bool agree = true;
  bool valid = true;
  std::optional<algo::Value> consensus_value;
  for (const NodeAnswers& a : answers) {
    if (a.count.has_value()) {
      any_count = true;
      count_ok &= (*a.count == n);
    }
    if (a.count_estimate.has_value()) {
      any_estimate = true;
      const double rel = std::fabs(*a.count_estimate - static_cast<double>(n)) /
                         static_cast<double>(n);
      worst_rel = std::max(worst_rel, rel);
    }
    if (a.sum_estimate.has_value()) {
      double expected_sum = 0.0;
      for (const algo::Value v : inputs) {
        if (v > 0) expected_sum += static_cast<double>(v);
      }
      const double rel =
          expected_sum == 0.0
              ? std::fabs(*a.sum_estimate)
              : std::fabs(*a.sum_estimate - expected_sum) / expected_sum;
      result.sum_max_rel_error =
          std::max(result.sum_max_rel_error.value_or(0.0), rel);
    }
    if (a.max.has_value()) {
      any_max = true;
      max_ok &= (*a.max == result.expected_max);
    }
    if (a.consensus.has_value()) {
      any_consensus = true;
      if (!consensus_value.has_value()) consensus_value = *a.consensus;
      agree &= (*a.consensus == *consensus_value);
      valid &= std::find(inputs.begin(), inputs.end(), *a.consensus) !=
               inputs.end();
    }
  }
  if (any_count) result.count_exact = count_ok;
  if (any_estimate) result.count_max_rel_error = worst_rel;
  if (any_max) result.max_correct = max_ok;
  if (any_consensus) {
    result.consensus_agreement = agree;
    result.consensus_valid = valid;
  }
}

template <net::NodeProgram A>
class TypedSim final : public detail::SimBase {
 public:
  TypedSim(const RunConfig& config, algo::AlgoInfo info,
           const std::function<A(graph::NodeId, algo::Value)>& make_node,
           std::function<NodeAnswers(const A&)> extract,
           std::shared_ptr<void> context = nullptr)
      : config_(config),
        info_(std::move(info)),
        extract_(std::move(extract)),
        context_(std::move(context)) {
    SDN_CHECK(config_.n >= 1);
    SDN_CHECK(config_.T >= 1);

    adversary::AdversaryConfig adv_config = config_.adversary;
    adv_config.n = config_.n;
    adv_config.T = config_.T;
    adv_config.seed = util::MixSeed(config_.seed, 0xadd5e5ULL);
    adversary_ = adversary::MakeAdversary(adv_config);

    inputs_ = config_.inputs.empty() ? MakeInputs(config_.n, config_.seed)
                                     : config_.inputs;
    SDN_CHECK_MSG(static_cast<graph::NodeId>(inputs_.size()) == config_.n,
                  "inputs size mismatch");

    std::vector<A> nodes;
    nodes.reserve(static_cast<std::size_t>(config_.n));
    for (graph::NodeId u = 0; u < config_.n; ++u) {
      nodes.push_back(make_node(u, inputs_[static_cast<std::size_t>(u)]));
    }

    net::EngineOptions opts;
    opts.max_rounds = config_.max_rounds;
    opts.bandwidth =
        info_.unbounded_msgs
            ? net::BandwidthPolicy::Unbounded()
            : net::BandwidthPolicy::BoundedLogN(config_.bandwidth_multiplier);
    opts.flood_probes = config_.flood_probes;
    opts.probe_seed = util::MixSeed(config_.seed, 0x9e0be5ULL);
    opts.validate_tinterval = config_.validate_tinterval;
    opts.fail_fast_on_tinterval = config_.fail_fast_on_tinterval;
    opts.incremental_topology = config_.incremental_topology;
    opts.delivery = config_.delivery;
    opts.threads = config_.threads;
    opts.prefetch_topology = config_.prefetch_topology;
    opts.async_certification = config_.async_certification;
    opts.fused_send_deliver = config_.fused_send_deliver;
    opts.recorder = config_.recorder;
    opts.collect_metrics = config_.collect_metrics;
    opts.anomaly = config_.anomaly;
    opts.anomaly_options = config_.anomaly_options;
    opts.memory_budget = config_.memory_budget;
    engine_.emplace(std::move(nodes), *adversary_, opts);
  }

  bool Step() override { return engine_->Step(); }
  [[nodiscard]] net::RunStats Stats() const override {
    return engine_->stats();
  }
  [[nodiscard]] bool Finished() const override { return engine_->finished(); }
  [[nodiscard]] std::int64_t Round() const override {
    return engine_->current_round();
  }
  [[nodiscard]] graph::NodeId NumNodes() const override { return config_.n; }
  [[nodiscard]] bool NodeDecided(graph::NodeId u) const override {
    return engine_->node(u).HasDecided();
  }
  [[nodiscard]] double NodePublicState(graph::NodeId u) const override {
    return engine_->node(u).PublicState();
  }
  [[nodiscard]] const graph::Graph& CurrentTopology() const override {
    return engine_->last_topology();
  }

  [[nodiscard]] RunResult Grade() const override {
    RunResult result;
    result.algorithm = info_.name;
    result.adversary = adversary_->name();
    result.n = config_.n;
    result.T = config_.T;
    result.seed = config_.seed;
    result.stats = engine_->stats();
    result.tinterval_waived = !config_.validate_tinterval;
    std::vector<NodeAnswers> answers;
    answers.reserve(static_cast<std::size_t>(config_.n));
    for (graph::NodeId u = 0; u < config_.n; ++u) {
      answers.push_back(extract_(engine_->node(u)));
    }
    sdn::Grade(config_, inputs_, answers, result);
    return result;
  }

 private:
  RunConfig config_;
  algo::AlgoInfo info_;
  std::function<NodeAnswers(const A&)> extract_;
  /// Shared state the node programs reference (e.g. the hjswy SketchPool);
  /// the make_node lambda dies with MakeSim, so the sim owns it. Declared
  /// before engine_ so it outlives the programs.
  std::shared_ptr<void> context_;
  std::unique_ptr<net::Adversary> adversary_;
  std::vector<algo::Value> inputs_;
  std::optional<net::Engine<A>> engine_;
};

}  // namespace

namespace detail {

std::unique_ptr<SimBase> MakeSim(Algorithm algorithm,
                                 const RunConfig& config) {
  switch (algorithm) {
    case Algorithm::kFloodMaxKnownN:
      return std::make_unique<TypedSim<algo::FloodMaxKnownN>>(
          config, algo::FloodMaxKnownN::Info(),
          [&config](graph::NodeId u, algo::Value input) {
            return algo::FloodMaxKnownN(u, config.n, input);
          },
          [](const algo::FloodMaxKnownN& node) {
            NodeAnswers a;
            a.max = node.output();
            return a;
          });

    case Algorithm::kFloodConsensusKnownN:
      return std::make_unique<TypedSim<algo::ConsensusFloodKnownN>>(
          config, algo::ConsensusFloodKnownN::Info(),
          [&config](graph::NodeId u, algo::Value input) {
            return algo::ConsensusFloodKnownN(u, config.n, input);
          },
          [](const algo::ConsensusFloodKnownN& node) {
            NodeAnswers a;
            a.consensus = node.output();
            return a;
          });

    case Algorithm::kKloCommittee:
      return std::make_unique<TypedSim<algo::KloCommitteeProgram>>(
          config, algo::KloCommitteeProgram::Info(),
          [](graph::NodeId u, algo::Value input) {
            return algo::KloCommitteeProgram(u, input);
          },
          [](const algo::KloCommitteeProgram& node) {
            NodeAnswers a;
            if (const auto out = node.output(); out.has_value()) {
              a.count = out->count;
              a.max = out->max_value;
              a.consensus = out->consensus_value;
            }
            return a;
          });

    case Algorithm::kKloCensus1:
    case Algorithm::kKloCensusT: {
      algo::CensusOptions census = config.census;
      census.pipeline_T = (algorithm == Algorithm::kKloCensus1) ? 1 : config.T;
      return std::make_unique<TypedSim<algo::CensusProgram>>(
          config, algo::CensusProgram::InfoFor(census.pipeline_T),
          [census](graph::NodeId u, algo::Value input) {
            return algo::CensusProgram(u, input, census);
          },
          [](const algo::CensusProgram& node) {
            NodeAnswers a;
            if (const auto out = node.output(); out.has_value()) {
              a.count = out->count;
              a.max = out->max_value;
              a.consensus = out->consensus_value;
            }
            return a;
          });
    }

    case Algorithm::kHjswyEstimate:
    case Algorithm::kHjswyCensus:
    case Algorithm::kHjswyStrict: {
      algo::HjswyOptions hjswy = config.hjswy;
      hjswy.T = config.T;
      hjswy.exact_census = (algorithm == Algorithm::kHjswyCensus);
      hjswy.strict = (algorithm == Algorithm::kHjswyStrict);
      util::Rng base(util::MixSeed(config.seed, 0xb0b5ULL));
      // SoA sketch backing (default): one float32 pool shared by all nodes,
      // owned by the sim via the context handle. The rng draw sequence and
      // merge semantics are identical to the per-node layout (pinned by
      // test_sketch_pool), so this is purely a memory-layout choice.
      std::shared_ptr<algo::SketchPool> pool;
      if (config.pooled_sketches) {
        pool = std::make_shared<algo::SketchPool>(
            static_cast<std::size_t>(config.n),
            algo::HjswyProgram::RequiredPoolColumns(hjswy));
        if (config.memory_budget != nullptr) {
          config.memory_budget->Get("sketch_pool")
              ->SetCurrent(static_cast<std::int64_t>(pool->bytes()));
        }
      }
      return std::make_unique<TypedSim<algo::HjswyProgram>>(
          config, algo::HjswyProgram::InfoFor(hjswy),
          [hjswy, &base, &pool](graph::NodeId u, algo::Value input) {
            return algo::HjswyProgram(u, input, hjswy,
                                      base.Fork(static_cast<std::uint64_t>(u)),
                                      pool.get());
          },
          [hjswy](const algo::HjswyProgram& node) {
            NodeAnswers a;
            if (const auto out = node.output(); out.has_value()) {
              if (hjswy.exact_census) {
                a.count = out->count;
              }
              a.count_estimate = out->count_estimate;
              if (hjswy.track_sum) a.sum_estimate = out->sum_estimate;
              a.max = out->max_value;
              a.consensus = out->consensus_value;
            }
            return a;
          },
          pool);
    }
  }
  SDN_CHECK_MSG(false, "unknown algorithm");
  return nullptr;
}

}  // namespace detail

RunResult RunAlgorithm(Algorithm algorithm, const RunConfig& config) {
  const auto sim = detail::MakeSim(algorithm, config);
  while (sim->Step()) {
  }
  return sim->Grade();
}

std::vector<RunResult> RunTrials(Algorithm algorithm, const RunConfig& config,
                                 const std::vector<std::uint64_t>& seeds,
                                 int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  // Budget: outer trial workers × inner engine lanes <= threads. With many
  // seeds the budget goes to trial-level parallelism (inner = 1, exactly the
  // pre-parallel-engine behavior); with few seeds the leftover lanes go to
  // each trial's engine. A pinned config.threads overrides the inner share.
  const int outer = std::max(
      1, std::min(threads, static_cast<int>(
                               std::min<std::size_t>(seeds.size(), 1 << 16))));
  RunConfig budgeted = config;
  if (budgeted.threads == 0) budgeted.threads = std::max(1, threads / outer);
  std::vector<RunResult> results(seeds.size());
  std::atomic<std::size_t> next{0};
  // Failure protocol: a throwing trial must not leave its slot silently
  // default-constructed while the other workers burn through the remaining
  // seeds. The first failure is recorded (with its seed), every worker stops
  // picking up new seeds, all workers are joined, and then one CheckError
  // naming the failing seed(s) is thrown.
  std::atomic<bool> failed{false};
  std::mutex failure_mutex;
  std::size_t failure_count = 0;
  std::uint64_t first_failed_seed = 0;
  std::string first_failure;
  const auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1);
      if (i >= seeds.size()) return;
      RunConfig trial = budgeted;
      trial.seed = seeds[i];
      // The flight recorder is a single-consumer sink: concurrent trials
      // writing the same lanes would interleave runs, so only the first
      // seed's trial traces (a representative run, deterministic choice).
      if (i != 0) trial.recorder = nullptr;
      try {
        results[i] = RunAlgorithm(algorithm, trial);
      } catch (const std::exception& e) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (failure_count++ == 0) {
          first_failed_seed = seeds[i];
          first_failure = e.what();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  if (outer == 1 || seeds.size() <= 1) {
    worker();
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<std::size_t>(outer));
    for (int t = 0; t < outer; ++t) {
      futures.push_back(std::async(std::launch::async, worker));
    }
    for (auto& f : futures) f.get();  // workers trap their own exceptions
  }
  if (failure_count > 0) {
    std::ostringstream os;
    os << "RunTrials: trial with seed " << first_failed_seed
       << " failed: " << first_failure;
    if (failure_count > 1) {
      os << " (and " << (failure_count - 1) << " more trial(s) failed)";
    }
    throw util::CheckError(os.str());
  }
  return results;
}

}  // namespace sdn
