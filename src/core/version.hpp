// Library version constants.
#pragma once

namespace sdn {

constexpr int kVersionMajor = 1;
constexpr int kVersionMinor = 0;
constexpr int kVersionPatch = 0;

/// "major.minor.patch".
const char* VersionString();

}  // namespace sdn
