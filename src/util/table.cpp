#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/check.hpp"

namespace sdn::util {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0 || c == '.' || c == '-' || c == '+' ||
           c == 'e' || c == 'E' || c == '%' || c == 'x' || c == 'k' ||
           c == 'M' || c == 'G';
  });
}

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  SDN_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = width[c] - row[c].size();
      os << (c == 0 ? "| " : " ");
      if (LooksNumeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
      os << " |";
    }
    os << '\n';
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::WriteCsv(const std::string& path) const { WriteCsv(path, {}); }

void Table::WriteCsv(const std::string& path,
                     const std::vector<std::string>& preamble) const {
  std::ofstream out(path);
  SDN_CHECK_MSG(out.good(), "cannot open " << path);
  for (const std::string& line : preamble) out << line << '\n';
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace sdn::util
