#include "util/flags.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace sdn::util {

namespace {

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      const std::string name = body.substr(0, eq);
      SDN_CHECK_MSG(!name.empty(), "malformed flag: " << arg);
      values_[name] = body.substr(eq + 1);
    } else if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::optional<std::string> Flags::Raw(const std::string& name) {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  consumed_[name] = true;
  return it->second;
}

void Flags::Register(const std::string& name, const std::string& def,
                     const std::string& help) {
  const bool known = std::any_of(registry_.begin(), registry_.end(),
                                 [&](const auto& e) { return e.name == name; });
  if (!known) registry_.push_back({name, def, help});
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def,
                           const std::string& help) {
  Register(name, std::to_string(def), help);
  const auto raw = Raw(name);
  if (!raw) return def;
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(*raw, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  SDN_CHECK_MSG(pos == raw->size() && !raw->empty(),
                "flag --" << name << " is not an integer: " << *raw);
  return v;
}

double Flags::GetDouble(const std::string& name, double def,
                        const std::string& help) {
  Register(name, std::to_string(def), help);
  const auto raw = Raw(name);
  if (!raw) return def;
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(*raw, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  SDN_CHECK_MSG(pos == raw->size() && !raw->empty(),
                "flag --" << name << " is not a number: " << *raw);
  return v;
}

bool Flags::GetBool(const std::string& name, bool def,
                    const std::string& help) {
  Register(name, def ? "true" : "false", help);
  const auto raw = Raw(name);
  if (!raw) return def;
  if (*raw == "true" || *raw == "1" || *raw == "yes") return true;
  if (*raw == "false" || *raw == "0" || *raw == "no") return false;
  SDN_CHECK_MSG(false, "flag --" << name << " is not a boolean: " << *raw);
  return def;
}

std::string Flags::GetString(const std::string& name, const std::string& def,
                             const std::string& help) {
  Register(name, def, help);
  const auto raw = Raw(name);
  return raw.value_or(def);
}

std::vector<std::int64_t> Flags::GetIntList(
    const std::string& name, const std::vector<std::int64_t>& def,
    const std::string& help) {
  std::ostringstream defstr;
  for (std::size_t i = 0; i < def.size(); ++i) {
    if (i > 0) defstr << ',';
    defstr << def[i];
  }
  Register(name, defstr.str(), help);
  const auto raw = Raw(name);
  if (!raw) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(*raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
      v = std::stoll(item, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    SDN_CHECK_MSG(pos == item.size(),
                  "flag --" << name << " has a non-integer item: " << item);
    out.push_back(v);
  }
  SDN_CHECK_MSG(!out.empty(), "flag --" << name << " is an empty list");
  return out;
}

std::vector<std::string> Flags::UnconsumedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (consumed_.count(name) == 0) out.push_back(name);
  }
  return out;
}

std::string Flags::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& e : registry_) {
    os << "  --" << e.name << " (default " << e.def << ")";
    if (!e.help.empty()) os << "  " << e.help;
    os << "\n";
  }
  return os.str();
}

}  // namespace sdn::util
