// Work-stealing thread pool for deterministic range parallelism.
//
// The engine's per-round send/deliver loops are embarrassingly parallel over
// node ranges, but their results must be bit-identical at any thread count.
// ParallelFor therefore does not hand out work by thread: it splits [0, n)
// into a caller-chosen number of contiguous *shards* whose boundaries depend
// only on (n, shards), invokes fn(shard, begin, end) exactly once per shard,
// and lets the caller merge per-shard results in shard (= node) order.
// Which thread ran which shard is unobservable in the output.
//
// Scheduling is work-stealing: each participating lane owns a contiguous
// block of shards behind an atomic cursor; a lane that drains its own block
// steals from the other lanes' cursors. The calling thread always
// participates (lane 0), so a pool with zero workers — or a ParallelFor
// capped to one lane — degrades to an ordinary sequential loop over the
// same shard boundaries, which is exactly the determinism story: the serial
// and parallel executions are the same computation in a different order.
//
// One process-wide pool (Shared()) is meant to be reused by every engine;
// concurrent ParallelFor calls from different threads (e.g. RunTrials'
// outer trial workers) interleave on the same workers, so total thread
// count stays bounded by pool size + callers instead of multiplying.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sdn::util {

/// Type-erased move-only callable. std::function demands copyability, but
/// auxiliary-lane tasks own per-round buffers (deltas, composition copies)
/// that are moved into the closure exactly once.
class UniqueTask {
 public:
  UniqueTask() = default;
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueTask>>>
  UniqueTask(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  explicit operator bool() const { return impl_ != nullptr; }
  void operator()() { impl_->Run(); }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual void Run() = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F fn) : f(std::move(fn)) {}
    void Run() override { f(); }
    F f;
  };
  std::unique_ptr<Concept> impl_;
};

/// A persistent auxiliary lane: one dedicated thread draining a bounded
/// FIFO of tasks. This is the engine's overlap primitive — the topology
/// prefetch and the asynchronous certification queue each own one lane and
/// feed it one task per round, so overlap costs a queue handoff instead of
/// the thread launch per round that std::async paid.
///
/// Semantics:
///   - Submit() enqueues; it blocks while `capacity` tasks are already
///     queued or running (bounded-queue backpressure, so a slow consumer
///     can lag at most `capacity` rounds behind the producer).
///   - Drain() blocks until every submitted task has finished, then
///     rethrows the first task exception if any (once). After a task
///     throws, the tasks queued behind it are discarded — they would have
///     consumed state downstream of the failure.
///   - The destructor stops the lane without running still-queued tasks
///     (a task already executing finishes first). Callers that need the
///     results must Drain() before destruction.
///   - Single producer: Submit/Drain must be called from one thread.
///
/// The thread starts lazily on the first Submit, so an idle lane (overlap
/// disabled, serial engine) costs nothing.
class AuxLane {
 public:
  explicit AuxLane(std::size_t capacity = 1);
  ~AuxLane();

  AuxLane(const AuxLane&) = delete;
  AuxLane& operator=(const AuxLane&) = delete;

  void Submit(UniqueTask task);
  void Drain();
  /// True when no task is queued or running (error state counts as idle;
  /// Drain() still reports it).
  [[nodiscard]] bool idle() const;

 private:
  void Loop();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable producer_cv_;  // queue has room / lane is idle
  std::condition_variable worker_cv_;    // queue non-empty / stop
  std::deque<UniqueTask> queue_;
  std::exception_ptr error_;  // first task exception; cleared by Drain
  bool running_ = false;      // a task is executing right now
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

class ThreadPool {
 public:
  /// fn(shard, begin, end): process the half-open index range [begin, end),
  /// which is shard number `shard` of the ParallelFor split.
  using RangeFn =
      std::function<void(int shard, std::int64_t begin, std::int64_t end)>;

  /// Pool with `workers` background threads (>= 0). The caller of
  /// ParallelFor is an extra lane, so `workers + 1` shards can run at once.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrent lanes of one ParallelFor call: workers + the caller.
  [[nodiscard]] int lanes() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Process-wide pool, created on first use and sized so that lanes() ==
  /// max(2, hardware_concurrency): even a single-core host gets two lanes,
  /// so the parallel code path (and its determinism) is always exercised.
  static ThreadPool& Shared();

  /// Splits [0, n) into `shards` near-equal contiguous ranges
  /// ([n*s/shards, n*(s+1)/shards)) and invokes fn once per non-empty
  /// shard, using up to `max_lanes` concurrent lanes (clamped to lanes()
  /// and to `shards`; <= 1 runs every shard inline on the caller).
  /// Blocks until every shard completed. If any fn invocation throws, the
  /// first exception (in completion order) is rethrown after all running
  /// shards finish; remaining unclaimed shards still execute.
  void ParallelFor(std::int64_t n, int shards, int max_lanes,
                   const RangeFn& fn);

 private:
  struct Job;

  void WorkerLoop(int worker_index);
  /// Claims and runs one shard of `job`, preferring `lane`'s own block and
  /// stealing from the other lanes' cursors otherwise. False if every shard
  /// was already claimed.
  static bool RunOneShard(Job& job, int lane);
  static void ExecuteShard(Job& job, int shard);
  /// Pool-mutex-guarded scan for a job with unclaimed shards.
  [[nodiscard]] Job* PickClaimable();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new job / stop
  std::condition_variable idle_cv_;  // callers: workers left my job
  std::vector<Job*> jobs_;           // active, owned by ParallelFor frames
  bool stop_ = false;
};

}  // namespace sdn::util
