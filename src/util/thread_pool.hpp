// Work-stealing thread pool for deterministic range parallelism.
//
// The engine's per-round send/deliver loops are embarrassingly parallel over
// node ranges, but their results must be bit-identical at any thread count.
// ParallelFor therefore does not hand out work by thread: it splits [0, n)
// into a caller-chosen number of contiguous *shards* whose boundaries depend
// only on (n, shards), invokes fn(shard, begin, end) exactly once per shard,
// and lets the caller merge per-shard results in shard (= node) order.
// Which thread ran which shard is unobservable in the output.
//
// Scheduling is work-stealing: each participating lane owns a contiguous
// block of shards behind an atomic cursor; a lane that drains its own block
// steals from the other lanes' cursors. The calling thread always
// participates (lane 0), so a pool with zero workers — or a ParallelFor
// capped to one lane — degrades to an ordinary sequential loop over the
// same shard boundaries, which is exactly the determinism story: the serial
// and parallel executions are the same computation in a different order.
//
// One process-wide pool (Shared()) is meant to be reused by every engine;
// concurrent ParallelFor calls from different threads (e.g. RunTrials'
// outer trial workers) interleave on the same workers, so total thread
// count stays bounded by pool size + callers instead of multiplying.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdn::util {

class ThreadPool {
 public:
  /// fn(shard, begin, end): process the half-open index range [begin, end),
  /// which is shard number `shard` of the ParallelFor split.
  using RangeFn =
      std::function<void(int shard, std::int64_t begin, std::int64_t end)>;

  /// Pool with `workers` background threads (>= 0). The caller of
  /// ParallelFor is an extra lane, so `workers + 1` shards can run at once.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrent lanes of one ParallelFor call: workers + the caller.
  [[nodiscard]] int lanes() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Process-wide pool, created on first use and sized so that lanes() ==
  /// max(2, hardware_concurrency): even a single-core host gets two lanes,
  /// so the parallel code path (and its determinism) is always exercised.
  static ThreadPool& Shared();

  /// Splits [0, n) into `shards` near-equal contiguous ranges
  /// ([n*s/shards, n*(s+1)/shards)) and invokes fn once per non-empty
  /// shard, using up to `max_lanes` concurrent lanes (clamped to lanes()
  /// and to `shards`; <= 1 runs every shard inline on the caller).
  /// Blocks until every shard completed. If any fn invocation throws, the
  /// first exception (in completion order) is rethrown after all running
  /// shards finish; remaining unclaimed shards still execute.
  void ParallelFor(std::int64_t n, int shards, int max_lanes,
                   const RangeFn& fn);

 private:
  struct Job;

  void WorkerLoop(int worker_index);
  /// Claims and runs one shard of `job`, preferring `lane`'s own block and
  /// stealing from the other lanes' cursors otherwise. False if every shard
  /// was already claimed.
  static bool RunOneShard(Job& job, int lane);
  static void ExecuteShard(Job& job, int shard);
  /// Pool-mutex-guarded scan for a job with unclaimed shards.
  [[nodiscard]] Job* PickClaimable();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new job / stop
  std::condition_variable idle_cv_;  // callers: workers left my job
  std::vector<Job*> jobs_;           // active, owned by ParallelFor frames
  bool stop_ = false;
};

}  // namespace sdn::util
