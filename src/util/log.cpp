#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sdn::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

void InitFromEnv() {
  const char* env = std::getenv("SDN_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "error") == 0) g_level = LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) g_level = LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) g_level = LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) g_level = LogLevel::kDebug;
}

const char* Name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  std::call_once(g_env_once, InitFromEnv);
  g_level.store(level, std::memory_order_relaxed);
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(GetLogLevel())) return;
  const std::scoped_lock lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", Name(level), message.c_str());
}

}  // namespace sdn::util
