#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace sdn::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::once_flag g_env_once;
std::mutex g_emit_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_emit_mutex

void InitFromEnv() {
  // Unknown values (typos, empty) leave the default untouched.
  if (const auto level = ParseLogLevel(std::getenv("SDN_LOG_LEVEL"))) {
    g_level = *level;
  }
}

const char* Name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace

std::optional<LogLevel> ParseLogLevel(const char* name) {
  if (name == nullptr) return std::nullopt;
  if (std::strcmp(name, "error") == 0) return LogLevel::kError;
  if (std::strcmp(name, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(name, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(name, "debug") == 0) return LogLevel::kDebug;
  return std::nullopt;
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitFromEnv);
  return g_level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  std::call_once(g_env_once, InitFromEnv);
  g_level.store(level, std::memory_order_relaxed);
}

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(GetLogLevel())) return;
  const std::scoped_lock lock(g_emit_mutex);
  if (g_sink) {
    std::string line = "[";
    line += Name(level);
    line += "] ";
    line += message;
    g_sink(line);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", Name(level), message.c_str());
}

void SetLogSink(std::function<void(const std::string&)> sink) {
  const std::scoped_lock lock(g_emit_mutex);
  g_sink = std::move(sink);
}

}  // namespace sdn::util
