// Aligned console tables and CSV output for the experiment harnesses.
//
// Every bench binary prints the rows a paper table/figure would contain and
// mirrors them to a CSV file so EXPERIMENTS.md numbers are regenerable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sdn::util {

/// Builds a fixed-column table; Print() right-aligns numeric-looking cells.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  static std::string Num(double v, int precision = 1);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with column separators and a rule under the header.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void WriteCsv(const std::string& path) const;

  /// Same, preceded by verbatim comment lines (run-manifest `# key=value`
  /// provenance header; readers skip lines starting with '#').
  void WriteCsv(const std::string& path,
                const std::vector<std::string>& preamble) const;

  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sdn::util
