// Always-on invariant checks.
//
// Simulation correctness is the product here, so internal invariants stay on
// in release builds. A failed check throws sdn::util::CheckError carrying the
// failing expression and location, which tests can assert on and executables
// surface as a fatal diagnostic.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sdn::util {

/// Error thrown by SDN_CHECK on a violated invariant.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void CheckFail(const char* expr, const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream os;
  os << "SDN_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace sdn::util

/// Check `cond`; on failure throw CheckError with the expression text.
#define SDN_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond))                                                          \
      ::sdn::util::detail::CheckFail(#cond, __FILE__, __LINE__, "");      \
  } while (false)

/// Check `cond`; on failure throw CheckError with a streamed message.
#define SDN_CHECK_MSG(cond, msgexpr)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream sdn_check_os_;                                   \
      sdn_check_os_ << msgexpr;                                           \
      ::sdn::util::detail::CheckFail(#cond, __FILE__, __LINE__,           \
                                     sdn_check_os_.str());                \
    }                                                                     \
  } while (false)
