// Deterministic random number generation.
//
// Everything in the simulator derives from explicit 64-bit seeds so every
// trial is replayable from (seed, config) alone. We ship two tiny generators:
//   * SplitMix64 — seed mixing / stream splitting,
//   * Xoshiro256** — the workhorse generator (satisfies
//     std::uniform_random_bit_generator).
// Per-node and per-component streams are derived with Fork(), which mixes a
// stream tag into the parent seed so sibling streams are statistically
// independent and insertion-order independent.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace sdn::util {

/// SplitMix64 step: returns the next output and advances `state`.
std::uint64_t SplitMix64Next(std::uint64_t& state);

/// Mixes (seed, tag) into a new independent seed. Pure function.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t tag);

/// Xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it can
/// drive <random> distributions; we also provide allocation-free helpers for
/// the distributions the simulator actually uses.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as the authors recommend.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits. Inline: this and the bounded draws below sit
  /// on the topology generators' per-edge path, where an out-of-line call
  /// per draw is measurable against the ~2 ns xoshiro step itself.
  result_type operator()() {
    const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = std::rotl(s_[3], 45);
    return result;
  }

  /// Derives an independent child stream identified by `tag`.
  /// Deterministic: same (parent seed, tag) -> same child.
  [[nodiscard]] Rng Fork(std::uint64_t tag) const;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (Lemire).
  std::uint64_t UniformU64(std::uint64_t bound) {
    SDN_CHECK(bound > 0);
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    SDN_CHECK(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) {  // full 64-bit range
      return static_cast<std::int64_t>((*this)());
    }
    return lo + static_cast<std::int64_t>(UniformU64(span));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    // 53 high bits -> [0,1) with full double precision.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Exponential(rate). Requires rate > 0.
  double Exponential(double rate) {
    SDN_CHECK(rate > 0.0);
    // -log(1-U)/rate; 1-U in (0,1] avoids log(0).
    return -std::log1p(-UniformDouble()) / rate;
  }

  /// Bernoulli(p) trial; p clamped to [0,1].
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t Geometric(double p) {
    SDN_CHECK(p > 0.0 && p <= 1.0);
    if (p == 1.0) return 0;
    const double u = UniformDouble();
    return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
  }

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformU64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n) (Floyd's algorithm),
  /// returned sorted. Requires k <= n.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

  /// The seed this generator was constructed from (for reports/replay).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace sdn::util
