// Deterministic random number generation.
//
// Everything in the simulator derives from explicit 64-bit seeds so every
// trial is replayable from (seed, config) alone. We ship two tiny generators:
//   * SplitMix64 — seed mixing / stream splitting,
//   * Xoshiro256** — the workhorse generator (satisfies
//     std::uniform_random_bit_generator).
// Per-node and per-component streams are derived with Fork(), which mixes a
// stream tag into the parent seed so sibling streams are statistically
// independent and insertion-order independent.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace sdn::util {

/// SplitMix64 step: returns the next output and advances `state`.
std::uint64_t SplitMix64Next(std::uint64_t& state);

/// Mixes (seed, tag) into a new independent seed. Pure function.
std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t tag);

/// Xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator, so it can
/// drive <random> distributions; we also provide allocation-free helpers for
/// the distributions the simulator actually uses.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as the authors recommend.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 random bits.
  result_type operator()();

  /// Derives an independent child stream identified by `tag`.
  /// Deterministic: same (parent seed, tag) -> same child.
  [[nodiscard]] Rng Fork(std::uint64_t tag) const;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (Lemire).
  std::uint64_t UniformU64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Exponential(rate). Requires rate > 0.
  double Exponential(double rate);

  /// Bernoulli(p) trial; p clamped to [0,1].
  bool Bernoulli(double p);

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint64_t Geometric(double p);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformU64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// k distinct values sampled uniformly from [0, n) (Floyd's algorithm),
  /// returned sorted. Requires k <= n.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

  /// The seed this generator was constructed from (for reports/replay).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace sdn::util
