// Minimal command-line flag parsing for benches and examples.
//
// Syntax: --name=value or --name value; bare --name is a boolean true.
// Unknown leading non-flag tokens are kept as positional arguments.
// Typed getters fall back to a caller-supplied default and record the flag in
// a help registry so every binary can print its accepted flags.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sdn::util {

class Flags {
 public:
  Flags() = default;
  /// Parses argv; throws CheckError on malformed input (e.g. "--=x").
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool Has(const std::string& name) const;

  /// Typed getters; also register (name, default, help) for Usage().
  std::int64_t GetInt(const std::string& name, std::int64_t def,
                      const std::string& help = "");
  double GetDouble(const std::string& name, double def,
                   const std::string& help = "");
  bool GetBool(const std::string& name, bool def, const std::string& help = "");
  std::string GetString(const std::string& name, const std::string& def,
                        const std::string& help = "");

  /// Comma-separated integer list, e.g. --n=16,32,64.
  std::vector<std::int64_t> GetIntList(const std::string& name,
                                       const std::vector<std::int64_t>& def,
                                       const std::string& help = "");

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Flags that were supplied but never queried — typo detection for benches.
  [[nodiscard]] std::vector<std::string> UnconsumedFlags() const;

  /// Human-readable usage text from everything registered by the getters.
  [[nodiscard]] std::string Usage(const std::string& program) const;

 private:
  std::optional<std::string> Raw(const std::string& name);
  void Register(const std::string& name, const std::string& def,
                const std::string& help);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
  struct HelpEntry {
    std::string name;
    std::string def;
    std::string help;
  };
  std::vector<HelpEntry> registry_;
};

}  // namespace sdn::util
