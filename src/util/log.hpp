// Leveled logging to stderr.
//
// The simulator itself never logs on hot paths; logging is for harness
// progress lines and diagnostics. Level is process-global and settable via
// the SDN_LOG_LEVEL environment variable (error|warn|info|debug).
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>

namespace sdn::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current threshold; messages above it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// "error"/"warn"/"info"/"debug" -> the level; nullopt for anything else
/// (unknown values must fall back to the default, never crash a run).
std::optional<LogLevel> ParseLogLevel(const char* name);

/// Emits one line "[level] message" to stderr if `level` passes the filter.
void LogLine(LogLevel level, const std::string& message);

/// Redirects emission: the sink receives each fully formatted line (no
/// trailing newline) under the same mutex that serializes stderr writes, so
/// lines never interleave regardless of sink. nullptr restores stderr.
/// Test/ harness hook — not for hot paths.
void SetLogSink(std::function<void(const std::string&)> sink);

namespace detail {

/// Temporary stream that emits on destruction (enables SDN_LOG(...) << x).
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace sdn::util

#define SDN_LOG_ERROR ::sdn::util::detail::LogStream(::sdn::util::LogLevel::kError)
#define SDN_LOG_WARN ::sdn::util::detail::LogStream(::sdn::util::LogLevel::kWarn)
#define SDN_LOG_INFO ::sdn::util::detail::LogStream(::sdn::util::LogLevel::kInfo)
#define SDN_LOG_DEBUG ::sdn::util::detail::LogStream(::sdn::util::LogLevel::kDebug)
