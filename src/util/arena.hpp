// Arena allocation and per-subsystem memory accounting.
//
// Million-node runs live or die on allocation behavior: one Engine round at
// n = 2^20 touches a ~200 MB outbox, a multi-hundred-MB sketch pool and a
// CSR topology, and the difference between "one contiguous block charged to
// a named budget" and "a million individually-tracked vectors" is both the
// cache behavior of the hot loops and the ability to say where the bytes
// went. Two pieces:
//
//   * Arena — a chunked bump allocator for engine-lifetime arrays (outbox
//     slots, sent flags). Allocation is pointer arithmetic; nothing is ever
//     freed individually (the arena releases every chunk at destruction).
//     Callers that place non-trivially-destructible objects must destroy
//     them before the arena dies (Engine's destructor does).
//
//   * MemoryBudget — named gauges recording current and peak bytes per
//     subsystem ("outbox", "sketch_pool", "topology", ...). The engine
//     charges its deterministic allocations here and snapshots the gauges
//     into RunStats::memory, so every run reports its footprint breakdown
//     and bench_scale/CI can gate bytes-per-node at scale. Only
//     deterministic quantities are charged (sizes that are pure functions
//     of n and the topology stream) — timing-dependent scratch (adaptive
//     gather buffers) is excluded so RunStats stays bit-identical across
//     thread counts and backings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace sdn::util {

/// Chunked bump allocator. Not thread-safe (one owner per arena — the
/// engine allocates only from the driving thread, outside the parallel
/// phases). Every chunk is max-aligned for alignas(64) message slots.
class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = std::size_t{1} << 20)
      : chunk_bytes_(chunk_bytes) {
    SDN_CHECK(chunk_bytes >= 64);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (Chunk& c : chunks_) {
      ::operator delete(c.data, std::align_val_t{kChunkAlign});
    }
  }

  /// Raw allocation; `align` must be a power of two <= 64. Oversized
  /// requests get a dedicated chunk, so arbitrarily large arrays work.
  void* Allocate(std::size_t bytes, std::size_t align) {
    SDN_CHECK(align > 0 && align <= kChunkAlign &&
              (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    if (chunks_.empty() || !Fits(chunks_.back(), bytes, align)) {
      NewChunk(std::max(bytes, chunk_bytes_));
    }
    Chunk& c = chunks_.back();
    const std::size_t offset = (c.used + align - 1) & ~(align - 1);
    c.used = offset + bytes;
    bytes_allocated_ += bytes;
    return static_cast<std::byte*>(c.data) + offset;
  }

  /// Default-constructed array of `count` T. The arena never runs element
  /// destructors — callers owning non-trivially-destructible T must destroy
  /// the elements themselves before the arena is destroyed.
  template <typename T>
  std::span<T> MakeArray(std::size_t count) {
    static_assert(alignof(T) <= kChunkAlign);
    T* p = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < count; ++i) new (p + i) T();
    return {p, count};
  }

  /// Bytes handed out (excluding alignment padding).
  [[nodiscard]] std::size_t bytes_allocated() const {
    return bytes_allocated_;
  }
  /// Bytes reserved from the system across all chunks.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr std::size_t kChunkAlign = 64;

  struct Chunk {
    void* data = nullptr;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static bool Fits(const Chunk& c, std::size_t bytes, std::size_t align) {
    const std::size_t offset = (c.used + align - 1) & ~(align - 1);
    return offset + bytes <= c.size;
  }

  void NewChunk(std::size_t bytes) {
    Chunk c;
    c.data = ::operator new(bytes, std::align_val_t{kChunkAlign});
    c.size = bytes;
    chunks_.push_back(c);
    bytes_reserved_ += bytes;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// One named byte gauge: current level plus high-water mark.
class MemoryGauge {
 public:
  void Add(std::int64_t bytes) { SetCurrent(current_ + bytes); }
  void SetCurrent(std::int64_t bytes) {
    current_ = bytes;
    if (current_ > peak_) peak_ = current_;
  }
  [[nodiscard]] std::int64_t current() const { return current_; }
  [[nodiscard]] std::int64_t peak() const { return peak_; }

 private:
  std::int64_t current_ = 0;
  std::int64_t peak_ = 0;
};

/// Registry of named MemoryGauges. Gauge pointers are stable for the
/// budget's lifetime, so hot paths resolve a name once and update through
/// the pointer. Not thread-safe: all charge sites run on the engine's
/// driving thread (or under the caller's own ordering).
class MemoryBudget {
 public:
  /// The gauge named `name`, created empty on first use.
  MemoryGauge* Get(std::string_view name) {
    for (auto& [k, gauge] : gauges_) {
      if (k == name) return gauge.get();
    }
    gauges_.emplace_back(std::string(name), std::make_unique<MemoryGauge>());
    return gauges_.back().second.get();
  }

  struct Entry {
    std::string subsystem;
    std::int64_t current_bytes = 0;
    std::int64_t peak_bytes = 0;
  };

  /// All gauges in registration order.
  [[nodiscard]] std::vector<Entry> Snapshot() const {
    std::vector<Entry> out;
    out.reserve(gauges_.size());
    for (const auto& [name, gauge] : gauges_) {
      out.push_back({name, gauge->current(), gauge->peak()});
    }
    return out;
  }

  /// Sum of peak bytes over all gauges (subsystem peaks need not coincide
  /// in time, so this upper-bounds the true simultaneous peak).
  [[nodiscard]] std::int64_t TotalPeakBytes() const {
    std::int64_t total = 0;
    for (const auto& [name, gauge] : gauges_) total += gauge->peak();
    return total;
  }

  /// Peak of one subsystem; 0 if never charged.
  [[nodiscard]] std::int64_t PeakBytes(std::string_view name) const {
    for (const auto& [k, gauge] : gauges_) {
      if (k == name) return gauge->peak();
    }
    return 0;
  }

 private:
  std::vector<std::pair<std::string, std::unique_ptr<MemoryGauge>>> gauges_;
};

}  // namespace sdn::util
