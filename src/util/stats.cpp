#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::util {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double QuantileSorted(std::span<const double> sorted, double q) {
  SDN_CHECK(!sorted.empty());
  SDN_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  Accumulator acc;
  for (double x : sorted) acc.Add(x);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.p25 = QuantileSorted(sorted, 0.25);
  s.median = QuantileSorted(sorted, 0.5);
  s.p75 = QuantileSorted(sorted, 0.75);
  s.p95 = QuantileSorted(sorted, 0.95);
  return s;
}

Interval BootstrapMeanCI(std::span<const double> xs, double confidence,
                         int resamples, Rng& rng) {
  SDN_CHECK(confidence > 0.0 && confidence < 1.0);
  SDN_CHECK(resamples > 0);
  if (xs.empty()) return {};
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sum += xs[rng.UniformU64(xs.size())];
    }
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  std::sort(means.begin(), means.end());
  const double alpha = (1.0 - confidence) / 2.0;
  return {QuantileSorted(means, alpha), QuantileSorted(means, 1.0 - alpha)};
}

double LogLogSlope(std::span<const double> x, std::span<const double> y) {
  SDN_CHECK(x.size() == y.size());
  std::vector<double> lx;
  std::vector<double> ly;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  if (lx.size() < 2) return 0.0;
  return FitLinear(lx, ly).slope;
}

LinearFit FitLinear(std::span<const double> x, std::span<const double> y) {
  SDN_CHECK(x.size() == y.size());
  LinearFit fit;
  const auto n = static_cast<double>(x.size());
  if (x.size() < 2) return fit;
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

std::string HumanCount(double v) {
  const char* suffix = "";
  double scaled = v;
  if (std::fabs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::fabs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::fabs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[32];
  if (suffix[0] == '\0' && scaled == std::floor(scaled)) {
    std::snprintf(buf, sizeof buf, "%.0f", scaled);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f%s", scaled, suffix);
  }
  return buf;
}

}  // namespace sdn::util
