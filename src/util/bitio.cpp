#include "util/bitio.hpp"

#include <bit>
#include <cstring>

#include "util/check.hpp"

namespace sdn::util {

void BitWriter::Write(std::uint64_t value, int bits) {
  SDN_CHECK(bits >= 0 && bits <= 64);
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = bit_count_ / 8;
    const unsigned offset = static_cast<unsigned>(bit_count_ % 8);
    if (byte == bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1ULL) {
      bytes_[byte] = static_cast<std::uint8_t>(bytes_[byte] | (1u << offset));
    }
    ++bit_count_;
  }
}

void BitWriter::WriteVarint(std::uint64_t value) {
  while (true) {
    const auto group = static_cast<std::uint64_t>(value & 0x7fULL);
    value >>= 7;
    if (value == 0) {
      Write(group, 7);
      Write(0, 1);
      return;
    }
    Write(group, 7);
    Write(1, 1);
  }
}

void BitWriter::WriteSignedVarint(std::int64_t value) {
  const auto u = static_cast<std::uint64_t>(value);
  WriteVarint((u << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

void BitWriter::WriteDouble(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof bits);
  Write(bits, 64);
}

std::uint64_t BitReader::Read(int bits) {
  SDN_CHECK(bits >= 0 && bits <= 64);
  SDN_CHECK_MSG(pos_ + static_cast<std::size_t>(bits) <= bytes_.size() * 8,
                "BitReader past end");
  std::uint64_t value = 0;
  for (int i = 0; i < bits; ++i) {
    const std::size_t byte = pos_ / 8;
    const unsigned offset = static_cast<unsigned>(pos_ % 8);
    if ((bytes_[byte] >> offset) & 1u) value |= (1ULL << i);
    ++pos_;
  }
  return value;
}

std::uint64_t BitReader::ReadVarint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (true) {
    const std::uint64_t group = Read(7);
    const std::uint64_t more = Read(1);
    value |= group << shift;
    if (more == 0) return value;
    shift += 7;
    SDN_CHECK_MSG(shift < 64, "varint too long");
  }
}

std::int64_t BitReader::ReadSignedVarint() {
  const std::uint64_t u = ReadVarint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

double BitReader::ReadDouble() {
  const std::uint64_t bits = Read(64);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof value);
  return value;
}

int BitWidth(std::uint64_t value) {
  return value == 0 ? 1 : static_cast<int>(std::bit_width(value));
}

std::size_t VarintBits(std::uint64_t value) {
  std::size_t groups = 1;
  while (value >>= 7) ++groups;
  return groups * 8;
}

}  // namespace sdn::util
