// Descriptive statistics for experiment harnesses.
//
// Benches run many seeded trials per configuration and report summaries; this
// header provides the summary math (moments, quantiles, bootstrap confidence
// intervals, least-squares log-log slope fits for growth-exponent tables).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace sdn::util {

class Rng;

/// One-pass moment accumulator (Welford).
class Accumulator {
 public:
  void Add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Full summary of a sample; computed in one call for report rows.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Summarizes `xs` (copies and sorts internally; xs may be empty -> zeros).
Summary Summarize(std::span<const double> xs);

/// Linear-interpolated quantile of a *sorted* sample, q in [0,1].
double QuantileSorted(std::span<const double> sorted, double q);

/// Percentile-bootstrap confidence interval for the mean.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};
Interval BootstrapMeanCI(std::span<const double> xs, double confidence,
                         int resamples, Rng& rng);

/// Least-squares slope of log(y) against log(x): the empirical growth
/// exponent b in y ≈ a·x^b. Pairs with x<=0 or y<=0 are skipped.
/// Returns 0 when fewer than two usable points remain.
double LogLogSlope(std::span<const double> x, std::span<const double> y);

/// Ordinary least-squares fit y = a + b·x.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit FitLinear(std::span<const double> x, std::span<const double> y);

/// Human-readable "12.3k / 4.56M" formatting for table cells.
std::string HumanCount(double v);

}  // namespace sdn::util
