#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/check.hpp"

namespace sdn::util {

AuxLane::AuxLane(std::size_t capacity) : capacity_(capacity) {
  SDN_CHECK(capacity_ >= 1);
}

AuxLane::~AuxLane() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
    stop_ = true;
    queue_.clear();  // still-queued tasks are abandoned, by contract
  }
  worker_cv_.notify_all();
  thread_.join();
}

void AuxLane::Submit(UniqueTask task) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  producer_cv_.wait(lock, [this] {
    return queue_.size() + (running_ ? 1 : 0) < capacity_;
  });
  if (error_) return;  // lane is poisoned until Drain() reports it
  queue_.push_back(std::move(task));
  lock.unlock();
  worker_cv_.notify_one();
}

void AuxLane::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_) return;
  producer_cv_.wait(lock, [this] { return queue_.empty() && !running_; });
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    lock.unlock();
    std::rethrow_exception(e);
  }
}

bool AuxLane::idle() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.empty() && !running_;
}

void AuxLane::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    worker_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    UniqueTask task = std::move(queue_.front());
    queue_.pop_front();
    running_ = true;
    lock.unlock();
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    running_ = false;
    if (error) {
      if (!error_) error_ = error;
      queue_.clear();  // downstream tasks would consume poisoned state
    }
    producer_cv_.notify_all();
  }
}

/// One ParallelFor call. Lives on the caller's stack; workers only touch it
/// between registering as active (under the pool mutex) and deregistering,
/// and the caller does not return before active_workers drops to zero.
struct ThreadPool::Job {
  std::int64_t n = 0;
  int shards = 0;
  int lanes = 0;
  const RangeFn* fn = nullptr;

  /// cursor[l] is the next shard lane l will claim; lane l owns the block
  /// [lane_begin[l], lane_begin[l+1]). Thieves fetch_add a victim's cursor
  /// exactly like the owner, so every shard is claimed exactly once.
  std::unique_ptr<std::atomic<int>[]> cursor;
  std::vector<int> lane_begin;  // size lanes + 1

  std::atomic<int> completed{0};
  int active_workers = 0;  // guarded by the pool mutex

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;  // guarded by done_mutex; first one wins

  [[nodiscard]] bool HasUnclaimed() const {
    for (int l = 0; l < lanes; ++l) {
      const auto li = static_cast<std::size_t>(l);
      if (cursor[li].load(std::memory_order_relaxed) < lane_begin[li + 1]) {
        return true;
      }
    }
    return false;
  }
};

ThreadPool::ThreadPool(int workers) {
  SDN_CHECK(workers >= 0);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool([] {
    const auto hw = static_cast<int>(std::thread::hardware_concurrency());
    return std::max(1, hw - 1);  // + the calling lane = max(2, hw)
  }());
  return pool;
}

void ThreadPool::ExecuteShard(Job& job, int shard) {
  const std::int64_t begin = job.n * shard / job.shards;
  const std::int64_t end = job.n * (shard + 1) / job.shards;
  if (begin < end) {
    try {
      (*job.fn)(shard, begin, end);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.done_mutex);
      if (!job.error) job.error = std::current_exception();
    }
  }
  if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      job.shards) {
    // Lock so the notify cannot slip between the waiter's predicate check
    // and its wait.
    const std::lock_guard<std::mutex> lock(job.done_mutex);
    job.done_cv.notify_all();
  }
}

bool ThreadPool::RunOneShard(Job& job, int lane) {
  for (int i = 0; i < job.lanes; ++i) {
    // Own block first, then steal from the other lanes' cursors.
    const auto l = static_cast<std::size_t>((lane + i) % job.lanes);
    const int c = job.cursor[l].fetch_add(1, std::memory_order_relaxed);
    if (c < job.lane_begin[l + 1]) {
      ExecuteShard(job, c);
      return true;
    }
  }
  return false;
}

ThreadPool::Job* ThreadPool::PickClaimable() {
  for (Job* job : jobs_) {
    if (job->HasUnclaimed()) return job;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop(int worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || PickClaimable() != nullptr; });
    if (stop_) return;
    Job* job = PickClaimable();
    if (job == nullptr) continue;
    ++job->active_workers;
    lock.unlock();
    // Lane 0 is the caller's; workers spread over the remaining lanes.
    const int lane = job->lanes > 1 ? 1 + worker_index % (job->lanes - 1) : 0;
    while (RunOneShard(*job, lane)) {
    }
    lock.lock();
    if (--job->active_workers == 0) idle_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(std::int64_t n, int shards, int max_lanes,
                             const RangeFn& fn) {
  SDN_CHECK(n >= 0);
  SDN_CHECK(shards >= 1);
  if (n == 0) return;

  Job job;
  job.n = n;
  job.shards = shards;
  job.lanes = std::clamp(std::min(max_lanes, lanes()), 1, shards);
  job.fn = &fn;
  job.cursor = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(job.lanes));
  job.lane_begin.resize(static_cast<std::size_t>(job.lanes) + 1);
  for (int l = 0; l <= job.lanes; ++l) {
    job.lane_begin[static_cast<std::size_t>(l)] = shards * l / job.lanes;
  }
  for (int l = 0; l < job.lanes; ++l) {
    const auto li = static_cast<std::size_t>(l);
    job.cursor[li].store(job.lane_begin[li], std::memory_order_relaxed);
  }

  if (job.lanes > 1) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      jobs_.push_back(&job);
    }
    work_cv_.notify_all();
  }

  // The caller is lane 0 and works like everyone else.
  while (RunOneShard(job, 0)) {
  }
  {
    std::unique_lock<std::mutex> lock(job.done_mutex);
    job.done_cv.wait(lock, [&job] {
      return job.completed.load(std::memory_order_acquire) == job.shards;
    });
  }

  if (job.lanes > 1) {
    std::unique_lock<std::mutex> lock(mutex_);
    jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
    idle_cv_.wait(lock, [&job] { return job.active_workers == 0; });
  }

  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace sdn::util
