// Bit-level serialization used for honest message-size accounting.
//
// Algorithms in the bounded-bandwidth regime must encode their per-round
// message through BitWriter; the resulting bit count is what the engine
// charges against the bandwidth policy. Varint/zigzag encodings match what a
// real wire format would spend, so the T6 bandwidth table is meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sdn::util {

class BitWriter {
 public:
  /// Appends the low `bits` bits of `value` (LSB-first). bits in [0,64].
  void Write(std::uint64_t value, int bits);

  /// LEB128-style varint: 7 value bits + 1 continuation bit per byte-group.
  void WriteVarint(std::uint64_t value);

  /// Zigzag-mapped signed varint.
  void WriteSignedVarint(std::int64_t value);

  /// IEEE-754 double, 64 bits.
  void WriteDouble(double value);

  [[nodiscard]] std::size_t bit_count() const { return bit_count_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `bits` bits (LSB-first); throws CheckError past the end.
  std::uint64_t Read(int bits);
  std::uint64_t ReadVarint();
  std::int64_t ReadSignedVarint();
  double ReadDouble();

  [[nodiscard]] std::size_t bit_position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Bits needed to represent `value` (>=1 even for 0, as a wire field).
int BitWidth(std::uint64_t value);

/// Size in bits of the varint encoding of `value`.
std::size_t VarintBits(std::uint64_t value);

}  // namespace sdn::util
