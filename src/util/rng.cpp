#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace sdn::util {

std::uint64_t SplitMix64Next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t tag) {
  // Feed the tag through one SplitMix64 step keyed by the seed; a plain
  // xor would make Fork(a).Fork(b) collide with Fork(b).Fork(a).
  std::uint64_t state = seed ^ (0x94d049bb133111ebULL * (tag + 1));
  std::uint64_t mixed = SplitMix64Next(state);
  state = mixed ^ seed;
  return SplitMix64Next(state);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork(std::uint64_t tag) const { return Rng(MixSeed(seed_, tag)); }

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  SDN_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SDN_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>((*this)());
  }
  return lo + static_cast<std::int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::Exponential(double rate) {
  SDN_CHECK(rate > 0.0);
  // -log(1-U)/rate; 1-U in (0,1] avoids log(0).
  return -std::log1p(-UniformDouble()) / rate;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::uint64_t Rng::Geometric(double p) {
  SDN_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  const double u = UniformDouble();
  return static_cast<std::uint64_t>(std::log1p(-u) / std::log1p(-p));
}

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::uint64_t k) {
  SDN_CHECK(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  // Floyd's algorithm: O(k) expected draws, produces a uniform k-subset.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = UniformU64(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sdn::util
