#include "util/rng.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdn::util {

std::uint64_t SplitMix64Next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t MixSeed(std::uint64_t seed, std::uint64_t tag) {
  // Feed the tag through one SplitMix64 step keyed by the seed; a plain
  // xor would make Fork(a).Fork(b) collide with Fork(b).Fork(a).
  std::uint64_t state = seed ^ (0x94d049bb133111ebULL * (tag + 1));
  std::uint64_t mixed = SplitMix64Next(state);
  state = mixed ^ seed;
  return SplitMix64Next(state);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64Next(sm);
}

Rng Rng::Fork(std::uint64_t tag) const { return Rng(MixSeed(seed_, tag)); }

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::uint64_t k) {
  SDN_CHECK(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  // Floyd's algorithm: O(k) expected draws, produces a uniform k-subset.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = UniformU64(j + 1);
    if (std::find(out.begin(), out.end(), t) == out.end()) {
      out.push_back(t);
    } else {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sdn::util
