// Topology trace files.
//
// A trace is a recorded dynamic-graph sequence plus the T it was generated
// under. Traces make failures reproducible across machines, allow paired
// algorithm comparisons on identical dynamics, and let external topology
// data (e.g. converted mobility traces) drive the simulator through
// ReplayAdversary.
//
// Two text formats (line oriented, '#' comments allowed):
//
// Version 1 — every round carries its full edge list:
//   sdn-trace 1
//   nodes <N> interval <T> rounds <R>
//   round <r> edges <m>
//   <u> <v>                          (m lines)
//   ...
//
// Version 2 — delta-encoded (the default writer output). Keyframe rounds
// (round 1, then every K rounds: r ≡ 1 (mod K)) carry the full edge list;
// every other round carries the delta against round r-1. Rounds are
// numbered 1..R strictly in order and the stream ends at EOF (no round
// count in the header, so the format can be written streamingly):
//   sdn-trace 2
//   nodes <N> interval <T> keyframe <K>
//   round <r> full <m>               (keyframe)
//   <u> <v>                          (m lines)
//   round <r> delta <a> <d>          (non-keyframe)
//   +<u> <v>                         (a added-edge lines, sorted)
//   -<u> <v>                         (d removed-edge lines, sorted)
//   ...
// Under the T-interval promise consecutive rounds differ by few edges, so
// v2 is much smaller than v1 for the same sequence; keyframes bound how
// much a reader must replay and make truncated files recoverable up to the
// last complete round.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace sdn::net {

struct Trace {
  int interval = 1;
  std::vector<graph::Graph> rounds;

  [[nodiscard]] graph::NodeId num_nodes() const {
    return rounds.empty() ? 0 : rounds.front().num_nodes();
  }
};

struct TraceWriteOptions {
  /// 1 = full per-round edge lists, 2 = delta-encoded with keyframes.
  int version = 2;
  /// v2 keyframe period K (round r is a keyframe iff r ≡ 1 mod K).
  std::int64_t keyframe_every = 64;
};

/// Writes the sequence; CheckError on I/O failure or empty/ragged input.
void SaveTrace(const std::string& path, std::span<const graph::Graph> rounds,
               int interval, TraceWriteOptions options = {});

/// Parses a trace file of either version; CheckError on malformed input.
Trace LoadTrace(const std::string& path);

/// Streaming v2 reader: the dual of TraceRecorder. Rounds are parsed one at
/// a time with O(E_round) live state — one reused edge/delta buffer, never
/// the whole sequence — so a million-node trace can drive the engine
/// (StreamingTraceAdversary) with a topology footprint independent of the
/// number of rounds, where LoadTrace would materialize rounds · CSR.
class TraceStreamReader {
 public:
  /// What one parsed round carries: a full (sorted) edge list on keyframe
  /// rounds, a delta against round-1 otherwise. Buffers are reused across
  /// Next() calls.
  struct Round {
    std::int64_t round = 0;
    bool keyframe = false;
    std::vector<graph::Edge> full;  // keyframe rounds only
    graph::TopologyDelta delta;     // non-keyframe rounds only
  };

  /// Opens `path` and parses the v2 header; CheckError on I/O failure, a
  /// malformed header, or a v1 trace (which has no delta stream to read).
  explicit TraceStreamReader(const std::string& path);

  [[nodiscard]] graph::NodeId num_nodes() const { return n_; }
  [[nodiscard]] int interval() const { return interval_; }
  [[nodiscard]] std::int64_t keyframe_every() const { return keyframe_every_; }

  /// Parses the next round into `out`; false at EOF. Round numbering and
  /// keyframe cadence are validated; delta contents are validated by the
  /// consumer's DynGraph::Apply (same protocol as LoadTrace).
  bool Next(Round& out);

  [[nodiscard]] std::int64_t rounds_read() const { return rounds_; }

 private:
  std::ifstream in_;
  std::string path_;
  std::string line_;
  graph::NodeId n_ = 0;
  int interval_ = 1;
  std::int64_t keyframe_every_ = 1;
  std::int64_t rounds_ = 0;
};

/// Streaming v2 writer: rounds are appended one at a time and hit the file
/// as they arrive, so the engine can record arbitrarily long runs without
/// retaining the graph sequence in memory (EngineOptions::record_trace).
class TraceRecorder {
 public:
  /// Opens `path` and writes the v2 header; CheckError on I/O failure.
  TraceRecorder(const std::string& path, graph::NodeId n, int interval,
                std::int64_t keyframe_every = 64);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Appends round rounds_written()+1, diffing against the previous round
  /// internally.
  void Push(const graph::Graph& g);

  /// Delta fast path: `g` is the round's topology, `delta` the delta that
  /// produced it from the previous round (exactly what the incremental
  /// engine already has in hand).
  void Push(const graph::Graph& g, const graph::TopologyDelta& delta);

  [[nodiscard]] std::int64_t rounds_written() const { return rounds_; }

  /// Flushes and closes; CheckError on I/O failure. Idempotent; the
  /// destructor closes too (swallowing errors, so call Close() when the
  /// file matters).
  void Close();

 private:
  std::ofstream out_;
  std::string path_;
  graph::NodeId n_;
  std::int64_t keyframe_every_;
  std::int64_t rounds_ = 0;
  std::vector<graph::Edge> prev_edges_;
  graph::TopologyDelta scratch_;
};

}  // namespace sdn::net
