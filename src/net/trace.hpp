// Topology trace files.
//
// A trace is a recorded dynamic-graph sequence plus the T it was generated
// under. Traces make failures reproducible across machines, allow paired
// algorithm comparisons on identical dynamics, and let external topology
// data (e.g. converted mobility traces) drive the simulator through
// ReplayAdversary.
//
// Text format (line oriented, '#' comments allowed):
//   sdn-trace 1
//   nodes <N> interval <T> rounds <R>
//   round <r> edges <m>
//   <u> <v>
//   ...
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace sdn::net {

struct Trace {
  int interval = 1;
  std::vector<graph::Graph> rounds;

  [[nodiscard]] graph::NodeId num_nodes() const {
    return rounds.empty() ? 0 : rounds.front().num_nodes();
  }
};

/// Writes the sequence; CheckError on I/O failure or empty/ragged input.
void SaveTrace(const std::string& path, std::span<const graph::Graph> rounds,
               int interval);

/// Parses a trace file; CheckError on malformed input.
Trace LoadTrace(const std::string& path);

}  // namespace sdn::net
