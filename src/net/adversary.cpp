#include "net/adversary.hpp"

#include "util/check.hpp"

namespace sdn::net {

void Adversary::DeltaFor(std::int64_t round, const AdversaryView& view,
                         const graph::Graph& prev, graph::TopologyDelta& out) {
  const graph::Graph g = TopologyFor(round, view);
  SDN_CHECK_MSG(g.num_nodes() == prev.num_nodes(),
                "DeltaFor: adversary produced " << g.num_nodes()
                                                << " nodes, previous round had "
                                                << prev.num_nodes());
  graph::DiffSorted(prev.Edges(), g.Edges(), out);
}

bool Adversary::RoundEdgesInto(std::int64_t, const AdversaryView&,
                               std::vector<graph::Edge>&) {
  return false;
}

}  // namespace sdn::net
