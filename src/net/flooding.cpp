#include "net/flooding.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdn::net {

FloodProbe::FloodProbe(graph::NodeId n, graph::NodeId source,
                       std::int64_t start_round)
    : n_(n),
      source_(source),
      start_round_(start_round),
      reached_(static_cast<std::size_t>(n), false) {
  SDN_CHECK(source >= 0 && source < n);
  SDN_CHECK(start_round >= 1);
  reached_[static_cast<std::size_t>(source)] = true;
  reached_count_ = 1;
  informed_.push_back(source);
  if (n_ == 1) completed_at_ = start_round_ - 1;  // trivially done, 0 rounds
}

void FloodProbe::Push(std::int64_t round, const graph::Graph& g) {
  SDN_CHECK(g.num_nodes() == n_);
  if (complete() || round < start_round_) return;
  // Every informed node forwards every round: the nodes informed *after* this
  // round are exactly the neighbors of the start-of-round informed set. Only
  // scan the snapshot prefix of informed_ so a token moves one hop per round
  // (nodes appended during the scan must not relay until next round). Old
  // informed nodes must be rescanned every round — in a dynamic graph they
  // may meet fresh neighbors at any time — hence the full prefix scan.
  const std::size_t informed_before = informed_.size();
  for (std::size_t i = 0; i < informed_before; ++i) {
    const graph::NodeId u = informed_[i];
    for (const graph::NodeId v : g.Neighbors(u)) {
      if (!reached_[static_cast<std::size_t>(v)]) {
        reached_[static_cast<std::size_t>(v)] = true;
        informed_.push_back(v);
      }
    }
  }
  reached_count_ = static_cast<graph::NodeId>(informed_.size());
  if (complete()) completed_at_ = round;
}

std::int64_t FloodProbe::completion_rounds() const {
  if (!complete()) return -1;
  return completed_at_ - start_round_ + 1;
}

FloodingSummary SummarizeProbes(const std::vector<FloodProbe>& probes) {
  FloodingSummary s;
  s.probes = static_cast<std::int64_t>(probes.size());
  double total = 0.0;
  for (const FloodProbe& p : probes) {
    if (!p.complete()) continue;
    ++s.completed;
    const std::int64_t rounds = p.completion_rounds();
    s.max_rounds = std::max(s.max_rounds, rounds);
    total += static_cast<double>(rounds);
  }
  if (s.completed > 0) s.mean_rounds = total / static_cast<double>(s.completed);
  return s;
}

std::int64_t DynamicFloodingTime(std::span<const graph::Graph> sequence) {
  if (sequence.empty()) return -1;
  const graph::NodeId n = sequence[0].num_nodes();
  std::int64_t worst = 0;
  for (graph::NodeId src = 0; src < n; ++src) {
    FloodProbe probe(n, src, 1);
    std::int64_t round = 1;
    for (const graph::Graph& g : sequence) {
      probe.Push(round, g);
      if (probe.complete()) break;
      ++round;
    }
    if (!probe.complete()) return -1;
    worst = std::max(worst, probe.completion_rounds());
  }
  return worst;
}

}  // namespace sdn::net
