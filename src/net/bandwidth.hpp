// Bandwidth regimes.
//
// The model's interesting regime is O(log N)-bit messages (CONGEST-style);
// the unbounded regime exists because exact Count fundamentally needs to move
// Ω(N log N) bits across a cut and the abstract does not say which regime the
// paper's Count uses (see DESIGN.md §0/§4.2). The engine *enforces* the
// declared regime: any message whose encoded size exceeds the per-round limit
// is a CheckError, so no algorithm can quietly cheat its complexity class.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace sdn::net {

enum class BandwidthMode {
  kUnbounded,
  kBoundedLogN,
};

struct BandwidthPolicy {
  BandwidthMode mode = BandwidthMode::kBoundedLogN;
  /// Bounded regime limit = max(floor_bits, ceil(multiplier·log2(max(n,2)))).
  double multiplier = 64.0;
  /// The additive constant of the O(log N) bound: concrete encodings have
  /// fixed-size fields (hashes, tags) that dominate at tiny N.
  std::int64_t floor_bits = 256;

  /// Per-message bit budget for an n-node network; INT64_MAX if unbounded.
  [[nodiscard]] std::int64_t BitLimit(graph::NodeId n) const;

  static BandwidthPolicy Unbounded() {
    return {BandwidthMode::kUnbounded, 0.0, 0};
  }
  static BandwidthPolicy BoundedLogN(double multiplier = 64.0,
                                     std::int64_t floor_bits = 256) {
    return {BandwidthMode::kBoundedLogN, multiplier, floor_bits};
  }
};

const char* ToString(BandwidthMode mode);

}  // namespace sdn::net
