// Measurement-driven choice between two interchangeable backings.
//
// The engine has phases with two bit-identical implementations whose
// relative cost depends on the workload and the machine, not on anything
// knowable statically: dense CSR delivery vs the pointer gather, and (by a
// separate churn heuristic in the engine) direct topology assignment vs
// delta patching. PR 4 selected dense delivery with a static predicate
// ("every node sent"), and BENCH_engine.json promptly recorded rounds where
// the predicate held but dense measured *slower* — a static rule cannot see
// the machine it runs on. ArmSelector replaces the rule with the
// measurement itself.
//
// Protocol: each round the engine asks Choose() which arm (0 or 1) to run,
// runs it, and reports the measured per-unit cost back via Observe(). The
// selector keeps an EWMA of each arm's cost and prefers the cheaper one,
// with two standard controls:
//
//   * Warmup — until both arms have kWarmup samples, Choose() alternates,
//     so both EWMAs are seeded by real measurements (never a guess).
//   * Hysteresis — the preferred arm only flips when the other arm's EWMA
//     is below `hysteresis` (< 1) times the incumbent's, so measurement
//     noise near parity cannot make the choice oscillate.
//   * Re-probe — after warmup, one decision in every `reprobe_interval` is
//     spent on the non-preferred arm to keep its EWMA fresh (phase changes
//     in the workload would otherwise go unnoticed forever). This bounds
//     the cost of a wrong arm at ~1/reprobe_interval of the phase budget.
//
// Outside warmup and re-probe decisions, Choose() returns the arm the
// measurements say is cheaper — never a path the data says loses (the
// PR 6 satellite contract; test_message_path pins it).
//
// The selector feeds on wall-clock measurements, so its *decisions* can
// differ run to run — that is by design, and safe, because the two arms are
// bit-identical in results (the property suites pin RunStats equality
// across forced arms). Only timings, which are not compared, vary.
#pragma once

#include <array>
#include <cstdint>

#include "util/check.hpp"

namespace sdn::net {

/// How the engine's deliver phase backs each receiver's Inbox on rounds
/// where every node sent (rounds with silent nodes always gather — dense
/// indexing is only *valid* when all slots are live).
enum class DeliveryMode {
  /// Always gather pointers to the flagged outbox slots (A/B arm).
  kGather,
  /// Dense CSR indexing on every all-sent round — PR 4's static predicate,
  /// kept as the other A/B arm.
  kDense,
  /// Measured (default): an ArmSelector picks dense vs gather per all-sent
  /// round from EWMAs of observed ns-per-delivered-message, with warmup,
  /// hysteresis and periodic re-probe — dense runs only while it measures
  /// cheaper on this workload and machine.
  kAdaptive,
};

class ArmSelector {
 public:
  /// `warmup_per_arm` >= 1 samples seed each EWMA before any preference is
  /// acted on; `reprobe_interval` >= 2 decisions between refreshes of the
  /// losing arm; `hysteresis` in (0, 1]: the flip threshold (0.9 = the
  /// challenger must measure >= 10% cheaper to take over).
  ArmSelector(int warmup_per_arm, int reprobe_interval, double hysteresis)
      : warmup_(warmup_per_arm),
        reprobe_(reprobe_interval),
        hysteresis_(hysteresis) {
    SDN_CHECK(warmup_ >= 1);
    SDN_CHECK(reprobe_ >= 2);
    SDN_CHECK(hysteresis_ > 0.0 && hysteresis_ <= 1.0);
  }

  /// The arm to run next. Alternating during warmup, then the preferred arm
  /// except for one re-probe of the other arm every reprobe_interval
  /// decisions.
  [[nodiscard]] int Choose() {
    if (!warmed_up()) return samples_[1] < samples_[0] ? 1 : 0;
    ++decisions_;
    if (decisions_ % reprobe_ == 0) return 1 - preferred_;
    return preferred_;
  }

  /// Reports the measured per-unit cost of the arm just run (any unit, as
  /// long as it is the same for both arms — the engine feeds ns per
  /// delivered message). Updates that arm's EWMA and, once warmed up,
  /// re-evaluates the preference under hysteresis.
  void Observe(int arm, double cost) {
    SDN_CHECK(arm == 0 || arm == 1);
    SDN_CHECK(cost >= 0.0);
    auto& s = samples_[static_cast<std::size_t>(arm)];
    auto& e = ewma_[static_cast<std::size_t>(arm)];
    e = s == 0 ? cost : e + kAlpha * (cost - e);
    ++s;
    if (warmed_up()) {
      const int other = 1 - preferred_;
      if (ewma_[static_cast<std::size_t>(other)] <
          hysteresis_ * ewma_[static_cast<std::size_t>(preferred_)]) {
        preferred_ = other;
      }
    }
  }

  [[nodiscard]] bool warmed_up() const {
    return samples_[0] >= warmup_ && samples_[1] >= warmup_;
  }
  [[nodiscard]] int preferred() const { return preferred_; }
  [[nodiscard]] double ewma(int arm) const {
    SDN_CHECK(arm == 0 || arm == 1);
    return ewma_[static_cast<std::size_t>(arm)];
  }
  [[nodiscard]] std::int64_t observations(int arm) const {
    SDN_CHECK(arm == 0 || arm == 1);
    return samples_[static_cast<std::size_t>(arm)];
  }

 private:
  /// EWMA smoothing: ~4-round memory, enough to ride out one noisy round
  /// without ignoring a real shift.
  static constexpr double kAlpha = 0.25;

  int warmup_;
  int reprobe_;
  double hysteresis_;
  int preferred_ = 0;
  std::int64_t decisions_ = 0;
  std::array<std::int64_t, 2> samples_{0, 0};
  std::array<double, 2> ewma_{0.0, 0.0};
};

}  // namespace sdn::net
