// The lock-step round engine.
//
// One Engine executes one algorithm instance (a vector of node programs)
// against one adversary. Per round it:
//   1. asks the adversary for G_r (and streams it through the T-interval
//      checker and the flooding probes),
//   2. collects every node's OnSend message, enforcing the bandwidth budget,
//   3. delivers to each node the messages of its G_r-neighbors,
//   4. records decisions.
// The run ends when every node has decided or `max_rounds` is hit.
//
// The engine is templated on the node-program type so messages are plain
// typed values (no serialization on the hot path); bit accounting goes
// through the program's static MessageBits, which must report the size an
// actual encoding would spend.
//
// Delivery is zero-copy: each round's messages live once in the reusable
// outbox and every receiver gets an Inbox of pointers into it, so a
// broadcast to k neighbors costs k pointer pushes instead of k message
// copies (see net/program.hpp for the aliasing contract). Every phase of
// Step() is wall-clocked into RunStats::timings.
#pragma once

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "graph/tinterval.hpp"
#include "net/adversary.hpp"
#include "net/bandwidth.hpp"
#include "net/metrics.hpp"
#include "net/program.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::net {

struct EngineOptions {
  std::int64_t max_rounds = 2'000'000;
  BandwidthPolicy bandwidth = BandwidthPolicy::Unbounded();
  /// Verify the adversary's T-interval promise while running. When off, no
  /// checker is even constructed and RunStats::tinterval_validated is false
  /// (tinterval_ok is then vacuous, not a verified promise).
  bool validate_tinterval = true;
  /// Number of concurrent flooding probes (node 0 plus random sources) used
  /// to measure d alongside the run. 0 disables measurement. Probe start
  /// rounds are staggered: when a probe completes at round c, its slot
  /// relaunches from a fresh random source at round 2c, so d is sampled at
  /// geometrically spaced start rounds across the whole run (DESIGN.md §1
  /// defines d as a max over sampled start rounds — measuring only from
  /// round 1 underestimates d on adversaries that degrade over time).
  int flood_probes = 4;
  std::uint64_t probe_seed = 0x5eedULL;
  /// When set, every round's topology is appended here (replay/debugging)
  /// at the cost of exactly one Graph copy per round.
  std::vector<graph::Graph>* record_topologies = nullptr;
};

template <NodeProgram A>
class Engine final : private AdversaryView {
 public:
  Engine(std::vector<A> nodes, Adversary& adversary, EngineOptions options)
      : nodes_(std::move(nodes)),
        adversary_(adversary),
        options_(options),
        n_(static_cast<graph::NodeId>(nodes_.size())),
        probe_rng_(options_.probe_seed) {
    SDN_CHECK(!nodes_.empty());
    SDN_CHECK_MSG(adversary_.num_nodes() == n_,
                  "adversary built for " << adversary_.num_nodes()
                                         << " nodes, got " << nodes_.size());
    SDN_CHECK(adversary_.interval() >= 1);
    SDN_CHECK(options_.max_rounds >= 1);
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one round. Returns false (and does nothing) once the run is
  /// over — every node decided or max_rounds executed.
  bool Step() {
    using Clock = std::chrono::steady_clock;
    EnsureStarted();
    if (finished_) return false;
    ++round_;

    const auto t0 = Clock::now();
    {
      graph::Graph g = adversary_.TopologyFor(round_, *this);
      SDN_CHECK_MSG(g.num_nodes() == n_,
                    "adversary produced wrong-size graph");
      if (options_.record_topologies != nullptr) {
        options_.record_topologies->push_back(g);  // the one recording copy
      }
      last_topology_ = std::move(g);
    }
    const graph::Graph& g = last_topology_;
    stats_.edges_processed += g.num_edges();
    const auto t1 = Clock::now();

    if (checker_.has_value()) checker_->Push(g);
    const auto t2 = Clock::now();

    StepProbes(g);
    const auto t3 = Clock::now();

    for (graph::NodeId u = 0; u < n_; ++u) {
      auto& msg = outbox_[static_cast<std::size_t>(u)];
      msg = nodes_[static_cast<std::size_t>(u)].OnSend(round_);
      if (msg.has_value()) {
        const auto bits = static_cast<std::int64_t>(A::MessageBits(*msg));
        SDN_CHECK_MSG(bits <= stats_.bit_limit,
                      "message of " << bits << " bits exceeds budget "
                                    << stats_.bit_limit << " at node " << u
                                    << " round " << round_);
        ++stats_.messages_sent;
        ++stats_.sends_per_node[static_cast<std::size_t>(u)];
        stats_.total_message_bits += bits;
        stats_.max_message_bits = std::max(stats_.max_message_bits, bits);
      }
    }
    const auto t4 = Clock::now();

    // Zero-copy delivery: gather pointers to the neighbors' outbox slots and
    // hand each node a read-only view. The outbox is not mutated until the
    // next round's OnSend pass, so the pointers stay valid across all
    // OnReceive calls of this round.
    using Message = typename A::Message;
    std::vector<const Message*>& slots = inbox_slots_;
    for (graph::NodeId u = 0; u < n_; ++u) {
      slots.clear();
      for (const graph::NodeId v : g.Neighbors(u)) {
        const auto& msg = outbox_[static_cast<std::size_t>(v)];
        if (msg.has_value()) slots.push_back(&*msg);
      }
      stats_.messages_delivered += static_cast<std::int64_t>(slots.size());
      A& node = nodes_[static_cast<std::size_t>(u)];
      const bool was_decided = node.HasDecided();
      node.OnReceive(round_, Inbox<Message>(slots));
      if (!was_decided && node.HasDecided()) {
        RecordDecision(u, round_);
      }
    }
    const auto t5 = Clock::now();

    const auto ns = [](Clock::time_point a, Clock::time_point b) {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
          .count();
    };
    stats_.timings.topology_ns += ns(t0, t1);
    stats_.timings.validate_ns += ns(t1, t2);
    stats_.timings.probe_ns += ns(t2, t3);
    stats_.timings.send_ns += ns(t3, t4);
    stats_.timings.deliver_ns += ns(t4, t5);
    stats_.timings.total_ns += ns(t0, t5);

    stats_.rounds = round_;
    if (undecided_ == 0 || round_ >= options_.max_rounds) finished_ = true;
    return true;
  }

  /// Drives Step() to completion; callable once per engine.
  RunStats Run() {
    SDN_CHECK_MSG(!run_called_, "Engine::Run called twice");
    run_called_ = true;
    while (Step()) {
    }
    return stats();
  }

  /// Snapshot of the metrics so far (valid mid-run and after completion).
  [[nodiscard]] RunStats stats() const {
    RunStats out = stats_;
    out.all_decided = started_ && undecided_ == 0;
    out.tinterval_validated = options_.validate_tinterval && started_;
    out.tinterval_ok = !checker_.has_value() || checker_->ok();
    out.flooding = FloodingSnapshot();
    return out;
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::int64_t current_round() const { return round_; }
  /// Topology of the most recently executed round (empty before round 1).
  [[nodiscard]] const graph::Graph& last_topology() const {
    return last_topology_;
  }

  [[nodiscard]] const A& node(graph::NodeId u) const {
    SDN_CHECK(u >= 0 && u < n_);
    return nodes_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }

 private:
  // AdversaryView:
  [[nodiscard]] std::int64_t round() const override { return round_; }
  [[nodiscard]] double PublicState(graph::NodeId u) const override {
    SDN_CHECK(u >= 0 && u < n_);
    return nodes_[static_cast<std::size_t>(u)].PublicState();
  }

  void EnsureStarted() {
    if (started_) return;
    started_ = true;
    stats_.decide_round.assign(static_cast<std::size_t>(n_), -1);
    stats_.sends_per_node.assign(static_cast<std::size_t>(n_), 0);
    stats_.bit_limit = options_.bandwidth.BitLimit(n_);
    if (options_.validate_tinterval) {
      checker_.emplace(n_, adversary_.interval());
    }
    outbox_.resize(static_cast<std::size_t>(n_));
    undecided_ = n_;
    for (int i = 0; i < options_.flood_probes; ++i) {
      const graph::NodeId src = (i == 0) ? graph::NodeId{0} : RandomSource();
      probes_.emplace_back(n_, src, 1);
      ++probes_spawned_;
      // n == 1: trivially complete at construction — record, leave the slot
      // dead (respawning would complete instantly forever).
      if (probes_.back().complete()) RecordProbeCompletion(probes_.back());
    }
    for (graph::NodeId u = 0; u < n_; ++u) {
      if (nodes_[static_cast<std::size_t>(u)].HasDecided()) {
        RecordDecision(u, 0);
      }
    }
    if (undecided_ == 0) finished_ = true;
  }

  [[nodiscard]] graph::NodeId RandomSource() {
    return static_cast<graph::NodeId>(
        probe_rng_.UniformU64(static_cast<std::uint64_t>(n_)));
  }

  void StepProbes(const graph::Graph& g) {
    for (FloodProbe& p : probes_) {
      if (p.complete()) continue;  // dead slot (n == 1)
      p.Push(round_, g);
      if (!p.complete()) continue;
      RecordProbeCompletion(p);
      // Stagger: relaunch this slot from a fresh source at round 2c. Start
      // rounds are sampled at geometrically spaced points of the run, and
      // the probe work stays O(E·d·log rounds) total instead of O(E·rounds).
      p = FloodProbe(n_, RandomSource(), 2 * round_);
      ++probes_spawned_;
    }
  }

  void RecordProbeCompletion(const FloodProbe& p) {
    ++probes_completed_;
    probe_max_rounds_ = std::max(probe_max_rounds_, p.completion_rounds());
    probe_total_rounds_ += static_cast<double>(p.completion_rounds());
  }

  [[nodiscard]] FloodingSummary FloodingSnapshot() const {
    FloodingSummary s;
    s.probes = probes_spawned_;
    s.completed = probes_completed_;
    s.max_rounds = probe_max_rounds_;
    if (probes_completed_ > 0) {
      s.mean_rounds =
          probe_total_rounds_ / static_cast<double>(probes_completed_);
    }
    return s;
  }

  void RecordDecision(graph::NodeId u, std::int64_t at) {
    stats_.decide_round[static_cast<std::size_t>(u)] = at;
    if (stats_.first_decide_round < 0) stats_.first_decide_round = at;
    stats_.last_decide_round = std::max(stats_.last_decide_round, at);
    --undecided_;
  }

  std::vector<A> nodes_;
  Adversary& adversary_;
  EngineOptions options_;
  graph::NodeId n_ = 0;
  util::Rng probe_rng_;

  // Run state (lazily initialized by the first Step()).
  bool started_ = false;
  bool finished_ = false;
  bool run_called_ = false;
  std::int64_t round_ = 0;
  std::int64_t undecided_ = 0;
  RunStats stats_;
  std::optional<graph::TIntervalChecker> checker_;
  std::vector<FloodProbe> probes_;
  std::int64_t probes_spawned_ = 0;
  std::int64_t probes_completed_ = 0;
  std::int64_t probe_max_rounds_ = -1;
  double probe_total_rounds_ = 0.0;
  std::vector<std::optional<typename A::Message>> outbox_;
  std::vector<const typename A::Message*> inbox_slots_;
  graph::Graph last_topology_{0};
};

}  // namespace sdn::net
