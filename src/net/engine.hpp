// The lock-step round engine.
//
// One Engine executes one algorithm instance (a vector of node programs)
// against one adversary. Per round it:
//   1. asks the adversary for G_r (and streams it through the T-interval
//      checker and the flooding probes),
//   2. collects every node's OnSend message, enforcing the bandwidth budget,
//   3. delivers to each node the messages of its G_r-neighbors,
//   4. records decisions.
// The run ends when every node has decided or `max_rounds` is hit (the
// latter sets RunStats::hit_max_rounds so truncated runs are never mistaken
// for fast convergence).
//
// The engine is templated on the node-program type so messages are plain
// typed values (no serialization on the hot path); bit accounting goes
// through the program's static MessageBits, which must report the size an
// actual encoding would spend.
//
// Delivery is zero-copy: each round's messages live once in the reusable
// raw outbox (one Message per node plus a sent-flag byte array — silentness
// lives outside the message, so the gather never touches message cache
// lines). Programs satisfying DirectSendProgram compose their message in
// place in the outbox slot; others go through OnSend's optional-return path
// with one move into the slot. On rounds where every node sent, each
// receiver's Inbox can be the topology's own CSR neighbor-id span indexing
// the outbox directly — no per-receiver gather at all; rounds with silent
// nodes use the sparse path, an Inbox of pointers gathered from the flagged
// slots. Which backing an all-sent round actually uses is decided by
// EngineOptions::delivery: kAdaptive (default) runs an ArmSelector
// (net/backing.hpp) on measured per-message deliver cost with hysteresis,
// so dense indexing is only chosen while it measures cheaper; kDense and
// kGather force one arm for A/B runs. Both paths software-prefetch each
// receiver's message cache lines ahead of its OnReceive (the outbox reads
// are data-dependent scatters the hardware prefetcher cannot predict).
// Results are bit-identical across backings (pinned by tests); every phase
// of Step() is wall-clocked into RunStats::timings.
//
// Topology is delta-driven by default (EngineOptions::incremental_topology):
// the engine asks the adversary for the round-over-round TopologyDelta and
// applies it to one in-place DynGraph instead of materializing a fresh Graph
// per round; the streaming T-interval checker consumes the same delta. When
// per-round churn (EWMA of |delta| / |E|, hysteresis band below) is high
// enough that patching loses to rebuilding, the engine flips to the
// direct-assignment path — RoundEdgesInto straight into the DynGraph's edit
// buffer — and derives the delta consumers still need with one DiffSorted;
// a checker or trace recorder therefore sees every round's delta on either
// sub-path (asserted). The produced topology sequence, and therefore
// RunStats, is bit-identical to the from-scratch path (the DeltaFor
// contract in net/adversary.hpp), which stays available for A/B testing.
//
// Parallel execution (EngineOptions::threads): the send and deliver phases
// are embarrassingly parallel over nodes — OnSend(u) touches only node u and
// its outbox slot, OnReceive(u) reads the shared outbox (immutable during
// the phase) and mutates only node u. Both phases run on the shared
// work-stealing pool over contiguous node *shards* whose boundaries depend
// only on n; each shard fills its own accumulator, and the accumulators are
// merged in shard (= ascending node) order after the phase barrier. Every
// merged quantity is either per-node (disjoint writes) or an
// order-independent integer reduction, so results are bit-identical at any
// thread count — docs/PERF.md spells out the argument.
//
// Software pipelining (EngineOptions::{prefetch_topology,
// async_certification, fused_send_deliver}, all individually toggleable,
// all on by default; docs/PERF.md "Pipelining"): the deliver phase is the
// round's long pole, and three independent overlaps hide the rest of the
// round behind it. (1) Topology prefetch — for oblivious adversaries a
// persistent auxiliary lane (util::AuxLane) computes round r+1's
// delta/edge list concurrently with round r's deliver; calls stay
// sequential and in round order, so the produced graph sequence is
// unchanged. (2) Asynchronous certification — the T-interval checker
// consumes owned copies of each round's delta or composition claim on a
// second bounded lane, with a deterministic rendezvous (stats() drains the
// lane) before any verdict is read; fail-fast runs keep the synchronous
// checker so an abort lands at the same round as the serial engine.
// (3) Fused send/deliver — DirectSendProgram nodes compose round r+1's
// message immediately after their round-r OnReceive, into the inactive
// half of a double-buffered outbox; the buffers flip in round r+1's send
// window, after validate/probes, so an abort discards the staged round and
// the books match the serial engine's exactly. Every overlap preserves
// bit-identical RunStats (test_determinism's overlap matrix pins it);
// EngineTimings::aux_*_ns report the overlapped work for the
// critical-path-vs-sum-of-phases efficiency ratio.
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/delta.hpp"
#include "graph/tinterval.hpp"
#include "net/adversary.hpp"
#include "net/backing.hpp"
#include "net/bandwidth.hpp"
#include "net/metrics.hpp"
#include "net/program.hpp"
#include "net/trace.hpp"
#include "obs/anomaly.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sdn::net {

struct EngineOptions {
  std::int64_t max_rounds = 2'000'000;
  BandwidthPolicy bandwidth = BandwidthPolicy::Unbounded();
  /// Verify the adversary's T-interval promise while running. When off, no
  /// checker is even constructed and RunStats::tinterval_validated is false
  /// (tinterval_ok is then vacuous, not a verified promise).
  bool validate_tinterval = true;
  /// Stop the run at the first T-interval violation: the engine records
  /// the violating window in RunStats::tinterval_first_bad_window, marks
  /// the run finished and throws CheckError from Step() — same shape as a
  /// bandwidth violation. Off by default: the checker keeps streaming and
  /// the verdict lands in RunStats at the end.
  bool fail_fast_on_tinterval = false;
  /// Let the checker use the adversary's Composition() certification fast
  /// path when available (no per-round delta materialized; windows are
  /// certified by pinned-set witnesses). Forced off automatically whenever
  /// something needs the delta-driven checker instead: a flight recorder
  /// (whose kCheckerWindow track reads stable_edge_count), a trace
  /// recorder (deltas exist anyway), or from-scratch topology mode. Off is
  /// a pure A/B knob — both paths produce identical verdicts (tests pin
  /// it).
  bool tinterval_composition = true;
  /// Number of concurrent flooding probes (node 0 plus random sources) used
  /// to measure d alongside the run. 0 disables measurement. Probe start
  /// rounds are staggered: when a probe completes at round c, its slot
  /// relaunches from a fresh random source at round 2c, so d is sampled at
  /// geometrically spaced start rounds across the whole run (DESIGN.md §1
  /// defines d as a max over sampled start rounds — measuring only from
  /// round 1 underestimates d on adversaries that degrade over time).
  int flood_probes = 4;
  std::uint64_t probe_seed = 0x5eedULL;
  /// Engine-internal parallelism for the send/deliver phases: 0 = hardware
  /// concurrency, 1 = strictly serial, k = up to k lanes of the shared
  /// work-stealing pool. Results are bit-identical at any setting (only
  /// RunStats::timings, which measure wall clock, differ), so this is a
  /// pure throughput knob. Small n runs serial regardless (sharding floor).
  int threads = 0;
  /// Drive the topology through the adversary's DeltaFor fast path into one
  /// in-place DynGraph instead of building a Graph from scratch every round.
  /// Results are bit-identical either way (the DeltaFor contract; tests pin
  /// it) — off gives the legacy from-scratch path for A/B comparison.
  bool incremental_topology = true;
  /// Inbox backing policy for all-sent rounds (see DeliveryMode). Results
  /// are bit-identical across modes (tests pin it) — only wall clock
  /// differs, so forcing an arm is a pure A/B knob.
  DeliveryMode delivery = DeliveryMode::kAdaptive;
  /// Overlap the next round's topology construction with this round's
  /// deliver phase on a persistent auxiliary lane. Engages only when the
  /// adversary is oblivious, threads > 1 and n clears the sharding floor;
  /// the adversary still sees strictly sequential in-order calls, so
  /// RunStats is bit-identical on or off — off is a pure A/B knob for the
  /// pipeline benchmarks.
  bool prefetch_topology = true;
  /// Run the streaming T-interval checker on a bounded auxiliary
  /// certification lane instead of the round's critical path. The lane
  /// consumes owned copies (delta, or composition claim + round edges), so
  /// the topology may mutate freely; stats() is the deterministic
  /// rendezvous — it drains the lane before reading any verdict, and a
  /// checker error (e.g. a lying composition) surfaces there instead of
  /// mid-Step. Engages only when threads > 1 in incremental mode with no
  /// flight recorder (its per-round checker track needs synchronous state)
  /// and without fail_fast_on_tinterval (fail-fast keeps the synchronous
  /// checker so the abort round matches the serial engine exactly).
  /// RunStats is bit-identical on or off.
  bool async_certification = true;
  /// Fuse the send phase into the previous round's deliver pass:
  /// DirectSendProgram nodes compose round r+1's message right after their
  /// round-r OnReceive, into the inactive half of a double-buffered
  /// outbox, killing the send-phase barrier and its outbox sweep. The
  /// buffers flip in round r+1's send window — after validate and probes —
  /// so staged work is discarded on abort and RunStats stays bit-identical
  /// (the per-node call order is exactly the serial engine's; see the
  /// speculative-call contract in net/program.hpp). Engages only for
  /// DirectSendProgram algorithms under oblivious adversaries (adaptive
  /// ones sample PublicState between deliver r and send r+1).
  bool fused_send_deliver = true;
  /// When set, every round's topology is appended here (replay/debugging)
  /// at the cost of exactly one Graph copy per round.
  std::vector<graph::Graph>* record_topologies = nullptr;
  /// When set, every round's topology is streamed into this delta-encoded
  /// v2 trace writer (net/trace.hpp) — recording without retaining the
  /// graph sequence in memory. Must outlive the engine; the engine does not
  /// Close() it.
  TraceRecorder* record_trace = nullptr;
  /// Flight recorder for round events (phase spans, algorithm-phase
  /// transitions, probe lifecycle, sketch merges, checker windows,
  /// bandwidth high-water marks). Null = the sink is off and every
  /// emission site reduces to one predicted branch — the zero-overhead
  /// default. Must outlive the engine. Events are emitted outside the
  /// timed phase windows and RunStats stays bit-identical with the
  /// recorder attached or not (test_determinism pins it).
  obs::FlightRecorder* recorder = nullptr;
  /// Collect per-round histograms (edges, deliveries, phase latencies)
  /// into a metrics registry snapshotted as RunStats::metrics. Off by
  /// default; like the recorder, off costs one branch per round.
  bool collect_metrics = false;
  /// Always-on anomaly plane: feed every round's phase spans, aux-lane
  /// drain waits, memory gauges and certification state through
  /// obs::AnomalyEngine (rolling per-phase histograms + five declarative
  /// rules). Fired records land in RunStats::anomalies; when a flight
  /// recorder is attached each firing also dumps a bounded
  /// `anomaly-<round>-<rule>.jsonl` snapshot. Engages only together with
  /// collect_metrics (the plane lives behind the same registry gate) and,
  /// like every sink, runs after the round's final clock read — the
  /// deterministic core of RunStats is bit-identical on or off.
  bool anomaly = true;
  obs::AnomalyOptions anomaly_options{};
  /// Byte-accounting sink for the engine's deterministic allocations
  /// (outbox slots, program array, live topology). Null = the engine uses
  /// an internal budget, so RunStats::memory is populated either way; pass
  /// one to aggregate engine charges with caller-side subsystems (sketch
  /// pool, trace stream) under a single budget. Must outlive the engine.
  /// Only size-deterministic subsystems are charged — timing-dependent
  /// scratch (adaptive gather buffers) is excluded so RunStats stays
  /// bit-identical across thread counts and delivery backings.
  util::MemoryBudget* memory_budget = nullptr;
};

template <NodeProgram A>
class Engine final : private AdversaryView {
 public:
  Engine(std::vector<A> nodes, Adversary& adversary, EngineOptions options)
      : nodes_(std::move(nodes)),
        adversary_(adversary),
        options_(options),
        n_(static_cast<graph::NodeId>(nodes_.size())),
        probe_rng_(options_.probe_seed) {
    SDN_CHECK(!nodes_.empty());
    SDN_CHECK_MSG(adversary_.num_nodes() == n_,
                  "adversary built for " << adversary_.num_nodes()
                                         << " nodes, got " << nodes_.size());
    SDN_CHECK(adversary_.interval() >= 1);
    SDN_CHECK(options_.max_rounds >= 1);
    SDN_CHECK(options_.threads >= 0);
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  ~Engine() {
    // The outbox lives in the arena, which never runs element destructors;
    // message types with non-trivial state (e.g. a census shared_ptr) are
    // destroyed here — both halves of the double buffer — before the arena
    // member releases its chunks. In-flight auxiliary-lane tasks touch
    // only topo_/delta_/checker_ (never the outbox); the lanes are the
    // last-declared members, so their destructors join before anything
    // they read dies.
    if constexpr (!std::is_trivially_destructible_v<typename A::Message>) {
      for (std::span<typename A::Message> buf : outbox_bufs_) {
        for (typename A::Message& m : buf) std::destroy_at(&m);
      }
    }
  }

  /// Executes one round. Returns false (and does nothing) once the run is
  /// over — every node decided or max_rounds executed. Throws CheckError
  /// (after recording RunStats::bandwidth_violation) when a node's message
  /// exceeds the bandwidth budget; the run is then finished and failed.
  bool Step() {
    using Clock = std::chrono::steady_clock;
    EnsureStarted();
    if (finished_) return false;
    aux_wait_ns_round_ = 0;

    const auto t0 = Clock::now();
    bool has_delta = false;  // delta_ holds this round's delta
    if (incremental_) {
      // One topology call per round, in round order — either the prefetch
      // launched by the previous Step (join before mutating round_ or topo_,
      // both of which the in-flight call reads) or a synchronous call here.
      // Both schedules present the adversary the identical call sequence.
      // Per round one of two sub-paths runs, chosen by WantDirectTopology():
      // RoundEdgesInto straight into the DynGraph's edit buffer — with one
      // engine-side DiffSorted when a checker/trace consumes deltas — or
      // DeltaFor + Apply. The choice only moves work between equivalent
      // code paths; the produced graph (and every consumed delta) is
      // identical either way.
      bool assigned = false;
      if (prefetch_pending_) {
        // Join the lane task launched by the previous Step (it wrote
        // prefetch_slot_ and possibly topo_'s edit buffer); Drain rethrows
        // any adversary error and orders its writes before our reads.
        DrainTopoLane();
        prefetch_pending_ = false;
        stats_.timings.aux_topology_ns += prefetch_ns_;
        PrefetchedTopology& pf = prefetch_slot_;
        round_ = prefetched_round_;
        if (pf.tried_direct && !pf.assigned) topo_direct_supported_ = false;
        assigned = pf.assigned;
        has_delta = pf.has_delta;
        delta_ = std::move(pf.delta);
      } else {
        ++round_;
        if (WantDirectTopology()) {
          assigned =
              adversary_.RoundEdgesInto(round_, *this, topo_.EditBuffer());
          if (!assigned) {
            topo_direct_supported_ = false;
          } else if (need_delta_) {
            graph::DiffSorted(topo_.View().Edges(), topo_.EditBuffer(),
                              delta_);
            has_delta = true;
          }
        }
        if (!assigned) {
          adversary_.DeltaFor(round_, *this, topo_.View(), delta_);
          has_delta = true;
        }
      }
      if (assigned) {
        topo_.CommitEdges();
        ++topo_direct_rounds_;
      } else {
        topo_.Apply(delta_);  // CheckError on a contract-violating delta
        ++topo_delta_rounds_;
      }
      // Whatever sub-path ran, every delta consumer must have a delta for
      // every round — the PR 6 regression was exactly this gate silently
      // starving consumers when the fast path was picked.
      SDN_CHECK(!need_delta_ || has_delta);
      UpdateTopologyChurn(has_delta);
      if (options_.record_topologies != nullptr) {
        options_.record_topologies->push_back(topo_.View());
      }
      if (options_.record_trace != nullptr) {
        options_.record_trace->Push(topo_.View(), delta_);
      }
    } else {
      graph::Graph g(0);
      if (prefetch_pending_) {
        DrainTopoLane();
        prefetch_pending_ = false;
        stats_.timings.aux_topology_ns += prefetch_ns_;
        g = std::move(prefetch_graph_);
        round_ = prefetched_round_;
      } else {
        ++round_;
        g = adversary_.TopologyFor(round_, *this);
      }
      SDN_CHECK_MSG(g.num_nodes() == n_,
                    "adversary produced wrong-size graph");
      if (options_.record_topologies != nullptr) {
        options_.record_topologies->push_back(g);  // the one recording copy
      }
      if (options_.record_trace != nullptr) {
        options_.record_trace->Push(g);
      }
      last_topology_ = std::move(g);
    }
    const graph::Graph& g = incremental_ ? topo_.View() : last_topology_;
    stats_.edges_processed += g.num_edges();
    // Live-topology footprint this round: edge list + CSR adjacency +
    // offsets, plus the reused delta buffer. O(E_round), a pure function
    // of the topology stream — the streaming pipeline's whole point is
    // that this gauge never grows with the number of rounds.
    mem_topology_->SetCurrent(static_cast<std::int64_t>(
        static_cast<std::size_t>(g.num_edges()) *
            (sizeof(graph::Edge) + 2 * sizeof(graph::NodeId)) +
        static_cast<std::size_t>(n_ + 1) * sizeof(std::int64_t) +
        static_cast<std::size_t>(delta_.size()) * sizeof(graph::Edge)));
    // The companion gauges: the DynGraph's maintenance scratch and the
    // adversary's generator buffers. Both are capacity-based pure
    // functions of the call stream (sampled here, after the lane joined),
    // so RunStats::memory stays bit-identical across thread counts and
    // overlap toggles.
    if (incremental_) mem_topology_scratch_->SetCurrent(topo_.ScratchBytes());
    mem_adversary_->SetCurrent(adversary_.BufferBytes());
    const auto t1 = Clock::now();

    if (checker_.has_value() && async_cert_) {
      // Certification lane: ship this round's claim as owned copies and
      // let the checker consume it off the critical path. The bounded
      // queue backpressures Submit, so the lane lags at most
      // kCertQueueDepth rounds; stats() is the rendezvous that drains it
      // before any verdict (or checker error) is read. The round_ok value
      // is only consumed by fail-fast, which pins the synchronous path.
      if (use_composition_) {
        const graph::RoundComposition* comp = adversary_.Composition(round_);
        SDN_CHECK_MSG(comp != nullptr,
                      "adversary advertises has_composition but returned no "
                      "composition for round "
                          << round_);
        // The claim's core/support spans ride on their shared owners (the
        // span-lifetime contract — no spine copy); only the volatile
        // fresh span and the round's edge list need owned copies. Vector
        // moves keep the heap buffer, so spans fixed up at execution time
        // survive the closure's moves through the queue.
        cert_lane_.Submit(util::UniqueTask(
            [this, jc = *comp,
             fresh = std::vector<graph::Edge>(comp->fresh.begin(),
                                              comp->fresh.end()),
             edges = std::vector<graph::Edge>(g.Edges().begin(),
                                              g.Edges().end())]() mutable {
              const auto c0 = std::chrono::steady_clock::now();
              jc.fresh = fresh;
              (void)checker_->PushComposition(
                  jc, std::span<const graph::Edge>(edges));
              cert_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - c0)
                              .count();
            }));
      } else {
        cert_lane_.Submit(util::UniqueTask([this, d = delta_]() {
          const auto c0 = std::chrono::steady_clock::now();
          (void)checker_->PushDelta(d);
          cert_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - c0)
                          .count();
        }));
      }
    } else if (checker_.has_value()) {
      bool round_ok;
      if (use_composition_) {
        // Certification fast path: the adversary's structural claim for
        // this round (cross-checked inside the checker) — no delta needed.
        const graph::RoundComposition* comp = adversary_.Composition(round_);
        SDN_CHECK_MSG(comp != nullptr,
                      "adversary advertises has_composition but returned no "
                      "composition for round "
                          << round_);
        round_ok = checker_->PushComposition(*comp, g);
      } else if (incremental_) {
        // The checker consumes the same delta the topology was built from.
        round_ok = checker_->PushDelta(delta_);
      } else {
        // From-scratch path: the checker diffs internally.
        round_ok = checker_->Push(g);
      }
      if (!round_ok && options_.fail_fast_on_tinterval) {
        // Mirror the bandwidth-violation fail shape: record, close the
        // books, surface through the recorder, then throw from Step().
        stats_.rounds = round_;
        stats_.tinterval_first_bad_window = checker_->first_bad_window();
        finished_ = true;
        const auto tf = Clock::now();
        AccumulateTimings(t0, t1, tf, tf, tf, tf, tf, Clock::now());
        if (rec_ != nullptr) {
          rec_->Emit({.kind = obs::EventKind::kCheckerWindow,
                      .round = round_,
                      .t_ns = rec_->RelNs(tf),
                      .a = checker_->stable_edge_count(),
                      .b = 0,
                      .c = checker_->certified_T()});
        }
        SDN_CHECK_MSG(false,
                      "T-interval violation: window starting at round "
                          << checker_->first_bad_window() + 1
                          << " has a disconnected intersection "
                             "(fail_fast_on_tinterval)");
      }
    }
    const auto t2 = Clock::now();

    StepProbes(g);
    const auto t3 = Clock::now();

    // Send phase: every node's message lands in its own raw outbox slot
    // (DirectSendProgram composes it in place; the generic path moves the
    // OnSend optional's payload in), with silentness tracked in the
    // separate sent_ byte array. Shard accumulators do the message
    // accounting; budget violations are *recorded* per shard (first in
    // node order) instead of thrown from a worker — the merge below
    // deterministically picks the lowest node and fails the run from this
    // thread.
    //
    // Fused fast path: when the previous round's deliver pass already
    // staged this round's messages (fused_send_deliver), the send phase
    // degenerates to a buffer flip — the staged half of the double buffer
    // becomes the live outbox, and the staged accumulators are folded into
    // the stats exactly as a freshly-run send phase's would be. The flip
    // sits here, after validate and probes, so an abort above leaves the
    // staged round unmerged — the serial engine's books at the same round.
    const bool fused_consume = staged_valid_;
    if (fused_consume) {
      staged_valid_ = false;
      live_buf_ ^= 1;
      outbox_ = outbox_bufs_[live_buf_];
      sent_ = sent_bufs_[live_buf_];
    } else {
      ForShards([this](int shard, std::int64_t begin, std::int64_t end) {
        ShardAccum& acc = shard_accum_[static_cast<std::size_t>(shard)];
        acc = ShardAccum{};
        for (std::int64_t u = begin; u < end; ++u) {
          typename A::Message& slot = outbox_[static_cast<std::size_t>(u)];
          bool sent;
          if constexpr (DirectSendProgram<A>) {
            sent = nodes_[static_cast<std::size_t>(u)].OnSendInto(round_, slot);
          } else {
            std::optional<typename A::Message> msg =
                nodes_[static_cast<std::size_t>(u)].OnSend(round_);
            sent = msg.has_value();
            if (sent) slot = std::move(*msg);
          }
          sent_[static_cast<std::size_t>(u)] = sent ? 1 : 0;
          if (!sent) continue;
          const auto bits = static_cast<std::int64_t>(A::MessageBits(slot));
          if (bits > stats_.bit_limit && acc.violation_node < 0) {
            acc.violation_node = static_cast<graph::NodeId>(u);
            acc.violation_bits = bits;
          }
          ++acc.messages_sent;
          ++stats_.sends_per_node[static_cast<std::size_t>(u)];
          acc.total_message_bits += bits;
          acc.max_message_bits = std::max(acc.max_message_bits, bits);
        }
      });
    }
    // The send window ends at the phase barrier (or the fused flip); the
    // shard merge below is engine bookkeeping and lands in other_ns, not
    // send_ns.
    const auto t4 = Clock::now();
    std::int64_t round_sent = 0;
    const std::vector<ShardAccum>& send_accums =
        fused_consume ? staged_accum_ : shard_accum_;
    for (const ShardAccum& acc : send_accums) {
      round_sent += acc.messages_sent;
      stats_.messages_sent += acc.messages_sent;
      stats_.total_message_bits += acc.total_message_bits;
      stats_.max_message_bits =
          std::max(stats_.max_message_bits, acc.max_message_bits);
      if (!stats_.bandwidth_violation.has_value() && acc.violation_node >= 0) {
        stats_.bandwidth_violation =
            BandwidthViolation{acc.violation_node, round_, acc.violation_bits};
      }
    }
    if (fused_consume) {
      // Staged stats had to stay discardable until the merge, so the
      // per-node send tally was deferred; fold it in from the sent flags.
      std::int64_t* const spn = stats_.sends_per_node.data();
      const unsigned char* const sent = sent_.data();
      for (std::int64_t u = 0; u < n_; ++u) {
        spn[u] += sent[u];
      }
    }

    if (stats_.bandwidth_violation.has_value()) {
      stats_.rounds = round_;
      finished_ = true;
      AccumulateTimings(t0, t1, t2, t3, t4, t4, t4, Clock::now());
      if (rec_ != nullptr) {
        const BandwidthViolation& v = *stats_.bandwidth_violation;
        EmitPhaseSpans(t0, t1, t2, t3, t4);
        rec_->Emit({.kind = obs::EventKind::kBandwidthViolation,
                    .round = round_,
                    .t_ns = rec_->RelNs(t4),
                    .a = v.bits,
                    .b = v.node});
      }
      const BandwidthViolation& v = *stats_.bandwidth_violation;
      SDN_CHECK_MSG(false, "message of " << v.bits << " bits exceeds budget "
                                         << stats_.bit_limit << " at node "
                                         << v.node << " round " << v.round);
    }

    // Overlap the next round's topology with the deliver phase: for an
    // oblivious adversary the call reads no node state, so running it on
    // the persistent auxiliary lane while OnReceive mutates the nodes is
    // race-free and the produced call sequence is identical to the
    // synchronous schedule. In incremental mode the lane reads topo_.View(),
    // which is not touched again until the next Step drains the lane.
    if (prefetch_enabled_ && round_ < options_.max_rounds) {
      prefetched_round_ = round_ + 1;
      prefetch_pending_ = true;
      if (incremental_) {
        // The lane writes only the DynGraph's edit buffer (disjoint from
        // the view the deliver phase reads), the moved-out delta and the
        // prefetch result slots. The sub-path choice is frozen at launch
        // from this round's churn state — exactly what the synchronous
        // schedule would pick, since churn was last updated in this Step's
        // topology section.
        topo_lane_.Submit(util::UniqueTask(
            [this, r = prefetched_round_, direct = WantDirectTopology(),
             d = std::move(delta_)]() mutable {
              const auto p0 = std::chrono::steady_clock::now();
              PrefetchedTopology pf;
              pf.tried_direct = direct;
              if (direct) {
                pf.assigned =
                    adversary_.RoundEdgesInto(r, *this, topo_.EditBuffer());
                if (pf.assigned && need_delta_) {
                  graph::DiffSorted(topo_.View().Edges(), topo_.EditBuffer(),
                                    d);
                  pf.has_delta = true;
                }
              }
              if (!pf.assigned) {
                adversary_.DeltaFor(r, *this, topo_.View(), d);
                pf.has_delta = true;
              }
              pf.delta = std::move(d);
              prefetch_slot_ = std::move(pf);
              prefetch_ns_ =
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - p0)
                      .count();
            }));
      } else {
        topo_lane_.Submit(util::UniqueTask([this, r = prefetched_round_]() {
          const auto p0 = std::chrono::steady_clock::now();
          prefetch_graph_ = adversary_.TopologyFor(r, *this);
          prefetch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - p0)
                             .count();
        }));
      }
    }

    // Deliver phase. Zero-copy either way. Dense path (all-sent rounds
    // only, when the backing policy picks it): each receiver's Inbox
    // indexes the outbox through the graph's own CSR neighbor span — no
    // gather at all. Sparse path: gather pointers to the flagged outbox
    // slots into per-shard reusable buffers — the flags live in sent_, so
    // the gather itself never touches a message cache line. Both paths
    // issue a software prefetch for each receiver's message lines before
    // its OnReceive: the slot addresses are data-dependent scatters the
    // hardware prefetcher cannot see, and issuing them back to back buys
    // memory-level parallelism across the receiver's whole inbox. The
    // outbox is not mutated until the next round's send phase. Decisions
    // land in per-node slots plus a per-shard count, reduced below instead
    // of mutated inline.
    const bool all_sent = round_sent == n_;
    // Arm choice happens per shard on this (the driving) thread — selector
    // state is single-threaded by construction; workers only read their
    // shard_arm_ slot. Rounds with silent nodes have no choice (gather).
    const bool observe_arms =
        all_sent && options_.delivery == DeliveryMode::kAdaptive;
    bool all_dense = all_sent;
    for (std::int64_t s = 0; s < shards_; ++s) {
      bool dense = false;
      if (all_sent) {
        switch (options_.delivery) {
          case DeliveryMode::kGather:
            break;
          case DeliveryMode::kDense:
            dense = true;
            break;
          case DeliveryMode::kAdaptive:
            dense = shard_selectors_[static_cast<std::size_t>(s)].Choose() ==
                    kDenseArm;
            break;
        }
      }
      shard_arm_[static_cast<std::size_t>(s)] = dense ? 1 : 0;
      all_dense &= dense;
    }
    if (all_dense) {
      ++dense_rounds_;
    } else {
      ++gather_rounds_;
    }
    // Fused staging: while this round's deliver pass holds each node hot,
    // compose its round r+1 message into the inactive outbox half. The
    // per-node call order (OnReceive(r), OnSendInto(r+1)) is exactly the
    // serial engine's — nothing between them ever touches node state —
    // and the staged stats stay in staged_accum_, discardable until round
    // r+1's flip merges them. sends_per_node is deferred to the merge for
    // the same reason.
    const bool stage_next = fused_enabled_ && round_ < options_.max_rounds;
    const auto t5 = Clock::now();
    // CI fault hook (SDN_FAULT_DELIVER_SLEEP_MS / SDN_FAULT_DELIVER_ROUND,
    // read once in EnsureStarted): stall the deliver window of one round so
    // the anomaly smoke test has a real spike to detect. Wall clock only —
    // no engine state is touched, so deterministic RunStats are unchanged.
    if (fault_sleep_ms_ > 0 && round_ == fault_round_) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault_sleep_ms_));
    }
    ForShards([this, &g, observe_arms, stage_next](int shard,
                                                   std::int64_t begin,
                                                   std::int64_t end) {
      using Message = typename A::Message;
      ShardAccum& acc = shard_accum_[static_cast<std::size_t>(shard)];
      acc = ShardAccum{};
      const bool dense = shard_arm_[static_cast<std::size_t>(shard)] != 0;
      const auto shard_start = observe_arms
                                   ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
      const Message* outbox = outbox_.data();
      ShardAccum* sacc = nullptr;
      Message* stage_out = nullptr;
      unsigned char* stage_sent = nullptr;
      if (stage_next) {
        sacc = &staged_accum_[static_cast<std::size_t>(shard)];
        *sacc = ShardAccum{};
        stage_out = outbox_bufs_[live_buf_ ^ 1].data();
        stage_sent = sent_bufs_[live_buf_ ^ 1].data();
      }
      const auto stage_one = [&](std::int64_t u, A& node) {
        if constexpr (DirectSendProgram<A>) {
          Message& slot = stage_out[static_cast<std::size_t>(u)];
          const bool did = node.OnSendInto(round_ + 1, slot);
          stage_sent[static_cast<std::size_t>(u)] = did ? 1 : 0;
          if (!did) return;
          const auto bits = static_cast<std::int64_t>(A::MessageBits(slot));
          if (bits > stats_.bit_limit && sacc->violation_node < 0) {
            sacc->violation_node = static_cast<graph::NodeId>(u);
            sacc->violation_bits = bits;
          }
          ++sacc->messages_sent;
          sacc->total_message_bits += bits;
          sacc->max_message_bits = std::max(sacc->max_message_bits, bits);
        } else {
          (void)u;
          (void)node;
        }
      };
      if (dense) {
        for (std::int64_t u = begin; u < end; ++u) {
          const std::span<const graph::NodeId> ids =
              g.Neighbors(static_cast<graph::NodeId>(u));
          for (const graph::NodeId v : ids) {
            __builtin_prefetch(outbox + v, 0, 3);
          }
          acc.messages_delivered += static_cast<std::int64_t>(ids.size());
          A& node = nodes_[static_cast<std::size_t>(u)];
          const bool was_decided = node.HasDecided();
          node.OnReceive(round_, Inbox<Message>(outbox, ids));
          if (!was_decided && node.HasDecided()) {
            stats_.decide_round[static_cast<std::size_t>(u)] = round_;
            ++acc.decided;
          }
          if (stage_next) stage_one(u, node);
        }
        if (observe_arms) {
          acc.deliver_ns =
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - shard_start)
                  .count();
        }
        return;
      }
      const unsigned char* sent = sent_.data();
      std::vector<const Message*>& slots =
          shard_slots_[static_cast<std::size_t>(shard)];
      for (std::int64_t u = begin; u < end; ++u) {
        slots.clear();
        for (const graph::NodeId v :
             g.Neighbors(static_cast<graph::NodeId>(u))) {
          if (sent[static_cast<std::size_t>(v)]) {
            const Message* slot = outbox + v;
            __builtin_prefetch(slot, 0, 3);
            slots.push_back(slot);
          }
        }
        acc.messages_delivered += static_cast<std::int64_t>(slots.size());
        A& node = nodes_[static_cast<std::size_t>(u)];
        const bool was_decided = node.HasDecided();
        node.OnReceive(round_, Inbox<Message>(slots));
        if (!was_decided && node.HasDecided()) {
          stats_.decide_round[static_cast<std::size_t>(u)] = round_;
          ++acc.decided;
        }
        if (stage_next) stage_one(u, node);
      }
      if (observe_arms) {
        acc.deliver_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - shard_start)
                             .count();
      }
    });
    staged_valid_ = stage_next;
    // Deliver window ends at the barrier; merge + decision bookkeeping are
    // other_ns.
    const auto t6 = Clock::now();
    std::int64_t decided = 0;
    std::int64_t round_delivered = 0;
    for (const ShardAccum& acc : shard_accum_) {
      stats_.messages_delivered += acc.messages_delivered;
      round_delivered += acc.messages_delivered;
      decided += acc.decided;
    }
    // Feed the adaptive backing controllers (bookkeeping, lands in
    // other_ns). Only all-sent rounds are observed: those are the rounds
    // where a choice exists, and normalizing to ns per delivered message
    // keeps rounds of different sizes comparable. Each shard observes its
    // own measured cost under the arm it actually ran.
    if (observe_arms) {
      for (std::int64_t s = 0; s < shards_; ++s) {
        const ShardAccum& acc = shard_accum_[static_cast<std::size_t>(s)];
        if (acc.messages_delivered <= 0) continue;
        shard_selectors_[static_cast<std::size_t>(s)].Observe(
            shard_arm_[static_cast<std::size_t>(s)] != 0 ? kDenseArm
                                                         : kGatherArm,
            static_cast<double>(acc.deliver_ns) /
                static_cast<double>(acc.messages_delivered));
      }
    }
    if (decided > 0) {
      if (stats_.first_decide_round < 0) stats_.first_decide_round = round_;
      stats_.last_decide_round = round_;
      undecided_ -= decided;
    }
    stats_.rounds = round_;
    if (undecided_ == 0) {
      finished_ = true;
    } else if (round_ >= options_.max_rounds) {
      finished_ = true;
      stats_.hit_max_rounds = true;
    }
    const auto t7 = Clock::now();
    AccumulateTimings(t0, t1, t2, t3, t4, t5, t6, t7);

    // Observability sinks run after the final clock read, so their cost
    // never lands in any timing bucket — and RunStats (including timings)
    // is identical with the sinks on or off.
    if (rec_ != nullptr) {
      ObserveRound(t0, t1, t2, t3, t4, t5, t6, round_delivered);
    }
    if (registry_ != nullptr) {
      const auto ns = [](Clock::time_point a, Clock::time_point b) {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
            .count();
      };
      hist_round_edges_->Observe(g.num_edges());
      hist_round_deliveries_->Observe(round_delivered);
      hist_round_send_ns_->Observe(ns(t3, t4));
      hist_round_deliver_ns_->Observe(ns(t5, t6));
      hist_round_total_ns_->Observe(ns(t0, t7));
      if (anomaly_ != nullptr) {
        obs::RoundSignals sig;
        sig.round = round_;
        sig.topology_ns = ns(t0, t1);
        sig.validate_ns = ns(t1, t2);
        sig.probe_ns = ns(t2, t3);
        sig.send_ns = ns(t3, t4);
        sig.deliver_ns = ns(t5, t6);
        sig.total_ns = ns(t0, t7);
        sig.aux_wait_ns = aux_wait_ns_round_;
        // Under async certification the checker runs on its own lane and
        // reading it here would race; certified_T = -1 means "not sampled"
        // and the cert-regression rule skips the round. Recorder-attached
        // runs (the only ones that can dump) always have the synchronous
        // checker, so dump-capable runs never lose the signal.
        if (checker_.has_value() && !async_cert_) {
          sig.certified_T = checker_->certified_T();
          sig.first_bad_window = checker_->first_bad_window();
        }
        if (rec_ != nullptr) sig.recorder_dropped = rec_->dropped();
        const std::array<obs::MemorySample, 6> mem = {{
            {"outbox", mem_outbox_->current()},
            {"programs", mem_programs_->current()},
            {"topology", mem_topology_->current()},
            {"topology_scratch", mem_topology_scratch_->current()},
            {"adversary", mem_adversary_->current()},
            {"checker",
             mem_checker_ != nullptr ? mem_checker_->current() : 0},
        }};
        anomaly_->Observe(sig, mem);
      }
    }
    return true;
  }

  /// Drives Step() to completion; callable once per engine.
  RunStats Run() {
    SDN_CHECK_MSG(!run_called_, "Engine::Run called twice");
    run_called_ = true;
    while (Step()) {
    }
    return stats();
  }

  /// Snapshot of the metrics so far (valid mid-run and after completion).
  [[nodiscard]] RunStats stats() const {
    // Deterministic rendezvous with the certification lane: every claim
    // submitted so far is consumed — and any checker error (e.g. a lying
    // composition) rethrown — before a verdict is read, so the snapshot
    // equals the synchronous engine's at the same round.
    cert_lane_.Drain();
    RunStats out = stats_;
    out.timings.aux_validate_ns += cert_ns_;
    out.all_decided = started_ && undecided_ == 0;
    out.tinterval_validated = options_.validate_tinterval && started_;
    out.tinterval_ok = !checker_.has_value() || checker_->ok();
    if (checker_.has_value()) {
      out.certified_T = checker_->certified_T();
      out.tinterval_first_bad_window = checker_->first_bad_window();
      out.min_stable_forest = checker_->min_stable_forest();
      // The checker's footprint is a pure function of the rounds pushed —
      // sampled here, post-drain, so the gauge is identical across thread
      // counts and the async toggle.
      if (mem_checker_ != nullptr) {
        mem_checker_->SetCurrent(checker_->ApproxBytes());
      }
    }
    out.flooding = FloodingSnapshot();
    if (budget_ != nullptr) {
      for (const util::MemoryBudget::Entry& e : budget_->Snapshot()) {
        out.memory.push_back({e.subsystem, e.current_bytes, e.peak_bytes});
      }
    }
    if (rec_ != nullptr) {
      // Truth-in-tracing: surfaced even without a registry so OneLine can
      // print `drops=` whenever a trace is no longer complete.
      out.recorder_dropped = rec_->dropped();
    }
    if (anomaly_ != nullptr) out.anomalies = anomaly_->records();
    if (registry_ != nullptr) {
      // Mirror the scalar aggregates into the registry so the snapshot is
      // self-contained (one structure to render or export).
      registry_->GetGauge("messages_sent")->Set(stats_.messages_sent);
      registry_->GetGauge("messages_delivered")->Set(stats_.messages_delivered);
      registry_->GetGauge("edges_processed")->Set(stats_.edges_processed);
      registry_->GetGauge("max_message_bits")->Set(stats_.max_message_bits);
      if constexpr (ObservableProgram<A>) {
        std::int64_t work = 0;
        for (const A& node : nodes_) work += node.ObsPhase().work;
        registry_->GetGauge("algo_work")->Set(work);
      }
      if (rec_ != nullptr) {
        // Per-lane ring losses. Emission counts follow the recorded event
        // stream, which can depend on wall-clock sampling — flagged
        // non-deterministic so the on/off determinism comparisons ignore
        // them (and their presence).
        for (int lane = 0; lane < rec_->lanes(); ++lane) {
          registry_
              ->GetGauge("recorder_lane" + std::to_string(lane) + "_dropped",
                         /*deterministic=*/false)
              ->Set(static_cast<std::int64_t>(rec_->dropped_lane(lane)));
        }
      }
      if (anomaly_ != nullptr) {
        // Pipeline health tracks: the rolling windows' p99s, mirrored as
        // gauges so the exposition endpoint (and RunStats::metrics) carry
        // the anomaly plane's live view of each phase. Wall-clock valued —
        // non-deterministic by construction.
        using Track = obs::AnomalyEngine::Track;
        static constexpr struct {
          Track track;
          const char* name;
        } kTracks[] = {
            {Track::kTopology, "rolling_topology_ns_p99"},
            {Track::kValidate, "rolling_validate_ns_p99"},
            {Track::kProbe, "rolling_probe_ns_p99"},
            {Track::kSend, "rolling_send_ns_p99"},
            {Track::kDeliver, "rolling_deliver_ns_p99"},
            {Track::kTotal, "rolling_total_ns_p99"},
            {Track::kAuxWait, "rolling_aux_wait_ns_p99"},
        };
        for (const auto& t : kTracks) {
          registry_->GetGauge(t.name, /*deterministic=*/false)
              ->Set(anomaly_->hist(t.track).Quantile(0.99));
        }
      }
      out.metrics = registry_->Snapshot();
    }
    return out;
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::int64_t current_round() const { return round_; }
  /// Topology of the most recently executed round (empty before round 1).
  [[nodiscard]] const graph::Graph& last_topology() const {
    return incremental_ ? topo_.View() : last_topology_;
  }

  /// Per-path round counters (test/bench introspection; not part of
  /// RunStats because the adaptive split is timing-driven and therefore
  /// not deterministic).
  [[nodiscard]] std::int64_t dense_delivery_rounds() const {
    return dense_rounds_;
  }
  [[nodiscard]] std::int64_t gather_delivery_rounds() const {
    return gather_rounds_;
  }
  [[nodiscard]] std::int64_t topology_direct_rounds() const {
    return topo_direct_rounds_;
  }
  [[nodiscard]] std::int64_t topology_delta_rounds() const {
    return topo_delta_rounds_;
  }
  /// Shard 0's delivery ArmSelector (tests inspect warmup/preference
  /// state; below 2·kMinShardNodes nodes there is exactly one shard, so
  /// this is the whole selector state).
  [[nodiscard]] const ArmSelector& delivery_selector() const {
    SDN_CHECK(!shard_selectors_.empty());
    return shard_selectors_.front();
  }
  /// Per-subsystem byte accounting (engine-owned budget unless
  /// EngineOptions::memory_budget redirected the charges).
  [[nodiscard]] const util::MemoryBudget& memory_budget() const {
    SDN_CHECK(budget_ != nullptr);
    return *budget_;
  }

  [[nodiscard]] const A& node(graph::NodeId u) const {
    SDN_CHECK(u >= 0 && u < n_);
    return nodes_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }

 private:
  /// Sharding floor/cap: boundaries are a pure function of n, never of the
  /// thread count, so the shard-ordered merge is the same computation at
  /// every EngineOptions::threads setting.
  static constexpr std::int64_t kMinShardNodes = 64;
  static constexpr std::int64_t kMaxShards = 64;

  /// Async-certification queue depth: the checker may lag the round loop
  /// by at most this many rounds before Submit backpressures the producer.
  static constexpr std::size_t kCertQueueDepth = 4;

  /// Adaptive delivery (DeliveryMode::kAdaptive): ArmSelector arms and
  /// tuning. 3 warmup rounds per arm seed the EWMAs; one decision in 61 is
  /// a re-probe of the losing arm (<2% of deliver time even when the loser
  /// is much slower); the challenger must measure >=10% cheaper to flip the
  /// preference (deliver-phase noise on a loaded box easily exceeds a few
  /// percent round to round).
  static constexpr int kDenseArm = 0;
  static constexpr int kGatherArm = 1;
  static constexpr int kDeliveryWarmupRounds = 3;
  static constexpr int kDeliveryReprobeInterval = 61;
  static constexpr double kDeliveryHysteresis = 0.9;

  /// Churn-adaptive topology sub-path (incremental mode with delta
  /// consumers): EWMA of |delta| / |E| with a hysteresis band. Above
  /// kChurnHigh, in-place patching (Apply walks O(|Δ| log E) split points
  /// plus the moved bytes, and itself degrades to a full linear merge once
  /// |Δ| >= E/8) loses to rebuilding from the full round list (CommitEdges:
  /// one swap plus an O(E) adjacency refill), so the engine flips to
  /// RoundEdgesInto + one DiffSorted for the delta consumers; below
  /// kChurnLow it flips back. The band brackets Apply's own E/8 dense-merge
  /// crossover (docs/PERF.md records the measurement). Round 1's delta is
  /// the full bootstrap graph (churn ratio ~1 by construction) and is
  /// skipped as a bootstrap artifact.
  static constexpr double kChurnAlpha = 0.25;
  static constexpr double kChurnHigh = 0.15;
  static constexpr double kChurnLow = 0.08;

  /// Per-shard accumulator for one phase; merged in shard order after the
  /// barrier. Cache-line aligned so neighboring shards don't false-share.
  struct alignas(64) ShardAccum {
    std::int64_t messages_sent = 0;
    std::int64_t total_message_bits = 0;
    std::int64_t max_message_bits = 0;
    std::int64_t messages_delivered = 0;
    std::int64_t decided = 0;
    graph::NodeId violation_node = -1;  // first in node order within shard
    std::int64_t violation_bits = 0;
    /// This shard's deliver wall clock (adaptive all-sent rounds only);
    /// feeds its ArmSelector after the barrier. Timing only — never merged
    /// into RunStats.
    std::int64_t deliver_ns = 0;
  };

  // AdversaryView:
  [[nodiscard]] std::int64_t round() const override { return round_; }
  [[nodiscard]] double PublicState(graph::NodeId u) const override {
    SDN_CHECK(u >= 0 && u < n_);
    return nodes_[static_cast<std::size_t>(u)].PublicState();
  }

  /// Joins the topology lane; with the anomaly plane on, the wait is
  /// clocked into this round's aux-stall signal (two extra steady_clock
  /// reads inside the topology window — wall-clock observation only, no
  /// deterministic state touched).
  void DrainTopoLane() {
    if (anomaly_ == nullptr) {
      topo_lane_.Drain();
      return;
    }
    const auto w0 = std::chrono::steady_clock::now();
    topo_lane_.Drain();
    aux_wait_ns_round_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - w0)
                              .count();
  }

  /// Topology sub-path for the next round in incremental mode. Without
  /// delta consumers the direct RoundEdgesInto path is strictly cheaper
  /// (no diff runs anywhere); with consumers the churn hysteresis state
  /// decides. An adversary without a native RoundEdgesInto permanently
  /// pins the delta path the first time it declines.
  [[nodiscard]] bool WantDirectTopology() const {
    if (!topo_direct_supported_) return false;
    if (!need_delta_) return true;
    return topo_use_direct_;
  }

  /// Folds this round's |delta| / |E| into the churn EWMA and moves the
  /// direct/delta preference across the hysteresis band. No-op on rounds
  /// without a delta (direct path, no consumers — there is no choice to
  /// steer) and on round 1 (bootstrap delta, see kChurnHigh).
  void UpdateTopologyChurn(bool has_delta) {
    if (!has_delta || round_ <= 1) return;
    const auto edges = std::max<std::int64_t>(1, topo_.View().num_edges());
    const double churn =
        static_cast<double>(delta_.size()) / static_cast<double>(edges);
    churn_ewma_ = churn_seeded_
                      ? churn_ewma_ + kChurnAlpha * (churn - churn_ewma_)
                      : churn;
    churn_seeded_ = true;
    if (topo_use_direct_) {
      if (churn_ewma_ < kChurnLow) topo_use_direct_ = false;
    } else if (churn_ewma_ > kChurnHigh) {
      topo_use_direct_ = true;
    }
  }

  /// Runs fn(shard, begin, end) over all shards — on the pool when parallel,
  /// inline (same shard boundaries, ascending order) when serial.
  void ForShards(const util::ThreadPool::RangeFn& fn) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(n_, static_cast<int>(shards_), lanes_, fn);
      return;
    }
    for (std::int64_t s = 0; s < shards_; ++s) {
      fn(static_cast<int>(s), std::int64_t{n_} * s / shards_,
         std::int64_t{n_} * (s + 1) / shards_);
    }
  }

  /// Named windows: topology t0..t1, validate t1..t2, probe t2..t3, send
  /// t3..t4 (the ForShards barrier only), deliver t5..t6 (ditto); t7 is the
  /// final clock read. other_ns is the residual — everything between the
  /// named windows (shard merges, stats bookkeeping, prefetch launches) —
  /// constructed as total minus the named phases so the partition identity
  /// topology+validate+probe+send+deliver+other == total holds exactly
  /// (debug-asserted below, pinned by test_bandwidth_metrics).
  void AccumulateTimings(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1,
                         std::chrono::steady_clock::time_point t2,
                         std::chrono::steady_clock::time_point t3,
                         std::chrono::steady_clock::time_point t4,
                         std::chrono::steady_clock::time_point t5,
                         std::chrono::steady_clock::time_point t6,
                         std::chrono::steady_clock::time_point t7) {
    const auto ns = [](std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
          .count();
    };
    const std::int64_t topology = ns(t0, t1);
    const std::int64_t validate = ns(t1, t2);
    const std::int64_t probe = ns(t2, t3);
    const std::int64_t send = ns(t3, t4);
    const std::int64_t deliver = ns(t5, t6);
    const std::int64_t total = ns(t0, t7);
    stats_.timings.topology_ns += topology;
    stats_.timings.validate_ns += validate;
    stats_.timings.probe_ns += probe;
    stats_.timings.send_ns += send;
    stats_.timings.deliver_ns += deliver;
    stats_.timings.other_ns +=
        total - (topology + validate + probe + send + deliver);
    stats_.timings.total_ns += total;
#ifndef NDEBUG
    const EngineTimings& tm = stats_.timings;
    SDN_CHECK_MSG(tm.topology_ns + tm.validate_ns + tm.probe_ns + tm.send_ns +
                          tm.deliver_ns + tm.other_ns ==
                      tm.total_ns,
                  "EngineTimings phases must partition total_ns");
#endif
  }

  /// Emits this round's engine-phase spans (kPhase) — the deliver window is
  /// included only when the round got that far.
  void EmitPhaseSpans(std::chrono::steady_clock::time_point t0,
                      std::chrono::steady_clock::time_point t1,
                      std::chrono::steady_clock::time_point t2,
                      std::chrono::steady_clock::time_point t3,
                      std::chrono::steady_clock::time_point t4,
                      std::optional<std::chrono::steady_clock::time_point> t5 =
                          std::nullopt,
                      std::optional<std::chrono::steady_clock::time_point> t6 =
                          std::nullopt) {
    const auto span = [this](const char* label,
                             std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
      rec_->Emit({.kind = obs::EventKind::kPhase,
                  .round = round_,
                  .t_ns = rec_->RelNs(a),
                  .dur_ns = rec_->RelNs(b) - rec_->RelNs(a),
                  .label = label});
    };
    span("topology", t0, t1);
    span("validate", t1, t2);
    span("probe", t2, t3);
    span("send", t3, t4);
    if (t5.has_value() && t6.has_value()) span("deliver", *t5, *t6);
  }

  /// Per-round flight-recorder emission (rec_ != nullptr only): phase
  /// spans, the algorithm-phase track sampled from node 0, sketch-merge
  /// progress summed over nodes, checker window state, and bandwidth
  /// high-water marks. Runs after the round's final clock read.
  void ObserveRound(std::chrono::steady_clock::time_point t0,
                    std::chrono::steady_clock::time_point t1,
                    std::chrono::steady_clock::time_point t2,
                    std::chrono::steady_clock::time_point t3,
                    std::chrono::steady_clock::time_point t4,
                    std::chrono::steady_clock::time_point t5,
                    std::chrono::steady_clock::time_point t6,
                    std::int64_t round_delivered) {
    EmitPhaseSpans(t0, t1, t2, t3, t4, t5, t6);
    const std::int64_t now = rec_->RelNs(t6);
    if constexpr (ObservableProgram<A>) {
      // The run-level track samples node 0 (all nodes follow the same
      // global schedule; divergence is exactly what the alarm machinery
      // detects). Label identity is pointer identity — labels are static.
      const ProgramPhase phase = nodes_[0].ObsPhase();
      if (phase.label != obs_algo_label_ || phase.index != obs_algo_index_) {
        obs_algo_label_ = phase.label;
        obs_algo_index_ = phase.index;
        rec_->Emit({.kind = obs::EventKind::kAlgoPhase,
                    .round = round_,
                    .t_ns = now,
                    .a = phase.index,
                    .label = phase.label});
      }
      std::int64_t merges = 0;
      for (const A& node : nodes_) merges += node.ObsPhase().work;
      if (merges != obs_merges_total_) {
        rec_->Emit({.kind = obs::EventKind::kSketchMerge,
                    .round = round_,
                    .t_ns = now,
                    .a = merges,
                    .b = merges - obs_merges_total_});
        obs_merges_total_ = merges;
      }
    }
    if (checker_.has_value()) {
      const std::int64_t stable = checker_->stable_edge_count();
      const bool ok = checker_->ok();
      const std::int64_t cert = checker_->certified_T();
      if (stable != obs_stable_edges_ || ok != obs_checker_ok_ ||
          cert != obs_cert_) {
        obs_stable_edges_ = stable;
        obs_checker_ok_ = ok;
        obs_cert_ = cert;
        rec_->Emit({.kind = obs::EventKind::kCheckerWindow,
                    .round = round_,
                    .t_ns = now,
                    .a = stable,
                    .b = ok ? 1 : 0,
                    .c = cert});
      }
    }
    if (stats_.max_message_bits > obs_hw_bits_) {
      obs_hw_bits_ = stats_.max_message_bits;
      rec_->Emit({.kind = obs::EventKind::kBandwidthHighWater,
                  .round = round_,
                  .t_ns = now,
                  .a = obs_hw_bits_});
    }
    rec_->Emit({.kind = obs::EventKind::kCounter,
                .round = round_,
                .t_ns = now,
                .a = round_delivered,
                .label = "deliveries"});
  }

  void EnsureStarted() {
    if (started_) return;
    started_ = true;
    rec_ = options_.recorder;
    if (options_.collect_metrics) {
      registry_ = std::make_unique<obs::MetricsRegistry>();
      hist_round_edges_ = registry_->GetHistogram("round_edges");
      hist_round_deliveries_ = registry_->GetHistogram("round_deliveries");
      hist_round_send_ns_ =
          registry_->GetHistogram("round_send_ns", /*deterministic=*/false);
      hist_round_deliver_ns_ =
          registry_->GetHistogram("round_deliver_ns", /*deterministic=*/false);
      hist_round_total_ns_ =
          registry_->GetHistogram("round_total_ns", /*deterministic=*/false);
      if (options_.anomaly) {
        anomaly_ = std::make_unique<obs::AnomalyEngine>(
            options_.anomaly_options, registry_.get(), rec_);
      }
    }
    // CI fault hook (see the deliver-phase sleep in Step): read once so the
    // hot path pays two integer compares, not two getenv calls per round.
    if (const char* e = std::getenv("SDN_FAULT_DELIVER_SLEEP_MS");
        e != nullptr && *e != '\0') {
      fault_sleep_ms_ = std::atoll(e);
    }
    if (const char* e = std::getenv("SDN_FAULT_DELIVER_ROUND");
        e != nullptr && *e != '\0') {
      fault_round_ = std::atoll(e);
    }
    stats_.decide_round.assign(static_cast<std::size_t>(n_), -1);
    stats_.sends_per_node.assign(static_cast<std::size_t>(n_), 0);
    stats_.bit_limit = options_.bandwidth.BitLimit(n_);
    if (options_.validate_tinterval) {
      checker_.emplace(n_, adversary_.interval());
    }
    incremental_ = options_.incremental_topology;
    if (incremental_) topo_.Reset(n_);
    // Certification fast path: a composition-exposing adversary lets the
    // checker certify windows by witness identity, so no delta needs to be
    // materialized for it at all — the topology hot path stays identical
    // to an unvalidated run. Excluded when a flight recorder is attached
    // (its kCheckerWindow track reads the delta path's stable_edge_count)
    // or a trace recorder forces deltas anyway.
    use_composition_ = checker_.has_value() && options_.tinterval_composition &&
                       incremental_ && adversary_.has_composition() &&
                       rec_ == nullptr && options_.record_trace == nullptr;
    // Deltas are materialized whenever something consumes them: the
    // streaming validator (unless it rides the composition fast path) or a
    // trace recorder. With consumers attached the adversary's
    // RoundEdgesInto fast path stays available — the engine derives the
    // delta itself with one DiffSorted when churn makes the direct path
    // the cheaper producer (WantDirectTopology); the Step assert
    // guarantees consumers see a delta every round regardless of which
    // sub-path ran.
    need_delta_ = (checker_.has_value() && !use_composition_) ||
                  options_.record_trace != nullptr;
    // Fused send/deliver needs the in-place compose path (OnSendInto) and
    // an adversary that never samples PublicState between deliver r and
    // send r+1 — i.e. an oblivious one. Deliberately not thread-gated:
    // staging runs inside whatever deliver schedule (serial or sharded)
    // the run already uses.
    fused_enabled_ = DirectSendProgram<A> && options_.fused_send_deliver &&
                     adversary_.oblivious();
    // MakeArray value-initializes: outbox slots default-constructed, sent
    // flags zero. Fused mode double-buffers both arrays so round r+1's
    // staged messages never alias the slots round r is still delivering.
    outbox_bufs_[0] =
        arena_.MakeArray<typename A::Message>(static_cast<std::size_t>(n_));
    sent_bufs_[0] = arena_.MakeArray<unsigned char>(static_cast<std::size_t>(n_));
    if (fused_enabled_) {
      outbox_bufs_[1] =
          arena_.MakeArray<typename A::Message>(static_cast<std::size_t>(n_));
      sent_bufs_[1] =
          arena_.MakeArray<unsigned char>(static_cast<std::size_t>(n_));
    }
    live_buf_ = 0;
    outbox_ = outbox_bufs_[0];
    sent_ = sent_bufs_[0];
    undecided_ = n_;

    // Memory accounting: resolve the gauges once, charge the fixed
    // per-node structures now; the live-topology gauge is updated per
    // round. All charged sizes are pure functions of n and the topology
    // stream, so RunStats::memory is as deterministic as the rest of the
    // stats.
    budget_ = options_.memory_budget != nullptr ? options_.memory_budget
                                                : &owned_budget_;
    mem_outbox_ = budget_->Get("outbox");
    mem_programs_ = budget_->Get("programs");
    mem_topology_ = budget_->Get("topology");
    mem_topology_scratch_ = budget_->Get("topology_scratch");
    mem_adversary_ = budget_->Get("adversary");
    if (checker_.has_value()) mem_checker_ = budget_->Get("checker");
    mem_outbox_->SetCurrent(static_cast<std::int64_t>(
        static_cast<std::size_t>(n_) * (sizeof(typename A::Message) + 1) *
        (fused_enabled_ ? 2 : 1)));
    mem_programs_->SetCurrent(
        static_cast<std::int64_t>(static_cast<std::size_t>(n_) * sizeof(A)));

    // Parallel geometry. Shard count is a function of n alone; the thread
    // count only decides how many lanes execute those shards.
    int threads = options_.threads;
    if (threads == 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    shards_ = std::clamp<std::int64_t>(n_ / kMinShardNodes, 1, kMaxShards);
    lanes_ = static_cast<int>(std::min<std::int64_t>(threads, shards_));
    pool_ = lanes_ > 1 ? &util::ThreadPool::Shared() : nullptr;
    // Prefetch runs on the persistent topology lane; only worth it at
    // sizes where a round costs real work. Gated on threads > 1 so
    // `threads = 1` keeps the round loop itself single-threaded.
    // Prefetch composes with the composition fast path: the checker (or
    // the cert lane's copy) reads the claimed spans right after the
    // topology section, and the next round's overlapped build (which would
    // invalidate them) only launches after the send phase — the lane drain
    // at the top of the next Step orders the accesses.
    prefetch_enabled_ = options_.prefetch_topology && threads > 1 &&
                        n_ >= 2 * kMinShardNodes && adversary_.oblivious();
    // Async certification excludes exactly the configurations that read
    // checker state mid-round: fail-fast (the verdict gates the round) and
    // a flight recorder (its per-round kCheckerWindow track). stats() is
    // the rendezvous for everything else.
    async_cert_ = checker_.has_value() && options_.async_certification &&
                  incremental_ && !options_.fail_fast_on_tinterval &&
                  rec_ == nullptr && threads > 1;
    shard_accum_.assign(static_cast<std::size_t>(shards_), ShardAccum{});
    if (fused_enabled_) {
      staged_accum_.assign(static_cast<std::size_t>(shards_), ShardAccum{});
    }
    shard_slots_.resize(static_cast<std::size_t>(shards_));
    shard_selectors_.assign(static_cast<std::size_t>(shards_),
                            ArmSelector{kDeliveryWarmupRounds,
                                        kDeliveryReprobeInterval,
                                        kDeliveryHysteresis});
    shard_arm_.assign(static_cast<std::size_t>(shards_), 0);

    for (int i = 0; i < options_.flood_probes; ++i) {
      const graph::NodeId src = (i == 0) ? graph::NodeId{0} : RandomSource();
      probes_.emplace_back(n_, src, 1);
      probe_started_.push_back(0);
      // n == 1: trivially complete at construction — it did run, so it
      // counts as spawned; leave the slot dead (respawning would complete
      // instantly forever).
      if (probes_.back().complete()) {
        probe_started_.back() = 1;
        ++probes_spawned_;
        RecordProbeCompletion(static_cast<std::size_t>(i), probes_.back());
      }
    }
    for (graph::NodeId u = 0; u < n_; ++u) {
      if (nodes_[static_cast<std::size_t>(u)].HasDecided()) {
        RecordDecision(u, 0);
      }
    }
    if (undecided_ == 0) finished_ = true;
  }

  [[nodiscard]] graph::NodeId RandomSource() {
    return static_cast<graph::NodeId>(
        probe_rng_.UniformU64(static_cast<std::uint64_t>(n_)));
  }

  void StepProbes(const graph::Graph& g) {
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      FloodProbe& p = probes_[i];
      if (p.complete()) continue;  // dead slot (n == 1)
      // A probe counts as spawned only once an executed round reaches its
      // start round — a staggered respawn whose start lies beyond the end
      // of the run never becomes a probe (it would otherwise show up as a
      // phantom never-started probe and understate the completion rate).
      if (probe_started_[i] == 0) {
        if (round_ < p.start_round()) continue;
        probe_started_[i] = 1;
        ++probes_spawned_;
        if (rec_ != nullptr) {
          rec_->Emit({.kind = obs::EventKind::kProbeSpawn,
                      .round = round_,
                      .t_ns = rec_->NowNs(),
                      .a = static_cast<std::int64_t>(i),
                      .b = p.source()});
        }
      }
      p.Push(round_, g);
      if (!p.complete()) continue;
      RecordProbeCompletion(i, p);
      // Stagger: relaunch this slot from a fresh source at round 2c. Start
      // rounds are sampled at geometrically spaced points of the run, and
      // the probe work stays O(E·d·log rounds) total instead of O(E·rounds).
      p = FloodProbe(n_, RandomSource(), 2 * round_);
      probe_started_[i] = 0;
    }
  }

  void RecordProbeCompletion(std::size_t slot, const FloodProbe& p) {
    ++probes_completed_;
    probe_max_rounds_ = std::max(probe_max_rounds_, p.completion_rounds());
    probe_total_rounds_ += static_cast<double>(p.completion_rounds());
    if (rec_ != nullptr) {
      rec_->Emit({.kind = obs::EventKind::kProbeComplete,
                  .round = round_,
                  .t_ns = rec_->NowNs(),
                  .a = static_cast<std::int64_t>(slot),
                  .b = p.completion_rounds()});
    }
  }

  [[nodiscard]] FloodingSummary FloodingSnapshot() const {
    FloodingSummary s;
    s.probes = probes_spawned_;
    s.completed = probes_completed_;
    s.max_rounds = probe_max_rounds_;
    if (probes_completed_ > 0) {
      s.mean_rounds =
          probe_total_rounds_ / static_cast<double>(probes_completed_);
    }
    return s;
  }

  void RecordDecision(graph::NodeId u, std::int64_t at) {
    stats_.decide_round[static_cast<std::size_t>(u)] = at;
    if (stats_.first_decide_round < 0) stats_.first_decide_round = at;
    stats_.last_decide_round = std::max(stats_.last_decide_round, at);
    --undecided_;
  }

  std::vector<A> nodes_;
  Adversary& adversary_;
  EngineOptions options_;
  graph::NodeId n_ = 0;
  util::Rng probe_rng_;

  // Run state (lazily initialized by the first Step()).
  bool started_ = false;
  bool finished_ = false;
  bool run_called_ = false;
  std::int64_t round_ = 0;
  std::int64_t undecided_ = 0;
  RunStats stats_;
  std::optional<graph::TIntervalChecker> checker_;
  std::vector<FloodProbe> probes_;
  std::vector<char> probe_started_;  // parallel to probes_
  std::int64_t probes_spawned_ = 0;
  std::int64_t probes_completed_ = 0;
  std::int64_t probe_max_rounds_ = -1;
  double probe_total_rounds_ = 0.0;
  // Engine-lifetime arrays live in one arena: a single max-aligned chunk
  // per array instead of vector headers + allocator round-trips, destroyed
  // wholesale (see ~Engine for the non-trivial Message case).
  util::Arena arena_;
  std::span<typename A::Message> outbox_;  // raw slots, one per node
  std::span<unsigned char> sent_;          // 1 iff the slot is live
  graph::Graph last_topology_{0};  // from-scratch mode only
  bool incremental_ = false;       // set from options_ by EnsureStarted
  bool need_delta_ = false;        // a checker or trace consumes deltas
  bool use_composition_ = false;   // checker rides the adversary's
                                   // composition claim — no delta needed
  graph::DynGraph topo_{0};        // incremental mode's one live topology
  graph::TopologyDelta delta_;     // reused round-over-round delta buffer

  // Churn-adaptive topology sub-path state (see kChurnHigh/kChurnLow).
  bool topo_direct_supported_ = true;  // adversary has RoundEdgesInto
  bool topo_use_direct_ = false;       // churn-hysteresis preference
  bool churn_seeded_ = false;
  double churn_ewma_ = 0.0;
  std::int64_t topo_direct_rounds_ = 0;
  std::int64_t topo_delta_rounds_ = 0;

  // Adaptive delivery state (DeliveryMode::kAdaptive) and per-path round
  // counters (kept for all modes — forced modes just count one arm). The
  // selectors are per shard: at large n one global cost model washes out
  // shard-local effects (node-order placement means shards differ in
  // degree mix and cache residency), so each shard runs its own
  // ArmSelector over its own measured per-message deliver cost. Arms are
  // chosen on the driving thread before the phase (selector state is
  // never touched from workers) into shard_arm_; workers only read their
  // slot. A round counts as dense only when every shard chose dense, so
  // dense+gather still partition the executed rounds (tests pin it; at
  // n < 2·kMinShardNodes there is one shard and the behavior is exactly
  // the old global selector's).
  std::vector<ArmSelector> shard_selectors_;
  std::vector<int> shard_arm_;  // this round's per-shard choice (1 = dense)
  std::int64_t dense_rounds_ = 0;
  std::int64_t gather_rounds_ = 0;

  /// What an incremental-mode topology prefetch produced: the round list
  /// already sits in topo_'s edit buffer (assigned) and/or `delta` holds
  /// the round's delta (always when delta consumers exist).
  struct PrefetchedTopology {
    bool tried_direct = false;
    bool assigned = false;
    bool has_delta = false;
    graph::TopologyDelta delta;
  };

  // Parallel geometry (EnsureStarted) and per-shard state.
  util::ThreadPool* pool_ = nullptr;
  int lanes_ = 1;
  std::int64_t shards_ = 1;
  bool prefetch_enabled_ = false;
  bool async_cert_ = false;
  bool fused_enabled_ = false;
  std::vector<ShardAccum> shard_accum_;
  std::vector<std::vector<const typename A::Message*>> shard_slots_;

  // Pipelining state. The double-buffered outbox halves (fused mode flips
  // live_buf_ each round; outbox_/sent_ above always alias the live half),
  // the staged-send accumulators, and the topology-prefetch result slots
  // (written by the topology lane, read after the drain at the top of the
  // next Step). prefetch_ns_/cert_ns_ are lane-side wall clocks surfaced
  // as EngineTimings::aux_*_ns at the rendezvous points.
  std::span<typename A::Message> outbox_bufs_[2];
  std::span<unsigned char> sent_bufs_[2];
  int live_buf_ = 0;
  bool staged_valid_ = false;
  std::vector<ShardAccum> staged_accum_;
  std::int64_t prefetched_round_ = -1;
  PrefetchedTopology prefetch_slot_;
  graph::Graph prefetch_graph_{0};
  bool prefetch_pending_ = false;
  std::int64_t prefetch_ns_ = 0;
  std::int64_t cert_ns_ = 0;

  // Memory accounting (EnsureStarted): budget_ points at the caller's
  // MemoryBudget or the engine-owned fallback; gauge pointers are resolved
  // once and stable.
  util::MemoryBudget owned_budget_;
  util::MemoryBudget* budget_ = nullptr;
  util::MemoryGauge* mem_outbox_ = nullptr;
  util::MemoryGauge* mem_programs_ = nullptr;
  util::MemoryGauge* mem_topology_ = nullptr;
  util::MemoryGauge* mem_topology_scratch_ = nullptr;
  util::MemoryGauge* mem_adversary_ = nullptr;
  util::MemoryGauge* mem_checker_ = nullptr;

  // Observability sinks (EnsureStarted): both null/off by default. The
  // recorder pointer gate is the whole off-switch — no event code runs
  // without it. Emission happens outside the timed windows, and nothing
  // here feeds back into the run, so RunStats is bit-identical either way.
  obs::FlightRecorder* rec_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  obs::Histogram* hist_round_edges_ = nullptr;
  obs::Histogram* hist_round_deliveries_ = nullptr;
  obs::Histogram* hist_round_send_ns_ = nullptr;
  obs::Histogram* hist_round_deliver_ns_ = nullptr;
  obs::Histogram* hist_round_total_ns_ = nullptr;
  /// Anomaly plane (EngineOptions::anomaly, behind the registry gate).
  /// Observed after the final clock read; never consulted by the engine.
  std::unique_ptr<obs::AnomalyEngine> anomaly_;
  /// This round's auxiliary-lane drain wait (anomaly signal; reset per
  /// Step, accumulated by DrainTopoLane).
  std::int64_t aux_wait_ns_round_ = 0;
  /// CI fault hook (SDN_FAULT_DELIVER_SLEEP_MS / SDN_FAULT_DELIVER_ROUND,
  /// read once in EnsureStarted): wall-clock stall of one deliver window.
  std::int64_t fault_sleep_ms_ = 0;
  std::int64_t fault_round_ = 1;
  const char* obs_algo_label_ = nullptr;  // last emitted algo-phase label
  std::int64_t obs_algo_index_ = -1;
  std::int64_t obs_merges_total_ = 0;
  std::int64_t obs_stable_edges_ = -1;  // last emitted checker state
  bool obs_checker_ok_ = true;
  std::int64_t obs_cert_ = -1;          // last emitted certified-T
  std::int64_t obs_hw_bits_ = 0;  // last emitted bandwidth high water

  // Auxiliary pipelining lanes — declared last so their destructors (which
  // join any in-flight task) run before the members those tasks touch
  // (adversary_, topo_, delta_, checker_, the prefetch slots) are
  // destroyed. cert_lane_ is mutable because const stats() is its
  // deterministic rendezvous.
  util::AuxLane topo_lane_;
  mutable util::AuxLane cert_lane_{kCertQueueDepth};
};

}  // namespace sdn::net
