// The lock-step round engine.
//
// One Engine executes one algorithm instance (a vector of node programs)
// against one adversary. Per round it:
//   1. asks the adversary for G_r (and streams it through the T-interval
//      checker and the flooding probes),
//   2. collects every node's OnSend message, enforcing the bandwidth budget,
//   3. delivers to each node the messages of its G_r-neighbors,
//   4. records decisions.
// The run ends when every node has decided or `max_rounds` is hit.
//
// The engine is templated on the node-program type so messages are plain
// typed values (no serialization on the hot path); bit accounting goes
// through the program's static MessageBits, which must report the size an
// actual encoding would spend.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "graph/tinterval.hpp"
#include "net/adversary.hpp"
#include "net/bandwidth.hpp"
#include "net/metrics.hpp"
#include "net/program.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::net {

struct EngineOptions {
  std::int64_t max_rounds = 2'000'000;
  BandwidthPolicy bandwidth = BandwidthPolicy::Unbounded();
  /// Verify the adversary's T-interval promise while running.
  bool validate_tinterval = true;
  /// Number of flooding probes (node 0 plus random sources, all start at
  /// round 1) used to measure d alongside the run. 0 disables measurement.
  int flood_probes = 4;
  std::uint64_t probe_seed = 0x5eedULL;
  /// When set, every round's topology is appended here (replay/debugging).
  std::vector<graph::Graph>* record_topologies = nullptr;
};

template <NodeProgram A>
class Engine final : private AdversaryView {
 public:
  Engine(std::vector<A> nodes, Adversary& adversary, EngineOptions options)
      : nodes_(std::move(nodes)),
        adversary_(adversary),
        options_(options),
        n_(static_cast<graph::NodeId>(nodes_.size())) {
    SDN_CHECK(!nodes_.empty());
    SDN_CHECK_MSG(adversary_.num_nodes() == n_,
                  "adversary built for " << adversary_.num_nodes()
                                         << " nodes, got " << nodes_.size());
    SDN_CHECK(adversary_.interval() >= 1);
    SDN_CHECK(options_.max_rounds >= 1);
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one round. Returns false (and does nothing) once the run is
  /// over — every node decided or max_rounds executed.
  bool Step() {
    EnsureStarted();
    if (finished_) return false;
    ++round_;

    last_topology_ = adversary_.TopologyFor(round_, *this);
    const graph::Graph& g = last_topology_;
    SDN_CHECK_MSG(g.num_nodes() == n_, "adversary produced wrong-size graph");
    if (options_.validate_tinterval) checker_->Push(g);
    if (options_.record_topologies != nullptr) {
      options_.record_topologies->push_back(g);
    }
    for (FloodProbe& p : probes_) p.Push(round_, g);

    for (graph::NodeId u = 0; u < n_; ++u) {
      auto& msg = outbox_[static_cast<std::size_t>(u)];
      msg = nodes_[static_cast<std::size_t>(u)].OnSend(round_);
      if (msg.has_value()) {
        const auto bits = static_cast<std::int64_t>(A::MessageBits(*msg));
        SDN_CHECK_MSG(bits <= stats_.bit_limit,
                      "message of " << bits << " bits exceeds budget "
                                    << stats_.bit_limit << " at node " << u
                                    << " round " << round_);
        ++stats_.messages_sent;
        ++stats_.sends_per_node[static_cast<std::size_t>(u)];
        stats_.total_message_bits += bits;
        stats_.max_message_bits = std::max(stats_.max_message_bits, bits);
      }
    }

    std::vector<typename A::Message>& inbox = inbox_;
    for (graph::NodeId u = 0; u < n_; ++u) {
      inbox.clear();
      for (const graph::NodeId v : g.Neighbors(u)) {
        const auto& msg = outbox_[static_cast<std::size_t>(v)];
        if (msg.has_value()) inbox.push_back(*msg);
      }
      A& node = nodes_[static_cast<std::size_t>(u)];
      const bool was_decided = node.HasDecided();
      node.OnReceive(round_, std::span<const typename A::Message>(inbox));
      if (!was_decided && node.HasDecided()) {
        RecordDecision(u, round_);
      }
    }
    stats_.rounds = round_;
    if (undecided_ == 0 || round_ >= options_.max_rounds) finished_ = true;
    return true;
  }

  /// Drives Step() to completion; callable once per engine.
  RunStats Run() {
    SDN_CHECK_MSG(!run_called_, "Engine::Run called twice");
    run_called_ = true;
    while (Step()) {
    }
    return stats();
  }

  /// Snapshot of the metrics so far (valid mid-run and after completion).
  [[nodiscard]] RunStats stats() const {
    RunStats out = stats_;
    out.all_decided = started_ && undecided_ == 0;
    out.tinterval_ok = checker_.has_value() ? checker_->ok() : true;
    out.flooding = SummarizeProbes(probes_);
    return out;
  }

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::int64_t current_round() const { return round_; }
  /// Topology of the most recently executed round (empty before round 1).
  [[nodiscard]] const graph::Graph& last_topology() const {
    return last_topology_;
  }

  [[nodiscard]] const A& node(graph::NodeId u) const {
    SDN_CHECK(u >= 0 && u < n_);
    return nodes_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }

 private:
  // AdversaryView:
  [[nodiscard]] std::int64_t round() const override { return round_; }
  [[nodiscard]] double PublicState(graph::NodeId u) const override {
    SDN_CHECK(u >= 0 && u < n_);
    return nodes_[static_cast<std::size_t>(u)].PublicState();
  }

  void EnsureStarted() {
    if (started_) return;
    started_ = true;
    stats_.decide_round.assign(static_cast<std::size_t>(n_), -1);
    stats_.sends_per_node.assign(static_cast<std::size_t>(n_), 0);
    stats_.bit_limit = options_.bandwidth.BitLimit(n_);
    checker_.emplace(n_, adversary_.interval());
    outbox_.resize(static_cast<std::size_t>(n_));
    undecided_ = n_;
    if (options_.flood_probes > 0) {
      probes_.emplace_back(n_, graph::NodeId{0}, 1);
      util::Rng rng(options_.probe_seed);
      for (int i = 1; i < options_.flood_probes; ++i) {
        const auto src = static_cast<graph::NodeId>(
            rng.UniformU64(static_cast<std::uint64_t>(n_)));
        probes_.emplace_back(n_, src, 1);
      }
    }
    for (graph::NodeId u = 0; u < n_; ++u) {
      if (nodes_[static_cast<std::size_t>(u)].HasDecided()) {
        RecordDecision(u, 0);
      }
    }
    if (undecided_ == 0) finished_ = true;
  }

  void RecordDecision(graph::NodeId u, std::int64_t at) {
    stats_.decide_round[static_cast<std::size_t>(u)] = at;
    if (stats_.first_decide_round < 0) stats_.first_decide_round = at;
    stats_.last_decide_round = std::max(stats_.last_decide_round, at);
    --undecided_;
  }

  std::vector<A> nodes_;
  Adversary& adversary_;
  EngineOptions options_;
  graph::NodeId n_ = 0;

  // Run state (lazily initialized by the first Step()).
  bool started_ = false;
  bool finished_ = false;
  bool run_called_ = false;
  std::int64_t round_ = 0;
  std::int64_t undecided_ = 0;
  RunStats stats_;
  std::optional<graph::TIntervalChecker> checker_;
  std::vector<FloodProbe> probes_;
  std::vector<std::optional<typename A::Message>> outbox_;
  std::vector<typename A::Message> inbox_;
  graph::Graph last_topology_{0};
};

}  // namespace sdn::net
