// Execution metrics reported by the engine.
//
// Round complexity is the headline number (round in which the last node
// decides). Message and bit counts make the bandwidth experiment (T6) honest,
// the flooding summary records the d the run was measured against, and the
// timing breakdown (EngineTimings) records where the simulator's own wall
// clock went so perf regressions are visible run to run (docs/PERF.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/flooding.hpp"
#include "obs/anomaly.hpp"
#include "obs/registry.hpp"

namespace sdn::net {

/// Per-run wall-clock breakdown of Engine::Step(), in nanoseconds.
/// total_ns covers the whole step and the named phases partition it
/// *exactly*: other_ns is the residual (shard-merge reductions, stats
/// bookkeeping, prefetch launches, event emission — everything between the
/// named phase windows), computed per round as total minus the named
/// phases, so topology + validate + probe + send + deliver + other ==
/// total always holds (the engine debug-asserts it). Collected with
/// steady_clock reads per phase — a few tens of ns per round, negligible
/// against the O(E) round work.
struct EngineTimings {
  std::int64_t topology_ns = 0;  ///< adversary TopologyFor + trace recording
  std::int64_t validate_ns = 0;  ///< streaming T-interval checker
  std::int64_t probe_ns = 0;     ///< flooding-time probes
  std::int64_t send_ns = 0;      ///< OnSend + bandwidth accounting
  std::int64_t deliver_ns = 0;   ///< inbox gather + OnReceive
  std::int64_t other_ns = 0;     ///< residual: merges, bookkeeping, tracing
  std::int64_t total_ns = 0;     ///< sum of all Step() wall time

  /// Work executed on the auxiliary lanes, *off* the critical path (the
  /// pipelined engine, docs/PERF.md "Pipelining"). These windows run
  /// concurrently with the named phases above and are deliberately outside
  /// the partition identity: total_ns stays the critical-path wall time,
  /// and aux_* record how much phase work the overlap hid. When prefetch is
  /// active, topology_ns shrinks to the join wait and the build cost moves
  /// here; likewise validate_ns under the async certification lane. Sum of
  /// phases = total_ns + aux_topology_ns + aux_validate_ns; overlap
  /// efficiency = that sum / total_ns (>= 1; 1.0 = no overlap happened).
  std::int64_t aux_topology_ns = 0;  ///< prefetch lane: next round's build
  std::int64_t aux_validate_ns = 0;  ///< certification lane: checker pushes

  [[nodiscard]] double TotalSeconds() const;
  /// Engine throughput; 0 when no time was recorded yet.
  [[nodiscard]] double RoundsPerSec(std::int64_t rounds) const;
  [[nodiscard]] double EdgesPerSec(std::int64_t edges) const;
  [[nodiscard]] std::string OneLine(std::int64_t rounds,
                                    std::int64_t edges) const;
};

/// First bandwidth-budget violation of a run, attributed to the node and
/// round that produced the over-budget message. The engine records it (in
/// deterministic node order within the round), marks the run finished, and
/// throws CheckError from Step() — so RunTrials can attribute the failure
/// to a seed while the violation stays inspectable in the stats snapshot.
struct BandwidthViolation {
  graph::NodeId node = -1;
  std::int64_t round = -1;
  /// Encoded size of the offending message (> RunStats::bit_limit).
  std::int64_t bits = 0;
};

/// One subsystem's byte accounting in RunStats (from util::MemoryBudget).
struct MemoryUse {
  std::string subsystem;
  std::int64_t current_bytes = 0;
  std::int64_t peak_bytes = 0;
};

struct RunStats {
  /// Rounds actually executed (= last decide round when all_decided).
  std::int64_t rounds = 0;
  bool all_decided = false;
  /// The run was cut off by EngineOptions::max_rounds with nodes still
  /// undecided. Such a run's `rounds` is a truncation artifact, not a
  /// complexity measurement — harnesses must not plot it as one.
  bool hit_max_rounds = false;
  std::int64_t first_decide_round = -1;
  std::int64_t last_decide_round = -1;
  /// Per-node decide round; -1 if the node never decided.
  std::vector<std::int64_t> decide_round;

  /// One "message" = one local broadcast by one node in one round.
  std::int64_t messages_sent = 0;
  /// Broadcasts per node (message complexity distribution; a node's silent
  /// rounds = rounds - sends_per_node[u]).
  std::vector<std::int64_t> sends_per_node;
  std::int64_t total_message_bits = 0;
  std::int64_t max_message_bits = 0;
  /// The enforced per-message budget (INT64_MAX when unbounded).
  std::int64_t bit_limit = 0;
  /// Set when a message exceeded bit_limit; the run is failed (see
  /// BandwidthViolation). The violating round's sends are still counted.
  std::optional<BandwidthViolation> bandwidth_violation;

  /// Σ_r |E_r|: undirected edges the engine processed across the run.
  std::int64_t edges_processed = 0;
  /// (message, receiver) pairs delivered — the zero-copy gather count.
  std::int64_t messages_delivered = 0;

  /// Engine-side verification that the adversary kept its promise.
  /// tinterval_ok is only meaningful when tinterval_validated is true;
  /// with validation off the engine reports ok vacuously and flags it here.
  bool tinterval_ok = true;
  bool tinterval_validated = false;
  /// Largest T' <= T the observed round stream actually satisfied
  /// (TIntervalChecker::certified_T): T while the promise held, the
  /// observed level after a violation, 0 when unvalidated (no claim).
  std::int64_t certified_T = 0;
  /// First complete window (0-based start round index) whose intersection
  /// was disconnected; -1 while the promise holds or unvalidated.
  std::int64_t tinterval_first_bad_window = -1;
  /// Minimum stable-forest size over complete windows (n-1 while ok);
  /// -1 when unvalidated.
  std::int64_t min_stable_forest = -1;

  FloodingSummary flooding;

  EngineTimings timings;

  /// Peak bytes per engine subsystem (util::MemoryBudget snapshot):
  /// "outbox" (message slots + sent flags), "programs" (node state array),
  /// "topology" (live CSR + delta buffer), plus caller-charged subsystems
  /// ("sketch_pool", "trace_stream") when the run shares a budget through
  /// EngineOptions::memory_budget. Every charged size is a pure function
  /// of n and the topology stream — deterministic across thread counts
  /// and delivery backings, unlike wall-clock timings.
  std::vector<MemoryUse> memory;

  /// Registry snapshot (EngineOptions::collect_metrics): per-round
  /// histograms and named counters mirroring the scalar fields above.
  /// Empty unless collection was on. ns-valued entries are flagged
  /// non-deterministic; everything else is bit-identical at any thread
  /// count and with tracing on or off.
  obs::MetricsSnapshot metrics;

  /// Anomaly records fired by the always-on anomaly plane
  /// (EngineOptions::anomaly, requires collect_metrics), bounded by
  /// AnomalyOptions::max_records. Wall-clock driven, so — like the ns
  /// histograms — never part of the deterministic comparison surface.
  std::vector<obs::AnomalyRecord> anomalies;

  /// Flight-recorder events lost to ring wraparound across all lanes
  /// (0 when no recorder was attached). A nonzero value means the trace
  /// covers only the most recent window of the run.
  std::uint64_t recorder_dropped = 0;

  [[nodiscard]] double AvgBitsPerMessage() const;
  /// Total bits divided by (nodes × rounds): per-node per-round bandwidth.
  [[nodiscard]] double BitsPerNodeRound(std::int64_t num_nodes) const;
  [[nodiscard]] std::string OneLine() const;
};

}  // namespace sdn::net
