// Execution metrics reported by the engine.
//
// Round complexity is the headline number (round in which the last node
// decides). Message and bit counts make the bandwidth experiment (T6) honest,
// and the flooding summary records the d the run was measured against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/flooding.hpp"

namespace sdn::net {

struct RunStats {
  /// Rounds actually executed (= last decide round when all_decided).
  std::int64_t rounds = 0;
  bool all_decided = false;
  std::int64_t first_decide_round = -1;
  std::int64_t last_decide_round = -1;
  /// Per-node decide round; -1 if the node never decided.
  std::vector<std::int64_t> decide_round;

  /// One "message" = one local broadcast by one node in one round.
  std::int64_t messages_sent = 0;
  /// Broadcasts per node (message complexity distribution; a node's silent
  /// rounds = rounds - sends_per_node[u]).
  std::vector<std::int64_t> sends_per_node;
  std::int64_t total_message_bits = 0;
  std::int64_t max_message_bits = 0;
  /// The enforced per-message budget (INT64_MAX when unbounded).
  std::int64_t bit_limit = 0;

  /// Engine-side verification that the adversary kept its promise.
  bool tinterval_ok = true;

  FloodingSummary flooding;

  [[nodiscard]] double AvgBitsPerMessage() const;
  /// Total bits divided by (nodes × rounds): per-node per-round bandwidth.
  [[nodiscard]] double BitsPerNodeRound(std::int64_t num_nodes) const;
  [[nodiscard]] std::string OneLine() const;
};

}  // namespace sdn::net
