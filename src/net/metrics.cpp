#include "net/metrics.hpp"

#include <sstream>

namespace sdn::net {

double RunStats::AvgBitsPerMessage() const {
  if (messages_sent == 0) return 0.0;
  return static_cast<double>(total_message_bits) /
         static_cast<double>(messages_sent);
}

double RunStats::BitsPerNodeRound(std::int64_t num_nodes) const {
  if (num_nodes == 0 || rounds == 0) return 0.0;
  return static_cast<double>(total_message_bits) /
         (static_cast<double>(num_nodes) * static_cast<double>(rounds));
}

std::string RunStats::OneLine() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " decided=" << (all_decided ? "all" : "PARTIAL")
     << " msgs=" << messages_sent << " bits=" << total_message_bits
     << " d=" << flooding.max_rounds
     << " tinterval=" << (tinterval_ok ? "ok" : "VIOLATED");
  return os.str();
}

}  // namespace sdn::net
