#include "net/metrics.hpp"

#include <iomanip>
#include <sstream>

namespace sdn::net {

double EngineTimings::TotalSeconds() const {
  return static_cast<double>(total_ns) * 1e-9;
}

double EngineTimings::RoundsPerSec(std::int64_t rounds) const {
  if (total_ns <= 0) return 0.0;
  return static_cast<double>(rounds) / TotalSeconds();
}

double EngineTimings::EdgesPerSec(std::int64_t edges) const {
  if (total_ns <= 0) return 0.0;
  return static_cast<double>(edges) / TotalSeconds();
}

std::string EngineTimings::OneLine(std::int64_t rounds,
                                   std::int64_t edges) const {
  std::ostringstream os;
  const auto ms = [](std::int64_t ns) {
    return static_cast<double>(ns) * 1e-6;
  };
  os << std::fixed << std::setprecision(2) << "total=" << ms(total_ns)
     << "ms (topology=" << ms(topology_ns) << " validate=" << ms(validate_ns)
     << " probe=" << ms(probe_ns) << " send=" << ms(send_ns)
     << " deliver=" << ms(deliver_ns) << " other=" << ms(other_ns) << ")"
     << std::setprecision(0) << " rounds/s=" << RoundsPerSec(rounds)
     << " edges/s=" << EdgesPerSec(edges);
  return os.str();
}

double RunStats::AvgBitsPerMessage() const {
  if (messages_sent == 0) return 0.0;
  return static_cast<double>(total_message_bits) /
         static_cast<double>(messages_sent);
}

double RunStats::BitsPerNodeRound(std::int64_t num_nodes) const {
  if (num_nodes == 0 || rounds == 0) return 0.0;
  return static_cast<double>(total_message_bits) /
         (static_cast<double>(num_nodes) * static_cast<double>(rounds));
}

std::string RunStats::OneLine() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " decided=" << (all_decided ? "all" : "PARTIAL");
  if (hit_max_rounds) os << " TRUNCATED";
  if (bandwidth_violation.has_value()) {
    os << " BW-VIOLATION(node=" << bandwidth_violation->node
       << " round=" << bandwidth_violation->round
       << " bits=" << bandwidth_violation->bits << ")";
  }
  os << " msgs=" << messages_sent << " bits=" << total_message_bits
     << " d=" << flooding.max_rounds << " tinterval="
     << (!tinterval_validated ? "unvalidated"
                              : (tinterval_ok ? "ok" : "VIOLATED"));
  if (tinterval_validated) {
    os << " certT=" << certified_T;
    if (!tinterval_ok) {
      os << " firstBadWindow=" << tinterval_first_bad_window;
    }
  }
  if (timings.total_ns > 0) {
    os << " rounds/s=" << static_cast<std::int64_t>(
        timings.RoundsPerSec(rounds));
  }
  if (const obs::MetricSample* s = metrics.Find("round_edges");
      s != nullptr && s->count > 0) {
    os << " edges/round=p50:" << s->p50 << "/p95:" << s->p95;
  }
  if (const obs::MetricSample* s = metrics.Find("round_deliveries");
      s != nullptr && s->count > 0) {
    os << " deliveries/round=p50:" << s->p50 << "/p95:" << s->p95;
  }
  if (!anomalies.empty()) os << " anomalies=" << anomalies.size();
  if (recorder_dropped > 0) os << " drops=" << recorder_dropped;
  return os.str();
}

}  // namespace sdn::net
