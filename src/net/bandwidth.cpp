#include "net/bandwidth.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sdn::net {

std::int64_t BandwidthPolicy::BitLimit(graph::NodeId n) const {
  if (mode == BandwidthMode::kUnbounded) {
    return std::numeric_limits<std::int64_t>::max();
  }
  SDN_CHECK(multiplier > 0.0);
  const double logn = std::log2(static_cast<double>(std::max<graph::NodeId>(n, 2)));
  return std::max(floor_bits,
                  static_cast<std::int64_t>(std::ceil(multiplier * logn)));
}

const char* ToString(BandwidthMode mode) {
  switch (mode) {
    case BandwidthMode::kUnbounded:
      return "unbounded";
    case BandwidthMode::kBoundedLogN:
      return "bounded-logN";
  }
  return "?";
}

}  // namespace sdn::net
