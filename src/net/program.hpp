// The node-program contract.
//
// An algorithm is a per-node state machine type A satisfying NodeProgram:
//
//   using Message = ...;   // what a node broadcasts each round
//   using Output  = ...;   // what a node eventually decides
//   std::optional<Message> OnSend(Round r);            // may be silent
//   void OnReceive(Round r, Inbox<Message> in);        // neighbor msgs
//   bool HasDecided() const;
//   std::optional<Output> output() const;
//   double PublicState() const;          // what adaptive adversaries may see
//   static std::size_t MessageBits(const Message&);  // honest wire size
//
// The engine calls OnSend for every node, then delivers each node the
// multiset of its current neighbors' messages (anonymous local broadcast),
// then calls OnReceive. A decided node keeps participating (helping others
// terminate) unless the algorithm itself chooses to go silent.
//
// Delivery is zero-copy: Inbox is a gather of pointers into the engine's
// shared per-round outbox, so a message broadcast to k neighbors exists
// exactly once in memory and is read in place by all k receivers. Iteration
// yields const Message& — a program must never mutate (or cast away const
// on) an inbox entry, because every other receiver of the same sender sees
// the same object. Inbox entries are only valid for the duration of the
// OnReceive call; a program that needs a message beyond that must copy it.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <span>

namespace sdn::net {

using Round = std::int64_t;

/// Zero-copy view of the messages delivered to one node in one round: a span
/// over stable pointers into the engine's outbox. Dereferencing yields
/// const M&; the pointed-to messages are shared by every receiver.
template <typename M>
class Inbox {
 public:
  using value_type = M;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = M;
    using difference_type = std::ptrdiff_t;
    using pointer = const M*;
    using reference = const M&;

    iterator() = default;
    explicit iterator(const M* const* slot) : slot_(slot) {}

    reference operator*() const { return **slot_; }
    pointer operator->() const { return *slot_; }
    iterator& operator++() {
      ++slot_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++slot_;
      return tmp;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const M* const* slot_ = nullptr;
  };
  using const_iterator = iterator;

  /// Empty inbox (a round with no messaging neighbors).
  Inbox() = default;
  /// View over an externally owned pointer gather (the engine's, or a
  /// test's stack array of &message pointers).
  explicit Inbox(std::span<const M* const> slots) : slots_(slots) {}

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return slots_.empty(); }
  [[nodiscard]] const M& operator[](std::size_t i) const { return *slots_[i]; }
  [[nodiscard]] iterator begin() const { return iterator(slots_.data()); }
  [[nodiscard]] iterator end() const {
    return iterator(slots_.data() + slots_.size());
  }

 private:
  std::span<const M* const> slots_;
};

template <typename A>
concept NodeProgram = requires(
    A a, const A ca, Round r,
    Inbox<typename A::Message> inbox,
    const typename A::Message& msg) {
  typename A::Message;
  typename A::Output;
  { a.OnSend(r) } -> std::same_as<std::optional<typename A::Message>>;
  { a.OnReceive(r, inbox) } -> std::same_as<void>;
  { ca.HasDecided() } -> std::convertible_to<bool>;
  { ca.output() } -> std::same_as<std::optional<typename A::Output>>;
  { ca.PublicState() } -> std::convertible_to<double>;
  { A::MessageBits(msg) } -> std::convertible_to<std::size_t>;
};

}  // namespace sdn::net
