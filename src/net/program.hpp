// The node-program contract.
//
// An algorithm is a per-node state machine type A satisfying NodeProgram:
//
//   using Message = ...;   // what a node broadcasts each round
//   using Output  = ...;   // what a node eventually decides
//   std::optional<Message> OnSend(Round r);            // may be silent
//   void OnReceive(Round r, Inbox<Message> in);        // neighbor msgs
//   bool HasDecided() const;
//   std::optional<Output> output() const;
//   double PublicState() const;          // what adaptive adversaries may see
//   static std::size_t MessageBits(const Message&);  // honest wire size
//
// The engine calls OnSend for every node, then delivers each node the
// multiset of its current neighbors' messages (anonymous local broadcast),
// then calls OnReceive. A decided node keeps participating (helping others
// terminate) unless the algorithm itself chooses to go silent.
//
// Delivery is zero-copy, with two backings behind the same Inbox view:
//
//   * dense (the common case): when every node produced a message this
//     round, an Inbox is the graph's own CSR neighbor-id span plus the base
//     pointer of the engine's per-round outbox — entry i is
//     outbox[neighbors[i]], read in place with no per-receiver gather at
//     all.
//   * sparse (silent-node rounds, tests): a gather of `const M*` pointers
//     into the outbox, one per messaging neighbor.
//
// Either way a message broadcast to k neighbors exists exactly once in
// memory and is read in place by all k receivers. Iteration yields
// const Message& — a program must never mutate (or cast away const on) an
// inbox entry, because every other receiver of the same sender sees the
// same object. Inbox entries are only valid for the duration of the
// OnReceive call; a program that needs a message beyond that must copy it.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <optional>
#include <span>

namespace sdn::net {

using Round = std::int64_t;

/// Zero-copy view of the messages delivered to one node in one round.
/// Sparse backing: a span over stable pointers into the engine's outbox.
/// Dense backing: the receiver's CSR neighbor-id span plus the outbox base
/// pointer (every slot occupied, so entry i is outbox[ids[i]]).
/// Dereferencing yields const M&; the pointed-to messages are shared by
/// every receiver.
template <typename M>
class Inbox {
 public:
  using value_type = M;

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = M;
    using difference_type = std::ptrdiff_t;
    using pointer = const M*;
    using reference = const M&;

    iterator() = default;
    explicit iterator(const M* const* slot) : slot_(slot) {}
    iterator(const M* base, const std::int32_t* id) : base_(base), id_(id) {}

    reference operator*() const {
      return base_ != nullptr ? base_[static_cast<std::size_t>(*id_)]
                              : **slot_;
    }
    pointer operator->() const { return &operator*(); }
    iterator& operator++() {
      if (base_ != nullptr) {
        ++id_;
      } else {
        ++slot_;
      }
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++(*this);
      return tmp;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.slot_ == b.slot_ && a.id_ == b.id_;
    }

   private:
    const M* const* slot_ = nullptr;  // sparse cursor
    const M* base_ = nullptr;         // dense outbox base
    const std::int32_t* id_ = nullptr;  // dense cursor
  };
  using const_iterator = iterator;

  /// Empty inbox (a round with no messaging neighbors).
  Inbox() = default;
  /// Sparse view over an externally owned pointer gather (the engine's, or
  /// a test's stack array of &message pointers).
  explicit Inbox(std::span<const M* const> slots) : slots_(slots) {}
  /// Dense view: `outbox[ids[i]]` must hold a live round-r message for
  /// every i (the engine takes this path only when every node sent this
  /// round, so the raw slot array has no engaged/empty distinction to
  /// encode — one pointer plus the CSR ids).
  Inbox(const M* outbox, std::span<const std::int32_t> ids)
      : base_(outbox), ids_(ids) {}

  [[nodiscard]] std::size_t size() const {
    return base_ != nullptr ? ids_.size() : slots_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const M& operator[](std::size_t i) const {
    return base_ != nullptr ? base_[static_cast<std::size_t>(ids_[i])]
                            : *slots_[i];
  }
  [[nodiscard]] iterator begin() const {
    return base_ != nullptr ? iterator(base_, ids_.data())
                            : iterator(slots_.data());
  }
  [[nodiscard]] iterator end() const {
    return base_ != nullptr ? iterator(base_, ids_.data() + ids_.size())
                            : iterator(slots_.data() + slots_.size());
  }

  /// True when this inbox is backed by direct outbox indexing (all senders
  /// present); exposed so tests can assert which path a round took.
  [[nodiscard]] bool dense() const { return base_ != nullptr; }

 private:
  std::span<const M* const> slots_;  // sparse backing
  const M* base_ = nullptr;          // dense backing: outbox base
  std::span<const std::int32_t> ids_;  // dense backing: neighbor ids
};

template <typename A>
concept NodeProgram = requires(
    A a, const A ca, Round r,
    Inbox<typename A::Message> inbox,
    const typename A::Message& msg) {
  typename A::Message;
  typename A::Output;
  { a.OnSend(r) } -> std::same_as<std::optional<typename A::Message>>;
  { a.OnReceive(r, inbox) } -> std::same_as<void>;
  { ca.HasDecided() } -> std::convertible_to<bool>;
  { ca.output() } -> std::same_as<std::optional<typename A::Output>>;
  { ca.PublicState() } -> std::convertible_to<double>;
  { A::MessageBits(msg) } -> std::convertible_to<std::size_t>;
};

/// Optional extension of NodeProgram: programs that can compose their
/// round-r message straight into a caller-provided slot, returning whether
/// they sent. The engine uses this to write each node's message in place
/// into its outbox slot — OnSend's `std::optional<Message>` return path
/// costs a zero-init plus two full Message copies per send, which for a
/// cache-line-aligned wire struct is most of the send phase. A provider
/// must overwrite every field a receiver may read (slots are reused across
/// rounds; only payload lanes beyond the declared count may keep stale
/// bytes), and OnSendInto(r, m) must produce the same send decision and
/// the same readable fields as OnSend(r) — the engine picks whichever path
/// exists per program type, and the property suites pin RunStats equality
/// between a direct-send program and its OnSend behavior.
///
/// Speculative calls: under fused send/deliver the engine composes round
/// r+1's message immediately after the node's round-r OnReceive — the
/// per-node call order (..., OnReceive(r), OnSendInto(r+1),
/// OnReceive(r+1), ...) is exactly the serial engine's, but when the run
/// ends or aborts at round r the trailing OnSendInto(r+1) has already
/// happened and its output is discarded. A provider must therefore
/// tolerate one final OnSendInto whose message is never delivered: any
/// state it mutates (schedule-window caches, sent-token bookkeeping) must
/// be invisible to everything read after the run — HasDecided, output,
/// PublicState, ObsPhase.
template <typename A>
concept DirectSendProgram =
    NodeProgram<A> && requires(A a, Round r, typename A::Message& m) {
      { a.OnSendInto(r, m) } -> std::same_as<bool>;
    };

/// What a node reports about where it is inside its algorithm, for the
/// flight recorder's algorithm-phase track (obs::EventKind::kAlgoPhase).
struct ProgramPhase {
  /// Static-storage-duration phase name ("disseminate", "verify", ...) —
  /// the recorder stores the pointer, never a copy.
  const char* label = "";
  /// Phase ordinal within the algorithm's own numbering (hjswy doubling
  /// phase, census/committee guess k, ...).
  std::int64_t index = 0;
  /// Monotone per-node work counter (e.g. successful sketch merges); the
  /// engine sums this across nodes for kSketchMerge events.
  std::int64_t work = 0;
};

/// Optional extension of NodeProgram: programs that expose a phase label
/// get an algorithm-phase track in traces. ObsPhase() must be cheap (a
/// member read) — the engine samples it per round while a recorder is
/// attached, and never otherwise.
template <typename A>
concept ObservableProgram = NodeProgram<A> && requires(const A ca) {
  { ca.ObsPhase() } -> std::same_as<ProgramPhase>;
};

}  // namespace sdn::net
