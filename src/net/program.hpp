// The node-program contract.
//
// An algorithm is a per-node state machine type A satisfying NodeProgram:
//
//   using Message = ...;   // what a node broadcasts each round
//   using Output  = ...;   // what a node eventually decides
//   std::optional<Message> OnSend(Round r);                 // may be silent
//   void OnReceive(Round r, std::span<const Message> in);   // neighbor msgs
//   bool HasDecided() const;
//   std::optional<Output> output() const;
//   double PublicState() const;          // what adaptive adversaries may see
//   static std::size_t MessageBits(const Message&);  // honest wire size
//
// The engine calls OnSend for every node, then delivers each node the
// multiset of its current neighbors' messages (anonymous local broadcast),
// then calls OnReceive. A decided node keeps participating (helping others
// terminate) unless the algorithm itself chooses to go silent.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <span>

namespace sdn::net {

using Round = std::int64_t;

template <typename A>
concept NodeProgram = requires(
    A a, const A ca, Round r,
    std::span<const typename A::Message> inbox,
    const typename A::Message& msg) {
  typename A::Message;
  typename A::Output;
  { a.OnSend(r) } -> std::same_as<std::optional<typename A::Message>>;
  { a.OnReceive(r, inbox) } -> std::same_as<void>;
  { ca.HasDecided() } -> std::convertible_to<bool>;
  { ca.output() } -> std::same_as<std::optional<typename A::Output>>;
  { ca.PublicState() } -> std::convertible_to<double>;
  { A::MessageBits(msg) } -> std::convertible_to<std::size_t>;
};

}  // namespace sdn::net
