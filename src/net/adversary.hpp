// Adversary interface.
//
// The adversary owns the topology: each round the engine asks it for G_r.
// Oblivious adversaries ignore the view; adaptive adversaries may inspect the
// public per-node state the running algorithm exposes (DESIGN.md §1). The
// engine independently verifies the T-interval promise with a streaming
// checker, so a buggy adversary cannot silently invalidate an experiment.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace sdn::net {

/// Read-only window an adaptive adversary gets into the execution.
class AdversaryView {
 public:
  virtual ~AdversaryView() = default;

  /// The round about to be executed (1-based).
  [[nodiscard]] virtual std::int64_t round() const = 0;

  /// Algorithm-published scalar per node (e.g. "how much has u learned");
  /// 0 for algorithms that publish nothing.
  [[nodiscard]] virtual double PublicState(graph::NodeId u) const = 0;

  [[nodiscard]] virtual graph::NodeId num_nodes() const = 0;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  [[nodiscard]] virtual graph::NodeId num_nodes() const = 0;

  /// The T this adversary promises (>= 1).
  [[nodiscard]] virtual int interval() const = 0;

  /// Topology for round `round` (1-based). Must uphold the T-interval
  /// promise across consecutive calls with round = 1, 2, 3, ...
  virtual graph::Graph TopologyFor(std::int64_t round,
                                   const AdversaryView& view) = 0;

  /// Stable name for report rows.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace sdn::net
