// Adversary interface.
//
// The adversary owns the topology: each round the engine asks it for G_r.
// Oblivious adversaries ignore the view; adaptive adversaries may inspect the
// public per-node state the running algorithm exposes (DESIGN.md §1). The
// engine independently verifies the T-interval promise with a streaming
// checker, so a buggy adversary cannot silently invalidate an experiment.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace sdn::net {

/// Read-only window an adaptive adversary gets into the execution.
class AdversaryView {
 public:
  virtual ~AdversaryView() = default;

  /// The round about to be executed (1-based).
  [[nodiscard]] virtual std::int64_t round() const = 0;

  /// Algorithm-published scalar per node (e.g. "how much has u learned");
  /// 0 for algorithms that publish nothing.
  [[nodiscard]] virtual double PublicState(graph::NodeId u) const = 0;

  [[nodiscard]] virtual graph::NodeId num_nodes() const = 0;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  [[nodiscard]] virtual graph::NodeId num_nodes() const = 0;

  /// The T this adversary promises (>= 1).
  [[nodiscard]] virtual int interval() const = 0;

  /// Topology for round `round` (1-based). Must uphold the T-interval
  /// promise across consecutive calls with round = 1, 2, 3, ...
  virtual graph::Graph TopologyFor(std::int64_t round,
                                   const AdversaryView& view) = 0;

  /// True when TopologyFor never reads the view's node state (round and
  /// num_nodes are fine): the topology sequence is a pure function of the
  /// call sequence. The engine may then compute round r+1's topology
  /// concurrently with round r's deliver phase (prefetch) — calls stay
  /// strictly sequential and in round order either way, so the produced
  /// sequence is identical; only the wall-clock overlap changes. Adaptive
  /// adversaries (which sample PublicState mid-run) must return false.
  [[nodiscard]] virtual bool oblivious() const { return true; }

  /// Stable name for report rows.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace sdn::net
