// Adversary interface.
//
// The adversary owns the topology: each round the engine asks it for G_r.
// Oblivious adversaries ignore the view; adaptive adversaries may inspect the
// public per-node state the running algorithm exposes (DESIGN.md §1). The
// engine independently verifies the T-interval promise with a streaming
// checker, so a buggy adversary cannot silently invalidate an experiment.
#pragma once

#include <cstdint>
#include <string>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "graph/tinterval.hpp"

namespace sdn::net {

/// Read-only window an adaptive adversary gets into the execution.
class AdversaryView {
 public:
  virtual ~AdversaryView() = default;

  /// The round about to be executed (1-based).
  [[nodiscard]] virtual std::int64_t round() const = 0;

  /// Algorithm-published scalar per node (e.g. "how much has u learned");
  /// 0 for algorithms that publish nothing.
  [[nodiscard]] virtual double PublicState(graph::NodeId u) const = 0;

  [[nodiscard]] virtual graph::NodeId num_nodes() const = 0;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  [[nodiscard]] virtual graph::NodeId num_nodes() const = 0;

  /// The T this adversary promises (>= 1).
  [[nodiscard]] virtual int interval() const = 0;

  /// Topology for round `round` (1-based). Must uphold the T-interval
  /// promise across consecutive calls with round = 1, 2, 3, ...
  virtual graph::Graph TopologyFor(std::int64_t round,
                                   const AdversaryView& view) = 0;

  /// Delta fast path: writes into `out` the delta turning `prev` — the
  /// topology this adversary produced for round-1 (the empty n-node graph
  /// when round == 1) — into round `round`'s topology. Must be equivalent
  /// to `graph::Diff(prev, TopologyFor(round, view))`; the default does
  /// exactly that, so every adversary supports the delta-driven engine
  /// unchanged. Adversaries whose rounds share structure (spines, static or
  /// replayed graphs) override this to emit the delta directly, skipping
  /// the per-round Graph materialization entirely. Within one run the
  /// engine uses either DeltaFor or TopologyFor exclusively, with strictly
  /// sequential rounds 1, 2, 3, ... — overrides may rely on that (and must
  /// consume the same RNG stream as TopologyFor so the two modes produce
  /// bit-identical sequences).
  virtual void DeltaFor(std::int64_t round, const AdversaryView& view,
                        const graph::Graph& prev, graph::TopologyDelta& out);

  /// Fastest path: write round `round`'s complete topology as a sorted,
  /// duplicate-free edge list into `out` and return true, or return false
  /// (the default) to make the engine fall back to DeltaFor. The engine
  /// uses this only when nothing in the run consumes deltas (no streaming
  /// T-interval validation, no trace recording): materializing a delta that
  /// nobody reads costs a diff pass per round, which for high-churn
  /// adversaries (short eras) rivals the topology build itself. `out`
  /// arrives with unspecified contents (a reused buffer) and on a false
  /// return may be left in any state. The same sequencing rules as DeltaFor
  /// apply: strictly sequential rounds, one mode per run, and overrides
  /// must consume the identical RNG stream as TopologyFor so all three
  /// paths produce bit-identical topology sequences.
  virtual bool RoundEdgesInto(std::int64_t round, const AdversaryView& view,
                              std::vector<graph::Edge>& out);

  /// Certification fast path: adversaries whose rounds share pinned
  /// long-lived structure (spines) may expose how each round was
  /// assembled (graph::RoundComposition), letting the streaming
  /// T-interval checker certify windows by witness identity — one
  /// connectivity pass per *new* pinned set instead of per round — with
  /// no delta materialized anywhere. Contract: the return value of
  /// has_composition() is fixed for the adversary's lifetime; when true,
  /// Composition(r) must return non-null for the round most recently
  /// produced (via TopologyFor, DeltaFor or RoundEdgesInto), the claimed
  /// union must equal that round's edge list exactly (the checker
  /// cross-checks with sampled probes plus scheduled full verification and
  /// throws CheckError on divergence; tests pin exact equality), and the
  /// core/support spans must carry shared owners
  /// (RoundComposition::core_owner / support_owner): a consumer that needs
  /// a pinned set beyond the current round — the checker's spine cache,
  /// the engine's asynchronous certification lane — retains the owner
  /// instead of copying, so the buffer must not be mutated once published
  /// under an id (publish a fresh vector per era instead). Only the
  /// `fresh` span may be a per-round volatile buffer.
  [[nodiscard]] virtual bool has_composition() const { return false; }
  [[nodiscard]] virtual const graph::RoundComposition* Composition(
      std::int64_t round) const {
    (void)round;
    return nullptr;
  }

  /// True when TopologyFor never reads the view's node state (round and
  /// num_nodes are fine): the topology sequence is a pure function of the
  /// call sequence. The engine may then compute round r+1's topology
  /// concurrently with round r's deliver phase (prefetch) — calls stay
  /// strictly sequential and in round order either way, so the produced
  /// sequence is identical; only the wall-clock overlap changes. Adaptive
  /// adversaries (which sample PublicState mid-run) must return false.
  [[nodiscard]] virtual bool oblivious() const { return true; }

  /// Byte footprint of the adversary's generator buffers (spine pools,
  /// assembly scratch, RNG state — whatever the implementation retains
  /// between rounds). Surfaced by the engine as the "adversary" memory
  /// gauge; must be a pure function of the call sequence (capacities, not
  /// timing-dependent scratch) so RunStats::memory stays deterministic.
  /// The default (0) opts out of accounting.
  [[nodiscard]] virtual std::int64_t BufferBytes() const { return 0; }

  /// Stable name for report rows.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace sdn::net
