// Dynamic flooding time measurement.
//
// The paper-line complexity parameter d is the *dynamic flooding time* of the
// executed graph sequence: how many rounds a token injected at node u in
// round r needs to reach every node when every informed node forwards it
// every round. The engine runs a handful of FloodProbes alongside the
// algorithm so every report can state the d it was measured against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace sdn::net {

/// Tracks the spread of one token from (source, start_round).
class FloodProbe {
 public:
  FloodProbe(graph::NodeId n, graph::NodeId source, std::int64_t start_round);

  /// Feeds the topology of `round`; spread happens iff round >= start_round
  /// and the probe is not yet complete.
  void Push(std::int64_t round, const graph::Graph& g);

  [[nodiscard]] bool complete() const { return reached_count_ == n_; }
  /// Rounds elapsed from start to full coverage; -1 while incomplete.
  [[nodiscard]] std::int64_t completion_rounds() const;
  [[nodiscard]] graph::NodeId source() const { return source_; }
  [[nodiscard]] std::int64_t start_round() const { return start_round_; }
  [[nodiscard]] graph::NodeId reached_count() const { return reached_count_; }

 private:
  graph::NodeId n_;
  graph::NodeId source_;
  std::int64_t start_round_;
  std::int64_t completed_at_ = -1;
  graph::NodeId reached_count_ = 0;
  std::vector<bool> reached_;
  std::vector<graph::NodeId> informed_;  // in discovery order
};

/// Summary over a set of probes.
struct FloodingSummary {
  std::int64_t probes = 0;
  std::int64_t completed = 0;
  /// Max completion rounds over completed probes (the measured d); -1 if none
  /// completed.
  std::int64_t max_rounds = -1;
  double mean_rounds = 0.0;
};

FloodingSummary SummarizeProbes(const std::vector<FloodProbe>& probes);

/// Offline exact dynamic flooding time of a recorded sequence: max over all
/// sources starting at round index 0. Returns -1 if some probe cannot finish
/// within the sequence.
std::int64_t DynamicFloodingTime(std::span<const graph::Graph> sequence);

}  // namespace sdn::net
