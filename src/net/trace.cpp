#include "net/trace.hpp"

#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace sdn::net {

void SaveTrace(const std::string& path, std::span<const graph::Graph> rounds,
               int interval) {
  SDN_CHECK(!rounds.empty());
  SDN_CHECK(interval >= 1);
  const graph::NodeId n = rounds.front().num_nodes();
  for (const graph::Graph& g : rounds) SDN_CHECK(g.num_nodes() == n);

  std::ofstream out(path);
  SDN_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "sdn-trace 1\n";
  out << "nodes " << n << " interval " << interval << " rounds "
      << rounds.size() << "\n";
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const auto edges = rounds[r].Edges();
    out << "round " << (r + 1) << " edges " << edges.size() << "\n";
    for (const graph::Edge& e : edges) {
      out << e.u << " " << e.v << "\n";
    }
  }
  SDN_CHECK_MSG(out.good(), "write failed for " << path);
}

namespace {

/// Next non-comment, non-blank line.
bool NextLine(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Trace LoadTrace(const std::string& path) {
  std::ifstream in(path);
  SDN_CHECK_MSG(in.good(), "cannot open " << path);

  std::string line;
  SDN_CHECK_MSG(NextLine(in, line), "empty trace " << path);
  {
    std::istringstream header(line);
    std::string magic;
    int version = 0;
    header >> magic >> version;
    SDN_CHECK_MSG(magic == "sdn-trace" && version == 1,
                  "bad trace header in " << path << ": " << line);
  }

  graph::NodeId n = 0;
  Trace trace;
  std::int64_t round_count = 0;
  {
    SDN_CHECK_MSG(NextLine(in, line), "missing trace size line");
    std::istringstream sizes(line);
    std::string nodes_kw;
    std::string interval_kw;
    std::string rounds_kw;
    sizes >> nodes_kw >> n >> interval_kw >> trace.interval >> rounds_kw >>
        round_count;
    SDN_CHECK_MSG(nodes_kw == "nodes" && interval_kw == "interval" &&
                      rounds_kw == "rounds" && !sizes.fail(),
                  "bad trace size line: " << line);
    SDN_CHECK(n >= 1 && trace.interval >= 1 && round_count >= 1);
  }

  for (std::int64_t r = 1; r <= round_count; ++r) {
    SDN_CHECK_MSG(NextLine(in, line), "trace truncated at round " << r);
    std::istringstream round_header(line);
    std::string round_kw;
    std::string edges_kw;
    std::int64_t round_id = 0;
    std::int64_t edge_count = 0;
    round_header >> round_kw >> round_id >> edges_kw >> edge_count;
    SDN_CHECK_MSG(round_kw == "round" && edges_kw == "edges" &&
                      !round_header.fail() && round_id == r && edge_count >= 0,
                  "bad round header: " << line);
    std::vector<graph::Edge> edges;
    edges.reserve(static_cast<std::size_t>(edge_count));
    for (std::int64_t e = 0; e < edge_count; ++e) {
      SDN_CHECK_MSG(NextLine(in, line), "trace truncated in round " << r);
      std::istringstream edge_line(line);
      graph::NodeId u = 0;
      graph::NodeId v = 0;
      edge_line >> u >> v;
      SDN_CHECK_MSG(!edge_line.fail(), "bad edge line: " << line);
      edges.emplace_back(u, v);
    }
    trace.rounds.emplace_back(n, edges);
  }
  return trace;
}

}  // namespace sdn::net
