#include "net/trace.hpp"

#include <sstream>

#include "util/check.hpp"

namespace sdn::net {

namespace {

void SaveTraceV1(std::ofstream& out, std::span<const graph::Graph> rounds,
                 graph::NodeId n, int interval) {
  out << "sdn-trace 1\n";
  out << "nodes " << n << " interval " << interval << " rounds "
      << rounds.size() << "\n";
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    const auto edges = rounds[r].Edges();
    out << "round " << (r + 1) << " edges " << edges.size() << "\n";
    for (const graph::Edge& e : edges) {
      out << e.u << " " << e.v << "\n";
    }
  }
}

}  // namespace

void SaveTrace(const std::string& path, std::span<const graph::Graph> rounds,
               int interval, TraceWriteOptions options) {
  SDN_CHECK(!rounds.empty());
  SDN_CHECK(interval >= 1);
  SDN_CHECK_MSG(options.version == 1 || options.version == 2,
                "unknown trace version " << options.version);
  const graph::NodeId n = rounds.front().num_nodes();
  for (const graph::Graph& g : rounds) SDN_CHECK(g.num_nodes() == n);

  if (options.version == 2) {
    TraceRecorder recorder(path, n, interval, options.keyframe_every);
    for (const graph::Graph& g : rounds) recorder.Push(g);
    recorder.Close();
    return;
  }
  std::ofstream out(path);
  SDN_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  SaveTraceV1(out, rounds, n, interval);
  SDN_CHECK_MSG(out.good(), "write failed for " << path);
}

namespace {

/// Next non-comment, non-blank line.
bool NextLine(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

std::vector<graph::Edge> ReadEdgeLines(std::istream& in, std::string& line,
                                       std::int64_t count, std::int64_t round) {
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(count));
  for (std::int64_t e = 0; e < count; ++e) {
    SDN_CHECK_MSG(NextLine(in, line), "trace truncated in round " << round);
    std::istringstream edge_line(line);
    graph::NodeId u = 0;
    graph::NodeId v = 0;
    edge_line >> u >> v;
    SDN_CHECK_MSG(!edge_line.fail(), "bad edge line: " << line);
    edges.emplace_back(u, v);
  }
  return edges;
}

Trace LoadTraceV1(std::istream& in, const std::string& path) {
  graph::NodeId n = 0;
  Trace trace;
  std::int64_t round_count = 0;
  std::string line;
  {
    SDN_CHECK_MSG(NextLine(in, line), "missing trace size line");
    std::istringstream sizes(line);
    std::string nodes_kw;
    std::string interval_kw;
    std::string rounds_kw;
    sizes >> nodes_kw >> n >> interval_kw >> trace.interval >> rounds_kw >>
        round_count;
    SDN_CHECK_MSG(nodes_kw == "nodes" && interval_kw == "interval" &&
                      rounds_kw == "rounds" && !sizes.fail(),
                  "bad trace size line: " << line);
    SDN_CHECK(n >= 1 && trace.interval >= 1 && round_count >= 1);
  }

  for (std::int64_t r = 1; r <= round_count; ++r) {
    SDN_CHECK_MSG(NextLine(in, line), "trace truncated at round " << r);
    std::istringstream round_header(line);
    std::string round_kw;
    std::string edges_kw;
    std::int64_t round_id = 0;
    std::int64_t edge_count = 0;
    round_header >> round_kw >> round_id >> edges_kw >> edge_count;
    SDN_CHECK_MSG(round_kw == "round" && edges_kw == "edges" &&
                      !round_header.fail() && round_id == r && edge_count >= 0,
                  "bad round header: " << line);
    trace.rounds.emplace_back(n, ReadEdgeLines(in, line, edge_count, r));
  }
  SDN_CHECK_MSG(!trace.rounds.empty(), "empty trace " << path);
  return trace;
}

Trace LoadTraceV2(std::istream& in, const std::string& path) {
  graph::NodeId n = 0;
  Trace trace;
  std::int64_t keyframe_every = 0;
  std::string line;
  {
    SDN_CHECK_MSG(NextLine(in, line), "missing trace size line");
    std::istringstream sizes(line);
    std::string nodes_kw;
    std::string interval_kw;
    std::string keyframe_kw;
    sizes >> nodes_kw >> n >> interval_kw >> trace.interval >> keyframe_kw >>
        keyframe_every;
    SDN_CHECK_MSG(nodes_kw == "nodes" && interval_kw == "interval" &&
                      keyframe_kw == "keyframe" && !sizes.fail(),
                  "bad trace size line: " << line);
    SDN_CHECK(n >= 1 && trace.interval >= 1 && keyframe_every >= 1);
  }

  // Rounds are reconstructed through the same incremental machinery the
  // engine runs on — DynGraph::Apply validates every delta against the
  // reconstructed state, so a corrupt delta line fails loudly instead of
  // silently desynchronizing the replay.
  graph::DynGraph dyn(n);
  graph::TopologyDelta delta;
  std::int64_t r = 0;
  while (NextLine(in, line)) {
    ++r;
    std::istringstream round_header(line);
    std::string round_kw;
    std::string kind_kw;
    std::int64_t round_id = 0;
    round_header >> round_kw >> round_id >> kind_kw;
    SDN_CHECK_MSG(round_kw == "round" && !round_header.fail() && round_id == r,
                  "bad round header: " << line);
    const bool keyframe_due = (r - 1) % keyframe_every == 0;
    if (kind_kw == "full") {
      SDN_CHECK_MSG(keyframe_due, "unexpected keyframe at round " << r);
      std::int64_t edge_count = 0;
      round_header >> edge_count;
      SDN_CHECK_MSG(!round_header.fail() && edge_count >= 0,
                    "bad round header: " << line);
      dyn.Reset(graph::Graph(n, ReadEdgeLines(in, line, edge_count, r)));
    } else if (kind_kw == "delta") {
      SDN_CHECK_MSG(!keyframe_due, "missing keyframe at round " << r);
      std::int64_t added = 0;
      std::int64_t removed = 0;
      round_header >> added >> removed;
      SDN_CHECK_MSG(!round_header.fail() && added >= 0 && removed >= 0,
                    "bad round header: " << line);
      delta.clear();
      for (std::int64_t e = 0; e < added + removed; ++e) {
        SDN_CHECK_MSG(NextLine(in, line), "trace truncated in round " << r);
        const std::size_t first = line.find_first_not_of(" \t\r");
        const char sign = line[first];
        SDN_CHECK_MSG(sign == '+' || sign == '-', "bad delta line: " << line);
        SDN_CHECK_MSG(e < added ? sign == '+' : sign == '-',
                      "delta lines out of order: " << line);
        std::istringstream edge_line(line.substr(first + 1));
        graph::NodeId u = 0;
        graph::NodeId v = 0;
        edge_line >> u >> v;
        SDN_CHECK_MSG(!edge_line.fail(), "bad delta line: " << line);
        (sign == '+' ? delta.added : delta.removed).emplace_back(u, v);
      }
      dyn.Apply(delta);
    } else {
      SDN_CHECK_MSG(false, "bad round header: " << line);
    }
    trace.rounds.push_back(dyn.View());
  }
  SDN_CHECK_MSG(!trace.rounds.empty(), "empty trace " << path);
  return trace;
}

}  // namespace

Trace LoadTrace(const std::string& path) {
  std::ifstream in(path);
  SDN_CHECK_MSG(in.good(), "cannot open " << path);

  std::string line;
  SDN_CHECK_MSG(NextLine(in, line), "empty trace " << path);
  int version = 0;
  {
    std::istringstream header(line);
    std::string magic;
    header >> magic >> version;
    SDN_CHECK_MSG(magic == "sdn-trace" && (version == 1 || version == 2),
                  "bad trace header in " << path << ": " << line);
  }
  return version == 1 ? LoadTraceV1(in, path) : LoadTraceV2(in, path);
}

TraceStreamReader::TraceStreamReader(const std::string& path)
    : in_(path), path_(path) {
  SDN_CHECK_MSG(in_.good(), "cannot open " << path);
  SDN_CHECK_MSG(NextLine(in_, line_), "empty trace " << path);
  int version = 0;
  {
    std::istringstream header(line_);
    std::string magic;
    header >> magic >> version;
    SDN_CHECK_MSG(magic == "sdn-trace" && (version == 1 || version == 2),
                  "bad trace header in " << path << ": " << line_);
    SDN_CHECK_MSG(version == 2,
                  "streaming reader requires a v2 (delta) trace: " << path);
  }
  SDN_CHECK_MSG(NextLine(in_, line_), "missing trace size line in " << path);
  std::istringstream sizes(line_);
  std::string nodes_kw;
  std::string interval_kw;
  std::string keyframe_kw;
  sizes >> nodes_kw >> n_ >> interval_kw >> interval_ >> keyframe_kw >>
      keyframe_every_;
  SDN_CHECK_MSG(nodes_kw == "nodes" && interval_kw == "interval" &&
                    keyframe_kw == "keyframe" && !sizes.fail(),
                "bad trace size line: " << line_);
  SDN_CHECK(n_ >= 1 && interval_ >= 1 && keyframe_every_ >= 1);
}

bool TraceStreamReader::Next(Round& out) {
  if (!NextLine(in_, line_)) return false;
  const std::int64_t r = ++rounds_;
  std::istringstream round_header(line_);
  std::string round_kw;
  std::string kind_kw;
  std::int64_t round_id = 0;
  round_header >> round_kw >> round_id >> kind_kw;
  SDN_CHECK_MSG(round_kw == "round" && !round_header.fail() && round_id == r,
                "bad round header: " << line_);
  const bool keyframe_due = (r - 1) % keyframe_every_ == 0;
  out.round = r;
  out.full.clear();
  out.delta.clear();
  if (kind_kw == "full") {
    SDN_CHECK_MSG(keyframe_due, "unexpected keyframe at round " << r);
    std::int64_t edge_count = 0;
    round_header >> edge_count;
    SDN_CHECK_MSG(!round_header.fail() && edge_count >= 0,
                  "bad round header: " << line_);
    out.keyframe = true;
    out.full.reserve(static_cast<std::size_t>(edge_count));
    for (std::int64_t e = 0; e < edge_count; ++e) {
      SDN_CHECK_MSG(NextLine(in_, line_), "trace truncated in round " << r);
      std::istringstream edge_line(line_);
      graph::NodeId u = 0;
      graph::NodeId v = 0;
      edge_line >> u >> v;
      SDN_CHECK_MSG(!edge_line.fail(), "bad edge line: " << line_);
      out.full.emplace_back(u, v);
    }
  } else if (kind_kw == "delta") {
    SDN_CHECK_MSG(!keyframe_due, "missing keyframe at round " << r);
    std::int64_t added = 0;
    std::int64_t removed = 0;
    round_header >> added >> removed;
    SDN_CHECK_MSG(!round_header.fail() && added >= 0 && removed >= 0,
                  "bad round header: " << line_);
    out.keyframe = false;
    for (std::int64_t e = 0; e < added + removed; ++e) {
      SDN_CHECK_MSG(NextLine(in_, line_), "trace truncated in round " << r);
      const std::size_t first = line_.find_first_not_of(" \t\r");
      const char sign = line_[first];
      SDN_CHECK_MSG(sign == '+' || sign == '-', "bad delta line: " << line_);
      SDN_CHECK_MSG(e < added ? sign == '+' : sign == '-',
                    "delta lines out of order: " << line_);
      std::istringstream edge_line(line_.substr(first + 1));
      graph::NodeId u = 0;
      graph::NodeId v = 0;
      edge_line >> u >> v;
      SDN_CHECK_MSG(!edge_line.fail(), "bad delta line: " << line_);
      (sign == '+' ? out.delta.added : out.delta.removed).emplace_back(u, v);
    }
  } else {
    SDN_CHECK_MSG(false, "bad round header: " << line_);
  }
  return true;
}

TraceRecorder::TraceRecorder(const std::string& path, graph::NodeId n,
                             int interval, std::int64_t keyframe_every)
    : out_(path), path_(path), n_(n), keyframe_every_(keyframe_every) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(interval >= 1);
  SDN_CHECK(keyframe_every >= 1);
  SDN_CHECK_MSG(out_.good(), "cannot open " << path << " for writing");
  out_ << "sdn-trace 2\n";
  out_ << "nodes " << n << " interval " << interval << " keyframe "
       << keyframe_every << "\n";
}

TraceRecorder::~TraceRecorder() {
  if (out_.is_open()) out_.close();
}

void TraceRecorder::Push(const graph::Graph& g) {
  graph::DiffSorted(prev_edges_, g.Edges(), scratch_);
  Push(g, scratch_);
}

void TraceRecorder::Push(const graph::Graph& g,
                         const graph::TopologyDelta& delta) {
  SDN_CHECK_MSG(out_.is_open(), "TraceRecorder already closed: " << path_);
  SDN_CHECK_MSG(g.num_nodes() == n_, "trace round has " << g.num_nodes()
                                                        << " nodes, expected "
                                                        << n_);
  const std::int64_t r = ++rounds_;
  if ((r - 1) % keyframe_every_ == 0) {
    const auto edges = g.Edges();
    out_ << "round " << r << " full " << edges.size() << "\n";
    for (const graph::Edge& e : edges) {
      out_ << e.u << " " << e.v << "\n";
    }
  } else {
    out_ << "round " << r << " delta " << delta.added.size() << " "
         << delta.removed.size() << "\n";
    for (const graph::Edge& e : delta.added) {
      out_ << "+" << e.u << " " << e.v << "\n";
    }
    for (const graph::Edge& e : delta.removed) {
      out_ << "-" << e.u << " " << e.v << "\n";
    }
  }
  prev_edges_.assign(g.Edges().begin(), g.Edges().end());
  SDN_CHECK_MSG(out_.good(), "write failed for " << path_);
}

void TraceRecorder::Close() {
  if (!out_.is_open()) return;
  out_.close();
  SDN_CHECK_MSG(!out_.fail(), "close failed for " << path_);
}

}  // namespace sdn::net
