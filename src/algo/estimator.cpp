#include "algo/estimator.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/check.hpp"

namespace sdn::algo {

namespace {

bool InitVerifyEstimatorChecks() {
  if (const char* env = std::getenv("SDN_VERIFY_ESTIMATOR")) {
    return env[0] != '0';
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

std::atomic<bool> g_verify_estimator{InitVerifyEstimatorChecks()};

}  // namespace

void SetVerifyEstimatorChecks(bool on) {
  g_verify_estimator.store(on, std::memory_order_relaxed);
}

bool VerifyEstimatorChecks() {
  return g_verify_estimator.load(std::memory_order_relaxed);
}

void CardinalityEstimator::SetCoord(std::size_t i, double v) {
  if (pool_ != nullptr) {
    pool_->Store(node_, Col(i), static_cast<float>(v));
  } else {
    mins_[i] = v;
  }
}

CardinalityEstimator::CardinalityEstimator(int L, util::Rng& rng,
                                           bool quantize_float32) {
  SDN_CHECK_MSG(L >= 3, "estimator needs L >= 3 (variance is undefined below)");
  len_ = L;
  mins_.resize(static_cast<std::size_t>(L));
  for (auto& m : mins_) {
    m = rng.Exponential(1.0);
    if (quantize_float32) m = static_cast<double>(static_cast<float>(m));
  }
  RecomputeFingerprint();
}

CardinalityEstimator::CardinalityEstimator(int L, util::Rng& rng,
                                           SketchPool* pool, std::size_t node,
                                           int col_base)
    : pool_(pool), node_(node), col_base_(col_base), len_(L) {
  SDN_CHECK_MSG(L >= 3, "estimator needs L >= 3 (variance is undefined below)");
  SDN_CHECK(pool != nullptr && node < pool->nodes());
  SDN_CHECK(col_base >= 0 && col_base + L <= pool->columns());
  // Same draw order as the owned constructor; float32 storage is the
  // quantization.
  for (int i = 0; i < L; ++i) {
    pool_->Store(node_, Col(static_cast<std::size_t>(i)),
                 static_cast<float>(rng.Exponential(1.0)));
  }
  RecomputeFingerprint();
}

CardinalityEstimator CardinalityEstimator::ForWeight(std::uint64_t weight,
                                                     int L, util::Rng& rng,
                                                     bool quantize_float32) {
  CardinalityEstimator sketch(L, rng, quantize_float32);
  if (weight == 0) {
    for (auto& m : sketch.mins_) m = std::numeric_limits<double>::infinity();
    sketch.RecomputeFingerprint();
    return sketch;
  }
  for (auto& m : sketch.mins_) {
    m = rng.Exponential(static_cast<double>(weight));
    if (quantize_float32) m = static_cast<double>(static_cast<float>(m));
  }
  sketch.RecomputeFingerprint();
  return sketch;
}

CardinalityEstimator CardinalityEstimator::ForWeight(std::uint64_t weight,
                                                     int L, util::Rng& rng,
                                                     SketchPool* pool,
                                                     std::size_t node,
                                                     int col_base) {
  CardinalityEstimator sketch(L, rng, pool, node, col_base);
  if (weight == 0) {
    for (int i = 0; i < L; ++i) {
      sketch.SetCoord(static_cast<std::size_t>(i),
                      std::numeric_limits<double>::infinity());
    }
    sketch.RecomputeFingerprint();
    return sketch;
  }
  for (int i = 0; i < L; ++i) {
    sketch.SetCoord(static_cast<std::size_t>(i),
                    rng.Exponential(static_cast<double>(weight)));
  }
  sketch.RecomputeFingerprint();
  return sketch;
}

double CardinalityEstimator::Estimate() const {
  double sum = 0.0;
  for (int i = 0; i < len_; ++i) sum += Coord(static_cast<std::size_t>(i));
  if (std::isinf(sum)) return 0.0;  // all-zero-weight network
  SDN_CHECK(sum > 0.0);
  return static_cast<double>(len_ - 1) / sum;
}

void CardinalityEstimator::RecomputeFingerprint() {
  std::uint64_t h = 0;
  for (int i = 0; i < len_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    h ^= CoordHash(idx, Coord(idx));
  }
  fingerprint_ = h;
}

double CardinalityEstimator::RelativeStddev(int L) {
  SDN_CHECK(L >= 3);
  // (L-1)/S with S ~ Gamma(L, 1/N): Var = N²·(L-1)²/((L-1)²(L-2)) - ... which
  // reduces to relative stddev sqrt((L-1)/(L-2)² · ...) ≈ 1/sqrt(L-2).
  return 1.0 / std::sqrt(static_cast<double>(L - 2));
}

int CardinalityEstimator::RepetitionsFor(double eps) {
  SDN_CHECK(eps > 0.0);
  const double l = 2.0 + 1.0 / (eps * eps);
  return std::max(3, static_cast<int>(std::ceil(l)));
}

}  // namespace sdn::algo
