// The classic Kuhn–Lynch–Oshman k-committee protocol (STOC 2010), faithful
// to the original structure (the census module is the pipelined
// re-engineering; this is the literature baseline as published).
//
// For guess k = 1, 2, 4, ...:
//   k cycles, each of 2k rounds:
//     polling (k rounds): uncommitted nodes inject their id; everyone relays
//       the smallest uncommitted id heard. Messages also carry the smallest
//       leader id seen (implicit leader election) plus the flooded
//       max/consensus aggregates.
//     invitation (k rounds): each self-believed leader invites the smallest
//       uncommitted id it heard; invitations (leader, invitee) flood; the
//       invitee joins the leader's committee.
//   After the cycles, still-uncommitted nodes form singleton committees.
//   Verification (2k+2 rounds): broadcast (committee, flag); different
//   committee or flag 0 flips the flag — a node that keeps flag 1 has a
//   causal past of min(N, 2k+3) nodes all in its committee, so either
//   committees are impossible (> k+1 members) or the committee spans all N.
//   Size dissemination (k rounds): the leader floods its distinct-invitee
//   count + 1; on flag 1 everyone decides it.
//
// Exact and deterministic; Θ(k²) per guess, O(N²) total; all-or-none
// decisions per guess by the same argument as the census module.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "algo/common.hpp"
#include "algo/idset.hpp"

namespace sdn::algo {

class KloCommitteeProgram {
 public:
  enum class Tag : std::uint8_t { kPoll, kInvite, kVerify, kSize };

  struct Message {
    Tag tag = Tag::kPoll;
    NodeId leader = 0;          // smallest leader id seen (all tags)
    Value leader_value = 0;     // its input (consensus piggyback)
    Value max_value = 0;        // max aggregate piggyback
    NodeId poll = -1;           // kPoll: smallest uncommitted id (-1 none)
    NodeId invitee = -1;        // kInvite: invited node (-1 none)
    NodeId committee = -1;      // kVerify: committee id
    bool flag = false;          // kVerify
    std::int64_t size = 0;      // kSize: committee size claim
  };

  struct Output {
    std::int64_t count = 0;
    Value max_value = 0;
    Value consensus_value = 0;
    std::int64_t accepted_guess = 0;
  };

  KloCommitteeProgram(NodeId id, Value input);

  std::optional<Message> OnSend(Round r);
  /// Direct-send path (net::DirectSendProgram): composes the round's
  /// message straight into `m`, overwriting every field. Its cycle-keyed
  /// state transitions (poll seed, invite issue, verify init) fire by
  /// schedule position, so a trailing speculative call advances only state
  /// the finished run never reads — the fused-send contract in
  /// net/program.hpp.
  bool OnSendInto(Round r, Message& m);
  void OnReceive(Round r, Inbox<Message> inbox);
  [[nodiscard]] bool HasDecided() const { return decided_.has_value(); }
  [[nodiscard]] std::optional<Output> output() const { return decided_; }
  [[nodiscard]] double PublicState() const {
    return static_cast<double>(committee_.value_or(-1));
  }
  static std::size_t MessageBits(const Message& m);

  static AlgoInfo Info() {
    return {"klo-committee", /*randomized=*/false, /*needs_n=*/false,
            /*unbounded_msgs=*/false};
  }

  /// Schedule position (exposed for tests).
  struct Position {
    std::int64_t guess_k = 1;
    enum class Phase { kPoll, kInvite, kVerify, kSize } phase = Phase::kPoll;
    std::int64_t cycle = 0;        // 0-based, for poll/invite
    std::int64_t round_in_phase = 0;
    bool first_round_of_guess = false;
    bool last_round_of_guess = false;
  };
  [[nodiscard]] static Position Locate(Round r);

  /// Cursor-accelerated Locate: same result for every r (tests pin the
  /// equivalence), O(1) amortized when rounds are queried in order.
  /// OnSend/OnReceive go through this.
  [[nodiscard]] Position LocateFast(Round r) const;

  /// Flight-recorder phase sample (net::ObservableProgram): label is the
  /// guess segment ("poll"/"invite"/"verify"/"size"/"decided"), index the
  /// guess k, work the cumulative committee joins observed by this node.
  [[nodiscard]] net::ProgramPhase ObsPhase() const { return obs_phase_; }

 private:
  void ResetForGuess(std::int64_t k);

  NodeId id_;
  Value input_;

  // Aggregates (survive across guesses; min-leader + max flood).
  NodeId leader_;
  Value leader_value_;
  Value max_value_;

  // Per-guess state.
  std::int64_t guess_ = 0;  // 0 = not initialized yet
  std::optional<NodeId> committee_;
  IdSet invited_;                // leader only: distinct invitees
  NodeId poll_best_ = -1;        // smallest uncommitted id this polling phase
  std::int64_t poll_cycle_ = -1;
  NodeId invite_leader_ = -1;    // invitation being relayed this cycle
  NodeId invite_target_ = -1;
  std::int64_t invite_cycle_ = -1;
  bool flag_ = false;
  bool verify_initialized_ = false;
  std::int64_t size_claim_ = 0;

  /// Schedule cursor for LocateFast (mutable: advancing it is invisible —
  /// every Position it produces equals Locate(r)).
  mutable PhaseCursor cursor_;

  /// Updated in OnReceive; read by the engine only while a recorder is
  /// attached.
  net::ProgramPhase obs_phase_{.label = "poll", .index = 1};

  std::optional<Output> decided_;
};

}  // namespace sdn::algo
