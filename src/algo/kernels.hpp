// Runtime-dispatched SIMD kernels for the deliver-phase hot loops.
//
// Two primitives back the whole message path (docs/PERF.md "Hot-path
// reclaim"):
//
//   * MinU32 — columnwise unsigned min of one u32 block into an accumulator.
//     Every hjswy wire coordinate is a nonnegative float32 bit pattern (Exp
//     draws quantized to float; +inf for weight 0), and for nonnegative IEEE
//     floats value order coincides with unsigned order of the bit patterns —
//     so the per-message inbox reduction is a pure integer min (PR 4 proved
//     the trick scalar; this widens it to explicit SIMD).
//   * LtMaskF64 — per-lane strict-less mask of a candidate block against the
//     current sketch minima, with NO store. CardinalityEstimator::MergeBlock
//     needs the old value of every decreased coordinate to maintain its
//     incremental fingerprint, so the kernel only answers "which lanes
//     decreased"; the caller rewrites exactly those lanes (O(#changed),
//     usually zero once a phase has converged — the common suffix-round call
//     is one vector compare that returns 0).
//
// Dispatch policy: one probe at startup picks the widest tier the CPU
// supports (AVX2 > SSE2 > scalar); the SDN_SIMD environment variable
// ("scalar" / "sse2" / "avx2", read once) caps or forces the tier, and
// SetIsa() lets tests flip tiers at runtime. Every tier computes
// bit-identical results on the kernels' declared domains (NaN-free,
// nonnegative) — the property suites pin scalar == SSE2 == AVX2, and the
// engine pins RunStats equality across tiers. Non-x86 builds compile the
// scalar tier only.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sdn::algo::kernels {

/// Dispatch tiers, widest last. kSse2 and kAvx2 exist only on x86-64; on
/// other architectures kScalar is the sole supported tier.
enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

[[nodiscard]] const char* ToString(Isa isa);

/// Widest tier this CPU supports (ignores SDN_SIMD).
[[nodiscard]] Isa BestSupportedIsa();

/// The tier the kernels currently dispatch to.
[[nodiscard]] Isa ActiveIsa();

/// Forces the dispatch tier (tests; the SDN_SIMD env var goes through the
/// same switch at startup). CheckError if this CPU lacks the tier.
void SetIsa(Isa isa);

/// acc[i] = min(acc[i], vals[i]) in the unsigned 32-bit domain for
/// i < len. `acc` and `vals` must not overlap. Any len (vector body plus
/// scalar tail); the float32-bit-domain contract is the caller's concern —
/// the kernel is a plain unsigned min.
void MinU32(std::uint32_t* acc, const std::uint32_t* vals, std::size_t len);

/// Bitmask (bit i set iff vals[i] < mins[i], IEEE double compare) over a
/// block of len <= 64 lanes. Pure read — no lane is modified. Inputs must
/// be NaN-free; +/-inf are fine. Bit-identical semantics across tiers.
[[nodiscard]] std::uint64_t LtMaskF64(const double* vals, const double* mins,
                                      std::size_t len);

/// Raw kernel pointer for per-message hot loops: resolving the dispatch
/// once per OnReceive (one relaxed atomic load) and calling the returned
/// pointer per message keeps the indirect call perfectly predicted instead
/// of paying the atomic load inside the loop. The pointer stays valid
/// forever; it just stops being the active tier after a SetIsa.
using MinU32Fn = void (*)(std::uint32_t*, const std::uint32_t*, std::size_t);
[[nodiscard]] MinU32Fn MinU32Kernel();

}  // namespace sdn::algo::kernels
