#include "algo/common.hpp"

namespace sdn::algo {

std::size_t IdBits(NodeId id) {
  return util::VarintBits(static_cast<std::uint64_t>(id < 0 ? 0 : id));
}

std::size_t ValueBits(Value v) {
  const auto u = static_cast<std::uint64_t>(v);
  const auto zigzag = (u << 1) ^ static_cast<std::uint64_t>(v >> 63);
  return util::VarintBits(zigzag);
}

}  // namespace sdn::algo
