#include "algo/census.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace sdn::algo {

namespace {

constexpr std::uint64_t kHashMask = (1ULL << 48) - 1;

}  // namespace

CensusProgram::CensusProgram(NodeId id, Value input, CensusOptions options)
    : options_(options),
      id_(id),
      agg_min_id_(id),
      agg_min_value_(input),
      agg_max_value_(input) {
  SDN_CHECK(id >= 0);
  SDN_CHECK(options_.pipeline_T >= 1);
  SDN_CHECK(options_.slack > 0.0);
  census_.Insert(id);
}

std::int64_t CensusProgram::band_size() const {
  return std::max<std::int64_t>(1, (options_.pipeline_T + 1) / 2);
}

std::int64_t CensusProgram::StageLength(std::int64_t k) const {
  const auto T = static_cast<std::int64_t>(options_.pipeline_T);
  const auto raw = static_cast<std::int64_t>(
      options_.slack * static_cast<double>(2 * k + 4 * T) + 0.999999);
  // Round up to a multiple of T so windows never straddle stage boundaries.
  return ((raw + T - 1) / T) * T;
}

CensusProgram::Position CensusProgram::Locate(Round r) const {
  SDN_CHECK(r >= 1);
  std::int64_t offset = r - 1;
  std::int64_t k = 1;
  while (true) {
    const std::int64_t B = band_size();
    const std::int64_t stages = (k + B - 1) / B;
    const std::int64_t stage_len = StageLength(k);
    const std::int64_t dissemination = stages * stage_len;
    const std::int64_t verification = 2 * k + 2;
    const std::int64_t total = dissemination + verification;
    if (offset < total) {
      Position pos;
      pos.guess_k = k;
      if (offset < dissemination) {
        pos.stage = offset / stage_len;
        pos.window = offset / options_.pipeline_T;
      } else {
        pos.verifying = true;
        pos.verify_round = offset - dissemination;
        pos.last_round_of_guess = (offset == total - 1);
      }
      return pos;
    }
    offset -= total;
    SDN_CHECK_MSG(k < (std::int64_t{1} << 40), "census guess overflow");
    k *= 2;
  }
}

CensusProgram::Position CensusProgram::LocateFast(Round r) const {
  SDN_CHECK(r >= 1);
  const std::int64_t offset = r - 1;
  const std::int64_t B = band_size();
  const auto length_of = [this, B](std::int64_t k, std::int64_t& stage_len) {
    stage_len = StageLength(k);
    const std::int64_t stages = (k + B - 1) / B;
    return stages * stage_len + 2 * k + 2;
  };
  std::int64_t stage_len = cursor_.aux;
  if (cursor_.length == 0 || offset < cursor_.start) {
    // Uninitialized, or a backward query (tests): restart from guess 1.
    cursor_ = PhaseCursor{};
    cursor_.param = 1;
    cursor_.length = length_of(cursor_.param, stage_len);
    cursor_.aux = stage_len;
  }
  while (offset >= cursor_.start + cursor_.length) {
    cursor_.start += cursor_.length;
    ++cursor_.phase;
    SDN_CHECK_MSG(cursor_.param < (std::int64_t{1} << 40),
                  "census guess overflow");
    cursor_.param *= 2;
    cursor_.length = length_of(cursor_.param, stage_len);
    cursor_.aux = stage_len;
  }
  const std::int64_t k = cursor_.param;
  stage_len = cursor_.aux;
  const std::int64_t in_phase = offset - cursor_.start;
  const std::int64_t dissemination = ((k + B - 1) / B) * stage_len;
  Position pos;
  pos.guess_k = k;
  if (in_phase < dissemination) {
    pos.stage = in_phase / stage_len;
    pos.window = in_phase / options_.pipeline_T;
  } else {
    pos.verifying = true;
    pos.verify_round = in_phase - dissemination;
    pos.last_round_of_guess = (in_phase == cursor_.length - 1);
  }
  return pos;
}

std::optional<CensusProgram::Message> CensusProgram::OnSend(Round r) {
  std::optional<Message> m(std::in_place);
  if (!OnSendInto(r, *m)) return std::nullopt;
  return m;
}

bool CensusProgram::OnSendInto(Round r, Message& m) {
  if (decided_.has_value()) return false;
  const Position pos = LocateFast(r);
  m = Message{};  // full overwrite: the outbox slot is reused across rounds

  if (pos.verifying) {
    if (verify_key_ != pos.guess_k) {
      verify_key_ = pos.guess_k;
      frozen_hash_ = census_.Hash() & kHashMask;
      flag_ = census_.size() <= pos.guess_k;
    }
    m.tag = Tag::kVerify;
    m.hash = frozen_hash_;
    m.flag = flag_;
    return true;
  }

  // Dissemination round: the per-window sent-set resets whenever the
  // (guess, window) pair advances.
  const std::pair<std::int64_t, std::int64_t> key{pos.guess_k, pos.window};
  if (key != window_key_) {
    window_key_ = key;
    sent_this_window_.clear();
  }

  m.tag = Tag::kToken;
  m.min_id = agg_min_id_;
  m.min_id_value = agg_min_value_;
  m.max_value = agg_max_value_;
  m.token = -1;

  const std::int64_t band_rank = pos.stage * band_size();
  if (band_rank < census_.size()) {
    NodeId candidate = census_.SelectKth(band_rank);
    while (candidate >= 0) {
      const bool sent = std::find(sent_this_window_.begin(),
                                  sent_this_window_.end(),
                                  candidate) != sent_this_window_.end();
      if (!sent) break;
      candidate = census_.NextAtLeast(candidate + 1);
    }
    if (candidate >= 0) {
      m.token = candidate;
      sent_this_window_.push_back(candidate);
    }
  }
  return true;
}

void CensusProgram::OnReceive(Round r, Inbox<Message> inbox) {
  if (decided_.has_value()) return;
  const Position pos = LocateFast(r);
  obs_phase_.label = pos.verifying ? "verify" : "disseminate";
  obs_phase_.index = pos.guess_k;

  if (pos.verifying) {
    SDN_CHECK_MSG(verify_key_ == pos.guess_k,
                  "verification state not initialized (engine must call "
                  "OnSend before OnReceive)");
    for (const Message& m : inbox) {
      if (m.tag != Tag::kVerify) continue;
      if (m.hash != frozen_hash_ || !m.flag) flag_ = false;
    }
    if (pos.last_round_of_guess && flag_) {
      CensusOutput out;
      out.count = census_.size();
      out.max_value = agg_max_value_;
      out.consensus_value = agg_min_value_;
      out.accepted_guess = pos.guess_k;
      decided_ = out;
      obs_phase_.label = "decided";
    }
    return;
  }

  for (const Message& m : inbox) {
    if (m.tag != Tag::kToken) continue;
    if (m.token >= 0 && !census_.Contains(m.token)) {
      census_.Insert(m.token);
      ++obs_phase_.work;
    }
    if (m.min_id < agg_min_id_) {
      agg_min_id_ = m.min_id;
      agg_min_value_ = m.min_id_value;
    }
    agg_max_value_ = std::max(agg_max_value_, m.max_value);
  }
}

std::size_t CensusProgram::MessageBits(const Message& m) {
  if (m.tag == Tag::kVerify) {
    return 2 + 48 + 1;
  }
  std::size_t bits = 2 + 1;  // tag + has-token flag
  if (m.token >= 0) bits += IdBits(m.token);
  bits += IdBits(m.min_id) + ValueBits(m.min_id_value) +
          ValueBits(m.max_value);
  return bits;
}

AlgoInfo CensusProgram::InfoFor(int pipeline_T) {
  std::ostringstream os;
  os << "klo-census(T=" << pipeline_T << ")";
  return {os.str(), /*randomized=*/false, /*needs_n=*/false,
          /*unbounded_msgs=*/false};
}

}  // namespace sdn::algo
