#include "algo/flood_max.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdn::algo {

FloodMaxKnownN::FloodMaxKnownN(NodeId id, NodeId n, Value input)
    : n_(n), best_(input) {
  SDN_CHECK(id >= 0 && id < n);
  if (n_ <= 1) decided_ = best_;
}

std::optional<FloodMaxKnownN::Message> FloodMaxKnownN::OnSend(Round r) {
  std::optional<Message> m(std::in_place);
  if (!OnSendInto(r, *m)) return std::nullopt;
  return m;
}

bool FloodMaxKnownN::OnSendInto(Round, Message& m) {
  if (decided_.has_value()) return false;
  m = Message{best_};
  return true;
}

void FloodMaxKnownN::OnReceive(Round r, Inbox<Message> inbox) {
  if (decided_.has_value()) return;
  // Inbox may be dense-backed (direct outbox indexing) or a pointer gather;
  // iteration reads each neighbor's message in place either way.
  for (const Message& m : inbox) {
    if (m.value > best_) {
      best_ = m.value;
      ++obs_work_;
    }
  }
  // After round N-1, the running max has traversed any 1-interval-connected
  // sequence: the informed set grows by >= 1 node per round until it spans.
  if (r >= n_ - 1) decided_ = best_;
}

ConsensusFloodKnownN::ConsensusFloodKnownN(NodeId id, NodeId n, Value input)
    : n_(n), leader_(id), leader_value_(input) {
  SDN_CHECK(id >= 0 && id < n);
  if (n_ <= 1) decided_ = leader_value_;
}

std::optional<ConsensusFloodKnownN::Message> ConsensusFloodKnownN::OnSend(
    Round r) {
  std::optional<Message> m(std::in_place);
  if (!OnSendInto(r, *m)) return std::nullopt;
  return m;
}

bool ConsensusFloodKnownN::OnSendInto(Round, Message& m) {
  if (decided_.has_value()) return false;
  m = Message{leader_, leader_value_};
  return true;
}

void ConsensusFloodKnownN::OnReceive(Round r, Inbox<Message> inbox) {
  if (decided_.has_value()) return;
  for (const Message& m : inbox) {
    if (m.leader < leader_) {
      leader_ = m.leader;
      leader_value_ = m.value;
      ++obs_work_;
    }
  }
  if (r >= n_ - 1) decided_ = leader_value_;
}

}  // namespace sdn::algo
