// KLO-style census counting with guess-doubling and sound verification.
//
// The deterministic exact baseline (Kuhn–Lynch–Oshman lineage). Structure:
//
//   guess k = 1, 2, 4, ... ; for each guess:
//     dissemination: ⌈k/B⌉ stages of Θ(k + T) rounds. Nodes forward id
//       tokens by global priority: stage s only forwards ids of census rank
//       >= s·B (everything below rank s·B is already everywhere by
//       induction), and each T-round window re-sends its B smallest pending
//       tokens (re-sending per window is what survives re-wiring; B = ⌈T/2⌉
//       tokens pipeline through the window's stable spanning subgraph).
//     verification: 2k+2 rounds. Each node freezes its census, sets
//       flag := (|census| <= k), broadcasts (census hash, flag); a neighbor
//       with a different hash or flag 0 flips the flag to 0.
//
//   Soundness (unconditional): if a node finishes verification with flag 1,
//   its causal past over those 2k+2 rounds spans min(N, 2k+3) nodes, all of
//   whose censuses matched its own — so either the census contains > k ids
//   (flag was 0) or it contains every node. Hence a decision is always the
//   exact count, decisions are all-or-none per guess, and termination follows
//   once k is large enough for dissemination to complete.
//
// Round complexity: O(N²) at pipeline_T = 1 (the classic always-connected
// baseline) and O(N + N²/T)-shaped with pipeline_T = T — both contain the
// Ω(N) term the paper's algorithms remove.
//
// The same run answers Count (|census|), Max (flooded max aggregate) and
// Consensus (value of the min id) — aggregates ride along on every token.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "algo/common.hpp"
#include "algo/idset.hpp"

namespace sdn::algo {

struct CensusOptions {
  /// Window length used for pipelined forwarding; use 1 for the classic
  /// always-connected baseline, or the adversary's T to exploit stability.
  int pipeline_T = 1;
  /// Multiplier on dissemination stage length (ablation knob).
  double slack = 1.0;
};

/// Everything a census run decides, in one shot.
struct CensusOutput {
  std::int64_t count = 0;
  Value max_value = 0;
  Value consensus_value = 0;
  /// The guess k that succeeded (for reports).
  std::int64_t accepted_guess = 0;
};

class CensusProgram {
 public:
  enum class Tag : std::uint8_t { kToken, kVerify };

  struct Message {
    Tag tag = Tag::kToken;
    // kToken fields:
    NodeId token = -1;  // -1 = no token to forward this round
    // Flooded aggregates (ride on every token message):
    NodeId min_id = 0;
    Value min_id_value = 0;
    Value max_value = 0;
    // kVerify fields:
    std::uint64_t hash = 0;  // 48-bit census hash
    bool flag = false;
  };
  using Output = CensusOutput;

  CensusProgram(NodeId id, Value input, CensusOptions options);

  std::optional<Message> OnSend(Round r);
  /// Direct-send path (net::DirectSendProgram): composes the round's
  /// message straight into `m`, overwriting every field (the slot is
  /// reused across rounds). The window caches it refreshes (verify hash
  /// freeze, per-window sent set) are keyed by the round's schedule
  /// position, so a trailing speculative call mutates only state the
  /// finished run never reads — the fused-send contract in net/program.hpp.
  bool OnSendInto(Round r, Message& m);
  void OnReceive(Round r, Inbox<Message> inbox);
  [[nodiscard]] bool HasDecided() const { return decided_.has_value(); }
  [[nodiscard]] std::optional<Output> output() const { return decided_; }
  [[nodiscard]] double PublicState() const {
    return static_cast<double>(census_.size());
  }
  static std::size_t MessageBits(const Message& m);

  static AlgoInfo InfoFor(int pipeline_T);

  /// Schedule position of absolute round r (exposed for tests).
  struct Position {
    std::int64_t guess_k = 1;
    bool verifying = false;
    std::int64_t stage = 0;         // dissemination only
    std::int64_t window = 0;        // window index within the guess
    std::int64_t verify_round = 0;  // 0-based within verification
    bool last_round_of_guess = false;
  };
  [[nodiscard]] Position Locate(Round r) const;

  /// Cursor-accelerated Locate: same result for every r (tests pin the
  /// equivalence), O(1) amortized when rounds are queried in order.
  /// OnSend/OnReceive go through this.
  [[nodiscard]] Position LocateFast(Round r) const;

  /// Flight-recorder phase sample (net::ObservableProgram): label is the
  /// guess segment ("disseminate"/"verify"/"decided"), index the guess k,
  /// work the cumulative census insertions.
  [[nodiscard]] net::ProgramPhase ObsPhase() const { return obs_phase_; }

  /// Tokens re-sent per window: B = ⌈pipeline_T / 2⌉.
  [[nodiscard]] std::int64_t band_size() const;
  /// Stage length in rounds for guess k (multiple of pipeline_T).
  [[nodiscard]] std::int64_t StageLength(std::int64_t k) const;

 private:
  void Decide();

  CensusOptions options_;
  NodeId id_;

  IdSet census_;
  NodeId agg_min_id_;
  Value agg_min_value_;
  Value agg_max_value_;

  // Dissemination bookkeeping: the (guess, window) the sent-set belongs to.
  std::pair<std::int64_t, std::int64_t> window_key_{-1, -1};
  std::vector<NodeId> sent_this_window_;

  // Verification bookkeeping.
  std::int64_t verify_key_ = -1;  // guess whose verification is frozen
  std::uint64_t frozen_hash_ = 0;
  bool flag_ = false;

  /// Schedule cursor for LocateFast (mutable: advancing it is invisible —
  /// every Position it produces equals Locate(r)).
  mutable PhaseCursor cursor_;

  /// Updated in OnReceive; read by the engine only while a recorder is
  /// attached.
  net::ProgramPhase obs_phase_{.label = "disseminate", .index = 1};

  std::optional<CensusOutput> decided_;
};

}  // namespace sdn::algo
