// Growable bitset of node ids.
//
// Census-style algorithms union id sets along every edge every round; a
// word-parallel bitset makes that O(n/64) per merge instead of O(n log n),
// which is what keeps unbounded-census simulations at N=4096 tractable.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace sdn::algo {

class IdSet {
 public:
  IdSet() = default;

  void Insert(graph::NodeId id);
  [[nodiscard]] bool Contains(graph::NodeId id) const;

  /// Set union; returns true if this set gained any element.
  bool UnionWith(const IdSet& other);

  /// Set union; returns the smallest element newly gained, or -1 if none.
  graph::NodeId UnionWithMinNew(const IdSet& other);

  /// Id of the k-th smallest element (0-based); -1 if k >= size().
  [[nodiscard]] graph::NodeId SelectKth(std::int64_t k) const;

  /// Smallest element >= from; -1 if none.
  [[nodiscard]] graph::NodeId NextAtLeast(graph::NodeId from) const;

  [[nodiscard]] std::int64_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Largest id ever inserted; -1 when empty.
  [[nodiscard]] graph::NodeId max_id() const { return max_id_; }

  /// Order-insensitive content hash (equal sets -> equal hash).
  [[nodiscard]] std::uint64_t Hash() const;

  /// Elements in increasing order.
  [[nodiscard]] std::vector<graph::NodeId> ToVector() const;

  /// Smallest element; -1 when empty.
  [[nodiscard]] graph::NodeId Min() const;

  /// Wire size of the canonical encoding (varint count + 6-bit id width +
  /// count fixed-width ids) — the honest charge for shipping this set in
  /// the unbounded regime. algo/codecs.cpp implements exactly this layout
  /// and tests pin the two to each other.
  [[nodiscard]] std::size_t EncodedBits() const;

  friend bool operator==(const IdSet& a, const IdSet& b);

 private:
  std::vector<std::uint64_t> words_;
  std::int64_t count_ = 0;
  graph::NodeId max_id_ = -1;
};

}  // namespace sdn::algo
