// The hjswy suite: the paper's headline claim, reconstructed.
//
// RECONSTRUCTION NOTE (DESIGN.md §0/§4.2/§6): the full text of Hou, Jahja,
// Sun, Wu & Yu (SPAA'22) was not available — only the abstract. This module
// rebuilds the *claim* ("Count/Consensus/Max with no Ω(N) term in the round
// complexity under constant T") from the standard toolbox of that research
// line:
//
//   * Doubling phases. Phase p guesses a horizon D_p = D_0·2^p and runs a
//     fixed global schedule of R(D_p) rounds: a dissemination segment
//     followed by a quiet-verification suffix.
//   * Probabilistic aggregation. Each node draws L Exp(1) variates; the
//     coordinate-wise minima flood through the network like a max-aggregate
//     (O(1) coordinates per O(log N)-bit message, rotating). When the phase
//     horizon covers the true dynamic flooding time d, the minima converge
//     and (L-1)/Σmin estimates N within (1±ε), ε ≈ 1/sqrt(L-2). Max and the
//     min-id's input value (consensus) ride along as plain aggregates.
//   * Alarm verification. In the suffix, any node that observes new
//     information — its merged state changed, a neighbor's state fingerprint
//     differs, or a neighbor raised an alarm — raises an alarm, which itself
//     floods. A node accepts the phase only if its suffix stayed quiet.
//     T-interval connectivity guarantees divergent state is adjacent across
//     every window, so alarms are generated as long as information is still
//     missing somewhere nearby.
//
// A node accepts at the first phase with D_p ≳ d, so the decision round is
// O(Σ_{D_p ≤ O(d)} R(D_p)) = Õ(T·d·polylog N): **no Ω(N) term** — the
// claim under reproduction. The worst case (spooling/path adversaries) has
// d = Θ(N) and the complexity honestly degrades to Θ̃(N), as it must.
//
// Correctness envelope: Max/Consensus outputs are exact whp; Count is exact
// whp in `exact_census` mode (unbounded messages carry the id set) and
// (1±ε)-approximate in the bounded O(log N)-bit regime. The real paper's
// verification machinery is proven against worst-case adversaries; this
// reconstruction quantifies its failure rate empirically (bench F7/A8)
// and offers `strict` mode (accept only once D_p >= strict_mult·N̂), which
// restores a known-safe envelope at the cost of re-introducing a linear
// term — exactly the trade-off prior work was stuck with.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "algo/common.hpp"
#include "algo/estimator.hpp"
#include "algo/idset.hpp"
#include "util/rng.hpp"

namespace sdn::algo {

struct HjswyOptions {
  /// The adversary's promised interval (window length for the suffix math).
  int T = 2;
  /// Sketch coordinates L; relative count error ≈ 1/sqrt(L-2).
  int sketch_len = 64;
  /// Sketch coordinates carried per message in the bounded regime.
  int coords_per_msg = 4;
  /// Dissemination segment length multiplier (gamma).
  double gamma = 1.5;
  /// Quiet-suffix length multiplier (beta).
  double beta = 3.0;
  /// First phase horizon D_0.
  std::int64_t initial_horizon = 4;
  /// Unbounded-regime exact Count: messages carry the known-id set.
  bool exact_census = false;
  /// Extension (DESIGN.md §4.2): also estimate Σ max(0, input) with a
  /// weighted sketch riding on the same rotation — Sum/Average answers for
  /// the cost of a second coordinate block per message.
  bool track_sum = false;
  /// Accept a phase only once D_p >= strict_mult·N̂ (safe/linear fallback).
  bool strict = false;
  double strict_mult = 2.0;
};

/// Everything one hjswy run decides.
struct HjswyOutput {
  /// Exact count (exact_census) or rounded estimate (bounded regime).
  std::int64_t count = 0;
  /// Raw estimate, for error reporting.
  double count_estimate = 0.0;
  /// Σ max(0, input) estimate; 0 unless options.track_sum.
  double sum_estimate = 0.0;
  Value max_value = 0;
  Value consensus_value = 0;
  std::int64_t accepted_phase = 0;
  std::int64_t accepted_horizon = 0;
};

class HjswyProgram {
 public:
  /// Upper bound on coords_per_msg (keeps Message trivially copyable and
  /// allocation-free on the engine's hot path).
  static constexpr int kMaxCoordsPerMsg = 16;

  struct alignas(64) Message {
    /// Layout is deliberate (this is the engine's per-delivery read set):
    /// the scalar header, flooded aggregates, fingerprint and the first few
    /// sketch coordinates — everything the default bounded regime touches —
    /// occupy the first 64 bytes, which the alignas pins to one cache line
    /// in the engine's outbox. The exact_census pointer and the
    /// track_sum-only coordinate block follow, so the common delivery never
    /// pulls them in.
    /// Rotating sketch window: float32 bit patterns of coords
    /// [coord_base, coord_base + num_coords).
    std::int32_t coord_base = 0;
    std::int32_t num_coords = 0;
    NodeId min_id = 0;
    bool has_sum = false;
    bool alarm = false;
    Value min_id_value = 0;
    Value max_value = 0;
    std::uint64_t fingerprint = 0;  // 48-bit state fingerprint
    std::array<std::uint32_t, kMaxCoordsPerMsg> coords{};
    /// exact_census only: snapshot of the sender's known-id set.
    std::shared_ptr<const IdSet> census;
    /// track_sum only: the weighted sketch's coordinates for the same
    /// [coord_base, coord_base + num_coords) window; unused otherwise.
    std::array<std::uint32_t, kMaxCoordsPerMsg> sum_coords{};
  };
  using Output = HjswyOutput;

  /// `rng` seeds this node's private sketch draws (fork it per node).
  ///
  /// With `pool` non-null the sketches live in the shared SoA pool at row
  /// `id` (the count sketch in columns [0, L), the track_sum sketch in
  /// [L, 2L)): the pool must be sized for every node id in the run and for
  /// track_sum if enabled (see RequiredPoolColumns), and must outlive the
  /// program. Null keeps the per-node owned layout; both layouts are pinned
  /// bit-identical (test_sketch_pool).
  HjswyProgram(NodeId id, Value input, HjswyOptions options, util::Rng rng,
               SketchPool* pool = nullptr);

  /// Pool columns one node needs under `options` (L, or 2L with track_sum).
  static int RequiredPoolColumns(const HjswyOptions& options) {
    return options.track_sum ? 2 * options.sketch_len : options.sketch_len;
  }

  std::optional<Message> OnSend(Round r);
  /// Zero-copy send (net::DirectSendProgram): writes the round-r message
  /// straight into `m` — typically the engine's outbox slot — and returns
  /// whether a message was produced (hjswy always sends; see OnSend).
  /// Overwrites every field a reader may touch (including clearing `census`
  /// when exact_census is off), so a reused slot never leaks a stale field;
  /// only coords/sum_coords lanes at index >= num_coords keep old bytes,
  /// which the Message contract declares meaningless.
  bool OnSendInto(Round r, Message& m);
  void OnReceive(Round r, Inbox<Message> inbox);
  [[nodiscard]] bool HasDecided() const { return decided_.has_value(); }
  [[nodiscard]] std::optional<Output> output() const { return decided_; }
  [[nodiscard]] double PublicState() const;
  static std::size_t MessageBits(const Message& m);

  static AlgoInfo InfoFor(const HjswyOptions& options);

  /// Schedule position of absolute round r (exposed for tests).
  struct Position {
    std::int64_t phase = 0;
    std::int64_t horizon = 0;       // D_p
    std::int64_t round_in_phase = 0;  // 0-based
    bool in_suffix = false;
    bool last_round_of_phase = false;
  };
  [[nodiscard]] Position Locate(Round r) const;

  /// Cursor-accelerated Locate: same result for every r (tests pin the
  /// equivalence), O(1) amortized when rounds are queried in order — the
  /// schedule math (ceil/log2 per candidate phase) runs only on a phase
  /// advance instead of on every call. OnSend/OnReceive go through this.
  [[nodiscard]] Position LocateFast(Round r) const;

  [[nodiscard]] std::int64_t DisseminationLength(std::int64_t horizon) const;
  [[nodiscard]] std::int64_t SuffixLength(std::int64_t horizon) const;

  /// Whether this node has raised an alarm in the current phase (tests).
  [[nodiscard]] bool alarm_raised() const { return alarm_; }

  /// Flight-recorder phase sample (net::ObservableProgram): label is the
  /// schedule segment ("disseminate"/"suffix"/"decided"), index the doubling
  /// phase, work the cumulative count of successful sketch merges.
  [[nodiscard]] net::ProgramPhase ObsPhase() const { return obs_phase_; }

 private:
  [[nodiscard]] std::uint64_t StateFingerprint() const;
  [[nodiscard]] double CachedEstimate() const;
  void RefreshCensusSnapshot();

  HjswyOptions options_;
  NodeId id_;

  CardinalityEstimator sketch_;
  std::optional<CardinalityEstimator> sum_sketch_;  // track_sum only
  NodeId agg_min_id_;
  Value agg_min_value_;
  Value agg_max_value_;
  IdSet census_;  // exact_census only
  std::shared_ptr<const IdSet> census_snapshot_;

  bool alarm_ = false;
  std::int64_t alarm_phase_ = -1;  // phase the alarm flag belongs to

  /// Cached StateFingerprint(); invalidated whenever local state merges.
  mutable std::optional<std::uint64_t> fingerprint_cache_;
  /// Cached sketch_.Estimate() (O(L) to recompute); invalidated together
  /// with the fingerprint. PublicState() is peeked per node per era by
  /// adaptive adversaries, so uncached it is O(L) per peek.
  mutable std::optional<double> estimate_cache_;
  /// Schedule cursor for LocateFast (mutable: advancing it is invisible —
  /// every Position it produces equals Locate(r)).
  mutable PhaseCursor cursor_;

  /// Updated in OnReceive; read by the engine only while a recorder is
  /// attached.
  net::ProgramPhase obs_phase_{.label = "disseminate"};

  std::optional<HjswyOutput> decided_;
};

}  // namespace sdn::algo
