#include "algo/klo_committee.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdn::algo {

namespace {

/// Lexicographic compare of invitations; (-1, -1) means "none".
bool InvitationLess(NodeId la, NodeId ta, NodeId lb, NodeId tb) {
  if (lb < 0) return la >= 0;
  if (la < 0) return false;
  if (la != lb) return la < lb;
  return ta < tb;
}

/// Min over poll ids where -1 means "none".
NodeId PollMin(NodeId a, NodeId b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

}  // namespace

KloCommitteeProgram::KloCommitteeProgram(NodeId id, Value input)
    : id_(id),
      input_(input),
      leader_(id),
      leader_value_(input),
      max_value_(input) {
  SDN_CHECK(id >= 0);
}

KloCommitteeProgram::Position KloCommitteeProgram::Locate(Round r) {
  SDN_CHECK(r >= 1);
  std::int64_t offset = r - 1;
  std::int64_t k = 1;
  while (true) {
    const std::int64_t cycles = 2 * k * k;      // k cycles of 2k rounds
    const std::int64_t verify = 2 * k + 2;
    const std::int64_t size = 2 * k + 2;
    const std::int64_t total = cycles + verify + size;
    if (offset < total) {
      Position pos;
      pos.guess_k = k;
      pos.first_round_of_guess = (offset == 0);
      pos.last_round_of_guess = (offset == total - 1);
      if (offset < cycles) {
        pos.cycle = offset / (2 * k);
        const std::int64_t in_cycle = offset % (2 * k);
        if (in_cycle < k) {
          pos.phase = Position::Phase::kPoll;
          pos.round_in_phase = in_cycle;
        } else {
          pos.phase = Position::Phase::kInvite;
          pos.round_in_phase = in_cycle - k;
        }
      } else if (offset < cycles + verify) {
        pos.phase = Position::Phase::kVerify;
        pos.round_in_phase = offset - cycles;
      } else {
        pos.phase = Position::Phase::kSize;
        pos.round_in_phase = offset - cycles - verify;
      }
      return pos;
    }
    offset -= total;
    SDN_CHECK_MSG(k < (std::int64_t{1} << 32), "klo-committee guess overflow");
    k *= 2;
  }
}

KloCommitteeProgram::Position KloCommitteeProgram::LocateFast(Round r) const {
  SDN_CHECK(r >= 1);
  const std::int64_t offset = r - 1;
  const auto length_of = [](std::int64_t k) {
    return 2 * k * k + (2 * k + 2) + (2 * k + 2);
  };
  if (cursor_.length == 0 || offset < cursor_.start) {
    // Uninitialized, or a backward query (tests): restart from guess 1.
    cursor_ = PhaseCursor{};
    cursor_.param = 1;
    cursor_.length = length_of(cursor_.param);
  }
  while (offset >= cursor_.start + cursor_.length) {
    cursor_.start += cursor_.length;
    ++cursor_.phase;
    SDN_CHECK_MSG(cursor_.param < (std::int64_t{1} << 32),
                  "klo-committee guess overflow");
    cursor_.param *= 2;
    cursor_.length = length_of(cursor_.param);
  }
  const std::int64_t k = cursor_.param;
  const std::int64_t in_phase = offset - cursor_.start;
  const std::int64_t cycles = 2 * k * k;
  const std::int64_t verify = 2 * k + 2;
  Position pos;
  pos.guess_k = k;
  pos.first_round_of_guess = (in_phase == 0);
  pos.last_round_of_guess = (in_phase == cursor_.length - 1);
  if (in_phase < cycles) {
    pos.cycle = in_phase / (2 * k);
    const std::int64_t in_cycle = in_phase % (2 * k);
    if (in_cycle < k) {
      pos.phase = Position::Phase::kPoll;
      pos.round_in_phase = in_cycle;
    } else {
      pos.phase = Position::Phase::kInvite;
      pos.round_in_phase = in_cycle - k;
    }
  } else if (in_phase < cycles + verify) {
    pos.phase = Position::Phase::kVerify;
    pos.round_in_phase = in_phase - cycles;
  } else {
    pos.phase = Position::Phase::kSize;
    pos.round_in_phase = in_phase - cycles - verify;
  }
  return pos;
}

void KloCommitteeProgram::ResetForGuess(std::int64_t k) {
  guess_ = k;
  committee_.reset();
  invited_ = IdSet();
  poll_best_ = -1;
  poll_cycle_ = -1;
  invite_leader_ = -1;
  invite_target_ = -1;
  invite_cycle_ = -1;
  flag_ = false;
  verify_initialized_ = false;
  size_claim_ = 0;
}

std::optional<KloCommitteeProgram::Message> KloCommitteeProgram::OnSend(
    Round r) {
  std::optional<Message> m(std::in_place);
  if (!OnSendInto(r, *m)) return std::nullopt;
  return m;
}

bool KloCommitteeProgram::OnSendInto(Round r, Message& m) {
  if (decided_.has_value()) return false;
  const Position pos = LocateFast(r);
  if (pos.first_round_of_guess) ResetForGuess(pos.guess_k);

  m = Message{};  // full overwrite: the outbox slot is reused across rounds
  m.leader = leader_;
  m.leader_value = leader_value_;
  m.max_value = max_value_;

  switch (pos.phase) {
    case Position::Phase::kPoll: {
      if (poll_cycle_ != pos.cycle) {
        poll_cycle_ = pos.cycle;
        // Uncommitted nodes inject themselves; everyone else only relays.
        poll_best_ = committee_.has_value() ? -1 : id_;
      }
      m.tag = Tag::kPoll;
      m.poll = poll_best_;
      return true;
    }
    case Position::Phase::kInvite: {
      if (invite_cycle_ != pos.cycle) {
        invite_cycle_ = pos.cycle;
        invite_leader_ = -1;
        invite_target_ = -1;
        if (leader_ == id_) {
          committee_ = id_;  // a leader heads its own committee
          if (poll_best_ >= 0 && poll_best_ != id_) {
            invite_leader_ = id_;
            invite_target_ = poll_best_;
            invited_.Insert(poll_best_);
          }
        }
      }
      m.tag = Tag::kInvite;
      m.leader = leader_;
      m.invitee = invite_target_;
      // The invitation's issuer rides in the leader field when relaying.
      if (invite_leader_ >= 0) m.leader = invite_leader_;
      m.invitee = invite_target_;
      return true;
    }
    case Position::Phase::kVerify: {
      if (!verify_initialized_) {
        verify_initialized_ = true;
        if (!committee_.has_value()) committee_ = id_;  // singleton fallback
        flag_ = true;
      }
      m.tag = Tag::kVerify;
      m.committee = *committee_;
      m.flag = flag_;
      return true;
    }
    case Position::Phase::kSize: {
      if (pos.round_in_phase == 0 && committee_ == id_) {
        size_claim_ = invited_.size() + 1;
      }
      m.tag = Tag::kSize;
      m.size = size_claim_;
      return true;
    }
  }
  return false;
}

void KloCommitteeProgram::OnReceive(Round r, Inbox<Message> inbox) {
  if (decided_.has_value()) return;
  const Position pos = LocateFast(r);
  switch (pos.phase) {
    case Position::Phase::kPoll:
      obs_phase_.label = "poll";
      break;
    case Position::Phase::kInvite:
      obs_phase_.label = "invite";
      break;
    case Position::Phase::kVerify:
      obs_phase_.label = "verify";
      break;
    case Position::Phase::kSize:
      obs_phase_.label = "size";
      break;
  }
  obs_phase_.index = pos.guess_k;

  for (const Message& m : inbox) {
    if (m.leader < leader_ && m.tag != Tag::kInvite) {
      leader_ = m.leader;
      leader_value_ = m.leader_value;
    }
    max_value_ = std::max(max_value_, m.max_value);
    switch (m.tag) {
      case Tag::kPoll:
        poll_best_ = PollMin(poll_best_, m.poll);
        break;
      case Tag::kInvite:
        if (m.invitee >= 0) {
          if (m.invitee == id_ && m.leader == leader_) {
            if (committee_ != m.leader) ++obs_phase_.work;
            committee_ = m.leader;
          }
          if (InvitationLess(m.leader, m.invitee, invite_leader_,
                             invite_target_)) {
            invite_leader_ = m.leader;
            invite_target_ = m.invitee;
          }
        }
        break;
      case Tag::kVerify:
        if (m.committee != committee_.value_or(-1) || !m.flag) flag_ = false;
        break;
      case Tag::kSize:
        size_claim_ = std::max(size_claim_, m.size);
        break;
    }
  }

  if (pos.last_round_of_guess && flag_ && size_claim_ > 0) {
    Output out;
    out.count = size_claim_;
    out.max_value = max_value_;
    out.consensus_value = leader_value_;
    out.accepted_guess = pos.guess_k;
    decided_ = out;
    obs_phase_.label = "decided";
  }
}

std::size_t KloCommitteeProgram::MessageBits(const Message& m) {
  std::size_t bits = 2;  // tag
  bits += IdBits(m.leader) + ValueBits(m.leader_value) + ValueBits(m.max_value);
  switch (m.tag) {
    case Tag::kPoll:
      bits += 1 + (m.poll >= 0 ? IdBits(m.poll) : 0);
      break;
    case Tag::kInvite:
      bits += 1 + (m.invitee >= 0 ? IdBits(m.invitee) : 0);
      break;
    case Tag::kVerify:
      bits += 1 + (m.committee >= 0 ? IdBits(m.committee) : 0) + 1;
      break;
    case Tag::kSize:
      bits += util::VarintBits(static_cast<std::uint64_t>(m.size));
      break;
  }
  return bits;
}

}  // namespace sdn::algo
