#include "algo/hjswy.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "algo/kernels.hpp"
#include "util/check.hpp"

namespace sdn::algo {

namespace {

constexpr std::uint64_t kFingerprintMask = (1ULL << 48) - 1;

std::uint64_t Mix(std::uint64_t h, std::uint64_t x) {
  h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0x100000001b3ULL;
  return h ^ (h >> 29);
}

double BitsToDouble(std::uint32_t bits) {
  return static_cast<double>(std::bit_cast<float>(bits));
}

}  // namespace

HjswyProgram::HjswyProgram(NodeId id, Value input, HjswyOptions options,
                           util::Rng rng, SketchPool* pool)
    : options_(options),
      id_(id),
      sketch_(pool != nullptr
                  ? CardinalityEstimator(options.sketch_len, rng, pool,
                                         static_cast<std::size_t>(id),
                                         /*col_base=*/0)
                  : CardinalityEstimator(options.sketch_len, rng,
                                         /*quantize_float32=*/true)),
      agg_min_id_(id),
      agg_min_value_(input),
      agg_max_value_(input) {
  SDN_CHECK(id >= 0);
  SDN_CHECK(options_.T >= 1);
  SDN_CHECK(options_.coords_per_msg >= 1 &&
            options_.coords_per_msg <= kMaxCoordsPerMsg);
  SDN_CHECK(options_.gamma > 0.0);
  SDN_CHECK(options_.beta > 0.0);
  SDN_CHECK(options_.initial_horizon >= 1);
  if (options_.exact_census) {
    census_.Insert(id);
    RefreshCensusSnapshot();
  }
  if (options_.track_sum) {
    const auto weight =
        input > 0 ? static_cast<std::uint64_t>(input) : std::uint64_t{0};
    sum_sketch_ =
        pool != nullptr
            ? CardinalityEstimator::ForWeight(
                  weight, options_.sketch_len, rng, pool,
                  static_cast<std::size_t>(id),
                  /*col_base=*/options_.sketch_len)
            : CardinalityEstimator::ForWeight(weight, options_.sketch_len, rng,
                                              /*quantize_float32=*/true);
  }
}

std::int64_t HjswyProgram::DisseminationLength(std::int64_t horizon) const {
  return static_cast<std::int64_t>(
      std::ceil(options_.gamma *
                static_cast<double>(horizon + 2 * options_.T)));
}

std::int64_t HjswyProgram::SuffixLength(std::int64_t horizon) const {
  const double lg = std::log2(static_cast<double>(horizon + 2));
  return static_cast<std::int64_t>(
      std::ceil(options_.beta * (static_cast<double>(options_.T) + lg)));
}

HjswyProgram::Position HjswyProgram::Locate(Round r) const {
  SDN_CHECK(r >= 1);
  std::int64_t offset = r - 1;
  std::int64_t phase = 0;
  std::int64_t horizon = options_.initial_horizon;
  while (true) {
    const std::int64_t total =
        DisseminationLength(horizon) + SuffixLength(horizon);
    if (offset < total) {
      Position pos;
      pos.phase = phase;
      pos.horizon = horizon;
      pos.round_in_phase = offset;
      pos.in_suffix = offset >= DisseminationLength(horizon);
      pos.last_round_of_phase = (offset == total - 1);
      return pos;
    }
    offset -= total;
    ++phase;
    SDN_CHECK_MSG(horizon < (std::int64_t{1} << 50), "hjswy horizon overflow");
    horizon *= 2;
  }
}

HjswyProgram::Position HjswyProgram::LocateFast(Round r) const {
  SDN_CHECK(r >= 1);
  const std::int64_t offset = r - 1;
  if (cursor_.length == 0 || offset < cursor_.start) {
    // Uninitialized, or a backward query (tests): restart from phase 0.
    cursor_ = PhaseCursor{};
    cursor_.param = options_.initial_horizon;
    cursor_.aux = DisseminationLength(cursor_.param);
    cursor_.length = cursor_.aux + SuffixLength(cursor_.param);
  }
  while (offset >= cursor_.start + cursor_.length) {
    cursor_.start += cursor_.length;
    ++cursor_.phase;
    SDN_CHECK_MSG(cursor_.param < (std::int64_t{1} << 50),
                  "hjswy horizon overflow");
    cursor_.param *= 2;
    cursor_.aux = DisseminationLength(cursor_.param);
    cursor_.length = cursor_.aux + SuffixLength(cursor_.param);
  }
  Position pos;
  pos.phase = cursor_.phase;
  pos.horizon = cursor_.param;
  pos.round_in_phase = offset - cursor_.start;
  pos.in_suffix = pos.round_in_phase >= cursor_.aux;
  pos.last_round_of_phase = (pos.round_in_phase == cursor_.length - 1);
  return pos;
}

std::uint64_t HjswyProgram::StateFingerprint() const {
  if (fingerprint_cache_.has_value()) return *fingerprint_cache_;
  std::uint64_t h = sketch_.Fingerprint();
  if (sum_sketch_.has_value()) h = Mix(h, sum_sketch_->Fingerprint());
  h = Mix(h, static_cast<std::uint64_t>(agg_min_id_));
  h = Mix(h, static_cast<std::uint64_t>(agg_min_value_));
  h = Mix(h, static_cast<std::uint64_t>(agg_max_value_));
  if (options_.exact_census) h = Mix(h, census_.Hash());
  h &= kFingerprintMask;
  fingerprint_cache_ = h;
  return h;
}

double HjswyProgram::CachedEstimate() const {
  if (!estimate_cache_.has_value()) estimate_cache_ = sketch_.Estimate();
  return *estimate_cache_;
}

void HjswyProgram::RefreshCensusSnapshot() {
  census_snapshot_ = std::make_shared<const IdSet>(census_);
}

std::optional<HjswyProgram::Message> HjswyProgram::OnSend(Round r) {
  std::optional<Message> m(std::in_place);
  OnSendInto(r, *m);
  return m;
}

bool HjswyProgram::OnSendInto(Round r, Message& m) {
  // Decided nodes keep broadcasting their (final) state: laggards must still
  // converge to the same aggregates, and a decided region must not look like
  // a hole in the network.
  const Position pos = LocateFast(r);
  if (alarm_phase_ != pos.phase) {
    alarm_phase_ = pos.phase;
    alarm_ = false;
  }

  const int L = sketch_.size();
  const int c = std::min({options_.coords_per_msg, L, kMaxCoordsPerMsg});
  const int groups = (L + c - 1) / c;
  m.coord_base = static_cast<std::int32_t>((r % groups) * c);
  m.num_coords = 0;
  for (int i = 0; i < c && m.coord_base + i < L; ++i) {
    m.coords[static_cast<std::size_t>(m.num_coords++)] =
        sketch_.CoordBits(static_cast<std::size_t>(m.coord_base + i));
  }
  m.has_sum = sum_sketch_.has_value();
  if (m.has_sum) {
    for (int i = 0; i < m.num_coords; ++i) {
      m.sum_coords[static_cast<std::size_t>(i)] =
          sum_sketch_->CoordBits(static_cast<std::size_t>(m.coord_base + i));
    }
  }
  m.min_id = agg_min_id_;
  m.min_id_value = agg_min_value_;
  m.max_value = agg_max_value_;
  m.fingerprint = StateFingerprint();
  m.alarm = alarm_ && !decided_.has_value();
  if (options_.exact_census) {
    m.census = census_snapshot_;
  } else if (m.census != nullptr) {
    m.census.reset();
  }
  return true;
}

void HjswyProgram::OnReceive(Round r, Inbox<Message> inbox) {
  const Position pos = LocateFast(r);
  const std::uint64_t my_fingerprint = StateFingerprint();

  bool changed = false;
  bool neighbor_divergent = false;
  bool neighbor_alarm = false;
  bool census_changed = false;

  // Every sender follows the same rotation schedule, so all messages of one
  // round carry the same [coord_base, coord_base + num_coords) window.
  // Reduce the inbox columnwise to running minima first, then apply one
  // MergeBlock per sketch: k·c branchy MergeCoord calls become a tight k×c
  // selection loop plus one bounds-checked block merge. Min is selection
  // (never arithmetic), so the merged sketch is bit-identical to the
  // coordinate-at-a-time order. A message whose window disagrees with the
  // round's block (foreign options; never produced within one run) merges
  // coordinate by coordinate as before.
  // The running minima live in the float32 *bit* domain: every wire value is
  // a nonnegative float (Exp draws quantized to float, +inf for weight 0), and
  // for nonnegative IEEE floats value order coincides with unsigned order of
  // the bit patterns. That turns the per-message inner loop into a pure
  // integer min, run through the SIMD-dispatched kernels::MinU32 (the
  // dispatch pointer is hoisted out of the message loop, so each message
  // pays one perfectly-predicted indirect call, not an atomic load); the one
  // conversion to double happens after the loop, when the reduced block is
  // handed to MergeBlock.
  std::int32_t block_base = -1;
  std::int32_t block_len = 0;
  bool block_has_sum = false;
  constexpr std::uint32_t kInfBits = 0x7f800000u;  // float32 +infinity
  std::array<std::uint32_t, kMaxCoordsPerMsg> block_bits{};
  std::array<std::uint32_t, kMaxCoordsPerMsg> sum_block_bits{};
  const kernels::MinU32Fn min_u32 = kernels::MinU32Kernel();

  for (const Message& m : inbox) {
    if (m.num_coords > 0) {
      if (block_base < 0) {
        block_base = m.coord_base;
        block_len = std::min(m.num_coords,
                             static_cast<std::int32_t>(kMaxCoordsPerMsg));
        std::fill_n(block_bits.data(), block_len, kInfBits);
        std::fill_n(sum_block_bits.data(), block_len, kInfBits);
      }
      if (m.coord_base == block_base && m.num_coords == block_len) {
        const auto len = static_cast<std::size_t>(block_len);
        min_u32(block_bits.data(), m.coords.data(), len);
        if (m.has_sum) {
          block_has_sum = true;
          min_u32(sum_block_bits.data(), m.sum_coords.data(), len);
        }
      } else {
        for (std::size_t i = 0; i < static_cast<std::size_t>(m.num_coords);
             ++i) {
          const auto idx = static_cast<std::size_t>(m.coord_base) + i;
          if (idx < static_cast<std::size_t>(sketch_.size())) {
            if (sketch_.MergeCoord(idx, BitsToDouble(m.coords[i]))) {
              changed = true;
              ++obs_phase_.work;
            }
            if (m.has_sum && sum_sketch_.has_value() &&
                sum_sketch_->MergeCoord(idx, BitsToDouble(m.sum_coords[i]))) {
              changed = true;
              ++obs_phase_.work;
            }
          }
        }
      }
    }
    if (m.min_id < agg_min_id_) {
      agg_min_id_ = m.min_id;
      agg_min_value_ = m.min_id_value;
      changed = true;
    }
    if (m.max_value > agg_max_value_) {
      agg_max_value_ = m.max_value;
      changed = true;
    }
    if (options_.exact_census && m.census != nullptr &&
        m.census.get() != &census_) {
      census_changed |= census_.UnionWith(*m.census);
    }
    if (m.fingerprint != my_fingerprint) neighbor_divergent = true;
    if (m.alarm) neighbor_alarm = true;
  }
  if (block_base >= 0 &&
      block_base < static_cast<std::int32_t>(sketch_.size())) {
    const auto len = static_cast<std::size_t>(std::min<std::int32_t>(
        block_len, static_cast<std::int32_t>(sketch_.size()) - block_base));
    const auto base = static_cast<std::size_t>(block_base);
    // The reduced block stays in the wire's float32 bit domain: the
    // estimator merges it bits-native in the pooled layout and decodes to
    // double for the owned kernel path — identical outcomes either way.
    if (sketch_.MergeBlockBits(base, block_bits.data(), len)) {
      changed = true;
      ++obs_phase_.work;
    }
    if (block_has_sum && sum_sketch_.has_value()) {
      if (sum_sketch_->MergeBlockBits(base, sum_block_bits.data(), len)) {
        changed = true;
        ++obs_phase_.work;
      }
    }
  }
  changed |= census_changed;
  if (census_changed) RefreshCensusSnapshot();
  if (changed) {
    fingerprint_cache_.reset();
    estimate_cache_.reset();
  }

  if (decided_.has_value()) return;

  obs_phase_.label = pos.in_suffix ? "suffix" : "disseminate";
  obs_phase_.index = pos.phase;

  if (pos.in_suffix && (changed || neighbor_divergent || neighbor_alarm)) {
    alarm_ = true;
  }

  if (pos.last_round_of_phase && !alarm_) {
    const double estimate = CachedEstimate();
    if (options_.strict &&
        static_cast<double>(pos.horizon) < options_.strict_mult * estimate) {
      return;  // strict mode: horizon not yet provably sufficient
    }
    HjswyOutput out;
    out.count_estimate = estimate;
    if (sum_sketch_.has_value()) out.sum_estimate = sum_sketch_->Estimate();
    out.count = options_.exact_census ? census_.size()
                                      : std::llround(estimate);
    out.max_value = agg_max_value_;
    out.consensus_value = agg_min_value_;
    out.accepted_phase = pos.phase;
    out.accepted_horizon = pos.horizon;
    decided_ = out;
    obs_phase_.label = "decided";
  }
}

double HjswyProgram::PublicState() const {
  return options_.exact_census ? static_cast<double>(census_.size())
                               : CachedEstimate();
}

std::size_t HjswyProgram::MessageBits(const Message& m) {
  std::size_t bits = util::VarintBits(static_cast<std::uint64_t>(m.coord_base));
  bits += static_cast<std::size_t>(m.num_coords) * 32;
  bits += 1;  // has_sum flag
  if (m.has_sum) bits += static_cast<std::size_t>(m.num_coords) * 32;
  bits += IdBits(m.min_id) + ValueBits(m.min_id_value) +
          ValueBits(m.max_value);
  bits += 48 + 1;  // fingerprint + alarm
  if (m.census != nullptr) bits += m.census->EncodedBits();
  return bits;
}

AlgoInfo HjswyProgram::InfoFor(const HjswyOptions& options) {
  std::ostringstream os;
  os << "hjswy(T=" << options.T
     << (options.exact_census ? ",census" : ",estimate")
     << (options.strict ? ",strict" : "") << ")";
  return {os.str(), /*randomized=*/true, /*needs_n=*/false,
          /*unbounded_msgs=*/options.exact_census};
}

}  // namespace sdn::algo
