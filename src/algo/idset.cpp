#include "algo/idset.hpp"

#include <algorithm>
#include <bit>

#include "util/bitio.hpp"
#include "util/check.hpp"

namespace sdn::algo {

void IdSet::Insert(graph::NodeId id) {
  SDN_CHECK(id >= 0);
  const auto word = static_cast<std::size_t>(id) / 64;
  const auto bit = static_cast<unsigned>(id) % 64;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  const std::uint64_t mask = 1ULL << bit;
  if ((words_[word] & mask) == 0) {
    words_[word] |= mask;
    ++count_;
    max_id_ = std::max(max_id_, id);
  }
}

bool IdSet::Contains(graph::NodeId id) const {
  if (id < 0) return false;
  const auto word = static_cast<std::size_t>(id) / 64;
  if (word >= words_.size()) return false;
  return (words_[word] >> (static_cast<unsigned>(id) % 64)) & 1ULL;
}

bool IdSet::UnionWith(const IdSet& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  bool grew = false;
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    const std::uint64_t fresh = other.words_[w] & ~words_[w];
    if (fresh != 0) {
      words_[w] |= fresh;
      count_ += std::popcount(fresh);
      grew = true;
    }
  }
  if (grew) max_id_ = std::max(max_id_, other.max_id_);
  return grew;
}

graph::NodeId IdSet::UnionWithMinNew(const IdSet& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  graph::NodeId min_new = -1;
  for (std::size_t w = 0; w < other.words_.size(); ++w) {
    const std::uint64_t fresh = other.words_[w] & ~words_[w];
    if (fresh != 0) {
      words_[w] |= fresh;
      count_ += std::popcount(fresh);
      if (min_new < 0) {
        min_new = static_cast<graph::NodeId>(
            w * 64 + static_cast<std::size_t>(std::countr_zero(fresh)));
      }
    }
  }
  if (min_new >= 0) max_id_ = std::max(max_id_, other.max_id_);
  return min_new;
}

graph::NodeId IdSet::SelectKth(std::int64_t k) const {
  if (k < 0 || k >= count_) return -1;
  std::int64_t remaining = k;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const int pop = std::popcount(words_[w]);
    if (remaining >= pop) {
      remaining -= pop;
      continue;
    }
    std::uint64_t bits = words_[w];
    while (remaining > 0) {
      bits &= bits - 1;
      --remaining;
    }
    return static_cast<graph::NodeId>(
        w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
  }
  return -1;
}

graph::NodeId IdSet::NextAtLeast(graph::NodeId from) const {
  if (from < 0) from = 0;
  auto w = static_cast<std::size_t>(from) / 64;
  if (w >= words_.size()) return -1;
  std::uint64_t bits = words_[w] >> (static_cast<unsigned>(from) % 64)
                                        << (static_cast<unsigned>(from) % 64);
  while (true) {
    if (bits != 0) {
      return static_cast<graph::NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
    }
    ++w;
    if (w >= words_.size()) return -1;
    bits = words_[w];
  }
}

std::uint64_t IdSet::Hash() const {
  // Position-keyed mixing; trailing zero words must not affect the hash.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] == 0) continue;
    std::uint64_t x = words_[w] ^ (0xbf58476d1ce4e5b9ULL * (w + 1));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    h ^= x ^ (x >> 31);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::vector<graph::NodeId> IdSet::ToVector() const {
  std::vector<graph::NodeId> out;
  out.reserve(static_cast<std::size_t>(count_));
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      out.push_back(static_cast<graph::NodeId>(w * 64 + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
  return out;
}

graph::NodeId IdSet::Min() const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<graph::NodeId>(
          w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w])));
    }
  }
  return -1;
}

std::size_t IdSet::EncodedBits() const {
  const std::size_t header =
      util::VarintBits(static_cast<std::uint64_t>(count_)) + 6;
  if (count_ == 0) return header;
  const auto width =
      static_cast<std::size_t>(util::BitWidth(static_cast<std::uint64_t>(max_id_)));
  return header + static_cast<std::size_t>(count_) * width;
}

bool operator==(const IdSet& a, const IdSet& b) {
  const std::size_t common = std::min(a.words_.size(), b.words_.size());
  for (std::size_t w = 0; w < common; ++w) {
    if (a.words_[w] != b.words_[w]) return false;
  }
  const auto& longer = a.words_.size() > b.words_.size() ? a.words_ : b.words_;
  for (std::size_t w = common; w < longer.size(); ++w) {
    if (longer[w] != 0) return false;
  }
  return true;
}

}  // namespace sdn::algo
