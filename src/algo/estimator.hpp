// Probabilistic cardinality estimation via exponential minima.
//
// Every node draws L i.i.d. Exp(1) variates. The coordinate-wise minimum over
// any set S of nodes is a vector of L i.i.d. Exp(|S|) variates, and minima
// compose under set union by pointwise min — i.e. they flood through a
// dynamic network like a max/min aggregate. From the converged vector,
// (L-1)/Σ_i min_i is an unbiased estimate of |S| with relative standard
// deviation ≈ 1/sqrt(L-2) (Mosk-Aoyama–Shah style gossip counting).
//
// This is the O(polylog)-bit aggregate that lets the hjswy reconstruction
// learn the network size without moving Ω(N) identifiers — the step that
// removes the Ω(N) term from the round complexity.
//
// Merge/MergeCoord/MergeBlock are the engine's message-path hot loop (one
// call per delivered coordinate block); they are defined inline here so the
// templated engine can vectorize them, and their per-call bounds checks are
// gated on SetVerifyEstimatorChecks (same pattern as SDN_VERIFY_SORTED:
// on in debug builds, off under NDEBUG, overridable via the
// SDN_VERIFY_ESTIMATOR environment variable; tests flip it on).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "algo/kernels.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::algo {

/// Toggles the per-call bounds checks in CardinalityEstimator's merge hot
/// loops. Default: on in debug builds, off under NDEBUG; the
/// SDN_VERIFY_ESTIMATOR environment variable ("0"/"1", read once at
/// startup) overrides either way.
void SetVerifyEstimatorChecks(bool on);
[[nodiscard]] bool VerifyEstimatorChecks();

class CardinalityEstimator {
 public:
  /// L >= 3 sketch coordinates drawn from `rng`. With `quantize_float32`
  /// every draw is rounded to float precision, so coordinates survive a
  /// 32-bit wire encoding exactly (required by the bounded-bandwidth
  /// algorithms: min-merging must be bit-stable across hops).
  CardinalityEstimator(int L, util::Rng& rng, bool quantize_float32 = false);

  /// Weighted variant: the converged minima estimate Σ weights instead of a
  /// count. A node of integer weight w contributes Exp(w)-distributed
  /// coordinates (distributed like the min of w unit exponentials), so the
  /// pointwise network minima are Exp(Σw) and Estimate() returns ≈ Σw.
  /// Weight 0 contributes +infinity coordinates (no effect on minima);
  /// Estimate() returns 0 if the whole network carried weight 0.
  static CardinalityEstimator ForWeight(std::uint64_t weight, int L,
                                        util::Rng& rng,
                                        bool quantize_float32 = false);

  /// Pointwise-min merge of another sketch (must have equal length).
  /// Returns true if any coordinate decreased (i.e. new information).
  bool Merge(std::span<const double> other) {
    if (VerifyEstimatorChecks()) SDN_CHECK(other.size() == mins_.size());
    return MergeBlock(0, other);
  }

  /// Min-merge of a single coordinate; returns true if it decreased.
  bool MergeCoord(std::size_t i, double v) {
    if (VerifyEstimatorChecks()) SDN_CHECK(i < mins_.size());
    if (v < mins_[i]) {
      fingerprint_ ^= CoordHash(i, mins_[i]) ^ CoordHash(i, v);
      mins_[i] = v;
      return true;
    }
    return false;
  }

  /// Columnwise min-merge of a contiguous coordinate block starting at
  /// `base`: mins[base+i] = min(mins[base+i], span[i]). The bounds check is
  /// hoisted out of the loop (always on — one check per block, not per
  /// coordinate). The decrease test runs through the SIMD-dispatched
  /// kernels::LtMaskF64 (scalar/SSE2/AVX2, bit-identical across tiers): one
  /// vector compare per <=64-lane chunk answers "which lanes decreased", and
  /// only those lanes pay the fingerprint rehash and store — the converged
  /// steady state (no decrease, the common suffix-round case) is a pure
  /// compare with no writes at all. Returns true if any coordinate
  /// decreased. Same float-compare semantics as coordinate-at-a-time
  /// MergeCoord calls.
  bool MergeBlock(std::size_t base, std::span<const double> vals) {
    SDN_CHECK(base + vals.size() <= mins_.size());
    double* mins = mins_.data() + base;
    const double* v = vals.data();
    bool changed = false;
    for (std::size_t off = 0; off < vals.size(); off += 64) {
      const std::size_t len = std::min<std::size_t>(64, vals.size() - off);
      std::uint64_t mask = kernels::LtMaskF64(v + off, mins + off, len);
      changed |= mask != 0;
      while (mask != 0) {
        const std::size_t i =
            off + static_cast<std::size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        fingerprint_ ^= CoordHash(base + i, mins[i]) ^ CoordHash(base + i, v[i]);
        mins[i] = v[i];
      }
    }
    return changed;
  }

  /// Current cardinality estimate (L-1)/Σ mins.
  [[nodiscard]] double Estimate() const;

  [[nodiscard]] std::span<const double> mins() const { return mins_; }
  [[nodiscard]] int size() const { return static_cast<int>(mins_.size()); }

  /// Position-mixed 64-bit hash of the sketch, used as the convergence
  /// fingerprint nodes compare during verification. A pure function of the
  /// current coordinate vector (XOR of per-coordinate position-salted
  /// hashes), maintained incrementally by the merge kernels — reading it is
  /// O(1) and a merge pays only O(#decreased coords), never a full O(L)
  /// rehash per state change.
  [[nodiscard]] std::uint64_t Fingerprint() const { return fingerprint_; }

  /// Analytic relative standard deviation of the estimate: ~1/sqrt(L-2).
  static double RelativeStddev(int L);

  /// Smallest L whose relative stddev is <= eps (so z·stddev-style bounds can
  /// be dialed by callers).
  static int RepetitionsFor(double eps);

 private:
  /// Hash of one (position, value) pair; XORed over all coordinates to form
  /// Fingerprint(). splitmix64-style finalizer: full avalanche, so flipping
  /// one coordinate flips the aggregate whp, and the position salt keeps the
  /// hash sensitive to coordinate order (sketches are positional).
  static std::uint64_t CoordHash(std::size_t i, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    std::uint64_t x =
        bits ^ ((static_cast<std::uint64_t>(i) + 1) * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Full O(L) rebuild of fingerprint_ (construction / wholesale resets).
  void RecomputeFingerprint();

  std::vector<double> mins_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace sdn::algo
