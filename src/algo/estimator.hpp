// Probabilistic cardinality estimation via exponential minima.
//
// Every node draws L i.i.d. Exp(1) variates. The coordinate-wise minimum over
// any set S of nodes is a vector of L i.i.d. Exp(|S|) variates, and minima
// compose under set union by pointwise min — i.e. they flood through a
// dynamic network like a max/min aggregate. From the converged vector,
// (L-1)/Σ_i min_i is an unbiased estimate of |S| with relative standard
// deviation ≈ 1/sqrt(L-2) (Mosk-Aoyama–Shah style gossip counting).
//
// This is the O(polylog)-bit aggregate that lets the hjswy reconstruction
// learn the network size without moving Ω(N) identifiers — the step that
// removes the Ω(N) term from the round complexity.
//
// Merge/MergeCoord/MergeBlock are the engine's message-path hot loop (one
// call per delivered coordinate block); they are defined inline here so the
// templated engine can vectorize them, and their per-call bounds checks are
// gated on SetVerifyEstimatorChecks (same pattern as SDN_VERIFY_SORTED:
// on in debug builds, off under NDEBUG, overridable via the
// SDN_VERIFY_ESTIMATOR environment variable; tests flip it on).
//
// Storage comes in two layouts with pinned-identical semantics:
//
//   * Owned (default): a per-estimator std::vector<double>, each coordinate
//     holding double(float(draw)) when quantized.
//   * Pooled: coordinates live in a shared SketchPool as float32, at row
//     `node` in columns [col_base, col_base + L). Pooled mode requires
//     float32 quantization (it IS the storage format), so double(stored
//     float) equals the owned representation exactly — estimates,
//     fingerprints and merge outcomes are bit-identical by construction,
//     and the pin suite (test_sketch_pool) enforces it. Pooled estimators
//     are shallow views: copying one aliases the same pool slots, and the
//     pool must outlive every estimator attached to it.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "algo/kernels.hpp"
#include "algo/sketch_pool.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::algo {

/// Toggles the per-call bounds checks in CardinalityEstimator's merge hot
/// loops. Default: on in debug builds, off under NDEBUG; the
/// SDN_VERIFY_ESTIMATOR environment variable ("0"/"1", read once at
/// startup) overrides either way.
void SetVerifyEstimatorChecks(bool on);
[[nodiscard]] bool VerifyEstimatorChecks();

class CardinalityEstimator {
 public:
  /// L >= 3 sketch coordinates drawn from `rng`. With `quantize_float32`
  /// every draw is rounded to float precision, so coordinates survive a
  /// 32-bit wire encoding exactly (required by the bounded-bandwidth
  /// algorithms: min-merging must be bit-stable across hops).
  CardinalityEstimator(int L, util::Rng& rng, bool quantize_float32 = false);

  /// Pooled layout: identical draw sequence and semantics, but the L
  /// coordinates are stored float32 in `pool` at row `node`, columns
  /// [col_base, col_base + L). Implies float32 quantization.
  CardinalityEstimator(int L, util::Rng& rng, SketchPool* pool,
                       std::size_t node, int col_base);

  /// Weighted variant: the converged minima estimate Σ weights instead of a
  /// count. A node of integer weight w contributes Exp(w)-distributed
  /// coordinates (distributed like the min of w unit exponentials), so the
  /// pointwise network minima are Exp(Σw) and Estimate() returns ≈ Σw.
  /// Weight 0 contributes +infinity coordinates (no effect on minima);
  /// Estimate() returns 0 if the whole network carried weight 0.
  static CardinalityEstimator ForWeight(std::uint64_t weight, int L,
                                        util::Rng& rng,
                                        bool quantize_float32 = false);

  /// Pooled ForWeight: same draw sequence as the owned overload (L base
  /// draws then L weighted redraws), stored in the pool.
  static CardinalityEstimator ForWeight(std::uint64_t weight, int L,
                                        util::Rng& rng, SketchPool* pool,
                                        std::size_t node, int col_base);

  /// Pointwise-min merge of another sketch (must have equal length).
  /// Returns true if any coordinate decreased (i.e. new information).
  bool Merge(std::span<const double> other) {
    if (VerifyEstimatorChecks()) {
      SDN_CHECK(other.size() == static_cast<std::size_t>(len_));
    }
    return MergeBlock(0, other);
  }

  /// Min-merge of a single coordinate; returns true if it decreased.
  /// In pooled mode `v` must be float32-representable (all wire values
  /// are); the gated check enforces it.
  bool MergeCoord(std::size_t i, double v) {
    if (pool_ != nullptr) {
      if (VerifyEstimatorChecks()) {
        SDN_CHECK(i < static_cast<std::size_t>(len_));
        SDN_CHECK(static_cast<double>(static_cast<float>(v)) == v);
      }
      const std::size_t col = Col(i);
      const double cur =
          static_cast<double>(pool_->Load(node_, col));
      if (v < cur) {
        fingerprint_ ^= CoordHash(i, cur) ^ CoordHash(i, v);
        pool_->Store(node_, col, static_cast<float>(v));
        return true;
      }
      return false;
    }
    if (VerifyEstimatorChecks()) SDN_CHECK(i < mins_.size());
    if (v < mins_[i]) {
      fingerprint_ ^= CoordHash(i, mins_[i]) ^ CoordHash(i, v);
      mins_[i] = v;
      return true;
    }
    return false;
  }

  /// Columnwise min-merge of a contiguous coordinate block starting at
  /// `base`: mins[base+i] = min(mins[base+i], span[i]). The bounds check is
  /// hoisted out of the loop (always on — one check per block, not per
  /// coordinate). In the owned layout the decrease test runs through the
  /// SIMD-dispatched kernels::LtMaskF64 (scalar/SSE2/AVX2, bit-identical
  /// across tiers): one vector compare per <=64-lane chunk answers "which
  /// lanes decreased", and only those lanes pay the fingerprint rehash and
  /// store — the converged steady state (no decrease, the common
  /// suffix-round case) is a pure compare with no writes at all. The pooled
  /// layout merges coordinate-at-a-time (min is selection, so the result is
  /// bit-identical either way); its fast path is MergeBlockBits. Returns
  /// true if any coordinate decreased.
  bool MergeBlock(std::size_t base, std::span<const double> vals) {
    SDN_CHECK(base + vals.size() <= static_cast<std::size_t>(len_));
    if (pool_ != nullptr) {
      bool changed = false;
      for (std::size_t i = 0; i < vals.size(); ++i) {
        changed |= MergeCoord(base + i, vals[i]);
      }
      return changed;
    }
    double* mins = mins_.data() + base;
    const double* v = vals.data();
    bool changed = false;
    for (std::size_t off = 0; off < vals.size(); off += 64) {
      const std::size_t len = std::min<std::size_t>(64, vals.size() - off);
      std::uint64_t mask = kernels::LtMaskF64(v + off, mins + off, len);
      changed |= mask != 0;
      while (mask != 0) {
        const std::size_t i =
            off + static_cast<std::size_t>(std::countr_zero(mask));
        mask &= mask - 1;
        fingerprint_ ^= CoordHash(base + i, mins[i]) ^ CoordHash(base + i, v[i]);
        mins[i] = v[i];
      }
    }
    return changed;
  }

  /// Min-merge of a contiguous block given as float32 bit patterns — the
  /// wire format of the bounded-bandwidth algorithms. Owned layout: decode
  /// to double and take the kernel path (exactly the conversion callers
  /// used to do inline, so outcomes are unchanged). Pooled layout: compare
  /// in the unsigned-integer domain directly against the float32 store —
  /// for the nonnegative values sketches hold, unsigned bit order equals
  /// value order (+inf = 0x7f800000 sorts above all finite values), so the
  /// decision "did this coordinate decrease" is identical to the double
  /// compare, and only decreased lanes pay the fingerprint rehash.
  bool MergeBlockBits(std::size_t base, const std::uint32_t* vals,
                      std::size_t count) {
    SDN_CHECK(base + count <= static_cast<std::size_t>(len_));
    if (pool_ != nullptr) {
      bool changed = false;
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t col = Col(base + i);
        const std::uint32_t cur = pool_->LoadBits(node_, col);
        if (vals[i] < cur) {
          fingerprint_ ^= CoordHash(base + i, BitsToDouble(cur)) ^
                          CoordHash(base + i, BitsToDouble(vals[i]));
          pool_->StoreBits(node_, col, vals[i]);
          changed = true;
        }
      }
      return changed;
    }
    bool changed = false;
    while (count > 0) {
      const std::size_t k = std::min<std::size_t>(64, count);
      std::array<double, 64> block;
      for (std::size_t i = 0; i < k; ++i) block[i] = BitsToDouble(vals[i]);
      changed |= MergeBlock(base, std::span(block.data(), k));
      base += k;
      vals += k;
      count -= k;
    }
    return changed;
  }

  /// Float32 bit pattern of coordinate i — what the wire carries. Owned
  /// layout narrows the (already float-representable when quantized)
  /// double; pooled layout reads the stored bits directly.
  [[nodiscard]] std::uint32_t CoordBits(std::size_t i) const {
    if (pool_ != nullptr) return pool_->LoadBits(node_, Col(i));
    return std::bit_cast<std::uint32_t>(static_cast<float>(mins_[i]));
  }

  /// Current cardinality estimate (L-1)/Σ mins.
  [[nodiscard]] double Estimate() const;

  /// Direct coordinate view; owned layout only (pooled coordinates are not
  /// contiguous doubles — use CoordBits / Coord).
  [[nodiscard]] std::span<const double> mins() const {
    SDN_CHECK(pool_ == nullptr);
    return mins_;
  }

  /// Coordinate i as a double, identical across layouts.
  [[nodiscard]] double Coord(std::size_t i) const {
    if (pool_ != nullptr) {
      return static_cast<double>(pool_->Load(node_, Col(i)));
    }
    return mins_[i];
  }

  [[nodiscard]] int size() const { return len_; }
  [[nodiscard]] bool pooled() const { return pool_ != nullptr; }

  /// Position-mixed 64-bit hash of the sketch, used as the convergence
  /// fingerprint nodes compare during verification. A pure function of the
  /// current coordinate vector (XOR of per-coordinate position-salted
  /// hashes), maintained incrementally by the merge kernels — reading it is
  /// O(1) and a merge pays only O(#decreased coords), never a full O(L)
  /// rehash per state change.
  [[nodiscard]] std::uint64_t Fingerprint() const { return fingerprint_; }

  /// Analytic relative standard deviation of the estimate: ~1/sqrt(L-2).
  static double RelativeStddev(int L);

  /// Smallest L whose relative stddev is <= eps (so z·stddev-style bounds can
  /// be dialed by callers).
  static int RepetitionsFor(double eps);

 private:
  /// Hash of one (position, value) pair; XORed over all coordinates to form
  /// Fingerprint(). splitmix64-style finalizer: full avalanche, so flipping
  /// one coordinate flips the aggregate whp, and the position salt keeps the
  /// hash sensitive to coordinate order (sketches are positional).
  static std::uint64_t CoordHash(std::size_t i, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    std::uint64_t x =
        bits ^ ((static_cast<std::uint64_t>(i) + 1) * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static double BitsToDouble(std::uint32_t bits) {
    return static_cast<double>(std::bit_cast<float>(bits));
  }

  [[nodiscard]] std::size_t Col(std::size_t i) const {
    return static_cast<std::size_t>(col_base_) + i;
  }

  /// Store coordinate i (construction-time only; merges go through the
  /// fingerprint-maintaining paths above).
  void SetCoord(std::size_t i, double v);

  /// Full O(L) rebuild of fingerprint_ (construction / wholesale resets).
  void RecomputeFingerprint();

  std::vector<double> mins_;        // owned layout; empty when pooled
  SketchPool* pool_ = nullptr;      // pooled layout; not owned
  std::size_t node_ = 0;            // pool row
  int col_base_ = 0;                // first pool column
  int len_ = 0;                     // L, both layouts
  std::uint64_t fingerprint_ = 0;
};

}  // namespace sdn::algo
