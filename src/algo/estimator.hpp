// Probabilistic cardinality estimation via exponential minima.
//
// Every node draws L i.i.d. Exp(1) variates. The coordinate-wise minimum over
// any set S of nodes is a vector of L i.i.d. Exp(|S|) variates, and minima
// compose under set union by pointwise min — i.e. they flood through a
// dynamic network like a max/min aggregate. From the converged vector,
// (L-1)/Σ_i min_i is an unbiased estimate of |S| with relative standard
// deviation ≈ 1/sqrt(L-2) (Mosk-Aoyama–Shah style gossip counting).
//
// This is the O(polylog)-bit aggregate that lets the hjswy reconstruction
// learn the network size without moving Ω(N) identifiers — the step that
// removes the Ω(N) term from the round complexity.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace sdn::algo {

class CardinalityEstimator {
 public:
  /// L >= 3 sketch coordinates drawn from `rng`. With `quantize_float32`
  /// every draw is rounded to float precision, so coordinates survive a
  /// 32-bit wire encoding exactly (required by the bounded-bandwidth
  /// algorithms: min-merging must be bit-stable across hops).
  CardinalityEstimator(int L, util::Rng& rng, bool quantize_float32 = false);

  /// Weighted variant: the converged minima estimate Σ weights instead of a
  /// count. A node of integer weight w contributes Exp(w)-distributed
  /// coordinates (distributed like the min of w unit exponentials), so the
  /// pointwise network minima are Exp(Σw) and Estimate() returns ≈ Σw.
  /// Weight 0 contributes +infinity coordinates (no effect on minima);
  /// Estimate() returns 0 if the whole network carried weight 0.
  static CardinalityEstimator ForWeight(std::uint64_t weight, int L,
                                        util::Rng& rng,
                                        bool quantize_float32 = false);

  /// Pointwise-min merge of another sketch (must have equal length).
  /// Returns true if any coordinate decreased (i.e. new information).
  bool Merge(std::span<const double> other);

  /// Min-merge of a single coordinate; returns true if it decreased.
  bool MergeCoord(std::size_t i, double v);

  /// Current cardinality estimate (L-1)/Σ mins.
  [[nodiscard]] double Estimate() const;

  [[nodiscard]] std::span<const double> mins() const { return mins_; }
  [[nodiscard]] int size() const { return static_cast<int>(mins_.size()); }

  /// Order-insensitive 64-bit hash of the sketch, used as the convergence
  /// fingerprint nodes compare during verification.
  [[nodiscard]] std::uint64_t Fingerprint() const;

  /// Analytic relative standard deviation of the estimate: ~1/sqrt(L-2).
  static double RelativeStddev(int L);

  /// Smallest L whose relative stddev is <= eps (so z·stddev-style bounds can
  /// be dialed by callers).
  static int RepetitionsFor(double eps);

 private:
  std::vector<double> mins_;
};

}  // namespace sdn::algo
