// Structure-of-arrays backing store for hjswy sketch coordinates.
//
// Per-node `std::vector<double> mins_` costs 8 bytes/coordinate plus a heap
// allocation (and a pointer chase) per node — at n = 2^20 with L = 64 that
// is ~0.5 GB of doubles scattered across a million allocations, and the
// delivery hot loop (every node min-merging the same rotating c-coordinate
// window each round) walks them in the worst possible order for the cache.
//
// The pool stores every node's coordinates in one contiguous float32 block,
// column-major: coordinate j of node u lives at data[j*n + u]. All wire
// values are float32-quantized already (the bounded-bandwidth encoding), so
// float storage loses nothing: the owned representation stores
// double(float(v)) and the pool stores float(v), and both decode to the
// identical double. The engine delivers to nodes in ascending order within
// a shard and every sender follows the same rotation schedule, so one
// round's merges touch c adjacent-in-column entries per node and
// consecutive nodes hit consecutive offsets in those same c columns —
// ~1/16th the cache-line traffic of the per-node layout at scale.
//
// The pool is plain storage: CardinalityEstimator (pooled mode) owns all
// merge/fingerprint semantics, and the pin suite asserts RunStats equality
// between pooled and per-node layouts.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace sdn::algo {

class SketchPool {
 public:
  /// Storage for `nodes` rows of `columns` float32 coordinates each,
  /// zero-initialized (estimator construction overwrites every slot).
  SketchPool(std::size_t nodes, int columns)
      : nodes_(nodes), columns_(columns) {
    SDN_CHECK(nodes > 0 && columns > 0);
    data_.resize(nodes * static_cast<std::size_t>(columns));
  }

  [[nodiscard]] std::size_t nodes() const { return nodes_; }
  [[nodiscard]] int columns() const { return columns_; }

  [[nodiscard]] float Load(std::size_t node, std::size_t col) const {
    return data_[Index(node, col)];
  }
  void Store(std::size_t node, std::size_t col, float v) {
    data_[Index(node, col)] = v;
  }

  /// The float32 bit pattern at (node, col). For the nonnegative values the
  /// sketches hold, unsigned order of bit patterns equals value order, so
  /// merges can compare in the integer domain.
  [[nodiscard]] std::uint32_t LoadBits(std::size_t node,
                                       std::size_t col) const {
    return std::bit_cast<std::uint32_t>(data_[Index(node, col)]);
  }
  void StoreBits(std::size_t node, std::size_t col, std::uint32_t bits) {
    data_[Index(node, col)] = std::bit_cast<float>(bits);
  }

  /// Total backing bytes (for MemoryBudget accounting).
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(float);
  }

 private:
  // Hot-path indexing: assert (not SDN_CHECK) so release builds pay pure
  // pointer arithmetic; the estimator's own gated checks cover bounds.
  [[nodiscard]] std::size_t Index(std::size_t node, std::size_t col) const {
    assert(node < nodes_ && col < static_cast<std::size_t>(columns_));
    return col * nodes_ + node;
  }

  std::size_t nodes_;
  int columns_;
  std::vector<float> data_;
};

}  // namespace sdn::algo
