#include "algo/codecs.hpp"

#include "util/check.hpp"

namespace sdn::algo {

namespace {

void EncodeOptionalId(NodeId id, util::BitWriter& out) {
  out.Write(id >= 0 ? 1 : 0, 1);
  if (id >= 0) out.WriteVarint(static_cast<std::uint64_t>(id));
}

NodeId DecodeOptionalId(util::BitReader& in) {
  if (in.Read(1) == 0) return -1;
  return static_cast<NodeId>(in.ReadVarint());
}

}  // namespace

void EncodeIdSet(const IdSet& set, util::BitWriter& out) {
  out.WriteVarint(static_cast<std::uint64_t>(set.size()));
  const int width = set.size() == 0
                        ? 0
                        : util::BitWidth(static_cast<std::uint64_t>(set.max_id()));
  out.Write(static_cast<std::uint64_t>(width), 6);
  for (const graph::NodeId id : set.ToVector()) {
    out.Write(static_cast<std::uint64_t>(id), width);
  }
}

IdSet DecodeIdSet(util::BitReader& in) {
  const auto count = in.ReadVarint();
  const auto width = static_cast<int>(in.Read(6));
  IdSet set;
  for (std::uint64_t i = 0; i < count; ++i) {
    set.Insert(static_cast<graph::NodeId>(in.Read(width)));
  }
  return set;
}

void EncodeMessage(const CensusProgram::Message& m, util::BitWriter& out) {
  out.Write(static_cast<std::uint64_t>(m.tag), 2);
  if (m.tag == CensusProgram::Tag::kVerify) {
    out.Write(m.hash, 48);
    out.Write(m.flag ? 1 : 0, 1);
    return;
  }
  EncodeOptionalId(m.token, out);
  out.WriteVarint(static_cast<std::uint64_t>(m.min_id));
  out.WriteSignedVarint(m.min_id_value);
  out.WriteSignedVarint(m.max_value);
}

CensusProgram::Message DecodeCensusMessage(util::BitReader& in) {
  CensusProgram::Message m;
  m.tag = static_cast<CensusProgram::Tag>(in.Read(2));
  if (m.tag == CensusProgram::Tag::kVerify) {
    m.hash = in.Read(48);
    m.flag = in.Read(1) != 0;
    return m;
  }
  m.token = DecodeOptionalId(in);
  m.min_id = static_cast<NodeId>(in.ReadVarint());
  m.min_id_value = in.ReadSignedVarint();
  m.max_value = in.ReadSignedVarint();
  return m;
}

void EncodeMessage(const KloCommitteeProgram::Message& m,
                   util::BitWriter& out) {
  using Tag = KloCommitteeProgram::Tag;
  out.Write(static_cast<std::uint64_t>(m.tag), 2);
  out.WriteVarint(static_cast<std::uint64_t>(m.leader));
  out.WriteSignedVarint(m.leader_value);
  out.WriteSignedVarint(m.max_value);
  switch (m.tag) {
    case Tag::kPoll:
      EncodeOptionalId(m.poll, out);
      break;
    case Tag::kInvite:
      EncodeOptionalId(m.invitee, out);
      break;
    case Tag::kVerify:
      EncodeOptionalId(m.committee, out);
      out.Write(m.flag ? 1 : 0, 1);
      break;
    case Tag::kSize:
      out.WriteVarint(static_cast<std::uint64_t>(m.size));
      break;
  }
}

KloCommitteeProgram::Message DecodeCommitteeMessage(util::BitReader& in) {
  using Tag = KloCommitteeProgram::Tag;
  KloCommitteeProgram::Message m;
  m.tag = static_cast<Tag>(in.Read(2));
  m.leader = static_cast<NodeId>(in.ReadVarint());
  m.leader_value = in.ReadSignedVarint();
  m.max_value = in.ReadSignedVarint();
  switch (m.tag) {
    case Tag::kPoll:
      m.poll = DecodeOptionalId(in);
      break;
    case Tag::kInvite:
      m.invitee = DecodeOptionalId(in);
      break;
    case Tag::kVerify:
      m.committee = DecodeOptionalId(in);
      m.flag = in.Read(1) != 0;
      break;
    case Tag::kSize:
      m.size = static_cast<std::int64_t>(in.ReadVarint());
      break;
  }
  return m;
}

void EncodeMessage(const HjswyProgram::Message& m, util::BitWriter& out) {
  out.WriteVarint(static_cast<std::uint64_t>(m.coord_base));
  for (std::int32_t i = 0; i < m.num_coords; ++i) {
    out.Write(m.coords[static_cast<std::size_t>(i)], 32);
  }
  out.Write(m.has_sum ? 1 : 0, 1);
  if (m.has_sum) {
    for (std::int32_t i = 0; i < m.num_coords; ++i) {
      out.Write(m.sum_coords[static_cast<std::size_t>(i)], 32);
    }
  }
  out.WriteVarint(static_cast<std::uint64_t>(m.min_id));
  out.WriteSignedVarint(m.min_id_value);
  out.WriteSignedVarint(m.max_value);
  out.Write(m.fingerprint, 48);
  out.Write(m.alarm ? 1 : 0, 1);
  if (m.census != nullptr) EncodeIdSet(*m.census, out);
}

HjswyProgram::Message DecodeHjswyMessage(util::BitReader& in, int num_coords,
                                         bool has_census) {
  SDN_CHECK(num_coords >= 0 && num_coords <= HjswyProgram::kMaxCoordsPerMsg);
  HjswyProgram::Message m;
  m.coord_base = static_cast<std::int32_t>(in.ReadVarint());
  m.num_coords = num_coords;
  for (int i = 0; i < num_coords; ++i) {
    m.coords[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>(in.Read(32));
  }
  m.has_sum = in.Read(1) != 0;
  if (m.has_sum) {
    for (int i = 0; i < num_coords; ++i) {
      m.sum_coords[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(in.Read(32));
    }
  }
  m.min_id = static_cast<NodeId>(in.ReadVarint());
  m.min_id_value = in.ReadSignedVarint();
  m.max_value = in.ReadSignedVarint();
  m.fingerprint = in.Read(48);
  m.alarm = in.Read(1) != 0;
  if (has_census) {
    m.census = std::make_shared<const IdSet>(DecodeIdSet(in));
  }
  return m;
}

}  // namespace sdn::algo
