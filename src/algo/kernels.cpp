#include "algo/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#define SDN_KERNELS_X86 1
#else
#define SDN_KERNELS_X86 0
#endif

namespace sdn::algo::kernels {

namespace {

// ---------------------------------------------------------------------------
// Scalar tier — the reference semantics every wider tier must reproduce
// bit for bit. MinU32 is exact unsigned min (not just on the float32 bit
// domain), and LtMaskF64 is the IEEE strict-less of the scalar MergeBlock
// loop, so equivalence holds on every input the callers are allowed to pass.
// ---------------------------------------------------------------------------

void MinU32Scalar(std::uint32_t* acc, const std::uint32_t* vals,
                  std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    acc[i] = std::min(acc[i], vals[i]);
  }
}

std::uint64_t LtMaskF64Scalar(const double* vals, const double* mins,
                              std::size_t len) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < len; ++i) {
    mask |= static_cast<std::uint64_t>(vals[i] < mins[i]) << i;
  }
  return mask;
}

#if SDN_KERNELS_X86

// ---------------------------------------------------------------------------
// SSE2 tier. x86-64 baseline — no cpuid gate needed. SSE2 has no unsigned
// 32-bit min, so the compare flips the sign bit on both sides (unsigned
// order == signed order after the flip) and blends with and/andnot/or.
// ---------------------------------------------------------------------------

void MinU32Sse2(std::uint32_t* acc, const std::uint32_t* vals,
                std::size_t len) {
  const __m128i sign = _mm_set1_epi32(static_cast<int>(0x80000000u));
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    // gt = (acc > vals) unsigned: take vals where set, acc elsewhere.
    const __m128i gt =
        _mm_cmpgt_epi32(_mm_xor_si128(a, sign), _mm_xor_si128(v, sign));
    const __m128i m =
        _mm_or_si128(_mm_and_si128(gt, v), _mm_andnot_si128(gt, a));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), m);
  }
  for (; i < len; ++i) acc[i] = std::min(acc[i], vals[i]);
}

std::uint64_t LtMaskF64Sse2(const double* vals, const double* mins,
                            std::size_t len) {
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + 2 <= len; i += 2) {
    const __m128d v = _mm_loadu_pd(vals + i);
    const __m128d m = _mm_loadu_pd(mins + i);
    mask |= static_cast<std::uint64_t>(_mm_movemask_pd(_mm_cmplt_pd(v, m)))
            << i;
  }
  for (; i < len; ++i) {
    mask |= static_cast<std::uint64_t>(vals[i] < mins[i]) << i;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// AVX2 tier (gated on __builtin_cpu_supports). vpminud is a true unsigned
// min; the 128-bit SSE4.1 form handles the 4..7-lane middle so the common
// coords_per_msg=4 block is one load + one pminud + one store.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void MinU32Avx2(std::uint32_t* acc,
                                                const std::uint32_t* vals,
                                                std::size_t len) {
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_min_epu32(a, v));
  }
  if (i + 4 <= len) {
    const __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), _mm_min_epu32(a, v));
    i += 4;
  }
  for (; i < len; ++i) acc[i] = std::min(acc[i], vals[i]);
}

__attribute__((target("avx2"))) std::uint64_t LtMaskF64Avx2(
    const double* vals, const double* mins, std::size_t len) {
  std::uint64_t mask = 0;
  std::size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    const __m256d v = _mm256_loadu_pd(vals + i);
    const __m256d m = _mm256_loadu_pd(mins + i);
    mask |= static_cast<std::uint64_t>(
                _mm256_movemask_pd(_mm256_cmp_pd(v, m, _CMP_LT_OQ)))
            << i;
  }
  for (; i < len; ++i) {
    mask |= static_cast<std::uint64_t>(vals[i] < mins[i]) << i;
  }
  return mask;
}

#endif  // SDN_KERNELS_X86

using LtMaskF64Fn = std::uint64_t (*)(const double*, const double*,
                                      std::size_t);

// Dispatch state. constinit scalar defaults mean any call that races static
// initialization (or runs on a non-x86 build) gets correct-if-slow scalar
// code; the startup initializer below upgrades to the widest permitted tier.
constinit std::atomic<MinU32Fn> g_min_u32{&MinU32Scalar};
constinit std::atomic<LtMaskF64Fn> g_lt_mask_f64{&LtMaskF64Scalar};
constinit std::atomic<int> g_active_isa{static_cast<int>(Isa::kScalar)};

void SetIsaUnchecked(Isa isa) {
  switch (isa) {
#if SDN_KERNELS_X86
    case Isa::kAvx2:
      g_min_u32.store(&MinU32Avx2, std::memory_order_relaxed);
      g_lt_mask_f64.store(&LtMaskF64Avx2, std::memory_order_relaxed);
      break;
    case Isa::kSse2:
      g_min_u32.store(&MinU32Sse2, std::memory_order_relaxed);
      g_lt_mask_f64.store(&LtMaskF64Sse2, std::memory_order_relaxed);
      break;
#endif
    default:
      g_min_u32.store(&MinU32Scalar, std::memory_order_relaxed);
      g_lt_mask_f64.store(&LtMaskF64Scalar, std::memory_order_relaxed);
      isa = Isa::kScalar;
      break;
  }
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
}

/// SDN_SIMD caps or forces the startup tier; unknown values are ignored
/// (the probe result stands) rather than aborting a run over a typo.
Isa InitialIsa() {
  Isa isa = BestSupportedIsa();
  if (const char* env = std::getenv("SDN_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      isa = Isa::kScalar;
    } else if (std::strcmp(env, "sse2") == 0 &&
               BestSupportedIsa() >= Isa::kSse2) {
      isa = Isa::kSse2;
    } else if (std::strcmp(env, "avx2") == 0 &&
               BestSupportedIsa() >= Isa::kAvx2) {
      isa = Isa::kAvx2;
    }
  }
  return isa;
}

const bool g_dispatch_initialized = [] {
  SetIsaUnchecked(InitialIsa());
  return true;
}();

}  // namespace

const char* ToString(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa BestSupportedIsa() {
#if SDN_KERNELS_X86
  return __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kSse2;
#else
  return Isa::kScalar;
#endif
}

Isa ActiveIsa() {
  return static_cast<Isa>(g_active_isa.load(std::memory_order_relaxed));
}

void SetIsa(Isa isa) {
  SDN_CHECK_MSG(isa <= BestSupportedIsa(),
                "SIMD tier " << ToString(isa)
                             << " not supported on this CPU (best: "
                             << ToString(BestSupportedIsa()) << ")");
  SetIsaUnchecked(isa);
}

void MinU32(std::uint32_t* acc, const std::uint32_t* vals, std::size_t len) {
  g_min_u32.load(std::memory_order_relaxed)(acc, vals, len);
}

MinU32Fn MinU32Kernel() { return g_min_u32.load(std::memory_order_relaxed); }

std::uint64_t LtMaskF64(const double* vals, const double* mins,
                        std::size_t len) {
  SDN_CHECK(len <= 64);
  return g_lt_mask_f64.load(std::memory_order_relaxed)(vals, mins, len);
}

}  // namespace sdn::algo::kernels
