// Shared vocabulary for the algorithm node programs.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "graph/graph.hpp"
#include "net/program.hpp"
#include "util/bitio.hpp"

namespace sdn::algo {

using graph::NodeId;
using net::Inbox;
using net::Round;

/// Input value type used by Max/Consensus (64-bit is enough for the model;
/// inputs are O(log N)-bit in the literature).
using Value = std::int64_t;

constexpr Value kValueMin = std::numeric_limits<Value>::min();

/// Wire size of one id field: varint bits of the id (ids are < N so this is
/// O(log N)).
std::size_t IdBits(NodeId id);

/// Wire size of a signed value field.
std::size_t ValueBits(Value v);

/// Common algorithm identification for report rows.
struct AlgoInfo {
  std::string name;
  bool randomized = false;
  bool needs_n = false;       // requires a priori knowledge of N
  bool unbounded_msgs = false;  // requires the unbounded bandwidth regime
};

}  // namespace sdn::algo
