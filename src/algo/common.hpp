// Shared vocabulary for the algorithm node programs.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "graph/graph.hpp"
#include "net/program.hpp"
#include "util/bitio.hpp"

namespace sdn::algo {

using graph::NodeId;
using net::Inbox;
using net::Round;

/// Input value type used by Max/Consensus (64-bit is enough for the model;
/// inputs are O(log N)-bit in the literature).
using Value = std::int64_t;

constexpr Value kValueMin = std::numeric_limits<Value>::min();

/// Wire size of one id field: varint bits of the id (ids are < N so this is
/// O(log N)).
std::size_t IdBits(NodeId id);

/// Wire size of a signed value field.
std::size_t ValueBits(Value v);

/// O(1)-amortized locator state for doubling-phase schedules.
///
/// Every protocol here runs phases of a doubling parameter (hjswy's horizon,
/// the census/committee guess k) whose lengths are a pure function of that
/// parameter. Scanning from phase 0 on every Locate(r) call costs
/// O(#phases) per node per round; a PhaseCursor instead remembers the phase
/// containing the last query and advances forward as r grows (rounds are
/// monotone inside a run), making the common case one range compare. A
/// query before `start` (tests probing arbitrary rounds) resets the cursor
/// and rescans — correctness never depends on monotonicity. Programs own
/// the advancement loop (their length formulas differ); the cursor only
/// standardizes the cached state.
struct PhaseCursor {
  std::int64_t phase = 0;
  std::int64_t param = 0;   ///< doubling parameter (horizon / guess k)
  std::int64_t start = 0;   ///< 0-based offset of the phase's first round
  std::int64_t length = 0;  ///< rounds in this phase; 0 = uninitialized
  std::int64_t aux = 0;     ///< program-specific cached component
};

/// Common algorithm identification for report rows.
struct AlgoInfo {
  std::string name;
  bool randomized = false;
  bool needs_n = false;       // requires a priori knowledge of N
  bool unbounded_msgs = false;  // requires the unbounded bandwidth regime
};

}  // namespace sdn::algo
