// Wire codecs for every message type.
//
// The engine charges algorithms via their static MessageBits; these codecs
// implement the actual bit layouts and exist to *prove* that accounting is
// honest: tests encode random messages and assert (a) the bit count equals
// MessageBits exactly, and (b) decode(encode(m)) == m. No simulation hot
// path serializes — messages travel as typed values — but any claim about
// O(log N)-bit messages in the benches is backed by a real encoding.
//
// Fields that both endpoints can derive from the deterministic global
// schedule are not on the wire and therefore not charged: the hjswy
// coordinate count (from L, coords_per_msg and coord_base) and the census
// presence flag (from the exact_census mode); decoders take them as
// parameters.
#pragma once

#include "algo/census.hpp"
#include "algo/hjswy.hpp"
#include "algo/klo_committee.hpp"
#include "util/bitio.hpp"

namespace sdn::algo {

void EncodeMessage(const CensusProgram::Message& m, util::BitWriter& out);
CensusProgram::Message DecodeCensusMessage(util::BitReader& in);

void EncodeMessage(const KloCommitteeProgram::Message& m,
                   util::BitWriter& out);
KloCommitteeProgram::Message DecodeCommitteeMessage(util::BitReader& in);

void EncodeMessage(const HjswyProgram::Message& m, util::BitWriter& out);
/// `num_coords` and `has_census` come from the protocol parameters (see
/// file comment).
HjswyProgram::Message DecodeHjswyMessage(util::BitReader& in, int num_coords,
                                         bool has_census);

/// Canonical IdSet layout: varint(count) + 6-bit id width + fixed-width ids.
/// Matches IdSet::EncodedBits exactly.
void EncodeIdSet(const IdSet& set, util::BitWriter& out);
IdSet DecodeIdSet(util::BitReader& in);

}  // namespace sdn::algo
