// Known-N flooding baselines.
//
// The textbook O(N) algorithms in always-connected dynamic networks: with N
// known, re-broadcasting the running extreme for N-1 rounds is guaranteed to
// reach everyone (1-interval connectivity moves the frontier by >= 1 node per
// round). These are the linear yardsticks the sublinear claim is measured
// against, and the correctness oracles in tests.
#pragma once

#include <optional>
#include <span>

#include "algo/common.hpp"

namespace sdn::algo {

/// Max with known N: decide max input after N-1 rounds. Deterministic.
class FloodMaxKnownN {
 public:
  struct Message {
    Value value = 0;
  };
  using Output = Value;

  FloodMaxKnownN(NodeId id, NodeId n, Value input);

  std::optional<Message> OnSend(Round r);
  /// Direct-send path (net::DirectSendProgram): overwrites the whole slot,
  /// reads only `best_` — trivially safe to call speculatively.
  bool OnSendInto(Round r, Message& m);
  void OnReceive(Round r, Inbox<Message> inbox);
  [[nodiscard]] bool HasDecided() const { return decided_.has_value(); }
  [[nodiscard]] std::optional<Output> output() const { return decided_; }
  [[nodiscard]] double PublicState() const {
    return static_cast<double>(best_);
  }
  static std::size_t MessageBits(const Message& m) {
    return ValueBits(m.value);
  }

  static AlgoInfo Info() { return {"flood-max(knownN)", false, true, false}; }

  /// Flight-recorder phase sample (net::ObservableProgram): a single
  /// "flood" segment until decision; work counts max improvements.
  [[nodiscard]] net::ProgramPhase ObsPhase() const {
    return {.label = decided_.has_value() ? "decided" : "flood",
            .index = 0,
            .work = obs_work_};
  }

 private:
  NodeId n_;
  Value best_;
  std::int64_t obs_work_ = 0;
  std::optional<Value> decided_;
};

/// Consensus with known N: flood (min id, its input); after N-1 rounds every
/// node has the global minimum id and decides its value. Deterministic;
/// satisfies agreement + validity.
class ConsensusFloodKnownN {
 public:
  struct Message {
    NodeId leader = 0;
    Value value = 0;
  };
  using Output = Value;

  ConsensusFloodKnownN(NodeId id, NodeId n, Value input);

  std::optional<Message> OnSend(Round r);
  /// Direct-send path (net::DirectSendProgram): overwrites the whole slot,
  /// reads only the leader pair — trivially safe to call speculatively.
  bool OnSendInto(Round r, Message& m);
  void OnReceive(Round r, Inbox<Message> inbox);
  [[nodiscard]] bool HasDecided() const { return decided_.has_value(); }
  [[nodiscard]] std::optional<Output> output() const { return decided_; }
  [[nodiscard]] double PublicState() const {
    return static_cast<double>(leader_);
  }
  static std::size_t MessageBits(const Message& m) {
    return IdBits(m.leader) + ValueBits(m.value);
  }

  static AlgoInfo Info() {
    return {"flood-consensus(knownN)", false, true, false};
  }

  /// Flight-recorder phase sample (net::ObservableProgram): a single
  /// "flood" segment until decision; work counts leader improvements.
  [[nodiscard]] net::ProgramPhase ObsPhase() const {
    return {.label = decided_.has_value() ? "decided" : "flood",
            .index = 0,
            .work = obs_work_};
  }

 private:
  NodeId n_;
  NodeId leader_;
  Value leader_value_;
  std::int64_t obs_work_ = 0;
  std::optional<Value> decided_;
};

}  // namespace sdn::algo
