#include "adversary/spine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

namespace {

/// Applies a uniform random relabeling to g's nodes.
graph::Graph Relabel(const graph::Graph& g, util::Rng& rng) {
  const graph::NodeId n = g.num_nodes();
  std::vector<graph::NodeId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), graph::NodeId{0});
  rng.Shuffle(std::span<graph::NodeId>(perm));
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const graph::Edge& e : g.Edges()) {
    edges.emplace_back(perm[static_cast<std::size_t>(e.u)],
                       perm[static_cast<std::size_t>(e.v)]);
  }
  return graph::Graph(n, edges);
}

graph::Graph MakePathOfCliques(graph::NodeId n, graph::NodeId clique_size) {
  SDN_CHECK(clique_size >= 1);
  const graph::NodeId size = std::min(clique_size, n);
  const graph::NodeId full = n / size;
  const graph::NodeId remainder = n - full * size;
  graph::Graph base = graph::PathOfCliques(std::max<graph::NodeId>(full, 1), size);
  if (remainder == 0 && full >= 1) return base;
  // Absorb leftover nodes into a ragged final clique chained to the rest.
  std::vector<graph::Edge> edges(base.Edges().begin(), base.Edges().end());
  const graph::NodeId base_n = base.num_nodes();
  for (graph::NodeId u = base_n; u < n; ++u) {
    for (graph::NodeId v = std::max<graph::NodeId>(base_n, u - size); v < u; ++v) {
      edges.emplace_back(u, v);
    }
    if (u == base_n && base_n > 0) edges.emplace_back(u, base_n - 1);
  }
  return graph::Graph(n, edges);
}

}  // namespace

std::string SpineSpec::Name() const {
  std::ostringstream os;
  switch (kind) {
    case SpineKind::kPath:
      os << "path";
      break;
    case SpineKind::kStar:
      os << "star";
      break;
    case SpineKind::kBinaryTree:
      os << "btree";
      break;
    case SpineKind::kRandomTree:
      os << "rtree";
      break;
    case SpineKind::kGnp:
      os << "gnp";
      if (gnp_p > 0.0) os << "(p=" << gnp_p << ")";
      break;
    case SpineKind::kExpander:
      os << "expander(c=" << expander_cycles << ")";
      break;
    case SpineKind::kPathOfCliques:
      os << "cliques(m=" << clique_size << ")";
      break;
  }
  return os.str();
}

graph::Graph MakeSpine(const SpineSpec& spec, graph::NodeId n, util::Rng& rng) {
  SDN_CHECK(n >= 1);
  switch (spec.kind) {
    case SpineKind::kPath:
      return Relabel(graph::Path(n), rng);
    case SpineKind::kStar:
      return Relabel(graph::Star(n), rng);
    case SpineKind::kBinaryTree:
      return Relabel(graph::BinaryTree(n), rng);
    case SpineKind::kRandomTree:
      return graph::RandomTree(n, rng);
    case SpineKind::kGnp: {
      const double p = spec.gnp_p > 0.0
                           ? spec.gnp_p
                           : std::min(1.0, 2.0 * std::log(static_cast<double>(
                                                std::max<graph::NodeId>(n, 2))) /
                                               static_cast<double>(n));
      return graph::ConnectedGnp(n, p, rng);
    }
    case SpineKind::kExpander:
      if (n < 3) return graph::Path(n);
      return graph::RandomExpander(n, spec.expander_cycles, rng);
    case SpineKind::kPathOfCliques:
      return Relabel(MakePathOfCliques(n, spec.clique_size), rng);
  }
  SDN_CHECK_MSG(false, "unknown spine kind");
  return graph::Graph(n);
}

std::vector<graph::Edge> MakeSpineEdges(const SpineSpec& spec, graph::NodeId n,
                                        util::Rng& rng) {
  SDN_CHECK(n >= 1);
  if (spec.kind == SpineKind::kGnp) {
    const double p = spec.gnp_p > 0.0
                         ? spec.gnp_p
                         : std::min(1.0, 2.0 * std::log(static_cast<double>(
                                              std::max<graph::NodeId>(n, 2))) /
                                             static_cast<double>(n));
    return graph::ConnectedGnpEdges(n, p, rng);
  }
  const graph::Graph g = MakeSpine(spec, n, rng);
  return {g.Edges().begin(), g.Edges().end()};
}

namespace {

/// Everything that determines a spine's edge list. The rng seed captures the
/// full generator state because PooledSpineEdges requires an undrawn rng.
struct SpineKey {
  std::uint64_t seed = 0;
  graph::NodeId n = 0;
  SpineKind kind = SpineKind::kExpander;
  double gnp_p = 0.0;
  int expander_cycles = 0;
  graph::NodeId clique_size = 0;

  friend bool operator==(const SpineKey&, const SpineKey&) = default;
};

struct SpineKeyHash {
  std::size_t operator()(const SpineKey& k) const {
    std::uint64_t h = k.seed;
    const auto mix = [&h](std::uint64_t x) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(k.n));
    mix(static_cast<std::uint64_t>(k.kind));
    mix(std::bit_cast<std::uint64_t>(k.gnp_p));
    mix(static_cast<std::uint64_t>(k.expander_cycles));
    mix(static_cast<std::uint64_t>(k.clique_size));
    return static_cast<std::size_t>(h);
  }
};

using SpinePtr = std::shared_ptr<const std::vector<graph::Edge>>;

std::mutex g_spine_pool_mutex;
std::unordered_map<SpineKey, SpinePtr, SpineKeyHash>& SpinePool() {
  static auto* pool = new std::unordered_map<SpineKey, SpinePtr, SpineKeyHash>;
  return *pool;
}
std::int64_t g_spine_pool_edges = 0;

/// Memory bound on the pool: ~32 MB of edges. Eviction simply clears the
/// map — handles already returned stay alive through their shared_ptr, and
/// pool contents never affect results (only whether they are recomputed).
constexpr std::int64_t kSpinePoolMaxEdges = std::int64_t{4} << 20;

}  // namespace

SpinePtr PooledSpineEdges(const SpineSpec& spec, graph::NodeId n,
                          util::Rng& rng) {
  const SpineKey key{rng.seed(),          n,
                     spec.kind,           spec.gnp_p,
                     spec.expander_cycles, spec.clique_size};
  {
    const std::lock_guard<std::mutex> lock(g_spine_pool_mutex);
    auto& pool = SpinePool();
    if (const auto it = pool.find(key); it != pool.end()) return it->second;
  }
  // Generate outside the lock: concurrent misses may duplicate work, never
  // results (same key -> same list), and the second insert is a no-op.
  auto made =
      std::make_shared<const std::vector<graph::Edge>>(MakeSpineEdges(spec, n, rng));
  {
    const std::lock_guard<std::mutex> lock(g_spine_pool_mutex);
    auto& pool = SpinePool();
    const auto added = static_cast<std::int64_t>(made->size());
    if (g_spine_pool_edges + added > kSpinePoolMaxEdges) {
      pool.clear();
      g_spine_pool_edges = 0;
    }
    if (pool.emplace(key, made).second) g_spine_pool_edges += added;
  }
  return made;
}

}  // namespace sdn::adversary
