#include "adversary/spine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

namespace {

/// Applies a uniform random relabeling to g's nodes.
graph::Graph Relabel(const graph::Graph& g, util::Rng& rng) {
  const graph::NodeId n = g.num_nodes();
  std::vector<graph::NodeId> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), graph::NodeId{0});
  rng.Shuffle(std::span<graph::NodeId>(perm));
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  for (const graph::Edge& e : g.Edges()) {
    edges.emplace_back(perm[static_cast<std::size_t>(e.u)],
                       perm[static_cast<std::size_t>(e.v)]);
  }
  return graph::Graph(n, edges);
}

graph::Graph MakePathOfCliques(graph::NodeId n, graph::NodeId clique_size) {
  SDN_CHECK(clique_size >= 1);
  const graph::NodeId size = std::min(clique_size, n);
  const graph::NodeId full = n / size;
  const graph::NodeId remainder = n - full * size;
  graph::Graph base = graph::PathOfCliques(std::max<graph::NodeId>(full, 1), size);
  if (remainder == 0 && full >= 1) return base;
  // Absorb leftover nodes into a ragged final clique chained to the rest.
  std::vector<graph::Edge> edges(base.Edges().begin(), base.Edges().end());
  const graph::NodeId base_n = base.num_nodes();
  for (graph::NodeId u = base_n; u < n; ++u) {
    for (graph::NodeId v = std::max<graph::NodeId>(base_n, u - size); v < u; ++v) {
      edges.emplace_back(u, v);
    }
    if (u == base_n && base_n > 0) edges.emplace_back(u, base_n - 1);
  }
  return graph::Graph(n, edges);
}

}  // namespace

std::string SpineSpec::Name() const {
  std::ostringstream os;
  switch (kind) {
    case SpineKind::kPath:
      os << "path";
      break;
    case SpineKind::kStar:
      os << "star";
      break;
    case SpineKind::kBinaryTree:
      os << "btree";
      break;
    case SpineKind::kRandomTree:
      os << "rtree";
      break;
    case SpineKind::kGnp:
      os << "gnp";
      if (gnp_p > 0.0) os << "(p=" << gnp_p << ")";
      break;
    case SpineKind::kExpander:
      os << "expander(c=" << expander_cycles << ")";
      break;
    case SpineKind::kPathOfCliques:
      os << "cliques(m=" << clique_size << ")";
      break;
  }
  return os.str();
}

graph::Graph MakeSpine(const SpineSpec& spec, graph::NodeId n, util::Rng& rng) {
  SDN_CHECK(n >= 1);
  switch (spec.kind) {
    case SpineKind::kPath:
      return Relabel(graph::Path(n), rng);
    case SpineKind::kStar:
      return Relabel(graph::Star(n), rng);
    case SpineKind::kBinaryTree:
      return Relabel(graph::BinaryTree(n), rng);
    case SpineKind::kRandomTree:
      return graph::RandomTree(n, rng);
    case SpineKind::kGnp: {
      const double p = spec.gnp_p > 0.0
                           ? spec.gnp_p
                           : std::min(1.0, 2.0 * std::log(static_cast<double>(
                                                std::max<graph::NodeId>(n, 2))) /
                                               static_cast<double>(n));
      return graph::ConnectedGnp(n, p, rng);
    }
    case SpineKind::kExpander:
      if (n < 3) return graph::Path(n);
      return graph::RandomExpander(n, spec.expander_cycles, rng);
    case SpineKind::kPathOfCliques:
      return Relabel(MakePathOfCliques(n, spec.clique_size), rng);
  }
  SDN_CHECK_MSG(false, "unknown spine kind");
  return graph::Graph(n);
}

}  // namespace sdn::adversary
