// Adaptive adversary.
//
// Reads the algorithm's published per-node state at each era boundary and
// rebuilds its spine as a path sorted by that state: nodes that have learned
// the most are packed next to each other at one end, so each window moves
// information into the uninformed mass as slowly as the promise allows.
// This is the simulation-level analogue of the "spooling" arguments behind
// the Ω(N) lower-bound constructions, and the stress test for the hjswy
// verification machinery (experiment F7).
//
// Era/overlap structure is the same as StableSpineAdversary, so the
// T-interval promise holds by construction.
#pragma once

#include <cstdint>
#include <optional>

#include "net/adversary.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

class AdaptiveSortPathAdversary final : public net::Adversary {
 public:
  /// `descending`: most-informed nodes at the low end of the path (default)
  /// — ties broken uniformly at random.
  AdaptiveSortPathAdversary(graph::NodeId n, int T, std::uint64_t seed,
                            bool descending = true);

  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  [[nodiscard]] std::string name() const override;
  /// Samples PublicState at era boundaries — topology prefetch would let it
  /// observe mid-round state, so the engine must call it synchronously.
  [[nodiscard]] bool oblivious() const override { return false; }

 private:
  graph::Graph BuildSortedPath(const net::AdversaryView& view);

  graph::NodeId n_;
  int t_;
  bool descending_;
  util::Rng rng_;
  std::int64_t era_length_;
  std::int64_t current_era_ = -1;
  std::optional<graph::Graph> current_spine_;
  std::optional<graph::Graph> previous_spine_;
};

}  // namespace sdn::adversary
