// Adaptive adversary.
//
// Reads the algorithm's published per-node state at each era boundary and
// rebuilds its spine as a path sorted by that state: nodes that have learned
// the most are packed next to each other at one end, so each window moves
// information into the uninformed mass as slowly as the promise allows.
// This is the simulation-level analogue of the "spooling" arguments behind
// the Ω(N) lower-bound constructions, and the stress test for the hjswy
// verification machinery (experiment F7).
//
// Era/overlap structure is the same as StableSpineAdversary, so the
// T-interval promise holds by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "net/adversary.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

class AdaptiveSortPathAdversary final : public net::Adversary {
 public:
  /// `descending`: most-informed nodes at the low end of the path (default)
  /// — ties broken uniformly at random.
  AdaptiveSortPathAdversary(graph::NodeId n, int T, std::uint64_t seed,
                            bool descending = true);

  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  /// Native delta: round edges assembled in a reused buffer from the cached
  /// sorted spine edge lists and diffed against `prev`. Reads PublicState
  /// through the same call sequence as TopologyFor (same RNG stream).
  void DeltaFor(std::int64_t round, const net::AdversaryView& view,
                const graph::Graph& prev, graph::TopologyDelta& out) override;
  /// Fastest path: the full round list straight into the caller's buffer —
  /// no Graph build, no diff. Adaptive topologies cannot be prefetched, so
  /// this is the one lever that shortens their critical path.
  bool RoundEdgesInto(std::int64_t round, const net::AdversaryView& view,
                      std::vector<graph::Edge>& out) override;
  [[nodiscard]] std::string name() const override;
  /// Samples PublicState at era boundaries — topology prefetch would let it
  /// observe mid-round state, so the engine must call it synchronously.
  [[nodiscard]] bool oblivious() const override { return false; }

 private:
  /// Sorted edge list of a fresh state-sorted path.
  std::vector<graph::Edge> BuildSortedPath(const net::AdversaryView& view);
  /// Advances the era state machine and fills `out` with round's sorted,
  /// deduplicated edge list (spine, plus the previous era's spine during
  /// the first T-1 rounds of an era).
  void BuildRoundEdges(std::int64_t round, const net::AdversaryView& view,
                       std::vector<graph::Edge>& out);

  graph::NodeId n_;
  int t_;
  bool descending_;
  util::Rng rng_;
  std::int64_t era_length_;
  std::int64_t current_era_ = -1;
  std::vector<graph::Edge> current_spine_;   // sorted
  std::vector<graph::Edge> previous_spine_;  // sorted; meaningful era >= 1
  std::vector<graph::Edge> round_edges_;     // reused assembly buffer
};

}  // namespace sdn::adversary
