#include "adversary/stable_spine.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "graph/delta.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

StableSpineAdversary::StableSpineAdversary(graph::NodeId n, int T,
                                           StableSpineOptions options,
                                           std::uint64_t seed)
    : n_(n),
      t_(T),
      options_(options),
      era_length_(options.era_length > 0 ? options.era_length : T),
      seed_rng_(seed),
      volatile_rng_(seed_rng_.Fork(0xed9e5ULL)) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(T >= 1);
  // The T-1 round overlap must fit inside one era; otherwise a window can
  // straddle three spines while only one previous spine is retained.
  SDN_CHECK_MSG(era_length_ >= std::max<std::int64_t>(1, T - 1),
                "era_length must be >= T-1 (got " << era_length_ << " for T="
                                                  << T << ")");
}

void StableSpineAdversary::AdvanceToEra(std::int64_t era) {
  SDN_CHECK(era >= 0);
  SDN_CHECK_MSG(era >= current_era_,
                "StableSpineAdversary rounds must be non-decreasing");
  while (current_era_ < era) {
    ++current_era_;
    has_previous_ = current_era_ >= 1;
    previous_spine_ = std::move(current_spine_);
    util::Rng era_rng =
        seed_rng_.Fork(static_cast<std::uint64_t>(current_era_) + 1);
    current_spine_ = PooledSpineEdges(options_.spine, n_, era_rng);
  }
}

graph::Graph StableSpineAdversary::SpineForRound(std::int64_t round) {
  SDN_CHECK(round >= 1);
  AdvanceToEra((round - 1) / era_length_);
  std::vector<graph::Edge> copy = *current_spine_;
  return graph::Graph(n_, std::move(copy), graph::Graph::SortedEdges{});
}

const std::vector<graph::Edge>& StableSpineAdversary::OverlapBase() {
  if (overlap_base_era_ != current_era_) {
    overlap_base_era_ = current_era_;
    graph::UnionSorted(*current_spine_, *previous_spine_, overlap_base_);
  }
  return overlap_base_;
}

void StableSpineAdversary::BuildRoundEdges(std::int64_t round,
                                           std::vector<graph::Edge>& out) {
  SDN_CHECK(round >= 1);
  const std::int64_t era = (round - 1) / era_length_;
  const std::int64_t offset = (round - 1) % era_length_;
  AdvanceToEra(era);

  // Overlap: previous era's spine persists through the first T-1 rounds of
  // this era so sliding T-windows keep a common connected spanning subgraph.
  const bool overlap = offset < t_ - 1 && has_previous_;
  const std::int64_t volatile_count = n_ >= 2 ? options_.volatile_edges : 0;

  // This runs once per simulated round: the base (spine, or the per-era
  // cached spine union during overlap) is already sorted-unique, so the
  // round list is one block-copy merge of the few volatile edges into the
  // base — runs between volatile insertion points are copied wholesale.
  const std::vector<graph::Edge>& base =
      overlap ? OverlapBase() : *current_spine_;
  out.clear();
  out.reserve(base.size() + static_cast<std::size_t>(volatile_count));
  if (volatile_count > 0) {
    // Draw the volatile edges as packed (u<<32)|v keys — lexicographic Edge
    // order and key order coincide for non-negative node ids, and sorting
    // u64 keys halves the compare work of sorting two-field Edges.
    fresh_keys_.clear();
    fresh_keys_.reserve(static_cast<std::size_t>(volatile_count));
    for (std::int64_t i = 0; i < volatile_count; ++i) {
      const auto u = static_cast<graph::NodeId>(
          volatile_rng_.UniformU64(static_cast<std::uint64_t>(n_)));
      auto v = static_cast<graph::NodeId>(
          volatile_rng_.UniformU64(static_cast<std::uint64_t>(n_) - 1));
      if (v >= u) ++v;
      const auto lo = static_cast<std::uint32_t>(std::min(u, v));
      const auto hi = static_cast<std::uint32_t>(std::max(u, v));
      fresh_keys_.push_back((static_cast<std::uint64_t>(lo) << 32) | hi);
    }
    std::sort(fresh_keys_.begin(), fresh_keys_.end());
    fresh_edges_.clear();
    fresh_edges_.reserve(fresh_keys_.size());
    for (const std::uint64_t k : fresh_keys_) {
      fresh_edges_.emplace_back(static_cast<graph::NodeId>(k >> 32),
                                static_cast<graph::NodeId>(k & 0xffffffffULL));
    }
    // Sorted-unique: the composition claim below exposes this span, and
    // the merge's own duplicate check makes the dedup output-invariant.
    fresh_edges_.erase(std::unique(fresh_edges_.begin(), fresh_edges_.end()),
                       fresh_edges_.end());
  }
  const graph::Edge* b = base.data();
  const graph::Edge* const be = b + base.size();
  for (const graph::Edge& f : fresh_edges_) {
    // Galloping run search: runs between volatile insertion points average
    // |base|/|volatile| elements, so probing 1,2,4,... from the cursor stays
    // in the cache lines the block copy is about to stream anyway — a
    // binary search over the whole remaining range touches cold memory.
    const graph::Edge* run_end = b;
    if (b != be && *b < f) {
      std::size_t hi = 1;
      const auto rem = static_cast<std::size_t>(be - b);
      while (hi < rem && b[hi] < f) hi <<= 1;
      run_end = std::lower_bound(b + (hi >> 1) + 1,
                                 b + std::min(hi + 1, rem), f);
    }
    out.insert(out.end(), b, run_end);
    b = run_end;
    if (b != be && *b == f) continue;            // already a base edge
    if (!out.empty() && out.back() == f) continue;  // duplicate volatile draw
    out.push_back(f);
  }
  out.insert(out.end(), b, be);

  // Publish the round's structural claim (Composition): the round is
  // exactly core ∪ support ∪ fresh, with era numbers as pinned-set ids.
  // The shared spine-pool vectors double as the span-lifetime contract's
  // owners: a consumer pinning an era's spine (the checker's spine cache,
  // the async certification lane) holds the shared_ptr, so the set
  // survives era rotation with zero copies anywhere.
  comp_.core = {current_spine_->data(), current_spine_->size()};
  comp_.core_id = static_cast<std::uint64_t>(current_era_);
  comp_.core_owner = current_spine_;
  if (overlap) {
    comp_.support = {previous_spine_->data(), previous_spine_->size()};
    comp_.support_id = static_cast<std::uint64_t>(current_era_ - 1);
    comp_.support_owner = previous_spine_;
  } else {
    comp_.support = {};
    comp_.support_id = graph::RoundComposition::kNoId;
    comp_.support_owner.reset();
  }
  comp_.fresh = {fresh_edges_.data(), fresh_edges_.size()};
  comp_round_ = round;
}

graph::Graph StableSpineAdversary::TopologyFor(std::int64_t round,
                                               const net::AdversaryView&) {
  std::vector<graph::Edge> merged;
  BuildRoundEdges(round, merged);
  return graph::Graph(n_, std::move(merged), graph::Graph::SortedEdges{});
}

void StableSpineAdversary::DeltaFor(std::int64_t round,
                                    const net::AdversaryView&,
                                    const graph::Graph& prev,
                                    graph::TopologyDelta& out) {
  BuildRoundEdges(round, round_edges_);
  graph::DiffSorted(prev.Edges(), round_edges_, out);
}

bool StableSpineAdversary::RoundEdgesInto(std::int64_t round,
                                          const net::AdversaryView&,
                                          std::vector<graph::Edge>& out) {
  BuildRoundEdges(round, out);
  return true;
}

std::string StableSpineAdversary::name() const {
  std::ostringstream os;
  os << "spine[" << options_.spine.Name() << ",era=" << era_length_
     << ",vol=" << options_.volatile_edges << "]";
  return os.str();
}

}  // namespace sdn::adversary
