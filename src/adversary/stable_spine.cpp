#include "adversary/stable_spine.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace sdn::adversary {

StableSpineAdversary::StableSpineAdversary(graph::NodeId n, int T,
                                           StableSpineOptions options,
                                           std::uint64_t seed)
    : n_(n),
      t_(T),
      options_(options),
      era_length_(options.era_length > 0 ? options.era_length : T),
      seed_rng_(seed),
      volatile_rng_(seed_rng_.Fork(0xed9e5ULL)) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(T >= 1);
  // The T-1 round overlap must fit inside one era; otherwise a window can
  // straddle three spines while only one previous spine is retained.
  SDN_CHECK_MSG(era_length_ >= std::max<std::int64_t>(1, T - 1),
                "era_length must be >= T-1 (got " << era_length_ << " for T="
                                                  << T << ")");
}

const graph::Graph& StableSpineAdversary::SpineForEra(std::int64_t era) {
  SDN_CHECK(era >= 0);
  SDN_CHECK_MSG(era >= current_era_,
                "StableSpineAdversary rounds must be non-decreasing");
  while (current_era_ < era) {
    ++current_era_;
    previous_spine_ = std::move(current_spine_);
    util::Rng era_rng =
        seed_rng_.Fork(static_cast<std::uint64_t>(current_era_) + 1);
    current_spine_ = MakeSpine(options_.spine, n_, era_rng);
  }
  return *current_spine_;
}

const graph::Graph& StableSpineAdversary::SpineForRound(std::int64_t round) {
  SDN_CHECK(round >= 1);
  return SpineForEra((round - 1) / era_length_);
}

graph::Graph StableSpineAdversary::TopologyFor(std::int64_t round,
                                               const net::AdversaryView&) {
  SDN_CHECK(round >= 1);
  const std::int64_t era = (round - 1) / era_length_;
  const std::int64_t offset = (round - 1) % era_length_;
  graph::Graph g = SpineForEra(era);

  std::vector<graph::Edge> extra;
  // Overlap: previous era's spine persists through the first T-1 rounds of
  // this era so sliding T-windows keep a common connected spanning subgraph.
  if (offset < t_ - 1 && previous_spine_.has_value()) {
    const auto prev = previous_spine_->Edges();
    extra.insert(extra.end(), prev.begin(), prev.end());
  }
  for (std::int64_t i = 0; i < options_.volatile_edges && n_ >= 2; ++i) {
    const auto u = static_cast<graph::NodeId>(
        volatile_rng_.UniformU64(static_cast<std::uint64_t>(n_)));
    auto v = static_cast<graph::NodeId>(
        volatile_rng_.UniformU64(static_cast<std::uint64_t>(n_) - 1));
    if (v >= u) ++v;
    extra.emplace_back(u, v);
  }
  if (extra.empty()) return g;
  return g.WithEdges(extra);
}

std::string StableSpineAdversary::name() const {
  std::ostringstream os;
  os << "spine[" << options_.spine.Name() << ",era=" << era_length_
     << ",vol=" << options_.volatile_edges << "]";
  return os.str();
}

}  // namespace sdn::adversary
