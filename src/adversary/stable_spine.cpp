#include "adversary/stable_spine.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/check.hpp"

namespace sdn::adversary {

StableSpineAdversary::StableSpineAdversary(graph::NodeId n, int T,
                                           StableSpineOptions options,
                                           std::uint64_t seed)
    : n_(n),
      t_(T),
      options_(options),
      era_length_(options.era_length > 0 ? options.era_length : T),
      seed_rng_(seed),
      volatile_rng_(seed_rng_.Fork(0xed9e5ULL)) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(T >= 1);
  // The T-1 round overlap must fit inside one era; otherwise a window can
  // straddle three spines while only one previous spine is retained.
  SDN_CHECK_MSG(era_length_ >= std::max<std::int64_t>(1, T - 1),
                "era_length must be >= T-1 (got " << era_length_ << " for T="
                                                  << T << ")");
}

const graph::Graph& StableSpineAdversary::SpineForEra(std::int64_t era) {
  SDN_CHECK(era >= 0);
  SDN_CHECK_MSG(era >= current_era_,
                "StableSpineAdversary rounds must be non-decreasing");
  while (current_era_ < era) {
    ++current_era_;
    previous_spine_ = std::move(current_spine_);
    util::Rng era_rng =
        seed_rng_.Fork(static_cast<std::uint64_t>(current_era_) + 1);
    current_spine_ = MakeSpine(options_.spine, n_, era_rng);
  }
  return *current_spine_;
}

const graph::Graph& StableSpineAdversary::SpineForRound(std::int64_t round) {
  SDN_CHECK(round >= 1);
  return SpineForEra((round - 1) / era_length_);
}

graph::Graph StableSpineAdversary::TopologyFor(std::int64_t round,
                                               const net::AdversaryView&) {
  SDN_CHECK(round >= 1);
  const std::int64_t era = (round - 1) / era_length_;
  const std::int64_t offset = (round - 1) % era_length_;
  const graph::Graph& spine = SpineForEra(era);

  // Overlap: previous era's spine persists through the first T-1 rounds of
  // this era so sliding T-windows keep a common connected spanning subgraph.
  const bool overlap = offset < t_ - 1 && previous_spine_.has_value();
  const std::int64_t volatile_count = n_ >= 2 ? options_.volatile_edges : 0;
  if (!overlap && volatile_count == 0) return spine;

  // This runs once per simulated round, so the topology is assembled as one
  // sorted merge handed to the sort-free Graph constructor instead of
  // copying the spine graph and re-sorting the full edge list every round.
  const auto spine_edges = spine.Edges();
  std::vector<graph::Edge> merged;
  merged.reserve(spine_edges.size() +
                 (overlap ? previous_spine_->Edges().size() : 0) +
                 static_cast<std::size_t>(volatile_count));
  if (overlap) {
    const auto prev = previous_spine_->Edges();
    std::merge(spine_edges.begin(), spine_edges.end(), prev.begin(),
               prev.end(), std::back_inserter(merged));
  } else {
    merged.assign(spine_edges.begin(), spine_edges.end());
  }
  if (volatile_count > 0) {
    std::vector<graph::Edge> fresh;
    fresh.reserve(static_cast<std::size_t>(volatile_count));
    for (std::int64_t i = 0; i < volatile_count; ++i) {
      const auto u = static_cast<graph::NodeId>(
          volatile_rng_.UniformU64(static_cast<std::uint64_t>(n_)));
      auto v = static_cast<graph::NodeId>(
          volatile_rng_.UniformU64(static_cast<std::uint64_t>(n_) - 1));
      if (v >= u) ++v;
      fresh.emplace_back(u, v);
    }
    std::sort(fresh.begin(), fresh.end());
    const auto middle = static_cast<std::ptrdiff_t>(merged.size());
    merged.insert(merged.end(), fresh.begin(), fresh.end());
    std::inplace_merge(merged.begin(), merged.begin() + middle, merged.end());
  }
  return graph::Graph(n_, std::move(merged), graph::Graph::SortedEdges{});
}

std::string StableSpineAdversary::name() const {
  std::ostringstream os;
  os << "spine[" << options_.spine.Name() << ",era=" << era_length_
     << ",vol=" << options_.volatile_edges << "]";
  return os.str();
}

}  // namespace sdn::adversary
