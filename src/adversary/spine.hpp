// Spine specifications: the connected spanning subgraphs adversaries keep
// stable inside an era. The spine family controls the dynamic flooding time d
// of the run (expander/Gnp spines -> d = O(log N); path spine -> d = Θ(N);
// path-of-cliques -> d dialed by the clique count), which is how experiments
// separate the d- and N-dependence of each algorithm.
#pragma once

#include <string>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

enum class SpineKind {
  kPath,
  kStar,
  kBinaryTree,
  kRandomTree,
  kGnp,
  kExpander,
  kPathOfCliques,
};

struct SpineSpec {
  SpineKind kind = SpineKind::kExpander;
  /// Gnp edge probability; <= 0 means the default 2·ln(n)/n.
  double gnp_p = 0.0;
  /// Hamiltonian cycles unioned for kExpander.
  int expander_cycles = 2;
  /// Clique size for kPathOfCliques (node count must divide accordingly;
  /// a ragged final clique absorbs the remainder).
  graph::NodeId clique_size = 8;

  [[nodiscard]] std::string Name() const;
};

/// Builds one connected spanning spine on n nodes. Randomized kinds draw
/// from `rng`; deterministic kinds (path/star/tree/cliques) apply a random
/// node relabeling so eras differ even for fixed shapes.
graph::Graph MakeSpine(const SpineSpec& spec, graph::NodeId n, util::Rng& rng);

}  // namespace sdn::adversary
