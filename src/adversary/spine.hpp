// Spine specifications: the connected spanning subgraphs adversaries keep
// stable inside an era. The spine family controls the dynamic flooding time d
// of the run (expander/Gnp spines -> d = O(log N); path spine -> d = Θ(N);
// path-of-cliques -> d dialed by the clique count), which is how experiments
// separate the d- and N-dependence of each algorithm.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

enum class SpineKind {
  kPath,
  kStar,
  kBinaryTree,
  kRandomTree,
  kGnp,
  kExpander,
  kPathOfCliques,
};

struct SpineSpec {
  SpineKind kind = SpineKind::kExpander;
  /// Gnp edge probability; <= 0 means the default 2·ln(n)/n.
  double gnp_p = 0.0;
  /// Hamiltonian cycles unioned for kExpander.
  int expander_cycles = 2;
  /// Clique size for kPathOfCliques (node count must divide accordingly;
  /// a ragged final clique absorbs the remainder).
  graph::NodeId clique_size = 8;

  [[nodiscard]] std::string Name() const;
};

/// Builds one connected spanning spine on n nodes. Randomized kinds draw
/// from `rng`; deterministic kinds (path/star/tree/cliques) apply a random
/// node relabeling so eras differ even for fixed shapes.
graph::Graph MakeSpine(const SpineSpec& spec, graph::NodeId n, util::Rng& rng);

/// Sorted-unique edge list of MakeSpine — identical RNG draws and edge set.
/// The hot-path variant for adversaries that assemble rounds from lists and
/// never touch the spine's own CSR adjacency (kGnp skips building it).
std::vector<graph::Edge> MakeSpineEdges(const SpineSpec& spec, graph::NodeId n,
                                        util::Rng& rng);

/// Memoized MakeSpineEdges. A spine edge list is a pure function of
/// (spec, n, seed of a fresh rng), and the callers that matter — benchmark
/// reps, A/B comparisons, threads sweeps, parameter sweeps re-running a
/// seed — regenerate identical spines over and over; this serves them from
/// a process-wide pool (mutex-guarded, bounded; eviction clears the pool,
/// never invalidates handles already returned).
///
/// Contract: `rng` must be freshly constructed or freshly Fork()ed — its
/// seed() is the pool key, so a generator that has already been drawn from
/// would alias a different stream. On a pool hit the generation draws are
/// skipped entirely and `rng` is left untouched, so callers must discard it
/// either way (the stable-spine adversary forks a throwaway era rng per
/// era, which is the intended usage pattern).
std::shared_ptr<const std::vector<graph::Edge>> PooledSpineEdges(
    const SpineSpec& spec, graph::NodeId n, util::Rng& rng);

}  // namespace sdn::adversary
