#include "adversary/static_adversary.hpp"

#include <sstream>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

StaticAdversary::StaticAdversary(graph::Graph g, int T)
    : g_(std::move(g)), t_(T) {
  SDN_CHECK(t_ >= 1);
  SDN_CHECK_MSG(graph::IsConnected(g_), "static adversary graph disconnected");
}

graph::NodeId StaticAdversary::num_nodes() const { return g_.num_nodes(); }

graph::Graph StaticAdversary::TopologyFor(std::int64_t round,
                                          const net::AdversaryView&) {
  SDN_CHECK(round >= 1);
  return g_;
}

void StaticAdversary::DeltaFor(std::int64_t round, const net::AdversaryView&,
                               const graph::Graph& prev,
                               graph::TopologyDelta& out) {
  SDN_CHECK(round >= 1);
  if (round > 1) {
    // prev is the graph we produced for round-1, i.e. g_ itself.
    out.clear();
    return;
  }
  graph::DiffSorted(prev.Edges(), g_.Edges(), out);
}

std::string StaticAdversary::name() const {
  std::ostringstream os;
  os << "static[n=" << g_.num_nodes() << ",m=" << g_.num_edges() << "]";
  return os.str();
}

}  // namespace sdn::adversary
