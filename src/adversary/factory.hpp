// String-keyed adversary construction for benches, examples and tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/adversary.hpp"

namespace sdn::adversary {

struct AdversaryConfig {
  /// One of KnownAdversaryKinds().
  std::string kind = "spine-expander";
  graph::NodeId n = 0;
  int T = 2;
  std::uint64_t seed = 1;
  /// Volatile random edges per round for spine adversaries; -1 = n/4.
  std::int64_t volatile_edges = -1;
  /// Era length for spine adversaries; 0 = T. Long eras keep one spine
  /// alive longer, which is how experiments dial the flooding time d up
  /// (fresh random spines every T rounds act like an expander over time).
  std::int64_t era_length = 0;
  /// Clique size for spine-cliques.
  graph::NodeId clique_size = 8;
  /// Radius for mobile.
  double mobile_radius = 0.2;
};

/// Kinds: static-path, static-star, static-expander, static-complete,
/// spine-path, spine-star, spine-btree, spine-rtree, spine-gnp,
/// spine-expander, spine-cliques, mobile, adaptive-desc, adaptive-asc.
std::vector<std::string> KnownAdversaryKinds();

/// Builds the adversary; CheckError on unknown kind or invalid config.
std::unique_ptr<net::Adversary> MakeAdversary(const AdversaryConfig& config);

}  // namespace sdn::adversary
