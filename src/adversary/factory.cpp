#include "adversary/factory.hpp"

#include "adversary/adaptive.hpp"
#include "adversary/mobile.hpp"
#include "adversary/spine.hpp"
#include "adversary/stable_spine.hpp"
#include "adversary/static_adversary.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

std::vector<std::string> KnownAdversaryKinds() {
  return {"static-path",   "static-star",    "static-expander",
          "static-complete", "spine-path",   "spine-star",
          "spine-btree",   "spine-rtree",    "spine-gnp",
          "spine-expander", "spine-cliques", "mobile",
          "adaptive-desc", "adaptive-asc"};
}

std::unique_ptr<net::Adversary> MakeAdversary(const AdversaryConfig& config) {
  SDN_CHECK(config.n >= 1);
  SDN_CHECK(config.T >= 1);
  const graph::NodeId n = config.n;
  const std::int64_t volatile_edges =
      config.volatile_edges >= 0 ? config.volatile_edges : n / 4;

  const auto spine = [&](SpineKind kind) {
    StableSpineOptions opts;
    opts.spine.kind = kind;
    opts.spine.clique_size = config.clique_size;
    opts.volatile_edges = volatile_edges;
    opts.era_length = config.era_length;
    return std::make_unique<StableSpineAdversary>(n, config.T, opts,
                                                  config.seed);
  };

  if (config.kind == "static-path") {
    return std::make_unique<StaticAdversary>(graph::Path(n), config.T);
  }
  if (config.kind == "static-star") {
    return std::make_unique<StaticAdversary>(graph::Star(n), config.T);
  }
  if (config.kind == "static-expander") {
    util::Rng rng(config.seed);
    const graph::Graph g =
        n >= 3 ? graph::RandomExpander(n, 2, rng) : graph::Path(n);
    return std::make_unique<StaticAdversary>(g, config.T);
  }
  if (config.kind == "static-complete") {
    return std::make_unique<StaticAdversary>(graph::Complete(n), config.T);
  }
  if (config.kind == "spine-path") return spine(SpineKind::kPath);
  if (config.kind == "spine-star") return spine(SpineKind::kStar);
  if (config.kind == "spine-btree") return spine(SpineKind::kBinaryTree);
  if (config.kind == "spine-rtree") return spine(SpineKind::kRandomTree);
  if (config.kind == "spine-gnp") return spine(SpineKind::kGnp);
  if (config.kind == "spine-expander") return spine(SpineKind::kExpander);
  if (config.kind == "spine-cliques") return spine(SpineKind::kPathOfCliques);
  if (config.kind == "mobile") {
    MobileOptions opts;
    opts.radius = config.mobile_radius;
    return std::make_unique<MobileGeometricAdversary>(n, config.T, opts,
                                                      config.seed);
  }
  if (config.kind == "adaptive-desc") {
    return std::make_unique<AdaptiveSortPathAdversary>(n, config.T,
                                                       config.seed, true);
  }
  if (config.kind == "adaptive-asc") {
    return std::make_unique<AdaptiveSortPathAdversary>(n, config.T,
                                                       config.seed, false);
  }
  SDN_CHECK_MSG(false, "unknown adversary kind: " << config.kind);
  return nullptr;
}

}  // namespace sdn::adversary
