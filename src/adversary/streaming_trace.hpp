// Streaming trace adversary: replays a v2 (delta-encoded) trace file
// without ever materializing the round sequence.
//
// ReplayAdversary holds rounds · Graph in memory — fine for paired benches
// at small n, hopeless for million-node traces. This adversary is the
// O(E_round) alternative: it wraps a net::TraceStreamReader and serves the
// engine's DeltaFor calls straight from the file, so the only live graph
// state anywhere in the run is the engine's single DynGraph plus one reused
// record buffer. It is delta-native by construction: TopologyFor (the
// materializing path) is a contract violation and throws — run it with
// EngineOptions::incremental_topology (the default).
//
// Rounds past the end of the recording repeat the final topology (empty
// deltas), matching ReplayAdversary, so algorithms can always terminate.
#pragma once

#include <string>

#include "net/adversary.hpp"
#include "net/trace.hpp"
#include "util/arena.hpp"

namespace sdn::adversary {

class StreamingTraceAdversary final : public net::Adversary {
 public:
  /// Opens `path` (CheckError on I/O failure or a non-v2 trace). When
  /// `budget` is non-null the adversary charges its live record-buffer
  /// bytes to the "trace_stream" gauge each round, so RunStats::memory
  /// exposes the O(E_round) bound tests pin. `budget` must outlive the
  /// adversary.
  explicit StreamingTraceAdversary(const std::string& path,
                                   util::MemoryBudget* budget = nullptr);

  [[nodiscard]] graph::NodeId num_nodes() const override;
  [[nodiscard]] int interval() const override;

  /// Throws CheckError: streaming replay has no per-round Graph to hand
  /// out. Use the delta engine path.
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;

  /// Serves round `round` from the file: keyframe records are diffed
  /// against `prev` (one linear merge), delta records pass through, EOF
  /// repeats the final topology as empty deltas. Rounds must be requested
  /// strictly sequentially from 1 (the interface contract).
  void DeltaFor(std::int64_t round, const net::AdversaryView& view,
                const graph::Graph& prev, graph::TopologyDelta& out) override;

  [[nodiscard]] std::string name() const override;

  /// Largest single-round edge count seen so far (keyframe edge lists are
  /// exact; delta rounds track the running count). This is the E_round the
  /// streaming-memory bound is stated against.
  [[nodiscard]] std::int64_t max_round_edges() const {
    return max_round_edges_;
  }
  [[nodiscard]] std::int64_t rounds_served() const { return served_; }

 private:
  net::TraceStreamReader reader_;
  net::TraceStreamReader::Round record_;  // reused across rounds
  util::MemoryGauge* gauge_ = nullptr;
  std::int64_t served_ = 0;
  std::int64_t live_edges_ = 0;
  std::int64_t max_round_edges_ = 0;
  bool exhausted_ = false;
};

}  // namespace sdn::adversary
