#include "adversary/replay.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace sdn::adversary {

ReplayAdversary::ReplayAdversary(std::vector<graph::Graph> sequence, int T)
    : sequence_(std::move(sequence)), t_(T) {
  SDN_CHECK(!sequence_.empty());
  SDN_CHECK(t_ >= 1);
  for (const graph::Graph& g : sequence_) {
    SDN_CHECK(g.num_nodes() == sequence_.front().num_nodes());
  }
}

graph::NodeId ReplayAdversary::num_nodes() const {
  return sequence_.front().num_nodes();
}

graph::Graph ReplayAdversary::TopologyFor(std::int64_t round,
                                          const net::AdversaryView&) {
  SDN_CHECK(round >= 1);
  const auto idx = std::min<std::size_t>(static_cast<std::size_t>(round - 1),
                                         sequence_.size() - 1);
  return sequence_[idx];
}

void ReplayAdversary::DeltaFor(std::int64_t round, const net::AdversaryView&,
                               const graph::Graph& prev,
                               graph::TopologyDelta& out) {
  SDN_CHECK(round >= 1);
  const auto idx = std::min<std::size_t>(static_cast<std::size_t>(round - 1),
                                         sequence_.size() - 1);
  if (round == 1) {
    graph::DiffSorted(prev.Edges(), sequence_[idx].Edges(), out);
    return;
  }
  const auto prev_idx = std::min<std::size_t>(
      static_cast<std::size_t>(round - 2), sequence_.size() - 1);
  if (idx == prev_idx) {
    out.clear();  // past the recording: the final topology repeats
    return;
  }
  graph::DiffSorted(sequence_[prev_idx].Edges(), sequence_[idx].Edges(), out);
}

std::string ReplayAdversary::name() const {
  std::ostringstream os;
  os << "replay[" << sequence_.size() << " rounds]";
  return os.str();
}

}  // namespace sdn::adversary
