// Mobile geometric (wireless swarm) adversary.
//
// Nodes are radio disks in the unit square. Each era they take a random
// bounded step (reflected at the walls) and the topology becomes the
// geometric graph at the new positions, with connectivity repaired by
// chaining component representatives (a lost drone re-acquires *some* relay
// link). Era/overlap structure as in StableSpineAdversary keeps the
// T-interval promise. This is the paper model's closest analogue of the
// mobile ad-hoc networks the literature motivates it with.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/generators.hpp"
#include "net/adversary.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

struct MobileOptions {
  /// Radio radius in the unit square.
  double radius = 0.2;
  /// Max per-era movement per coordinate.
  double step = 0.05;
  /// Era length in rounds; default (0) means T.
  std::int64_t era_length = 0;
};

class MobileGeometricAdversary final : public net::Adversary {
 public:
  MobileGeometricAdversary(graph::NodeId n, int T, MobileOptions options,
                           std::uint64_t seed);

  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<graph::Point2D>& positions() const {
    return positions_;
  }

 private:
  graph::Graph BuildEraGraph();
  void Advance();

  graph::NodeId n_;
  int t_;
  MobileOptions options_;
  std::int64_t era_length_;
  util::Rng rng_;
  std::vector<graph::Point2D> positions_;
  std::int64_t current_era_ = -1;
  std::optional<graph::Graph> current_graph_;
  std::optional<graph::Graph> previous_graph_;
};

}  // namespace sdn::adversary
