// Static adversary: the same topology every round.
//
// A static connected graph satisfies T-interval connectivity for every T;
// it is the baseline sanity environment and the worst case for flooding when
// the graph is a path (d = N-1).
#pragma once

#include "net/adversary.hpp"

namespace sdn::adversary {

class StaticAdversary final : public net::Adversary {
 public:
  /// `g` must be connected (checked); `T` is the interval the adversary
  /// advertises (any value is honest for a static connected graph).
  StaticAdversary(graph::Graph g, int T = 1);

  [[nodiscard]] graph::NodeId num_nodes() const override;
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  /// Native delta: every round past the first is empty in O(1) — the
  /// incremental engine then reuses the round-1 topology untouched.
  void DeltaFor(std::int64_t round, const net::AdversaryView& view,
                const graph::Graph& prev, graph::TopologyDelta& out) override;
  [[nodiscard]] std::string name() const override;

 private:
  graph::Graph g_;
  int t_;
};

}  // namespace sdn::adversary
