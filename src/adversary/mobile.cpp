#include "adversary/mobile.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

namespace {

/// Reflects x into [0,1].
double Reflect(double x) {
  while (x < 0.0 || x > 1.0) {
    if (x < 0.0) x = -x;
    if (x > 1.0) x = 2.0 - x;
  }
  return x;
}

graph::Graph RepairConnectivity(const graph::Graph& g, util::Rng& rng) {
  graph::UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
  for (const graph::Edge& e : g.Edges()) uf.Union(e.u, e.v);
  if (uf.num_components() <= 1) return g;
  std::vector<graph::NodeId> reps;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (uf.Find(u) == u) reps.push_back(u);
  }
  rng.Shuffle(std::span<graph::NodeId>(reps));
  std::vector<graph::Edge> repair;
  for (std::size_t i = 0; i + 1 < reps.size(); ++i) {
    repair.emplace_back(reps[i], reps[i + 1]);
  }
  return g.WithEdges(repair);
}

}  // namespace

MobileGeometricAdversary::MobileGeometricAdversary(graph::NodeId n, int T,
                                                   MobileOptions options,
                                                   std::uint64_t seed)
    : n_(n),
      t_(T),
      options_(options),
      era_length_(options.era_length > 0 ? options.era_length : T),
      rng_(seed) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(T >= 1);
  SDN_CHECK(options_.radius > 0.0);
  SDN_CHECK(options_.step >= 0.0);
  SDN_CHECK_MSG(era_length_ >= std::max<std::int64_t>(1, T - 1),
                "era_length must be >= T-1");
  positions_ = graph::RandomPoints(n_, rng_);
}

graph::Graph MobileGeometricAdversary::BuildEraGraph() {
  const graph::Graph g = graph::GeometricGraph(positions_, options_.radius);
  return RepairConnectivity(g, rng_);
}

void MobileGeometricAdversary::Advance() {
  for (auto& p : positions_) {
    p.x = Reflect(p.x + (rng_.UniformDouble() * 2.0 - 1.0) * options_.step);
    p.y = Reflect(p.y + (rng_.UniformDouble() * 2.0 - 1.0) * options_.step);
  }
}

graph::Graph MobileGeometricAdversary::TopologyFor(std::int64_t round,
                                                   const net::AdversaryView&) {
  SDN_CHECK(round >= 1);
  const std::int64_t era = (round - 1) / era_length_;
  const std::int64_t offset = (round - 1) % era_length_;
  SDN_CHECK_MSG(era >= current_era_, "rounds must be non-decreasing");
  while (current_era_ < era) {
    ++current_era_;
    previous_graph_ = std::move(current_graph_);
    if (current_era_ > 0) Advance();
    current_graph_ = BuildEraGraph();
  }
  if (offset < t_ - 1 && previous_graph_.has_value()) {
    return current_graph_->WithEdges(previous_graph_->Edges());
  }
  return *current_graph_;
}

std::string MobileGeometricAdversary::name() const {
  std::ostringstream os;
  os << "mobile[r=" << options_.radius << ",step=" << options_.step << "]";
  return os.str();
}

}  // namespace sdn::adversary
