// Replay adversary: plays back a recorded topology sequence.
//
// Used to (a) re-run different algorithms against the *identical* dynamic
// graph (paired comparisons in benches), and (b) reproduce failures from
// recorded traces. Rounds beyond the recording repeat the final topology so
// algorithms can always terminate.
#pragma once

#include <vector>

#include "net/adversary.hpp"

namespace sdn::adversary {

class ReplayAdversary final : public net::Adversary {
 public:
  /// `sequence` must be non-empty and uniform in node count; `T` is the
  /// interval being claimed for it — callers should have validated it
  /// (ValidateTInterval) unless the trace came from a trusted adversary.
  ReplayAdversary(std::vector<graph::Graph> sequence, int T);

  [[nodiscard]] graph::NodeId num_nodes() const override;
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  /// Native delta: diffs the two recorded rounds directly (no Graph copy);
  /// rounds past the recording are empty deltas in O(1).
  void DeltaFor(std::int64_t round, const net::AdversaryView& view,
                const graph::Graph& prev, graph::TopologyDelta& out) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t recorded_rounds() const {
    return static_cast<std::int64_t>(sequence_.size());
  }

 private:
  std::vector<graph::Graph> sequence_;
  int t_;
};

}  // namespace sdn::adversary
