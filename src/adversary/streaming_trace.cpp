#include "adversary/streaming_trace.hpp"

#include <algorithm>
#include <sstream>

#include "graph/delta.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

StreamingTraceAdversary::StreamingTraceAdversary(const std::string& path,
                                                 util::MemoryBudget* budget)
    : reader_(path) {
  if (budget != nullptr) gauge_ = budget->Get("trace_stream");
}

graph::NodeId StreamingTraceAdversary::num_nodes() const {
  return reader_.num_nodes();
}

int StreamingTraceAdversary::interval() const { return reader_.interval(); }

graph::Graph StreamingTraceAdversary::TopologyFor(std::int64_t,
                                                  const net::AdversaryView&) {
  SDN_CHECK_MSG(false,
                "StreamingTraceAdversary is delta-native: run with "
                "incremental_topology (TopologyFor would materialize)");
  return graph::Graph(reader_.num_nodes());  // unreachable
}

void StreamingTraceAdversary::DeltaFor(std::int64_t round,
                                       const net::AdversaryView&,
                                       const graph::Graph& prev,
                                       graph::TopologyDelta& out) {
  SDN_CHECK_MSG(round == served_ + 1,
                "streaming replay requires sequential rounds: got "
                    << round << " after " << served_);
  served_ = round;
  if (exhausted_ || !reader_.Next(record_)) {
    exhausted_ = true;
    out.clear();  // past the recording: the final topology repeats
    return;
  }
  if (record_.keyframe) {
    graph::DiffSorted(prev.Edges(), record_.full, out);
    live_edges_ = static_cast<std::int64_t>(record_.full.size());
  } else {
    out.added.swap(record_.delta.added);
    out.removed.swap(record_.delta.removed);
    live_edges_ += static_cast<std::int64_t>(out.added.size()) -
                   static_cast<std::int64_t>(out.removed.size());
  }
  max_round_edges_ = std::max(max_round_edges_, live_edges_);
  if (gauge_ != nullptr) {
    const auto bytes = static_cast<std::int64_t>(
        (record_.full.capacity() + record_.delta.added.capacity() +
         record_.delta.removed.capacity() + out.added.capacity() +
         out.removed.capacity()) *
        sizeof(graph::Edge));
    gauge_->SetCurrent(bytes);
  }
}

std::string StreamingTraceAdversary::name() const {
  std::ostringstream os;
  os << "streaming-trace[n=" << reader_.num_nodes() << "]";
  return os.str();
}

}  // namespace sdn::adversary
