#include "adversary/adaptive.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "graph/delta.hpp"
#include "util/check.hpp"

namespace sdn::adversary {

AdaptiveSortPathAdversary::AdaptiveSortPathAdversary(graph::NodeId n, int T,
                                                     std::uint64_t seed,
                                                     bool descending)
    : n_(n),
      t_(T),
      descending_(descending),
      rng_(seed),
      era_length_(std::max<std::int64_t>(T, 1)) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(T >= 1);
}

std::vector<graph::Edge> AdaptiveSortPathAdversary::BuildSortedPath(
    const net::AdversaryView& view) {
  std::vector<graph::NodeId> order(static_cast<std::size_t>(n_));
  std::iota(order.begin(), order.end(), graph::NodeId{0});
  // Random shuffle first so equal-state nodes land in random positions.
  rng_.Shuffle(std::span<graph::NodeId>(order));
  std::stable_sort(order.begin(), order.end(),
                   [&](graph::NodeId a, graph::NodeId b) {
                     const double sa = view.PublicState(a);
                     const double sb = view.PublicState(b);
                     return descending_ ? sa > sb : sa < sb;
                   });
  std::vector<graph::Edge> edges;
  edges.reserve(order.size());
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    edges.emplace_back(order[i], order[i + 1]);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

void AdaptiveSortPathAdversary::BuildRoundEdges(std::int64_t round,
                                                const net::AdversaryView& view,
                                                std::vector<graph::Edge>& out) {
  SDN_CHECK(round >= 1);
  const std::int64_t era = (round - 1) / era_length_;
  const std::int64_t offset = (round - 1) % era_length_;
  SDN_CHECK_MSG(era >= current_era_, "rounds must be non-decreasing");
  while (current_era_ < era) {
    ++current_era_;
    previous_spine_ = std::move(current_spine_);
    current_spine_ = BuildSortedPath(view);
  }
  if (offset < t_ - 1 && current_era_ >= 1) {
    graph::UnionSorted(current_spine_, previous_spine_, out);
  } else {
    out.assign(current_spine_.begin(), current_spine_.end());
  }
}

graph::Graph AdaptiveSortPathAdversary::TopologyFor(
    std::int64_t round, const net::AdversaryView& view) {
  std::vector<graph::Edge> merged;
  BuildRoundEdges(round, view, merged);
  return graph::Graph(n_, std::move(merged), graph::Graph::SortedEdges{});
}

void AdaptiveSortPathAdversary::DeltaFor(std::int64_t round,
                                         const net::AdversaryView& view,
                                         const graph::Graph& prev,
                                         graph::TopologyDelta& out) {
  BuildRoundEdges(round, view, round_edges_);
  graph::DiffSorted(prev.Edges(), round_edges_, out);
}

bool AdaptiveSortPathAdversary::RoundEdgesInto(std::int64_t round,
                                               const net::AdversaryView& view,
                                               std::vector<graph::Edge>& out) {
  BuildRoundEdges(round, view, out);
  return true;
}

std::string AdaptiveSortPathAdversary::name() const {
  std::ostringstream os;
  os << "adaptive-sort-path[" << (descending_ ? "desc" : "asc") << "]";
  return os.str();
}

}  // namespace sdn::adversary
