// The workhorse oblivious adversary.
//
// Time is split into eras of `era_length` rounds. Era k has a spine S_k (a
// connected spanning subgraph drawn from the SpineSpec). Round r's topology:
//
//   G_r = S_k ∪ (S_{k-1} if r is within the first T-1 rounds of era k)
//         ∪ fresh volatile random edges (redrawn every round)
//
// Sliding-window correctness: every window of T consecutive rounds fits
// inside the "extended life" of some spine — S_k is present from the start of
// era k through the first T-1 rounds of era k+1, i.e. for era_length + T - 1
// consecutive rounds — so the window's intersection contains a connected
// spanning subgraph. (Changing spines at era boundaries WITHOUT the overlap
// would violate the promise for windows straddling the boundary; the
// T-interval property is a sliding-window property. Tests pin this down.)
//
// Volatile edges change every round, so topologies genuinely differ
// round-to-round even inside an era.
#pragma once

#include <cstdint>
#include <optional>

#include "adversary/spine.hpp"
#include "net/adversary.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

struct StableSpineOptions {
  SpineSpec spine;
  /// Era length in rounds; default (0) means T.
  std::int64_t era_length = 0;
  /// Volatile random edges added per round (sampled uniformly, duplicates
  /// with spine edges are harmless).
  std::int64_t volatile_edges = 0;
};

class StableSpineAdversary final : public net::Adversary {
 public:
  StableSpineAdversary(graph::NodeId n, int T, StableSpineOptions options,
                       std::uint64_t seed);

  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  [[nodiscard]] std::string name() const override;

  /// The spine active in `round`'s era (for tests and d-calibration).
  [[nodiscard]] const graph::Graph& SpineForRound(std::int64_t round);

 private:
  const graph::Graph& SpineForEra(std::int64_t era);

  graph::NodeId n_;
  int t_;
  StableSpineOptions options_;
  std::int64_t era_length_;
  util::Rng seed_rng_;
  util::Rng volatile_rng_;
  std::int64_t current_era_ = -1;
  std::optional<graph::Graph> current_spine_;
  std::optional<graph::Graph> previous_spine_;
};

}  // namespace sdn::adversary
