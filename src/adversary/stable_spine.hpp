// The workhorse oblivious adversary.
//
// Time is split into eras of `era_length` rounds. Era k has a spine S_k (a
// connected spanning subgraph drawn from the SpineSpec). Round r's topology:
//
//   G_r = S_k ∪ (S_{k-1} if r is within the first T-1 rounds of era k)
//         ∪ fresh volatile random edges (redrawn every round)
//
// Sliding-window correctness: every window of T consecutive rounds fits
// inside the "extended life" of some spine — S_k is present from the start of
// era k through the first T-1 rounds of era k+1, i.e. for era_length + T - 1
// consecutive rounds — so the window's intersection contains a connected
// spanning subgraph. (Changing spines at era boundaries WITHOUT the overlap
// would violate the promise for windows straddling the boundary; the
// T-interval property is a sliding-window property. Tests pin this down.)
//
// Volatile edges change every round, so topologies genuinely differ
// round-to-round even inside an era.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/spine.hpp"
#include "net/adversary.hpp"
#include "util/rng.hpp"

namespace sdn::adversary {

struct StableSpineOptions {
  SpineSpec spine;
  /// Era length in rounds; default (0) means T.
  std::int64_t era_length = 0;
  /// Volatile random edges added per round (sampled uniformly, duplicates
  /// with spine edges are harmless).
  std::int64_t volatile_edges = 0;
};

class StableSpineAdversary final : public net::Adversary {
 public:
  StableSpineAdversary(graph::NodeId n, int T, StableSpineOptions options,
                       std::uint64_t seed);

  [[nodiscard]] graph::NodeId num_nodes() const override { return n_; }
  [[nodiscard]] int interval() const override { return t_; }
  graph::Graph TopologyFor(std::int64_t round,
                           const net::AdversaryView& view) override;
  /// Native delta: assembles the round's sorted edge list in a reused
  /// buffer and diffs it against `prev` — no per-round Graph (CSR build)
  /// at all. Consumes the identical volatile-RNG stream as TopologyFor.
  void DeltaFor(std::int64_t round, const net::AdversaryView& view,
                const graph::Graph& prev, graph::TopologyDelta& out) override;
  /// Fastest path: writes the round's full sorted-unique edge list straight
  /// into the caller's buffer, skipping both the Graph build and the diff.
  bool RoundEdgesInto(std::int64_t round, const net::AdversaryView& view,
                      std::vector<graph::Edge>& out) override;
  /// Certification fast path: every round is exactly
  /// spine ∪ (previous spine during overlap) ∪ volatile edges, with the
  /// era number as the spine's stable identity — the checker certifies
  /// windows by spine witness without ever materializing a delta.
  [[nodiscard]] bool has_composition() const override { return true; }
  [[nodiscard]] const graph::RoundComposition* Composition(
      std::int64_t round) const override {
    return round == comp_round_ ? &comp_ : nullptr;
  }
  /// Generator buffers: the two live spine-pool vectors, the cached era
  /// overlap union, and the per-round assembly/volatile scratch. Pure
  /// function of the round sequence (capacities only grow along it).
  [[nodiscard]] std::int64_t BufferBytes() const override {
    const auto vec = [](const auto& v) {
      using T = typename std::decay_t<decltype(v)>::value_type;
      return static_cast<std::int64_t>(v.capacity() * sizeof(T));
    };
    std::int64_t total = vec(overlap_base_) + vec(round_edges_) +
                         vec(fresh_edges_) + vec(fresh_keys_);
    if (current_spine_ != nullptr) total += vec(*current_spine_);
    if (previous_spine_ != nullptr) total += vec(*previous_spine_);
    return total;
  }

  [[nodiscard]] std::string name() const override;

  /// The spine active in `round`'s era (for tests and d-calibration).
  [[nodiscard]] graph::Graph SpineForRound(std::int64_t round);

 private:
  void AdvanceToEra(std::int64_t era);
  /// The sorted-unique union of the current and previous spines, built once
  /// per era (used by the first T-1 overlap rounds of that era).
  const std::vector<graph::Edge>& OverlapBase();
  /// Fills `out` with round's sorted, deduplicated edge list (spine ∪
  /// overlap spine ∪ fresh volatile edges), advancing the volatile RNG.
  void BuildRoundEdges(std::int64_t round, std::vector<graph::Edge>& out);

  graph::NodeId n_;
  int t_;
  StableSpineOptions options_;
  std::int64_t era_length_;
  util::Rng seed_rng_;
  util::Rng volatile_rng_;
  std::int64_t current_era_ = -1;
  bool has_previous_ = false;  // a previous era's spine exists
  // Sorted-unique edge lists shared with the process-wide spine pool (the
  // spine CSR is never needed); null until the first AdvanceToEra.
  std::shared_ptr<const std::vector<graph::Edge>> current_spine_;
  std::shared_ptr<const std::vector<graph::Edge>> previous_spine_;
  std::vector<graph::Edge> overlap_base_;    // cached cur ∪ prev of one era
  std::int64_t overlap_base_era_ = -1;
  std::vector<graph::Edge> round_edges_;  // DeltaFor's reused assembly buffer
  std::vector<graph::Edge> fresh_edges_;  // volatile-edge scratch
  std::vector<std::uint64_t> fresh_keys_;  // packed volatile draws pre-sort
  graph::RoundComposition comp_;     // last built round's structure
  std::int64_t comp_round_ = -1;     // round comp_ describes
};

}  // namespace sdn::adversary
