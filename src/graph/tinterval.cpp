#include "graph/tinterval.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace sdn::graph {

TIntervalReport ValidateTInterval(std::span<const Graph> sequence, int T) {
  SDN_CHECK(T >= 1);
  TIntervalReport report;
  if (sequence.empty()) return report;
  const NodeId n = sequence[0].num_nodes();
  for (const Graph& g : sequence) SDN_CHECK(g.num_nodes() == n);
  report.min_stable_forest = n >= 1 ? n - 1 : 0;

  const auto len = static_cast<std::int64_t>(sequence.size());
  const std::int64_t window = std::min<std::int64_t>(T, len);
  for (std::int64_t start = 0; start + window <= len; ++start) {
    const Graph common = EdgeIntersection(
        sequence.subspan(static_cast<std::size_t>(start),
                         static_cast<std::size_t>(window)));
    const std::int64_t forest = SpanningForestSize(common);
    report.min_stable_forest = std::min(report.min_stable_forest, forest);
    ++report.windows_checked;
    if (!IsConnected(common) && report.ok) {
      report.ok = false;
      report.first_bad_window = start;
    }
  }
  return report;
}

TIntervalChecker::TIntervalChecker(NodeId n, int T) : n_(n), t_(T) {
  SDN_CHECK(T >= 1);
  SDN_CHECK(n >= 1);
}

bool TIntervalChecker::Push(const Graph& g) {
  SDN_CHECK(g.num_nodes() == n_);
  window_.push_back(g);
  if (window_.size() > static_cast<std::size_t>(t_)) {
    window_.erase(window_.begin());
  }
  ++rounds_seen_;
  if (window_.size() == static_cast<std::size_t>(t_)) {
    const Graph common = EdgeIntersection(window_);
    if (!IsConnected(common)) {
      if (ok_) first_bad_window_ = rounds_seen_ - t_;
      ok_ = false;
    }
  }
  return ok_;
}

}  // namespace sdn::graph
