#include "graph/tinterval.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace sdn::graph {

TIntervalReport ValidateTInterval(std::span<const Graph> sequence, int T) {
  SDN_CHECK(T >= 1);
  TIntervalReport report;
  if (sequence.empty()) return report;
  const NodeId n = sequence[0].num_nodes();
  for (const Graph& g : sequence) SDN_CHECK(g.num_nodes() == n);
  report.min_stable_forest = n >= 1 ? n - 1 : 0;

  const auto len = static_cast<std::int64_t>(sequence.size());
  const std::int64_t window = std::min<std::int64_t>(T, len);
  for (std::int64_t start = 0; start + window <= len; ++start) {
    const Graph common = EdgeIntersection(
        sequence.subspan(static_cast<std::size_t>(start),
                         static_cast<std::size_t>(window)));
    const std::int64_t forest = SpanningForestSize(common);
    report.min_stable_forest = std::min(report.min_stable_forest, forest);
    ++report.windows_checked;
    if (!IsConnected(common) && report.ok) {
      report.ok = false;
      report.first_bad_window = start;
    }
  }
  return report;
}

TIntervalChecker::TIntervalChecker(NodeId n, int T) : n_(n), t_(T) {
  SDN_CHECK(T >= 1);
  SDN_CHECK(n >= 1);
  aging_.resize(static_cast<std::size_t>(t_));
}

bool TIntervalChecker::Push(const Graph& g) {
  SDN_CHECK(g.num_nodes() == n_);
  DiffSorted(prev_edges_, g.Edges(), scratch_delta_);
  prev_edges_.assign(g.Edges().begin(), g.Edges().end());
  return PushDelta(scratch_delta_);
}

bool TIntervalChecker::PushDelta(const TopologyDelta& delta) {
  const std::int64_t r = ++rounds_seen_;
  // The window [r-T+1, r] intersection is exactly the present edges with
  // since <= threshold.
  const std::int64_t threshold = r - t_ + 1;

  for (const Edge& e : delta.removed) {
    const auto it = since_.find(Key(e));
    SDN_CHECK_MSG(it != since_.end(),
                  "T-interval checker: delta removes absent edge ("
                      << e.u << "," << e.v << ") at round " << r);
    if (it->second <= threshold - 1) {
      // Was in the previous round's stable set; the intersection shrinks.
      --stable_count_;
      stable_dirty_ = true;
    }
    since_.erase(it);
  }

  // Added edges (re)appear now and can age into the stable set at round
  // r + T - 1; for T == 1 that is this very round, handled by the aging
  // pass below reading the bucket entries just pushed.
  auto& incoming = aging_[static_cast<std::size_t>((r + t_ - 1) % t_)];
  for (const Edge& e : delta.added) {
    const bool inserted = since_.emplace(Key(e), r).second;
    SDN_CHECK_MSG(inserted, "T-interval checker: delta adds present edge ("
                                << e.u << "," << e.v << ") at round " << r);
    incoming.push_back(e);
  }

  // Aging pass: edges scheduled for this round join the stable set if they
  // are still present and were not re-added since scheduling.
  auto& bucket = aging_[static_cast<std::size_t>(r % t_)];
  for (const Edge& e : bucket) {
    const auto it = since_.find(Key(e));
    if (it != since_.end() && it->second == threshold) {
      ++stable_count_;
      stable_dirty_ = true;
    }
  }
  bucket.clear();

  if (r >= t_) {
    if (stable_dirty_ || r == t_) {
      EvaluateStable(threshold);
      stable_dirty_ = false;
    }
    if (!stable_connected_) {
      if (ok_) first_bad_window_ = r - t_;
      ok_ = false;
    }
  }
  return ok_;
}

void TIntervalChecker::EvaluateStable(std::int64_t threshold) {
  UnionFind uf(static_cast<std::size_t>(n_));
  std::int64_t used = 0;
  for (const auto& [key, since] : since_) {
    if (since <= threshold) {
      uf.Union(static_cast<NodeId>(key >> 32),
               static_cast<NodeId>(key & 0xffffffffULL));
      ++used;
    }
  }
  SDN_CHECK_MSG(used == stable_count_,
                "T-interval checker stable-set bookkeeping drifted: counted "
                    << stable_count_ << ", found " << used);
  stable_connected_ = uf.num_components() == 1;
}

}  // namespace sdn::graph
