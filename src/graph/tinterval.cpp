#include "graph/tinterval.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace sdn::graph {

namespace {

constexpr std::uint64_t kNoId = RoundComposition::kNoId;

/// splitmix64 step — the composition spot-checker's deterministic sampler.
std::uint64_t Mix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

bool ContainsEdge(std::span<const Edge> sorted, const Edge& e) {
  const auto it = std::lower_bound(
      sorted.begin(), sorted.end(), e, [](const Edge& a, const Edge& b) {
        return a.u != b.u ? a.u < b.u : a.v < b.v;
      });
  return it != sorted.end() && it->u == e.u && it->v == e.v;
}

/// out = a ∩ b over sorted-unique edge lists.
void IntersectSorted(const std::vector<Edge>& a, const std::vector<Edge>& b,
                     std::vector<Edge>& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const Edge& x = a[i];
    const Edge& y = b[j];
    if (x.u == y.u && x.v == y.v) {
      out.push_back(x);
      ++i;
      ++j;
    } else if (x.u != y.u ? x.u < y.u : x.v < y.v) {
      ++i;
    } else {
      ++j;
    }
  }
}

}  // namespace

TIntervalReport ValidateTInterval(std::span<const Graph> sequence, int T,
                                  ValidateMode mode) {
  SDN_CHECK(T >= 1);
  TIntervalReport report;
  if (sequence.empty()) return report;
  const NodeId n = sequence[0].num_nodes();
  for (const Graph& g : sequence) SDN_CHECK(g.num_nodes() == n);
  report.min_stable_forest = n >= 1 ? n - 1 : 0;

  const auto len = static_cast<std::int64_t>(sequence.size());
  const std::int64_t window = std::min<std::int64_t>(T, len);
  for (std::int64_t start = 0; start + window <= len; ++start) {
    const Graph common = EdgeIntersection(
        sequence.subspan(static_cast<std::size_t>(start),
                         static_cast<std::size_t>(window)));
    const std::int64_t forest = SpanningForestSize(common);
    report.min_stable_forest = std::min(report.min_stable_forest, forest);
    ++report.windows_checked;
    if (!IsConnected(common) && report.ok) {
      report.ok = false;
      report.first_bad_window = start;
      if (mode == ValidateMode::kEarlyExit) return report;
    }
  }
  return report;
}

TIntervalChecker::TIntervalChecker(NodeId n, int T)
    : n_(n),
      t_(T),
      cert_(T),
      min_stable_forest_(n - 1),
      boot_forest_(n - 1),
      forest_(n) {
  SDN_CHECK(T >= 1);
  SDN_CHECK(n >= 1);
  aging_.resize(static_cast<std::size_t>(t_));
}

bool TIntervalChecker::Push(const Graph& g) {
  SDN_CHECK(g.num_nodes() == n_);
  if (mode_ == Mode::kNone) mode_ = Mode::kGraph;
  SDN_CHECK_MSG(mode_ == Mode::kGraph,
                "TIntervalChecker feed methods must not be mixed");
  DiffSorted(prev_edges_, g.Edges(), scratch_delta_);
  prev_edges_.assign(g.Edges().begin(), g.Edges().end());
  return PushDeltaImpl(scratch_delta_);
}

bool TIntervalChecker::PushDelta(const TopologyDelta& delta) {
  if (mode_ == Mode::kNone) mode_ = Mode::kDelta;
  SDN_CHECK_MSG(mode_ == Mode::kDelta,
                "TIntervalChecker feed methods must not be mixed");
  return PushDeltaImpl(delta);
}

bool TIntervalChecker::PushDeltaImpl(const TopologyDelta& delta) {
  const std::int64_t r = ++rounds_seen_;
  // The window [r-T+1, r] intersection is exactly the present edges with
  // since <= threshold.
  const std::int64_t threshold = r - t_ + 1;

  for (const Edge& e : delta.removed) {
    const auto it = since_.find(Key(e));
    SDN_CHECK_MSG(it != since_.end(),
                  "T-interval checker: delta removes absent edge ("
                      << e.u << "," << e.v << ") at round " << r);
    if (it->second <= threshold - 1) {
      // Was in the previous round's stable set; the intersection shrinks.
      --stable_count_;
      forest_.Erase(Key(e));  // marks the forest dirty iff a tree edge
    }
    since_.erase(it);
  }

  // Added edges (re)appear now and can age into the stable set at round
  // r + T - 1; for T == 1 that is this very round, handled by the aging
  // pass below reading the bucket entries just pushed.
  auto& incoming = aging_[static_cast<std::size_t>((r + t_ - 1) % t_)];
  for (const Edge& e : delta.added) {
    const bool inserted = since_.emplace(Key(e), r).second;
    SDN_CHECK_MSG(inserted, "T-interval checker: delta adds present edge ("
                                << e.u << "," << e.v << ") at round " << r);
    incoming.push_back(e);
  }

  // Aging pass: edges scheduled for this round join the stable set if they
  // are still present and were not re-added since scheduling.
  auto& bucket = aging_[static_cast<std::size_t>(r % t_)];
  for (const Edge& e : bucket) {
    const auto it = since_.find(Key(e));
    if (it != since_.end() && it->second == threshold) {
      ++stable_count_;
      forest_.Insert(e.u, e.v, Key(e));  // near-O(α) union
    }
  }
  bucket.clear();

  if (r >= t_) {
    if (forest_.dirty()) RebuildForest(threshold);
    const bool connected = forest_.connected();
    min_stable_forest_ =
        std::min(min_stable_forest_, forest_.forest_size());
    if (!connected) {
      if (ok_) first_bad_window_ = r - t_;
      ok_ = false;
      if (cert_ > 0) {
        cert_ = std::min(cert_, LargestConnectedSuffix(r, t_));
      }
    }
  } else {
    EvaluateBootstrap(r);
  }
  return ok_;
}

void TIntervalChecker::RebuildForest(std::int64_t threshold) {
  forest_.BeginRebuild();
  std::int64_t counted = 0;
  for (const auto& [key, since] : since_) {
    if (since <= threshold) {
      forest_.Insert(static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xffffffffULL), key);
      ++counted;
    }
  }
  SDN_CHECK_MSG(counted == stable_count_,
                "T-interval checker stable-set bookkeeping drifted: counted "
                    << stable_count_ << ", found " << counted);
}

void TIntervalChecker::EvaluateBootstrap(std::int64_t r) {
  // Streams shorter than T have no complete window yet; the promise
  // restricted to the rounds that exist is the prefix intersection
  // [1, r] = the present edges that have been in since round 1.
  scratch_uf_.Reset(static_cast<std::size_t>(n_));
  for (const auto& [key, since] : since_) {
    if (since <= 1) {
      scratch_uf_.Union(static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffULL));
    }
  }
  boot_forest_ = static_cast<std::int64_t>(n_) -
                 static_cast<std::int64_t>(scratch_uf_.num_components());
  const bool connected = scratch_uf_.num_components() == 1;
  if (!connected && cert_ > 0) {
    cert_ = std::min(cert_, LargestConnectedSuffix(r, r));
  }
}

std::int64_t TIntervalChecker::LargestConnectedSuffix(std::int64_t r,
                                                      std::int64_t cap) {
  // Bucket present edges by clamp(since - (r-cap+1), 0, cap-1); adding the
  // buckets in ascending order makes the union-find hold, after bucket i,
  // the intersection of the window [r-cap+1+i, r] — the first connected
  // prefix of buckets identifies the longest connected suffix window.
  const std::int64_t base = r - cap + 1;
  if (sweep_buckets_.size() < static_cast<std::size_t>(cap)) {
    sweep_buckets_.resize(static_cast<std::size_t>(cap));
  }
  for (std::int64_t i = 0; i < cap; ++i) {
    sweep_buckets_[static_cast<std::size_t>(i)].clear();
  }
  for (const auto& [key, since] : since_) {
    const std::int64_t idx = std::max<std::int64_t>(since - base, 0);
    sweep_buckets_[static_cast<std::size_t>(idx)].push_back(key);
  }
  scratch_uf_.Reset(static_cast<std::size_t>(n_));
  for (std::int64_t i = 0; i < cap; ++i) {
    for (const std::uint64_t key : sweep_buckets_[static_cast<std::size_t>(i)]) {
      scratch_uf_.Union(static_cast<NodeId>(key >> 32),
                        static_cast<NodeId>(key & 0xffffffffULL));
    }
    if (scratch_uf_.num_components() == 1) return cap - i;
  }
  return 0;
}

bool TIntervalChecker::PushComposition(const RoundComposition& comp,
                                       std::span<const Edge> round_edges) {
  if (mode_ == Mode::kNone) mode_ = Mode::kComposition;
  SDN_CHECK_MSG(mode_ == Mode::kComposition,
                "TIntervalChecker feed methods must not be mixed");
  SDN_CHECK_MSG(comp.core_id != kNoId,
                "RoundComposition requires a core id");
  const std::int64_t r = ++rounds_seen_;
  if (ring_fresh_.empty()) {
    ring_fresh_.resize(static_cast<std::size_t>(t_));
    ring_ids_.assign(static_cast<std::size_t>(t_), {kNoId, kNoId});
    spines_.reserve(2 * static_cast<std::size_t>(t_) + 8);
  }
  const auto slot = static_cast<std::size_t>((r - 1) % t_);
  ring_fresh_[slot].assign(comp.fresh.begin(), comp.fresh.end());
  ring_ids_[slot] = {comp.core_id,
                     comp.support.empty() ? kNoId : comp.support_id};

  bool full_verify = false;
  EnsureSpineVerified(comp.core_id, comp.core, comp.core_owner, &full_verify);
  if (!comp.support.empty()) {
    SDN_CHECK_MSG(comp.support_id != kNoId,
                  "RoundComposition support span without an id");
    EnsureSpineVerified(comp.support_id, comp.support, comp.support_owner,
                        &full_verify);
  }
  CheckComposition(comp, round_edges, r, full_verify);

  const std::int64_t cap = std::min<std::int64_t>(t_, r);
  bool connected = false;
  std::int64_t forest = n_ - 1;
  if (FindWitness(r, cap) != kNoId) {
    // Some verified-connected pinned set is contained in every round of the
    // window: the window intersection contains a connected spanning
    // subgraph — the T-interval promise verbatim, no intersection needed.
    connected = true;
  } else {
    ExactWindow(r, cap, &connected, &forest);
  }
  if (r >= t_) {
    min_stable_forest_ = std::min(min_stable_forest_, forest);
    if (!connected) {
      if (ok_) first_bad_window_ = r - t_;
      ok_ = false;
    }
  } else {
    boot_forest_ = forest;
  }
  if (!connected && cert_ > 0) {
    cert_ = std::min(cert_, LargestConnectedSuffixFromRing(r, cap));
  }
  return ok_;
}

const TIntervalChecker::SpineRecord* TIntervalChecker::FindSpine(
    std::uint64_t id) const {
  for (const SpineRecord& rec : spines_) {
    if (rec.id == id) return &rec;
  }
  return nullptr;
}

void TIntervalChecker::EnsureSpineVerified(
    std::uint64_t id, std::span<const Edge> edges,
    const std::shared_ptr<const std::vector<Edge>>& owner,
    bool* full_verify) {
  // Shared-ownership span-lifetime contract: the span must point into the
  // owner's buffer, which the record below pins for as long as the id can
  // be referenced (ring lifetime). No defensive copy is made anywhere.
  SDN_CHECK_MSG(owner != nullptr,
                "RoundComposition id " << id
                                       << " has no shared owner (the span-"
                                          "lifetime contract requires one)");
  SDN_CHECK_MSG(edges.data() >= owner->data() &&
                    edges.data() + edges.size() <= owner->data() + owner->size(),
                "RoundComposition id " << id
                                       << " span outside its owner's buffer");
  for (const SpineRecord& rec : spines_) {
    if (rec.id != id) continue;
    SDN_CHECK_MSG(rec.data == edges.data() && rec.size == edges.size(),
                  "RoundComposition id " << id
                                         << " reused for a different span");
    return;
  }
  // New id: one union-find pass over the span, early-exiting the moment
  // the set is connected. The span is scanned in a strided interleave: the
  // sorted order leaves high-numbered vertices isolated until their own
  // block (forcing a near-full scan before the exit), while an
  // approximately uniform edge order connects a random graph after about
  // (n/2)·ln n edges — typically half the span. The whole span still fits
  // in L2, so the stride costs nothing.
  scratch_uf_.Reset(static_cast<std::size_t>(n_));
  bool connected = n_ <= 1;
  const std::size_t m = edges.size();
  constexpr std::size_t kStride = 8;
  for (std::size_t phase = 0; phase < kStride && !connected; ++phase) {
    for (std::size_t i = phase; i < m; i += kStride) {
      const Edge& e = edges[i];
      scratch_uf_.Union(e.u, e.v);
      if (scratch_uf_.num_components() == 1) {
        connected = true;
        break;
      }
    }
  }
  ++ids_first_seen_;
  // Full union verification of the composition claim on a fixed schedule
  // of first-seen ids: always the first two (catches structural breakage
  // immediately), then every 16th (bounds the amortized cost; the
  // per-round sampled probes in CheckComposition cover the rest).
  if (ids_first_seen_ <= 2 || ids_first_seen_ % 16 == 0) {
    *full_verify = true;
  }
  // The FIFO eviction horizon of 2T+8 ids can never reach an id still
  // referenced by the last-T ring (at most two new ids per round), so the
  // owned copies the fallback reconstructs from are always available.
  const std::size_t cap = 2 * static_cast<std::size_t>(t_) + 8;
  SpineRecord* rec;
  if (spines_.size() < cap) {
    rec = &spines_.emplace_back();
  } else {
    rec = &spines_[spine_evict_ % cap];
    ++spine_evict_;
  }
  rec->id = id;
  rec->data = edges.data();
  rec->size = edges.size();
  rec->connected = connected;
  rec->owner = owner;
}

void TIntervalChecker::CheckComposition(const RoundComposition& comp,
                                        std::span<const Edge> round_edges,
                                        std::int64_t r, bool full) {
  const auto edges = round_edges;
  const auto e_size = static_cast<std::int64_t>(edges.size());
  SDN_CHECK_MSG(
      e_size >= static_cast<std::int64_t>(comp.core.size()) &&
          e_size >= static_cast<std::int64_t>(comp.support.size()) &&
          e_size <= static_cast<std::int64_t>(comp.core.size() +
                                              comp.support.size() +
                                              comp.fresh.size()),
      "RoundComposition size bounds broken at round " << r);
  if (full) {
    // Exact: walk E_r against the three claimed spans in lockstep. Every
    // span entry must appear in E_r and every E_r edge must be claimed.
    std::size_t ci = 0;
    std::size_t si = 0;
    std::size_t fi = 0;
    for (const Edge& e : edges) {
      const std::uint64_t ke = Key(e);
      bool matched = false;
      const auto eat = [&](std::span<const Edge> s, std::size_t& idx) {
        SDN_CHECK_MSG(idx >= s.size() || Key(s[idx]) >= ke,
                      "RoundComposition claims an edge absent from the "
                      "round at round "
                          << r);
        if (idx < s.size() && Key(s[idx]) == ke) {
          ++idx;
          matched = true;
        }
      };
      eat(comp.core, ci);
      eat(comp.support, si);
      eat(comp.fresh, fi);
      SDN_CHECK_MSG(matched, "RoundComposition misses edge ("
                                 << e.u << "," << e.v << ") at round " << r);
    }
    SDN_CHECK_MSG(ci == comp.core.size() && si == comp.support.size() &&
                      fi == comp.fresh.size(),
                  "RoundComposition claims edges beyond the round's range "
                  "at round "
                      << r);
    return;
  }
  // Sampled membership probes, deterministic in the round number: cheap
  // continuous cross-checking between the scheduled full verifications.
  std::uint64_t x = static_cast<std::uint64_t>(r) * 0x9E3779B97F4A7C15ULL;
  const auto probe = [&](std::span<const Edge> s, int k, const char* what) {
    if (s.empty()) return;
    for (int i = 0; i < k; ++i) {
      const Edge& e = s[Mix64(x) % s.size()];
      SDN_CHECK_MSG(ContainsEdge(edges, e),
                    "RoundComposition " << what << " edge (" << e.u << ","
                                        << e.v
                                        << ") absent from round " << r);
    }
  };
  probe(comp.core, 4, "core");
  probe(comp.support, 2, "support");
  probe(comp.fresh, 2, "fresh");
}

std::uint64_t TIntervalChecker::FindWitness(std::int64_t r,
                                            std::int64_t cap) const {
  // A witness must be pinned in the window's oldest round, so the (at most
  // two) candidate ids come from there; each is checked against the newer
  // rounds' id pairs.
  const auto& oldest = ring_ids_[static_cast<std::size_t>((r - cap) % t_)];
  for (const std::uint64_t id : oldest) {
    if (id == kNoId) continue;
    bool everywhere = true;
    for (std::int64_t s = r - cap + 2; s <= r; ++s) {
      const auto& ids = ring_ids_[static_cast<std::size_t>((s - 1) % t_)];
      if (ids[0] != id && ids[1] != id) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) {
      const SpineRecord* rec = FindSpine(id);
      if (rec != nullptr && rec->connected) return id;
    }
  }
  return kNoId;
}

void TIntervalChecker::ReconstructRound(std::int64_t s, std::vector<Edge>& out) {
  const auto slot = static_cast<std::size_t>((s - 1) % t_);
  const auto& ids = ring_ids_[slot];
  const SpineRecord* core = FindSpine(ids[0]);
  SDN_CHECK_MSG(core != nullptr,
                "T-interval checker: spine id " << ids[0]
                    << " evicted while round " << s << " is in the ring");
  const std::vector<Edge>& fresh = ring_fresh_[slot];
  if (ids[1] != kNoId) {
    const SpineRecord* support = FindSpine(ids[1]);
    SDN_CHECK_MSG(support != nullptr,
                  "T-interval checker: spine id " << ids[1]
                      << " evicted while round " << s << " is in the ring");
    UnionSorted(core->edges(), support->edges(), recon_base_);
    UnionSorted(recon_base_, fresh, out);
  } else {
    UnionSorted(core->edges(), fresh, out);
  }
}

void TIntervalChecker::ExactWindow(std::int64_t r, std::int64_t cap,
                                   bool* connected, std::int64_t* forest) {
  ReconstructRound(r, isect_a_);
  for (std::int64_t s = r - 1; s >= r - cap + 1; --s) {
    ReconstructRound(s, recon_);
    IntersectSorted(isect_a_, recon_, isect_b_);
    std::swap(isect_a_, isect_b_);
  }
  scratch_uf_.Reset(static_cast<std::size_t>(n_));
  for (const Edge& e : isect_a_) scratch_uf_.Union(e.u, e.v);
  *connected = scratch_uf_.num_components() == 1;
  *forest = static_cast<std::int64_t>(n_) -
            static_cast<std::int64_t>(scratch_uf_.num_components());
}

std::int64_t TIntervalChecker::LargestConnectedSuffixFromRing(
    std::int64_t r, std::int64_t cap) {
  // Window connectivity is downward-closed in the window length (longer
  // windows intersect to subsets), so grow the suffix until it breaks.
  std::int64_t best = 0;
  ReconstructRound(r, isect_a_);
  for (std::int64_t len = 1; len <= cap; ++len) {
    if (len > 1) {
      ReconstructRound(r - len + 1, recon_);
      IntersectSorted(isect_a_, recon_, isect_b_);
      std::swap(isect_a_, isect_b_);
    }
    scratch_uf_.Reset(static_cast<std::size_t>(n_));
    bool connected = n_ <= 1;
    for (const Edge& e : isect_a_) {
      scratch_uf_.Union(e.u, e.v);
      if (scratch_uf_.num_components() == 1) {
        connected = true;
        break;
      }
    }
    if (!connected) break;
    best = len;
  }
  return best;
}

std::int64_t TIntervalChecker::ApproxBytes() const {
  const auto vec = [](const auto& v) {
    using T = typename std::decay_t<decltype(v)>::value_type;
    return static_cast<std::int64_t>(v.capacity() * sizeof(T));
  };
  // Hash map: per-entry node (key + value + chain pointer) plus the bucket
  // array. Both counts are pure functions of the pushed stream, so the
  // total is as deterministic as the rest of the checker's state.
  std::int64_t total = static_cast<std::int64_t>(
      since_.size() *
          (sizeof(std::uint64_t) + sizeof(std::int64_t) + sizeof(void*)) +
      since_.bucket_count() * sizeof(void*));
  for (const auto& bucket : aging_) total += vec(bucket);
  total += forest_.ApproxBytes() + scratch_uf_.ApproxBytes();
  for (const auto& bucket : sweep_buckets_) total += vec(bucket);
  total += vec(prev_edges_);
  total += vec(scratch_delta_.added) + vec(scratch_delta_.removed);
  for (const auto& fresh : ring_fresh_) total += vec(fresh);
  total += vec(ring_ids_);
  total += static_cast<std::int64_t>(spines_.capacity() * sizeof(SpineRecord));
  total += vec(isect_a_) + vec(isect_b_) + vec(recon_) + vec(recon_base_);
  return total;
}

std::int64_t TIntervalChecker::certified_T() const { return cert_; }

std::int64_t TIntervalChecker::min_stable_forest() const {
  return rounds_seen_ < t_ ? boot_forest_ : min_stable_forest_;
}

}  // namespace sdn::graph
