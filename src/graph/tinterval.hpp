// T-interval connectivity checking over dynamic graph sequences.
//
// The adversary contract is: for every window of T consecutive rounds, the
// intersection of the window's topologies contains a connected spanning
// subgraph (equivalently: the intersection graph itself is connected, since
// any common spanning connected subgraph is a subgraph of the intersection).
// Tests run every adversary through this validator.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace sdn::graph {

/// Result of validating one sequence.
struct TIntervalReport {
  bool ok = true;
  /// First (0-based) window start whose intersection is disconnected.
  std::int64_t first_bad_window = -1;
  /// Number of windows checked.
  std::int64_t windows_checked = 0;
  /// Minimum over windows of the intersection's spanning-forest size
  /// (n-1 for every window iff ok). With ValidateMode::kEarlyExit this is
  /// only a partial minimum (windows after the first violation are never
  /// intersected).
  std::int64_t min_stable_forest = 0;
};

enum class ValidateMode {
  /// Check every window; min_stable_forest is the true minimum.
  kFull,
  /// Stop at the first disconnected window. ok/first_bad_window are exact;
  /// windows_checked and min_stable_forest only cover the prefix. Use from
  /// callers that never read min_stable_forest.
  kEarlyExit,
};

/// Checks T-interval connectivity of the full sequence. All graphs must
/// have equal node counts; T >= 1. Sequences shorter than T have no
/// complete window; the whole-sequence intersection is then required to be
/// connected instead (the promise restricted to the windows that exist —
/// exactly the windows_checked = len - min(T, len) + 1 clamped windows).
TIntervalReport ValidateTInterval(std::span<const Graph> sequence, int T,
                                  ValidateMode mode = ValidateMode::kFull);

/// How a round's topology was assembled, exposed by adversaries whose
/// rounds share long-lived structure (net::Adversary::Composition). The
/// claim is
///
///   E_r == core ∪ support ∪ fresh   (each span sorted and duplicate-free;
///                                    the spans may overlap each other)
///
/// where `core` and `support` are pinned edge sets with stable identity
/// tokens: the same id MUST always denote the same edge set (and, for
/// pooled buffers, the same span). The streaming checker certifies a
/// window the moment one connected id appears in every round of it —
/// literally the T-interval promise's common connected spanning subgraph —
/// so per-round certification cost collapses to one connectivity pass per
/// *new* id instead of per round.
///
/// Span lifetime is a shared-ownership contract: `core_owner` /
/// `support_owner` hold the vectors the `core` / `support` spans point
/// into. A consumer (the checker's spine cache, the engine's async
/// certification lane) retains the shared_ptr instead of copying the
/// edges, and the adversary may retire the pinned set whenever it likes —
/// the data outlives it as long as anyone still certifies against it.
/// Owners are required whenever the matching span is non-empty (the
/// checker enforces it); `fresh` stays a borrowed span, valid only until
/// the next topology call — consumers that outlive the round copy it
/// (it is O(volatile edges), not O(E)).
struct RoundComposition {
  static constexpr std::uint64_t kNoId = ~0ULL;
  std::span<const Edge> core;
  std::uint64_t core_id = kNoId;
  std::span<const Edge> support;       // empty when the round has none
  std::uint64_t support_id = kNoId;    // meaningful iff !support.empty()
  std::span<const Edge> fresh;         // per-round extras (volatile edges)
  /// Shared owners of the buffers `core`/`support` point into. Each span
  /// must lie inside its owner's buffer; the checker pins the owner for as
  /// long as the id can still be referenced (span-identity test pins this).
  std::shared_ptr<const std::vector<Edge>> core_owner;
  std::shared_ptr<const std::vector<Edge>> support_owner;
};

/// Incremental validator for streaming use (the engine validates as the
/// adversary emits rounds, without storing the whole run).
///
/// Delta-driven: instead of buffering the last T graphs and intersecting
/// them every round (O(T·E) per round), the checker tracks, per present
/// edge, the round it most recently (re)appeared. The T-window intersection
/// at round r is exactly the present edges with `since <= r - T + 1`, so
/// per-round maintenance is O(|Δ|) amortized — removed edges leave, added
/// edges are scheduled to "age into" the stable set T-1 rounds later — and
/// connectivity rides an IncrementalForest: aged-in edges union in O(α),
/// non-tree removals are free, and only a tree-edge removal forces a lazy
/// O(stable) rebuild (bounded by the deltas that created those tree edges).
///
/// PushComposition is the certification fast path for adversaries that
/// expose their round structure (RoundComposition): windows are certified
/// by witness ids — one union-find pass per new id, O(T) id bookkeeping
/// per round — and only witness-less rounds fall back to exact
/// intersection over the last T rounds, reconstructed from owned spine
/// copies plus a small per-round fresh-edge ring. Rounds the witness rule
/// certifies never materialize the intersection, so stable_edge_count()
/// is unavailable (-1) in this mode.
///
/// Feed methods must not be mixed within one instance: pick Push,
/// PushDelta, or PushComposition and stay with it (checked). The one
/// exception is Push -> PushDelta hand-off, which the engine never needs
/// and the checker rejects anyway for simplicity.
class TIntervalChecker {
 public:
  TIntervalChecker(NodeId n, int T);

  /// Feeds the next round's topology; returns false on first violation
  /// (and stays false afterwards). Diffs against the previous round
  /// internally — use PushDelta when the caller already has the delta.
  bool Push(const Graph& g);

  /// Delta fast path: feeds round `rounds_seen()+1` as the delta against
  /// the previous round's topology (everything `added` on the first call).
  /// The delta must satisfy the graph/delta.hpp contract.
  bool PushDelta(const TopologyDelta& delta);

  /// Composition fast path: feeds round `rounds_seen()+1` as the graph
  /// plus the adversary's structural claim about it. The claimed spans are
  /// cross-checked against `g` (per-round sampled membership probes, full
  /// union verification on a fixed schedule of first-seen ids); a claim
  /// that fails a check throws CheckError rather than certifying garbage.
  bool PushComposition(const RoundComposition& comp, const Graph& g) {
    SDN_CHECK(g.num_nodes() == n_);
    return PushComposition(comp, g.Edges());
  }

  /// Span form of the composition push: `round_edges` is the round's full
  /// sorted edge list (what g.Edges() would be). This is the entry point
  /// the engine's asynchronous certification lane uses — the lane owns a
  /// copy of the round's edge list plus the composition (whose core /
  /// support data is pinned through the shared-ownership contract), so no
  /// Graph needs to stay alive while certification trails the round.
  bool PushComposition(const RoundComposition& comp,
                       std::span<const Edge> round_edges);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::int64_t rounds_seen() const { return rounds_seen_; }
  [[nodiscard]] std::int64_t first_bad_window() const {
    return first_bad_window_;
  }
  /// Edges that have aged into every window ending at the last pushed round
  /// (the checker's witness size, surfaced for the flight recorder's
  /// kCheckerWindow track). -1 in composition mode, which certifies
  /// windows without materializing their intersections.
  [[nodiscard]] std::int64_t stable_edge_count() const {
    return mode_ == Mode::kComposition ? -1 : stable_count_;
  }
  /// Largest T' <= T such that the rounds seen so far satisfy the
  /// T'-interval promise (every clamped window [max(1, r-T'+1), r] has a
  /// connected intersection). Equals T while ok(); drops to the observed
  /// level on violation; 0 if even single rounds were disconnected.
  /// Matches batch semantics: certified_T() >= T' iff
  /// ValidateTInterval(seq, T').ok for every T' <= T.
  [[nodiscard]] std::int64_t certified_T() const;
  /// Minimum stable-forest size over the complete windows seen so far
  /// (n-1 while ok); for streams still shorter than T, the forest of the
  /// whole-prefix intersection, matching ValidateTInterval's clamping.
  [[nodiscard]] std::int64_t min_stable_forest() const;

  /// Byte footprint of the checker's owned state (edge-age map, aging
  /// ring, incremental forest, scratch buffers, fresh-edge ring). A pure
  /// function of the pushed round stream, so it is safe to surface as a
  /// memory-budget gauge: identical at any engine thread count and with
  /// certification synchronous or on the async lane. Spine data held
  /// through shared owners is the adversary's allocation and is not
  /// double-counted here.
  [[nodiscard]] std::int64_t ApproxBytes() const;

 private:
  enum class Mode { kNone, kGraph, kDelta, kComposition };

  struct SpineRecord {
    std::uint64_t id = RoundComposition::kNoId;
    const Edge* data = nullptr;  // span identity (same id => same span)
    std::size_t size = 0;
    bool connected = false;
    /// Shared owner pinning [data, data+size): the exact-window fallback
    /// reconstructs past rounds straight from the adversary's buffer —
    /// the shared-ownership contract replaced the per-id defensive copy
    /// the checker used to make here.
    std::shared_ptr<const std::vector<Edge>> owner;

    [[nodiscard]] std::span<const Edge> edges() const { return {data, size}; }
  };

  static std::uint64_t Key(const Edge& e) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u))
            << 32) |
           static_cast<std::uint32_t>(e.v);
  }

  // --- general (delta-driven) path ---
  bool PushDeltaImpl(const TopologyDelta& delta);
  void RebuildForest(std::int64_t threshold);
  void EvaluateBootstrap(std::int64_t r);
  /// Largest L <= cap with the suffix window [r-L+1, r]'s intersection
  /// ({since <= r-L+1}) connected; 0 if even E_r is disconnected.
  std::int64_t LargestConnectedSuffix(std::int64_t r, std::int64_t cap);
  // --- composition path ---
  void EnsureSpineVerified(
      std::uint64_t id, std::span<const Edge> edges,
      const std::shared_ptr<const std::vector<Edge>>& owner,
      bool* full_verify);
  [[nodiscard]] const SpineRecord* FindSpine(std::uint64_t id) const;
  void CheckComposition(const RoundComposition& comp,
                        std::span<const Edge> round_edges, std::int64_t r,
                        bool full);
  /// Witness id connected and present in every round of the window of
  /// `cap` rounds ending at r, or kNoId.
  std::uint64_t FindWitness(std::int64_t r, std::int64_t cap) const;
  /// Rebuilds round s's full edge list (spine copies ∪ that round's fresh
  /// edges) into `out` — the composition claim replayed from owned data.
  void ReconstructRound(std::int64_t s, std::vector<Edge>& out);
  /// Exact intersection of the last `cap` rounds (reconstructed); fills
  /// connectivity and forest size.
  void ExactWindow(std::int64_t r, std::int64_t cap, bool* connected,
                   std::int64_t* forest);
  std::int64_t LargestConnectedSuffixFromRing(std::int64_t r,
                                              std::int64_t cap);

  NodeId n_;
  int t_;
  Mode mode_ = Mode::kNone;
  bool ok_ = true;
  std::int64_t rounds_seen_ = 0;
  std::int64_t first_bad_window_ = -1;
  std::int64_t cert_;                // certified T so far (starts at T)
  std::int64_t min_stable_forest_;   // over complete windows (starts n-1)
  std::int64_t boot_forest_ = 0;     // last prefix-window forest (r < T)

  // General path: present edges -> round they most recently (re)appeared.
  std::unordered_map<std::uint64_t, std::int64_t> since_;
  /// Ring of T buckets: edges added at round s land in bucket
  /// (s + T - 1) % T and are tested for aging into the stable set at round
  /// s + T - 1. Stale entries (edge removed or re-added meanwhile) are
  /// filtered by re-checking `since_`.
  std::vector<std::vector<Edge>> aging_;
  std::int64_t stable_count_ = 0;
  IncrementalForest forest_;
  UnionFind scratch_uf_{1};
  std::vector<std::vector<std::uint64_t>> sweep_buckets_;
  /// Previous round's edges, kept only for the diffing Push() fallback.
  std::vector<Edge> prev_edges_;
  TopologyDelta scratch_delta_;

  // Composition path: last-T ring of per-round fresh-edge copies and id
  // pairs. Full rounds are never buffered — the witness-less fallback
  // reconstructs them from the owned spine copies, so the per-round copy
  // cost is O(|fresh|), not O(|E|).
  std::vector<std::vector<Edge>> ring_fresh_;
  std::vector<std::array<std::uint64_t, 2>> ring_ids_;
  std::vector<SpineRecord> spines_;   // verified-id cache (FIFO evicted)
  std::size_t spine_evict_ = 0;
  std::int64_t ids_first_seen_ = 0;   // full-verification schedule counter
  std::vector<Edge> isect_a_, isect_b_;  // intersection scratch
  std::vector<Edge> recon_, recon_base_;  // round-reconstruction scratch
};

}  // namespace sdn::graph
