// T-interval connectivity checking over dynamic graph sequences.
//
// The adversary contract is: for every window of T consecutive rounds, the
// intersection of the window's topologies contains a connected spanning
// subgraph (equivalently: the intersection graph itself is connected, since
// any common spanning connected subgraph is a subgraph of the intersection).
// Tests run every adversary through this validator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "graph/graph.hpp"

namespace sdn::graph {

/// Result of validating one sequence.
struct TIntervalReport {
  bool ok = true;
  /// First (0-based) window start whose intersection is disconnected.
  std::int64_t first_bad_window = -1;
  /// Number of windows checked.
  std::int64_t windows_checked = 0;
  /// Minimum over windows of the intersection's spanning-forest size
  /// (n-1 for every window iff ok).
  std::int64_t min_stable_forest = 0;
};

/// Checks T-interval connectivity of the full sequence. All graphs must have
/// equal node counts; T >= 1; sequences shorter than T are checked over the
/// windows that exist (a sequence with fewer than T rounds has none beyond
/// its own length — we then require the whole-sequence intersection to be
/// connected, matching the promise restricted to complete windows only when
/// `partial_tail` is false).
TIntervalReport ValidateTInterval(std::span<const Graph> sequence, int T);

/// Incremental validator for streaming use (the engine validates as the
/// adversary emits rounds, without storing the whole run).
class TIntervalChecker {
 public:
  TIntervalChecker(NodeId n, int T);

  /// Feeds the next round's topology; returns false on first violation
  /// (and stays false afterwards).
  bool Push(const Graph& g);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::int64_t rounds_seen() const { return rounds_seen_; }
  [[nodiscard]] std::int64_t first_bad_window() const {
    return first_bad_window_;
  }

 private:
  NodeId n_;
  int t_;
  bool ok_ = true;
  std::int64_t rounds_seen_ = 0;
  std::int64_t first_bad_window_ = -1;
  std::vector<Graph> window_;  // ring buffer of the last T graphs
};

}  // namespace sdn::graph
