// T-interval connectivity checking over dynamic graph sequences.
//
// The adversary contract is: for every window of T consecutive rounds, the
// intersection of the window's topologies contains a connected spanning
// subgraph (equivalently: the intersection graph itself is connected, since
// any common spanning connected subgraph is a subgraph of the intersection).
// Tests run every adversary through this validator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"

namespace sdn::graph {

/// Result of validating one sequence.
struct TIntervalReport {
  bool ok = true;
  /// First (0-based) window start whose intersection is disconnected.
  std::int64_t first_bad_window = -1;
  /// Number of windows checked.
  std::int64_t windows_checked = 0;
  /// Minimum over windows of the intersection's spanning-forest size
  /// (n-1 for every window iff ok).
  std::int64_t min_stable_forest = 0;
};

/// Checks T-interval connectivity of the full sequence. All graphs must have
/// equal node counts; T >= 1; sequences shorter than T are checked over the
/// windows that exist (a sequence with fewer than T rounds has none beyond
/// its own length — we then require the whole-sequence intersection to be
/// connected, matching the promise restricted to complete windows only when
/// `partial_tail` is false).
TIntervalReport ValidateTInterval(std::span<const Graph> sequence, int T);

/// Incremental validator for streaming use (the engine validates as the
/// adversary emits rounds, without storing the whole run).
///
/// Delta-driven: instead of buffering the last T graphs and intersecting
/// them every round (O(T·E) per round), the checker tracks, per present
/// edge, the round it most recently (re)appeared. The T-window intersection
/// at round r is exactly the present edges with `since <= r - T + 1`, so
/// per-round maintenance is O(|Δ|) amortized — removed edges leave, added
/// edges are scheduled to "age into" the stable set T-1 rounds later — and
/// the connectivity of the stable set is re-evaluated (one union-find pass)
/// only on rounds where the set actually changed.
class TIntervalChecker {
 public:
  TIntervalChecker(NodeId n, int T);

  /// Feeds the next round's topology; returns false on first violation
  /// (and stays false afterwards). Diffs against the previous round
  /// internally — use PushDelta when the caller already has the delta.
  bool Push(const Graph& g);

  /// Delta fast path: feeds round `rounds_seen()+1` as the delta against
  /// the previous round's topology (everything `added` on the first call).
  /// The delta must satisfy the graph/delta.hpp contract.
  bool PushDelta(const TopologyDelta& delta);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::int64_t rounds_seen() const { return rounds_seen_; }
  [[nodiscard]] std::int64_t first_bad_window() const {
    return first_bad_window_;
  }
  /// Edges that have aged into every window ending at the last pushed round
  /// (the checker's witness size, surfaced for the flight recorder's
  /// kCheckerWindow track).
  [[nodiscard]] std::int64_t stable_edge_count() const {
    return stable_count_;
  }

 private:
  static std::uint64_t Key(const Edge& e) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u))
            << 32) |
           static_cast<std::uint32_t>(e.v);
  }

  void EvaluateStable(std::int64_t threshold);

  NodeId n_;
  int t_;
  bool ok_ = true;
  std::int64_t rounds_seen_ = 0;
  std::int64_t first_bad_window_ = -1;
  /// Present edges -> round they most recently (re)appeared.
  std::unordered_map<std::uint64_t, std::int64_t> since_;
  /// Ring of T buckets: edges added at round s land in bucket
  /// (s + T - 1) % T and are tested for aging into the stable set at round
  /// s + T - 1. Stale entries (edge removed or re-added meanwhile) are
  /// filtered by re-checking `since_`.
  std::vector<std::vector<Edge>> aging_;
  std::int64_t stable_count_ = 0;
  bool stable_dirty_ = false;
  bool stable_connected_ = false;
  /// Previous round's edges, kept only for the diffing Push() fallback.
  std::vector<Edge> prev_edges_;
  TopologyDelta scratch_delta_;
};

}  // namespace sdn::graph
