#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

#include "util/check.hpp"

namespace sdn::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), components_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
}

void UnionFind::Reset(std::size_t n) {
  parent_.resize(n);
  size_.assign(n, 1);
  components_ = n;
  for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<NodeId>(i);
}

IncrementalForest::IncrementalForest(NodeId n)
    : n_(n), uf_(static_cast<std::size_t>(n)) {
  SDN_CHECK(n >= 1);
}

void IncrementalForest::Reset(NodeId n) {
  SDN_CHECK(n >= 1);
  n_ = n;
  uf_.Reset(static_cast<std::size_t>(n));
  tree_.clear();
  dirty_ = false;
}

void IncrementalForest::BeginRebuild() {
  uf_.Reset(static_cast<std::size_t>(n_));
  tree_.clear();
  dirty_ = false;
}

void IncrementalForest::Insert(NodeId u, NodeId v, std::uint64_t key) {
  if (dirty_) return;  // rebuild will re-derive everything
  if (uf_.Union(u, v)) {
    tree_.insert(std::lower_bound(tree_.begin(), tree_.end(), key), key);
  }
}

void IncrementalForest::Erase(std::uint64_t key) {
  if (dirty_) return;
  const auto it = std::lower_bound(tree_.begin(), tree_.end(), key);
  if (it != tree_.end() && *it == key) {
    // A spanning-tree edge left: connectivity may have changed and the
    // union-find cannot split — defer to the owner's lazy rebuild.
    dirty_ = true;
  }
  // Non-tree (cycle) edges leave the spanning forest intact.
}

std::vector<std::int32_t> BfsDistances(const Graph& g, NodeId source) {
  SDN_CHECK(source >= 0 && source < g.num_nodes());
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<NodeId> frontier;
  dist[static_cast<std::size_t>(source)] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.Neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool IsConnected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  const auto dist = BfsDistances(g, 0);
  return std::all_of(dist.begin(), dist.end(), [](std::int32_t d) { return d >= 0; });
}

std::vector<NodeId> ComponentLabels(const Graph& g) {
  UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
  for (const Edge& e : g.Edges()) uf.Union(e.u, e.v);
  std::vector<NodeId> labels(static_cast<std::size_t>(g.num_nodes()));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    labels[static_cast<std::size_t>(u)] = uf.Find(u);
  }
  return labels;
}

std::int32_t Eccentricity(const Graph& g, NodeId source) {
  const auto dist = BfsDistances(g, source);
  std::int32_t ecc = 0;
  for (const std::int32_t d : dist) {
    if (d < 0) return -1;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t Diameter(const Graph& g) {
  if (g.num_nodes() == 0) return 0;
  std::int32_t diam = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::int32_t ecc = Eccentricity(g, u);
    if (ecc < 0) return -1;
    diam = std::max(diam, ecc);
  }
  return diam;
}

std::optional<std::vector<Edge>> BfsSpanningTree(const Graph& g, NodeId root) {
  SDN_CHECK(root >= 0 && root < g.num_nodes());
  std::vector<bool> seen(static_cast<std::size_t>(g.num_nodes()), false);
  std::vector<Edge> tree;
  std::queue<NodeId> frontier;
  seen[static_cast<std::size_t>(root)] = true;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : g.Neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        tree.emplace_back(u, v);
        frontier.push(v);
      }
    }
  }
  if (!std::all_of(seen.begin(), seen.end(), [](bool b) { return b; })) {
    return std::nullopt;
  }
  return tree;
}

std::int64_t SpanningForestSize(const Graph& g) {
  UnionFind uf(static_cast<std::size_t>(g.num_nodes()));
  for (const Edge& e : g.Edges()) uf.Union(e.u, e.v);
  return g.num_nodes() - static_cast<std::int64_t>(uf.num_components());
}

}  // namespace sdn::graph
