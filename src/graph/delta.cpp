#include "graph/delta.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sdn::graph {

void DiffSorted(std::span<const Edge> from, std::span<const Edge> to,
                TopologyDelta& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < from.size() && j < to.size()) {
    if (from[i] < to[j]) {
      out.removed.push_back(from[i++]);
    } else if (to[j] < from[i]) {
      out.added.push_back(to[j++]);
    } else {
      ++i;
      ++j;
    }
  }
  out.removed.insert(out.removed.end(), from.begin() + static_cast<std::ptrdiff_t>(i),
                     from.end());
  out.added.insert(out.added.end(), to.begin() + static_cast<std::ptrdiff_t>(j),
                   to.end());
}

TopologyDelta Diff(const Graph& from, const Graph& to) {
  SDN_CHECK_MSG(from.num_nodes() == to.num_nodes(),
                "Diff on mismatched node counts: " << from.num_nodes() << " vs "
                                                   << to.num_nodes());
  TopologyDelta out;
  DiffSorted(from.Edges(), to.Edges(), out);
  return out;
}

namespace {

/// Edge as one 64-bit key preserving (u,v) lexicographic order (both fields
/// are non-negative 31-bit values), so a merge decision is a single compare.
std::uint64_t EdgeKey(const Edge& e) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)) << 32) |
         static_cast<std::uint32_t>(e.v);
}

}  // namespace

void UnionSorted(std::span<const Edge> a, std::span<const Edge> b,
                 std::vector<Edge>& out) {
  out.resize(a.size() + b.size());
  const Edge* pa = a.data();
  const Edge* const ae = pa + a.size();
  const Edge* pb = b.data();
  const Edge* const be = pb + b.size();
  Edge* o = out.data();
  // Both inputs are sorted-unique, so duplicates only occur across the
  // lists; on a tie both sides advance and the element is written once.
  // The selects compile to conditional moves — the interleaving of two
  // independently generated spines is random, so a branch here would
  // mispredict roughly every other element.
  while (pa != ae && pb != be) {
    const std::uint64_t ka = EdgeKey(*pa);
    const std::uint64_t kb = EdgeKey(*pb);
    *o++ = ka <= kb ? *pa : *pb;
    pa += static_cast<std::ptrdiff_t>(ka <= kb);
    pb += static_cast<std::ptrdiff_t>(kb <= ka);
  }
  o = std::copy(pa, ae, o);
  o = std::copy(pb, be, o);
  out.resize(static_cast<std::size_t>(o - out.data()));
}

namespace {

void CheckSortedUniqueInRange(std::span<const Edge> edges, NodeId n,
                              const char* which) {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    SDN_CHECK_MSG(e.u >= 0 && e.v < n, "delta " << which << " edge (" << e.u
                                                << "," << e.v
                                                << ") out of range for n=" << n);
    SDN_CHECK_MSG(i == 0 || edges[i - 1] < e,
                  "delta " << which << " list not sorted/unique at index " << i);
  }
}

}  // namespace

void CheckDeltaWellFormed(const TopologyDelta& delta, NodeId n) {
  CheckSortedUniqueInRange(delta.added, n, "added");
  CheckSortedUniqueInRange(delta.removed, n, "removed");
  // Disjointness: one merge walk over the two sorted lists.
  std::size_t a = 0;
  std::size_t r = 0;
  while (a < delta.added.size() && r < delta.removed.size()) {
    if (delta.added[a] < delta.removed[r]) {
      ++a;
    } else if (delta.removed[r] < delta.added[a]) {
      ++r;
    } else {
      SDN_CHECK_MSG(false, "delta adds and removes the same edge ("
                               << delta.added[a].u << "," << delta.added[a].v
                               << ")");
    }
  }
}

DynGraph::DynGraph(NodeId n) : g_(n) { RebuildDegrees(); }

DynGraph::DynGraph(Graph g) : g_(std::move(g)) { RebuildDegrees(); }

void DynGraph::Reset(const Graph& g) {
  g_ = g;
  RebuildDegrees();
}

void DynGraph::Reset(NodeId n) {
  g_ = Graph(n);
  RebuildDegrees();
}

void DynGraph::RebuildDegrees() {
  const auto n = static_cast<std::size_t>(g_.num_nodes());
  degrees_.resize(n);
  for (std::size_t u = 0; u < n; ++u) {
    degrees_[u] = static_cast<NodeId>(g_.offsets_[u + 1] - g_.offsets_[u]);
  }
}

const Graph& DynGraph::Apply(const TopologyDelta& delta) {
  if (delta.empty()) return g_;
  CheckDeltaWellFormed(delta, g_.num_nodes());

  // Patch the sorted edge list into the double buffer. All contract checks
  // happen before any member other than the scratch buffer mutates, so a
  // CheckError leaves the graph exactly as it was. Two strategies by delta
  // density: sparse deltas block-copy the untouched runs between flips
  // (O(|Δ| log E) decision points plus the bytes moved); dense deltas — a
  // high-churn adversary swapping most of the graph — take one linear merge
  // walk instead, where a lower_bound per flip would cost more than the walk
  // it skips.
  const std::vector<Edge>& old = g_.edges_;
  scratch_edges_.clear();
  scratch_edges_.reserve(old.size() + delta.added.size());
  if (delta.size() * 8 >= static_cast<std::int64_t>(old.size())) {
    const Edge* o = old.data();
    const Edge* const oe = o + old.size();
    const Edge* ad = delta.added.data();
    const Edge* const ade = ad + delta.added.size();
    const Edge* rm = delta.removed.data();
    const Edge* const rme = rm + delta.removed.size();
    while (o != oe || ad != ade) {
      if (ad != ade && (o == oe || *ad < *o)) {
        scratch_edges_.push_back(*ad++);
        continue;
      }
      if (rm != rme && *rm == *o) {
        ++rm;
        ++o;
        continue;
      }
      SDN_CHECK_MSG(rm == rme || *o < *rm,
                    "delta removes edge (" << rm->u << "," << rm->v
                                           << ") not present");
      SDN_CHECK_MSG(ad == ade || !(*ad == *o),
                    "delta adds edge (" << ad->u << "," << ad->v
                                        << ") already present");
      scratch_edges_.push_back(*o++);
    }
    // Message only renders on failure, where rm != rme holds.
    SDN_CHECK_MSG(rm == rme, "delta removes edge (" << rm->u << "," << rm->v
                                                    << ") not present");
  } else {
    std::size_t i = 0;
    std::size_t a = 0;
    std::size_t r = 0;
    while (a < delta.added.size() || r < delta.removed.size()) {
      const bool take_add =
          a < delta.added.size() &&
          (r == delta.removed.size() || delta.added[a] < delta.removed[r]);
      const Edge ev = take_add ? delta.added[a] : delta.removed[r];
      const auto run_end =
          std::lower_bound(old.begin() + static_cast<std::ptrdiff_t>(i),
                           old.end(), ev);
      scratch_edges_.insert(scratch_edges_.end(),
                            old.begin() + static_cast<std::ptrdiff_t>(i),
                            run_end);
      i = static_cast<std::size_t>(run_end - old.begin());
      if (take_add) {
        SDN_CHECK_MSG(i == old.size() || !(old[i] == ev),
                      "delta adds edge (" << ev.u << "," << ev.v
                                          << ") already present");
        scratch_edges_.push_back(ev);
        ++a;
      } else {
        SDN_CHECK_MSG(i < old.size() && old[i] == ev,
                      "delta removes edge (" << ev.u << "," << ev.v
                                             << ") not present");
        ++i;  // skip the removed edge
        ++r;
      }
    }
    scratch_edges_.insert(scratch_edges_.end(),
                          old.begin() + static_cast<std::ptrdiff_t>(i),
                          old.end());
  }

  g_.edges_.swap(scratch_edges_);
  for (const Edge& e : delta.added) {
    ++degrees_[static_cast<std::size_t>(e.u)];
    ++degrees_[static_cast<std::size_t>(e.v)];
  }
  for (const Edge& e : delta.removed) {
    --degrees_[static_cast<std::size_t>(e.u)];
    --degrees_[static_cast<std::size_t>(e.v)];
  }
  RefillAdjacency();
  return g_;
}

const Graph& DynGraph::CommitEdges() {
  const NodeId n = g_.num_nodes();
  if (VerifySortedEdges()) {
    for (std::size_t i = 1; i < scratch_edges_.size(); ++i) {
      SDN_CHECK_MSG(scratch_edges_[i - 1] < scratch_edges_[i],
                    "CommitEdges given an unsorted or duplicated edge list");
    }
  }
  // The range check (always on — an out-of-range edge would corrupt the CSR
  // fill) is fused into the degree count so the commit makes one pass over
  // the list instead of two. A failed check leaves degrees_ partially
  // counted, so Commit/Apply may not be retried after a CheckError; the
  // graph view itself is untouched until the swap below.
  std::fill(degrees_.begin(), degrees_.end(), 0);
  for (const Edge& e : scratch_edges_) {
    SDN_CHECK_MSG(e.u >= 0 && e.v < n, "edge (" << e.u << "," << e.v
                                                << ") out of range for n=" << n);
    ++degrees_[static_cast<std::size_t>(e.u)];
    ++degrees_[static_cast<std::size_t>(e.v)];
  }
  g_.edges_.swap(scratch_edges_);
  RefillAdjacency();
  return g_;
}

void DynGraph::RefillAdjacency() {
  const auto n = static_cast<std::size_t>(g_.num_nodes());
  g_.offsets_.resize(n + 1);
  g_.offsets_[0] = 0;
  for (std::size_t u = 0; u < n; ++u) {
    g_.offsets_[u + 1] = g_.offsets_[u] + degrees_[u];
  }
  g_.adjacency_.resize(g_.edges_.size() * 2);
  // Same two ordered passes as Graph::BuildAdjacency (v-side entries first,
  // then u-side) — every bucket comes out sorted with no per-bucket sort —
  // but against the incrementally maintained degrees and a reused cursor.
  cursor_.assign(g_.offsets_.begin(), g_.offsets_.end() - 1);
  for (const Edge& e : g_.edges_) {
    g_.adjacency_[static_cast<std::size_t>(
        cursor_[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  for (const Edge& e : g_.edges_) {
    g_.adjacency_[static_cast<std::size_t>(
        cursor_[static_cast<std::size_t>(e.u)]++)] = e.v;
  }
}

}  // namespace sdn::graph
