#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "util/check.hpp"

namespace sdn::graph {

namespace {

bool InitVerifySortedEdges() {
  if (const char* env = std::getenv("SDN_VERIFY_SORTED")) {
    return env[0] != '0';
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

std::atomic<bool> g_verify_sorted{InitVerifySortedEdges()};

}  // namespace

void SetVerifySortedEdges(bool on) {
  g_verify_sorted.store(on, std::memory_order_relaxed);
}

bool VerifySortedEdges() {
  return g_verify_sorted.load(std::memory_order_relaxed);
}

Graph::Graph(NodeId n) : n_(n) {
  SDN_CHECK(n >= 0);
  BuildAdjacency();
}

Graph::Graph(NodeId n, std::span<const Edge> edges)
    : n_(n), edges_(edges.begin(), edges.end()) {
  SDN_CHECK(n >= 0);
  for (const Edge& e : edges_) {
    SDN_CHECK_MSG(e.u >= 0 && e.v < n_, "edge (" << e.u << "," << e.v
                                                 << ") out of range for n=" << n_);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  BuildAdjacency();
}

Graph::Graph(NodeId n, std::vector<Edge> edges, SortedEdges)
    : n_(n), edges_(std::move(edges)) {
  SDN_CHECK(n >= 0);
  for (const Edge& e : edges_) {
    SDN_CHECK_MSG(e.u >= 0 && e.v < n_, "edge (" << e.u << "," << e.v
                                                 << ") out of range for n=" << n_);
  }
  // The sortedness scan is optional (VerifySortedEdges — debug/test builds);
  // the range scan above always runs because an out-of-range edge would
  // corrupt the CSR fill below, not just mislabel a neighbor.
  if (VerifySortedEdges()) {
    SDN_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                  "SortedEdges constructor given an unsorted edge list");
  }
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  BuildAdjacency();
}

void Graph::BuildAdjacency() {
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  adjacency_.resize(edges_.size() * 2);
  for (const Edge& e : edges_) {
    ++offsets_[static_cast<std::size_t>(e.u) + 1];
    ++offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  // Two ordered passes over the (u,v)-sorted edge list leave every bucket
  // sorted with no per-bucket sort: bucket w first receives the u-values of
  // edges with v == w (all < w, ascending because u is the primary sort
  // key), then the v-values of edges with u == w (all > w, ascending within
  // the contiguous u == w run).
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges_) {
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  for (const Edge& e : edges_) {
    adjacency_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
  }
}

std::span<const NodeId> Graph::Neighbors(NodeId u) const {
  SDN_CHECK(u >= 0 && u < n_);
  const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u)]);
  const auto end = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(u) + 1]);
  return {adjacency_.data() + begin, end - begin};
}

NodeId Graph::Degree(NodeId u) const {
  return static_cast<NodeId>(Neighbors(u).size());
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (u == v) return false;
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Graph Graph::WithEdges(std::span<const Edge> extra) const {
  std::vector<Edge> merged(edges_);
  merged.insert(merged.end(), extra.begin(), extra.end());
  return Graph(n_, merged);
}

Graph EdgeIntersection(std::span<const Graph> graphs) {
  SDN_CHECK(!graphs.empty());
  const NodeId n = graphs[0].num_nodes();
  for (const Graph& g : graphs) {
    SDN_CHECK_MSG(g.num_nodes() == n, "EdgeIntersection on mismatched sizes");
  }
  std::vector<Edge> common(graphs[0].Edges().begin(), graphs[0].Edges().end());
  std::vector<Edge> next;
  for (std::size_t i = 1; i < graphs.size() && !common.empty(); ++i) {
    next.clear();
    const auto other = graphs[i].Edges();
    std::set_intersection(common.begin(), common.end(), other.begin(),
                          other.end(), std::back_inserter(next));
    common.swap(next);
  }
  return Graph(n, common);
}

}  // namespace sdn::graph
