#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "graph/algorithms.hpp"
#include "util/check.hpp"

namespace sdn::graph {

Graph Path(NodeId n) {
  SDN_CHECK(n >= 1);
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph(n, edges);
}

Graph Cycle(NodeId n) {
  SDN_CHECK(n >= 3);
  std::vector<Edge> edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  edges.emplace_back(NodeId{0}, n - 1);
  return Graph(n, edges);
}

Graph Star(NodeId n) {
  SDN_CHECK(n >= 1);
  std::vector<Edge> edges;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(NodeId{0}, i);
  return Graph(n, edges);
}

Graph Complete(NodeId n) {
  SDN_CHECK(n >= 1);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph(n, edges);
}

Graph GridGraph(NodeId rows, NodeId cols) {
  SDN_CHECK(rows >= 1 && cols >= 1);
  const auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  std::vector<Edge> edges;
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(rows * cols, edges);
}

Graph BinaryTree(NodeId n) {
  SDN_CHECK(n >= 1);
  std::vector<Edge> edges;
  for (NodeId i = 1; i < n; ++i) edges.emplace_back(i, (i - 1) / 2);
  return Graph(n, edges);
}

Graph Hypercube(int dim) {
  SDN_CHECK(dim >= 0 && dim < 30);
  const NodeId n = NodeId{1} << dim;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (int b = 0; b < dim; ++b) {
      const NodeId v = u ^ (NodeId{1} << b);
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph(n, edges);
}

Graph Barbell(NodeId n) {
  SDN_CHECK(n >= 2);
  const NodeId left = (n + 1) / 2;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = u + 1; v < left; ++v) edges.emplace_back(u, v);
  }
  for (NodeId u = left; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  edges.emplace_back(left - 1, left);
  return Graph(n, edges);
}

Graph RandomTree(NodeId n, util::Rng& rng) {
  SDN_CHECK(n >= 1);
  if (n == 1) return Graph(1);
  if (n == 2) {
    const Edge e(0, 1);
    return Graph(2, std::span<const Edge>(&e, 1));
  }
  // Decode a uniform random Prüfer sequence of length n-2.
  std::vector<NodeId> prufer(static_cast<std::size_t>(n) - 2);
  for (auto& p : prufer) p = static_cast<NodeId>(rng.UniformU64(static_cast<std::uint64_t>(n)));
  std::vector<NodeId> degree(static_cast<std::size_t>(n), 1);
  for (const NodeId p : prufer) ++degree[static_cast<std::size_t>(p)];
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) - 1);
  // ptr/leaf scan variant: O(n) total.
  NodeId ptr = 0;
  while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
  NodeId leaf = ptr;
  for (const NodeId p : prufer) {
    edges.emplace_back(leaf, p);
    if (--degree[static_cast<std::size_t>(p)] == 1 && p < ptr) {
      leaf = p;
    } else {
      ++ptr;
      while (degree[static_cast<std::size_t>(ptr)] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.emplace_back(leaf, n - 1);
  return Graph(n, edges);
}

std::vector<Edge> GnpEdges(NodeId n, double p, util::Rng& rng) {
  SDN_CHECK(n >= 1);
  SDN_CHECK(p >= 0.0 && p <= 1.0);
  std::vector<Edge> edges;
  if (p <= 0.0) return edges;
  if (p >= 1.0) {
    edges.reserve(static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1) / 2);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
    }
    return edges;
  }
  // Geometric skipping over the edge enumeration: O(E) expected. The skip
  // denominator is hoisted out of the loop (same arithmetic as
  // Rng::Geometric, so the emitted graph is bit-identical), and idx -> (u,v)
  // inversion tracks the current row incrementally — idx only grows, so the
  // row advance is amortized O(1) per edge with no floating-point inversion.
  const auto total =
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n - 1) / 2;
  edges.reserve(static_cast<std::size_t>(p * static_cast<double>(total)) + 16);
  const double denom = std::log1p(-p);
  const auto skip = [&rng, denom]() {
    return static_cast<std::uint64_t>(std::log1p(-rng.UniformDouble()) / denom);
  };
  std::uint64_t row = 0;        // current u
  std::uint64_t row_start = 0;  // index of (row, row+1); row width n-1-row
  std::uint64_t idx = skip();
  while (idx < total) {
    while (idx >= row_start + (static_cast<std::uint64_t>(n) - 1 - row)) {
      row_start += static_cast<std::uint64_t>(n) - 1 - row;
      ++row;
    }
    const std::uint64_t v = row + 1 + (idx - row_start);
    edges.emplace_back(static_cast<NodeId>(row), static_cast<NodeId>(v));
    idx += 1 + skip();
  }
  // Edges are emitted in ascending enumeration order, i.e. already sorted.
  return edges;
}

Graph Gnp(NodeId n, double p, util::Rng& rng) {
  return Graph(n, GnpEdges(n, p, rng), Graph::SortedEdges{});
}

std::vector<Edge> ConnectedGnpEdges(NodeId n, double p, util::Rng& rng) {
  std::vector<Edge> edges = GnpEdges(n, p, rng);
  UnionFind uf(static_cast<std::size_t>(n));
  for (const Edge& e : edges) {
    uf.Union(e.u, e.v);
    if (uf.num_components() == 1) break;  // already connected; rest can't split
  }
  if (uf.num_components() == 1) return edges;
  // Collect one representative per component, shuffle, and chain them.
  std::vector<NodeId> reps;
  for (NodeId u = 0; u < n; ++u) {
    if (uf.Find(u) == u) reps.push_back(u);
  }
  rng.Shuffle(std::span<NodeId>(reps));
  for (std::size_t i = 0; i + 1 < reps.size(); ++i) {
    edges.emplace_back(reps[i], reps[i + 1]);
  }
  // Same normalization the unsorted Graph constructor applies, so the list
  // matches what WithEdges(repair) used to produce.
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

Graph ConnectedGnp(NodeId n, double p, util::Rng& rng) {
  return Graph(n, ConnectedGnpEdges(n, p, rng), Graph::SortedEdges{});
}

Graph RandomExpander(NodeId n, int cycles, util::Rng& rng) {
  SDN_CHECK(n >= 3);
  SDN_CHECK(cycles >= 1);
  std::vector<NodeId> order(static_cast<std::size_t>(n));
  std::vector<Edge> edges;
  for (int c = 0; c < cycles; ++c) {
    for (NodeId i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
    rng.Shuffle(std::span<NodeId>(order));
    for (std::size_t i = 0; i < order.size(); ++i) {
      const NodeId a = order[i];
      const NodeId b = order[(i + 1) % order.size()];
      if (a != b) edges.emplace_back(a, b);
    }
  }
  return Graph(n, edges);
}

Graph PathOfCliques(NodeId num_cliques, NodeId clique_size) {
  SDN_CHECK(num_cliques >= 1 && clique_size >= 1);
  const NodeId n = num_cliques * clique_size;
  std::vector<Edge> edges;
  for (NodeId k = 0; k < num_cliques; ++k) {
    const NodeId base = k * clique_size;
    for (NodeId u = 0; u < clique_size; ++u) {
      for (NodeId v = u + 1; v < clique_size; ++v) {
        edges.emplace_back(base + u, base + v);
      }
    }
    if (k + 1 < num_cliques) {
      // Bridge: last node of clique k to first node of clique k+1.
      edges.emplace_back(base + clique_size - 1, base + clique_size);
    }
  }
  return Graph(n, edges);
}

Graph GeometricGraph(const std::vector<Point2D>& positions, double radius) {
  const auto n = static_cast<NodeId>(positions.size());
  const double r2 = radius * radius;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = positions[static_cast<std::size_t>(u)].x -
                        positions[static_cast<std::size_t>(v)].x;
      const double dy = positions[static_cast<std::size_t>(u)].y -
                        positions[static_cast<std::size_t>(v)].y;
      if (dx * dx + dy * dy <= r2) edges.emplace_back(u, v);
    }
  }
  return Graph(n, edges);
}

std::vector<Point2D> RandomPoints(NodeId n, util::Rng& rng) {
  std::vector<Point2D> pts(static_cast<std::size_t>(n));
  for (auto& p : pts) {
    p.x = rng.UniformDouble();
    p.y = rng.UniformDouble();
  }
  return pts;
}

}  // namespace sdn::graph
