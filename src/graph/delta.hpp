// Round-over-round topology deltas and the incremental graph they drive.
//
// The T-interval model guarantees consecutive rounds share a stable connected
// subgraph, so the edge sets of rounds r and r+1 differ by a small delta by
// construction. This header is the hot-path representation of that fact:
// instead of rebuilding a `Graph` from scratch every round, the engine keeps
// one `DynGraph` and applies a `TopologyDelta` in place.
//
// Delta contract (enforced by `DynGraph::Apply`, spelled out in DESIGN.md):
//   * `added` and `removed` are sorted ascending and duplicate-free;
//   * they are disjoint (an edge flips at most once per round);
//   * no self-loops (guaranteed by the `Edge` constructor invariant);
//   * every `removed` edge is present in the graph the delta applies to, and
//     no `added` edge is.
// A violated contract throws CheckError — a buggy adversary cannot silently
// desynchronize the incremental topology from its from-scratch meaning.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace sdn::graph {

/// Sorted edge-set difference between two consecutive rounds' topologies.
struct TopologyDelta {
  std::vector<Edge> added;
  std::vector<Edge> removed;

  [[nodiscard]] bool empty() const { return added.empty() && removed.empty(); }
  /// Total number of edge flips.
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(added.size() + removed.size());
  }
  void clear() {
    added.clear();
    removed.clear();
  }

  friend bool operator==(const TopologyDelta&, const TopologyDelta&) = default;
};

/// Writes into `out` the delta turning sorted edge list `from` into sorted
/// edge list `to` (one linear merge walk; `out`'s capacity is reused).
/// Both inputs must be sorted and duplicate-free.
void DiffSorted(std::span<const Edge> from, std::span<const Edge> to,
                TopologyDelta& out);

/// Delta turning `from` into `to` (graphs must share num_nodes; CheckError).
TopologyDelta Diff(const Graph& from, const Graph& to);

/// Writes into `out` the sorted-unique union of sorted-unique edge lists `a`
/// and `b` (`out`'s capacity is reused; `out` must not alias an input). The
/// merge step is branch-free — adversaries call this once per era on two
/// full spines whose interleaving is random, where a compare-and-branch
/// merge spends most of its time in branch mispredictions.
void UnionSorted(std::span<const Edge> a, std::span<const Edge> b,
                 std::vector<Edge>& out);

/// CheckError unless `delta` satisfies the contract above for an n-node
/// graph (sorted, unique, disjoint, in range). Presence/absence against a
/// concrete graph is checked by `DynGraph::Apply` itself.
void CheckDeltaWellFormed(const TopologyDelta& delta, NodeId n);

/// A mutable dynamic graph: one `Graph` maintained under in-place delta
/// application. `Apply` patches the sorted edge list with chunked copies
/// (O(|Δ| log E) decision points plus the bytes moved) for sparse deltas and
/// falls back to one linear merge pass when the delta is dense (lower_bound
/// per flip would then cost more than the walk it skips), maintains per-node
/// degrees in O(|Δ|), and refills the CSR adjacency of the view without any
/// allocation in steady state; an empty delta returns the cached view in
/// O(1). The returned reference stays valid (and its contents stable) until
/// the next Apply/Reset — exactly the engine's "topology of the round being
/// executed" lifetime.
class DynGraph {
 public:
  /// Empty graph on n isolated nodes.
  explicit DynGraph(NodeId n = 0);
  /// Starts from an existing graph.
  explicit DynGraph(Graph g);

  [[nodiscard]] NodeId num_nodes() const { return g_.num_nodes(); }

  /// The current topology as an immutable view.
  [[nodiscard]] const Graph& View() const { return g_; }

  /// Applies `delta` in place and returns the updated view. CheckError on a
  /// contract violation (unsorted/overlapping lists, removing an absent
  /// edge, adding a present one); the graph is unchanged on failure.
  const Graph& Apply(const TopologyDelta& delta);

  /// Replaces the current topology wholesale (keyframe recovery / reuse
  /// across runs). Buffer capacity is retained.
  void Reset(const Graph& g);
  void Reset(NodeId n);

  /// Direct-assignment fast path, paired with `CommitEdges`: expose the
  /// internal scratch buffer for a producer (Adversary::RoundEdgesInto) to
  /// fill with the next round's complete sorted-unique edge list. The
  /// buffer's contents on entry are unspecified; the current View() is
  /// untouched until CommitEdges, so an abandoned edit (producer returned
  /// false) costs nothing.
  [[nodiscard]] std::vector<Edge>& EditBuffer() { return scratch_edges_; }

  /// Swaps the filled EditBuffer in as the new topology and rebuilds
  /// degrees + CSR adjacency (allocation-free in steady state). Edges are
  /// always range-checked; the sorted/unique scan is gated on
  /// VerifySortedEdges() like the SortedEdges Graph constructor.
  const Graph& CommitEdges();

  /// Byte footprint of the maintenance scratch (degrees, edit double
  /// buffer, CSR fill cursors) — the allocation the View() itself does not
  /// show. Capacities only, a pure function of the applied delta stream;
  /// surfaced by the engine as the "topology_scratch" memory gauge.
  [[nodiscard]] std::int64_t ScratchBytes() const {
    return static_cast<std::int64_t>(
        degrees_.capacity() * sizeof(NodeId) +
        scratch_edges_.capacity() * sizeof(Edge) +
        cursor_.capacity() * sizeof(std::int64_t));
  }

 private:
  void RebuildDegrees();
  void RefillAdjacency();

  Graph g_;
  std::vector<NodeId> degrees_;         // maintained incrementally by Apply
  std::vector<Edge> scratch_edges_;     // double buffer for the merge pass
  std::vector<std::int64_t> cursor_;    // CSR fill scratch
};

}  // namespace sdn::graph
