// Topology generators.
//
// Deterministic families give known diameters for validator tests; random
// families are the raw material the adversaries rewire every round/window.
// All randomized generators take an explicit Rng so trials replay exactly.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace sdn::graph {

Graph Path(NodeId n);
Graph Cycle(NodeId n);
/// Node 0 is the hub.
Graph Star(NodeId n);
Graph Complete(NodeId n);
/// rows*cols nodes in a 4-neighbor lattice.
Graph GridGraph(NodeId rows, NodeId cols);
/// Heap-indexed complete-ish binary tree on n nodes (node i's parent is
/// (i-1)/2); diameter ~2·log2(n).
Graph BinaryTree(NodeId n);
/// dim-dimensional hypercube on 2^dim nodes.
Graph Hypercube(int dim);
/// Two cliques of ⌈n/2⌉ and ⌊n/2⌋ nodes joined by one bridge edge.
Graph Barbell(NodeId n);

/// Uniform random labelled spanning tree (random Prüfer sequence).
Graph RandomTree(NodeId n, util::Rng& rng);

/// Erdős–Rényi G(n,p); may be disconnected.
Graph Gnp(NodeId n, double p, util::Rng& rng);

/// G(n,p) as a sorted-unique edge list: the exact edges Gnp would produce
/// (same RNG draws, bit-identical) without paying for the Graph's CSR
/// build. For callers that only consume the list (spine assembly).
std::vector<Edge> GnpEdges(NodeId n, double p, util::Rng& rng);

/// G(n,p) with connectivity repaired by adding one random inter-component
/// edge per merge (so exactly #components-1 repair edges).
Graph ConnectedGnp(NodeId n, double p, util::Rng& rng);

/// Edge-list variant of ConnectedGnp — bit-identical edge set, no CSR.
std::vector<Edge> ConnectedGnpEdges(NodeId n, double p, util::Rng& rng);

/// Union of `cycles` random Hamiltonian cycles: a simple ~2·cycles-regular
/// graph that is connected and an expander whp — O(log n) diameter.
Graph RandomExpander(NodeId n, int cycles, util::Rng& rng);

/// `num_cliques` cliques of `clique_size` nodes chained by bridge edges:
/// diameter = 2·num_cliques - 1-ish; used to dial flooding time d
/// independently of N (experiment F3).
Graph PathOfCliques(NodeId num_cliques, NodeId clique_size);

/// Unit-square random geometric graph over given positions: edge iff
/// Euclidean distance <= radius.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};
Graph GeometricGraph(const std::vector<Point2D>& positions, double radius);

/// n uniform points in the unit square.
std::vector<Point2D> RandomPoints(NodeId n, util::Rng& rng);

}  // namespace sdn::graph
