// Immutable undirected graph on nodes [0, N).
//
// This is the per-round topology type the adversary hands to the engine.
// Adjacency is stored sorted so neighbor iteration is deterministic and
// edge-set operations (intersection across a T-window) are linear merges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace sdn::graph {

using NodeId = std::int32_t;

/// Undirected edge with the invariant u < v (normalized on construction).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  Edge() = default;
  /// Inline: constructed once per generated edge in the topology hot loops.
  Edge(NodeId a, NodeId b) : u(std::min(a, b)), v(std::max(a, b)) {
    SDN_CHECK_MSG(a != b, "self-loop at node " << a);
  }

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Toggles the O(E) sortedness scan in the `Graph::SortedEdges` constructor.
/// Default: on in debug builds, off under NDEBUG; the SDN_VERIFY_SORTED
/// environment variable ("0"/"1", read once at startup) overrides either
/// way. Engine-internal callers construct from lists that are sorted by
/// construction, so release builds skip the scan; tests flip it on.
void SetVerifySortedEdges(bool on);
[[nodiscard]] bool VerifySortedEdges();

class Graph {
 public:
  /// Tag for the pre-sorted constructor overload.
  struct SortedEdges {};

  /// Empty graph on n isolated nodes. Requires n >= 0.
  explicit Graph(NodeId n = 0);

  /// Graph on n nodes with the given edges; duplicates are collapsed and
  /// self-loops rejected (CheckError).
  Graph(NodeId n, std::span<const Edge> edges);

  /// Hot-path constructor: takes ownership of an already-sorted edge list
  /// (ascending (u,v); duplicates allowed, collapsed linearly) and skips the
  /// O(E log E) sort. Sortedness is CheckError-verified in O(E) only when
  /// VerifySortedEdges() is on (see above); the per-edge range check always
  /// runs. Used by per-round adversary topology construction.
  Graph(NodeId n, std::vector<Edge> edges, SortedEdges);

  [[nodiscard]] NodeId num_nodes() const { return n_; }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Sorted neighbor list of u.
  [[nodiscard]] std::span<const NodeId> Neighbors(NodeId u) const;

  [[nodiscard]] NodeId Degree(NodeId u) const;
  [[nodiscard]] bool HasEdge(NodeId u, NodeId v) const;

  /// Sorted, deduplicated edge list.
  [[nodiscard]] std::span<const Edge> Edges() const { return edges_; }

  /// New graph = this plus `extra` edges (duplicates fine).
  [[nodiscard]] Graph WithEdges(std::span<const Edge> extra) const;

  friend bool operator==(const Graph&, const Graph&) = default;

 private:
  /// DynGraph (graph/delta.hpp) maintains edges_/adjacency_/offsets_ in
  /// place under delta application, preserving every Graph invariant.
  friend class DynGraph;

  void BuildAdjacency();

  NodeId n_ = 0;
  std::vector<Edge> edges_;             // sorted, unique
  std::vector<NodeId> adjacency_;       // flattened CSR payload
  std::vector<std::int64_t> offsets_;   // size n_+1
};

/// Intersection of the edge sets of `graphs` (all must share num_nodes).
/// Returns the graph whose edges appear in every input — the "stable
/// subgraph" of a T-window.
Graph EdgeIntersection(std::span<const Graph> graphs);

}  // namespace sdn::graph
