// Classic graph algorithms used by generators, validators and metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace sdn::graph {

/// Disjoint-set union with union-by-size and path halving. Find/Union are
/// inline: the connected-generator hot loop calls Union once per candidate
/// edge, where an out-of-line call costs as much as the find itself.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  NodeId Find(NodeId x) {
    SDN_CHECK(x >= 0 && static_cast<std::size_t>(x) < parent_.size());
    while (parent_[static_cast<std::size_t>(x)] != x) {
      const NodeId grand = parent_[static_cast<std::size_t>(
          parent_[static_cast<std::size_t>(x)])];
      parent_[static_cast<std::size_t>(x)] = grand;
      x = grand;
    }
    return x;
  }

  /// Returns true if x and y were in different sets (i.e. a merge happened).
  bool Union(NodeId x, NodeId y) {
    NodeId rx = Find(x);
    NodeId ry = Find(y);
    if (rx == ry) return false;
    if (size_[static_cast<std::size_t>(rx)] <
        size_[static_cast<std::size_t>(ry)]) {
      std::swap(rx, ry);
    }
    parent_[static_cast<std::size_t>(ry)] = rx;
    size_[static_cast<std::size_t>(rx)] += size_[static_cast<std::size_t>(ry)];
    --components_;
    return true;
  }

  [[nodiscard]] std::size_t num_components() const { return components_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::int32_t> size_;
  std::size_t components_ = 0;
};

/// BFS hop distances from `source`; unreachable nodes get -1.
std::vector<std::int32_t> BfsDistances(const Graph& g, NodeId source);

bool IsConnected(const Graph& g);

/// Component label per node (labels are representative node ids, dense order
/// of first appearance is NOT guaranteed).
std::vector<NodeId> ComponentLabels(const Graph& g);

/// Max BFS distance from `source` to any node; -1 if g is disconnected.
std::int32_t Eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS (O(N·E) — fine at simulator scales);
/// -1 if disconnected, 0 for a single node.
std::int32_t Diameter(const Graph& g);

/// Edges of a BFS spanning tree rooted at `root`.
/// Returns nullopt if g is disconnected.
std::optional<std::vector<Edge>> BfsSpanningTree(const Graph& g, NodeId root);

/// Number of edges in a maximal spanning forest (n - #components).
std::int64_t SpanningForestSize(const Graph& g);

}  // namespace sdn::graph
