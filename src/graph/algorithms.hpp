// Classic graph algorithms used by generators, validators and metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace sdn::graph {

/// Disjoint-set union with union-by-size and path halving. Find/Union are
/// inline: the connected-generator hot loop calls Union once per candidate
/// edge, where an out-of-line call costs as much as the find itself.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  /// Reinitializes to n singleton sets, reusing the existing buffers when
  /// large enough (the streaming T-interval checker re-runs scratch
  /// union-finds every era; reallocating per use would dominate).
  void Reset(std::size_t n);

  NodeId Find(NodeId x) {
    SDN_CHECK(x >= 0 && static_cast<std::size_t>(x) < parent_.size());
    while (parent_[static_cast<std::size_t>(x)] != x) {
      const NodeId grand = parent_[static_cast<std::size_t>(
          parent_[static_cast<std::size_t>(x)])];
      parent_[static_cast<std::size_t>(x)] = grand;
      x = grand;
    }
    return x;
  }

  /// Returns true if x and y were in different sets (i.e. a merge happened).
  bool Union(NodeId x, NodeId y) {
    NodeId rx = Find(x);
    NodeId ry = Find(y);
    if (rx == ry) return false;
    if (size_[static_cast<std::size_t>(rx)] <
        size_[static_cast<std::size_t>(ry)]) {
      std::swap(rx, ry);
    }
    parent_[static_cast<std::size_t>(ry)] = rx;
    size_[static_cast<std::size_t>(rx)] += size_[static_cast<std::size_t>(ry)];
    --components_;
    return true;
  }

  [[nodiscard]] std::size_t num_components() const { return components_; }

  /// Byte footprint of the owned buffers (memory-budget gauges).
  [[nodiscard]] std::int64_t ApproxBytes() const {
    return static_cast<std::int64_t>(parent_.capacity() * sizeof(NodeId) +
                                     size_.capacity() * sizeof(std::int32_t));
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::int32_t> size_;
  std::size_t components_ = 0;
};

/// Incremental spanning forest over a changing edge set, built for the
/// streaming T-interval checker's stable set. Insertions are near-O(α)
/// (one union); deleting a non-tree edge is O(log tree) and leaves the
/// forest valid; deleting a tree edge marks the structure dirty, and the
/// owner re-derives it with BeginRebuild + Insert over the surviving edges
/// — a lazy rebuild that is O(changes) amortized for the checker because
/// stable-set deletions are bounded by delta sizes (a tree edge must have
/// been inserted since the previous rebuild, ISSUE 7 / ROADMAP item 4).
/// While dirty, Insert/Erase become no-ops (the rebuild re-derives
/// everything) and the connectivity accessors are off-limits (checked).
class IncrementalForest {
 public:
  explicit IncrementalForest(NodeId n);

  /// Drops all edges and re-targets to n nodes (buffer-reusing).
  void Reset(NodeId n);

  /// Starts a rebuild: clears the forest and the dirty flag; the caller
  /// then Inserts every surviving edge.
  void BeginRebuild();

  /// A present edge (key = packed endpoint pair) joins the set. Records it
  /// as a tree edge iff the union merged two components.
  void Insert(NodeId u, NodeId v, std::uint64_t key);

  /// The edge leaves the set. Non-tree edges keep the forest valid; a tree
  /// edge marks it dirty until the next BeginRebuild pass.
  void Erase(std::uint64_t key);

  [[nodiscard]] bool dirty() const { return dirty_; }
  [[nodiscard]] bool connected() const {
    SDN_CHECK(!dirty_);
    return uf_.num_components() == 1;
  }
  /// Spanning-forest size (n - #components) of the current edge set.
  [[nodiscard]] std::int64_t forest_size() const {
    SDN_CHECK(!dirty_);
    return static_cast<std::int64_t>(n_) -
           static_cast<std::int64_t>(uf_.num_components());
  }
  [[nodiscard]] std::int64_t tree_edges() const {
    return static_cast<std::int64_t>(tree_.size());
  }

  /// Byte footprint of the owned buffers (memory-budget gauges).
  [[nodiscard]] std::int64_t ApproxBytes() const {
    return uf_.ApproxBytes() +
           static_cast<std::int64_t>(tree_.capacity() * sizeof(std::uint64_t));
  }

 private:
  NodeId n_ = 0;
  UnionFind uf_;
  /// Sorted keys of the current spanning forest's edges.
  std::vector<std::uint64_t> tree_;
  bool dirty_ = false;
};

/// BFS hop distances from `source`; unreachable nodes get -1.
std::vector<std::int32_t> BfsDistances(const Graph& g, NodeId source);

bool IsConnected(const Graph& g);

/// Component label per node (labels are representative node ids, dense order
/// of first appearance is NOT guaranteed).
std::vector<NodeId> ComponentLabels(const Graph& g);

/// Max BFS distance from `source` to any node; -1 if g is disconnected.
std::int32_t Eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS (O(N·E) — fine at simulator scales);
/// -1 if disconnected, 0 for a single node.
std::int32_t Diameter(const Graph& g);

/// Edges of a BFS spanning tree rooted at `root`.
/// Returns nullopt if g is disconnected.
std::optional<std::vector<Edge>> BfsSpanningTree(const Graph& g, NodeId root);

/// Number of edges in a maximal spanning forest (n - #components).
std::int64_t SpanningForestSize(const Graph& g);

}  // namespace sdn::graph
