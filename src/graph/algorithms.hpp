// Classic graph algorithms used by generators, validators and metrics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace sdn::graph {

/// Disjoint-set union with union-by-size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  NodeId Find(NodeId x);
  /// Returns true if x and y were in different sets (i.e. a merge happened).
  bool Union(NodeId x, NodeId y);
  [[nodiscard]] std::size_t num_components() const { return components_; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::int32_t> size_;
  std::size_t components_ = 0;
};

/// BFS hop distances from `source`; unreachable nodes get -1.
std::vector<std::int32_t> BfsDistances(const Graph& g, NodeId source);

bool IsConnected(const Graph& g);

/// Component label per node (labels are representative node ids, dense order
/// of first appearance is NOT guaranteed).
std::vector<NodeId> ComponentLabels(const Graph& g);

/// Max BFS distance from `source` to any node; -1 if g is disconnected.
std::int32_t Eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS (O(N·E) — fine at simulator scales);
/// -1 if disconnected, 0 for a single node.
std::int32_t Diameter(const Graph& g);

/// Edges of a BFS spanning tree rooted at `root`.
/// Returns nullopt if g is disconnected.
std::optional<std::vector<Edge>> BfsSpanningTree(const Graph& g, NodeId root);

/// Number of edges in a maximal spanning forest (n - #components).
std::int64_t SpanningForestSize(const Graph& g);

}  // namespace sdn::graph
