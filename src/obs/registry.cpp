#include "obs/registry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace sdn::obs {

const char* ToString(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

/// Bucket index of a non-negative value: 0 holds exactly {0}, bucket b >= 1
/// holds [2^(b-1), 2^b - 1]. Negative values clamp to bucket 0.
int BucketOf(std::int64_t value) {
  if (value <= 0) return 0;
  return static_cast<int>(std::bit_width(static_cast<std::uint64_t>(value)));
}

}  // namespace

void Histogram::Observe(std::int64_t value) {
  ++buckets_[static_cast<std::size_t>(BucketOf(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

std::int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t in_bucket = buckets_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      if (b == 0) return 0;
      // Geometric interpolation across the bucket's [2^(b-1), 2^b) span,
      // clamped to the values actually observed.
      const double lo = std::ldexp(1.0, b - 1);
      const double frac =
          in_bucket == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      const double est = lo * std::pow(2.0, frac);
      const auto v = static_cast<std::int64_t>(std::llround(est));
      return std::clamp(v, min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<MetricSample> MetricsSnapshot::Deterministic() const {
  std::vector<MetricSample> out;
  out.reserve(samples.size());
  for (const MetricSample& s : samples) {
    if (s.deterministic) out.push_back(s);
  }
  return out;
}

std::string MetricsSnapshot::OneLine() const {
  std::string out;
  for (const MetricSample& s : samples) {
    if (!out.empty()) out += ' ';
    out += s.name;
    out += '=';
    if (s.kind == MetricKind::kHistogram) {
      out += "p50:";
      out += std::to_string(s.p50);
      out += "/p95:";
      out += std::to_string(s.p95);
      out += "/n:";
      out += std::to_string(s.count);
    } else {
      out += std::to_string(s.value);
    }
  }
  return out;
}

MetricsRegistry::Entry* MetricsRegistry::FindEntry(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     bool deterministic) {
  if (Entry* e = FindEntry(name)) {
    SDN_CHECK(e->kind == MetricKind::kCounter);
    return e->counter.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kCounter;
  e->deterministic = deterministic;
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, bool deterministic) {
  if (Entry* e = FindEntry(name)) {
    SDN_CHECK(e->kind == MetricKind::kGauge);
    return e->gauge.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kGauge;
  e->deterministic = deterministic;
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         bool deterministic) {
  if (Entry* e = FindEntry(name)) {
    SDN_CHECK(e->kind == MetricKind::kHistogram);
    return e->histogram.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->kind = MetricKind::kHistogram;
  e->deterministic = deterministic;
  e->histogram = std::make_unique<Histogram>();
  Histogram* out = e->histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const auto& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.kind = e->kind;
    s.deterministic = e->deterministic;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = e->counter->value();
        break;
      case MetricKind::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricKind::kHistogram:
        s.value = e->histogram->count();
        s.count = e->histogram->count();
        s.sum = e->histogram->sum();
        s.min = e->histogram->min();
        s.max = e->histogram->max();
        s.p50 = e->histogram->Quantile(0.50);
        s.p95 = e->histogram->Quantile(0.95);
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

}  // namespace sdn::obs
