// Typed round events for the flight recorder (docs/OBSERVABILITY.md).
//
// An Event is a fixed-size POD record: one engine phase span, one
// algorithm-phase transition, one probe lifecycle step, one checker window
// update, or one counter sample. Events are meaningful only relative to the
// run that emitted them (rounds, relative timestamps); the run manifest
// (obs/manifest.hpp) supplies the provenance that makes a trace file
// self-describing.
//
// `label` must point at a string with static storage duration (phase names,
// algorithm-phase labels) — the recorder stores the pointer, not a copy, so
// emission never allocates.
#pragma once

#include <cstdint>

namespace sdn::obs {

enum class EventKind : std::uint8_t {
  /// One engine phase of one round (topology/validate/probe/send/deliver):
  /// label = phase name, t_ns..t_ns+dur_ns the span.
  kPhase = 0,
  /// The run's algorithm-phase track changed (sampled from node 0's
  /// NodeProgram phase-label hook): label = new phase label, a = phase
  /// ordinal. Spans are reconstructed at export time (each transition lasts
  /// until the next one).
  kAlgoPhase = 1,
  /// A flooding probe started spreading: a = probe slot, b = source node.
  kProbeSpawn = 2,
  /// A flooding probe reached every node: a = probe slot,
  /// b = completion rounds (one sample of d).
  kProbeComplete = 3,
  /// Estimator sketch-merge progress: a = cumulative merges across all
  /// nodes, b = merges this round.
  kSketchMerge = 4,
  /// Streaming T-interval checker state after this round: a = stable
  /// (aged-into-every-window) edge count, b = 1 while the promise holds,
  /// c = certified-T (largest T' the observed stream satisfies so far).
  kCheckerWindow = 5,
  /// The per-message bit high-water mark rose: a = new max message bits.
  kBandwidthHighWater = 6,
  /// A message exceeded the bandwidth budget (the run is failed):
  /// a = offending bits, b = offending node.
  kBandwidthViolation = 7,
  /// Generic named counter sample: label = counter name, a = value.
  kCounter = 8,
};

/// Stable lowercase name for JSONL/trace export.
const char* ToString(EventKind kind);

struct Event {
  EventKind kind = EventKind::kCounter;
  /// Recorder lane the event was written to (stamped by the recorder).
  std::uint8_t lane = 0;
  /// Engine round the event belongs to (0 = before round 1).
  std::int64_t round = 0;
  /// Nanoseconds since the recorder's epoch (FlightRecorder::RelNs).
  std::int64_t t_ns = 0;
  /// Span length; 0 for instant events.
  std::int64_t dur_ns = 0;
  /// Kind-specific payload (see EventKind).
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
  /// Static-storage-duration label (never owned, never freed).
  const char* label = "";
};

}  // namespace sdn::obs
