// OpenMetrics / Prometheus text exposition of the observability plane.
//
// Renders a MetricsSnapshot (plus memory-gauge series and anomaly records)
// to the standard text format, so a scraper — or the future `sdnd` service
// front end — consumes engine telemetry with zero engine changes. Benches
// write it with --metrics-out (bench_common.hpp), periodically for the
// harnesses that drive rounds themselves.
//
// Name/label scheme (docs/OBSERVABILITY.md "OpenMetrics exposition"):
//   - every series is prefixed `sdn_`; registry names pass through with
//     non-[a-zA-Z0-9_] characters mapped to '_'
//   - counters render as `sdn_<name>_total`
//   - gauges render as `sdn_<name>`
//   - histograms render as OpenMetrics summaries: `{quantile="0.5"|"0.95"}`
//     plus `_sum`/`_count` (the snapshot carries exactly those stats)
//   - memory gauges: `sdn_memory_bytes{subsystem="...",stat="current|peak"}`
//   - anomaly records: `sdn_anomaly_records{rule="..."}` (the registry's
//     `sdn_anomalies_total` counter rides through the snapshot as well)
// The exposition ends with the `# EOF` terminator the format requires.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "obs/anomaly.hpp"
#include "obs/registry.hpp"

namespace sdn::obs {

/// One memory-gauge series (mirrors net::MemoryUse without the net
/// dependency — callers copy the fields over).
struct MemorySeries {
  std::string subsystem;
  std::int64_t current_bytes = 0;
  std::int64_t peak_bytes = 0;
};

/// `sdn_`-prefixed metric name with every invalid character mapped to '_'.
std::string OpenMetricsName(const std::string& name);

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot,
                              std::span<const MemorySeries> memory = {},
                              std::span<const AnomalyRecord> anomalies = {});

/// False (and nothing written) if the file cannot be opened. The write goes
/// to `path` in one pass, so a scraper that reads between writes sees at
/// worst a truncated exposition, never an interleaved one.
bool WriteOpenMetrics(const std::string& path, const MetricsSnapshot& snapshot,
                      std::span<const MemorySeries> memory = {},
                      std::span<const AnomalyRecord> anomalies = {});

}  // namespace sdn::obs
