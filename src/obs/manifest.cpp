#include "obs/manifest.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "core/version.hpp"

namespace sdn::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string Strip(const std::string& s) {
  const std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string ReadFirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  return Strip(line);
}

/// `git rev-parse HEAD` via popen, cached once per process: the subprocess
/// costs milliseconds and every manifest in a run wants the same answer.
/// Only this fallback is cached — SDN_GIT_SHA and the .git walk stay freshly
/// evaluated so tests can pin the override precedence.
const std::string& GitShaFromSubprocess() {
  static const std::string sha = [] {
    std::string out;
    if (FILE* pipe = popen("git rev-parse HEAD 2>/dev/null", "r");
        pipe != nullptr) {
      char buf[128];
      while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
      if (pclose(pipe) != 0) out.clear();
    }
    return Strip(out);
  }();
  return sha;
}

/// Resolves HEAD, in precedence order: the SDN_GIT_SHA override, walking
/// .git from the working directory upward, then a cached
/// `git rev-parse HEAD` (which also covers worktrees and gitfile redirects
/// the manual walk cannot). Returns "unknown" outside a repo (or in a
/// container without the metadata and no git binary).
std::string GitSha() {
  if (const char* env = std::getenv("SDN_GIT_SHA"); env != nullptr && *env) {
    return env;
  }
  std::string prefix;
  for (int depth = 0; depth < 6; ++depth) {
    const std::string head = ReadFirstLine(prefix + ".git/HEAD");
    if (!head.empty()) {
      if (head.rfind("ref: ", 0) == 0) {
        const std::string sha = ReadFirstLine(prefix + ".git/" + head.substr(5));
        if (!sha.empty()) return sha;
        break;  // packed refs or similar: let the subprocess resolve it
      }
      return head;  // detached HEAD: the SHA itself
    }
    prefix += "../";
  }
  const std::string& sha = GitShaFromSubprocess();
  return sha.empty() ? "unknown" : sha;
}

std::string Hostname() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

std::string UtcNow() {
  // Test hook: a non-empty SDN_FAKE_TIME is stamped verbatim, so manifest
  // round-trip tests assert on exact bytes instead of racing the wall
  // clock across a second boundary.
  if (const char* fake = std::getenv("SDN_FAKE_TIME");
      fake != nullptr && *fake != '\0') {
    return fake;
  }
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

RunManifest RunManifest::Collect() {
  RunManifest m;
  m.Set("sdn_version", std::to_string(kVersionMajor) + "." +
                           std::to_string(kVersionMinor) + "." +
                           std::to_string(kVersionPatch));
  m.Set("git_sha", GitSha());
#if defined(__VERSION__)
  m.Set("compiler", __VERSION__);
#else
  m.Set("compiler", "unknown");
#endif
#if defined(SDN_BUILD_TYPE)
  // Empty when CMake was configured without CMAKE_BUILD_TYPE.
  m.Set("build_type", *SDN_BUILD_TYPE != '\0' ? SDN_BUILD_TYPE : "unspecified");
#else
  m.Set("build_type", "unknown");
#endif
#if defined(__OPTIMIZE__)
  m.Set("optimized", "1");
#else
  m.Set("optimized", "0");
#endif
#if defined(NDEBUG)
  m.Set("assertions", "off");
#else
  m.Set("assertions", "on");
#endif
  m.Set("hostname", Hostname());
  m.Set("utc_time", UtcNow());
  return m;
}

void RunManifest::Set(const std::string& key, const std::string& value) {
  for (auto& [k, v] : items) {
    if (k == key) {
      v = value;
      return;
    }
  }
  items.emplace_back(key, value);
}

void RunManifest::Set(const std::string& key, long long value) {
  Set(key, std::to_string(value));
}

const std::string* RunManifest::Find(const std::string& key) const {
  for (const auto& [k, v] : items) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string RunManifest::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : items) {
    if (!first) out += ",";
    first = false;
    out += '"';
    out += JsonEscape(k);
    out += "\":\"";
    out += JsonEscape(v);
    out += '"';
  }
  out += "}";
  return out;
}

std::vector<std::string> RunManifest::CommentLines() const {
  std::vector<std::string> out;
  out.reserve(items.size());
  for (const auto& [k, v] : items) {
    out.push_back("# " + k + "=" + v);
  }
  return out;
}

bool RunManifest::WriteJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << ToJson() << "\n";
  return static_cast<bool>(os);
}

}  // namespace sdn::obs
