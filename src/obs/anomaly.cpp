#include "obs/anomaly.hpp"

#include <algorithm>
#include <string>
#include <string_view>

#include "obs/manifest.hpp"
#include "obs/recorder.hpp"
#include "obs/registry.hpp"

namespace sdn::obs {

const char* ToString(AnomalyRule rule) {
  switch (rule) {
    case AnomalyRule::kRoundTimeSpike:
      return "round_time_spike";
    case AnomalyRule::kAuxLaneStall:
      return "aux_lane_stall";
    case AnomalyRule::kMemoryJump:
      return "memory_jump";
    case AnomalyRule::kCertRegression:
      return "cert_regression";
    case AnomalyRule::kRecorderDropOnset:
      return "recorder_drop_onset";
  }
  return "?";
}

AnomalyEngine::AnomalyEngine(AnomalyOptions options, MetricsRegistry* registry,
                             const FlightRecorder* recorder)
    : options_(std::move(options)), registry_(registry), recorder_(recorder) {
  SDN_CHECK(options_.window >= 1);
  SDN_CHECK(options_.min_samples >= 1);
  SDN_CHECK(options_.spike_factor >= 1.0);
  hists_.reserve(kNumTracks);
  for (int t = 0; t < kNumTracks; ++t) {
    hists_.emplace_back(options_.window);
  }
  for (std::int64_t& r : last_fired_round_) r = -1;
  if (registry_ != nullptr) {
    // Firing depends on wall clock, so every instrument is
    // non-deterministic; registered up front for a stable exported series.
    total_counter_ =
        registry_->GetCounter("anomalies_total", /*deterministic=*/false);
    for (int r = 0; r < kNumAnomalyRules; ++r) {
      rule_counters_[r] = registry_->GetCounter(
          std::string("anomaly_") + ToString(static_cast<AnomalyRule>(r)),
          /*deterministic=*/false);
    }
  }
}

void AnomalyEngine::Observe(const RoundSignals& s,
                            std::span<const MemorySample> memory) {
  // Rule evaluation reads the windows *before* this round is folded in —
  // the round under test must not be its own baseline.
  const RollingHist& total_hist = hists_[kTotal];
  if (total_hist.count() >= options_.min_samples) {
    const std::int64_t p99 = total_hist.Quantile(0.99);
    const std::int64_t threshold =
        std::max(options_.spike_floor_ns,
                 static_cast<std::int64_t>(
                     options_.spike_factor * static_cast<double>(p99)));
    if (s.total_ns > threshold) {
      Fire(AnomalyRule::kRoundTimeSpike, s.round, s.total_ns, threshold,
           "round_total_ns");
    }
  }

  if (s.aux_wait_ns > options_.aux_stall_ns) {
    Fire(AnomalyRule::kAuxLaneStall, s.round, s.aux_wait_ns,
         options_.aux_stall_ns, "aux_lane_wait_ns");
  }

  for (const MemorySample& m : memory) {
    GaugeTrack* track = nullptr;
    for (GaugeTrack& g : gauges_) {
      // Pointer identity first (the engine passes the same literals every
      // round); the string compare only runs for exotic callers.
      if (g.subsystem == m.subsystem ||
          std::string_view(g.subsystem) == m.subsystem) {
        track = &g;
        break;
      }
    }
    if (track == nullptr) {
      gauges_.push_back({m.subsystem, m.bytes});  // first sight: baseline only
      continue;
    }
    if (track->last_bytes > 0) {
      const std::int64_t step = m.bytes - track->last_bytes;
      const std::int64_t threshold = std::max(
          options_.memory_jump_floor_bytes,
          static_cast<std::int64_t>(options_.memory_jump_factor *
                                    static_cast<double>(track->last_bytes)));
      if (step > threshold) {
        Fire(AnomalyRule::kMemoryJump, s.round, m.bytes,
             track->last_bytes + threshold, m.subsystem);
      }
    }
    track->last_bytes = m.bytes;
  }

  if (s.certified_T >= 0) {
    if (last_certified_T_ >= 0 && s.certified_T < last_certified_T_) {
      Fire(AnomalyRule::kCertRegression, s.round, s.certified_T,
           last_certified_T_, "certified_T");
    }
    last_certified_T_ = s.certified_T;
    if (!bad_window_seen_ && s.first_bad_window >= 0) {
      bad_window_seen_ = true;
      Fire(AnomalyRule::kCertRegression, s.round, s.first_bad_window, -1,
           "tinterval_first_bad_window");
    }
  }

  if (s.recorder_dropped > last_dropped_) {
    if (last_dropped_ == 0) {
      // Onset only: once the ring wraps it keeps wrapping every round; the
      // per-lane drop gauges carry the running count.
      Fire(AnomalyRule::kRecorderDropOnset, s.round,
           static_cast<std::int64_t>(s.recorder_dropped), 0,
           "recorder_dropped");
    }
    last_dropped_ = s.recorder_dropped;
  }

  hists_[kTopology].Observe(s.topology_ns);
  hists_[kValidate].Observe(s.validate_ns);
  hists_[kProbe].Observe(s.probe_ns);
  hists_[kSend].Observe(s.send_ns);
  hists_[kDeliver].Observe(s.deliver_ns);
  hists_[kTotal].Observe(s.total_ns);
  hists_[kAuxWait].Observe(s.aux_wait_ns);
}

void AnomalyEngine::Fire(AnomalyRule rule, std::int64_t round,
                         std::int64_t value, std::int64_t threshold,
                         const char* signal) {
  const auto r = static_cast<std::size_t>(rule);
  if (last_fired_round_[r] >= 0 &&
      round - last_fired_round_[r] <= options_.cooldown_rounds) {
    return;
  }
  last_fired_round_[r] = round;
  ++total_fired_;
  if (total_counter_ != nullptr) {
    total_counter_->Increment();
    rule_counters_[r]->Increment();
  }
  const AnomalyRecord record{rule, round, value, threshold, signal};
  if (static_cast<int>(records_.size()) < options_.max_records) {
    records_.push_back(record);
  }
  if (recorder_ != nullptr && dumps_written_ < options_.max_dumps) {
    WriteDump(record);
  }
}

void AnomalyEngine::WriteDump(const AnomalyRecord& record) {
  const std::string stem = options_.dump_dir + "/anomaly-" +
                           std::to_string(record.round) + "-" +
                           ToString(record.rule);
  RunManifest manifest = RunManifest::Collect();
  manifest.Set("anomaly_rule", ToString(record.rule));
  manifest.Set("anomaly_round", static_cast<long long>(record.round));
  manifest.Set("anomaly_signal", record.signal);
  manifest.Set("anomaly_value", static_cast<long long>(record.value));
  manifest.Set("anomaly_threshold", static_cast<long long>(record.threshold));
  manifest.Set("anomaly_dump_events",
               static_cast<long long>(recorder_->total_emitted() -
                                      recorder_->dropped()));
  // The dump is the recorder's retained window: by flight-recorder
  // semantics the freshest events survive, so the trigger round is inside
  // it (the engine fires on the observation side of the same round).
  if (recorder_->WriteJsonl(stem + ".jsonl", &manifest)) {
    manifest.WriteJson(stem + ".manifest.json");
    ++dumps_written_;
  }
}

}  // namespace sdn::obs
